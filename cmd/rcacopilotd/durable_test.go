package main

import (
	"context"
	"net/http"
	"net/url"
	"testing"
	"time"

	"repro/internal/httpd"
	"repro/internal/vectordb"

	rcacopilot "repro"
)

// durableSystem boots a WAL-backed system over the shared corpus the way
// run() does: same corpus, same seed, train embedding, then ingest only
// if recovery produced an empty store.
func durableSystem(t *testing.T, walDir string) *rcacopilot.System {
	t.Helper()
	c := sharedCorpus(t)
	sys, err := rcacopilot.NewSystem(c.Fleet, rcacopilot.Config{
		Seed: 1, Shards: 4, Partitioner: rcacopilot.PartitionIVF,
		WALDir: walDir, WALSyncEvery: 1, WALSyncInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 40
	if err := sys.TrainEmbedding(c.Incidents[:n]); err != nil {
		t.Fatal(err)
	}
	if sys.Copilot().Index().Len() == 0 {
		if err := sys.AddHistory(c.Incidents[:n]); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

// TestDaemonSurvivesKill is the in-process SIGKILL drill: a WAL-backed
// daemon serves traffic and converges a manual probe budget, then is
// ABANDONED — no drain, no Close, exactly what kill -9 leaves behind — and
// a second boot over the same directory must serve the pre-kill corpus
// with the pre-kill probe budget, reporting the replay in /metrics. (CI's
// daemon-smoke job runs the same drill against a real process with a real
// SIGKILL.)
func TestDaemonSurvivesKill(t *testing.T) {
	walDir := t.TempDir()
	sys := durableSystem(t, walDir)
	d := newDaemon(sys, httpd.LimitConfig{Rate: 100, Burst: 100}, 8)

	// Serve one full incident through the front door, feedback included,
	// so the WAL holds live-traffic state, not just the ingest batch.
	if rec := postJSON(t, d, "/api/incidents", liveIncident(t, "INC-KILL-1")); rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", rec.Code, rec.Body.String())
	}
	st := waitDone(t, d, "INC-KILL-1")
	if st.Error != "" {
		t.Fatalf("incident failed: %s", st.Error)
	}
	if rec := postJSON(t, d, "/api/feedback", feedbackRequest{IncidentID: "INC-KILL-1", Verdict: "confirm", Reviewer: "oce"}); rec.Code != http.StatusOK {
		t.Fatalf("feedback: status %d (%s)", rec.Code, rec.Body.String())
	}
	if err := sys.Feedback().Flush(); err != nil {
		t.Fatal(err)
	}

	// Converge serving state: pin a probe budget the reboot must restore.
	sh, ok := vectordb.AsSharded(sys.Copilot().Index())
	if !ok {
		t.Fatal("index did not unwrap to Sharded")
	}
	base := sys.Copilot().Durable().Stats().AppendedRecords
	if err := sh.SetProbes(2); err != nil {
		t.Fatal(err)
	}
	preLen := sys.Copilot().Index().Len()
	if _, found := sys.Copilot().Index().Get("INC-KILL-1"); !found {
		t.Fatal("confirmed incident not learned before the kill")
	}
	// Wait for the housekeeping tick to journal the pinned tuner state
	// (the record count grows past what ingest wrote), then force the
	// group commit — the durability boundary a crash respects.
	dur := sys.Copilot().Durable()
	deadline := time.Now().Add(10 * time.Second)
	for dur.Stats().AppendedRecords == base {
		if time.Now().After(deadline) {
			t.Fatal("housekeeping never journaled the tuner-state change")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := dur.Sync(); err != nil {
		t.Fatal(err)
	}
	// KILL: no drain, no Close, no final flush. The daemon object and its
	// goroutines are simply abandoned, as SIGKILL abandons a process.

	sys2 := durableSystem(t, walDir)
	d2 := newDaemon(sys2, httpd.LimitConfig{Rate: 100, Burst: 100}, 8)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		d2.drain(ctx)
		sys2.Close()
	})

	if got := sys2.Copilot().Index().Len(); got != preLen {
		t.Fatalf("rebooted corpus has %d entries, pre-kill had %d", got, preLen)
	}
	if _, found := sys2.Copilot().Index().Get("INC-KILL-1"); !found {
		t.Fatal("incident learned from pre-kill feedback lost in the reboot")
	}
	sh2, ok := vectordb.AsSharded(sys2.Copilot().Index())
	if !ok {
		t.Fatal("rebooted index did not unwrap to Sharded")
	}
	if got := sh2.Probes(); got != 2 {
		t.Fatalf("rebooted probe budget = %d, want the pre-kill 2", got)
	}

	var metrics struct {
		Durability *struct {
			ReplayedRecords int64 `json:"replayedRecords"`
			LogBytes        int64 `json:"logBytes"`
		} `json:"durability"`
	}
	if code := getJSON(t, d2, "/metrics", &metrics); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if metrics.Durability == nil {
		t.Fatal("metrics has no durability section on a WAL-backed daemon")
	}
	if metrics.Durability.ReplayedRecords == 0 {
		t.Fatal("metrics reports 0 replayed records after a recovery reboot")
	}

	var ret struct {
		Results []struct {
			ID string `json:"id"`
		} `json:"results"`
	}
	if code := getJSON(t, d2, "/api/retrieve?q="+url.QueryEscape("hub connection failure")+"&k=3", &ret); code != http.StatusOK {
		t.Fatalf("retrieve after reboot: status %d", code)
	}
	if len(ret.Results) == 0 {
		t.Fatal("rebooted daemon retrieves nothing from the recovered corpus")
	}
}
