package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/httpd"
	"repro/internal/vectordb"

	rcacopilot "repro"
)

// daemon is the unified serving surface: handler CRUD, incident
// submission and streaming, feedback, retrieval and metrics over one
// System. Incident handling rides on System.HandleStream — submissions
// feed one input channel, a single pump goroutine consumes the output
// channel, records results and fans them out to SSE subscribers — so the
// daemon inherits the stream's backpressure and its lossless-drain
// contract: closing the input channel and waiting for the output to close
// is a complete graceful shutdown of the handling pipeline.
type daemon struct {
	sys     *rcacopilot.System
	limiter *httpd.TeamLimiter
	mux     *http.ServeMux
	started time.Time

	// drainMu orders submissions against shutdown: submit holds the read
	// side while it enqueues, drain takes the write side to flip closed
	// and close in — so in can never be written after it is closed.
	drainMu sync.RWMutex
	closed  bool
	in      chan *rcacopilot.Incident

	// done closes when the pump has consumed the whole stream: every
	// admitted incident is recorded and all subscribers are closed.
	done chan struct{}

	mu        sync.Mutex
	handled   map[string]*handledIncident
	subs      map[chan event]struct{}
	seq       uint64
	submitted uint64
	completed uint64
	failed    uint64
	dropped   uint64 // SSE events dropped on slow subscribers
	cost      time.Duration
}

// handledIncident is the daemon's record of one submission.
type handledIncident struct {
	incident    *rcacopilot.Incident
	outcome     *rcacopilot.Outcome
	err         error
	release     func() // limiter slot, freed when the result lands
	submittedAt time.Time
	doneAt      time.Time
	done        bool
}

// event is one SSE payload: the result of handling one incident.
type event struct {
	IncidentID  string `json:"incidentId"`
	Team        string `json:"team"`
	AlertType   string `json:"alertType"`
	Predicted   string `json:"predicted,omitempty"`
	Unseen      bool   `json:"unseen,omitempty"`
	Error       string `json:"error,omitempty"`
	VirtualCost string `json:"virtualCost,omitempty"`
}

var errDraining = errors.New("daemon is draining; not accepting incidents")

// newDaemon assembles the serving surface over sys and starts the stream
// pump. queue is the submission buffer depth between accepted POSTs and
// the stream workers.
func newDaemon(sys *rcacopilot.System, limits httpd.LimitConfig, queue int) *daemon {
	if queue <= 0 {
		queue = 64
	}
	d := &daemon{
		sys:     sys,
		limiter: httpd.NewTeamLimiter(limits),
		mux:     http.NewServeMux(),
		started: time.Now(),
		in:      make(chan *rcacopilot.Incident, queue),
		done:    make(chan struct{}),
		handled: make(map[string]*handledIncident),
		subs:    make(map[chan event]struct{}),
	}
	d.mux.HandleFunc("GET /{$}", d.index)
	d.mux.HandleFunc("POST /api/incidents", d.submit)
	d.mux.HandleFunc("GET /api/incidents", d.list)
	d.mux.HandleFunc("GET /api/incidents/stream", d.stream)
	d.mux.HandleFunc("GET /api/incidents/{id}", d.get)
	d.mux.HandleFunc("POST /api/feedback", d.feedback)
	d.mux.HandleFunc("GET /api/retrieve", d.retrieve)
	d.mux.HandleFunc("GET /metrics", d.metrics)
	// Handler CRUD — the construction service — shares the daemon mux.
	httpd.NewHandlerAPI(sys.Copilot().Registry()).Register(d.mux)

	// The stream runs on a background context on purpose: shutdown drains
	// by closing in, never by cancellation, so in-flight incidents always
	// complete and emit.
	go d.pump(sys.HandleStream(context.Background(), d.in))
	return d
}

// ServeHTTP implements http.Handler.
func (d *daemon) ServeHTTP(w http.ResponseWriter, r *http.Request) { d.mux.ServeHTTP(w, r) }

// pump is the single consumer of the handling stream: it records each
// result, frees its admission slot and broadcasts it, then — once the
// stream closes, meaning the input channel closed and every in-flight
// incident has been emitted — closes all subscribers and signals done.
func (d *daemon) pump(out <-chan rcacopilot.StreamResult) {
	for res := range out {
		d.record(res)
	}
	d.mu.Lock()
	for ch := range d.subs {
		close(ch)
	}
	d.subs = nil
	d.mu.Unlock()
	close(d.done)
}

func (d *daemon) record(res rcacopilot.StreamResult) {
	ev := event{
		IncidentID: res.Incident.ID,
		Team:       res.Incident.OwningTeam,
		AlertType:  string(res.Incident.Alert.Type),
	}
	if res.Err != nil {
		ev.Error = res.Err.Error()
	} else {
		ev.Predicted = string(res.Incident.Predicted)
		ev.Unseen = res.Outcome.Prediction.Unseen
		ev.VirtualCost = res.Outcome.Report.VirtualCost.String()
	}

	var release func()
	d.mu.Lock()
	if h := d.handled[res.Incident.ID]; h != nil {
		h.outcome, h.err, h.done, h.doneAt = res.Outcome, res.Err, true, time.Now()
		release = h.release
	}
	if res.Err != nil {
		d.failed++
	} else {
		d.completed++
		d.cost += res.Outcome.Report.VirtualCost
	}
	for ch := range d.subs {
		select {
		case ch <- ev:
		default:
			d.dropped++ // slow subscriber: drop rather than stall the pump
		}
	}
	d.mu.Unlock()
	if release != nil {
		release()
	}
}

// beginDrain stops admissions and closes the input channel (idempotent).
func (d *daemon) beginDrain() {
	d.drainMu.Lock()
	if !d.closed {
		d.closed = true
		close(d.in)
	}
	d.drainMu.Unlock()
}

// drain is the application half of graceful shutdown, run by httpd.Serve
// before the listener stops: refuse new incidents, let the stream finish
// every admitted one (bounded by ctx), then flush and close the feedback
// loop so no accepted verdict is lost. SSE handlers exit when the pump
// closes their channels, so the subsequent http.Server.Shutdown does not
// wait on long-lived streams.
func (d *daemon) drain(ctx context.Context) {
	d.beginDrain()
	select {
	case <-d.done:
	case <-ctx.Done():
	}
	_ = d.sys.Feedback().Close()
}

func (d *daemon) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!DOCTYPE html>
<title>rcacopilotd</title>
<h1>rcacopilotd — RCACopilot serving daemon</h1>
<p>Incident submission, root-cause results, OCE feedback, history
retrieval and handler construction over one hardened HTTP surface.</p>
<ul>
<li><code>POST /api/incidents</code> — submit an incident (JSON), 202 + id</li>
<li><code>GET /api/incidents</code> — submission statuses</li>
<li><code>GET /api/incidents/{id}</code> — one result</li>
<li><code>GET /api/incidents/stream</code> — results as SSE (<code>?replay=1</code> for completed ones first)</li>
<li><code>POST /api/feedback</code> — OCE verdict: confirm / correct / reject</li>
<li><code>GET /api/retrieve?q=...&amp;k=5</code> — nearest historical incidents</li>
<li><code>GET /metrics</code> — serving, admission, retrieval, feedback and cost metrics</li>
<li><code>GET /api/handlers</code> &amp; friends — handler construction (see cmd/handlerd)</li>
</ul>`)
}

func (d *daemon) submit(w http.ResponseWriter, r *http.Request) {
	var inc rcacopilot.Incident
	if err := httpd.DecodeJSON(w, r, httpd.MaxBody, &inc); err != nil {
		httpd.WriteDecodeErr(w, err)
		return
	}
	d.mu.Lock()
	d.seq++
	seq := d.seq
	d.mu.Unlock()
	if inc.ID == "" {
		inc.ID = fmt.Sprintf("INC-API-%06d", seq)
	}
	if inc.OwningTeam == "" {
		inc.OwningTeam = "Transport"
	}
	if inc.CreatedAt.IsZero() {
		inc.CreatedAt = d.sys.Fleet().Clock().Now()
	}
	if err := inc.Validate(); err != nil {
		httpd.WriteErr(w, http.StatusUnprocessableEntity, err)
		return
	}

	release, err := d.limiter.Admit(inc.OwningTeam, inc.Severity)
	switch {
	case errors.Is(err, httpd.ErrRateLimited):
		w.Header().Set("Retry-After", strconv.Itoa(d.limiter.RetryAfter()))
		httpd.WriteErr(w, http.StatusTooManyRequests, err)
		return
	case err != nil:
		httpd.WriteErr(w, http.StatusServiceUnavailable, err)
		return
	}

	d.drainMu.RLock()
	if d.closed {
		d.drainMu.RUnlock()
		release()
		httpd.WriteErr(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	// Register before enqueueing so a fast completion always finds its
	// record (and its release func).
	d.mu.Lock()
	if _, dup := d.handled[inc.ID]; dup {
		d.mu.Unlock()
		d.drainMu.RUnlock()
		release()
		httpd.WriteErr(w, http.StatusConflict, fmt.Errorf("incident %s already submitted", inc.ID))
		return
	}
	d.handled[inc.ID] = &handledIncident{incident: &inc, release: release, submittedAt: time.Now()}
	d.submitted++
	d.mu.Unlock()

	select {
	case d.in <- &inc:
		d.drainMu.RUnlock()
		httpd.WriteJSON(w, http.StatusAccepted, map[string]any{"id": inc.ID})
	default:
		d.mu.Lock()
		delete(d.handled, inc.ID)
		d.submitted--
		d.mu.Unlock()
		d.drainMu.RUnlock()
		release()
		httpd.WriteErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("submission queue full (%d pending)", cap(d.in)))
	}
}

// incidentStatus is the JSON view of one submission.
type incidentStatus struct {
	ID          string    `json:"id"`
	Team        string    `json:"team"`
	AlertType   string    `json:"alertType"`
	SubmittedAt time.Time `json:"submittedAt"`
	Done        bool      `json:"done"`
	Error       string    `json:"error,omitempty"`
	Predicted   string    `json:"predicted,omitempty"`
	Unseen      bool      `json:"unseen,omitempty"`
	Explanation string    `json:"explanation,omitempty"`
	Summary     string    `json:"summary,omitempty"`
	VirtualCost string    `json:"virtualCost,omitempty"`
}

func statusOf(h *handledIncident) incidentStatus {
	st := incidentStatus{
		ID:          h.incident.ID,
		Team:        h.incident.OwningTeam,
		AlertType:   string(h.incident.Alert.Type),
		SubmittedAt: h.submittedAt,
		Done:        h.done,
	}
	if !h.done {
		return st
	}
	if h.err != nil {
		st.Error = h.err.Error()
		return st
	}
	st.Predicted = string(h.incident.Predicted)
	st.Unseen = h.outcome.Prediction.Unseen
	st.Explanation = h.incident.Explanation
	st.Summary = h.outcome.Summary
	st.VirtualCost = h.outcome.Report.VirtualCost.String()
	return st
}

func (d *daemon) get(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d.mu.Lock()
	h := d.handled[id]
	var st incidentStatus
	if h != nil {
		st = statusOf(h)
	}
	d.mu.Unlock()
	if h == nil {
		httpd.WriteErr(w, http.StatusNotFound, fmt.Errorf("incident %s not submitted here", id))
		return
	}
	httpd.WriteJSON(w, http.StatusOK, st)
}

func (d *daemon) list(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	out := make([]incidentStatus, 0, len(d.handled))
	for _, h := range d.handled {
		out = append(out, statusOf(h))
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].SubmittedAt.Equal(out[j].SubmittedAt) {
			return out[i].SubmittedAt.Before(out[j].SubmittedAt)
		}
		return out[i].ID < out[j].ID
	})
	httpd.WriteJSON(w, http.StatusOK, map[string]any{"incidents": out})
}

// stream serves handling results as server-sent events. ?replay=1 first
// replays results already recorded, so a subscriber that connects after
// submitting still sees its result; afterwards events arrive live until
// the client disconnects or the daemon drains (the pump closes the
// channel, ending the response — which is what lets http.Server.Shutdown
// finish).
func (d *daemon) stream(w http.ResponseWriter, r *http.Request) {
	replay := r.URL.Query().Get("replay") != ""

	d.mu.Lock()
	if d.subs == nil {
		d.mu.Unlock()
		httpd.WriteErr(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	var backlog []event
	if replay {
		for _, h := range d.handled {
			if h.done {
				backlog = append(backlog, eventOf(h))
			}
		}
		sort.Slice(backlog, func(i, j int) bool { return backlog[i].IncidentID < backlog[j].IncidentID })
	}
	ch := make(chan event, 32)
	d.subs[ch] = struct{}{}
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		if d.subs != nil {
			delete(d.subs, ch)
		}
		d.mu.Unlock()
	}()

	// A long-lived stream must outlive the server's WriteTimeout; clear
	// the deadline for this response only.
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()

	send := func(ev event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	for _, ev := range backlog {
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok || !send(ev) {
				return
			}
		}
	}
}

func eventOf(h *handledIncident) event {
	ev := event{
		IncidentID: h.incident.ID,
		Team:       h.incident.OwningTeam,
		AlertType:  string(h.incident.Alert.Type),
	}
	if h.err != nil {
		ev.Error = h.err.Error()
		return ev
	}
	ev.Predicted = string(h.incident.Predicted)
	ev.Unseen = h.outcome.Prediction.Unseen
	ev.VirtualCost = h.outcome.Report.VirtualCost.String()
	return ev
}

// feedbackRequest is the POST /api/feedback body.
type feedbackRequest struct {
	IncidentID string `json:"incidentId"`
	Verdict    string `json:"verdict"`
	Corrected  string `json:"corrected,omitempty"`
	Reviewer   string `json:"reviewer,omitempty"`
	Note       string `json:"note,omitempty"`
}

func (d *daemon) feedback(w http.ResponseWriter, r *http.Request) {
	var req feedbackRequest
	if err := httpd.DecodeJSON(w, r, httpd.MaxBody, &req); err != nil {
		httpd.WriteDecodeErr(w, err)
		return
	}
	d.mu.Lock()
	h := d.handled[req.IncidentID]
	d.mu.Unlock()
	switch {
	case h == nil:
		httpd.WriteErr(w, http.StatusNotFound, fmt.Errorf("incident %s not submitted here", req.IncidentID))
		return
	case !h.done:
		httpd.WriteErr(w, http.StatusConflict, fmt.Errorf("incident %s is still being handled", req.IncidentID))
		return
	case h.err != nil:
		httpd.WriteErr(w, http.StatusConflict, fmt.Errorf("incident %s failed handling; nothing to review", req.IncidentID))
		return
	}
	entry, err := d.sys.Feedback().Submit(h.incident,
		rcacopilot.Verdict(req.Verdict), rcacopilot.Category(req.Corrected),
		req.Reviewer, req.Note)
	if err != nil {
		httpd.WriteErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	httpd.WriteJSON(w, http.StatusOK, entry)
}

// retrievedJSON is one /api/retrieve hit, without the stored vector.
type retrievedJSON struct {
	ID         string    `json:"id"`
	Category   string    `json:"category"`
	Time       time.Time `json:"time"`
	Summary    string    `json:"summary,omitempty"`
	Distance   float64   `json:"distance"`
	Similarity float64   `json:"similarity"`
}

func (d *daemon) retrieve(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpd.WriteErr(w, http.StatusBadRequest, errors.New("missing query parameter q"))
		return
	}
	k, _, err := httpd.QueryPosInt(r, "k")
	if err != nil {
		httpd.WriteErr(w, http.StatusBadRequest, err)
		return
	}
	diverse := r.URL.Query().Get("diverse") != ""
	var hits []rcacopilot.Retrieved
	if r.URL.Query().Has("team") {
		// Tenant-scoped retrieval: search only the team's namespace view.
		// An unknown team is an empty result set, not an error.
		hits, err = d.sys.RetrieveTeam(r.URL.Query().Get("team"), q, k, diverse)
	} else {
		hits, err = d.sys.Retrieve(q, k, diverse)
	}
	if err != nil {
		httpd.WriteErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := make([]retrievedJSON, len(hits))
	for i, h := range hits {
		out[i] = retrievedJSON{
			ID: h.Entry.ID, Category: string(h.Entry.Category), Time: h.Entry.Time,
			Summary: h.Entry.Summary, Distance: h.Distance, Similarity: h.Similarity,
		}
	}
	httpd.WriteJSON(w, http.StatusOK, map[string]any{"query": q, "results": out})
}

// retryItemJSON is one retry-queue entry in /metrics.
type retryItemJSON struct {
	IncidentID string     `json:"incidentId"`
	Reviewer   string     `json:"reviewer,omitempty"`
	Attempts   int        `json:"attempts"`
	NextDue    *time.Time `json:"nextDue,omitempty"`
	Exhausted  bool       `json:"exhausted,omitempty"`
	Error      string     `json:"error,omitempty"`
}

func (d *daemon) metrics(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	incidents := map[string]any{
		"submitted":        d.submitted,
		"completed":        d.completed,
		"failed":           d.failed,
		"pending":          d.submitted - d.completed - d.failed,
		"droppedSSEEvents": d.dropped,
		"handlerCost":      d.cost.String(),
	}
	d.mu.Unlock()

	admission := map[string]any{
		"inflight":    d.limiter.Inflight(),
		"maxInflight": d.limiter.MaxInflightBound(),
		"queued":      d.limiter.QueueLen(),
		"teams":       d.limiter.Stats(),
	}

	retrieval := map[string]any{"entries": d.sys.Copilot().Index().Len()}
	if b := d.sys.Copilot().Batcher(); b != nil {
		st := b.Stats()
		retrieval["batching"] = map[string]any{
			"batches":       st.Batches,
			"queries":       st.Queries,
			"meanOccupancy": st.MeanOccupancy,
			"flushIdle":     st.FlushIdle,
			"flushSize":     st.FlushSize,
			"flushTimer":    st.FlushTimer,
		}
	}
	if sh, ok := vectordb.AsSharded(d.sys.Copilot().Index()); ok {
		retrieval["shards"] = sh.NumShards()
		retrieval["probes"] = sh.Probes()
		retrieval["rebalancing"] = sh.Rebalancing()
		if sh.QuantizedEnabled() {
			retrieval["quantized"] = map[string]any{
				"enabled":   true,
				"overfetch": sh.Overfetch(),
				"scans":     sh.QuantizedScans(),
				"rescales":  sh.Rescales(),
			}
		}
		if t := sh.AdaptiveTuner(); t != nil {
			mean, n := t.ObservedRecall()
			retrieval["adaptive"] = map[string]any{
				"observedRecall": mean,
				"recallSamples":  n,
				"shadows":        t.Shadows(),
				"retrains":       t.Retrains(),
				"paused":         t.Paused(),
			}
		}
		if nss := sh.NamespaceStats(); len(nss) > 1 {
			tenants := make([]map[string]any, len(nss))
			for i, ns := range nss {
				name := ns.Namespace
				if name == "" {
					name = "(default)"
				}
				tenants[i] = map[string]any{
					"namespace":      name,
					"entries":        ns.Entries,
					"probes":         ns.Probes,
					"overfetch":      ns.Overfetch,
					"observedRecall": ns.ObservedRecall,
					"recallSamples":  ns.RecallSamples,
					"shadows":        ns.Shadows,
					"retrains":       ns.Retrains,
					"quantScans":     ns.QuantScans,
				}
			}
			retrieval["tenants"] = tenants
		}
	}

	loop := d.sys.Feedback()
	stats := loop.ComputeStats()
	schedule := loop.RetrySchedule()
	retry := make([]retryItemJSON, len(schedule))
	for i, it := range schedule {
		rj := retryItemJSON{
			IncidentID: it.IncidentID, Reviewer: it.Reviewer,
			Attempts: it.Attempts, Exhausted: it.Exhausted,
		}
		if !it.NextDue.IsZero() {
			due := it.NextDue
			rj.NextDue = &due
		}
		if it.Err != nil {
			rj.Error = it.Err.Error()
		}
		retry[i] = rj
	}
	feedback := map[string]any{
		"reviewed":     stats.Total,
		"confirmed":    stats.Confirmed,
		"corrected":    stats.Corrected,
		"rejected":     stats.Rejected,
		"accuracy":     stats.Accuracy(),
		"retryBacklog": loop.RetryBacklog(),
		"retryQueue":   retry,
	}

	toStrings := func(m map[string]time.Duration) map[string]string {
		out := make(map[string]string, len(m))
		for k, v := range m {
			out[k] = v.String()
		}
		return out
	}
	telemetry := d.sys.Fleet().Meter().ByKey()
	cost := map[string]any{
		"llm":       toStrings(d.sys.Copilot().Meter().ByKey()),
		"telemetry": toStrings(telemetry),
	}
	// Tenant-attributed runs charge "team/site" keys; roll each team's
	// telemetry share up into a per-tenant cost gauge.
	perTenant := make(map[string]time.Duration)
	for key, v := range telemetry {
		if team, _, ok := strings.Cut(key, "/"); ok {
			perTenant[team] += v
		}
	}
	if len(perTenant) > 0 {
		cost["tenants"] = toStrings(perTenant)
	}

	payload := map[string]any{
		"uptime":    time.Since(d.started).Round(time.Millisecond).String(),
		"incidents": incidents,
		"admission": admission,
		"retrieval": retrieval,
		"feedback":  feedback,
		"cost":      cost,
	}
	if dur := d.sys.Copilot().Durable(); dur != nil {
		// WAL-backed deployment (-wal-dir): surface the durability gauges —
		// replayedRecords > 0 after a reboot is the observable proof that
		// recovery, not re-ingest, produced the serving corpus.
		st := dur.Stats()
		durability := map[string]any{
			"appendedRecords": st.AppendedRecords,
			"syncedRecords":   st.SyncedRecords,
			"replayedRecords": st.ReplayedRecords,
			"logBytes":        st.LogBytes,
		}
		if !st.LastCompaction.IsZero() {
			durability["lastCompaction"] = st.LastCompaction.UTC()
		}
		if st.Err != "" {
			durability["error"] = st.Err
		}
		payload["durability"] = durability
	}
	httpd.WriteJSON(w, http.StatusOK, payload)
}
