package main

import (
	"context"
	"net/http"
	"net/url"
	"testing"
	"time"

	"repro"
	"repro/internal/httpd"
)

// TestDaemonBatchedRetrieval boots the daemon with the retrieval
// micro-batcher enabled and verifies the serving contract end to end: a
// lone /api/retrieve on an idle daemon answers immediately (the
// hour-long -batch-wait window must never be armed for it), and /metrics
// exposes the batch-formation gauges.
func TestDaemonBatchedRetrieval(t *testing.T) {
	c := sharedCorpus(t)
	sys, err := rcacopilot.NewSystem(c.Fleet, rcacopilot.Config{
		Seed: 1, BatchMax: 8, BatchWait: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 40
	if err := sys.TrainEmbedding(c.Incidents[:n]); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddHistory(c.Incidents[:n]); err != nil {
		t.Fatal(err)
	}
	if sys.Copilot().Batcher() == nil {
		t.Fatal("BatchMax did not attach a collector")
	}
	d := newDaemon(sys, httpd.LimitConfig{Rate: 100, Burst: 100}, 8)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		d.drain(ctx)
		sys.Close()
	})

	var ret struct {
		Results []struct {
			ID         string  `json:"id"`
			Similarity float64 `json:"similarity"`
		} `json:"results"`
	}
	start := time.Now()
	code := getJSON(t, d, "/api/retrieve?q="+url.QueryEscape("hub connection failure")+"&k=3", &ret)
	elapsed := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("retrieve: status %d", code)
	}
	if len(ret.Results) == 0 {
		t.Fatal("retrieve returned no hits")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("idle retrieval took %v — the single-query fast path is waiting on the batch window", elapsed)
	}

	var metrics struct {
		Retrieval struct {
			Batching *struct {
				Batches       int64   `json:"batches"`
				Queries       int64   `json:"queries"`
				MeanOccupancy float64 `json:"meanOccupancy"`
				FlushIdle     int64   `json:"flushIdle"`
				FlushSize     int64   `json:"flushSize"`
				FlushTimer    int64   `json:"flushTimer"`
			} `json:"batching"`
		} `json:"retrieval"`
	}
	if code := getJSON(t, d, "/metrics", &metrics); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	b := metrics.Retrieval.Batching
	if b == nil {
		t.Fatal("metrics missing retrieval.batching gauges")
	}
	if b.Queries < 1 || b.FlushIdle < 1 {
		t.Fatalf("batch gauges did not count the idle retrieval: %+v", *b)
	}
	if b.MeanOccupancy != 1 {
		t.Fatalf("MeanOccupancy = %v after idle-only traffic, want 1", b.MeanOccupancy)
	}
	if b.FlushIdle+b.FlushSize+b.FlushTimer != b.Batches {
		t.Fatalf("flush reasons do not account for every batch: %+v", *b)
	}
}
