// Command rcacopilotd is the unified RCACopilot serving daemon: one
// hardened HTTP/JSON service carrying the whole on-call loop that the
// library exposes piecemeal —
//
//	POST /api/incidents           submit an incident; 202 + assigned id
//	GET  /api/incidents           submission statuses
//	GET  /api/incidents/{id}      one handling result
//	GET  /api/incidents/stream    results as server-sent events
//	POST /api/feedback            OCE verdict (confirm/correct/reject)
//	GET  /api/retrieve?q=...      nearest historical incidents
//	GET  /metrics                 serving, admission, retrieval, feedback, cost
//	/api/handlers, /api/ops, ...  handler construction (same API as handlerd)
//
// Incidents are handled by System.HandleStream on the shared worker
// budget; per-team token buckets plus a budget-derived in-flight bound
// (internal/httpd.TeamLimiter) keep admission matched to processing
// capacity. The front door is the shared hardened server
// (internal/httpd): slowloris-safe timeouts and strict bounded JSON
// bodies. SIGTERM/SIGINT drains gracefully — new submissions are refused,
// every admitted incident completes and is published, feedback is flushed
// — bounded by -grace.
//
// Startup builds the simulated deployment: generate the synthetic corpus,
// train the FastText embedding, ingest -history incidents. -shards and
// -recall-target opt retrieval into the sharded store and adaptive probe
// serving, whose live recall/probe state then shows in /metrics. -wal-dir
// puts a write-ahead log + snapshot under the store: a killed daemon —
// SIGKILL included — reboots with its learned corpus, converged tuner
// state and retry schedule, skipping re-ingest, with recovery visible as
// the /metrics durability gauges.
//
//	rcacopilotd -addr :8080 -seed 1 -history 300
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/feedback"
	"repro/internal/httpd"

	rcacopilot "repro"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", rcacopilot.ModelGPT4, "chat model: gpt-4 or gpt-3.5-turbo")
	seed := flag.Int64("seed", 1, "deterministic seed")
	days := flag.Int("days", 365, "simulated corpus span in days")
	history := flag.Int("history", 300, "historical incidents to ingest at startup")
	shards := flag.Int("shards", 0, "vector-store shards (0 = one per CPU, 1 = flat exact store)")
	recall := flag.Float64("recall-target", 0, "adaptive probe serving recall SLO (0 disables; needs -shards > 1)")
	retrainSkew := flag.Float64("retrain-skew", 0, "auto-retrain the IVF quantizer at this imbalance ratio (0 disables)")
	quantized := flag.Bool("quantized", false, "two-stage probe scan: int8 candidate collection + exact re-rank (needs -recall-target)")
	overfetch := flag.Int("overfetch", 0, "quantized candidate pool per probed shard, K×overfetch (0 = default 4)")
	batchMax := flag.Int("batch-max", 0, "micro-batch concurrent retrievals, up to this many per scan-once-per-shard execution (bit-identical results; 0/1 = unbatched)")
	batchWait := flag.Duration("batch-wait", 0, "max time an under-filled retrieval batch waits for companions (0 = 500µs default; needs -batch-max >= 2)")
	learnQueue := flag.Int("learn-queue", 64, "async feedback-learn queue depth (0 = learn inline)")
	retry := flag.Bool("retry", true, "run the learn-failure retry queue")
	tenants := flag.Bool("tenants", false, "multi-tenant serving: per-team retrieval namespaces, handler fallback, per-tenant cost attribution")
	rate := flag.Float64("rate", 5, "sustained per-team submissions/second")
	burst := flag.Float64("burst", 10, "per-team submission burst")
	queue := flag.Int("queue", 64, "submission queue depth")
	admitQueue := flag.Int("admit-queue", 0, "severity-weighted admission wait queue at saturation (0 = reject immediately)")
	grace := flag.Duration("grace", 30*time.Second, "graceful-shutdown budget after SIGTERM")
	walDir := flag.String("wal-dir", "", "durable vector store directory: write-ahead log + snapshot; a killed daemon reboots with its learned corpus, tuner state and retry schedule (empty = in-memory)")
	walSyncEvery := flag.Int("wal-sync-every", 0, "WAL group-commit size boundary (0 = 64; 1 = fsync every learn; needs -wal-dir)")
	walSyncInterval := flag.Duration("wal-sync-interval", 0, "WAL group-commit flush cadence (0 = 50ms; needs -wal-dir)")
	walCompactBytes := flag.Int64("wal-compact-bytes", 0, "log size triggering snapshot compaction + rotation (0 = 4MiB, negative = never; needs -wal-dir)")
	flag.Parse()

	if err := run(config{
		addr: *addr, model: *model, seed: *seed, days: *days, history: *history,
		shards: *shards, recall: *recall, retrainSkew: *retrainSkew,
		quantized: *quantized, overfetch: *overfetch,
		batchMax: *batchMax, batchWait: *batchWait,
		learnQueue: *learnQueue, retry: *retry, tenants: *tenants,
		rate: *rate, burst: *burst, queue: *queue, admitQueue: *admitQueue, grace: *grace,
		walDir: *walDir, walSyncEvery: *walSyncEvery,
		walSyncInterval: *walSyncInterval, walCompactBytes: *walCompactBytes,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "rcacopilotd:", err)
		os.Exit(1)
	}
}

type config struct {
	addr                string
	model               string
	seed                int64
	days, history       int
	shards              int
	recall, retrainSkew float64
	quantized           bool
	overfetch           int
	batchMax            int
	batchWait           time.Duration
	learnQueue          int
	retry               bool
	tenants             bool
	rate, burst         float64
	queue               int
	admitQueue          int
	grace               time.Duration
	walDir              string
	walSyncEvery        int
	walSyncInterval     time.Duration
	walCompactBytes     int64
}

func run(c config) error {
	log.Printf("rcacopilotd: generating corpus (seed %d, %d days)", c.seed, c.days)
	spec := rcacopilot.CorpusSpec{
		Seed: c.seed, Start: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
		Days: c.days, RecurrenceWithin20: 0.938, Team: "Transport",
	}
	corpus, err := rcacopilot.GenerateCorpusSpec(spec)
	if err != nil {
		return err
	}
	cfg := rcacopilot.Config{
		Model: c.model, Seed: c.seed,
		Shards:          c.shards,
		RecallTarget:    c.recall,
		RetrainSkew:     c.retrainSkew,
		Quantized:       c.quantized,
		Overfetch:       c.overfetch,
		BatchMax:        c.batchMax,
		BatchWait:       c.batchWait,
		AsyncLearnQueue: c.learnQueue,
		MultiTenant:     c.tenants,
		WALDir:          c.walDir,
		WALSyncEvery:    c.walSyncEvery,
		WALSyncInterval: c.walSyncInterval,
		WALCompactBytes: c.walCompactBytes,
	}
	if c.recall > 0 || c.retrainSkew >= 1 {
		cfg.Partitioner = rcacopilot.PartitionIVF
	}
	sys, err := rcacopilot.NewSystem(corpus.Fleet, cfg)
	if err != nil {
		return err
	}
	defer sys.Close()
	n := c.history
	if n <= 0 || n > len(corpus.Incidents) {
		n = len(corpus.Incidents)
	}
	log.Printf("rcacopilotd: training embedding and ingesting %d/%d incidents", n, len(corpus.Incidents))
	if err := sys.TrainEmbedding(corpus.Incidents[:n]); err != nil {
		return err
	}
	// With -wal-dir, TrainEmbedding replays the directory's snapshot + log
	// into the store (the embedding is deterministic from corpus and seed,
	// so the replayed vectors are in the attached space). A warm restart —
	// including one after SIGKILL — therefore skips re-ingest and serves
	// the recovered corpus.
	if replayed := sys.Copilot().Index().Len(); c.walDir != "" && replayed > 0 {
		log.Printf("rcacopilotd: recovered %d incidents from %s, skipping re-ingest", replayed, c.walDir)
	} else if err := sys.AddHistory(corpus.Incidents[:n]); err != nil {
		return err
	}
	if c.retry {
		if err := sys.Feedback().StartRetry(feedback.RetryConfig{}); err != nil {
			return err
		}
	}

	d := newDaemon(sys, httpd.LimitConfig{Rate: c.rate, Burst: c.burst, QueueDepth: c.admitQueue}, c.queue)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	log.Printf("rcacopilotd: listening on %s (%d historical incidents, %d categories)",
		c.addr, sys.Copilot().Index().Len(), len(sys.Copilot().Index().Categories()))
	if err := httpd.Serve(ctx, httpd.NewServer(c.addr, d), c.grace, d.drain); err != nil {
		return err
	}
	log.Print("rcacopilotd: drained and stopped")
	return nil
}
