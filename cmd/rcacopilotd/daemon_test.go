package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/httpd"

	rcacopilot "repro"
)

// The corpus and trained system are expensive; build one per test binary
// and give each test its own daemon over a fresh System sharing the
// corpus fleet-free incidents.
var (
	corpusOnce sync.Once
	corpus     *rcacopilot.Corpus
	corpusErr  error
)

func sharedCorpus(t *testing.T) *rcacopilot.Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		corpus, corpusErr = rcacopilot.GenerateCorpusSpec(rcacopilot.CorpusSpec{
			Seed: 1, Start: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
			Days: 60, RecurrenceWithin20: 0.9, Team: "Transport",
		})
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpus
}

func newTestDaemon(t *testing.T, limits httpd.LimitConfig, queue int) (*daemon, *rcacopilot.System) {
	t.Helper()
	c := sharedCorpus(t)
	sys, err := rcacopilot.NewSystem(c.Fleet, rcacopilot.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := 40
	if n > len(c.Incidents) {
		n = len(c.Incidents)
	}
	if err := sys.TrainEmbedding(c.Incidents[:n]); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddHistory(c.Incidents[:n]); err != nil {
		t.Fatal(err)
	}
	d := newDaemon(sys, limits, queue)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		d.drain(ctx)
	})
	return d, sys
}

// liveIncident builds a fresh submittable incident from a corpus incident
// beyond the ingested history: same alert shape, no pipeline enrichment.
func liveIncident(t *testing.T, id string) *rcacopilot.Incident {
	t.Helper()
	c := sharedCorpus(t)
	if len(c.Incidents) < 45 {
		t.Fatalf("corpus too small: %d incidents", len(c.Incidents))
	}
	src := c.Incidents[44]
	return &rcacopilot.Incident{
		ID: id, Title: src.Title, OwningTeam: src.OwningTeam,
		Severity: src.Severity, Alert: src.Alert, CreatedAt: src.CreatedAt,
	}
}

func postJSON(t *testing.T, srv http.Handler, path string, v any) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func getJSON(t *testing.T, srv http.Handler, path string, v any) int {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if v != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
			t.Fatalf("GET %s: %v (%s)", path, err, rec.Body.String())
		}
	}
	return rec.Code
}

func waitDone(t *testing.T, d *daemon, id string) incidentStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st incidentStatus
		code := getJSON(t, d, "/api/incidents/"+id, &st)
		if code != http.StatusOK {
			t.Fatalf("GET incident %s: status %d", id, code)
		}
		if st.Done {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("incident %s never completed", id)
	return incidentStatus{}
}

// TestDaemonEndToEnd drives the full serving loop over a real server:
// submit → SSE result → status → feedback verdict → retrieval → metrics.
func TestDaemonEndToEnd(t *testing.T) {
	d, sys := newTestDaemon(t, httpd.LimitConfig{Rate: 1000, Burst: 1000}, 16)
	ts := httptest.NewServer(d)
	defer ts.Close()

	// Subscribe to the SSE stream before submitting, so the live event
	// cannot be missed.
	stream, err := http.Get(ts.URL + "/api/incidents/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	events := make(chan event, 4)
	go func() {
		sc := bufio.NewScanner(stream.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev event
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) == nil {
				events <- ev
			}
		}
	}()

	inc := liveIncident(t, "INC-E2E-1")
	resp, err := http.Post(ts.URL+"/api/incidents", "application/json", bytes.NewReader(mustJSON(t, inc)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	select {
	case ev := <-events:
		if ev.IncidentID != "INC-E2E-1" {
			t.Fatalf("SSE event for %q", ev.IncidentID)
		}
		if ev.Error != "" {
			t.Fatalf("handling failed: %s", ev.Error)
		}
		if ev.Predicted == "" {
			t.Fatal("SSE event carries no prediction")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("no SSE event")
	}

	st := waitDone(t, d, "INC-E2E-1")
	if st.Predicted == "" || st.Summary == "" {
		t.Fatalf("status incomplete: %+v", st)
	}

	// Feedback: confirm the prediction; the loop must record it.
	rec := postJSON(t, d, "/api/feedback", feedbackRequest{
		IncidentID: "INC-E2E-1", Verdict: "confirm", Reviewer: "oce@example.test",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("feedback status %d: %s", rec.Code, rec.Body.String())
	}
	if err := sys.Feedback().Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if s := sys.Feedback().ComputeStats(); s.Total != 1 || s.Confirmed != 1 {
		t.Fatalf("feedback stats %+v", s)
	}

	// Retrieval over the ingested history.
	var ret struct {
		Results []retrievedJSON `json:"results"`
	}
	if code := getJSON(t, d, "/api/retrieve?q="+url.QueryEscape(st.Summary[:20])+"&k=3", &ret); code != http.StatusOK {
		t.Fatalf("retrieve status %d", code)
	}
	if len(ret.Results) == 0 || ret.Results[0].ID == "" {
		t.Fatalf("retrieve results %+v", ret.Results)
	}

	// Metrics reflect the work done.
	var m struct {
		Incidents struct {
			Submitted uint64 `json:"submitted"`
			Completed uint64 `json:"completed"`
			Failed    uint64 `json:"failed"`
		} `json:"incidents"`
		Feedback struct {
			Reviewed     int `json:"reviewed"`
			RetryBacklog int `json:"retryBacklog"`
		} `json:"feedback"`
		Retrieval struct {
			Entries int `json:"entries"`
		} `json:"retrieval"`
	}
	if code := getJSON(t, d, "/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.Incidents.Submitted != 1 || m.Incidents.Completed != 1 || m.Incidents.Failed != 0 {
		t.Fatalf("incident metrics %+v", m.Incidents)
	}
	if m.Feedback.Reviewed != 1 {
		t.Fatalf("feedback metrics %+v", m.Feedback)
	}
	// 40 ingested + 1 learned back from the confirmed verdict.
	if m.Retrieval.Entries != 41 {
		t.Fatalf("retrieval entries = %d, want 41", m.Retrieval.Entries)
	}
}

// TestDaemonDrain verifies the lossless-drain contract: an in-flight
// incident completes and is recorded, and a late submission is refused
// with 503.
func TestDaemonDrain(t *testing.T) {
	d, _ := newTestDaemon(t, httpd.LimitConfig{Rate: 1000, Burst: 1000}, 16)

	rec := postJSON(t, d, "/api/incidents", liveIncident(t, "INC-DRAIN-1"))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	d.drain(ctx)

	var st incidentStatus
	if code := getJSON(t, d, "/api/incidents/INC-DRAIN-1", &st); code != http.StatusOK {
		t.Fatalf("get after drain: %d", code)
	}
	if !st.Done || st.Error != "" {
		t.Fatalf("in-flight incident did not complete across drain: %+v", st)
	}

	rec = postJSON(t, d, "/api/incidents", liveIncident(t, "INC-DRAIN-2"))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("late submit status %d, want 503", rec.Code)
	}
	// The limiter slot for the refused submission must have been freed.
	if n := d.limiter.Inflight(); n != 0 {
		t.Fatalf("inflight after drain = %d", n)
	}

	// A late SSE subscription is refused too, instead of hanging forever.
	req := httptest.NewRequest("GET", "/api/incidents/stream", nil)
	srec := httptest.NewRecorder()
	d.ServeHTTP(srec, req)
	if srec.Code != http.StatusServiceUnavailable {
		t.Fatalf("late stream status %d, want 503", srec.Code)
	}
}

// TestDaemonRateLimit verifies per-team admission: burst exhaustion maps
// to 429 with a Retry-After hint, while a second team still gets through.
func TestDaemonRateLimit(t *testing.T) {
	d, _ := newTestDaemon(t, httpd.LimitConfig{Rate: 0.0001, Burst: 1, MaxInflight: -1}, 16)

	rec := postJSON(t, d, "/api/incidents", liveIncident(t, "INC-RATE-1"))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("first submit status %d: %s", rec.Code, rec.Body.String())
	}
	rec = postJSON(t, d, "/api/incidents", liveIncident(t, "INC-RATE-2"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	other := liveIncident(t, "INC-RATE-3")
	other.OwningTeam = "Networking"
	rec = postJSON(t, d, "/api/incidents", other)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("other team status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestDaemonSubmitValidation covers the strict front door: unknown
// fields 400, oversized bodies 413, invalid incidents 422, duplicates
// 409, unknown feedback targets 404.
func TestDaemonSubmitValidation(t *testing.T) {
	d, _ := newTestDaemon(t, httpd.LimitConfig{Rate: 1000, Burst: 1000}, 16)

	req := httptest.NewRequest("POST", "/api/incidents", strings.NewReader(`{"id":"x","titel":"typo"}`))
	rec := httptest.NewRecorder()
	d.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown field status %d, want 400", rec.Code)
	}

	big := fmt.Sprintf(`{"id":"big","title":%q}`, strings.Repeat("x", int(httpd.MaxBody)+1024))
	req = httptest.NewRequest("POST", "/api/incidents", strings.NewReader(big))
	rec = httptest.NewRecorder()
	d.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized status %d, want 413", rec.Code)
	}

	rec = postJSON(t, d, "/api/incidents", &rcacopilot.Incident{ID: "no-title"})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid incident status %d, want 422: %s", rec.Code, rec.Body.String())
	}

	inc := liveIncident(t, "INC-DUP-1")
	if rec = postJSON(t, d, "/api/incidents", inc); rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d", rec.Code)
	}
	if rec = postJSON(t, d, "/api/incidents", inc); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate status %d, want 409", rec.Code)
	}

	rec = postJSON(t, d, "/api/feedback", feedbackRequest{IncidentID: "INC-NEVER", Verdict: "confirm"})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown feedback target status %d, want 404", rec.Code)
	}
}

// TestDaemonMountsHandlerAPI checks the daemon serves handler CRUD on the
// same surface as handlerd.
func TestDaemonMountsHandlerAPI(t *testing.T) {
	d, _ := newTestDaemon(t, httpd.LimitConfig{}, 4)
	var out struct {
		Handlers []json.RawMessage `json:"handlers"`
	}
	if code := getJSON(t, d, "/api/handlers?team=Transport", &out); code != http.StatusOK {
		t.Fatalf("handlers status %d", code)
	}
	if len(out.Handlers) == 0 {
		t.Fatal("no handlers served")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
