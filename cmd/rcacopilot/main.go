// Command rcacopilot demonstrates the on-call flow end to end: it builds
// the simulated Transport fleet, ingests a year of labelled incident
// history, injects a live fault, lets the monitors raise the alert, and
// runs both RCACopilot stages — printing the collected evidence, the LLM
// summary, and the predicted root-cause category with its explanation.
//
//	rcacopilot -category HubPortExhaustion -model gpt-4 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/incident"
	"repro/internal/transport"

	rcacopilot "repro"
)

func main() {
	category := flag.String("category", "HubPortExhaustion", "fault to inject (a Table-1 category)")
	model := flag.String("model", rcacopilot.ModelGPT4, "chat model: gpt-4 or gpt-3.5-turbo")
	seed := flag.Int64("seed", 1, "deterministic seed")
	history := flag.Int("history", 300, "number of historical incidents to ingest")
	flag.Parse()

	if err := run(incident.Category(*category), *model, *seed, *history); err != nil {
		fmt.Fprintln(os.Stderr, "rcacopilot:", err)
		os.Exit(1)
	}
}

func run(category incident.Category, model string, seed int64, history int) error {
	fmt.Println("── building corpus and system ──")
	corpus, err := rcacopilot.GenerateCorpus(seed)
	if err != nil {
		return err
	}
	sys, err := rcacopilot.NewSystem(corpus.Fleet, rcacopilot.Config{Model: model, Seed: seed})
	if err != nil {
		return err
	}
	if history > len(corpus.Incidents) {
		history = len(corpus.Incidents)
	}
	if err := sys.TrainEmbedding(corpus.Incidents[:history]); err != nil {
		return err
	}
	if err := sys.AddHistory(corpus.Incidents[:history]); err != nil {
		return err
	}
	fmt.Printf("ingested %d historical incidents across %d categories\n\n",
		history, sys.Copilot().Index().Len())

	fmt.Printf("── injecting %s and waiting for monitors ──\n", category)
	fleet := sys.Fleet()
	fault, err := fleet.Inject(category, 0)
	if err != nil {
		return err
	}
	defer fault.Repair()
	alert, ok := fleet.FirstAlert()
	if !ok {
		return fmt.Errorf("no monitor fired after injection")
	}
	fmt.Printf("alert: %s [%s] on %s\n  %s\n\n", alert.Type, alert.Scope, alert.Target, alert.Message)

	inc := &rcacopilot.Incident{
		ID: "INC-LIVE-0001", Title: alert.Message, OwningTeam: "Transport",
		Severity: rcacopilot.Sev2, Alert: alert, CreatedAt: fleet.Clock().Now(),
	}
	outcome, err := sys.HandleIncident(inc)
	if err != nil {
		return err
	}

	fmt.Println("── collection stage ──")
	fmt.Printf("handler: %s (%d steps, modelled cost %s)\n",
		outcome.Report.Handler, len(outcome.Report.Steps), outcome.Report.VirtualCost)
	for _, s := range outcome.Report.Steps {
		fmt.Printf("  %-28s [%s] -> %s\n", s.Label, s.Kind, s.Outcome)
	}
	fmt.Printf("evidence collected: %d sources\n", len(inc.Evidence))
	for _, ev := range inc.Evidence {
		fmt.Printf("  [%s/%s] %s\n", ev.Kind, ev.Source, firstLine(ev.Body))
	}

	fmt.Println("\n── summarized diagnostic information ──")
	fmt.Println(wrap(outcome.Summary, 78))

	fmt.Println("\n── root cause prediction ──")
	fmt.Printf("predicted category: %s (option %s, unseen=%t)\n",
		inc.Predicted, outcome.Prediction.Option, outcome.Prediction.Unseen)
	fmt.Printf("ground truth:       %s\n", category)
	fmt.Println("explanation:")
	fmt.Println(wrap(inc.Explanation, 78))
	if len(outcome.Report.Mitigations) > 0 {
		fmt.Println("suggested mitigations:")
		for _, m := range outcome.Report.Mitigations {
			fmt.Println("  -", m)
		}
	}
	_ = transport.Table1Categories
	return nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 90 {
		s = s[:90] + "…"
	}
	return s
}

func wrap(s string, width int) string {
	words := strings.Fields(s)
	var b strings.Builder
	line := 0
	for _, w := range words {
		if line+len(w)+1 > width {
			b.WriteString("\n")
			line = 0
		} else if line > 0 {
			b.WriteString(" ")
			line++
		}
		b.WriteString(w)
		line += len(w)
	}
	return b.String()
}
