// Command experiments regenerates every table and figure of the paper's
// evaluation (§5) against the simulated substrates:
//
//	experiments -run all            # everything
//	experiments -run table2         # one experiment
//	experiments -run table2,fig12   # a subset
//	experiments -seed 7             # different corpus/LLM seed
//	experiments -workers 1          # sequential reference run
//	experiments -shards 8           # sharded vector index (same results)
//	experiments -shards 8 -partitioner ivf   # IVF coarse-quantizer routing
//	experiments -shards 8 -partitioner ivf -probes 2  # approximate serving
//	experiments -shards 8 -partitioner ivf -recall-target 0.95  # adaptive probe budget
//	experiments -shards 8 -partitioner ivf -retrain-skew 1.5    # skew-triggered retrain
//	experiments -shards 8 -partitioner ivf -probes 2 -quantized  # int8 two-stage scan
//	experiments -parallel-budget 16 # pin the worker budget explicitly
//	experiments -auto-limit         # latency-driven worker budget
//
// The retrieval goldens are index-independent: -shards swaps the vector
// store behind every pipeline for the sharded implementation (category-hash
// or IVF routing per -partitioner), and because sharded search is exact and
// merges under the flat store's ordering, every table and figure reproduces
// bit-identically. -probes opts into probe-limited approximate retrieval
// (only the nearest IVF partitions are searched), which trades exactness
// for scan reduction — tables may then deviate from the goldens by design;
// the recall floor for that mode is pinned in internal/vectordb.
// -recall-target replaces the static budget with the recall-SLO
// auto-tuner (and -retrain-skew enables automatic IVF retraining): tables
// deviate the same way, and more so early in a run while the controller
// is still converging from its cold probes=1 start — the SLO describes
// steady-state serving, not a short evaluation sweep.
//
// The experiments fan out on a bounded worker pool (one worker per CPU by
// default); because the simulated models are order-independent, every
// worker count produces identical scores and modelled (*-marked) latency
// columns — -workers only changes wall time, which is also what the
// measured (unstarred) Train/Infer cells report, so only those cells vary
// between runs.
//
// Outputs are printed in the same row/series layout the paper reports, so
// shapes can be compared side by side (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/eval"
	"repro/internal/parallel"
	"repro/internal/vectordb"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiments: table1,table2,table3,table4,fig2,fig3,fig12,trust,ablation")
	seed := flag.Int64("seed", 1, "corpus and model seed")
	teamsN := flag.Int("team-incidents", 20, "incidents per team for table4")
	workers := flag.Int("workers", 0, "worker-pool size; 0 = one per CPU, 1 = sequential")
	shards := flag.Int("shards", 0, "vector-index shard count; 0 = one per CPU, 1 = flat exact store")
	partitioner := flag.String("partitioner", "", "shard routing: category (default) or ivf")
	probes := flag.Int("probes", 0, "IVF partitions searched per query (approximate); 0 = exact fan-out")
	recallTarget := flag.Float64("recall-target", 0, "recall-SLO auto-tuner target in (0,1]; replaces -probes with a controller-owned budget")
	shadowRate := flag.Float64("shadow-rate", 0, "fraction of queries the auto-tuner shadows exactly; 0 = default 0.05")
	retrainSkew := flag.Float64("retrain-skew", 0, "auto-retrain the IVF quantizer once max/mean shard skew or centroid drift reaches this ratio (>= 1); 0 = off")
	quantized := flag.Bool("quantized", false, "two-stage probe scan: int8 candidate collection + exact re-rank (requires probe-limited serving)")
	overfetch := flag.Int("overfetch", 0, "quantized candidate pool per probed shard, K×overfetch; 0 = default 4")
	batch := flag.Int("batch", 0, "micro-batch concurrent retrievals, up to this many per scan-once-per-shard execution (bit-identical results); 0/1 = unbatched")
	tenants := flag.Bool("tenants", false, "run table4's teams as co-tenants on one shared fleet with per-tenant cost attribution")
	parallelBudget := flag.Int("parallel-budget", -1, "pin the process-wide extra-worker budget; -1 = default/auto")
	autoLimit := flag.Bool("auto-limit", false, "auto-size the worker budget from observed model-call latency")
	flag.Parse()

	if *probes < 0 {
		fatal(fmt.Errorf("-probes must be >= 0 (0 = exact fan-out), got %d", *probes))
	}
	if *probes > 0 && (*shards <= 1 || *partitioner != "ivf") {
		// Fail here rather than deep inside whichever experiment first
		// builds a pipeline: probe selection needs trained IVF centroids.
		fatal(fmt.Errorf("-probes %d requires -shards > 1 and -partitioner ivf (got -shards %d -partitioner %q)",
			*probes, *shards, *partitioner))
	}
	if *recallTarget < 0 || *recallTarget > 1 {
		fatal(fmt.Errorf("-recall-target must be in (0, 1] (0 = off), got %v", *recallTarget))
	}
	if *recallTarget > 0 && *probes > 0 {
		fatal(fmt.Errorf("-recall-target and -probes are mutually exclusive (the auto-tuner owns the probe budget)"))
	}
	if *retrainSkew != 0 && *retrainSkew < 1 {
		fatal(fmt.Errorf("-retrain-skew must be 0 (off) or >= 1, got %v", *retrainSkew))
	}
	if (*recallTarget > 0 || *retrainSkew > 0) && (*shards <= 1 || *partitioner != "ivf") {
		fatal(fmt.Errorf("adaptive serving (-recall-target/-retrain-skew) requires -shards > 1 and -partitioner ivf (got -shards %d -partitioner %q)",
			*shards, *partitioner))
	}
	if *shadowRate < 0 || *shadowRate > 1 {
		fatal(fmt.Errorf("-shadow-rate must be in (0, 1] (0 = default), got %v", *shadowRate))
	}
	if *shadowRate > 0 && *recallTarget == 0 {
		fatal(fmt.Errorf("-shadow-rate without -recall-target has nothing to tune"))
	}
	if *overfetch < 0 {
		fatal(fmt.Errorf("-overfetch must be >= 0 (0 = default), got %d", *overfetch))
	}
	if *overfetch > 0 && !*quantized {
		fatal(fmt.Errorf("-overfetch without -quantized has nothing to overfetch"))
	}
	if *quantized && *probes == 0 && *recallTarget == 0 {
		fatal(fmt.Errorf("-quantized requires probe-limited serving (-probes > 0 or -recall-target > 0); exact fan-out never uses the int8 sidecar"))
	}
	if *batch < 0 {
		fatal(fmt.Errorf("-batch must be >= 0 (0/1 = unbatched), got %d", *batch))
	}
	if *batch > 1 && *workers == 1 {
		fatal(fmt.Errorf("-batch %d with -workers 1 has nothing to coalesce: sequential cells issue one retrieval at a time", *batch))
	}
	if *parallelBudget >= 0 {
		parallel.SetLimit(*parallelBudget)
		if *autoLimit {
			fmt.Fprintln(os.Stderr, "experiments: -parallel-budget pins the budget; ignoring -auto-limit")
			*autoLimit = false
		}
	}
	eval.SetChatAutoTune(*autoLimit)

	want := map[string]bool{}
	for _, r := range strings.Split(*run, ",") {
		want[strings.TrimSpace(r)] = true
	}
	all := want["all"]

	var env *eval.Env
	needEnv := all || want["table1"] || want["table2"] || want["table3"] ||
		want["fig2"] || want["fig3"] || want["fig12"] || want["trust"] || want["ablation"]
	if needEnv {
		start := time.Now()
		var err error
		env, err = eval.NewEnv(*seed)
		if err != nil {
			fatal(err)
		}
		env.Workers = *workers
		env.Shards = *shards
		env.Partitioner = *partitioner
		env.Probes = *probes
		env.RecallTarget = *recallTarget
		env.ShadowRate = *shadowRate
		env.RetrainSkew = *retrainSkew
		env.Quantized = *quantized
		env.Overfetch = *overfetch
		env.BatchMax = *batch
		if *batch > 1 {
			fmt.Printf("retrieval batching: up to %d concurrent queries per scan (bit-identical to unbatched)\n", *batch)
		}
		if *shards > 1 {
			p := *partitioner
			if p == "" {
				p = "category"
			}
			serving := "exact fan-out"
			if *probes > 0 {
				serving = fmt.Sprintf("probe-limited, %d probes (approximate once IVF trains)", *probes)
			}
			if *recallTarget > 0 {
				serving = fmt.Sprintf("adaptive probes, recall SLO %.2f (approximate once IVF trains)", *recallTarget)
			}
			if *retrainSkew > 0 {
				serving += fmt.Sprintf(", auto-retrain at skew %.2f", *retrainSkew)
			}
			if *quantized {
				of := *overfetch
				if of == 0 {
					of = vectordb.DefaultOverfetch
				}
				serving += fmt.Sprintf(", int8 two-stage scan (overfetch %d)", of)
			}
			fmt.Printf("vector index: %d shards (%s routing, %s)\n", *shards, p, serving)
		}
		if *workers != 1 {
			n := *workers
			if n <= 0 {
				n = runtime.GOMAXPROCS(0)
			}
			fmt.Printf("worker pool: %d workers over %d CPUs\n", n, runtime.NumCPU())
		}
		stats := env.Corpus.ComputeStats()
		fmt.Printf("corpus: %d incidents, %d categories, new-category fraction %.4f, recurrence<=20d %.3f (generated in %v)\n\n",
			stats.NumIncidents, stats.NumCategories, stats.NewFraction, stats.RecurrenceWithin20, time.Since(start).Round(time.Millisecond))
	}

	if all || want["table1"] {
		section("Table 1: example incidents per root cause category")
		rows, err := eval.RunTable1(env)
		if err != nil {
			fatal(err)
		}
		fmt.Println(eval.FormatTable1(rows))
	}
	if all || want["fig2"] {
		section("Figure 2: recurring incident proportion vs time interval")
		fmt.Println(eval.FormatHist("interval (days) | proportion", eval.RunFig2(env), 50))
	}
	if all || want["fig3"] {
		section("Figure 3: distribution of incident category frequency")
		fmt.Println(eval.FormatHist("occurrences | #categories", eval.RunFig3(env), 0.33))
	}
	if all || want["table2"] {
		section("Table 2: effectiveness of different methods")
		start := time.Now()
		rows, err := eval.RunTable2(env)
		if err != nil {
			fatal(err)
		}
		fmt.Println(eval.FormatTable2(rows))
		fmt.Printf("(wall time %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if all || want["table3"] {
		section("Table 3: effectiveness of different prompt context")
		rows, err := eval.RunTable3(env)
		if err != nil {
			fatal(err)
		}
		fmt.Println(eval.FormatTable3(rows))
	}
	if all || want["fig12"] {
		section("Figure 12: effectiveness of different K and alpha")
		points, err := eval.RunFig12(env, nil, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(eval.FormatFig12(points))
	}
	if all || want["table4"] {
		if *tenants {
			section("Table 4: teams as co-tenants on one shared fleet")
			rows, shares, err := eval.RunTable4Tenants(*seed, *teamsN)
			if err != nil {
				fatal(err)
			}
			fmt.Println(eval.FormatTable4(rows))
			fmt.Println(eval.FormatTenantShares(shares))
		} else {
			section("Table 4: teams using RCACopilot diagnostic collection")
			rows, err := eval.RunTable4(*seed, *teamsN, *workers)
			if err != nil {
				fatal(err)
			}
			fmt.Println(eval.FormatTable4(rows))
		}
	}
	if all || want["trust"] {
		section("§5.6 Trustworthiness: three evaluation rounds")
		rounds, err := eval.RunTrustworthiness(env, 3)
		if err != nil {
			fatal(err)
		}
		fmt.Println(eval.FormatTrust(rounds))
	}
	if all || want["ablation"] {
		section("Design ablation: retrieval diversity and embedding scale")
		rows, err := eval.RunDesignAblation(env)
		if err != nil {
			fatal(err)
		}
		fmt.Println(eval.FormatAblation(rows))
	}
}

func section(title string) {
	fmt.Println("==== " + title)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
