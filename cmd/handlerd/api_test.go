package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/handler"
	"repro/internal/transport"
)

func testServer(t *testing.T) http.Handler {
	t.Helper()
	srv, err := newServer("Transport")
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func do(t *testing.T, srv http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestIndexPage(t *testing.T) {
	rec := do(t, testServer(t), "GET", "/", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "handler construction") {
		t.Fatalf("index: %d %q", rec.Code, rec.Body.String())
	}
}

func TestOpsEndpoint(t *testing.T) {
	rec := do(t, testServer(t), "GET", "/api/ops", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ops status %d", rec.Code)
	}
	var out struct{ Ops []string }
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Ops) < 10 {
		t.Fatalf("ops = %v", out.Ops)
	}
}

func TestListAndGetHandlers(t *testing.T) {
	srv := testServer(t)
	rec := do(t, srv, "GET", "/api/handlers?team=Transport", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("list status %d", rec.Code)
	}
	var out struct{ Handlers []handler.Handler }
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Handlers) != len(transport.AllAlertTypes()) {
		t.Fatalf("handlers = %d, want %d", len(out.Handlers), len(transport.AllAlertTypes()))
	}

	rec = do(t, srv, "GET", "/api/handlers/"+string(transport.AlertDiskSpaceLow), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get status %d: %s", rec.Code, rec.Body.String())
	}
	rec = do(t, srv, "GET", "/api/handlers/NoSuchAlert", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("missing handler status %d", rec.Code)
	}
}

func TestSaveNewVersionRoundTrip(t *testing.T) {
	srv := testServer(t)
	h, err := handler.Builtin(transport.AlertDiskSpaceLow)
	if err != nil {
		t.Fatal(err)
	}
	h.Enabled = false
	body, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, srv, "POST", "/api/handlers", body)
	if rec.Code != http.StatusCreated {
		t.Fatalf("save status %d: %s", rec.Code, rec.Body.String())
	}
	var created struct{ Version int }
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created.Version != 2 {
		t.Fatalf("version = %d, want 2 (builtin was v1)", created.Version)
	}

	rec = do(t, srv, "GET", "/api/versions/"+string(transport.AlertDiskSpaceLow)+"?team=Transport", nil)
	var vs struct{ Versions int }
	if err := json.Unmarshal(rec.Body.Bytes(), &vs); err != nil {
		t.Fatal(err)
	}
	if vs.Versions != 2 {
		t.Fatalf("versions = %d, want 2", vs.Versions)
	}

	// Old version must stay addressable.
	rec = do(t, srv, "GET", "/api/handlers/"+string(transport.AlertDiskSpaceLow)+"?version=1", nil)
	var v1 handler.Handler
	if err := json.Unmarshal(rec.Body.Bytes(), &v1); err != nil {
		t.Fatal(err)
	}
	if !v1.Enabled {
		t.Fatal("version 1 should still be the enabled original")
	}
}

func TestSaveRejectsInvalidHandler(t *testing.T) {
	srv := testServer(t)
	rec := do(t, srv, "POST", "/api/handlers", []byte(`{"name":"x"}`))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid handler status %d", rec.Code)
	}
	rec = do(t, srv, "POST", "/api/handlers", []byte(`{not json`))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", rec.Code)
	}
}

func TestGetBadVersionParam(t *testing.T) {
	srv := testServer(t)
	rec := do(t, srv, "GET", "/api/handlers/"+string(transport.AlertDiskSpaceLow)+"?version=abc", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad version status %d", rec.Code)
	}
}
