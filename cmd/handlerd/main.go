// Command handlerd is the handler-construction web service — the substitute
// for the paper's Figure 10 GUI. OCEs author, version, inspect and enable
// incident handlers over a JSON API; a minimal HTML front page documents
// the endpoints.
//
//	handlerd -addr :8080
//
// Endpoints:
//
//	GET  /                 HTML overview
//	GET  /api/ops          registered query-action ops
//	GET  /api/handlers?team=T             latest handlers of a team
//	GET  /api/handlers/{alert}?team=T[&version=N]  one handler (or a version)
//	POST /api/handlers     save a handler (JSON body) as a new version
//	GET  /api/versions/{alert}?team=T     version count
//
// The HTTP front is the shared hardened server (internal/httpd): header/
// read/write/idle timeouts, bounded strict JSON bodies, and graceful
// shutdown — SIGTERM lets in-flight requests complete instead of killing
// them. The full serving surface, incident submission included, is
// cmd/rcacopilotd; handlerd remains the minimal CRUD-only deployment.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/handler"
	"repro/internal/httpd"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	team := flag.String("bootstrap-team", "Transport", "team to install the builtin handler suite for")
	grace := flag.Duration("grace", 15*time.Second, "graceful-shutdown budget after SIGTERM")
	flag.Parse()

	srv, err := newServer(*team)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	log.Printf("handlerd listening on %s (builtins installed for team %s)", *addr, *team)
	if err := httpd.Serve(ctx, httpd.NewServer(*addr, srv), *grace, nil); err != nil {
		log.Fatal(err)
	}
	log.Print("handlerd: drained and stopped")
}

func newServer(bootstrapTeam string) (http.Handler, error) {
	reg := handler.NewRegistry(nil)
	if bootstrapTeam != "" {
		if _, err := reg.InstallBuiltins(bootstrapTeam); err != nil {
			return nil, fmt.Errorf("bootstrap: %w", err)
		}
	}
	return httpd.NewHandlerAPI(reg), nil
}
