// Command handlerd is the handler-construction web service — the substitute
// for the paper's Figure 10 GUI. OCEs author, version, inspect and enable
// incident handlers over a JSON API; a minimal HTML front page documents
// the endpoints.
//
//	handlerd -addr :8080
//
// Endpoints:
//
//	GET  /                 HTML overview
//	GET  /api/ops          registered query-action ops
//	GET  /api/handlers?team=T             latest handlers of a team
//	GET  /api/handlers/{alert}?team=T[&version=N]  one handler (or a version)
//	POST /api/handlers     save a handler (JSON body) as a new version
//	GET  /api/versions/{alert}?team=T     version count
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/handler"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	team := flag.String("bootstrap-team", "Transport", "team to install the builtin handler suite for")
	flag.Parse()

	srv, err := newServer(*team)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("handlerd listening on %s (builtins installed for team %s)", *addr, *team)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

func newServer(bootstrapTeam string) (http.Handler, error) {
	reg := handler.NewRegistry(nil)
	if bootstrapTeam != "" {
		if _, err := reg.InstallBuiltins(bootstrapTeam); err != nil {
			return nil, fmt.Errorf("bootstrap: %w", err)
		}
	}
	return NewAPI(reg), nil
}
