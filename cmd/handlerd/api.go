package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/handler"
	"repro/internal/incident"
)

// API serves the handler-construction endpoints over a registry.
type API struct {
	reg *handler.Registry
	mux *http.ServeMux
}

// NewAPI builds the HTTP handler.
func NewAPI(reg *handler.Registry) *API {
	a := &API{reg: reg, mux: http.NewServeMux()}
	a.mux.HandleFunc("GET /", a.index)
	a.mux.HandleFunc("GET /api/ops", a.ops)
	a.mux.HandleFunc("GET /api/handlers", a.list)
	a.mux.HandleFunc("GET /api/handlers/{alert}", a.get)
	a.mux.HandleFunc("POST /api/handlers", a.save)
	a.mux.HandleFunc("GET /api/versions/{alert}", a.versions)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

func (a *API) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!DOCTYPE html>
<title>RCACopilot handler construction</title>
<h1>RCACopilot handler construction</h1>
<p>To support a new alert type, add a handler composed of reusable
scope-switching, query and mitigation actions; every save appends a new
version so historical changes stay addressable.</p>
<ul>
<li><code>GET /api/ops</code> — reusable query actions</li>
<li><code>GET /api/handlers?team=Transport</code> — the team's handlers</li>
<li><code>GET /api/handlers/{alertType}?team=Transport&amp;version=N</code> — one handler</li>
<li><code>POST /api/handlers</code> — save (JSON handler document)</li>
<li><code>GET /api/versions/{alertType}?team=Transport</code> — version count</li>
</ul>`)
}

func (a *API) ops(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ops": handler.OpNames()})
}

func team(r *http.Request) string {
	t := r.URL.Query().Get("team")
	if t == "" {
		t = "Transport"
	}
	return t
}

func (a *API) list(w http.ResponseWriter, r *http.Request) {
	hs, err := a.reg.List(team(r))
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"team": team(r), "handlers": hs})
}

func (a *API) get(w http.ResponseWriter, r *http.Request) {
	alert := incident.AlertType(r.PathValue("alert"))
	var (
		h   *handler.Handler
		err error
	)
	if v := r.URL.Query().Get("version"); v != "" {
		n, convErr := strconv.Atoi(v)
		if convErr != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad version %q", v))
			return
		}
		h, err = a.reg.Version(team(r), alert, n)
	} else {
		h, err = a.reg.Latest(team(r), alert)
	}
	if err != nil {
		status := http.StatusNotFound
		if !strings.Contains(err.Error(), "no handler") && !strings.Contains(err.Error(), "no version") {
			status = http.StatusInternalServerError
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

func (a *API) save(w http.ResponseWriter, r *http.Request) {
	var h handler.Handler
	if err := json.NewDecoder(r.Body).Decode(&h); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	version, err := a.reg.Save(&h)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"team": h.Team, "alertType": h.AlertType, "version": version,
	})
}

func (a *API) versions(w http.ResponseWriter, r *http.Request) {
	alert := incident.AlertType(r.PathValue("alert"))
	writeJSON(w, http.StatusOK, map[string]any{
		"team": team(r), "alertType": alert,
		"versions": a.reg.Versions(team(r), alert),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing more can be reported.
		return
	}
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
