package rcacopilot

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// failingEmbedder errors on every Embed after attachment — the realistic
// async-learn fault (an embedding backend going down while verdicts keep
// arriving). Dim stays valid so SetEmbedder succeeds.
type failingEmbedder struct{ dim int }

func (f failingEmbedder) Embed(string) ([]float64, error) {
	return nil, fmt.Errorf("embedding backend unavailable")
}
func (f failingEmbedder) Dim() int { return f.dim }

// TestAsyncLearnFailureReachesSubmitter is the end-to-end regression test
// for the async error-surfacing satellite: with background ingest on and
// the embedder failing, a submitted verdict's learn error must reach the
// submitting OCE — through the loop's notifier and failure records, and
// renderable as a notification — without anyone calling Flush.
func TestAsyncLearnFailureReachesSubmitter(t *testing.T) {
	c := sharedCorpus(t)
	sys, err := NewSystem(c.Fleet, Config{Seed: 3, AsyncLearnQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	sys.Copilot().SetEmbedder(failingEmbedder{dim: 8})

	notified := make(chan LearnFailure, 1)
	loop := sys.Feedback()
	loop.SetNotifier(func(f LearnFailure) { notified <- f })

	inc := c.Incidents[10].Clone()
	inc.ID = "INC-ASYNC-FAIL"
	inc.Predicted = inc.Category
	// Submit returns immediately (async); the learn fails in the
	// background.
	if _, err := sys.Feedback().Submit(inc, VerdictConfirm, "", "oce-carol", ""); err != nil {
		t.Fatal(err)
	}

	var f LearnFailure
	select {
	case f = <-notified:
	case <-time.After(5 * time.Second):
		t.Fatal("async learn failure never reached the notifier")
	}
	if f.IncidentID != "INC-ASYNC-FAIL" || f.Reviewer != "oce-carol" || f.Err == nil {
		t.Fatalf("failure %+v lacks attribution", f)
	}
	if _, ok := loop.FailureFor("INC-ASYNC-FAIL"); !ok {
		t.Fatal("failure not recorded on the loop")
	}

	msg := sys.RenderLearnFailure(f, ReportOptions{})
	for _, want := range []string{"INC-ASYNC-FAIL", "oce-carol", "embedding backend unavailable", "confirm INC-ASYNC-FAIL"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("notification missing %q:\n%s", want, msg)
		}
	}
}
