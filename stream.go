package rcacopilot

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/parallel"
)

// StreamResult is one handled incident emitted by HandleStream. Exactly one
// of Outcome and Err is meaningful; Incident is always the input incident,
// so consumers can correlate results with submissions (completion order is
// not submission order).
type StreamResult struct {
	Incident *Incident
	Outcome  *Outcome
	Err      error
}

// HandleStream runs the full pipeline over a live stream of incidents — the
// shape an alert bus feeds — and emits a StreamResult per incident on the
// returned channel, in completion order. Workers are drawn from the same
// process-wide budget as HandleIncidents and the evaluation harness
// (internal/parallel), so a stream and concurrent batch work share one
// concurrency bound; at least one worker always runs, so the stream makes
// progress even with the budget exhausted.
//
// Backpressure flows both ways: workers stop pulling from in while the
// consumer lags on the output channel, and a slow producer simply idles the
// workers. The output channel closes after in closes and all in-flight
// incidents have been emitted, or after ctx is cancelled (in-flight results
// may then be dropped rather than block). The consumer MUST either drain
// the output channel until it closes or cancel ctx: backpressure means
// workers block on an unread result, so abandoning the channel with an
// uncancellable ctx parks them — and their reservation against the shared
// budget — forever. Once the stream ends by either route, the reserved
// workers return to the budget. A nil ctx means context.Background().
//
// Each incident's outcome is identical to what HandleIncident would produce
// for it: per-incident errors arrive as StreamResult.Err instead of
// terminating the stream.
//
// HandleStream is the engine behind cmd/rcacopilotd's incident-serving
// endpoints: the daemon feeds POST /api/incidents submissions into in,
// fans results out to SSE subscribers, and drains by closing in — the
// returned channel's close is the signal that every in-flight incident
// has been emitted, which is what makes a graceful SIGTERM drain lossless.
func (s *System) HandleStream(ctx context.Context, in <-chan *Incident) <-chan StreamResult {
	if ctx == nil {
		ctx = context.Background()
	}
	extras := parallel.Reserve(runtime.GOMAXPROCS(0) - 1)
	out := make(chan StreamResult)

	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		for {
			var inc *Incident
			select {
			case <-ctx.Done():
				return
			case i, ok := <-in:
				if !ok {
					return
				}
				inc = i
			}
			outcome, err := s.HandleIncident(inc)
			select {
			case <-ctx.Done():
				return
			case out <- StreamResult{Incident: inc, Outcome: outcome, Err: err}:
			}
		}
	}
	for w := 0; w < 1+extras; w++ {
		wg.Add(1)
		go worker()
	}
	go func() {
		wg.Wait()
		parallel.Release(extras)
		close(out)
	}()
	return out
}
