package rcacopilot

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus component micro-benchmarks for the substrates. The
// experiment benchmarks print nothing — run `go run ./cmd/experiments` to
// see the regenerated rows/series — but they regenerate the same results,
// so `go test -bench=. -benchmem` doubles as a reproduction smoke test.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/handler"
	"repro/internal/incident"
	"repro/internal/llm/simgpt"
	"repro/internal/parallel"
	"repro/internal/prompt"
	"repro/internal/transport"
)

var (
	benchOnce sync.Once
	benchEnv  *eval.Env
	benchErr  error
)

func sharedBenchEnv(b *testing.B) *eval.Env {
	b.Helper()
	benchOnce.Do(func() { benchEnv, benchErr = eval.NewEnv(1) })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkTable1CorpusGeneration measures generating the full 653-incident
// year (Table 1's corpus, including fault injection and handler-driven
// collection for every incident).
func BenchmarkTable1CorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Generate(dataset.DefaultSpec(int64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Recurrence regenerates the Figure 2 recurrence histogram.
func BenchmarkFig2Recurrence(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hs := eval.RunFig2(env); len(hs) == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkFig3CategoryFrequency regenerates the Figure 3 long-tail
// histogram.
func BenchmarkFig3CategoryFrequency(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hs := eval.RunFig3(env); len(hs) != 10 {
			b.Fatal("bad histogram")
		}
	}
}

// BenchmarkTable2Methods regenerates the full Table 2 method comparison
// (all seven methods, training included).
func BenchmarkTable2Methods(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunTable2(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable3Ablation regenerates the Table 3 prompt-context ablation.
func BenchmarkTable3Ablation(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunTable3(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig12KAlphaSweep regenerates a reduced Figure 12 grid (the full
// 5×5 sweep is `cmd/experiments -run fig12`).
func BenchmarkFig12KAlphaSweep(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := eval.RunFig12(env, []int{3, 5}, []float64{0.2, 0.6})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 4 {
			b.Fatalf("points = %d", len(points))
		}
	}
}

// BenchmarkTable4TeamCollection regenerates the Table 4 multi-team
// diagnostic-collection simulation.
func BenchmarkTable4TeamCollection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunTable4(1, 10, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTrustworthinessRounds regenerates the §5.6 stability rounds.
func BenchmarkTrustworthinessRounds(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rounds, err := eval.RunTrustworthiness(env, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(rounds) != 3 {
			b.Fatalf("rounds = %d", len(rounds))
		}
	}
}

// BenchmarkDesignAblation regenerates the design-choice ablation
// (retrieval diversity constraint, embedding scale).
func BenchmarkDesignAblation(b *testing.B) {
	env := sharedBenchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunDesignAblation(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// ---- parallel-vs-sequential engine benchmarks ----
//
// The same workload at Workers=1 (sequential reference) and Workers=0 (one
// worker per CPU): the ratio is the engine's wall-clock speedup on this
// machine. On a single-CPU runner the pool degrades to the sequential path
// and the ratio is 1×; on a 4+-core box the experiment suite drops by the
// core count (minus the sequential corpus/FastText setup, per Amdahl).

// benchWithWorkers runs fn with the shared env pinned to the given worker
// count, restoring it afterwards. The shared FastText model is trained
// before the timer starts so whichever variant runs first doesn't absorb
// the one-time setup.
func benchWithWorkers(b *testing.B, workers int, fn func(e *eval.Env)) {
	e := sharedBenchEnv(b)
	if _, _, err := e.FastText(); err != nil {
		b.Fatal(err)
	}
	prev := e.Workers
	e.Workers = workers
	defer func() { e.Workers = prev }()
	b.ResetTimer()
	fn(e)
}

// BenchmarkTable2Sequential regenerates Table 2 on the sequential path.
func BenchmarkTable2Sequential(b *testing.B) {
	benchWithWorkers(b, 1, func(e *eval.Env) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.RunTable2(e); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable2Parallel regenerates Table 2 on the worker pool.
func BenchmarkTable2Parallel(b *testing.B) {
	benchWithWorkers(b, 0, func(e *eval.Env) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.RunTable2(e); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig12Sequential sweeps the reduced Fig 12 grid sequentially.
func BenchmarkFig12Sequential(b *testing.B) {
	benchWithWorkers(b, 1, func(e *eval.Env) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.RunFig12(e, []int{3, 5}, []float64{0.2, 0.6}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig12Parallel sweeps the reduced Fig 12 grid on the pool.
func BenchmarkFig12Parallel(b *testing.B) {
	benchWithWorkers(b, 0, func(e *eval.Env) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.RunFig12(e, []int{3, 5}, []float64{0.2, 0.6}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchBatch measures System-level batch handling at a worker count.
func benchBatch(b *testing.B, workers int) {
	env := sharedBenchEnv(b)
	sys, err := NewSystem(env.Corpus.Fleet, Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.TrainEmbedding(env.Train[:200]); err != nil {
		b.Fatal(err)
	}
	if err := sys.AddHistory(env.Train[:200]); err != nil {
		b.Fatal(err)
	}
	fault, err := sys.Fleet().Inject("HubPortExhaustion", 0)
	if err != nil {
		b.Fatal(err)
	}
	defer fault.Repair()
	alert, ok := sys.Fleet().FirstAlert()
	if !ok {
		b.Fatal("no alert")
	}
	at := sys.Fleet().Clock().Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		incs := make([]*incident.Incident, 16)
		for j := range incs {
			incs[j] = &incident.Incident{
				ID: fmt.Sprintf("INC-BENCH-%d-%03d", i, j), Title: alert.Message,
				OwningTeam: "Transport", Severity: incident.Sev2, Alert: alert,
				CreatedAt: at,
			}
		}
		if _, err := sys.HandleIncidents(incs, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchHandleSequential handles a 16-incident batch one at a time.
func BenchmarkBatchHandleSequential(b *testing.B) { benchBatch(b, 1) }

// BenchmarkBatchHandleParallel handles a 16-incident batch on the pool.
func BenchmarkBatchHandleParallel(b *testing.B) { benchBatch(b, 0) }

// ---- component micro-benchmarks ----

// benchIncident injects a fault and returns a collected incident plus its
// copilot, for per-stage benchmarks.
func benchIncident(b *testing.B) (*core.Copilot, *incident.Incident) {
	b.Helper()
	env := sharedBenchEnv(b)
	chat := simgpt.MustNew(simgpt.GPT4, simgpt.Options{Seed: 1})
	cop, err := core.New(env.Corpus.Fleet, chat, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	ft, _, err := env.FastText()
	if err != nil {
		b.Fatal(err)
	}
	cop.SetEmbedder(core.FastTextEmbedder{Model: ft})
	for i, in := range env.Train {
		if i >= 200 {
			break
		}
		if err := cop.Learn(in.Clone()); err != nil {
			b.Fatal(err)
		}
	}
	return cop, env.Test[0].Clone()
}

// BenchmarkCollectionStage measures one handler execution (the paper's
// per-incident collection work, Table 4's unit).
func BenchmarkCollectionStage(b *testing.B) {
	env := sharedBenchEnv(b)
	fleet := env.Corpus.Fleet
	runner := handler.NewRunner(fleet)
	fault, err := fleet.Inject("HubPortExhaustion", 0)
	if err != nil {
		b.Fatal(err)
	}
	defer fault.Repair()
	alert, ok := fleet.FirstAlert()
	if !ok {
		b.Fatal("no alert")
	}
	h, err := handler.Builtin(alert.Type)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc := core.IncidentAt(alert, incident.Sev2, "Transport", i, fleet.Clock().Now())
		if _, err := runner.Run(h, inc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLLMSummarization measures the Figure 7 summarization step.
func BenchmarkLLMSummarization(b *testing.B) {
	cop, inc := benchIncident(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc.Summary = ""
		if err := cop.Summarize(inc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrediction measures the full prediction stage for one incident
// (embed, retrieve, prompt, parse) against a 200-incident history.
func BenchmarkPrediction(b *testing.B) {
	cop, inc := benchIncident(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cop.Predict(inc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFastTextDocVector measures embedding one diagnostic document.
func BenchmarkFastTextDocVector(b *testing.B) {
	env := sharedBenchEnv(b)
	ft, _, err := env.FastText()
	if err != nil {
		b.Fatal(err)
	}
	text := env.Test[0].DiagnosticText()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := ft.DocVector(text); len(v) == 0 {
			b.Fatal("empty vector")
		}
	}
}

// BenchmarkVectorTopKDiverse measures one temporal-decay kNN query against
// the full training history.
func BenchmarkVectorTopKDiverse(b *testing.B) {
	cop, inc := benchIncident(b)
	ft, _, err := sharedBenchEnv(b).FastText()
	if err != nil {
		b.Fatal(err)
	}
	query, err := core.FastTextEmbedder{Model: ft}.Embed(inc.DiagnosticText())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cop.Index().TopKDiverse(query, inc.CreatedAt, 5, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPromptConstruction measures building a Figure 9 prompt.
func BenchmarkPromptConstruction(b *testing.B) {
	demos := []prompt.Demo{
		{Summary: "probe failures with winsock 11001", Category: "HubPortExhaustion"},
		{Summary: "delivery threads blocked", Category: "DeliveryHang"},
		{Summary: "io exceptions on full disk", Category: "FullDisk"},
	}
	for i := 0; i < b.N; i++ {
		req := prompt.Prediction("current incident summary text", demos)
		if len(req.Messages) == 0 {
			b.Fatal("empty request")
		}
	}
}

// BenchmarkMonitorScan measures one full-fleet monitor sweep.
func BenchmarkMonitorScan(b *testing.B) {
	fleet := transport.NewFleet(transport.DefaultConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if alerts := fleet.RunMonitors(); len(alerts) != 0 {
			b.Fatal("healthy fleet alerted")
		}
	}
}

// BenchmarkHandleIncidentsParallelCollect measures the collection stage —
// the half of the pipeline PR 1 left serialized behind a mutex — over a
// batch of incidents at one worker (sequential reference) and on the pool.
// With per-run execution contexts collection no longer serializes, so the
// parallel variant scales with the worker count on multi-core hardware and
// degrades to parity on a single CPU.
func BenchmarkHandleIncidentsParallelCollect(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"Sequential", 1}, {"Parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			env := sharedBenchEnv(b)
			chat := simgpt.MustNew(simgpt.GPT4, simgpt.Options{Seed: 1})
			cop, err := core.New(env.Corpus.Fleet, chat, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			fleet := env.Corpus.Fleet
			fault, err := fleet.Inject("HubPortExhaustion", 0)
			if err != nil {
				b.Fatal(err)
			}
			defer fault.Repair()
			alert, ok := fleet.FirstAlert()
			if !ok {
				b.Fatal("no alert")
			}
			at := fleet.Clock().Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				incs := make([]*incident.Incident, 64)
				for j := range incs {
					incs[j] = &incident.Incident{
						ID: fmt.Sprintf("INC-PC-%d-%03d", i, j), Title: alert.Message,
						OwningTeam: "Transport", Severity: incident.Sev2, Alert: alert,
						CreatedAt: at,
					}
				}
				if err := parallel.ForEach(len(incs), bc.workers, func(j int) error {
					_, err := cop.Collect(incs[j])
					return err
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
