package rcacopilot

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/parallel"
)

// Concurrency hammer tests: these drive the batch pipeline, the feedback
// loop and the learn path from many goroutines at once. They pass on any
// machine, but their real job is under `go test -race ./...` (the CI
// configuration), where they prove the locking discipline of the tentpole
// concurrent engine. The pool budget is raised explicitly so true
// interleaving happens even on single-CPU runners.

// raceSystem builds a trained system over the shared corpus with a modest
// history, an injected fault, and its alert.
func raceSystem(t *testing.T) (*System, Alert) {
	t.Helper()
	c := sharedCorpus(t)
	sys, err := NewSystem(c.Fleet, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	history := c.Incidents[:150]
	if err := sys.TrainEmbedding(history); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddHistory(history); err != nil {
		t.Fatal(err)
	}
	fleet := sys.Fleet()
	fault, err := fleet.Inject("HubPortExhaustion", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Repair)
	alert, ok := fleet.FirstAlert()
	if !ok {
		t.Fatal("no alert")
	}
	return sys, alert
}

// TestHandleIncidentsBatchMatchesSequential runs the same incident stream
// through the batch API on one worker and on eight, and requires identical
// predictions — the determinism contract end to end.
func TestHandleIncidentsBatchMatchesSequential(t *testing.T) {
	defer parallel.SetLimit(parallel.SetLimit(8))
	sys, alert := raceSystem(t)

	// Pin CreatedAt: handler runs advance the fleet's virtual clock, and
	// the temporal-decay similarity reads the incident timestamp, so both
	// streams must carry identical times for the outputs to be comparable.
	at := sys.Fleet().Clock().Now()
	build := func() []*Incident {
		incs := make([]*Incident, 24)
		for i := range incs {
			incs[i] = &Incident{
				ID: fmt.Sprintf("INC-BATCH-%03d", i), Title: alert.Message,
				OwningTeam: "Transport", Severity: Sev2, Alert: alert,
				CreatedAt: at,
			}
		}
		return incs
	}

	seqIncs := build()
	seqOut, err := sys.HandleIncidents(seqIncs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parIncs := build()
	parOut, err := sys.HandleIncidents(parIncs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqOut) != len(parOut) {
		t.Fatalf("outcome counts differ: %d vs %d", len(seqOut), len(parOut))
	}
	for i := range seqOut {
		if seqIncs[i].Predicted != parIncs[i].Predicted {
			t.Errorf("incident %d prediction diverged: %q vs %q", i, seqIncs[i].Predicted, parIncs[i].Predicted)
		}
		if seqOut[i].Summary != parOut[i].Summary {
			t.Errorf("incident %d summary diverged", i)
		}
		if seqIncs[i].Explanation != parIncs[i].Explanation {
			t.Errorf("incident %d explanation diverged", i)
		}
	}
}

// TestConcurrentHandleIncidentHammer drives HandleIncident from many
// goroutines directly (not through the pool), mixed with concurrent Learn
// calls that grow the vector store mid-flight.
func TestConcurrentHandleIncidentHammer(t *testing.T) {
	sys, alert := raceSystem(t)
	c := sharedCorpus(t)

	var wg sync.WaitGroup
	const handlers, perG = 6, 8
	for g := 0; g < handlers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				inc := &Incident{
					ID: fmt.Sprintf("INC-HAMMER-%d-%03d", g, i), Title: alert.Message,
					OwningTeam: "Transport", Severity: Sev2, Alert: alert,
					CreatedAt: sys.Fleet().Clock().Now(),
				}
				out, err := sys.HandleIncident(inc)
				if err != nil {
					t.Error(err)
					return
				}
				if out.Report == nil || out.Report.VirtualCost <= 0 {
					t.Errorf("incident %s: missing or zero-cost collection report", inc.ID)
					return
				}
				if inc.Predicted == "" {
					t.Errorf("incident %s: no prediction", inc.ID)
					return
				}
			}
		}(g)
	}
	// Two learners feed fresh history into the store while predictions run.
	for l := 0; l < 2; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				in := c.Incidents[150+l*perG+i].Clone()
				if err := sys.Learn(in); err != nil {
					t.Error(err)
					return
				}
			}
		}(l)
	}
	wg.Wait()
}

// TestConcurrentFeedbackLoop submits verdicts from many goroutines; confirm
// and correct verdicts re-enter the learn path concurrently.
func TestConcurrentFeedbackLoop(t *testing.T) {
	sys, _ := raceSystem(t)
	c := sharedCorpus(t)
	loop := sys.Feedback()

	var wg sync.WaitGroup
	const reviewers, perG = 6, 10
	for r := 0; r < reviewers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				src := c.Incidents[200+r*perG+i]
				inc := src.Clone()
				inc.ID = fmt.Sprintf("INC-FB-%d-%03d", r, i)
				inc.Predicted = src.Category
				var err error
				switch i % 3 {
				case 0:
					_, err = loop.Submit(inc, VerdictConfirm, "", fmt.Sprintf("oce-%d", r), "")
				case 1:
					_, err = loop.Submit(inc, VerdictCorrect, "RoutingConfigError", fmt.Sprintf("oce-%d", r), "post-mortem")
				default:
					_, err = loop.Submit(inc, VerdictReject, "", fmt.Sprintf("oce-%d", r), "open")
				}
				if err != nil {
					t.Error(err)
					return
				}
				// Interleave reads with writes.
				loop.ComputeStats()
				if sys.Feedback() != loop {
					t.Error("Feedback returned a different loop")
					return
				}
			}
		}(r)
	}
	wg.Wait()

	stats := loop.ComputeStats()
	if want := reviewers * perG; stats.Total != want {
		t.Fatalf("recorded %d verdicts, want %d", stats.Total, want)
	}
}

// TestConcurrentCollectHammer drives the unserialized collection stage from
// many goroutines on one fleet: with per-run execution contexts there is no
// collection mutex left, so this is the test that must stay clean under
// `go test -race ./...`. Identical incidents must report identical virtual
// costs regardless of interleaving.
func TestConcurrentCollectHammer(t *testing.T) {
	sys, alert := raceSystem(t)
	at := sys.Fleet().Clock().Now()

	var wg sync.WaitGroup
	const collectors, perG = 8, 6
	costs := make([]string, collectors*perG)
	for g := 0; g < collectors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				inc := &Incident{
					ID: fmt.Sprintf("INC-COLL-%d-%03d", g, i), Title: alert.Message,
					OwningTeam: "Transport", Severity: Sev2, Alert: alert,
					CreatedAt: at,
				}
				rep, err := sys.Collect(inc)
				if err != nil {
					t.Error(err)
					return
				}
				if rep.VirtualCost <= 0 || len(inc.Evidence) == 0 {
					t.Errorf("incident %s: empty collection", inc.ID)
					return
				}
				costs[g*perG+i] = rep.VirtualCost.String()
			}
		}(g)
	}
	wg.Wait()
	for i := 1; i < len(costs); i++ {
		if costs[i] != costs[0] {
			t.Fatalf("per-run cost attribution interleaved: run %d charged %s, run 0 charged %s",
				i, costs[i], costs[0])
		}
	}
}

// TestHandleStreamHammer mixes several stream producers, several consumers
// of one result channel, and a learner growing the vector store mid-stream —
// the live alert-bus shape the streaming API exists for.
func TestHandleStreamHammer(t *testing.T) {
	defer parallel.SetLimit(parallel.SetLimit(8))
	sys, alert := raceSystem(t)
	c := sharedCorpus(t)
	at := sys.Fleet().Clock().Now()

	const producers, perProducer, consumers = 3, 8, 3
	in := make(chan *Incident)
	out := sys.HandleStream(context.Background(), in)

	var produce sync.WaitGroup
	for p := 0; p < producers; p++ {
		produce.Add(1)
		go func(p int) {
			defer produce.Done()
			for i := 0; i < perProducer; i++ {
				in <- &Incident{
					ID: fmt.Sprintf("INC-STRM-%d-%03d", p, i), Title: alert.Message,
					OwningTeam: "Transport", Severity: Sev2, Alert: alert,
					CreatedAt: at,
				}
			}
		}(p)
	}
	go func() {
		produce.Wait()
		close(in)
	}()

	// A learner feeds fresh history into the store while the stream runs.
	var learn sync.WaitGroup
	learn.Add(1)
	go func() {
		defer learn.Done()
		for i := 0; i < 12; i++ {
			if err := sys.Learn(c.Incidents[300+i].Clone()); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var consume sync.WaitGroup
	var got atomic.Int64
	for w := 0; w < consumers; w++ {
		consume.Add(1)
		go func() {
			defer consume.Done()
			for res := range out {
				if res.Err != nil {
					t.Error(res.Err)
					return
				}
				if res.Incident.Predicted == "" {
					t.Errorf("incident %s: no prediction", res.Incident.ID)
					return
				}
				got.Add(1)
			}
		}()
	}
	consume.Wait()
	learn.Wait()
	if want := int64(producers * perProducer); got.Load() != want {
		t.Fatalf("stream emitted %d results, want %d", got.Load(), want)
	}
}

// TestHandleStreamCancelDoesNotLeakGoroutines cancels a stream early —
// producer still writing, consumer gone — and requires the process goroutine
// count to return to its baseline, proving workers unwind instead of
// blocking on the abandoned output channel.
func TestHandleStreamCancelDoesNotLeakGoroutines(t *testing.T) {
	sys, alert := raceSystem(t)
	before := runtime.NumGoroutine()

	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		in := make(chan *Incident)
		out := sys.HandleStream(ctx, in)
		go func() {
			at := sys.Fleet().Clock().Now()
			for i := 0; ; i++ {
				inc := &Incident{
					ID: fmt.Sprintf("INC-LEAK-%d", i), Title: alert.Message,
					OwningTeam: "Transport", Severity: Sev2, Alert: alert,
					CreatedAt: at,
				}
				select {
				case in <- inc:
				case <-ctx.Done():
					return
				}
			}
		}()
		<-out // wait for at least one result so workers are mid-flight
		cancel()
		// The output channel must close; drain whatever raced the cancel.
		for range out {
		}
	}

	// Workers unwind asynchronously after the channel closes; poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancelled streams",
				before, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
