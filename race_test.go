package rcacopilot

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/parallel"
)

// Concurrency hammer tests: these drive the batch pipeline, the feedback
// loop and the learn path from many goroutines at once. They pass on any
// machine, but their real job is under `go test -race ./...` (the CI
// configuration), where they prove the locking discipline of the tentpole
// concurrent engine. The pool budget is raised explicitly so true
// interleaving happens even on single-CPU runners.

// raceSystem builds a trained system over the shared corpus with a modest
// history, an injected fault, and its alert.
func raceSystem(t *testing.T) (*System, Alert) {
	t.Helper()
	c := sharedCorpus(t)
	sys, err := NewSystem(c.Fleet, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	history := c.Incidents[:150]
	if err := sys.TrainEmbedding(history); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddHistory(history); err != nil {
		t.Fatal(err)
	}
	fleet := sys.Fleet()
	fault, err := fleet.Inject("HubPortExhaustion", 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Repair)
	alert, ok := fleet.FirstAlert()
	if !ok {
		t.Fatal("no alert")
	}
	return sys, alert
}

// TestHandleIncidentsBatchMatchesSequential runs the same incident stream
// through the batch API on one worker and on eight, and requires identical
// predictions — the determinism contract end to end.
func TestHandleIncidentsBatchMatchesSequential(t *testing.T) {
	defer parallel.SetLimit(parallel.SetLimit(8))
	sys, alert := raceSystem(t)

	// Pin CreatedAt: handler runs advance the fleet's virtual clock, and
	// the temporal-decay similarity reads the incident timestamp, so both
	// streams must carry identical times for the outputs to be comparable.
	at := sys.Fleet().Clock().Now()
	build := func() []*Incident {
		incs := make([]*Incident, 24)
		for i := range incs {
			incs[i] = &Incident{
				ID: fmt.Sprintf("INC-BATCH-%03d", i), Title: alert.Message,
				OwningTeam: "Transport", Severity: Sev2, Alert: alert,
				CreatedAt: at,
			}
		}
		return incs
	}

	seqIncs := build()
	seqOut, err := sys.HandleIncidents(seqIncs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parIncs := build()
	parOut, err := sys.HandleIncidents(parIncs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqOut) != len(parOut) {
		t.Fatalf("outcome counts differ: %d vs %d", len(seqOut), len(parOut))
	}
	for i := range seqOut {
		if seqIncs[i].Predicted != parIncs[i].Predicted {
			t.Errorf("incident %d prediction diverged: %q vs %q", i, seqIncs[i].Predicted, parIncs[i].Predicted)
		}
		if seqOut[i].Summary != parOut[i].Summary {
			t.Errorf("incident %d summary diverged", i)
		}
		if seqIncs[i].Explanation != parIncs[i].Explanation {
			t.Errorf("incident %d explanation diverged", i)
		}
	}
}

// TestConcurrentHandleIncidentHammer drives HandleIncident from many
// goroutines directly (not through the pool), mixed with concurrent Learn
// calls that grow the vector store mid-flight.
func TestConcurrentHandleIncidentHammer(t *testing.T) {
	sys, alert := raceSystem(t)
	c := sharedCorpus(t)

	var wg sync.WaitGroup
	const handlers, perG = 6, 8
	for g := 0; g < handlers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				inc := &Incident{
					ID: fmt.Sprintf("INC-HAMMER-%d-%03d", g, i), Title: alert.Message,
					OwningTeam: "Transport", Severity: Sev2, Alert: alert,
					CreatedAt: sys.Fleet().Clock().Now(),
				}
				out, err := sys.HandleIncident(inc)
				if err != nil {
					t.Error(err)
					return
				}
				if out.Report == nil || out.Report.VirtualCost <= 0 {
					t.Errorf("incident %s: missing or zero-cost collection report", inc.ID)
					return
				}
				if inc.Predicted == "" {
					t.Errorf("incident %s: no prediction", inc.ID)
					return
				}
			}
		}(g)
	}
	// Two learners feed fresh history into the store while predictions run.
	for l := 0; l < 2; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				in := c.Incidents[150+l*perG+i].Clone()
				if err := sys.Learn(in); err != nil {
					t.Error(err)
					return
				}
			}
		}(l)
	}
	wg.Wait()
}

// TestConcurrentFeedbackLoop submits verdicts from many goroutines; confirm
// and correct verdicts re-enter the learn path concurrently.
func TestConcurrentFeedbackLoop(t *testing.T) {
	sys, _ := raceSystem(t)
	c := sharedCorpus(t)
	loop := sys.Feedback()

	var wg sync.WaitGroup
	const reviewers, perG = 6, 10
	for r := 0; r < reviewers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				src := c.Incidents[200+r*perG+i]
				inc := src.Clone()
				inc.ID = fmt.Sprintf("INC-FB-%d-%03d", r, i)
				inc.Predicted = src.Category
				var err error
				switch i % 3 {
				case 0:
					_, err = loop.Submit(inc, VerdictConfirm, "", fmt.Sprintf("oce-%d", r), "")
				case 1:
					_, err = loop.Submit(inc, VerdictCorrect, "RoutingConfigError", fmt.Sprintf("oce-%d", r), "post-mortem")
				default:
					_, err = loop.Submit(inc, VerdictReject, "", fmt.Sprintf("oce-%d", r), "open")
				}
				if err != nil {
					t.Error(err)
					return
				}
				// Interleave reads with writes.
				loop.ComputeStats()
				if sys.Feedback() != loop {
					t.Error("Feedback returned a different loop")
					return
				}
			}
		}(r)
	}
	wg.Wait()

	stats := loop.ComputeStats()
	if want := reviewers * perG; stats.Total != want {
		t.Fatalf("recorded %d verdicts, want %d", stats.Total, want)
	}
}
