package rcacopilot

import (
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	corpusOnce sync.Once
	testCorpus *Corpus
	corpusErr  error
)

func sharedCorpus(t *testing.T) *Corpus {
	t.Helper()
	corpusOnce.Do(func() { testCorpus, corpusErr = GenerateCorpus(2) })
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return testCorpus
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, Config{}); err == nil {
		t.Fatal("nil fleet should fail")
	}
	if _, err := NewSystem(NewFleet(1), Config{Model: "gpt-9"}); err == nil {
		t.Fatal("unknown model should fail")
	}
}

func TestTrainEmbeddingRequiresHistory(t *testing.T) {
	sys, err := NewSystem(NewFleet(1), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainEmbedding(nil); err == nil {
		t.Fatal("empty history should fail")
	}
}

func TestGenerateCorpusShape(t *testing.T) {
	c := sharedCorpus(t)
	stats := c.ComputeStats()
	if stats.NumIncidents != 653 || stats.NumCategories != 163 {
		t.Fatalf("corpus stats = %+v", stats)
	}
}

func TestSystemEndToEnd(t *testing.T) {
	c := sharedCorpus(t)
	sys, err := NewSystem(c.Fleet, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	history := c.Incidents[:250]
	if err := sys.TrainEmbedding(history); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddHistory(history); err != nil {
		t.Fatal(err)
	}
	if sys.Copilot().Index().Len() != 250 {
		t.Fatalf("db len = %d", sys.Copilot().Index().Len())
	}

	fleet := sys.Fleet()
	fault, err := fleet.Inject("HubPortExhaustion", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fault.Repair()
	alert, ok := fleet.FirstAlert()
	if !ok {
		t.Fatal("no alert")
	}
	inc := &Incident{
		ID: "INC-E2E", Title: alert.Message, OwningTeam: "Transport",
		Severity: Sev2, Alert: alert, CreatedAt: fleet.Clock().Now(),
	}
	outcome, err := sys.HandleIncident(inc)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Evidence) == 0 || outcome.Summary == "" || inc.Predicted == "" {
		t.Fatalf("pipeline incomplete: evidence=%d summary=%q predicted=%q",
			len(inc.Evidence), outcome.Summary, inc.Predicted)
	}
	if inc.Explanation == "" {
		t.Fatal("missing explanation")
	}
}

func TestAddHistoryDoesNotMutateCaller(t *testing.T) {
	c := sharedCorpus(t)
	sys, err := NewSystem(c.Fleet, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainEmbedding(c.Incidents[:50]); err != nil {
		t.Fatal(err)
	}
	in := c.Incidents[0].Clone()
	in.Summary = ""
	if err := sys.AddHistory([]*Incident{in}); err != nil {
		t.Fatal(err)
	}
	if in.Summary != "" {
		t.Fatal("AddHistory mutated the caller's incident")
	}
}

func TestUseGPTEmbedding(t *testing.T) {
	c := sharedCorpus(t)
	sys, err := NewSystem(c.Fleet, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sys.UseGPTEmbedding(0)
	if err := sys.Learn(c.Incidents[0]); err != nil {
		t.Fatalf("learn with GPT embedding: %v", err)
	}
	if sys.Copilot().Index().Dim() != 64 {
		t.Fatalf("default GPT embedding dim = %d, want 64", sys.Copilot().Index().Dim())
	}
}

func TestCustomCorpusSpec(t *testing.T) {
	spec := CorpusSpec{
		Seed:               9,
		Start:              time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC),
		Days:               365,
		RecurrenceWithin20: 0.9,
		Team:               "Transport",
	}
	c, err := GenerateCorpusSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Incidents) != 653 {
		t.Fatalf("incidents = %d", len(c.Incidents))
	}
	if c.Incidents[0].CreatedAt.Year() != 2023 {
		t.Fatalf("custom start year ignored: %v", c.Incidents[0].CreatedAt)
	}
}

func TestFeedbackLoopLearnsConfirmedPrediction(t *testing.T) {
	c := sharedCorpus(t)
	sys, err := NewSystem(c.Fleet, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainEmbedding(c.Incidents[:100]); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddHistory(c.Incidents[:100]); err != nil {
		t.Fatal(err)
	}
	before := sys.Copilot().Index().Len()

	// A reviewed prediction flows back into the history.
	inc := c.Incidents[150].Clone()
	inc.ID = "INC-FB-1"
	inc.Predicted = inc.Category
	entry, err := sys.Feedback().Submit(inc, VerdictConfirm, "", "oce", "")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Verdict != VerdictConfirm {
		t.Fatalf("entry = %+v", entry)
	}
	if sys.Copilot().Index().Len() != before+1 {
		t.Fatal("confirmed incident was not learned into the history")
	}
	if got, ok := sys.Feedback().Get("INC-FB-1"); !ok || got.Predicted != inc.Predicted {
		t.Fatalf("feedback record = %+v/%v", got, ok)
	}
}

func TestRenderReportFromOutcome(t *testing.T) {
	c := sharedCorpus(t)
	sys, err := NewSystem(c.Fleet, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainEmbedding(c.Incidents[:80]); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddHistory(c.Incidents[:80]); err != nil {
		t.Fatal(err)
	}
	fleet := sys.Fleet()
	fault, err := fleet.Inject("FullDisk", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fault.Repair()
	alert, _ := fleet.FirstAlert()
	inc := &Incident{
		ID: "INC-RPT", Title: alert.Message, OwningTeam: "Transport",
		Severity: Sev2, Alert: alert, CreatedAt: fleet.Clock().Now(),
	}
	outcome, err := sys.HandleIncident(inc)
	if err != nil {
		t.Fatal(err)
	}
	text := sys.RenderReport(inc, outcome.Report, ReportOptions{})
	for _, want := range []string{"INCIDENT INC-RPT", "ROOT CAUSE PREDICTION", "confirm INC-RPT"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestSeverityAliasesUsable(t *testing.T) {
	for _, s := range []Severity{Sev1, Sev2, Sev3, Sev4} {
		if !s.Valid() {
			t.Fatalf("severity alias %v invalid", s)
		}
	}
	if !strings.HasPrefix(Sev1.String(), "Sev") {
		t.Fatal("severity String broken through alias")
	}
}

// TestSystemRetrieve: the serving daemon's read API — free text in,
// nearest historical incidents out, anchored at the fleet's virtual now.
func TestSystemRetrieve(t *testing.T) {
	c := sharedCorpus(t)
	sys, err := NewSystem(c.Fleet, Config{Seed: 2, K: 5})
	if err != nil {
		t.Fatal(err)
	}

	// Untrained: no embedder yet.
	if _, err := sys.Retrieve("delivery queue stuck", 3, false); err == nil {
		t.Fatal("Retrieve before TrainEmbedding must fail")
	}

	history := c.Incidents[:100]
	if err := sys.TrainEmbedding(history); err != nil {
		t.Fatal(err)
	}

	// Trained but empty store: no hits, no error.
	hits, err := sys.Retrieve("delivery queue stuck", 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("hits from empty store: %d", len(hits))
	}

	if err := sys.AddHistory(history); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Retrieve("   ", 3, false); err == nil {
		t.Fatal("blank query must fail")
	}

	query := history[10].DiagnosticText()
	hits, err = sys.Retrieve(query, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Fatalf("hits = %d, want 3", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Similarity > hits[i-1].Similarity {
			t.Fatalf("hits not ordered by similarity: %v then %v",
				hits[i-1].Similarity, hits[i].Similarity)
		}
	}

	// k <= 0 falls back to the configured K.
	hits, err = sys.Retrieve(query, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 {
		t.Fatalf("default-k hits = %d, want K=5", len(hits))
	}

	// Diverse retrieval returns distinct categories.
	hits, err = sys.Retrieve(query, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Category]bool{}
	for _, h := range hits {
		if seen[h.Entry.Category] {
			t.Fatalf("diverse retrieval repeated category %s", h.Entry.Category)
		}
		seen[h.Entry.Category] = true
	}
}

// TestRenderRetryQueueThroughSystem: the System-level wrapper renders the
// feedback loop's live schedule.
func TestRenderRetryQueueThroughSystem(t *testing.T) {
	c := sharedCorpus(t)
	sys, err := NewSystem(c.Fleet, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	out := sys.RenderRetryQueue(ReportOptions{})
	if !strings.Contains(out, "LEARN RETRY QUEUE") ||
		!strings.Contains(out, "no unresolved learn failures") {
		t.Fatalf("rendering:\n%s", out)
	}
}

func TestMultiTenantSystemRetrieveTeam(t *testing.T) {
	c := sharedCorpus(t)
	sys, err := NewSystem(c.Fleet, Config{Seed: 2, MultiTenant: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainEmbedding(c.Incidents[:80]); err != nil {
		t.Fatal(err)
	}
	teams := []string{"Alpha", "Beta"}
	for i, in := range c.Incidents[:40] {
		clone := in.Clone()
		clone.OwningTeam = teams[i%len(teams)]
		if err := sys.Learn(clone); err != nil {
			t.Fatal(err)
		}
	}
	query := c.Incidents[0].DiagnosticText()
	for _, team := range teams {
		hits, err := sys.RetrieveTeam(team, query, 5, false)
		if err != nil {
			t.Fatalf("RetrieveTeam(%s): %v", team, err)
		}
		if len(hits) == 0 {
			t.Fatalf("RetrieveTeam(%s) found nothing", team)
		}
		for _, h := range hits {
			if h.Entry.Namespace != team {
				t.Fatalf("RetrieveTeam(%s) leaked entry from namespace %q", team, h.Entry.Namespace)
			}
		}
	}
	hits, err := sys.RetrieveTeam("Ghost", query, 5, false)
	if err != nil {
		t.Fatalf("RetrieveTeam(unknown): %v", err)
	}
	if len(hits) != 0 {
		t.Fatalf("unknown team retrieved %d hits", len(hits))
	}
}
