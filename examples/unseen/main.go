// Unseen reproduces the paper's Figure 11 scenario: an incident whose
// root-cause category has never been seen before (§5.3 — the FullDisk case
// RCACopilot had never encountered). The system answers "Unseen incident",
// coins the new category keyword "I/O Bottleneck", and explains itself;
// OCEs later labelled the paper's incident "DiskFull", and the evaluation
// credits the alignment (see EXPERIMENTS.md for the scoring protocol).
//
//	go run ./examples/unseen
package main

import (
	"fmt"
	"log"

	rcacopilot "repro"
)

func main() {
	corpus, err := rcacopilot.GenerateCorpus(1)
	if err != nil {
		log.Fatal(err)
	}
	// Withhold every FullDisk incident from history, so the category is
	// genuinely unseen when it arrives.
	var history []*rcacopilot.Incident
	for _, in := range corpus.Incidents {
		if in.Category != "FullDisk" {
			history = append(history, in)
		}
	}
	sys, err := rcacopilot.NewSystem(corpus.Fleet, rcacopilot.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.TrainEmbedding(history); err != nil {
		log.Fatal(err)
	}
	if err := sys.AddHistory(history); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("history: %d incidents, FullDisk withheld\n\n", len(history))

	fleet := sys.Fleet()
	fault, err := fleet.Inject("FullDisk", 2)
	if err != nil {
		log.Fatal(err)
	}
	defer fault.Repair()
	alert, ok := fleet.FirstAlert()
	if !ok {
		log.Fatal("no alert fired")
	}
	inc := &rcacopilot.Incident{
		ID: "INC-NEW-1", Title: alert.Message, OwningTeam: "Transport",
		Severity: rcacopilot.Sev2, Alert: alert, CreatedAt: fleet.Clock().Now(),
	}
	outcome, err := sys.HandleIncident(inc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alert:            %s (%s)\n", alert.Type, alert.Message)
	fmt.Printf("answered unseen:  %t (option %s)\n", outcome.Prediction.Unseen, outcome.Prediction.Option)
	fmt.Printf("coined category:  %q\n", inc.Predicted)
	fmt.Println("explanation (the Figure 11 narrative):")
	fmt.Println(" ", inc.Explanation)
	fmt.Println("\nOCE post-investigation label: FullDisk — the coined keyword names the same fundamental problem.")
}
