// Hubport walks the paper's running example (Figures 5-8): a front-door
// machine exhausts its UDP hub ports, DNS resolution starts failing, the
// probe monitor raises FrontDoorConnectionFailures, and RCACopilot collects
// the probe log / exception stack / socket table of Figure 6, compresses it
// into the Figure 8 summary, and predicts HubPortExhaustion with an
// explanation.
//
//	go run ./examples/hubport
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	rcacopilot "repro"
)

func main() {
	corpus, err := rcacopilot.GenerateCorpus(1)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := rcacopilot.NewSystem(corpus.Fleet, rcacopilot.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.TrainEmbedding(corpus.Incidents); err != nil {
		log.Fatal(err)
	}
	if err := sys.AddHistory(corpus.Incidents); err != nil {
		log.Fatal(err)
	}

	fleet := sys.Fleet()
	fault, err := fleet.Inject("HubPortExhaustion", 0)
	if err != nil {
		log.Fatal(err)
	}
	defer fault.Repair()
	alert, _ := fleet.FirstAlert()
	// Insight 2: recurrences arrive within days of the previous occurrence,
	// so this live incident lands three days after the last recorded
	// HubPortExhaustion — the regime the temporal-decay similarity exploits.
	createdAt := fleet.Clock().Now()
	for _, in := range corpus.Incidents {
		if in.Category == "HubPortExhaustion" {
			createdAt = in.CreatedAt.Add(72 * time.Hour)
		}
	}
	inc := &rcacopilot.Incident{
		ID: "INC-HUB-1", Title: alert.Message, OwningTeam: "Transport",
		Severity: rcacopilot.Sev2, Alert: alert, CreatedAt: createdAt,
	}

	// Stage 1 only: watch the handler walk its decision tree.
	report, err := sys.Collect(inc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== handler execution (the Figure 5 decision tree) ==")
	for _, s := range report.Steps {
		fmt.Printf("  %-26s -> %s\n", s.Label, s.Outcome)
	}

	fmt.Println("\n== raw diagnostic information (Figure 6) ==")
	for _, ev := range inc.Evidence {
		if ev.Source == "probe-log" || ev.Source == "socket-metrics" || ev.Source == "exception-stacks" {
			fmt.Printf("--- %s ---\n%s\n", ev.Source, strings.TrimSpace(ev.Body))
		}
	}

	// Stage 2a: summarization (Figure 7 prompt -> Figure 8 text).
	if err := sys.Summarize(inc); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== summarized diagnostic information (Figure 8) ==")
	fmt.Println(inc.Summary)

	// Stage 2b: retrieval + chain-of-thought prediction (Figure 9 prompt).
	res, err := sys.Predict(inc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== prediction ==")
	fmt.Printf("category:    %s (option %s)\n", res.Category, res.Option)
	fmt.Printf("explanation: %s\n", res.Explanation)
}
