// Quickstart: the smallest end-to-end use of the rcacopilot public API.
//
// It builds the simulated fleet, ingests historical incidents, injects one
// live fault, and runs collect → summarize → predict.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	rcacopilot "repro"
)

func main() {
	// A year of labelled incident history (the paper's 653-incident corpus)
	// and the fleet it happened on.
	corpus, err := rcacopilot.GenerateCorpus(1)
	if err != nil {
		log.Fatal(err)
	}

	// Assemble the system: handlers for every alert type, a (simulated)
	// GPT-4 endpoint, FastText retrieval trained on the history.
	sys, err := rcacopilot.NewSystem(corpus.Fleet, rcacopilot.Config{
		Model: rcacopilot.ModelGPT4,
		Seed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.TrainEmbedding(corpus.Incidents); err != nil {
		log.Fatal(err)
	}
	if err := sys.AddHistory(corpus.Incidents); err != nil {
		log.Fatal(err)
	}

	// A live incident: inject a delivery hang; the monitors raise the alert.
	fleet := sys.Fleet()
	fault, err := fleet.Inject("DeliveryHang", 1)
	if err != nil {
		log.Fatal(err)
	}
	defer fault.Repair()
	alert, ok := fleet.FirstAlert()
	if !ok {
		log.Fatal("no alert fired")
	}
	// Recurrences cluster in time (the paper's Insight 2): stamp the live
	// incident shortly after the last recorded DeliveryHang.
	createdAt := fleet.Clock().Now()
	for _, in := range corpus.Incidents {
		if in.Category == "DeliveryHang" {
			createdAt = in.CreatedAt.Add(48 * time.Hour)
		}
	}
	inc := &rcacopilot.Incident{
		ID: "INC-QS-1", Title: alert.Message, OwningTeam: "Transport",
		Severity: rcacopilot.Sev2, Alert: alert, CreatedAt: createdAt,
	}

	// Both stages in one call.
	outcome, err := sys.HandleIncident(inc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alert:      %s on %s\n", alert.Type, alert.Target)
	fmt.Printf("evidence:   %d sources collected by handler %q\n", len(inc.Evidence), outcome.Report.Handler)
	fmt.Printf("summary:    %.120s…\n", outcome.Summary)
	fmt.Printf("prediction: %s (unseen=%t)\n", inc.Predicted, outcome.Prediction.Unseen)
	fmt.Printf("because:    %.160s\n", inc.Explanation)
}
