// Feedback demonstrates the deployment loop of §5.5: RCACopilot handles an
// incident, renders the notification email with feedback instructions, and
// the OCE's replies (confirm / correct / reject) flow back into the system
// — confirmed and corrected labels are learned into the incident history,
// and prediction-quality statistics accumulate per category.
//
//	go run ./examples/feedback
package main

import (
	"fmt"
	"log"

	rcacopilot "repro"
)

func main() {
	corpus, err := rcacopilot.GenerateCorpus(1)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := rcacopilot.NewSystem(corpus.Fleet, rcacopilot.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.TrainEmbedding(corpus.Incidents); err != nil {
		log.Fatal(err)
	}
	if err := sys.AddHistory(corpus.Incidents); err != nil {
		log.Fatal(err)
	}
	before := sys.Copilot().Index().Len()

	// Handle a live incident end to end.
	fleet := sys.Fleet()
	fault, err := fleet.Inject("InvalidJournaling", 3)
	if err != nil {
		log.Fatal(err)
	}
	defer fault.Repair()
	alert, _ := fleet.FirstAlert()
	inc := &rcacopilot.Incident{
		ID: "INC-FB-7", Title: alert.Message, OwningTeam: "Transport",
		Severity: rcacopilot.Sev2, Alert: alert, CreatedAt: fleet.Clock().Now(),
	}
	outcome, err := sys.HandleIncident(inc)
	if err != nil {
		log.Fatal(err)
	}

	// The notification the OCE receives.
	fmt.Println(sys.RenderReport(inc, outcome.Report, rcacopilot.ReportOptions{MaxEvidenceLines: -1}))

	// The OCE reviews and confirms; the incident joins the history.
	entry, err := sys.Feedback().Submit(inc, rcacopilot.VerdictConfirm, "", "oce-carol", "matches post-mortem")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feedback recorded: %s by %s at %s\n", entry.Verdict, entry.Reviewer, entry.At.Format("15:04:05"))
	fmt.Printf("history grew from %d to %d incidents\n\n", before, sys.Copilot().Index().Len())

	// A second incident where the OCE corrects a coined keyword to the
	// canonical label — the paper's "I/O Bottleneck" → "DiskFull" case.
	inc2 := inc.Clone()
	inc2.ID = "INC-FB-8"
	inc2.Predicted = "I/O Bottleneck"
	if _, err := sys.Feedback().Submit(inc2, rcacopilot.VerdictCorrect, "DiskFull", "oce-dave", "post-investigation"); err != nil {
		log.Fatal(err)
	}

	stats := sys.Feedback().ComputeStats()
	fmt.Printf("review stats: %d reviewed, %d confirmed, %d corrected, accuracy %.2f\n",
		stats.Total, stats.Confirmed, stats.Corrected, stats.Accuracy())
	for _, c := range sys.Feedback().CorrectionTable() {
		fmt.Printf("observed correction: %q -> %q (%dx)\n", c.From, c.To, c.Count)
	}
}
