// Handlers shows the OCE authoring workflow behind §4.1: composing a new
// incident handler from the reusable action library, saving it to the
// versioned registry, running it against a live incident, then editing it
// (the paper's example of wiring a newly introduced metric into an existing
// handler) — with every version kept addressable.
//
//	go run ./examples/handlers
package main

import (
	"fmt"
	"log"

	"repro/internal/handler"
	"repro/internal/incident"
	"repro/internal/transport"

	rcacopilot "repro"
)

func main() {
	fleet := rcacopilot.NewFleet(7)

	// An OCE composes a handler for disk-space alerts: known-issue gate,
	// disk check, crash scan, and a cleanup mitigation.
	h, err := handler.NewBuilder("custom-disk-watch", transport.AlertDiskSpaceLow, "StorageTeam").
		Node("known", "Known Issue?", handler.ActionSpec{Kind: handler.KindQuery, Op: "known-issue"}).
		Node("fixed", "Apply Known Fix", handler.ActionSpec{Kind: handler.KindMitigation,
			Params: map[string]string{"action": "apply the recorded known-issue fix"}}).
		Node("disk", "Check Disk", handler.ActionSpec{Kind: handler.KindQuery, Op: "disk-usage"}).
		Node("crash", "Scan Crashes", handler.ActionSpec{Kind: handler.KindQuery, Op: "crash-events"}).
		Node("clean", "Purge Logs", handler.ActionSpec{Kind: handler.KindMitigation,
			Params: map[string]string{"action": "purge rotated logs from the full volume"}}).
		Edge("known", handler.OutcomeTrue, "fixed").
		Edge("known", handler.OutcomeFalse, "disk").
		Edge("disk", handler.OutcomeDefault, "crash").
		Edge("crash", handler.OutcomeDefault, "clean").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	reg := handler.NewRegistry(nil)
	v1, err := reg.Save(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved %q as version %d (%d actions)\n", h.Name, v1, h.NumActions())
	fmt.Printf("reusable ops available to compose from: %v\n\n", handler.OpNames())

	// A disk fills up; the monitor raises the alert; the handler runs.
	fault, err := fleet.InjectGeneric(transport.GenericFault{
		Category:  "ArchiveDiskPressure",
		Component: "ArchivePipeline",
		Exception: "ArchiveSpoolOverflowException",
		Mode:      transport.ModeDiskPressure,
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer fault.Repair()
	// Disk alerts rank below crash alerts; find ours in the full scan.
	var alert incident.Alert
	for _, a := range fleet.RunMonitors() {
		if a.Type == transport.AlertDiskSpaceLow {
			alert = a
			break
		}
	}
	if alert.Type == "" {
		log.Fatal("no disk alert fired")
	}
	inc := &incident.Incident{
		ID: "INC-DISK-1", Title: alert.Message, OwningTeam: "StorageTeam",
		Severity: incident.Sev3, Alert: alert, CreatedAt: fleet.Clock().Now(),
	}
	runner := handler.NewRunner(fleet)
	matched, err := reg.Match("StorageTeam", inc)
	if err != nil {
		log.Fatal(err)
	}
	report, err := runner.Run(matched, inc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %q: %d steps, %d evidence items, mitigations %v\n\n",
		report.Handler, len(report.Steps), len(inc.Evidence), report.Mitigations)

	// The team ships a new telemetry source; the OCE edits the handler to
	// use it. Saving appends version 2; version 1 stays retrievable.
	edited := matched.Clone()
	edited.Nodes["prov"] = &handler.Node{
		ID: "prov", Label: "Check Provisioning",
		Action: handler.ActionSpec{Kind: handler.KindQuery, Op: "provisioning-status"},
	}
	edited.Nodes["crash"].Next[handler.OutcomeDefault] = "prov"
	edited.Nodes["prov"].Next = map[handler.Outcome]string{handler.OutcomeDefault: "clean"}
	v2, err := reg.Save(edited)
	if err != nil {
		log.Fatal(err)
	}
	old, err := reg.Version("StorageTeam", transport.AlertDiskSpaceLow, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edited handler saved as version %d; version 1 still has %d actions, version %d has %d\n",
		v2, old.NumActions(), v2, edited.NumActions())
}
