package handler

import (
	"strings"
	"testing"

	"repro/internal/incident"
	"repro/internal/kvstore"
	"repro/internal/transport"
)

func actionCtx(t *testing.T) (*transport.Fleet, *Context) {
	t.Helper()
	fleet := transport.NewFleet(transport.DefaultConfig(21))
	return fleet, &Context{
		Exec: fleet.Ambient(),
		Incident: &incident.Incident{
			ID: "I", Title: "t", Severity: incident.Sev2,
			Alert: incident.Alert{Type: "A", Scope: incident.ScopeForest,
				Target: fleet.Forests[0].Name, Forest: fleet.Forests[0].Name},
		},
		Scope:       incident.ScopeForest,
		Target:      fleet.Forests[0].Name,
		Forest:      fleet.Forests[0].Name,
		KnownIssues: kvstore.New(),
	}
}

func TestSelectMachineStrategies(t *testing.T) {
	fleet, _ := actionCtx(t)
	fo := fleet.Forests[0]
	// Make one machine distinctly busiest per dimension.
	fo.Machines[2].Queues["Delivery"] = 99999
	fo.Machines[4].Queues["Submission"] = 99999
	fo.Machines[5].DiskUsedPct["C:"] = 99.9

	cases := map[string]string{
		"busiest-delivery":   fo.Machines[2].Name,
		"busiest-submission": fo.Machines[4].Name,
		"fullest-disk":       fo.Machines[5].Name,
		"first":              fo.Machines[0].Name,
		"":                   fo.Machines[0].Name,
	}
	for strategy, want := range cases {
		got, err := selectMachine(fo, strategy)
		if err != nil {
			t.Fatalf("selectMachine(%q): %v", strategy, err)
		}
		if got != want {
			t.Errorf("selectMachine(%q) = %s, want %s", strategy, got, want)
		}
	}
	fd, err := selectMachine(fo, "front-door")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := fleet.Machine(fd)
	if m.Role != transport.RoleFrontDoor {
		t.Errorf("front-door strategy picked role %s", m.Role)
	}
	if _, err := selectMachine(fo, "psychic"); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestMachineTargetUsesCurrentMachineScope(t *testing.T) {
	fleet, ctx := actionCtx(t)
	want := fleet.Forests[0].Machines[3].Name
	ctx.Scope = incident.ScopeMachine
	ctx.Target = want
	got, err := machineTarget(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("machineTarget = %s, want current target %s", got, want)
	}
}

func TestMachineTargetUnknownForest(t *testing.T) {
	_, ctx := actionCtx(t)
	ctx.Forest = "ghost"
	if _, err := machineTarget(ctx, nil); err == nil {
		t.Fatal("unknown forest should fail")
	}
}

func TestScopeSwitchWiden(t *testing.T) {
	_, ctx := actionCtx(t)
	ctx.Scope = incident.ScopeMachine
	ctx.Target = "some-machine"
	res, err := runScopeSwitch(ctx, map[string]string{"to": "Forest"})
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Scope != incident.ScopeForest || ctx.Target != ctx.Forest {
		t.Fatalf("widen failed: scope=%s target=%s", ctx.Scope, ctx.Target)
	}
	if !strings.Contains(res.Output, "Widened") {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestScopeSwitchUnknownScope(t *testing.T) {
	_, ctx := actionCtx(t)
	if _, err := runScopeSwitch(ctx, map[string]string{"to": "Galaxy"}); err == nil {
		t.Fatal("unknown scope should fail")
	}
}

func TestMitigationDefaultAction(t *testing.T) {
	_, ctx := actionCtx(t)
	res, err := runMitigation(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.KV["mitigation"] == "" {
		t.Fatal("default mitigation text missing")
	}
}

func TestTopErrorNoCrashes(t *testing.T) {
	_, ctx := actionCtx(t)
	res, err := ops["top-error"](ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != "None" || res.KV["top-error"] != "none" {
		t.Fatalf("result = %+v", res)
	}
}

func TestTopErrorPicksDominantException(t *testing.T) {
	fleet, ctx := actionCtx(t)
	if _, err := fleet.Inject("FullDisk", 0); err != nil {
		t.Fatal(err)
	}
	res, err := ops["top-error"](ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != "System.IO.IOException" {
		t.Fatalf("top error = %s, want System.IO.IOException", res.Outcome)
	}
}
