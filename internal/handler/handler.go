// Package handler implements RCACopilot's diagnostic-information collection
// stage: incident handlers.
//
// A handler is the decision-tree workflow of §4.1 — one per alert type,
// built from reusable actions of three kinds: scope switching actions
// (adjust the investigation scope between machine and forest), query actions
// (collect diagnostic information from a target data source, returning a
// key-value table and an outcome that steers control flow), and mitigation
// actions (suggest strategic steps such as "restart service"). Handlers are
// serializable, versioned in the store, and constructed/edited dynamically,
// mirroring the paper's web-based handler construction UI (Figure 10).
package handler

import (
	"encoding/json"
	"fmt"

	"repro/internal/incident"
)

// Kind is the action class inside a handler node.
type Kind string

// The three action kinds of §4.1.2.
const (
	KindScopeSwitch Kind = "scope-switch"
	KindQuery       Kind = "query"
	KindMitigation  Kind = "mitigation"
)

// Outcome labels an edge out of a node. Query actions produce outcomes such
// as "True"/"False" or an exception-type enum; OutcomeDefault is followed
// when no specific edge matches.
type Outcome string

// Common outcomes.
const (
	OutcomeDefault Outcome = "Default"
	OutcomeTrue    Outcome = "True"
	OutcomeFalse   Outcome = "False"
)

// ActionSpec declaratively describes one action so handlers can be stored,
// versioned and edited as data. Op selects a registered implementation for
// query actions; Params configure it.
type ActionSpec struct {
	Kind   Kind              `json:"kind"`
	Op     string            `json:"op"`
	Params map[string]string `json:"params,omitempty"`
}

// Node is one step of the handler's decision tree.
type Node struct {
	ID     string             `json:"id"`
	Label  string             `json:"label,omitempty"`
	Action ActionSpec         `json:"action"`
	Next   map[Outcome]string `json:"next,omitempty"` // outcome -> node ID
}

// Handler is a complete incident handler: a rooted DAG of nodes keyed to an
// alert type.
type Handler struct {
	Name      string             `json:"name"`
	AlertType incident.AlertType `json:"alertType"`
	Team      string             `json:"team"`
	Root      string             `json:"root"`
	Nodes     map[string]*Node   `json:"nodes"`
	// Enabled handlers run in production; disabled ones are under
	// development or testing (§5.5).
	Enabled bool `json:"enabled"`
	// Version is assigned by the registry on save.
	Version int `json:"version,omitempty"`
}

// Validate checks structural integrity: a root that exists, edges that
// reference known nodes, ops that are registered, and acyclicity (OCE
// decision trees must terminate).
func (h *Handler) Validate() error {
	if h.Name == "" {
		return fmt.Errorf("handler: missing name")
	}
	if h.AlertType == "" {
		return fmt.Errorf("handler %s: missing alert type", h.Name)
	}
	if len(h.Nodes) == 0 {
		return fmt.Errorf("handler %s: no nodes", h.Name)
	}
	if _, ok := h.Nodes[h.Root]; !ok {
		return fmt.Errorf("handler %s: root node %q not found", h.Name, h.Root)
	}
	for id, n := range h.Nodes {
		if n == nil {
			return fmt.Errorf("handler %s: nil node %q", h.Name, id)
		}
		if n.ID != id {
			return fmt.Errorf("handler %s: node key %q does not match node ID %q", h.Name, id, n.ID)
		}
		switch n.Action.Kind {
		case KindScopeSwitch, KindMitigation:
		case KindQuery:
			if !OpRegistered(n.Action.Op) {
				return fmt.Errorf("handler %s: node %q uses unregistered op %q", h.Name, id, n.Action.Op)
			}
		default:
			return fmt.Errorf("handler %s: node %q has unknown action kind %q", h.Name, id, n.Action.Kind)
		}
		for out, next := range n.Next {
			if _, ok := h.Nodes[next]; !ok {
				return fmt.Errorf("handler %s: node %q edge %q targets unknown node %q", h.Name, id, out, next)
			}
		}
	}
	return h.checkAcyclic()
}

func (h *Handler) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(h.Nodes))
	var visit func(id string) error
	visit = func(id string) error {
		switch color[id] {
		case gray:
			return fmt.Errorf("handler %s: cycle through node %q", h.Name, id)
		case black:
			return nil
		}
		color[id] = gray
		for _, next := range h.Nodes[id].Next {
			if err := visit(next); err != nil {
				return err
			}
		}
		color[id] = black
		return nil
	}
	for id := range h.Nodes {
		if err := visit(id); err != nil {
			return err
		}
	}
	return nil
}

// NumActions returns the node count (the unit Table 4 reports per team).
func (h *Handler) NumActions() int { return len(h.Nodes) }

// Marshal serializes the handler to JSON for the versioned store.
func (h *Handler) Marshal() ([]byte, error) {
	data, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("handler %s: marshal: %w", h.Name, err)
	}
	return data, nil
}

// Unmarshal parses a handler from its stored JSON form.
func Unmarshal(data []byte) (*Handler, error) {
	var h Handler
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("handler: unmarshal: %w", err)
	}
	return &h, nil
}

// Clone returns a deep copy, useful when editing a stored handler.
func (h *Handler) Clone() *Handler {
	cp := *h
	cp.Nodes = make(map[string]*Node, len(h.Nodes))
	for id, n := range h.Nodes {
		nn := *n
		if n.Params() != nil {
			nn.Action.Params = make(map[string]string, len(n.Action.Params))
			for k, v := range n.Action.Params {
				nn.Action.Params[k] = v
			}
		}
		if n.Next != nil {
			nn.Next = make(map[Outcome]string, len(n.Next))
			for o, t := range n.Next {
				nn.Next[o] = t
			}
		}
		cp.Nodes[id] = &nn
	}
	return &cp
}

// Params returns the node's action parameters (possibly nil).
func (n *Node) Params() map[string]string { return n.Action.Params }

// Builder provides a fluent way to assemble handlers in code and from the
// handlerd API.
type Builder struct {
	h   *Handler
	err error
}

// NewBuilder starts a handler for the given alert type.
func NewBuilder(name string, alertType incident.AlertType, team string) *Builder {
	return &Builder{h: &Handler{
		Name:      name,
		AlertType: alertType,
		Team:      team,
		Nodes:     make(map[string]*Node),
		Enabled:   true,
	}}
}

// Node adds a node. The first node added becomes the root.
func (b *Builder) Node(id, label string, spec ActionSpec) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.h.Nodes[id]; dup {
		b.err = fmt.Errorf("handler %s: duplicate node %q", b.h.Name, id)
		return b
	}
	b.h.Nodes[id] = &Node{ID: id, Label: label, Action: spec}
	if b.h.Root == "" {
		b.h.Root = id
	}
	return b
}

// Edge wires from's outcome to the node to.
func (b *Builder) Edge(from string, out Outcome, to string) *Builder {
	if b.err != nil {
		return b
	}
	n, ok := b.h.Nodes[from]
	if !ok {
		b.err = fmt.Errorf("handler %s: edge from unknown node %q", b.h.Name, from)
		return b
	}
	if n.Next == nil {
		n.Next = make(map[Outcome]string)
	}
	n.Next[out] = to
	return b
}

// Build validates and returns the handler.
func (b *Builder) Build() (*Handler, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.h.Validate(); err != nil {
		return nil, err
	}
	return b.h, nil
}
