package handler

import (
	"errors"
	"fmt"

	"repro/internal/incident"
	"repro/internal/kvstore"
)

// Sentinel errors the registry wraps into its lookup failures, so HTTP
// front ends pick status codes with errors.Is instead of matching error
// text.
var (
	// ErrNotFound reports that no handler is registered for the requested
	// team/alert type.
	ErrNotFound = errors.New("no handler registered")
	// ErrNoVersion reports that the handler exists but the requested
	// version does not.
	ErrNoVersion = errors.New("no such handler version")
)

// Registry stores handlers in the versioned kvstore, keyed by alert type,
// and matches incoming incidents to the right handler — the "Handler
// Matching" box of the paper's architecture (Figure 4). Saving an edited
// handler appends a new version; old versions stay addressable, matching
// the paper's handler version tracking.
type Registry struct {
	store *kvstore.Store
}

// NewRegistry returns a registry backed by the given store.
func NewRegistry(store *kvstore.Store) *Registry {
	if store == nil {
		store = kvstore.New()
	}
	return &Registry{store: store}
}

func handlerKey(team string, alertType incident.AlertType) string {
	return fmt.Sprintf("handler/%s/%s", team, alertType)
}

// Save validates the handler and appends it as a new version, returning the
// assigned version number.
func (r *Registry) Save(h *Handler) (int, error) {
	if err := h.Validate(); err != nil {
		return 0, err
	}
	cp := h.Clone()
	cp.Version = r.store.Versions(handlerKey(cp.Team, cp.AlertType)) + 1
	data, err := cp.Marshal()
	if err != nil {
		return 0, err
	}
	return r.store.Put(handlerKey(cp.Team, cp.AlertType), data), nil
}

// Match returns the latest handler version for the incident's alert type
// within the given team — the paper's 100%-accurate handler activation.
func (r *Registry) Match(team string, inc *incident.Incident) (*Handler, error) {
	return r.Latest(team, inc.Alert.Type)
}

// Latest returns the newest stored version for the team/alert type.
func (r *Registry) Latest(team string, alertType incident.AlertType) (*Handler, error) {
	data, ok := r.store.Get(handlerKey(team, alertType))
	if !ok {
		return nil, fmt.Errorf("handler: team %s alert type %q: %w", team, alertType, ErrNotFound)
	}
	return Unmarshal(data)
}

// Version returns a specific stored version.
func (r *Registry) Version(team string, alertType incident.AlertType, version int) (*Handler, error) {
	data, ok := r.store.GetVersion(handlerKey(team, alertType), version)
	if !ok {
		return nil, fmt.Errorf("handler: team %s alert type %q version %d: %w", team, alertType, version, ErrNoVersion)
	}
	return Unmarshal(data)
}

// Versions reports how many versions exist for the team/alert type.
func (r *Registry) Versions(team string, alertType incident.AlertType) int {
	return r.store.Versions(handlerKey(team, alertType))
}

// List returns the latest version of every handler registered for the team.
func (r *Registry) List(team string) ([]*Handler, error) {
	keys := r.store.Keys("handler/" + team + "/")
	out := make([]*Handler, 0, len(keys))
	for _, k := range keys {
		data, ok := r.store.Get(k)
		if !ok {
			continue
		}
		h, err := Unmarshal(data)
		if err != nil {
			return nil, err
		}
		out = append(out, h)
	}
	return out, nil
}

// EnabledCount returns how many of the team's handlers are enabled in
// production (Table 4's "# Enabled handler" column).
func (r *Registry) EnabledCount(team string) (int, error) {
	hs, err := r.List(team)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, h := range hs {
		if h.Enabled {
			n++
		}
	}
	return n, nil
}

// InstallBuiltins saves the builtin handler suite for the team and returns
// how many were installed.
func (r *Registry) InstallBuiltins(team string) (int, error) {
	hs, err := BuiltinAll()
	if err != nil {
		return 0, err
	}
	for _, h := range hs {
		h.Team = team
		if _, err := r.Save(h); err != nil {
			return 0, err
		}
	}
	return len(hs), nil
}
