package handler

import (
	"fmt"

	"repro/internal/incident"
	"repro/internal/transport"
)

// Builtin returns the pre-built Transport-team handler for an alert type.
// These encode the OCE expertise of §4.1: each walks from a known-issue
// check through multi-source queries, ending in mitigation where the
// decision tree is confident and in plain diagnostics where it is not.
// The MessagesStuckInDeliveryQueue handler mirrors Figure 5.
func Builtin(alertType incident.AlertType) (*Handler, error) {
	switch alertType {
	case transport.AlertMessagesStuckInDelivery:
		// Figure 5: known issue? -> mitigation | determine issue type ->
		// busy hub: switch scope + analyze busy server; others: thread
		// grouping -> top error -> engage/report; then delivery health ->
		// restart if not restarted recently.
		return NewBuilder("delivery-queue-stuck", alertType, "Transport").
			Node("known", "Known Issue?", ActionSpec{Kind: KindQuery, Op: "known-issue"}).
			Node("mitigate-known", "Mitigation Actions", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "apply recorded mitigation for known issue"}}).
			Node("queues", "Determine Issue Type", ActionSpec{Kind: KindQuery, Op: "queue-metrics"}).
			Node("scope", "Switch Scope to Single Server", ActionSpec{Kind: KindScopeSwitch,
				Params: map[string]string{"to": "Machine", "select": "busiest-delivery"}}).
			Node("threads", "Get-ThreadStackGrouping", ActionSpec{Kind: KindQuery, Op: "thread-stack-grouping",
				Params: map[string]string{"process": "Transport.exe"}}).
			Node("toperr", "Get top Error Msg", ActionSpec{Kind: KindQuery, Op: "top-error"}).
			Node("config", "Check Config Service", ActionSpec{Kind: KindQuery, Op: "config-dump"}).
			Node("health", "Check Delivery Health", ActionSpec{Kind: KindQuery, Op: "delivery-health"}).
			Node("restart", "Restart Service", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "restart the mailbox delivery service"}}).
			Node("logs", "Collect Diagnose Logs", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "collect diagnostic logs and engage the delivery team"}}).
			Edge("known", OutcomeTrue, "mitigate-known").
			Edge("known", OutcomeFalse, "queues").
			Edge("queues", OutcomeDefault, "scope").
			Edge("scope", OutcomeDefault, "threads").
			Edge("threads", OutcomeDefault, "toperr").
			Edge("toperr", OutcomeDefault, "config").
			Edge("config", OutcomeDefault, "health").
			Edge("health", OutcomeFalse, "restart").
			Edge("health", OutcomeTrue, "logs").
			Build()

	case transport.AlertFrontDoorConnectionFailure:
		return NewBuilder("front-door-connect-failures", alertType, "Transport").
			Node("known", "Known Issue?", ActionSpec{Kind: KindQuery, Op: "known-issue"}).
			Node("mitigate-known", "Mitigation Actions", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "apply recorded mitigation for known issue"}}).
			Node("probes", "Check Probe Log", ActionSpec{Kind: KindQuery, Op: "probe-log"}).
			Node("dns", "Check DNS Resolution", ActionSpec{Kind: KindQuery, Op: "dns-check"}).
			Node("sockets", "Check UDP Sockets", ActionSpec{Kind: KindQuery, Op: "socket-metrics"}).
			Node("stacks", "Collect Exception Stacks", ActionSpec{Kind: KindQuery, Op: "exception-stacks"}).
			Node("engage", "Engage Other Teams", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "engage the networking team with socket and probe data"}}).
			Edge("known", OutcomeTrue, "mitigate-known").
			Edge("known", OutcomeFalse, "probes").
			Edge("probes", OutcomeDefault, "dns").
			Edge("dns", OutcomeDefault, "sockets").
			Edge("sockets", OutcomeDefault, "stacks").
			Edge("stacks", OutcomeDefault, "engage").
			Build()

	case transport.AlertMessagesStuckInSubmission:
		return NewBuilder("submission-queue-stuck", alertType, "Transport").
			Node("known", "Known Issue?", ActionSpec{Kind: KindQuery, Op: "known-issue"}).
			Node("mitigate-known", "Mitigation Actions", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "apply recorded mitigation for known issue"}}).
			Node("queues", "Check Queue Depths", ActionSpec{Kind: KindQuery, Op: "queue-metrics"}).
			Node("avail", "Check Auth Availability", ActionSpec{Kind: KindQuery, Op: "component-availability"}).
			Node("tenants", "Check Tenant Configs", ActionSpec{Kind: KindQuery, Op: "tenant-connectors"}).
			Node("crashes", "Check Crash Events", ActionSpec{Kind: KindQuery, Op: "crash-events"}).
			Node("toperr", "Get top Error Msg", ActionSpec{Kind: KindQuery, Op: "top-error"}).
			Node("report", "Report to a Specific Team", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "report findings to the submission pipeline team"}}).
			Edge("known", OutcomeTrue, "mitigate-known").
			Edge("known", OutcomeFalse, "queues").
			Edge("queues", OutcomeDefault, "avail").
			Edge("avail", OutcomeDefault, "tenants").
			Edge("tenants", OutcomeDefault, "crashes").
			Edge("crashes", OutcomeDefault, "toperr").
			Edge("toperr", OutcomeDefault, "report").
			Build()

	case transport.AlertProcessCrashSpike:
		return NewBuilder("process-crash-spike", alertType, "Transport").
			Node("known", "Known Issue?", ActionSpec{Kind: KindQuery, Op: "known-issue"}).
			Node("mitigate-known", "Mitigation Actions", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "apply recorded mitigation for known issue"}}).
			Node("crashes", "Check Crash Events", ActionSpec{Kind: KindQuery, Op: "crash-events"}).
			Node("toperr", "Get top Error Msg", ActionSpec{Kind: KindQuery, Op: "top-error"}).
			Node("scope", "Switch Scope to Fullest Disk", ActionSpec{Kind: KindScopeSwitch,
				Params: map[string]string{"to": "Machine", "select": "fullest-disk"}}).
			Node("disk", "Common Disk Check", ActionSpec{Kind: KindQuery, Op: "disk-usage"}).
			Node("stacks", "Collect Exception Stacks", ActionSpec{Kind: KindQuery, Op: "exception-stacks"}).
			Node("prov", "Check Provisioning", ActionSpec{Kind: KindQuery, Op: "provisioning-status"}).
			Node("engage", "Engage Other Teams", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "engage security and storage teams with crash data"}}).
			Edge("known", OutcomeTrue, "mitigate-known").
			Edge("known", OutcomeFalse, "crashes").
			Edge("crashes", OutcomeDefault, "toperr").
			Edge("toperr", OutcomeDefault, "scope").
			Edge("scope", OutcomeDefault, "disk").
			Edge("disk", OutcomeDefault, "stacks").
			Edge("stacks", OutcomeDefault, "prov").
			Edge("prov", OutcomeDefault, "engage").
			Build()

	case transport.AlertTokenCreationFailure:
		return NewBuilder("token-creation-failure", alertType, "Transport").
			Node("known", "Known Issue?", ActionSpec{Kind: KindQuery, Op: "known-issue"}).
			Node("mitigate-known", "Mitigation Actions", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "apply recorded mitigation for known issue"}}).
			Node("avail", "Check Token Service", ActionSpec{Kind: KindQuery, Op: "component-availability"}).
			Node("certs", "Check Certificates", ActionSpec{Kind: KindQuery, Op: "cert-inventory"}).
			Node("config", "Check Config Service", ActionSpec{Kind: KindQuery, Op: "config-dump"}).
			Node("crashes", "Check Crash Events", ActionSpec{Kind: KindQuery, Op: "crash-events"}).
			Node("rotate", "Rotate Certificate", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "roll back to the last known-good auth certificate"}}).
			Node("engage", "Engage Other Teams", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "engage the identity team"}}).
			Edge("known", OutcomeTrue, "mitigate-known").
			Edge("known", OutcomeFalse, "avail").
			Edge("avail", OutcomeDefault, "certs").
			Edge("certs", OutcomeTrue, "rotate").
			Edge("certs", OutcomeFalse, "config").
			Edge("config", OutcomeDefault, "crashes").
			Edge("crashes", OutcomeDefault, "engage").
			Build()

	case transport.AlertComponentAvailabilityDrop:
		return NewBuilder("component-availability-drop", alertType, "Transport").
			Node("known", "Known Issue?", ActionSpec{Kind: KindQuery, Op: "known-issue"}).
			Node("mitigate-known", "Mitigation Actions", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "apply recorded mitigation for known issue"}}).
			Node("avail", "Check Availability", ActionSpec{Kind: KindQuery, Op: "component-availability"}).
			Node("crashes", "Check Crash Events", ActionSpec{Kind: KindQuery, Op: "crash-events"}).
			Node("toperr", "Get top Error Msg", ActionSpec{Kind: KindQuery, Op: "top-error"}).
			Node("prov", "Check Deployed Build", ActionSpec{Kind: KindQuery, Op: "provisioning-status"}).
			Node("trace", "Sample Request Trace", ActionSpec{Kind: KindQuery, Op: "trace-sample"}).
			Node("report", "Report to a Specific Team", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "report regression evidence to the component owners"}}).
			Edge("known", OutcomeTrue, "mitigate-known").
			Edge("known", OutcomeFalse, "avail").
			Edge("avail", OutcomeDefault, "crashes").
			Edge("crashes", OutcomeDefault, "toperr").
			Edge("toperr", OutcomeDefault, "prov").
			Edge("prov", OutcomeDefault, "trace").
			Edge("trace", OutcomeDefault, "report").
			Build()

	case transport.AlertTooManyServerConnections:
		return NewBuilder("too-many-connections", alertType, "Transport").
			Node("known", "Known Issue?", ActionSpec{Kind: KindQuery, Op: "known-issue"}).
			Node("mitigate-known", "Mitigation Actions", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "apply recorded mitigation for known issue"}}).
			Node("tenants", "Check Tenant Connectors", ActionSpec{Kind: KindQuery, Op: "tenant-connectors"}).
			Node("trace", "Sample Request Trace", ActionSpec{Kind: KindQuery, Op: "trace-sample"}).
			Node("crashes", "Check Crash Events", ActionSpec{Kind: KindQuery, Op: "crash-events"}).
			Node("toperr", "Get top Error Msg", ActionSpec{Kind: KindQuery, Op: "top-error"}).
			Node("certs", "Check Certificates", ActionSpec{Kind: KindQuery, Op: "cert-inventory"}).
			Node("block", "Block Abusive Tenants", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "throttle and review flagged tenants"}}).
			Node("engage", "Engage Other Teams", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "engage the anti-abuse team"}}).
			Edge("known", OutcomeTrue, "mitigate-known").
			Edge("known", OutcomeFalse, "tenants").
			Edge("tenants", OutcomeTrue, "block").
			Edge("tenants", OutcomeFalse, "trace").
			Edge("trace", OutcomeDefault, "crashes").
			Edge("crashes", OutcomeDefault, "toperr").
			Edge("toperr", OutcomeDefault, "certs").
			Edge("certs", OutcomeDefault, "engage").
			Build()

	case transport.AlertDiskSpaceLow:
		return NewBuilder("disk-space-low", alertType, "Transport").
			Node("known", "Known Issue?", ActionSpec{Kind: KindQuery, Op: "known-issue"}).
			Node("mitigate-known", "Mitigation Actions", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "apply recorded mitigation for known issue"}}).
			Node("disk", "Check Disk Usage", ActionSpec{Kind: KindQuery, Op: "disk-usage"}).
			Node("crashes", "Check Crash Events", ActionSpec{Kind: KindQuery, Op: "crash-events"}).
			Node("clean", "Clean Old Logs", ActionSpec{Kind: KindMitigation,
				Params: map[string]string{"action": "purge rotated diagnostic logs from the full volume"}}).
			Edge("known", OutcomeTrue, "mitigate-known").
			Edge("known", OutcomeFalse, "disk").
			Edge("disk", OutcomeDefault, "crashes").
			Edge("crashes", OutcomeDefault, "clean").
			Build()

	default:
		return nil, fmt.Errorf("handler: no builtin handler for alert type %q", alertType)
	}
}

// BuiltinAll returns the builtin handlers for every alert type the
// transport monitors can raise.
func BuiltinAll() ([]*Handler, error) {
	var out []*Handler
	for _, at := range transport.AllAlertTypes() {
		h, err := Builtin(at)
		if err != nil {
			return nil, err
		}
		out = append(out, h)
	}
	return out, nil
}
