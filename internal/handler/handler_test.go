package handler

import (
	"strings"
	"testing"
	"time"

	"repro/internal/incident"
	"repro/internal/transport"
)

func querySpec(op string) ActionSpec { return ActionSpec{Kind: KindQuery, Op: op} }

func TestBuilderBuildsValidHandler(t *testing.T) {
	h, err := NewBuilder("t", transport.AlertDiskSpaceLow, "Transport").
		Node("a", "Check Disk", querySpec("disk-usage")).
		Node("b", "Done", ActionSpec{Kind: KindMitigation}).
		Edge("a", OutcomeDefault, "b").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if h.Root != "a" {
		t.Fatalf("root = %q, want a (first node)", h.Root)
	}
	if h.NumActions() != 2 {
		t.Fatalf("NumActions = %d, want 2", h.NumActions())
	}
}

func TestBuilderRejectsDuplicateNode(t *testing.T) {
	_, err := NewBuilder("t", "A", "T").
		Node("a", "", querySpec("disk-usage")).
		Node("a", "", querySpec("disk-usage")).
		Build()
	if err == nil {
		t.Fatal("expected duplicate-node error")
	}
}

func TestBuilderRejectsEdgeFromUnknownNode(t *testing.T) {
	_, err := NewBuilder("t", "A", "T").
		Node("a", "", querySpec("disk-usage")).
		Edge("ghost", OutcomeDefault, "a").
		Build()
	if err == nil {
		t.Fatal("expected unknown-node error")
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	_, err := NewBuilder("t", "A", "T").
		Node("a", "", querySpec("disk-usage")).
		Node("b", "", querySpec("crash-events")).
		Edge("a", OutcomeDefault, "b").
		Edge("b", OutcomeDefault, "a").
		Build()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestValidateRejectsUnregisteredOp(t *testing.T) {
	_, err := NewBuilder("t", "A", "T").
		Node("a", "", querySpec("no-such-op")).
		Build()
	if err == nil || !strings.Contains(err.Error(), "unregistered") {
		t.Fatalf("expected unregistered-op error, got %v", err)
	}
}

func TestValidateRejectsEdgeToUnknownTarget(t *testing.T) {
	h := &Handler{
		Name: "t", AlertType: "A", Root: "a",
		Nodes: map[string]*Node{
			"a": {ID: "a", Action: querySpec("disk-usage"),
				Next: map[Outcome]string{OutcomeDefault: "ghost"}},
		},
	}
	if err := h.Validate(); err == nil {
		t.Fatal("expected unknown-target error")
	}
}

func TestValidateRejectsMissingRoot(t *testing.T) {
	h := &Handler{Name: "t", AlertType: "A", Root: "nope",
		Nodes: map[string]*Node{"a": {ID: "a", Action: querySpec("disk-usage")}}}
	if err := h.Validate(); err == nil {
		t.Fatal("expected missing-root error")
	}
}

func TestBuiltinHandlersAllValidate(t *testing.T) {
	hs, err := BuiltinAll()
	if err != nil {
		t.Fatalf("BuiltinAll: %v", err)
	}
	if len(hs) != len(transport.AllAlertTypes()) {
		t.Fatalf("builtin count = %d, want %d", len(hs), len(transport.AllAlertTypes()))
	}
	for _, h := range hs {
		if err := h.Validate(); err != nil {
			t.Errorf("builtin %s invalid: %v", h.Name, err)
		}
		if h.NumActions() < 4 {
			t.Errorf("builtin %s suspiciously small: %d nodes", h.Name, h.NumActions())
		}
	}
}

func TestBuiltinUnknownAlertType(t *testing.T) {
	if _, err := Builtin("NoSuchAlert"); err == nil {
		t.Fatal("expected error for unknown alert type")
	}
}

// newIncidentFor injects cat into a fresh fleet and returns the fleet plus
// the incident created from the first monitor alert.
func newIncidentFor(t *testing.T, cat incident.Category) (*transport.Fleet, *incident.Incident) {
	t.Helper()
	fleet := transport.NewFleet(transport.DefaultConfig(11))
	if _, err := fleet.Inject(cat, 0); err != nil {
		t.Fatalf("Inject(%s): %v", cat, err)
	}
	alert, ok := fleet.FirstAlert()
	if !ok {
		t.Fatalf("no alert for %s", cat)
	}
	return fleet, &incident.Incident{
		ID: "INC-TEST", Title: alert.Message, OwningTeam: "Transport",
		Severity: incident.Sev2, Alert: alert, CreatedAt: alert.RaisedAt,
	}
}

func TestRunCollectsEvidenceForEveryTable1Category(t *testing.T) {
	for _, cat := range transport.Table1Categories() {
		cat := cat
		t.Run(string(cat), func(t *testing.T) {
			fleet, inc := newIncidentFor(t, cat)
			runner := NewRunner(fleet)
			h, err := Builtin(inc.Alert.Type)
			if err != nil {
				t.Fatal(err)
			}
			report, err := runner.Run(h, inc)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(inc.Evidence) < 3 {
				t.Errorf("collected only %d evidence items", len(inc.Evidence))
			}
			if len(inc.ActionOutput) == 0 {
				t.Error("no action outputs recorded")
			}
			if len(report.Steps) < 3 {
				t.Errorf("report has only %d steps", len(report.Steps))
			}
			if report.VirtualCost <= 0 {
				t.Error("run charged no virtual cost")
			}
		})
	}
}

func TestRunHubPortExhaustionEvidenceHasSignals(t *testing.T) {
	fleet, inc := newIncidentFor(t, "HubPortExhaustion")
	runner := NewRunner(fleet)
	h, err := Builtin(inc.Alert.Type)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(h, inc); err != nil {
		t.Fatal(err)
	}
	text := inc.DiagnosticText()
	for _, want := range []string{"WinSock error: 11001", "UDP socket count", "Failed Probes"} {
		if !strings.Contains(text, want) {
			t.Errorf("diagnostic text missing %q", want)
		}
	}
	if inc.ActionOutput["dns-failing"] != "True" {
		t.Errorf("dns-failing action output = %q, want True", inc.ActionOutput["dns-failing"])
	}
}

func TestKnownIssueShortCircuitsToMitigation(t *testing.T) {
	fleet, inc := newIncidentFor(t, "DeliveryHang")
	runner := NewRunner(fleet)
	// Record the alert-message signature as a known issue.
	runner.KnownIssues.Put("known-issue/"+string(inc.Alert.Type), []byte("stuck in the delivery queue"))
	h, err := Builtin(inc.Alert.Type)
	if err != nil {
		t.Fatal(err)
	}
	report, err := runner.Run(h, inc)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Steps) != 2 {
		t.Fatalf("known issue should short-circuit to 2 steps, got %d", len(report.Steps))
	}
	if inc.ActionOutput["known-issue"] != "true" {
		t.Errorf("known-issue output = %q, want true", inc.ActionOutput["known-issue"])
	}
	if len(report.Mitigations) != 1 {
		t.Fatalf("mitigations = %v, want exactly one", report.Mitigations)
	}
}

func TestRunRejectsAlertTypeMismatch(t *testing.T) {
	fleet, inc := newIncidentFor(t, "FullDisk")
	runner := NewRunner(fleet)
	h, err := Builtin(transport.AlertTokenCreationFailure)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(h, inc); err == nil {
		t.Fatal("expected alert-type mismatch error")
	}
}

func TestRunMaxStepsGuard(t *testing.T) {
	fleet, inc := newIncidentFor(t, "FullDisk")
	runner := NewRunner(fleet)
	runner.MaxSteps = 2
	h, err := Builtin(inc.Alert.Type)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(h, inc); err == nil || !strings.Contains(err.Error(), "steps") {
		t.Fatalf("expected max-steps error, got %v", err)
	}
}

func TestScopeSwitchChangesTarget(t *testing.T) {
	fleet, inc := newIncidentFor(t, "DeliveryHang")
	runner := NewRunner(fleet)
	h, err := Builtin(inc.Alert.Type)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(h, inc); err != nil {
		t.Fatal(err)
	}
	scope, ok := inc.ActionOutput["scope"]
	if !ok || !strings.HasPrefix(scope, "Machine:") {
		t.Fatalf("scope output = %q, want Machine:<name>", scope)
	}
	// The selected machine must be the backlogged one.
	name := strings.TrimPrefix(scope, "Machine:")
	m, ok := fleet.Machine(name)
	if !ok {
		t.Fatalf("scope targeted unknown machine %q", name)
	}
	if m.Queues["Delivery"] <= fleet.Limits().MaxDeliveryQueue {
		t.Error("busiest-delivery strategy picked a machine without backlog")
	}
}

func TestHandlerJSONRoundTrip(t *testing.T) {
	h, err := Builtin(transport.AlertMessagesStuckInDelivery)
	if err != nil {
		t.Fatal(err)
	}
	data, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != h.Name || got.AlertType != h.AlertType || len(got.Nodes) != len(h.Nodes) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped handler invalid: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	h, err := Builtin(transport.AlertDiskSpaceLow)
	if err != nil {
		t.Fatal(err)
	}
	cp := h.Clone()
	for id := range cp.Nodes {
		cp.Nodes[id].Label = "mutated"
		for o := range cp.Nodes[id].Next {
			cp.Nodes[id].Next[o] = "mutated"
		}
		if cp.Nodes[id].Action.Params != nil {
			for k := range cp.Nodes[id].Action.Params {
				cp.Nodes[id].Action.Params[k] = "mutated"
			}
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("mutating the clone corrupted the original: %v", err)
	}
	for _, n := range h.Nodes {
		if n.Label == "mutated" {
			t.Fatal("clone shares node labels with original")
		}
	}
}

func TestRegistryVersioning(t *testing.T) {
	r := NewRegistry(nil)
	h, err := Builtin(transport.AlertDiskSpaceLow)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := r.Save(h)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 {
		t.Fatalf("first save version = %d, want 1", v1)
	}
	// Edit: disable and re-save.
	h2 := h.Clone()
	h2.Enabled = false
	v2, err := r.Save(h2)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Fatalf("second save version = %d, want 2", v2)
	}
	latest, err := r.Latest("Transport", transport.AlertDiskSpaceLow)
	if err != nil {
		t.Fatal(err)
	}
	if latest.Enabled {
		t.Error("latest should be the disabled edit")
	}
	if latest.Version != 2 {
		t.Errorf("latest version = %d, want 2", latest.Version)
	}
	old, err := r.Version("Transport", transport.AlertDiskSpaceLow, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !old.Enabled {
		t.Error("version 1 should still be the enabled original")
	}
	if n := r.Versions("Transport", transport.AlertDiskSpaceLow); n != 2 {
		t.Errorf("Versions = %d, want 2", n)
	}
}

func TestRegistryMatchAndList(t *testing.T) {
	r := NewRegistry(nil)
	n, err := r.InstallBuiltins("Transport")
	if err != nil {
		t.Fatal(err)
	}
	if n != len(transport.AllAlertTypes()) {
		t.Fatalf("installed %d, want %d", n, len(transport.AllAlertTypes()))
	}
	inc := &incident.Incident{
		ID: "i", Title: "t", Severity: incident.Sev2,
		Alert:     incident.Alert{Type: transport.AlertProcessCrashSpike, Scope: incident.ScopeForest},
		CreatedAt: time.Now(),
	}
	h, err := r.Match("Transport", inc)
	if err != nil {
		t.Fatal(err)
	}
	if h.AlertType != transport.AlertProcessCrashSpike {
		t.Fatalf("matched wrong handler: %s", h.AlertType)
	}
	hs, err := r.List("Transport")
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != n {
		t.Fatalf("List = %d handlers, want %d", len(hs), n)
	}
	cnt, err := r.EnabledCount("Transport")
	if err != nil {
		t.Fatal(err)
	}
	if cnt != n {
		t.Fatalf("EnabledCount = %d, want %d", cnt, n)
	}
	if _, err := r.Match("GhostTeam", inc); err == nil {
		t.Fatal("match for unknown team should fail")
	}
}

func TestOpNamesSortedAndRegistered(t *testing.T) {
	names := OpNames()
	if len(names) < 10 {
		t.Fatalf("expected a rich op library, got %d ops", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("OpNames must be sorted and unique")
		}
	}
	for _, n := range names {
		if !OpRegistered(n) {
			t.Fatalf("op %q listed but not registered", n)
		}
	}
}

// TestRunWithPerRunExecIsolation executes a handler on a fresh per-run
// execution context: the report's VirtualCost must come from the run's own
// accumulator, the fleet meter must stay untouched until Finish, and the
// evidence timestamps must be based at the run's own clock view.
func TestRunWithPerRunExecIsolation(t *testing.T) {
	fleet, inc := newIncidentFor(t, "HubPortExhaustion")
	runner := NewRunner(fleet)
	h, err := Builtin(inc.Alert.Type)
	if err != nil {
		t.Fatal(err)
	}
	meterBefore := fleet.Meter().Total()

	ec := fleet.NewExec(inc.CreatedAt)
	report, err := runner.RunWith(ec, h, inc)
	if err != nil {
		t.Fatal(err)
	}
	if report.VirtualCost <= 0 || report.VirtualCost != ec.CostTotal() {
		t.Fatalf("VirtualCost = %v, exec total = %v", report.VirtualCost, ec.CostTotal())
	}
	if fleet.Meter().Total() != meterBefore {
		t.Fatal("per-run execution leaked cost into the fleet meter before Finish")
	}
	for _, ev := range inc.Evidence {
		if ev.Collected.Before(inc.CreatedAt) {
			t.Fatalf("evidence stamped %v, before run base %v", ev.Collected, inc.CreatedAt)
		}
		if ev.Collected.After(inc.CreatedAt.Add(report.VirtualCost)) {
			t.Fatalf("evidence stamped %v, after run end", ev.Collected)
		}
	}
	ec.Finish()
	if got := fleet.Meter().Total() - meterBefore; got != report.VirtualCost {
		t.Fatalf("merged cost %v != run cost %v", got, report.VirtualCost)
	}
}

// TestRunWithMatchesAmbientRun runs the same handler against two identically
// seeded fleets, once on the ambient context and once on a per-run context,
// and requires identical diagnostics and cost — the refactor's equivalence
// contract.
func TestRunWithMatchesAmbientRun(t *testing.T) {
	fleetA, incA := newIncidentFor(t, "DeliveryHang")
	fleetB, incB := newIncidentFor(t, "DeliveryHang")
	h, err := Builtin(incA.Alert.Type)
	if err != nil {
		t.Fatal(err)
	}
	repA, err := NewRunner(fleetA).Run(h, incA)
	if err != nil {
		t.Fatal(err)
	}
	ec := fleetB.NewExec(incB.CreatedAt)
	repB, err := NewRunner(fleetB).RunWith(ec, h, incB)
	if err != nil {
		t.Fatal(err)
	}
	if repA.VirtualCost != repB.VirtualCost {
		t.Fatalf("cost diverged: ambient %v vs per-run %v", repA.VirtualCost, repB.VirtualCost)
	}
	if a, b := incA.DiagnosticText(), incB.DiagnosticText(); a != b {
		t.Fatalf("diagnostics diverged:\n--- ambient ---\n%s\n--- per-run ---\n%s", a, b)
	}
	if len(repA.Steps) != len(repB.Steps) {
		t.Fatalf("step counts diverged: %d vs %d", len(repA.Steps), len(repB.Steps))
	}
}
