package handler

import (
	"fmt"
	"time"

	"repro/internal/incident"
	"repro/internal/kvstore"
	"repro/internal/transport"
)

// Step records one executed node for the run report.
type Step struct {
	NodeID  string
	Label   string
	Kind    Kind
	Outcome Outcome
}

// RunReport summarizes one handler execution.
type RunReport struct {
	Handler     string
	Steps       []Step
	Mitigations []string
	// VirtualCost is the modelled telemetry latency the run charged, the
	// unit Table 4's "avg exec time" column reports.
	VirtualCost time.Duration
}

// Runner executes handlers against a fleet, enriching incidents with the
// evidence and action outputs the prediction stage consumes.
type Runner struct {
	Fleet       *transport.Fleet
	KnownIssues *kvstore.Store
	// MaxSteps bounds execution as defense in depth beyond the DAG check.
	MaxSteps int
}

// NewRunner returns a Runner with an empty known-issue store.
func NewRunner(fleet *transport.Fleet) *Runner {
	return &Runner{Fleet: fleet, KnownIssues: kvstore.New(), MaxSteps: 64}
}

// Run executes h for the incident on the fleet's ambient execution context:
// telemetry cost lands in the shared fleet meter and the shared virtual
// clock advances, the behaviour sequential drivers (corpus generation,
// single-threaded tools, tests) expect. Concurrent callers use RunWith with
// a per-run context instead; interleaved ambient runs would blur VirtualCost
// attribution (though they are memory-safe).
func (r *Runner) Run(h *Handler, inc *incident.Incident) (*RunReport, error) {
	return r.RunWith(r.Fleet.Ambient(), h, inc)
}

// RunWith executes h for the incident on the given execution context,
// walking the decision tree from the root: each node's action runs, its
// output is appended to the incident's evidence, its key-value table merges
// into the incident's action outputs, and its outcome selects the next edge
// (falling back to Default). The walk stops at a node with no matching edge.
//
// Every telemetry query charges the context's cost sink and advances the
// context's clock view, so runs on distinct per-run contexts (Fleet.NewExec)
// may execute concurrently: cost attribution and evidence timestamps are
// private to the run.
func (r *Runner) RunWith(ec *transport.Exec, h *Handler, inc *incident.Incident) (*RunReport, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if h.AlertType != inc.Alert.Type {
		return nil, fmt.Errorf("handler %s handles %q, incident %s has alert type %q",
			h.Name, h.AlertType, inc.ID, inc.Alert.Type)
	}
	ctx := &Context{
		Exec:        ec,
		Incident:    inc,
		Scope:       inc.Alert.Scope,
		Target:      inc.Alert.Target,
		Forest:      inc.Alert.Forest,
		KnownIssues: r.KnownIssues,
	}
	if ctx.Forest == "" && ctx.Scope == incident.ScopeForest {
		ctx.Forest = ctx.Target
	}
	report := &RunReport{Handler: h.Name}
	maxSteps := r.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 64
	}
	costBefore := ec.CostTotal()

	cur := h.Root
	for steps := 0; cur != ""; steps++ {
		if steps >= maxSteps {
			return nil, fmt.Errorf("handler %s: exceeded %d steps", h.Name, maxSteps)
		}
		node := h.Nodes[cur]
		res, err := r.execute(ctx, node)
		if err != nil {
			return nil, fmt.Errorf("handler %s: node %s: %w", h.Name, node.ID, err)
		}
		report.Steps = append(report.Steps, Step{
			NodeID: node.ID, Label: node.Label, Kind: node.Action.Kind, Outcome: res.Outcome,
		})
		if res.Output != "" {
			source := node.Action.Op
			if source == "" {
				source = string(node.Action.Kind)
			}
			inc.AddEvidence(source, res.Kind, res.Output, ec.Now())
		}
		for k, v := range res.KV {
			inc.SetActionOutput(k, v)
			if k == "mitigation" {
				report.Mitigations = append(report.Mitigations, v)
			}
		}
		next, ok := node.Next[res.Outcome]
		if !ok {
			next, ok = node.Next[OutcomeDefault]
		}
		if !ok {
			break
		}
		cur = next
	}
	report.VirtualCost = ec.CostTotal() - costBefore
	return report, nil
}

func (r *Runner) execute(ctx *Context, node *Node) (Result, error) {
	switch node.Action.Kind {
	case KindQuery:
		fn, ok := ops[node.Action.Op]
		if !ok {
			return Result{}, fmt.Errorf("unregistered op %q", node.Action.Op)
		}
		return fn(ctx, node.Action.Params)
	case KindScopeSwitch:
		return runScopeSwitch(ctx, node.Action.Params)
	case KindMitigation:
		return runMitigation(ctx, node.Action.Params)
	default:
		return Result{}, fmt.Errorf("unknown action kind %q", node.Action.Kind)
	}
}
