package handler

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/incident"
	"repro/internal/kvstore"
	"repro/internal/transport"
)

// Context carries the mutable investigation state a handler run threads
// through its actions: the run's execution context (which meters every
// telemetry query into the run's own cost sink), the incident being
// enriched, and the current scope/target (adjusted by scope switching
// actions).
type Context struct {
	// Exec is the per-run execution context; query ops issue telemetry
	// requests through it so cost and virtual time stay private to the run.
	// It also identifies the fleet, so state reads cannot target a
	// different fleet than the one being charged.
	Exec     *transport.Exec
	Incident *incident.Incident

	// Scope and Target identify what is currently under investigation.
	// They start at the alert's scope/target.
	Scope  incident.Scope
	Target string
	Forest string

	// KnownIssues maps alert-message signatures to mitigations; the
	// "Known issue?" query consults it (Figure 5's first branch).
	KnownIssues *kvstore.Store
}

// Fleet returns the fleet under diagnosis, for uncharged state reads
// (forest and machine lookups, limits).
func (c *Context) Fleet() *transport.Fleet { return c.Exec.Fleet() }

// Result is what executing one action yields.
type Result struct {
	Outcome Outcome // selects the next edge
	Output  string  // rendered diagnostic text (becomes evidence)
	Kind    incident.SourceKind
	KV      map[string]string // key-value table -> incident.ActionOutput
}

// opFunc implements one registered query op.
type opFunc func(ctx *Context, params map[string]string) (Result, error)

// ops is the library of reusable query actions OCEs compose handlers from.
// The registry is fixed at init time, so lock-free reads are safe.
var ops = map[string]opFunc{}

func registerOp(name string, fn opFunc) {
	if _, dup := ops[name]; dup {
		panic(fmt.Sprintf("handler: duplicate op %q", name))
	}
	ops[name] = fn
}

// OpRegistered reports whether a query op name is known.
func OpRegistered(name string) bool { _, ok := ops[name]; return ok }

// OpNames returns the registered query op names, sorted (shown by the
// handlerd construction UI).
func OpNames() []string {
	out := make([]string, 0, len(ops))
	for name := range ops {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// machineTarget resolves the machine a machine-scoped op should query:
// the current target when scoped to a machine, otherwise a parameterized
// selection within the current forest.
func machineTarget(ctx *Context, params map[string]string) (string, error) {
	if ctx.Scope == incident.ScopeMachine && ctx.Target != "" {
		return ctx.Target, nil
	}
	fo, ok := ctx.Fleet().Forest(ctx.Forest)
	if !ok {
		return "", fmt.Errorf("handler: unknown forest %q", ctx.Forest)
	}
	return selectMachine(fo, params["select"])
}

// selectMachine picks a machine by strategy: busiest-delivery,
// busiest-submission, crashiest front door fallback, or first.
func selectMachine(fo *transport.Forest, strategy string) (string, error) {
	if len(fo.Machines) == 0 {
		return "", fmt.Errorf("handler: forest %s has no machines", fo.Name)
	}
	switch strategy {
	case "busiest-delivery":
		best := fo.Machines[0]
		for _, m := range fo.Machines {
			if m.Queues["Delivery"] > best.Queues["Delivery"] {
				best = m
			}
		}
		return best.Name, nil
	case "busiest-submission":
		best := fo.Machines[0]
		for _, m := range fo.Machines {
			if m.Queues["Submission"] > best.Queues["Submission"] {
				best = m
			}
		}
		return best.Name, nil
	case "fullest-disk":
		best, bestPct := fo.Machines[0], -1.0
		for _, m := range fo.Machines {
			for _, pct := range m.DiskUsedPct {
				if pct > bestPct {
					best, bestPct = m, pct
				}
			}
		}
		return best.Name, nil
	case "front-door":
		if fds := fo.MachinesByRole(transport.RoleFrontDoor); len(fds) > 0 {
			return fds[0].Name, nil
		}
		return fo.Machines[0].Name, nil
	case "", "first":
		return fo.Machines[0].Name, nil
	default:
		return "", fmt.Errorf("handler: unknown machine selection strategy %q", strategy)
	}
}

func init() {
	// Known-issue lookup: consults the known-issue store keyed by alert
	// type; outcome True routes straight to mitigation (Figure 5).
	registerOp("known-issue", func(ctx *Context, _ map[string]string) (Result, error) {
		key := "known-issue/" + string(ctx.Incident.Alert.Type)
		val, ok := ctx.KnownIssues.Get(key)
		r := Result{Outcome: OutcomeFalse, Kind: incident.SourceConfig,
			KV: map[string]string{"known-issue": "false"}}
		if ok && strings.Contains(ctx.Incident.Alert.Message, string(val)) {
			r.Outcome = OutcomeTrue
			r.KV["known-issue"] = "true"
			r.Output = fmt.Sprintf("Known issue matched for alert type %s (signature %q)", ctx.Incident.Alert.Type, val)
		} else {
			r.Output = fmt.Sprintf("No known issue recorded for alert type %s", ctx.Incident.Alert.Type)
		}
		return r, nil
	})

	// Machine-scoped telemetry queries.
	registerOp("probe-log", func(ctx *Context, params map[string]string) (Result, error) {
		m, err := machineTarget(ctx, params)
		if err != nil {
			return Result{}, err
		}
		out, err := ctx.Exec.ProbeLog(m)
		if err != nil {
			return Result{}, err
		}
		outcome := OutcomeFalse
		if strings.Contains(out, "Error") {
			outcome = OutcomeTrue
		}
		return Result{Outcome: outcome, Output: out, Kind: incident.SourceProbe,
			KV: map[string]string{"probe-machine": m, "probe-failing": string(outcome)}}, nil
	})
	registerOp("socket-metrics", func(ctx *Context, params map[string]string) (Result, error) {
		m, err := machineTarget(ctx, params)
		if err != nil {
			return Result{}, err
		}
		out, err := ctx.Exec.SocketMetrics(m)
		if err != nil {
			return Result{}, err
		}
		return Result{Outcome: OutcomeDefault, Output: out, Kind: incident.SourceMetric,
			KV: map[string]string{"socket-machine": m}}, nil
	})
	registerOp("exception-stacks", func(ctx *Context, params map[string]string) (Result, error) {
		m, err := machineTarget(ctx, params)
		if err != nil {
			return Result{}, err
		}
		out, err := ctx.Exec.ExceptionStacks(m)
		if err != nil {
			return Result{}, err
		}
		return Result{Outcome: OutcomeDefault, Output: out, Kind: incident.SourceStack,
			KV: map[string]string{"stack-machine": m}}, nil
	})
	registerOp("thread-stack-grouping", func(ctx *Context, params map[string]string) (Result, error) {
		m, err := machineTarget(ctx, params)
		if err != nil {
			return Result{}, err
		}
		proc := params["process"]
		if proc == "" {
			proc = "Transport.exe"
		}
		out, err := ctx.Exec.ThreadStackGrouping(m, proc)
		if err != nil {
			return Result{}, err
		}
		outcome := OutcomeFalse
		if strings.Contains(out, "Blocked") {
			outcome = OutcomeTrue
		}
		return Result{Outcome: outcome, Output: out, Kind: incident.SourceStack,
			KV: map[string]string{"threads-machine": m, "threads-blocked": string(outcome)}}, nil
	})
	registerOp("disk-usage", func(ctx *Context, params map[string]string) (Result, error) {
		m, err := machineTarget(ctx, params)
		if err != nil {
			return Result{}, err
		}
		out, err := ctx.Exec.DiskUsage(m)
		if err != nil {
			return Result{}, err
		}
		outcome := OutcomeFalse
		if strings.Contains(out, "volume is full") {
			outcome = OutcomeTrue
		}
		return Result{Outcome: outcome, Output: out, Kind: incident.SourceMetric,
			KV: map[string]string{"disk-machine": m, "disk-full": string(outcome)}}, nil
	})
	registerOp("dns-check", func(ctx *Context, params map[string]string) (Result, error) {
		m, err := machineTarget(ctx, params)
		if err != nil {
			return Result{}, err
		}
		out, err := ctx.Exec.DNSResolution(m)
		if err != nil {
			return Result{}, err
		}
		outcome := OutcomeFalse
		if strings.Contains(out, "FAILED") {
			outcome = OutcomeTrue
		}
		return Result{Outcome: outcome, Output: out, Kind: incident.SourceProbe,
			KV: map[string]string{"dns-machine": m, "dns-failing": string(outcome)}}, nil
	})

	// Forest-scoped telemetry queries.
	registerOp("queue-metrics", func(ctx *Context, _ map[string]string) (Result, error) {
		out, err := ctx.Exec.QueueMetrics(ctx.Forest)
		if err != nil {
			return Result{}, err
		}
		outcome := OutcomeFalse
		if strings.Contains(out, "WARNING") {
			outcome = OutcomeTrue
		}
		return Result{Outcome: outcome, Output: out, Kind: incident.SourceMetric,
			KV: map[string]string{"queue-backlog": string(outcome)}}, nil
	})
	registerOp("crash-events", func(ctx *Context, _ map[string]string) (Result, error) {
		out, err := ctx.Exec.CrashEvents(ctx.Forest)
		if err != nil {
			return Result{}, err
		}
		outcome := OutcomeFalse
		if !strings.Contains(out, "no crashes recorded") {
			outcome = OutcomeTrue
		}
		return Result{Outcome: outcome, Output: out, Kind: incident.SourceLog,
			KV: map[string]string{"crashes-present": string(outcome)}}, nil
	})
	registerOp("cert-inventory", func(ctx *Context, _ map[string]string) (Result, error) {
		out, err := ctx.Exec.CertInventory(ctx.Forest)
		if err != nil {
			return Result{}, err
		}
		outcome := OutcomeFalse
		if strings.Contains(out, "INVALID") {
			outcome = OutcomeTrue
		}
		return Result{Outcome: outcome, Output: out, Kind: incident.SourceConfig,
			KV: map[string]string{"invalid-cert": string(outcome)}}, nil
	})
	registerOp("tenant-connectors", func(ctx *Context, _ map[string]string) (Result, error) {
		out, err := ctx.Exec.TenantConnectors(ctx.Forest)
		if err != nil {
			return Result{}, err
		}
		outcome := OutcomeFalse
		if strings.Contains(out, "SUSPICIOUS") || strings.Contains(out, "INVALID CONFIG") {
			outcome = OutcomeTrue
		}
		return Result{Outcome: outcome, Output: out, Kind: incident.SourceConfig,
			KV: map[string]string{"tenant-anomaly": string(outcome)}}, nil
	})
	registerOp("component-availability", func(ctx *Context, _ map[string]string) (Result, error) {
		out, err := ctx.Exec.ComponentAvailability(ctx.Forest)
		if err != nil {
			return Result{}, err
		}
		outcome := OutcomeFalse
		if strings.Contains(out, "ALERT") || strings.Contains(out, "unreachable") ||
			strings.Contains(out, "not able to be created") {
			outcome = OutcomeTrue
		}
		return Result{Outcome: outcome, Output: out, Kind: incident.SourceMetric,
			KV: map[string]string{"availability-degraded": string(outcome)}}, nil
	})
	registerOp("config-dump", func(ctx *Context, _ map[string]string) (Result, error) {
		out, err := ctx.Exec.ConfigDump(ctx.Forest)
		if err != nil {
			return Result{}, err
		}
		outcome := OutcomeFalse
		if strings.Contains(out, "ERROR") {
			outcome = OutcomeTrue
		}
		return Result{Outcome: outcome, Output: out, Kind: incident.SourceConfig,
			KV: map[string]string{"config-service-error": string(outcome)}}, nil
	})
	registerOp("delivery-health", func(ctx *Context, _ map[string]string) (Result, error) {
		out, err := ctx.Exec.DeliveryHealth(ctx.Forest)
		if err != nil {
			return Result{}, err
		}
		outcome := OutcomeFalse
		if strings.Contains(out, "restartedRecently=true") {
			outcome = OutcomeTrue
		}
		return Result{Outcome: outcome, Output: out, Kind: incident.SourceMetric,
			KV: map[string]string{"delivery-restarted-recently": string(outcome)}}, nil
	})
	registerOp("trace-sample", func(ctx *Context, _ map[string]string) (Result, error) {
		out, err := ctx.Exec.TraceSample(ctx.Forest)
		if err != nil {
			return Result{}, err
		}
		outcome := OutcomeFalse
		if strings.Contains(out, "FAIL") {
			outcome = OutcomeTrue
		}
		return Result{Outcome: outcome, Output: out, Kind: incident.SourceTrace,
			KV: map[string]string{"trace-failing-hop": string(outcome)}}, nil
	})
	registerOp("provisioning-status", func(ctx *Context, _ map[string]string) (Result, error) {
		out, err := ctx.Exec.ProvisioningStatus(ctx.Forest)
		if err != nil {
			return Result{}, err
		}
		return Result{Outcome: OutcomeDefault, Output: out, Kind: incident.SourceConfig}, nil
	})

	// top-error extracts the dominant exception from the forest crash
	// record and returns it as the outcome, so edges can route per
	// exception type ("Get top error msg" in Figure 5).
	registerOp("top-error", func(ctx *Context, _ map[string]string) (Result, error) {
		fo, ok := ctx.Fleet().Forest(ctx.Forest)
		if !ok {
			return Result{}, fmt.Errorf("handler: unknown forest %q", ctx.Forest)
		}
		counts := make(map[string]int)
		for _, c := range fo.Crashes {
			counts[c.Exception]++
		}
		if len(counts) == 0 {
			return Result{Outcome: Outcome("None"),
				Output: "No exceptions observed on the stack traces.",
				Kind:   incident.SourceStack,
				KV:     map[string]string{"top-error": "none"}}, nil
		}
		top, topN := "", 0
		for e, n := range counts {
			if n > topN || (n == topN && e < top) {
				top, topN = e, n
			}
		}
		out := fmt.Sprintf("Top error message on the exception stack traces: %s (%d occurrences)", top, topN)
		return Result{Outcome: Outcome(top), Output: out, Kind: incident.SourceStack,
			KV: map[string]string{"top-error": top}}, nil
	})
}

// runScopeSwitch executes a scope switching action: it moves the
// investigation between forest and machine level using a selection
// strategy, mirroring Figure 5's "Switch Scope to Single Server".
func runScopeSwitch(ctx *Context, params map[string]string) (Result, error) {
	to := incident.Scope(params["to"])
	switch to {
	case incident.ScopeMachine:
		fo, ok := ctx.Fleet().Forest(ctx.Forest)
		if !ok {
			return Result{}, fmt.Errorf("handler: unknown forest %q", ctx.Forest)
		}
		m, err := selectMachine(fo, params["select"])
		if err != nil {
			return Result{}, err
		}
		ctx.Scope = incident.ScopeMachine
		ctx.Target = m
		return Result{Outcome: OutcomeDefault,
			Output: fmt.Sprintf("Switched investigation scope to single server %s (strategy %s)", m, params["select"]),
			Kind:   incident.SourceConfig,
			KV:     map[string]string{"scope": "Machine:" + m}}, nil
	case incident.ScopeForest:
		ctx.Scope = incident.ScopeForest
		ctx.Target = ctx.Forest
		return Result{Outcome: OutcomeDefault,
			Output: fmt.Sprintf("Widened investigation scope to forest %s", ctx.Forest),
			Kind:   incident.SourceConfig,
			KV:     map[string]string{"scope": "Forest:" + ctx.Forest}}, nil
	default:
		return Result{}, fmt.Errorf("handler: scope switch to unknown scope %q", params["to"])
	}
}

// runMitigation executes a mitigation action: it records the suggested
// strategic step without touching fleet state (OCEs review before acting).
func runMitigation(ctx *Context, params map[string]string) (Result, error) {
	action := params["action"]
	if action == "" {
		action = "collect diagnostic logs and engage the owning team"
	}
	return Result{Outcome: OutcomeDefault,
		Output: "Suggested mitigation: " + action,
		Kind:   incident.SourceConfig,
		KV:     map[string]string{"mitigation": action}}, nil
}
