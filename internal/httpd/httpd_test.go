package httpd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/incident"
)

func TestNewServerHasTimeouts(t *testing.T) {
	srv := NewServer(":0", http.NewServeMux())
	if srv.ReadHeaderTimeout != DefaultReadHeaderTimeout ||
		srv.ReadTimeout != DefaultReadTimeout ||
		srv.WriteTimeout != DefaultWriteTimeout ||
		srv.IdleTimeout != DefaultIdleTimeout {
		t.Fatalf("server missing hardened timeouts: %+v", srv)
	}
}

// TestServeGracefulShutdown is the regression test for the old
// log.Fatal(http.ListenAndServe(...)) front door: cancelling the context
// must run the drain hook, let an in-flight request complete, and return
// nil rather than tearing the process down.
func TestServeGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	inHandler := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /slow", func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release
		fmt.Fprint(w, "done")
	})

	srv := NewServer(addr, mux)
	ctx, cancel := context.WithCancel(context.Background())
	drained := false
	served := make(chan error, 1)
	go func() {
		served <- Serve(ctx, srv, 5*time.Second, func(context.Context) { drained = true })
	}()

	// Wait for the listener, then park a request in the handler.
	var resp *http.Response
	got := make(chan error, 1)
	go func() {
		for i := 0; i < 100; i++ {
			r, err := http.Get("http://" + addr + "/slow")
			if err == nil {
				resp = r
				got <- nil
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		got <- errors.New("server never came up")
	}()
	select {
	case <-inHandler:
	case err := <-got:
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached handler")
	}

	// Trigger shutdown while the request is in flight, then release it.
	cancel()
	time.Sleep(50 * time.Millisecond) // let Shutdown begin waiting
	close(release)

	if err := <-got; err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "done" {
		t.Fatalf("in-flight request body = %q, want it to complete", body)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
	if !drained {
		t.Fatal("drain hook did not run")
	}
}

func TestServeListenError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Binding the same port again must fail fast, not hang.
	srv := NewServer(ln.Addr().String(), http.NewServeMux())
	if err := Serve(context.Background(), srv, time.Second, nil); err == nil {
		t.Fatal("Serve on an occupied port returned nil")
	}
}

func TestDecodeJSON(t *testing.T) {
	type doc struct {
		Name string `json:"name"`
	}
	cases := []struct {
		name    string
		body    string
		max     int64
		wantErr error
	}{
		{"valid", `{"name":"ok"}`, 0, nil},
		{"malformed", `{oops`, 0, ErrBadBody},
		{"unknown field", `{"name":"ok","extra":1}`, 0, ErrBadBody},
		{"trailing data", `{"name":"ok"}{"name":"again"}`, 0, ErrBadBody},
		{"wrong type", `{"name":42}`, 0, ErrBadBody},
		{"too large", `{"name":"` + strings.Repeat("x", 256) + `"}`, 64, ErrBodyTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest("POST", "/", strings.NewReader(tc.body))
			var v doc
			err := DecodeJSON(httptest.NewRecorder(), req, tc.max, &v)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("DecodeJSON: %v", err)
				}
				if v.Name != "ok" {
					t.Fatalf("decoded %+v", v)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("DecodeJSON err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestWriteDecodeErrStatus(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteDecodeErr(rec, fmt.Errorf("wrap: %w", ErrBodyTooLarge))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("too-large status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	WriteDecodeErr(rec, fmt.Errorf("wrap: %w", ErrBadBody))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad-body status = %d", rec.Code)
	}
}

func TestTeamLimiterRate(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewTeamLimiter(LimitConfig{
		Rate: 1, Burst: 2, MaxInflight: -1,
		Now: func() time.Time { return now },
	})

	for i := 0; i < 2; i++ {
		release, err := l.Admit("Transport", incident.Sev3)
		if err != nil {
			t.Fatalf("admit %d within burst: %v", i, err)
		}
		release()
	}
	if _, err := l.Admit("Transport", incident.Sev3); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-burst err = %v, want ErrRateLimited", err)
	}
	// Another team has its own bucket.
	if _, err := l.Admit("Networking", incident.Sev3); err != nil {
		t.Fatalf("other team: %v", err)
	}
	// A second of refill buys Transport one more token.
	now = now.Add(time.Second)
	if _, err := l.Admit("Transport", incident.Sev3); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if l.RetryAfter() < 1 {
		t.Fatalf("RetryAfter = %d", l.RetryAfter())
	}

	stats := l.Stats()
	if len(stats) != 2 || stats[0].Team != "Networking" || stats[1].Team != "Transport" {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[1].Accepted != 3 || stats[1].RejectedRate != 1 {
		t.Fatalf("transport stats = %+v", stats[1])
	}
}

func TestTeamLimiterInflightBound(t *testing.T) {
	l := NewTeamLimiter(LimitConfig{Rate: 1000, Burst: 1000, MaxInflight: 2})

	r1, err := l.Admit("A", incident.Sev3)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.Admit("B", incident.Sev3)
	if err != nil {
		t.Fatal(err)
	}
	if l.Inflight() != 2 {
		t.Fatalf("inflight = %d", l.Inflight())
	}
	if _, err := l.Admit("C", incident.Sev3); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("at bound err = %v, want ErrOverloaded", err)
	}

	// Releasing frees a slot; double release must not free two.
	r1()
	r1()
	if l.Inflight() != 1 {
		t.Fatalf("inflight after release = %d", l.Inflight())
	}
	r3, err := l.Admit("C", incident.Sev3)
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	r3()
	r2()
	if l.Inflight() != 0 {
		t.Fatalf("inflight at end = %d", l.Inflight())
	}
}

func TestTeamLimiterBudgetDerivedBound(t *testing.T) {
	l := NewTeamLimiter(LimitConfig{})
	if b := l.MaxInflightBound(); b < 2 {
		t.Fatalf("budget-derived bound = %d, want >= 2", b)
	}
}

func TestQueryPosInt(t *testing.T) {
	cases := []struct {
		url     string
		want    int
		wantOK  bool
		wantErr bool
	}{
		{"/x", 0, false, false},
		{"/x?k=", 0, false, false},
		{"/x?k=5", 5, true, false},
		{"/x?k=abc", 0, false, true},
		{"/x?k=0", 0, false, true},
		{"/x?k=-3", 0, false, true},
	}
	for _, c := range cases {
		r := httptest.NewRequest("GET", c.url, nil)
		n, ok, err := QueryPosInt(r, "k")
		if (err != nil) != c.wantErr || n != c.want || ok != c.wantOK {
			t.Errorf("QueryPosInt(%q) = (%d, %v, %v), want (%d, %v, err=%v)",
				c.url, n, ok, err, c.want, c.wantOK, c.wantErr)
		}
	}
}
