// Package httpd is the hardened HTTP serving layer shared by the
// RCACopilot daemons (cmd/rcacopilotd, the unified incident-serving
// daemon, and cmd/handlerd, the handler-construction service). It owns
// the parts a fragile front door gets wrong:
//
//   - NewServer builds an http.Server with read-header, read, write and
//     idle timeouts, so a slowloris client cannot pin a connection open
//     and a wedged handler cannot stream forever. Endpoints that
//     legitimately stream (SSE) opt out per response with
//     http.ResponseController.SetWriteDeadline.
//   - Serve runs the server until a context — typically wired to
//     SIGTERM/SIGINT via signal.NotifyContext — is cancelled, then runs
//     the caller's drain hook (stop admitting, close the incident
//     channel, flush feedback) and shuts the listener down gracefully,
//     bounded by a grace period. In-flight requests complete; they are
//     never killed mid-response.
//   - DecodeJSON bounds request bodies with http.MaxBytesReader and
//     decodes strictly (DisallowUnknownFields, no trailing garbage), so
//     an oversized body is a 413, a malformed or mistyped document is a
//     400, and a misspelled field can never be silently dropped.
//   - TeamLimiter (limit.go) is per-team admission control: a token
//     bucket per team plus a global in-flight bound drawn from the shared
//     internal/parallel worker budget.
package httpd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Default server timeouts. ReadHeaderTimeout is the slowloris bound;
// WriteTimeout is generous because responses carry rendered reports, and
// streaming endpoints clear their deadline per event instead.
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = 30 * time.Second
	DefaultWriteTimeout      = 60 * time.Second
	DefaultIdleTimeout       = 2 * time.Minute
)

// MaxBody is the default request-body bound for DecodeJSON: far above any
// legitimate handler document or incident submission, far below what an
// attacker needs to matter.
const MaxBody int64 = 1 << 20

// Decode failure classes, separated so endpoints map them to status codes
// with errors.Is instead of matching error text.
var (
	// ErrBodyTooLarge reports a request body over the DecodeJSON bound
	// (HTTP 413).
	ErrBodyTooLarge = errors.New("request body too large")
	// ErrBadBody reports a syntactically or structurally invalid JSON
	// body — malformed JSON, unknown fields, trailing garbage (HTTP 400).
	ErrBadBody = errors.New("malformed request body")
)

// NewServer returns an http.Server for addr/handler with the hardened
// default timeouts. Callers adjust fields before Serve if an endpoint mix
// needs different bounds.
func NewServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: DefaultReadHeaderTimeout,
		ReadTimeout:       DefaultReadTimeout,
		WriteTimeout:      DefaultWriteTimeout,
		IdleTimeout:       DefaultIdleTimeout,
	}
}

// Serve runs srv until ctx is cancelled, then drains gracefully: drain
// (which may be nil) runs first — the application-level shutdown sequence,
// e.g. stop admitting incidents, close the stream, flush feedback — then
// srv.Shutdown completes in-flight requests and closes idle connections.
// Both phases share one grace-period budget; when it expires, remaining
// connections are closed hard. Serve returns nil after a clean drain, the
// listen error if the server never came up, or the shutdown error.
func Serve(ctx context.Context, srv *http.Server, grace time.Duration, drain func(context.Context)) error {
	if grace <= 0 {
		grace = 30 * time.Second
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		// ListenAndServe only returns early on failure to serve.
		return err
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if drain != nil {
		drain(dctx)
	}
	err := srv.Shutdown(dctx)
	<-errc // always http.ErrServerClosed after Shutdown
	return err
}

// DecodeJSON decodes the request body into v, bounded by maxBytes
// (MaxBody when <= 0) and strict: unknown fields and trailing data are
// rejected, so a misspelled field in a handler document 400s instead of
// silently dropping. Failures wrap ErrBodyTooLarge or ErrBadBody for
// errors.Is dispatch; WriteDecodeErr maps them to status codes.
func DecodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	if maxBytes <= 0 {
		maxBytes = MaxBody
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("%w: limit %d bytes", ErrBodyTooLarge, mbe.Limit)
		}
		return fmt.Errorf("%w: %v", ErrBadBody, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after JSON document", ErrBadBody)
	}
	return nil
}

// WriteDecodeErr writes the status a DecodeJSON failure maps to: 413 for
// an oversized body, 400 otherwise.
func WriteDecodeErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, ErrBodyTooLarge) {
		status = http.StatusRequestEntityTooLarge
	}
	WriteErr(w, status, err)
}

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Headers are already sent on encode failure; nothing more to report.
	_ = json.NewEncoder(w).Encode(v)
}

// WriteErr writes a JSON error envelope with the given status.
func WriteErr(w http.ResponseWriter, status int, err error) {
	WriteJSON(w, status, map[string]string{"error": err.Error()})
}

// QueryPosInt parses an optional positive-integer query parameter.
// Absent returns (0, false, nil); present but malformed or non-positive
// returns an error, so "?k=abc" surfaces as a 400 instead of being
// silently ignored.
func QueryPosInt(r *http.Request, name string) (int, bool, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, false, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, false, fmt.Errorf("query parameter %s: want a positive integer, got %q", name, s)
	}
	return n, true, nil
}
