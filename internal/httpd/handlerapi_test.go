package httpd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/handler"
	"repro/internal/transport"
)

func testServer(t *testing.T) http.Handler {
	t.Helper()
	reg := handler.NewRegistry(nil)
	if _, err := reg.InstallBuiltins("Transport"); err != nil {
		t.Fatal(err)
	}
	return NewHandlerAPI(reg)
}

func do(t *testing.T, srv http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestIndexPage(t *testing.T) {
	rec := do(t, testServer(t), "GET", "/", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "handler construction") {
		t.Fatalf("index: %d %q", rec.Code, rec.Body.String())
	}
}

func TestOpsEndpoint(t *testing.T) {
	rec := do(t, testServer(t), "GET", "/api/ops", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ops status %d", rec.Code)
	}
	var out struct{ Ops []string }
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Ops) < 10 {
		t.Fatalf("ops = %v", out.Ops)
	}
}

func TestListAndGetHandlers(t *testing.T) {
	srv := testServer(t)
	rec := do(t, srv, "GET", "/api/handlers?team=Transport", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("list status %d", rec.Code)
	}
	var out struct{ Handlers []handler.Handler }
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Handlers) != len(transport.AllAlertTypes()) {
		t.Fatalf("handlers = %d, want %d", len(out.Handlers), len(transport.AllAlertTypes()))
	}

	rec = do(t, srv, "GET", "/api/handlers/"+string(transport.AlertDiskSpaceLow), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestGetStatusViaSentinelErrors is the regression test for the brittle
// string-matched 404 mapping: both registry sentinels must map to 404
// through errors.Is — for a missing handler and for a missing version of
// an existing handler.
func TestGetStatusViaSentinelErrors(t *testing.T) {
	srv := testServer(t)

	rec := do(t, srv, "GET", "/api/handlers/NoSuchAlert", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown alert status = %d, want 404", rec.Code)
	}
	rec = do(t, srv, "GET", "/api/handlers/"+string(transport.AlertDiskSpaceLow)+"?version=99", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("missing version status = %d, want 404: %s", rec.Code, rec.Body.String())
	}
}

func TestSaveNewVersionRoundTrip(t *testing.T) {
	srv := testServer(t)
	h, err := handler.Builtin(transport.AlertDiskSpaceLow)
	if err != nil {
		t.Fatal(err)
	}
	h.Enabled = false
	body, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, srv, "POST", "/api/handlers", body)
	if rec.Code != http.StatusCreated {
		t.Fatalf("save status %d: %s", rec.Code, rec.Body.String())
	}
	var created struct{ Version int }
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created.Version != 2 {
		t.Fatalf("version = %d, want 2 (builtin was v1)", created.Version)
	}

	rec = do(t, srv, "GET", "/api/versions/"+string(transport.AlertDiskSpaceLow)+"?team=Transport", nil)
	var vs struct{ Versions int }
	if err := json.Unmarshal(rec.Body.Bytes(), &vs); err != nil {
		t.Fatal(err)
	}
	if vs.Versions != 2 {
		t.Fatalf("versions = %d, want 2", vs.Versions)
	}

	// Old version must stay addressable.
	rec = do(t, srv, "GET", "/api/handlers/"+string(transport.AlertDiskSpaceLow)+"?version=1", nil)
	var v1 handler.Handler
	if err := json.Unmarshal(rec.Body.Bytes(), &v1); err != nil {
		t.Fatal(err)
	}
	if !v1.Enabled {
		t.Fatal("version 1 should still be the enabled original")
	}
}

func TestSaveRejectsInvalidHandler(t *testing.T) {
	srv := testServer(t)
	rec := do(t, srv, "POST", "/api/handlers", []byte(`{"name":"x"}`))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid handler status %d", rec.Code)
	}
	rec = do(t, srv, "POST", "/api/handlers", []byte(`{not json`))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", rec.Code)
	}
}

// TestSaveRejectsUnknownFields is the regression test for the silent
// field-dropping decode: a misspelled field in a handler document must
// 400, not save a handler missing the field the author thought they set.
func TestSaveRejectsUnknownFields(t *testing.T) {
	srv := testServer(t)
	h, err := handler.Builtin(transport.AlertDiskSpaceLow)
	if err != nil {
		t.Fatal(err)
	}
	body, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	doc["enabeld"] = true // typo of "enabled"
	mangled, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, srv, "POST", "/api/handlers", mangled)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown-field status = %d, want 400: %s", rec.Code, rec.Body.String())
	}
}

// TestSaveRejectsOversizedBody is the regression test for the unbounded
// body decode: a body over the MaxBody bound must 413, not be read to the
// end and parsed.
func TestSaveRejectsOversizedBody(t *testing.T) {
	srv := testServer(t)
	big := append([]byte(`{"name":"`), bytes.Repeat([]byte("x"), int(MaxBody)+1024)...)
	big = append(big, []byte(`"}`)...)
	rec := do(t, srv, "POST", "/api/handlers", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", rec.Code)
	}
}

func TestSaveRejectsTrailingData(t *testing.T) {
	srv := testServer(t)
	h, err := handler.Builtin(transport.AlertDiskSpaceLow)
	if err != nil {
		t.Fatal(err)
	}
	body, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, srv, "POST", "/api/handlers", append(body, []byte(`{"second":"doc"}`)...))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("trailing-data status = %d, want 400: %s", rec.Code, rec.Body.String())
	}
}

func TestGetBadVersionParam(t *testing.T) {
	srv := testServer(t)
	rec := do(t, srv, "GET", "/api/handlers/"+string(transport.AlertDiskSpaceLow)+"?version=abc", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad version status %d", rec.Code)
	}
}
