package httpd

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/handler"
	"repro/internal/incident"
)

// HandlerAPI serves the handler-construction endpoints over a registry —
// the substitute for the paper's Figure 10 GUI. It is mounted standalone
// by cmd/handlerd and alongside the incident-serving endpoints by
// cmd/rcacopilotd.
type HandlerAPI struct {
	reg *handler.Registry
	mux *http.ServeMux
}

// NewHandlerAPI builds the HTTP handler over the registry.
func NewHandlerAPI(reg *handler.Registry) *HandlerAPI {
	a := &HandlerAPI{reg: reg, mux: http.NewServeMux()}
	a.mux.HandleFunc("GET /", a.index)
	a.Register(a.mux)
	return a
}

// Register mounts the handler-construction endpoints (everything except
// the standalone index page) on an existing mux, so a daemon serving more
// than handler CRUD composes them with its own routes.
func (a *HandlerAPI) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /api/ops", a.ops)
	mux.HandleFunc("GET /api/handlers", a.list)
	mux.HandleFunc("GET /api/handlers/{alert}", a.get)
	mux.HandleFunc("POST /api/handlers", a.save)
	mux.HandleFunc("GET /api/versions/{alert}", a.versions)
}

// ServeHTTP implements http.Handler.
func (a *HandlerAPI) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

func (a *HandlerAPI) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!DOCTYPE html>
<title>RCACopilot handler construction</title>
<h1>RCACopilot handler construction</h1>
<p>To support a new alert type, add a handler composed of reusable
scope-switching, query and mitigation actions; every save appends a new
version so historical changes stay addressable.</p>
<ul>
<li><code>GET /api/ops</code> — reusable query actions</li>
<li><code>GET /api/handlers?team=Transport</code> — the team's handlers</li>
<li><code>GET /api/handlers/{alertType}?team=Transport&amp;version=N</code> — one handler</li>
<li><code>POST /api/handlers</code> — save (JSON handler document)</li>
<li><code>GET /api/versions/{alertType}?team=Transport</code> — version count</li>
</ul>`)
}

func (a *HandlerAPI) ops(w http.ResponseWriter, _ *http.Request) {
	WriteJSON(w, http.StatusOK, map[string]any{"ops": handler.OpNames()})
}

func team(r *http.Request) string {
	t := r.URL.Query().Get("team")
	if t == "" {
		t = "Transport"
	}
	return t
}

func (a *HandlerAPI) list(w http.ResponseWriter, r *http.Request) {
	hs, err := a.reg.List(team(r))
	if err != nil {
		WriteErr(w, http.StatusInternalServerError, err)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{"team": team(r), "handlers": hs})
}

func (a *HandlerAPI) get(w http.ResponseWriter, r *http.Request) {
	alert := incident.AlertType(r.PathValue("alert"))
	var (
		h   *handler.Handler
		err error
	)
	if v := r.URL.Query().Get("version"); v != "" {
		n, convErr := strconv.Atoi(v)
		if convErr != nil {
			WriteErr(w, http.StatusBadRequest, fmt.Errorf("bad version %q", v))
			return
		}
		h, err = a.reg.Version(team(r), alert, n)
	} else {
		h, err = a.reg.Latest(team(r), alert)
	}
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, handler.ErrNotFound) || errors.Is(err, handler.ErrNoVersion) {
			status = http.StatusNotFound
		}
		WriteErr(w, status, err)
		return
	}
	WriteJSON(w, http.StatusOK, h)
}

func (a *HandlerAPI) save(w http.ResponseWriter, r *http.Request) {
	var h handler.Handler
	if err := DecodeJSON(w, r, MaxBody, &h); err != nil {
		WriteDecodeErr(w, err)
		return
	}
	version, err := a.reg.Save(&h)
	if err != nil {
		WriteErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	WriteJSON(w, http.StatusCreated, map[string]any{
		"team": h.Team, "alertType": h.AlertType, "version": version,
	})
}

func (a *HandlerAPI) versions(w http.ResponseWriter, r *http.Request) {
	alert := incident.AlertType(r.PathValue("alert"))
	WriteJSON(w, http.StatusOK, map[string]any{
		"team": team(r), "alertType": alert,
		"versions": a.reg.Versions(team(r), alert),
	})
}
