package httpd

import (
	"errors"
	"testing"
	"time"

	"repro/internal/incident"
)

// waitQueueLen polls until the limiter's wait queue reaches n (the
// enqueue happens on another goroutine after its Admit passes the rate
// check, so tests synchronize on the observable queue length).
func waitQueueLen(t *testing.T, l *TeamLimiter, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for l.QueueLen() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue length never reached %d (at %d)", n, l.QueueLen())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTeamLimiterRateBeforeQueue pins the ladder's first rung: a team
// over its token bucket sees ErrRateLimited (429) even when the limiter
// has a wait queue — rate rejection is never converted into queueing.
func TestTeamLimiterRateBeforeQueue(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewTeamLimiter(LimitConfig{
		Rate: 1, Burst: 1, MaxInflight: 1, QueueDepth: 4, MaxWait: 5 * time.Second,
		Now: func() time.Time { return now },
	})
	release, err := l.Admit("R", incident.Sev3)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	// Saturated AND out of tokens: the rate error must win.
	if _, err := l.Admit("R", incident.Sev1); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if l.QueueLen() != 0 {
		t.Fatalf("rate-limited submission entered the queue (len %d)", l.QueueLen())
	}
}

// TestTeamLimiterQueueGrantAndTimeout exercises the queued-wait rungs: at
// saturation a submission waits and is granted when a slot releases;
// when no slot frees within MaxWait it fails with ErrOverloaded.
func TestTeamLimiterQueueGrantAndTimeout(t *testing.T) {
	l := NewTeamLimiter(LimitConfig{
		Rate: 1000, Burst: 1000, MaxInflight: 1, QueueDepth: 2, MaxWait: 60 * time.Millisecond,
	})
	holder, err := l.Admit("A", incident.Sev3)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		release func()
		err     error
	}
	got := make(chan result, 1)
	go func() {
		r, err := l.Admit("B", incident.Sev3)
		got <- result{r, err}
	}()
	waitQueueLen(t, l, 1)
	holder()
	res := <-got
	if res.err != nil {
		t.Fatalf("queued admit: %v", res.err)
	}
	if l.QueueLen() != 0 {
		t.Fatalf("queue not drained after grant (len %d)", l.QueueLen())
	}

	// The granted waiter now holds the only slot; an in-line admit must
	// time out with ErrOverloaded.
	if _, err := l.Admit("C", incident.Sev3); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("timeout err = %v, want ErrOverloaded", err)
	}
	res.release()

	var b, c TeamStats
	for _, s := range l.Stats() {
		switch s.Team {
		case "B":
			b = s
		case "C":
			c = s
		}
	}
	if b.Queued != 1 || b.Accepted != 1 || b.RejectedLoad != 0 {
		t.Fatalf("B stats = %+v, want one queued-then-accepted", b)
	}
	if c.Queued != 1 || c.RejectedLoad != 1 || c.Accepted != 0 {
		t.Fatalf("C stats = %+v, want one queued-then-timed-out", c)
	}
}

// TestTeamLimiterSeverityOrdering is the ordering regression: with a Sev4
// and a Sev1 waiting, the released slot must go to the Sev1 first even
// though the Sev4 queued earlier.
func TestTeamLimiterSeverityOrdering(t *testing.T) {
	l := NewTeamLimiter(LimitConfig{
		Rate: 1000, Burst: 1000, MaxInflight: 1, QueueDepth: 4, MaxWait: 5 * time.Second,
	})
	holder, err := l.Admit("Hold", incident.Sev3)
	if err != nil {
		t.Fatal(err)
	}
	grants := make(chan incident.Severity, 2)
	enqueue := func(sev incident.Severity) {
		go func() {
			release, err := l.Admit("W", sev)
			if err != nil {
				t.Errorf("sev %v admit: %v", sev, err)
				return
			}
			grants <- sev
			release() // hand the slot onward to the next waiter
		}()
	}
	enqueue(incident.Sev4)
	waitQueueLen(t, l, 1)
	enqueue(incident.Sev1)
	waitQueueLen(t, l, 2)

	holder()
	if first := <-grants; first != incident.Sev1 {
		t.Fatalf("first grant went to sev %v, want Sev1 ahead of the earlier Sev4", first)
	}
	if second := <-grants; second != incident.Sev4 {
		t.Fatalf("second grant went to sev %v, want Sev4", second)
	}
}

// TestTeamLimiterPreemption pins the full-queue rung: an equally severe
// arrival bounces with ErrOverloaded, while a strictly more severe one
// preempts the least severe waiter (which itself fails with
// ErrOverloaded) and inherits the next released slot.
func TestTeamLimiterPreemption(t *testing.T) {
	l := NewTeamLimiter(LimitConfig{
		Rate: 1000, Burst: 1000, MaxInflight: 1, QueueDepth: 1, MaxWait: 5 * time.Second,
	})
	holder, err := l.Admit("Hold", incident.Sev3)
	if err != nil {
		t.Fatal(err)
	}
	victim := make(chan error, 1)
	go func() {
		_, err := l.Admit("B", incident.Sev4)
		victim <- err
	}()
	waitQueueLen(t, l, 1)

	// Equal severity cannot preempt: immediate overload.
	if _, err := l.Admit("C", incident.Sev4); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("equal-severity err = %v, want ErrOverloaded", err)
	}

	// A Sev1 preempts the queued Sev4.
	granted := make(chan error, 1)
	go func() {
		release, err := l.Admit("D", incident.Sev1)
		if err == nil {
			defer release()
		}
		granted <- err
	}()
	if err := <-victim; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("preempted waiter err = %v, want ErrOverloaded", err)
	}
	waitQueueLen(t, l, 1)
	holder()
	if err := <-granted; err != nil {
		t.Fatalf("preempting Sev1 admit: %v", err)
	}

	var b TeamStats
	for _, s := range l.Stats() {
		if s.Team == "B" {
			b = s
		}
	}
	if b.RejectedLoad != 1 || b.Queued != 1 {
		t.Fatalf("victim stats = %+v, want one queued-then-preempted", b)
	}
}
