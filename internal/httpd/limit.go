package httpd

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/parallel"
)

// Admission failure classes, separated so the submit endpoint maps them
// to 429 (client should slow down) vs 503 (server is saturated or
// draining) with errors.Is.
var (
	// ErrRateLimited reports that the team's token bucket is empty.
	ErrRateLimited = errors.New("team rate limit exceeded")
	// ErrOverloaded reports that the in-flight bound — drawn from the
	// shared worker budget — is reached.
	ErrOverloaded = errors.New("serving capacity exhausted")
)

// LimitConfig parameterizes a TeamLimiter.
type LimitConfig struct {
	// Rate is the sustained per-team admission rate in incidents/second.
	// Default 5.
	Rate float64
	// Burst is the per-team token-bucket depth. Default 10.
	Burst float64
	// MaxInflight bounds incidents admitted but not yet completed across
	// all teams. 0 derives the bound from the shared internal/parallel
	// worker budget (Configured()+1 pipeline workers, ×2 so a queue's
	// worth of work is ready when a worker frees up) — admission tracks
	// the budget even as AutoTune resizes it. Negative disables the
	// bound.
	MaxInflight int
	// Now overrides the bucket clock (tests). Default time.Now.
	Now func() time.Time
}

func (c LimitConfig) withDefaults() LimitConfig {
	if c.Rate <= 0 {
		c.Rate = 5
	}
	if c.Burst <= 0 {
		c.Burst = 10
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// TeamLimiter is per-team admission control for the incident-serving
// daemon: each team spends from its own token bucket (sustained Rate,
// depth Burst), and total admitted-but-unfinished incidents are bounded
// by the shared internal/parallel worker budget — the same budget the
// pipeline's workers draw from, so admission and processing capacity
// cannot drift apart. Safe for concurrent use.
type TeamLimiter struct {
	cfg LimitConfig

	mu       sync.Mutex
	teams    map[string]*teamState
	inflight int
}

// teamState is one team's bucket plus its accounting.
type teamState struct {
	tokens float64
	last   time.Time

	accepted     uint64
	rejectedRate uint64
	rejectedLoad uint64
}

// TeamStats is one team's admission accounting snapshot.
type TeamStats struct {
	Team         string  `json:"team"`
	Accepted     uint64  `json:"accepted"`
	RejectedRate uint64  `json:"rejectedRate"`
	RejectedLoad uint64  `json:"rejectedLoad"`
	Tokens       float64 `json:"tokens"`
}

// NewTeamLimiter builds a limiter from cfg (zero value: defaults).
func NewTeamLimiter(cfg LimitConfig) *TeamLimiter {
	return &TeamLimiter{cfg: cfg.withDefaults(), teams: make(map[string]*teamState)}
}

// maxInflight resolves the in-flight bound at admission time, so a
// SetLimit/AutoTune resize is reflected immediately.
func (l *TeamLimiter) maxInflight() int {
	if l.cfg.MaxInflight != 0 {
		return l.cfg.MaxInflight
	}
	return 2 * (parallel.Configured() + 1)
}

// Admit charges one incident to the team. On success it returns a release
// function the caller MUST invoke when the incident completes (or is
// rejected downstream), freeing its in-flight slot. On failure it returns
// a wrapped ErrRateLimited — with the wait the client should back off,
// retrievable via RetryAfter — or ErrOverloaded.
func (l *TeamLimiter) Admit(team string) (release func(), err error) {
	now := l.cfg.Now()
	l.mu.Lock()
	defer l.mu.Unlock()

	ts := l.teams[team]
	if ts == nil {
		ts = &teamState{tokens: l.cfg.Burst, last: now}
		l.teams[team] = ts
	}
	// Refill since last touch, capped at the burst depth.
	ts.tokens = math.Min(l.cfg.Burst, ts.tokens+now.Sub(ts.last).Seconds()*l.cfg.Rate)
	ts.last = now

	if ts.tokens < 1 {
		ts.rejectedRate++
		wait := time.Duration((1 - ts.tokens) / l.cfg.Rate * float64(time.Second))
		return nil, fmt.Errorf("%w: team %s, retry in %s", ErrRateLimited, team, wait.Round(time.Millisecond))
	}
	if m := l.maxInflight(); m > 0 && l.inflight >= m {
		ts.rejectedLoad++
		return nil, fmt.Errorf("%w: %d incidents in flight (budget-derived bound %d)", ErrOverloaded, l.inflight, m)
	}
	ts.tokens--
	ts.accepted++
	l.inflight++
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			l.inflight--
			l.mu.Unlock()
		})
	}, nil
}

// RetryAfter extracts the whole-second backoff hint for a rate-limit
// rejection: at the configured rate, one token is 1/Rate seconds away at
// most. Returned in whole seconds (minimum 1) for the Retry-After header.
func (l *TeamLimiter) RetryAfter() int {
	s := int(math.Ceil(1 / l.cfg.Rate))
	if s < 1 {
		s = 1
	}
	return s
}

// Inflight returns how many admitted incidents have not yet released.
func (l *TeamLimiter) Inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// MaxInflightBound returns the currently effective in-flight bound (<= 0
// means unbounded).
func (l *TeamLimiter) MaxInflightBound() int { return l.maxInflight() }

// Stats snapshots per-team admission accounting, sorted by team.
func (l *TeamLimiter) Stats() []TeamStats {
	l.mu.Lock()
	out := make([]TeamStats, 0, len(l.teams))
	for team, ts := range l.teams {
		out = append(out, TeamStats{
			Team: team, Accepted: ts.accepted,
			RejectedRate: ts.rejectedRate, RejectedLoad: ts.rejectedLoad,
			Tokens: ts.tokens,
		})
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Team < out[j].Team })
	return out
}
