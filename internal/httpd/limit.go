package httpd

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/incident"
	"repro/internal/parallel"
)

// Admission failure classes, separated so the submit endpoint maps them
// to 429 (client should slow down) vs 503 (server is saturated or
// draining) with errors.Is.
var (
	// ErrRateLimited reports that the team's token bucket is empty.
	ErrRateLimited = errors.New("team rate limit exceeded")
	// ErrOverloaded reports that the in-flight bound — drawn from the
	// shared worker budget — is reached.
	ErrOverloaded = errors.New("serving capacity exhausted")
)

// LimitConfig parameterizes a TeamLimiter.
type LimitConfig struct {
	// Rate is the sustained per-team admission rate in incidents/second.
	// Default 5.
	Rate float64
	// Burst is the per-team token-bucket depth. Default 10.
	Burst float64
	// MaxInflight bounds incidents admitted but not yet completed across
	// all teams. 0 derives the bound from the shared internal/parallel
	// worker budget (Configured()+1 pipeline workers, ×2 so a queue's
	// worth of work is ready when a worker frees up) — admission tracks
	// the budget even as AutoTune resizes it. Negative disables the
	// bound.
	MaxInflight int
	// QueueDepth enables severity-weighted waiting at saturation: up to
	// this many rate-admitted incidents wait for an in-flight slot instead
	// of bouncing with ErrOverloaded, and released slots hand off to the
	// most severe waiter first (FIFO within a severity). When the wait
	// queue is itself full, a more severe arrival preempts the least
	// severe (newest-first) waiter, which fails with ErrOverloaded — so a
	// Sev1 is never stuck behind a wall of Sev4s. 0 (the default) keeps
	// the immediate-rejection behavior.
	QueueDepth int
	// MaxWait bounds how long a queued incident waits for a slot before
	// failing with ErrOverloaded. Default 1s. Only meaningful with
	// QueueDepth > 0.
	MaxWait time.Duration
	// Now overrides the bucket clock (tests). Default time.Now.
	Now func() time.Time
}

func (c LimitConfig) withDefaults() LimitConfig {
	if c.Rate <= 0 {
		c.Rate = 5
	}
	if c.Burst <= 0 {
		c.Burst = 10
	}
	if c.MaxWait <= 0 {
		c.MaxWait = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// TeamLimiter is per-team admission control for the incident-serving
// daemon: each team spends from its own token bucket (sustained Rate,
// depth Burst), and total admitted-but-unfinished incidents are bounded
// by the shared internal/parallel worker budget — the same budget the
// pipeline's workers draw from, so admission and processing capacity
// cannot drift apart. Safe for concurrent use.
type TeamLimiter struct {
	cfg LimitConfig

	mu       sync.Mutex
	teams    map[string]*teamState
	inflight int
	queue    []*waiter
	seq      uint64
}

// waiter is one rate-admitted incident waiting for an in-flight slot
// (LimitConfig.QueueDepth). The buffered channel receives true when a
// released slot hands off to it, false when a more severe arrival
// preempts it out of a full queue.
type waiter struct {
	team string
	sev  incident.Severity
	seq  uint64
	ch   chan bool
}

// teamState is one team's bucket plus its accounting.
type teamState struct {
	tokens float64
	last   time.Time

	accepted     uint64
	rejectedRate uint64
	rejectedLoad uint64
	queued       uint64
}

// TeamStats is one team's admission accounting snapshot.
type TeamStats struct {
	Team         string  `json:"team"`
	Accepted     uint64  `json:"accepted"`
	RejectedRate uint64  `json:"rejectedRate"`
	RejectedLoad uint64  `json:"rejectedLoad"`
	// Queued counts admissions that waited for a slot (QueueDepth > 0);
	// waits that end in preemption or timeout also count here, plus in
	// RejectedLoad.
	Queued uint64  `json:"queued"`
	Tokens float64 `json:"tokens"`
}

// NewTeamLimiter builds a limiter from cfg (zero value: defaults).
func NewTeamLimiter(cfg LimitConfig) *TeamLimiter {
	return &TeamLimiter{cfg: cfg.withDefaults(), teams: make(map[string]*teamState)}
}

// maxInflight resolves the in-flight bound at admission time, so a
// SetLimit/AutoTune resize is reflected immediately.
func (l *TeamLimiter) maxInflight() int {
	if l.cfg.MaxInflight != 0 {
		return l.cfg.MaxInflight
	}
	return 2 * (parallel.Configured() + 1)
}

// Admit charges one incident to the team. On success it returns a release
// function the caller MUST invoke when the incident completes (or is
// rejected downstream), freeing its in-flight slot. On failure it returns
// a wrapped ErrRateLimited — with the wait the client should back off,
// retrievable via RetryAfter — or ErrOverloaded.
//
// The rate check always runs first, so a team over its bucket sees
// ErrRateLimited regardless of load. At the in-flight bound, sev decides
// what happens next: with QueueDepth > 0 the incident waits (severity-
// ordered — a released slot goes to the most severe waiter, a Sev1
// arrival preempts a Sev4 out of a full queue) up to MaxWait; without a
// queue it fails immediately with ErrOverloaded, the pre-queue behavior.
func (l *TeamLimiter) Admit(team string, sev incident.Severity) (release func(), err error) {
	now := l.cfg.Now()
	l.mu.Lock()

	ts := l.teams[team]
	if ts == nil {
		ts = &teamState{tokens: l.cfg.Burst, last: now}
		l.teams[team] = ts
	}
	// Refill since last touch, capped at the burst depth.
	ts.tokens = math.Min(l.cfg.Burst, ts.tokens+now.Sub(ts.last).Seconds()*l.cfg.Rate)
	ts.last = now

	if ts.tokens < 1 {
		ts.rejectedRate++
		wait := time.Duration((1 - ts.tokens) / l.cfg.Rate * float64(time.Second))
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: team %s, retry in %s", ErrRateLimited, team, wait.Round(time.Millisecond))
	}
	m := l.maxInflight()
	if m <= 0 || l.inflight < m {
		ts.tokens--
		ts.accepted++
		l.inflight++
		l.mu.Unlock()
		return l.releaseFunc(), nil
	}
	// Saturated.
	if l.cfg.QueueDepth <= 0 {
		ts.rejectedLoad++
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: %d incidents in flight (budget-derived bound %d)", ErrOverloaded, l.inflight, m)
	}
	if len(l.queue) >= l.cfg.QueueDepth {
		// Full queue: a strictly more severe arrival preempts the least
		// severe (newest-first) waiter; otherwise the arrival bounces.
		v := l.leastSevere()
		if v == nil || v.sev <= sev {
			ts.rejectedLoad++
			l.mu.Unlock()
			return nil, fmt.Errorf("%w: %d incidents in flight and %d queued (bound %d)", ErrOverloaded, l.inflight, len(l.queue), m)
		}
		l.remove(v)
		l.teams[v.team].rejectedLoad++
		v.ch <- false
	}
	// Wait for a released slot. The token is spent now (the request passed
	// the rate check and consumed admission rate whether or not a slot
	// frees up in time).
	ts.tokens--
	ts.queued++
	w := &waiter{team: team, sev: sev, seq: l.seq, ch: make(chan bool, 1)}
	l.seq++
	l.queue = append(l.queue, w)
	l.mu.Unlock()

	timer := time.NewTimer(l.cfg.MaxWait)
	defer timer.Stop()
	select {
	case granted := <-w.ch:
		if granted {
			return l.releaseFunc(), nil
		}
		return nil, fmt.Errorf("%w: preempted from the wait queue by a more severe incident", ErrOverloaded)
	case <-timer.C:
		l.mu.Lock()
		if !l.remove(w) {
			// A grant or preemption raced the timeout and already owns the
			// channel; honor it.
			l.mu.Unlock()
			if granted := <-w.ch; granted {
				return l.releaseFunc(), nil
			}
			return nil, fmt.Errorf("%w: preempted from the wait queue by a more severe incident", ErrOverloaded)
		}
		ts.rejectedLoad++
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: no slot freed within %s", ErrOverloaded, l.cfg.MaxWait)
	}
}

// releaseFunc returns the once-only release closure for an admitted
// incident: the freed slot hands off to the best waiter if one is
// queued — most severe first, FIFO within a severity — otherwise the
// in-flight count drops.
func (l *TeamLimiter) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			if w := l.popBest(); w != nil {
				// Hand the slot over without touching inflight: the waiter
				// inherits it.
				l.teams[w.team].accepted++
				l.mu.Unlock()
				w.ch <- true
				return
			}
			l.inflight--
			l.mu.Unlock()
		})
	}
}

// popBest removes and returns the most deserving waiter: lowest severity
// value (Sev1 < Sev4), oldest first within a severity. Nil when the
// queue is empty. Caller holds l.mu.
func (l *TeamLimiter) popBest() *waiter {
	var best *waiter
	for _, w := range l.queue {
		if best == nil || w.sev < best.sev || (w.sev == best.sev && w.seq < best.seq) {
			best = w
		}
	}
	if best != nil {
		l.remove(best)
	}
	return best
}

// leastSevere returns the waiter a full queue would sacrifice first:
// highest severity value, newest first within a severity. Caller holds
// l.mu.
func (l *TeamLimiter) leastSevere() *waiter {
	var worst *waiter
	for _, w := range l.queue {
		if worst == nil || w.sev > worst.sev || (w.sev == worst.sev && w.seq > worst.seq) {
			worst = w
		}
	}
	return worst
}

// remove deletes w from the wait queue, reporting whether it was still
// queued. Caller holds l.mu.
func (l *TeamLimiter) remove(w *waiter) bool {
	for i, q := range l.queue {
		if q == w {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			return true
		}
	}
	return false
}

// QueueLen returns how many rate-admitted incidents are waiting for an
// in-flight slot.
func (l *TeamLimiter) QueueLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue)
}

// RetryAfter extracts the whole-second backoff hint for a rate-limit
// rejection: at the configured rate, one token is 1/Rate seconds away at
// most. Returned in whole seconds (minimum 1) for the Retry-After header.
func (l *TeamLimiter) RetryAfter() int {
	s := int(math.Ceil(1 / l.cfg.Rate))
	if s < 1 {
		s = 1
	}
	return s
}

// Inflight returns how many admitted incidents have not yet released.
func (l *TeamLimiter) Inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// MaxInflightBound returns the currently effective in-flight bound (<= 0
// means unbounded).
func (l *TeamLimiter) MaxInflightBound() int { return l.maxInflight() }

// Stats snapshots per-team admission accounting, sorted by team.
func (l *TeamLimiter) Stats() []TeamStats {
	l.mu.Lock()
	out := make([]TeamStats, 0, len(l.teams))
	for team, ts := range l.teams {
		out = append(out, TeamStats{
			Team: team, Accepted: ts.accepted,
			RejectedRate: ts.rejectedRate, RejectedLoad: ts.rejectedLoad,
			Queued: ts.queued, Tokens: ts.tokens,
		})
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Team < out[j].Team })
	return out
}
