package eval

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/embed/fasttext"
	"repro/internal/incident"
)

// Env is one evaluation environment: a generated corpus and its 75/25
// train/test split (§5.1), with a lazily trained FastText model shared by
// the methods that need it. An Env is safe for concurrent use by the
// parallel harness: the split slices are read-only after NewEnv and the
// shared FastText model trains exactly once.
type Env struct {
	Seed   int64
	Corpus *dataset.Corpus
	Train  []*incident.Incident
	Test   []*incident.Incident

	// Workers bounds the harness's fan-out: 0 means one worker per CPU
	// (the default), 1 forces the sequential reference path. Because every
	// experiment's outputs are order-independent (see the rcacopilot
	// package's determinism contract), any worker count produces identical
	// scores and predictions — only wall-clock time changes.
	Workers int

	// Shards selects the sharded vector index for every pipeline the
	// harness builds (0 = one shard per CPU, the core default; an explicit
	// 1 = the flat exact store). Sharded retrieval is bit-identical to
	// flat, so the Table-2/3/Fig-12 goldens reproduce on either index; only
	// retrieval scaling changes.
	Shards int
	// Partitioner selects shard routing when Shards > 1 (see
	// core.PartitionCategory / core.PartitionIVF; empty = category hash).
	Partitioner string
	// Probes opts the sharded index into probe-limited approximate
	// serving (search only this many IVF partitions nearest each query).
	// 0 keeps exact fan-out — the mode every golden assumes; probe runs
	// are for the recall/latency trade-off experiments.
	Probes int
	// RecallTarget enables the recall-SLO auto-tuner on every pipeline the
	// harness builds (adaptive probe serving; requires Shards > 1 and the
	// IVF partitioner). 0 keeps whatever Probes selects.
	RecallTarget float64
	// ShadowRate is the auto-tuner's shadow-query sampling fraction
	// (0 = the 0.05 default). Only meaningful with RecallTarget.
	ShadowRate float64
	// RetrainSkew enables skew-triggered IVF retraining (>= 1) on every
	// pipeline the harness builds. 0 disables.
	RetrainSkew float64
	// Quantized enables the two-stage int8 probe scan (candidate collection
	// on the quantized sidecar, exact re-rank at full precision) on every
	// pipeline the harness builds. Requires probe-limited serving (Probes
	// or RecallTarget) on the IVF sharded index.
	Quantized bool
	// Overfetch scales the quantized stage's candidate pool (K×Overfetch
	// per probed shard; 0 = the vectordb default). Only meaningful with
	// Quantized.
	Overfetch int
	// BatchMax inserts the micro-batching collector in front of every
	// pipeline's vector store (>= 2): the per-incident retrievals of a
	// Table-2/3 method cell, issued concurrently by the Workers pool,
	// coalesce into scan-once-per-shard batched executions. Results are
	// bit-identical to unbatched serving, so every golden reproduces with
	// batching on; only retrieval throughput changes. 0 or 1 disables.
	BatchMax int
	// BatchWait bounds how long an under-filled batch waits for
	// companions (0 = the 500µs core default). Only meaningful with
	// BatchMax >= 2.
	BatchWait time.Duration

	ftOnce      sync.Once
	ft          *fasttext.Model
	ftErr       error
	ftTrainTime time.Duration
}

// NewEnv generates the paper-faithful corpus for the seed and splits it
// 75/25.
func NewEnv(seed int64) (*Env, error) {
	return NewEnvFromSpec(dataset.DefaultSpec(seed))
}

// NewEnvFromSpec builds an environment over a custom corpus specification
// (smaller spans make cheap environments for equivalence tests and
// demos).
func NewEnvFromSpec(spec dataset.Spec) (*Env, error) {
	corpus, err := dataset.Generate(spec)
	if err != nil {
		return nil, err
	}
	e := &Env{Seed: spec.Seed, Corpus: corpus}
	e.Train, e.Test = corpus.Split(0.75, spec.Seed)
	if len(e.Train) == 0 || len(e.Test) == 0 {
		return nil, fmt.Errorf("eval: degenerate split %d/%d", len(e.Train), len(e.Test))
	}
	return e, nil
}

// TrainTexts returns the diagnostic documents of the training incidents.
func (e *Env) TrainTexts() []string {
	out := make([]string, len(e.Train))
	for i, in := range e.Train {
		out[i] = in.DiagnosticText()
	}
	return out
}

// TrainLabels returns the gold labels of the training incidents.
func (e *Env) TrainLabels() []string {
	out := make([]string, len(e.Train))
	for i, in := range e.Train {
		out[i] = string(in.Category)
	}
	return out
}

// TestGold returns the gold labels of the test incidents.
func (e *Env) TestGold() []incident.Category {
	out := make([]incident.Category, len(e.Test))
	for i, in := range e.Test {
		out[i] = in.Category
	}
	return out
}

// FastText returns the shared FastText model trained on the training
// diagnostics, training it on first use and recording the wall-clock
// training time (RCACopilot's Table-2 "Train" column). Concurrent callers
// share one training run.
func (e *Env) FastText() (*fasttext.Model, time.Duration, error) {
	e.ftOnce.Do(func() {
		start := time.Now()
		e.ft, e.ftErr = fasttext.TrainSkipgram(e.TrainTexts(), fasttext.Config{Seed: e.Seed})
		e.ftTrainTime = time.Since(start)
	})
	return e.ft, e.ftTrainTime, e.ftErr
}
