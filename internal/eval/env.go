package eval

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/embed/fasttext"
	"repro/internal/incident"
)

// Env is one evaluation environment: a generated corpus and its 75/25
// train/test split (§5.1), with a lazily trained FastText model shared by
// the methods that need it.
type Env struct {
	Seed   int64
	Corpus *dataset.Corpus
	Train  []*incident.Incident
	Test   []*incident.Incident

	ft          *fasttext.Model
	ftTrainTime time.Duration
}

// NewEnv generates the corpus for the seed and splits it 75/25.
func NewEnv(seed int64) (*Env, error) {
	corpus, err := dataset.Generate(dataset.DefaultSpec(seed))
	if err != nil {
		return nil, err
	}
	e := &Env{Seed: seed, Corpus: corpus}
	e.Train, e.Test = corpus.Split(0.75, seed)
	if len(e.Train) == 0 || len(e.Test) == 0 {
		return nil, fmt.Errorf("eval: degenerate split %d/%d", len(e.Train), len(e.Test))
	}
	return e, nil
}

// TrainTexts returns the diagnostic documents of the training incidents.
func (e *Env) TrainTexts() []string {
	out := make([]string, len(e.Train))
	for i, in := range e.Train {
		out[i] = in.DiagnosticText()
	}
	return out
}

// TrainLabels returns the gold labels of the training incidents.
func (e *Env) TrainLabels() []string {
	out := make([]string, len(e.Train))
	for i, in := range e.Train {
		out[i] = string(in.Category)
	}
	return out
}

// TestGold returns the gold labels of the test incidents.
func (e *Env) TestGold() []incident.Category {
	out := make([]incident.Category, len(e.Test))
	for i, in := range e.Test {
		out[i] = in.Category
	}
	return out
}

// FastText returns the shared FastText model trained on the training
// diagnostics, training it on first use and recording the wall-clock
// training time (RCACopilot's Table-2 "Train" column).
func (e *Env) FastText() (*fasttext.Model, time.Duration, error) {
	if e.ft == nil {
		start := time.Now()
		m, err := fasttext.TrainSkipgram(e.TrainTexts(), fasttext.Config{Seed: e.Seed})
		if err != nil {
			return nil, 0, err
		}
		e.ftTrainTime = time.Since(start)
		e.ft = m
	}
	return e.ft, e.ftTrainTime, nil
}
