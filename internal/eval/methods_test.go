package eval

import (
	"testing"
	"time"

	"repro/internal/llm/simgpt"
)

func TestXGBoostBaselineRuns(t *testing.T) {
	e := getSharedEnv(t)
	res, err := RunXGBoostBaseline(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "XGBoost" || res.Train <= 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Scores.Micro > 0.5 {
		t.Fatalf("XGBoost micro = %.3f, expected weak long-tail performance", res.Scores.Micro)
	}
}

func TestFineTuneGPTRuns(t *testing.T) {
	e := getSharedEnv(t)
	res, err := RunFineTuneGPT(e)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ModelledTrain || res.Train < 2500*time.Second {
		t.Fatalf("fine-tune train cost = %v (modelled=%t), want >= 2500s modelled", res.Train, res.ModelledTrain)
	}
	if res.Scores.Micro > 0.6 {
		t.Fatalf("fine-tune micro = %.3f, should trail RCACopilot substantially", res.Scores.Micro)
	}
}

func TestGPTPromptCollapsesWithoutTaxonomy(t *testing.T) {
	e := getSharedEnv(t)
	res, err := RunGPTPrompt(e)
	if err != nil {
		t.Fatal(err)
	}
	// Without the label taxonomy, free-form phrasings almost never match
	// OCE labels (paper: 0.026 micro).
	if res.Scores.Micro > 0.1 {
		t.Fatalf("zero-shot micro = %.3f, want near zero", res.Scores.Micro)
	}
	if !res.ModelledInfer || res.Infer <= 0 {
		t.Fatal("zero-shot must report modelled inference latency")
	}
}

func TestGPTEmbedBaselineTrailsFastTextPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("two full pipeline runs")
	}
	e := getSharedEnv(t)
	embed, err := RunPipeline(e, PipelineOptions{GPTEmbedding: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunPipeline(e, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if embed.Result.Method != "GPT-4 Embed." || !embed.Result.ModelledTrain {
		t.Fatalf("embed result = %+v", embed.Result)
	}
	if embed.Result.Scores.Micro >= full.Result.Scores.Micro {
		t.Fatalf("GPT embedding (%.3f) must trail the domain-trained FastText retriever (%.3f)",
			embed.Result.Scores.Micro, full.Result.Scores.Micro)
	}
}

func TestTrustworthinessRoundsVaryWithSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("two full pipeline runs")
	}
	e := getSharedEnv(t)
	rounds, err := RunTrustworthiness(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 2 || rounds[0].Seed == rounds[1].Seed {
		t.Fatalf("rounds = %+v", rounds)
	}
	for _, r := range rounds {
		if r.Scores.Micro < 0.55 {
			t.Fatalf("round %d micro = %.3f, far below the paper's 0.70 floor", r.Round, r.Scores.Micro)
		}
	}
}

func TestPipelineRejectsUnknownModel(t *testing.T) {
	e := getSharedEnv(t)
	if _, err := RunPipeline(e, PipelineOptions{Model: "gpt-9"}); err == nil {
		t.Fatal("unknown model should fail")
	}
}

func TestModelShortNames(t *testing.T) {
	if modelShort(simgpt.GPT4) != "GPT-4" || modelShort(simgpt.GPT35) != "GPT-3.5" {
		t.Fatal("model short names wrong")
	}
	if modelShort("custom") != "custom" {
		t.Fatal("unknown models pass through")
	}
}

func TestNewEnvRejectsDegenerateSeeds(t *testing.T) {
	// All seeds produce the full corpus; the split is always valid. This
	// asserts the invariant NewEnv enforces rather than a failure path.
	e, err := NewEnv(99)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Train) == 0 || len(e.Test) == 0 {
		t.Fatal("split must be non-degenerate")
	}
}
