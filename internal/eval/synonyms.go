package eval

import (
	"strings"

	"repro/internal/incident"
)

// keywordSynonyms maps coined category keywords to the canonical OCE
// labels. This encodes the paper's §5.3 judgement: when RCACopilot met the
// never-seen FullDisk incident it predicted the new category "I/O
// Bottleneck", and although OCEs later labelled it "DiskFull", "the
// fundamental aspects of the problem identified by RCACopilot align
// closely with the human-derived label" — i.e. the coined keyword is
// credited against the canonical label. The table below fixes that
// judgement in code so scoring is deterministic and identical for every
// method; EXPERIMENTS.md documents the protocol.
var keywordSynonyms = map[string]incident.Category{
	"i/o bottleneck":               "FullDisk",
	"io bottleneck":                "FullDisk",
	"udp port exhaustion":          "HubPortExhaustion",
	"certificate misconfiguration": "AuthCertIssue",
	"tenant abuse":                 "CertForBogusTenants",
	"security exploit":             "MaliciousAttack",
	"invalid tenant config":        "InvalidJournaling",
	"poison message flood":         "UseRouteResolution",
	"dependency unreachable":       "DispatcherTaskCancelled",
	"delivery pipeline stall":      "DeliveryHang",
	"code regression":              "CodeRegression",
}

// Normalize canonicalizes a predicted category: exact labels pass through;
// coined keywords map through the synonym table (case-insensitive);
// anything else is returned lowercased-normalized so that accidental exact
// matches still count.
func Normalize(pred incident.Category) incident.Category {
	if canonical, ok := keywordSynonyms[strings.ToLower(strings.TrimSpace(string(pred)))]; ok {
		return canonical
	}
	return pred
}

// NormalizeAll maps Normalize over a slice.
func NormalizeAll(preds []incident.Category) []incident.Category {
	out := make([]incident.Category, len(preds))
	for i, p := range preds {
		out[i] = Normalize(p)
	}
	return out
}
