package eval

import (
	"testing"

	"repro/internal/core"
)

// These goldens pin the sharded retrieval layer's contract at the harness
// level: swapping the vector index behind the full pipeline — flat,
// category-hash sharded, or IVF sharded — must reproduce the flat
// reference's predictions and modelled latencies bit for bit, because
// sharded search is exact and merges under the flat store's total
// retrieval order. (The store-level equivalence grid lives in
// internal/vectordb; this covers the wiring through core.Config and Env.)

// runShardedVariant runs the small-env pipeline with the env's index knobs
// temporarily overridden.
func runShardedVariant(t *testing.T, e *Env, shards int, partitioner string) *PipelineRun {
	t.Helper()
	prevS, prevP := e.Shards, e.Partitioner
	e.Shards, e.Partitioner = shards, partitioner
	defer func() { e.Shards, e.Partitioner = prevS, prevP }()
	run, err := RunPipeline(e, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func samePipelineRun(t *testing.T, name string, ref, got *PipelineRun) {
	t.Helper()
	if got.Result.Scores != ref.Result.Scores {
		t.Fatalf("%s: scores %+v != flat %+v", name, got.Result.Scores, ref.Result.Scores)
	}
	if got.Result.Infer != ref.Result.Infer {
		t.Fatalf("%s: modelled infer %v != flat %v", name, got.Result.Infer, ref.Result.Infer)
	}
	if got.UnseenAnswered != ref.UnseenAnswered {
		t.Fatalf("%s: unseen %d != flat %d", name, got.UnseenAnswered, ref.UnseenAnswered)
	}
	if len(got.Preds) != len(ref.Preds) {
		t.Fatalf("%s: %d preds != %d", name, len(got.Preds), len(ref.Preds))
	}
	for i := range ref.Preds {
		if got.Preds[i] != ref.Preds[i] {
			t.Fatalf("%s: pred %d = %q, flat says %q", name, i, got.Preds[i], ref.Preds[i])
		}
	}
}

// TestShardedPipelineMatchesFlat runs the full pipeline on the flat store
// and on sharded stores at several shard counts (category-hash and IVF
// routing) and requires identical predictions.
func TestShardedPipelineMatchesFlat(t *testing.T) {
	skipHeavyGolden(t, "sharded-vs-flat pipeline golden skips in -short")
	e := smallEnv(t, 1, 0)
	flat := runShardedVariant(t, e, 0, "")
	for _, tc := range []struct {
		name        string
		shards      int
		partitioner string
	}{
		{"shards=2", 2, ""},
		{"shards=7", 7, core.PartitionCategory},
		{"shards=7-ivf", 7, core.PartitionIVF},
		{"shards=16", 16, ""},
	} {
		samePipelineRun(t, tc.name, flat, runShardedVariant(t, e, tc.shards, tc.partitioner))
	}
}

// TestShardedPipelineRejectsUnknownPartitioner covers the config error
// path end to end.
func TestShardedPipelineRejectsUnknownPartitioner(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a generated env")
	}
	e := smallEnv(t, 1, 0)
	prevS, prevP := e.Shards, e.Partitioner
	e.Shards, e.Partitioner = 4, "kd-tree"
	defer func() { e.Shards, e.Partitioner = prevS, prevP }()
	if _, err := RunPipeline(e, PipelineOptions{}); err == nil {
		t.Fatal("unknown partitioner must fail pipeline construction")
	}
}
