package eval

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/parallel"
)

// These tests pin the tentpole contract of the parallel harness: any worker
// count must reproduce the sequential golden results exactly. They raise
// the shared pool's budget explicitly so true goroutine interleaving occurs
// even on single-CPU CI machines.
//
// The heavyweight goldens skip under the race detector: they verify
// determinism, not memory safety, and multiple full reproductions at race
// overhead blow the per-binary test timeout on small runners. Raced
// coverage of the same code paths comes from the short suite and the
// concurrency hammer tests.

func skipHeavyGolden(t *testing.T, why string) {
	t.Helper()
	if testing.Short() {
		t.Skip(why)
	}
	if raceEnabled {
		t.Skip("determinism golden; raced coverage comes from the quick suite and hammer tests")
	}
}

// smallEnv builds (and caches per seed) a reduced-span corpus (~1/6 of the
// year) so a full Table 2 + Table 3 + Fig 12 reproduction can run twice in
// test time. The sequential and parallel passes share the env and flip
// Workers, so they see the identical corpus and FastText model.
var smallEnvs = map[int64]*Env{}

func smallEnv(t *testing.T, seed int64, workers int) *Env {
	t.Helper()
	e, ok := smallEnvs[seed]
	if !ok {
		spec := dataset.DefaultSpec(seed)
		spec.Days = 60
		var err error
		e, err = NewEnvFromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		smallEnvs[seed] = e
	}
	e.Workers = workers
	return e
}

func sameMethodResults(t *testing.T, name string, seq, par []MethodResult) {
	t.Helper()
	if len(seq) != len(par) {
		t.Fatalf("%s: %d rows vs %d", name, len(seq), len(par))
	}
	for i := range seq {
		s, p := seq[i], par[i]
		if s.Method != p.Method || s.Scores != p.Scores {
			t.Errorf("%s row %d: %s %+v (seq) != %s %+v (par)", name, i, s.Method, s.Scores, p.Method, p.Scores)
		}
		if s.ModelledTrain != p.ModelledTrain || s.ModelledInfer != p.ModelledInfer {
			t.Errorf("%s row %d (%s): modelled flags differ", name, i, s.Method)
		}
		// Wall-clock columns vary run to run by nature; the modelled API
		// latencies are part of the determinism contract.
		if s.ModelledTrain && s.Train != p.Train {
			t.Errorf("%s row %d (%s): modelled train %v != %v", name, i, s.Method, s.Train, p.Train)
		}
		if s.ModelledInfer && s.Infer != p.Infer {
			t.Errorf("%s row %d (%s): modelled infer %v != %v", name, i, s.Method, s.Infer, p.Infer)
		}
	}
}

// TestParallelTable2MatchesSequential runs the full seven-method Table 2 on
// one worker and on eight, and requires identical rows.
func TestParallelTable2MatchesSequential(t *testing.T) {
	skipHeavyGolden(t, "two full Table 2 reproductions")
	defer parallel.SetLimit(parallel.SetLimit(8))
	seqRows, err := RunTable2(smallEnv(t, 11, 1))
	if err != nil {
		t.Fatal(err)
	}
	parRows, err := RunTable2(smallEnv(t, 11, 8)) // same env, eight workers
	if err != nil {
		t.Fatal(err)
	}
	sameMethodResults(t, "table2", seqRows, parRows)
}

// TestParallelTable3AndFig12ByteIdentical renders Table 3 and the Fig 12
// grid from a sequential and a parallel run and requires byte-identical
// output (these tables carry no wall-clock columns).
func TestParallelTable3AndFig12ByteIdentical(t *testing.T) {
	skipHeavyGolden(t, "four reduced reproductions")
	defer parallel.SetLimit(parallel.SetLimit(8))
	ks, alphas := []int{3, 5}, []float64{0.2, 0.6}

	env := smallEnv(t, 13, 1)
	seqT3, err := RunTable3(env)
	if err != nil {
		t.Fatal(err)
	}
	seqF, err := RunFig12(env, ks, alphas)
	if err != nil {
		t.Fatal(err)
	}

	env = smallEnv(t, 13, 8)
	parT3, err := RunTable3(env)
	if err != nil {
		t.Fatal(err)
	}
	parF, err := RunFig12(env, ks, alphas)
	if err != nil {
		t.Fatal(err)
	}

	if s, p := FormatTable3(seqT3), FormatTable3(parT3); s != p {
		t.Errorf("Table 3 diverged:\n--- sequential ---\n%s--- parallel ---\n%s", s, p)
	}
	if s, p := FormatFig12(seqF), FormatFig12(parF); s != p {
		t.Errorf("Fig 12 diverged:\n--- sequential ---\n%s--- parallel ---\n%s", s, p)
	}
}

// TestParallelPipelineMatchesSequentialFullCorpus holds the flagship
// RCACopilot (GPT-4) run on the full 653-incident corpus to per-prediction
// equality between one worker and eight.
func TestParallelPipelineMatchesSequentialFullCorpus(t *testing.T) {
	skipHeavyGolden(t, "two full-corpus pipeline runs")
	defer parallel.SetLimit(parallel.SetLimit(8))
	e := getSharedEnv(t)
	defer func(w int) { e.Workers = w }(e.Workers)

	e.Workers = 1
	seq, err := RunPipeline(e, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e.Workers = 8
	par, err := RunPipeline(e, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Result.Scores != par.Result.Scores {
		t.Errorf("scores diverged: %+v vs %+v", seq.Result.Scores, par.Result.Scores)
	}
	if seq.Result.Infer != par.Result.Infer {
		t.Errorf("modelled infer diverged: %v vs %v", seq.Result.Infer, par.Result.Infer)
	}
	if seq.UnseenAnswered != par.UnseenAnswered {
		t.Errorf("unseen count diverged: %d vs %d", seq.UnseenAnswered, par.UnseenAnswered)
	}
	if len(seq.Preds) != len(par.Preds) {
		t.Fatalf("pred lengths differ: %d vs %d", len(seq.Preds), len(par.Preds))
	}
	for i := range seq.Preds {
		if seq.Preds[i] != par.Preds[i] {
			t.Fatalf("prediction %d diverged: %q vs %q", i, seq.Preds[i], par.Preds[i])
		}
	}
}

// TestParallelTable4MatchesSequential compares the multi-team simulation
// at one worker and at eight.
func TestParallelTable4MatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("two multi-team simulations")
	}
	defer parallel.SetLimit(parallel.SetLimit(8))
	seqRows, err := RunTable4(3, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	parRows, err := RunTable4(3, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqRows) != len(parRows) {
		t.Fatalf("row counts differ: %d vs %d", len(seqRows), len(parRows))
	}
	for i := range seqRows {
		if seqRows[i] != parRows[i] {
			t.Errorf("table4 row %d diverged: %+v vs %+v", i, seqRows[i], parRows[i])
		}
	}
}
