package eval

import (
	"fmt"
	"time"

	"repro/internal/boost"
	"repro/internal/core"
	"repro/internal/embed/fasttext"
	"repro/internal/features"
	"repro/internal/incident"
	"repro/internal/llm"
	"repro/internal/llm/simgpt"
	"repro/internal/prompt"
)

// MethodResult is one Table-2 row.
type MethodResult struct {
	Method string
	Scores F1Scores
	// Train is the training cost: wall clock for local models, modelled
	// API latency for LLM jobs (flagged by ModelledTrain).
	Train         time.Duration
	ModelledTrain bool
	// Infer is the mean per-incident inference cost; LLM latency is
	// modelled, local compute is wall clock.
	Infer         time.Duration
	ModelledInfer bool
}

// RunFastTextBaseline trains the supervised FastText classifier directly on
// raw diagnostic text, the paper's first baseline.
func RunFastTextBaseline(e *Env) (MethodResult, error) {
	start := time.Now()
	clf, err := fasttext.TrainSupervised(e.TrainTexts(), e.TrainLabels(), fasttext.Config{Seed: e.Seed})
	if err != nil {
		return MethodResult{}, err
	}
	trainTime := time.Since(start)

	inferStart := time.Now()
	preds := make([]incident.Category, len(e.Test))
	for i, in := range e.Test {
		label, _ := clf.Predict(in.DiagnosticText())
		preds[i] = incident.Category(label)
	}
	infer := time.Since(inferStart) / time.Duration(len(e.Test))
	return MethodResult{
		Method: "FastText",
		Scores: Score(NormalizeAll(preds), e.TestGold()),
		Train:  trainTime,
		Infer:  infer,
	}, nil
}

// RunXGBoostBaseline trains gradient-boosted trees on TF-IDF features, the
// paper's second baseline.
func RunXGBoostBaseline(e *Env) (MethodResult, error) {
	start := time.Now()
	vec, err := features.FitTFIDF(e.TrainTexts(), 200)
	if err != nil {
		return MethodResult{}, err
	}
	clf, err := boost.Train(vec.TransformAll(e.TrainTexts()), e.TrainLabels(), boost.Config{
		Rounds: 15, MaxDepth: 3,
	})
	if err != nil {
		return MethodResult{}, err
	}
	trainTime := time.Since(start)

	inferStart := time.Now()
	preds := make([]incident.Category, len(e.Test))
	for i, in := range e.Test {
		label, _ := clf.Predict(vec.Transform(in.DiagnosticText()))
		preds[i] = incident.Category(label)
	}
	infer := time.Since(inferStart) / time.Duration(len(e.Test))
	return MethodResult{
		Method: "XGBoost",
		Scores: Score(NormalizeAll(preds), e.TestGold()),
		Train:  trainTime,
		Infer:  infer,
	}, nil
}

// RunFineTuneGPT fine-tunes the (simulated) GPT-3.5 on training incidents
// and classifies test incidents directly from raw diagnostics with
// temperature 0 — the Ahmed et al. baseline of Table 2.
func RunFineTuneGPT(e *Env) (MethodResult, error) {
	base := simgpt.MustNew(simgpt.GPT35, simgpt.Options{Seed: e.Seed})
	budget := base.ContextWindow() - 512
	examples := make([]llm.Example, len(e.Train))
	for i, in := range e.Train {
		examples[i] = llm.Example{
			Input: prompt.TrimToTokens(in.DiagnosticText(), budget, base.CountTokens),
			Label: string(in.Category),
		}
	}
	tuned, trainCost, err := base.FineTune(examples)
	if err != nil {
		return MethodResult{}, err
	}
	preds := make([]incident.Category, len(e.Test))
	var latency time.Duration
	for i, in := range e.Test {
		text := prompt.TrimToTokens(in.DiagnosticText(), budget, base.CountTokens)
		resp, err := tuned.Complete(withTemperature(prompt.Classify(text), 0))
		if err != nil {
			return MethodResult{}, err
		}
		latency += resp.ModelLatency
		cat, err := prompt.ParseClassification(resp.Content)
		if err != nil {
			return MethodResult{}, err
		}
		preds[i] = cat
	}
	return MethodResult{
		Method:        "Fine-tune GPT",
		Scores:        Score(NormalizeAll(preds), e.TestGold()),
		Train:         trainCost,
		ModelledTrain: true,
		Infer:         latency / time.Duration(len(e.Test)),
		ModelledInfer: true,
	}, nil
}

// RunGPTPrompt is the "GPT-4 Prompt" variant: summarize the incident, then
// ask the model for the category directly with no historical
// demonstrations in the prompt.
func RunGPTPrompt(e *Env) (MethodResult, error) {
	chat := simgpt.MustNew(simgpt.GPT4, simgpt.Options{Seed: e.Seed})
	preds := make([]incident.Category, len(e.Test))
	var latency time.Duration
	budget := chat.ContextWindow() - 768
	for i, in := range e.Test {
		diag := prompt.TrimToTokens(in.DiagnosticText(), budget, chat.CountTokens)
		sum, err := chat.Complete(prompt.Summary(diag))
		if err != nil {
			return MethodResult{}, err
		}
		latency += sum.ModelLatency
		resp, err := chat.Complete(prompt.Classify(sum.Content))
		if err != nil {
			return MethodResult{}, err
		}
		latency += resp.ModelLatency
		cat, err := prompt.ParseClassification(resp.Content)
		if err != nil {
			return MethodResult{}, err
		}
		preds[i] = cat
	}
	return MethodResult{
		Method:        "GPT-4 Prompt",
		Scores:        Score(NormalizeAll(preds), e.TestGold()),
		Infer:         latency / time.Duration(len(e.Test)),
		ModelledInfer: true,
	}, nil
}

// PipelineOptions configure a full RCACopilot pipeline run.
type PipelineOptions struct {
	Model   string // simgpt model name
	K       int
	Alpha   float64
	Context core.ContextSources
	// GPTEmbedding swaps FastText for the LLM embedding (GPT-4 Embed.).
	GPTEmbedding bool
	// LLMSeed overrides the chat-model seed (stability rounds); defaults
	// to the env seed.
	LLMSeed int64
}

// PipelineRun holds a full pipeline evaluation.
type PipelineRun struct {
	Result MethodResult
	Preds  []incident.Category
	// UnseenAnswered counts test incidents answered "Unseen incident".
	UnseenAnswered int
}

// RunPipeline evaluates the full RCACopilot pipeline under the options:
// train (or reuse) the embedder, ingest the training history, then collect
// summaries and predictions for every test incident.
func RunPipeline(e *Env, opts PipelineOptions) (*PipelineRun, error) {
	if opts.Model == "" {
		opts.Model = simgpt.GPT4
	}
	seed := opts.LLMSeed
	if seed == 0 {
		seed = e.Seed
	}
	chat, err := simgpt.New(opts.Model, simgpt.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	cop, err := core.New(e.Corpus.Fleet, chat, core.Config{
		K: opts.K, Alpha: opts.Alpha, Context: opts.Context,
	})
	if err != nil {
		return nil, err
	}

	var trainTime time.Duration
	modelledTrain := false
	if opts.GPTEmbedding {
		cop.SetEmbedder(core.LLMEmbedder{Client: chat, EmbedDim: 64})
		// Model the API cost of embedding the training corpus, which is
		// what the paper's 1925 s "Train" cell for GPT-4 Embed. measures.
		for _, in := range e.Train {
			trainTime += 200*time.Millisecond +
				time.Duration(chat.CountTokens(in.DiagnosticText()))*1500*time.Microsecond
		}
		modelledTrain = true
	} else {
		ft, ftTime, err := e.FastText()
		if err != nil {
			return nil, err
		}
		cop.SetEmbedder(core.FastTextEmbedder{Model: ft})
		trainTime = ftTime
	}

	for _, in := range e.Train {
		if err := cop.Learn(in.Clone()); err != nil {
			return nil, fmt.Errorf("eval: learn %s: %w", in.ID, err)
		}
	}

	preds := make([]incident.Category, len(e.Test))
	unseen := 0
	meterBefore := cop.Meter().Total()
	for i, in := range e.Test {
		probe := in.Clone()
		probe.Summary = ""
		probe.Predicted = ""
		res, err := cop.Predict(probe)
		if err != nil {
			return nil, fmt.Errorf("eval: predict %s: %w", in.ID, err)
		}
		preds[i] = res.Category
		if res.Unseen {
			unseen++
		}
	}
	infer := (cop.Meter().Total() - meterBefore) / time.Duration(len(e.Test))

	name := fmt.Sprintf("RCACopilot (%s)", modelShort(opts.Model))
	if opts.GPTEmbedding {
		name = "GPT-4 Embed."
	}
	return &PipelineRun{
		Result: MethodResult{
			Method:        name,
			Scores:        Score(NormalizeAll(preds), e.TestGold()),
			Train:         trainTime,
			ModelledTrain: modelledTrain,
			Infer:         infer,
			ModelledInfer: true,
		},
		Preds:          preds,
		UnseenAnswered: unseen,
	}, nil
}

func modelShort(model string) string {
	switch model {
	case simgpt.GPT4:
		return "GPT-4"
	case simgpt.GPT35:
		return "GPT-3.5"
	default:
		return model
	}
}

func withTemperature(req llm.Request, t float64) llm.Request {
	req.Temperature = t
	return req
}
