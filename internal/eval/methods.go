package eval

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/boost"
	"repro/internal/core"
	"repro/internal/embed/fasttext"
	"repro/internal/features"
	"repro/internal/incident"
	"repro/internal/llm"
	"repro/internal/llm/simgpt"
	"repro/internal/parallel"
	"repro/internal/prompt"
)

// chatCaches shares one llm.Cached wrapper per (model, seed) across every
// RunPipeline call in the process. The simulated GPT derives its output from
// seed ^ hash(prompt) alone, so a cached response is bit-identical to a
// fresh one (ModelLatency included — metered inference cost is unchanged);
// sharing the cache just stops Table-2/3/Fig-12 cells from re-summarizing
// the same training incidents over and over. Memory stays bounded on both
// axes: once maxChatCaches distinct (model, seed) pairs accumulate — more
// than any one experiment batch uses — the map resets wholesale, and an
// individual cache that outgrows maxChatCacheEntries (many distinct corpora
// funnelling prompts into one seed) is dropped and rebuilt empty.
var (
	chatCacheMu sync.Mutex
	chatCaches  = make(map[string]*llm.Cached)
)

const (
	maxChatCaches       = 16
	maxChatCacheEntries = 50_000 // ≈ a few dozen full-corpus pipeline runs
)

// chatAutoTune, when set, enables worker-budget auto-tuning on the shared
// chat caches (see llm.Cached.EnableAutoTune). Against the simulated
// substrates this never changes the budget; it exists so the experiment
// driver can flip the same switch a real deployment would.
var chatAutoTune atomic.Bool

// SetChatAutoTune enables (or disables) latency-driven worker-budget
// auto-tuning on the harness's shared chat clients.
func SetChatAutoTune(on bool) { chatAutoTune.Store(on) }

// sharedChat returns the process-wide cached chat client for (model, seed).
func sharedChat(model string, seed int64) (*llm.Cached, error) {
	key := fmt.Sprintf("%s|%d", model, seed)
	chatCacheMu.Lock()
	if c, ok := chatCaches[key]; ok {
		if c.Len() < maxChatCacheEntries {
			chatCacheMu.Unlock()
			// Apply the current toggle either way: a long-lived pooled
			// client must also STOP tuning once the switch flips off.
			if chatAutoTune.Load() {
				c.EnableAutoTune(0)
			} else {
				c.DisableAutoTune()
			}
			return c, nil
		}
		delete(chatCaches, key) // oversized: rebuild empty below
	}
	chatCacheMu.Unlock()

	base, err := simgpt.New(model, simgpt.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	fresh := llm.NewCached(base)
	if chatAutoTune.Load() {
		fresh.EnableAutoTune(0)
	}

	chatCacheMu.Lock()
	defer chatCacheMu.Unlock()
	if c, ok := chatCaches[key]; ok { // lost the construction race
		return c, nil
	}
	if len(chatCaches) >= maxChatCaches {
		chatCaches = make(map[string]*llm.Cached)
	}
	chatCaches[key] = fresh
	return fresh, nil
}

// Every Run* method fans its per-test-incident loop out on the shared
// worker pool (internal/parallel), bounded by Env.Workers. Predictions and
// modelled latencies land in index-addressed slices and the simulated
// models are order-independent, so any worker count reproduces the
// sequential results exactly; only wall-clock time changes.

// MethodResult is one Table-2 row.
type MethodResult struct {
	Method string
	Scores F1Scores
	// Train is the training cost: wall clock for local models, modelled
	// API latency for LLM jobs (flagged by ModelledTrain).
	Train         time.Duration
	ModelledTrain bool
	// Infer is the mean per-incident inference cost; LLM latency is
	// modelled, local compute is wall clock.
	Infer         time.Duration
	ModelledInfer bool
}

// RunFastTextBaseline trains the supervised FastText classifier directly on
// raw diagnostic text, the paper's first baseline.
func RunFastTextBaseline(e *Env) (MethodResult, error) {
	start := time.Now()
	clf, err := fasttext.TrainSupervised(e.TrainTexts(), e.TrainLabels(), fasttext.Config{Seed: e.Seed})
	if err != nil {
		return MethodResult{}, err
	}
	trainTime := time.Since(start)

	preds := make([]incident.Category, len(e.Test))
	lats := make([]time.Duration, len(e.Test))
	_ = parallel.ForEach(len(e.Test), e.Workers, func(i int) error {
		start := time.Now()
		label, _ := clf.Predict(e.Test[i].DiagnosticText())
		lats[i] = time.Since(start)
		preds[i] = incident.Category(label)
		return nil
	})
	// Per-item timing, not loop wall time: under the worker pool the loop's
	// elapsed time shrinks with the worker count, but the per-incident
	// inference cost column must not depend on -workers.
	infer := sumDurations(lats) / time.Duration(len(e.Test))
	return MethodResult{
		Method: "FastText",
		Scores: Score(NormalizeAll(preds), e.TestGold()),
		Train:  trainTime,
		Infer:  infer,
	}, nil
}

// RunXGBoostBaseline trains gradient-boosted trees on TF-IDF features, the
// paper's second baseline.
func RunXGBoostBaseline(e *Env) (MethodResult, error) {
	start := time.Now()
	vec, err := features.FitTFIDF(e.TrainTexts(), 200)
	if err != nil {
		return MethodResult{}, err
	}
	clf, err := boost.Train(vec.TransformAll(e.TrainTexts()), e.TrainLabels(), boost.Config{
		Rounds: 15, MaxDepth: 3,
	})
	if err != nil {
		return MethodResult{}, err
	}
	trainTime := time.Since(start)

	preds := make([]incident.Category, len(e.Test))
	lats := make([]time.Duration, len(e.Test))
	_ = parallel.ForEach(len(e.Test), e.Workers, func(i int) error {
		start := time.Now()
		label, _ := clf.Predict(vec.Transform(e.Test[i].DiagnosticText()))
		lats[i] = time.Since(start)
		preds[i] = incident.Category(label)
		return nil
	})
	infer := sumDurations(lats) / time.Duration(len(e.Test))
	return MethodResult{
		Method: "XGBoost",
		Scores: Score(NormalizeAll(preds), e.TestGold()),
		Train:  trainTime,
		Infer:  infer,
	}, nil
}

// RunFineTuneGPT fine-tunes the (simulated) GPT-3.5 on training incidents
// and classifies test incidents directly from raw diagnostics with
// temperature 0 — the Ahmed et al. baseline of Table 2.
func RunFineTuneGPT(e *Env) (MethodResult, error) {
	base := simgpt.MustNew(simgpt.GPT35, simgpt.Options{Seed: e.Seed})
	budget := base.ContextWindow() - 512
	examples := make([]llm.Example, len(e.Train))
	for i, in := range e.Train {
		examples[i] = llm.Example{
			Input: prompt.TrimToTokens(in.DiagnosticText(), budget, base.CountTokens),
			Label: string(in.Category),
		}
	}
	tuned, trainCost, err := base.FineTune(examples)
	if err != nil {
		return MethodResult{}, err
	}
	preds := make([]incident.Category, len(e.Test))
	lats := make([]time.Duration, len(e.Test))
	err = parallel.ForEach(len(e.Test), e.Workers, func(i int) error {
		text := prompt.TrimToTokens(e.Test[i].DiagnosticText(), budget, base.CountTokens)
		resp, err := tuned.Complete(withTemperature(prompt.Classify(text), 0))
		if err != nil {
			return err
		}
		lats[i] = resp.ModelLatency
		cat, err := prompt.ParseClassification(resp.Content)
		if err != nil {
			return err
		}
		preds[i] = cat
		return nil
	})
	if err != nil {
		return MethodResult{}, err
	}
	return MethodResult{
		Method:        "Fine-tune GPT",
		Scores:        Score(NormalizeAll(preds), e.TestGold()),
		Train:         trainCost,
		ModelledTrain: true,
		Infer:         sumDurations(lats) / time.Duration(len(e.Test)),
		ModelledInfer: true,
	}, nil
}

// sumDurations totals per-incident modelled latencies; addition commutes,
// so the total is identical however the loop was scheduled.
func sumDurations(ds []time.Duration) time.Duration {
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total
}

// RunGPTPrompt is the "GPT-4 Prompt" variant: summarize the incident, then
// ask the model for the category directly with no historical
// demonstrations in the prompt.
func RunGPTPrompt(e *Env) (MethodResult, error) {
	chat := simgpt.MustNew(simgpt.GPT4, simgpt.Options{Seed: e.Seed})
	preds := make([]incident.Category, len(e.Test))
	lats := make([]time.Duration, len(e.Test))
	budget := chat.ContextWindow() - 768
	err := parallel.ForEach(len(e.Test), e.Workers, func(i int) error {
		diag := prompt.TrimToTokens(e.Test[i].DiagnosticText(), budget, chat.CountTokens)
		sum, err := chat.Complete(prompt.Summary(diag))
		if err != nil {
			return err
		}
		lats[i] = sum.ModelLatency
		resp, err := chat.Complete(prompt.Classify(sum.Content))
		if err != nil {
			return err
		}
		lats[i] += resp.ModelLatency
		cat, err := prompt.ParseClassification(resp.Content)
		if err != nil {
			return err
		}
		preds[i] = cat
		return nil
	})
	if err != nil {
		return MethodResult{}, err
	}
	return MethodResult{
		Method:        "GPT-4 Prompt",
		Scores:        Score(NormalizeAll(preds), e.TestGold()),
		Infer:         sumDurations(lats) / time.Duration(len(e.Test)),
		ModelledInfer: true,
	}, nil
}

// PipelineOptions configure a full RCACopilot pipeline run.
type PipelineOptions struct {
	Model   string // simgpt model name
	K       int
	Alpha   float64
	Context core.ContextSources
	// GPTEmbedding swaps FastText for the LLM embedding (GPT-4 Embed.).
	GPTEmbedding bool
	// LLMSeed overrides the chat-model seed (stability rounds); defaults
	// to the env seed.
	LLMSeed int64
}

// PipelineRun holds a full pipeline evaluation.
type PipelineRun struct {
	Result MethodResult
	Preds  []incident.Category
	// UnseenAnswered counts test incidents answered "Unseen incident".
	UnseenAnswered int
}

// RunPipeline evaluates the full RCACopilot pipeline under the options:
// train (or reuse) the embedder, ingest the training history, then collect
// summaries and predictions for every test incident. The chat client is a
// process-shared response cache keyed by (model, seed), so repeated cells of
// an experiment grid reuse each other's deterministic completions.
func RunPipeline(e *Env, opts PipelineOptions) (*PipelineRun, error) {
	if opts.Model == "" {
		opts.Model = simgpt.GPT4
	}
	seed := opts.LLMSeed
	if seed == 0 {
		seed = e.Seed
	}
	chat, err := sharedChat(opts.Model, seed)
	if err != nil {
		return nil, err
	}
	cop, err := core.New(e.Corpus.Fleet, chat, core.Config{
		K: opts.K, Alpha: opts.Alpha, Context: opts.Context,
		Shards: e.Shards, Partitioner: e.Partitioner, Probes: e.Probes,
		RecallTarget: e.RecallTarget, ShadowRate: e.ShadowRate, RetrainSkew: e.RetrainSkew,
		Quantized: e.Quantized, Overfetch: e.Overfetch,
		BatchMax: e.BatchMax, BatchWait: e.BatchWait,
	})
	if err != nil {
		return nil, err
	}
	defer cop.Close()

	var trainTime time.Duration
	modelledTrain := false
	if opts.GPTEmbedding {
		cop.SetEmbedder(core.LLMEmbedder{Client: chat, EmbedDim: 64})
		// Model the API cost of embedding the training corpus, which is
		// what the paper's 1925 s "Train" cell for GPT-4 Embed. measures.
		for _, in := range e.Train {
			trainTime += 200*time.Millisecond +
				time.Duration(chat.CountTokens(in.DiagnosticText()))*1500*time.Microsecond
		}
		modelledTrain = true
	} else {
		ft, ftTime, err := e.FastText()
		if err != nil {
			return nil, err
		}
		cop.SetEmbedder(core.FastTextEmbedder{Model: ft})
		trainTime = ftTime
	}

	if err := learnHistory(e, cop); err != nil {
		return nil, fmt.Errorf("eval: learn history: %w", err)
	}

	preds := make([]incident.Category, len(e.Test))
	unseens := make([]bool, len(e.Test))
	meterBefore := cop.Meter().Total()
	err = parallel.ForEach(len(e.Test), e.Workers, func(i int) error {
		probe := e.Test[i].Clone()
		probe.Summary = ""
		probe.Predicted = ""
		res, err := cop.Predict(probe)
		if err != nil {
			return fmt.Errorf("eval: predict %s: %w", e.Test[i].ID, err)
		}
		preds[i] = res.Category
		unseens[i] = res.Unseen
		return nil
	})
	if err != nil {
		return nil, err
	}
	unseen := 0
	for _, u := range unseens {
		if u {
			unseen++
		}
	}
	infer := (cop.Meter().Total() - meterBefore) / time.Duration(len(e.Test))

	name := fmt.Sprintf("RCACopilot (%s)", modelShort(opts.Model))
	if opts.GPTEmbedding {
		name = "GPT-4 Embed."
	}
	return &PipelineRun{
		Result: MethodResult{
			Method:        name,
			Scores:        Score(NormalizeAll(preds), e.TestGold()),
			Train:         trainTime,
			ModelledTrain: modelledTrain,
			Infer:         infer,
			ModelledInfer: true,
		},
		Preds:          preds,
		UnseenAnswered: unseen,
	}, nil
}

func modelShort(model string) string {
	switch model {
	case simgpt.GPT4:
		return "GPT-4"
	case simgpt.GPT35:
		return "GPT-3.5"
	default:
		return model
	}
}

func withTemperature(req llm.Request, t float64) llm.Request {
	req.Temperature = t
	return req
}
