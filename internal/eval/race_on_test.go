//go:build race

package eval

// raceEnabled reports whether this test binary was built with -race; the
// determinism golden tests skip under it (see parallel_equiv_test.go).
const raceEnabled = true
