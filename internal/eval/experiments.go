package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/handler"
	"repro/internal/incident"
	"repro/internal/llm/simgpt"
	"repro/internal/parallel"
	"repro/internal/transport"
)

// ---------------------------------------------------------------- Table 2

// RunTable2 evaluates every method of the paper's Table 2 on one
// environment. The seven methods run concurrently on the shared worker pool
// (and each method's per-incident loop fans out beneath them, all drawing
// from the same bounded budget); results keep the paper's row order and are
// identical to a sequential run.
func RunTable2(e *Env) ([]MethodResult, error) {
	pipeline := func(opts PipelineOptions) func() (MethodResult, error) {
		return func() (MethodResult, error) {
			run, err := RunPipeline(e, opts)
			if err != nil {
				return MethodResult{}, err
			}
			return run.Result, nil
		}
	}
	methods := []func() (MethodResult, error){
		func() (MethodResult, error) { return RunFastTextBaseline(e) },
		func() (MethodResult, error) { return RunXGBoostBaseline(e) },
		func() (MethodResult, error) { return RunFineTuneGPT(e) },
		func() (MethodResult, error) { return RunGPTPrompt(e) },
		pipeline(PipelineOptions{GPTEmbedding: true}),
		pipeline(PipelineOptions{Model: simgpt.GPT35}),
		pipeline(PipelineOptions{Model: simgpt.GPT4}),
	}
	return parallel.Map(len(methods), e.Workers, func(i int) (MethodResult, error) {
		return methods[i]()
	})
}

// FormatTable2 renders Table-2 rows in the paper's layout.
func FormatTable2(rows []MethodResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %8s %8s %12s %12s\n", "Method", "Micro", "Macro", "Train(s)", "Infer(s)")
	for _, r := range rows {
		train := fmt.Sprintf("%.3f", r.Train.Seconds())
		if r.Train == 0 {
			train = "-"
		}
		if r.ModelledTrain {
			train += "*"
		}
		infer := fmt.Sprintf("%.3f", r.Infer.Seconds())
		if r.ModelledInfer {
			infer += "*"
		}
		fmt.Fprintf(&b, "%-22s %8.3f %8.3f %12s %12s\n", r.Method, r.Scores.Micro, r.Scores.Macro, train, infer)
	}
	b.WriteString("(* = modelled API latency; see EXPERIMENTS.md)\n")
	return b.String()
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one prompt-context ablation configuration.
type Table3Row struct {
	Name    string
	Context core.ContextSources
	Scores  F1Scores
}

// Table3Configs returns the seven context configurations of Table 3 in the
// paper's row order.
func Table3Configs() []Table3Row {
	return []Table3Row{
		{Name: "DiagnosticInfo", Context: core.ContextSources{DiagnosticInfo: true}},
		{Name: "DiagnosticInfo (sum.)", Context: core.ContextSources{DiagnosticInfo: true, Summarized: true}},
		{Name: "AlertInfo", Context: core.ContextSources{AlertInfo: true}},
		{Name: "Alert+Diagnostic", Context: core.ContextSources{AlertInfo: true, DiagnosticInfo: true}},
		{Name: "Alert+ActionOutput", Context: core.ContextSources{AlertInfo: true, ActionOutput: true}},
		{Name: "Diagnostic+ActionOutput", Context: core.ContextSources{DiagnosticInfo: true, ActionOutput: true}},
		{Name: "Alert+Diag+ActionOutput", Context: core.ContextSources{AlertInfo: true, DiagnosticInfo: true, ActionOutput: true}},
	}
}

// RunTable3 evaluates the prompt-context ablation, one pipeline run per row
// on the shared worker pool.
func RunTable3(e *Env) ([]Table3Row, error) {
	rows := Table3Configs()
	err := parallel.ForEach(len(rows), e.Workers, func(i int) error {
		run, err := RunPipeline(e, PipelineOptions{Context: rows[i].Context})
		if err != nil {
			return fmt.Errorf("table3 %s: %w", rows[i].Name, err)
		}
		rows[i].Scores = run.Result.Scores
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable3 renders the ablation table.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %8s %8s\n", "Context", "Micro", "Macro")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %8.3f %8.3f\n", r.Name, r.Scores.Micro, r.Scores.Macro)
	}
	return b.String()
}

// --------------------------------------------------------------- Figure 12

// SweepPoint is one (K, alpha) cell of Figure 12.
type SweepPoint struct {
	K      int
	Alpha  float64
	Scores F1Scores
}

// RunFig12 sweeps K × alpha over the full pipeline (Figures 12a and 12b).
// The grid cells are independent full pipeline runs, so they fan out on the
// shared worker pool; output order stays row-major over (K, alpha).
func RunFig12(e *Env, ks []int, alphas []float64) ([]SweepPoint, error) {
	if len(ks) == 0 {
		ks = []int{3, 5, 9, 12, 15}
	}
	if len(alphas) == 0 {
		alphas = []float64{0.001, 0.2, 0.4, 0.6, 0.8}
	}
	cells := make([]SweepPoint, 0, len(ks)*len(alphas))
	for _, k := range ks {
		for _, a := range alphas {
			cells = append(cells, SweepPoint{K: k, Alpha: a})
		}
	}
	err := parallel.ForEach(len(cells), e.Workers, func(i int) error {
		run, err := RunPipeline(e, PipelineOptions{K: cells[i].K, Alpha: cells[i].Alpha})
		if err != nil {
			return fmt.Errorf("fig12 K=%d alpha=%.1f: %w", cells[i].K, cells[i].Alpha, err)
		}
		cells[i].Scores = run.Result.Scores
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// FormatFig12 renders the sweep as two grids (micro, macro).
func FormatFig12(points []SweepPoint) string {
	ks := uniqueInts(points, func(p SweepPoint) int { return p.K })
	alphas := uniqueFloats(points, func(p SweepPoint) float64 { return p.Alpha })
	cell := make(map[[2]int]F1Scores)
	for _, p := range points {
		cell[[2]int{p.K, int(p.Alpha * 1000)}] = p.Scores
	}
	var b strings.Builder
	for _, metric := range []string{"F1-micro (Fig 12a)", "F1-macro (Fig 12b)"} {
		b.WriteString(metric + "\n")
		fmt.Fprintf(&b, "%8s", "K\\alpha")
		for _, a := range alphas {
			fmt.Fprintf(&b, "%8.1f", a)
		}
		b.WriteString("\n")
		for _, k := range ks {
			fmt.Fprintf(&b, "%8d", k)
			for _, a := range alphas {
				s := cell[[2]int{k, int(a * 1000)}]
				v := s.Micro
				if strings.Contains(metric, "macro") {
					v = s.Macro
				}
				fmt.Fprintf(&b, "%8.3f", v)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

func uniqueInts(ps []SweepPoint, f func(SweepPoint) int) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range ps {
		if !seen[f(p)] {
			seen[f(p)] = true
			out = append(out, f(p))
		}
	}
	sort.Ints(out)
	return out
}

func uniqueFloats(ps []SweepPoint, f func(SweepPoint) float64) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, p := range ps {
		if !seen[f(p)] {
			seen[f(p)] = true
			out = append(out, f(p))
		}
	}
	sort.Float64s(out)
	return out
}

// ------------------------------------------------------------- Figures 2/3

// HistBucket is one histogram bar.
type HistBucket struct {
	Label string
	Value float64
}

// RunFig2 computes the recurring-incident proportion per 10-day interval
// bucket (Figure 2's series) from corpus recurrence gaps.
func RunFig2(e *Env) []HistBucket {
	gaps := e.Corpus.RecurrenceIntervals()
	const bucketDays, maxDays = 10, 120
	counts := make([]int, maxDays/bucketDays+1)
	for _, g := range gaps {
		b := int(g) / bucketDays
		if b >= len(counts) {
			b = len(counts) - 1
		}
		counts[b]++
	}
	total := float64(len(gaps))
	var out []HistBucket
	for i, c := range counts {
		lo := i * bucketDays
		out = append(out, HistBucket{
			Label: fmt.Sprintf("%d-%d", lo, lo+bucketDays),
			Value: float64(c) / total,
		})
	}
	return out
}

// RunFig3 computes the category-occurrence histogram (Figure 3): how many
// categories occur once, twice, ..., >= 10 times.
func RunFig3(e *Env) []HistBucket {
	counts := e.Corpus.CategoryCounts()
	buckets := make([]int, 10) // 1..9 and >=10
	for _, n := range counts {
		if n >= 10 {
			buckets[9]++
		} else {
			buckets[n-1]++
		}
	}
	var out []HistBucket
	for i, c := range buckets {
		label := fmt.Sprintf("%d", i+1)
		if i == 9 {
			label = ">=10"
		}
		out = append(out, HistBucket{Label: label, Value: float64(c)})
	}
	return out
}

// FormatHist renders a histogram with ASCII bars.
func FormatHist(title string, hs []HistBucket, scale float64) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, h := range hs {
		bar := strings.Repeat("#", int(h.Value*scale+0.5))
		fmt.Fprintf(&b, "%8s | %-50s %.4f\n", h.Label, bar, h.Value)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table 4

// TeamProfile models one Table-4 team: its handler inventory size and the
// published average handler execution time the profile is calibrated to.
type TeamProfile struct {
	Name            string
	EnabledHandlers int
	// TargetExecSeconds is the published Table-4 execution time; the
	// simulated team's telemetry cost scale is calibrated so the measured
	// virtual execution time lands near it.
	TargetExecSeconds float64
}

// Table4Teams are the paper's top-10 teams by handler count.
func Table4Teams() []TeamProfile {
	return []TeamProfile{
		{"Team 1", 213, 841}, {"Team 2", 204, 378}, {"Team 3", 88, 106},
		{"Team 4", 42, 449}, {"Team 5", 41, 136}, {"Team 6", 34, 91},
		{"Team 7", 32, 449}, {"Team 8", 32, 255}, {"Team 9", 31, 323},
		{"Team 10", 18, 22},
	}
}

// Table4Row is one measured Table-4 row.
type Table4Row struct {
	Team            string
	AvgExecSeconds  float64
	EnabledHandlers int
	IncidentsRun    int
}

// RunTable4 simulates the multi-team deployment: each team gets its own
// fleet (telemetry cost scale calibrated to its published execution time),
// a handler inventory of the published size built from the builtin suite,
// and a stream of incidents; the measured virtual execution cost per
// incident is reported. workers bounds the per-team fan-out (0 = one per
// CPU, 1 = sequential), matching Env.Workers semantics.
func RunTable4(seed int64, incidentsPerTeam, workers int) ([]Table4Row, error) {
	if incidentsPerTeam <= 0 {
		incidentsPerTeam = 20
	}
	// Calibration run: mean handler execution cost at scale 1.
	base, err := meanExecCost(seed, 1.0, 8)
	if err != nil {
		return nil, err
	}
	// Each team owns its own fleet, registry and RNG, so the per-team runs
	// fan out on the shared worker pool with no cross-talk.
	teams := Table4Teams()
	return parallel.Map(len(teams), workers, func(i int) (Table4Row, error) {
		team := teams[i]
		scale := team.TargetExecSeconds / base.Seconds()
		cost, err := teamRun(seed+int64(i), scale, team, incidentsPerTeam)
		if err != nil {
			return Table4Row{}, fmt.Errorf("table4 %s: %w", team.Name, err)
		}
		return Table4Row{
			Team:            team.Name,
			AvgExecSeconds:  cost.Seconds(),
			EnabledHandlers: team.EnabledHandlers,
			IncidentsRun:    incidentsPerTeam,
		}, nil
	})
}

// TenantShare is one co-tenant's attributed slice of the shared fleet
// meter after a co-tenant Table-4 run: the telemetry cost its runs charged
// under "team/site" keys.
type TenantShare struct {
	Team      string
	Telemetry time.Duration
	Incidents int
}

// RunTable4Tenants is Table 4 with the teams as true co-tenants: ONE
// shared fleet, ONE handler registry holding every team's inventory, and
// every incident run on a tenant-attributed execution context — so the
// shared fleet meter afterwards breaks out each team's diagnostic
// collection cost under its own "team/" key prefix. The published
// per-team execution-time calibration is applied arithmetically (the
// shared fleet has one cost scale), keeping the reported rows comparable
// to the isolated-fleet run while the accounting exercises the
// multi-tenant attribution path end to end.
func RunTable4Tenants(seed int64, incidentsPerTeam int) ([]Table4Row, []TenantShare, error) {
	if incidentsPerTeam <= 0 {
		incidentsPerTeam = 20
	}
	base, err := meanExecCost(seed, 1.0, 8)
	if err != nil {
		return nil, nil, err
	}
	fleet := transport.NewFleet(transport.DefaultConfig(seed))
	registry := handler.NewRegistry(nil)
	builtins, err := handler.BuiltinAll()
	if err != nil {
		return nil, nil, err
	}
	teams := Table4Teams()
	for _, team := range teams {
		for i := 0; i < team.EnabledHandlers; i++ {
			h := builtins[i%len(builtins)].Clone()
			h.Team = team.Name
			if i >= len(builtins) {
				h.Name = fmt.Sprintf("%s-v%d", h.Name, i/len(builtins))
				h.AlertType = incident.AlertType(fmt.Sprintf("%s#%d", h.AlertType, i/len(builtins)))
			}
			if _, err := registry.Save(h); err != nil {
				return nil, nil, err
			}
		}
		got, err := registry.EnabledCount(team.Name)
		if err != nil {
			return nil, nil, err
		}
		if got != team.EnabledHandlers {
			return nil, nil, fmt.Errorf("table4 tenants %s: inventory mismatch: %d != %d", team.Name, got, team.EnabledHandlers)
		}
	}

	// One incident stream per team over the shared fleet. Sequential on
	// purpose: fault injection and alert pickup are fleet-global, so
	// interleaving teams would cross their alerts; the measurement is
	// virtual cost, which does not depend on wall-clock parallelism.
	runner := handler.NewRunner(fleet)
	rng := rand.New(rand.NewSource(seed))
	cats := transport.Table1Categories()
	rows := make([]Table4Row, len(teams))
	for ti, team := range teams {
		scale := team.TargetExecSeconds / base.Seconds()
		var total time.Duration
		for i := 0; i < incidentsPerTeam; i++ {
			cat := cats[rng.Intn(len(cats))]
			fault, err := fleet.Inject(cat, rng.Intn(len(fleet.Forests)))
			if err != nil {
				return nil, nil, err
			}
			alert, ok := fleet.FirstAlert()
			if !ok {
				return nil, nil, fmt.Errorf("table4 tenants %s: no alert for %s", team.Name, cat)
			}
			inc := core.IncidentAt(alert, incident.Sev2, team.Name, ti*incidentsPerTeam+i, fleet.Clock().Now())
			h, err := registry.Match(team.Name, inc)
			if err != nil {
				return nil, nil, err
			}
			ec := fleet.NewExecTenant(inc.CreatedAt, team.Name)
			report, err := runner.RunWith(ec, h, inc)
			ec.Finish() // merge even on error, matching the ambient path
			if err != nil {
				return nil, nil, err
			}
			total += report.VirtualCost
			fault.Repair()
		}
		rows[ti] = Table4Row{
			Team:            team.Name,
			AvgExecSeconds:  scale * (total / time.Duration(incidentsPerTeam)).Seconds(),
			EnabledHandlers: team.EnabledHandlers,
			IncidentsRun:    incidentsPerTeam,
		}
	}

	// Per-tenant attribution: every charge a tenant context booked merged
	// into the shared meter under "team/site"; roll the sites up per team.
	byTeam := make(map[string]time.Duration)
	for key, d := range fleet.Meter().ByKey() {
		if team, _, ok := strings.Cut(key, "/"); ok {
			byTeam[team] += d
		}
	}
	shares := make([]TenantShare, 0, len(byTeam))
	for team, d := range byTeam {
		shares = append(shares, TenantShare{Team: team, Telemetry: d, Incidents: incidentsPerTeam})
	}
	sort.Slice(shares, func(i, j int) bool { return shares[i].Team < shares[j].Team })
	return rows, shares, nil
}

// FormatTenantShares renders the co-tenant cost attribution table.
func FormatTenantShares(shares []TenantShare) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %20s %12s\n", "Tenant", "Telemetry share", "# Incidents")
	for _, s := range shares {
		fmt.Fprintf(&b, "%-10s %20s %12d\n", s.Team, s.Telemetry.Round(time.Millisecond), s.Incidents)
	}
	return b.String()
}

func meanExecCost(seed int64, scale float64, n int) (time.Duration, error) {
	cfg := transport.DefaultConfig(seed)
	cfg.QueryCostScale = scale
	fleet := transport.NewFleet(cfg)
	runner := handler.NewRunner(fleet)
	rng := rand.New(rand.NewSource(seed))
	cats := transport.Table1Categories()
	var total time.Duration
	for i := 0; i < n; i++ {
		cat := cats[rng.Intn(len(cats))]
		fault, err := fleet.Inject(cat, rng.Intn(len(fleet.Forests)))
		if err != nil {
			return 0, err
		}
		alert, ok := fleet.FirstAlert()
		if !ok {
			return 0, fmt.Errorf("no alert for %s", cat)
		}
		inc := core.IncidentAt(alert, incident.Sev2, "team", i, fleet.Clock().Now())
		h, err := handler.Builtin(alert.Type)
		if err != nil {
			return 0, err
		}
		ec := fleet.NewExec(inc.CreatedAt)
		report, err := runner.RunWith(ec, h, inc)
		ec.Finish() // merge even on error, matching the ambient path
		if err != nil {
			return 0, err
		}
		total += report.VirtualCost
		fault.Repair()
	}
	return total / time.Duration(n), nil
}

// teamRun builds the team's handler inventory (EnabledHandlers variants of
// the builtin suite registered under team-specific alert types) and
// measures the mean execution cost over an incident stream.
func teamRun(seed int64, scale float64, team TeamProfile, n int) (time.Duration, error) {
	cfg := transport.DefaultConfig(seed)
	cfg.QueryCostScale = scale
	fleet := transport.NewFleet(cfg)
	registry := handler.NewRegistry(nil)
	// Inventory: variants of the builtin suite up to the published count.
	builtins, err := handler.BuiltinAll()
	if err != nil {
		return 0, err
	}
	for i := 0; i < team.EnabledHandlers; i++ {
		h := builtins[i%len(builtins)].Clone()
		h.Team = team.Name
		if i >= len(builtins) {
			h.Name = fmt.Sprintf("%s-v%d", h.Name, i/len(builtins))
			h.AlertType = incident.AlertType(fmt.Sprintf("%s#%d", h.AlertType, i/len(builtins)))
		}
		if _, err := registry.Save(h); err != nil {
			return 0, err
		}
	}
	got, err := registry.EnabledCount(team.Name)
	if err != nil {
		return 0, err
	}
	if got != team.EnabledHandlers {
		return 0, fmt.Errorf("inventory mismatch: %d != %d", got, team.EnabledHandlers)
	}

	runner := handler.NewRunner(fleet)
	rng := rand.New(rand.NewSource(seed))
	cats := transport.Table1Categories()
	var total time.Duration
	for i := 0; i < n; i++ {
		cat := cats[rng.Intn(len(cats))]
		fault, err := fleet.Inject(cat, rng.Intn(len(fleet.Forests)))
		if err != nil {
			return 0, err
		}
		alert, ok := fleet.FirstAlert()
		if !ok {
			return 0, fmt.Errorf("no alert for %s", cat)
		}
		inc := core.IncidentAt(alert, incident.Sev2, team.Name, i, fleet.Clock().Now())
		h, err := registry.Match(team.Name, inc)
		if err != nil {
			return 0, err
		}
		// Per-run execution context (the unserialized collection path);
		// Finish keeps the fleet clock advancing so successive incidents
		// carry distinct timestamps, as the ambient path did.
		ec := fleet.NewExec(inc.CreatedAt)
		report, err := runner.RunWith(ec, h, inc)
		ec.Finish() // merge even on error, matching the ambient path
		if err != nil {
			return 0, err
		}
		total += report.VirtualCost
		fault.Repair()
	}
	return total / time.Duration(n), nil
}

// FormatTable4 renders the team table.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %18s %18s\n", "Team", "Avg exec time (s)", "# Enabled handler")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %18.0f %18d\n", r.Team, r.AvgExecSeconds, r.EnabledHandlers)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table 1

// Table1Row is one exemplar incident per root-cause category.
type Table1Row struct {
	No       int
	Severity incident.Severity
	Scope    incident.Scope
	Category incident.Category
	Occur    int
	Symptom  string
	Cause    string
}

// RunTable1 reconstructs Table 1 from the corpus: one exemplar per
// category with its occurrence count, plus the injector's symptom/cause
// narrative.
func RunTable1(e *Env) ([]Table1Row, error) {
	counts := e.Corpus.CategoryCounts()
	scratch := transport.NewFleet(transport.DefaultConfig(e.Seed))
	var rows []Table1Row
	for i, cat := range transport.Table1Categories() {
		fault, err := scratch.Inject(cat, 0)
		if err != nil {
			return nil, err
		}
		var exemplar *incident.Incident
		for _, in := range e.Corpus.Incidents {
			if in.Category == cat {
				exemplar = in
				break
			}
		}
		if exemplar == nil {
			return nil, fmt.Errorf("table1: no corpus incident for %s", cat)
		}
		rows = append(rows, Table1Row{
			No:       i + 1,
			Severity: exemplar.Severity,
			Scope:    exemplar.Alert.Scope,
			Category: cat,
			Occur:    counts[cat],
			Symptom:  fault.Symptom,
			Cause:    fault.Cause,
		})
		fault.Repair()
	}
	return rows, nil
}

// FormatTable1 renders the exemplar table.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-4s %-8s %-24s %-6s %s\n", "No", "Sev", "Scope", "Category", "Occur", "Symptom / Cause")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-3d %-4s %-8s %-24s %-6d %s\n", r.No, r.Severity, r.Scope, r.Category, r.Occur, r.Symptom)
		fmt.Fprintf(&b, "%-48s%s\n", "", r.Cause)
	}
	return b.String()
}

// ----------------------------------------------------------- §5.6 stability

// TrustRound is one stability-round result.
type TrustRound struct {
	Round  int
	Seed   int64
	Scores F1Scores
}

// RunTrustworthiness repeats the full RCACopilot (GPT-4) evaluation across
// rounds with different LLM seeds (§5.6: three rounds, micro consistently
// above 0.70, macro above 0.50).
func RunTrustworthiness(e *Env, rounds int) ([]TrustRound, error) {
	if rounds <= 0 {
		rounds = 3
	}
	return parallel.Map(rounds, e.Workers, func(i int) (TrustRound, error) {
		r := i + 1
		seed := e.Seed*1000 + int64(r)
		run, err := RunPipeline(e, PipelineOptions{LLMSeed: seed})
		if err != nil {
			return TrustRound{}, fmt.Errorf("trust round %d: %w", r, err)
		}
		return TrustRound{Round: r, Seed: seed, Scores: run.Result.Scores}, nil
	})
}

// FormatTrust renders the stability rounds.
func FormatTrust(rounds []TrustRound) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %8s\n", "Round", "Micro", "Macro")
	for _, r := range rounds {
		fmt.Fprintf(&b, "%-8d %8.3f %8.3f\n", r.Round, r.Scores.Micro, r.Scores.Macro)
	}
	return b.String()
}
