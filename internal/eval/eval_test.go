package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/incident"
)

func TestScorePerfectAndEmpty(t *testing.T) {
	gold := []incident.Category{"A", "B", "A"}
	s := Score(gold, gold)
	if s.Micro != 1 || s.Macro != 1 {
		t.Fatalf("perfect predictions should score 1/1, got %+v", s)
	}
	if s := Score(nil, nil); s.Micro != 0 || s.Macro != 0 {
		t.Fatalf("empty input should score 0/0, got %+v", s)
	}
	if s := Score([]incident.Category{"A"}, gold); s.Micro != 0 {
		t.Fatal("length mismatch should score zero")
	}
}

func TestScoreMicroIsAccuracy(t *testing.T) {
	gold := []incident.Category{"A", "A", "B", "C"}
	pred := []incident.Category{"A", "B", "B", "B"}
	s := Score(pred, gold)
	if math.Abs(s.Micro-0.5) > 1e-12 {
		t.Fatalf("micro = %f, want 0.5", s.Micro)
	}
}

func TestScoreMacroPunishesLongTail(t *testing.T) {
	// Dominant class all right, two singleton classes all wrong: micro
	// stays high, macro collapses — the paper's Table-2 gap mechanism.
	var gold, pred []incident.Category
	for i := 0; i < 8; i++ {
		gold = append(gold, "big")
		pred = append(pred, "big")
	}
	gold = append(gold, "rare1", "rare2")
	pred = append(pred, "big", "big")
	s := Score(pred, gold)
	if s.Micro != 0.8 {
		t.Fatalf("micro = %f, want 0.8", s.Micro)
	}
	// Per-class F1: big = 2*0.8*1/(1.8) ≈ 0.889, rare1 = rare2 = 0.
	want := (2 * 0.8 / 1.8) / 3
	if math.Abs(s.Macro-want) > 1e-9 {
		t.Fatalf("macro = %f, want %f", s.Macro, want)
	}
}

func TestPerClass(t *testing.T) {
	gold := []incident.Category{"A", "A", "B"}
	pred := []incident.Category{"A", "B", "B"}
	rows := PerClass(pred, gold)
	if len(rows) != 2 {
		t.Fatalf("PerClass rows = %d, want 2", len(rows))
	}
	if rows[0].Class != "A" || rows[0].N != 2 {
		t.Fatalf("rows[0] = %+v", rows[0])
	}
	if rows[0].F1 <= 0 || rows[0].F1 >= 1 {
		t.Fatalf("A should have partial F1, got %f", rows[0].F1)
	}
}

func TestNormalizeSynonyms(t *testing.T) {
	cases := map[incident.Category]incident.Category{
		"I/O Bottleneck":          "FullDisk",
		"i/o bottleneck":          "FullDisk",
		"UDP Port Exhaustion":     "HubPortExhaustion",
		"Dependency Unreachable":  "DispatcherTaskCancelled",
		"StoreWorkerMemoryLeak":   "StoreWorkerMemoryLeak", // exact labels pass through
		"SomethingNovelEntirely":  "SomethingNovelEntirely",
		"Delivery Pipeline Stall": "DeliveryHang",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

// sharedEnv is built once; generation and splitting are deterministic.
var sharedEnv *Env

func getSharedEnv(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		e, err := NewEnv(5)
		if err != nil {
			t.Fatal(err)
		}
		sharedEnv = e
	}
	return sharedEnv
}

func TestEnvSplitShape(t *testing.T) {
	e := getSharedEnv(t)
	if len(e.Train)+len(e.Test) != 653 {
		t.Fatalf("split sizes %d+%d != 653", len(e.Train), len(e.Test))
	}
	if len(e.TrainTexts()) != len(e.Train) || len(e.TrainLabels()) != len(e.Train) {
		t.Fatal("train accessors inconsistent")
	}
	if len(e.TestGold()) != len(e.Test) {
		t.Fatal("gold accessor inconsistent")
	}
}

func TestFig2BucketsSumToOne(t *testing.T) {
	e := getSharedEnv(t)
	hs := RunFig2(e)
	var sum float64
	for _, h := range hs {
		if h.Value < 0 {
			t.Fatalf("negative bucket %+v", h)
		}
		sum += h.Value
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("proportions sum to %f, want 1", sum)
	}
	// Insight 2: the first two buckets (0-20 days) dominate.
	if hs[0].Value+hs[1].Value < 0.85 {
		t.Fatalf("0-20 day share = %f, want >= 0.85", hs[0].Value+hs[1].Value)
	}
}

func TestFig3LongTail(t *testing.T) {
	e := getSharedEnv(t)
	hs := RunFig3(e)
	if len(hs) != 10 {
		t.Fatalf("buckets = %d, want 10", len(hs))
	}
	var total float64
	for _, h := range hs {
		total += h.Value
	}
	if total != 163 {
		t.Fatalf("category total = %f, want 163", total)
	}
	// The singleton bucket must dominate (Figure 3's long tail).
	if hs[0].Value < 100 {
		t.Fatalf("singleton categories = %f, want >= 100", hs[0].Value)
	}
}

func TestTable1RowsComplete(t *testing.T) {
	e := getSharedEnv(t)
	rows, err := RunTable1(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if r.Symptom == "" || r.Cause == "" || r.Occur == 0 {
			t.Fatalf("incomplete row %+v", r)
		}
	}
	// Spot-check the published occurrence counts.
	if rows[1].Category != "HubPortExhaustion" || rows[1].Occur != 27 {
		t.Fatalf("row 2 = %+v, want HubPortExhaustion x27", rows[1])
	}
}

func TestTable4ShapeAndCalibration(t *testing.T) {
	rows, err := RunTable4(3, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	teams := Table4Teams()
	for i, r := range rows {
		if r.EnabledHandlers != teams[i].EnabledHandlers {
			t.Errorf("%s handlers = %d, want %d", r.Team, r.EnabledHandlers, teams[i].EnabledHandlers)
		}
		// Calibrated virtual cost should land within 2x of the published
		// value (workload mix varies by seed).
		ratio := r.AvgExecSeconds / teams[i].TargetExecSeconds
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s exec = %.0fs, target %.0fs (ratio %.2f)", r.Team, r.AvgExecSeconds, teams[i].TargetExecSeconds, ratio)
		}
	}
}

func TestFastTextBaselineRuns(t *testing.T) {
	e := getSharedEnv(t)
	res, err := RunFastTextBaseline(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores.Micro < 0 || res.Scores.Micro > 0.5 {
		t.Fatalf("FastText baseline micro = %.3f, expected weak long-tail performance", res.Scores.Micro)
	}
	if res.Train <= 0 {
		t.Fatal("train time missing")
	}
}

func TestPipelineBeatsBaselineAndAnswersEveryIncident(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline evaluation is expensive")
	}
	e := getSharedEnv(t)
	run, err := RunPipeline(e, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Preds) != len(e.Test) {
		t.Fatalf("preds = %d, want %d", len(run.Preds), len(e.Test))
	}
	for i, p := range run.Preds {
		if p == "" {
			t.Fatalf("test incident %d got empty prediction", i)
		}
	}
	if run.Result.Scores.Micro < 0.60 {
		t.Fatalf("RCACopilot micro = %.3f, want >= 0.60 (paper: 0.766)", run.Result.Scores.Micro)
	}
	// Macro-F1 varies more across corpus seeds than micro (singleton
	// classes flip whole per-class F1 terms); the reference-seed runs in
	// EXPERIMENTS.md land near the paper's 0.533.
	if run.Result.Scores.Macro < 0.40 {
		t.Fatalf("RCACopilot macro = %.3f, want >= 0.40 (paper: 0.533)", run.Result.Scores.Macro)
	}
	base, err := RunFastTextBaseline(e)
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.Scores.Micro <= base.Scores.Micro*2 {
		t.Fatalf("RCACopilot (%.3f) should beat FastText (%.3f) by a wide margin",
			run.Result.Scores.Micro, base.Scores.Micro)
	}
}

func TestFormattersProduceTables(t *testing.T) {
	rows := []MethodResult{{Method: "X", Scores: F1Scores{Micro: 0.5, Macro: 0.4}}}
	if out := FormatTable2(rows); !strings.Contains(out, "X") || !strings.Contains(out, "0.500") {
		t.Fatalf("FormatTable2:\n%s", out)
	}
	t3 := []Table3Row{{Name: "ctx", Scores: F1Scores{Micro: 0.1, Macro: 0.2}}}
	if out := FormatTable3(t3); !strings.Contains(out, "ctx") {
		t.Fatalf("FormatTable3:\n%s", out)
	}
	sp := []SweepPoint{{K: 5, Alpha: 0.2, Scores: F1Scores{Micro: 0.7}}}
	if out := FormatFig12(sp); !strings.Contains(out, "Fig 12a") {
		t.Fatalf("FormatFig12:\n%s", out)
	}
	h := []HistBucket{{Label: "1", Value: 3}}
	if out := FormatHist("t", h, 1); !strings.Contains(out, "###") {
		t.Fatalf("FormatHist:\n%s", out)
	}
	tr := []TrustRound{{Round: 1, Scores: F1Scores{Micro: 0.75, Macro: 0.6}}}
	if out := FormatTrust(tr); !strings.Contains(out, "0.750") {
		t.Fatalf("FormatTrust:\n%s", out)
	}
	t4 := []Table4Row{{Team: "Team 1", AvgExecSeconds: 800, EnabledHandlers: 213}}
	if out := FormatTable4(t4); !strings.Contains(out, "Team 1") {
		t.Fatalf("FormatTable4:\n%s", out)
	}
}

func TestTable3ConfigsMatchPaperRows(t *testing.T) {
	rows := Table3Configs()
	if len(rows) != 7 {
		t.Fatalf("configs = %d, want 7 (Table 3 rows)", len(rows))
	}
	if !rows[1].Context.Summarized {
		t.Fatal("row 2 must be the summarized-diagnostics configuration")
	}
	full := rows[6].Context
	if !full.AlertInfo || !full.DiagnosticInfo || !full.ActionOutput {
		t.Fatal("row 7 must combine all three sources")
	}
}
