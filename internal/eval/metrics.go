// Package eval implements the evaluation harness: micro/macro F1 scoring
// with the paper's unseen-keyword crediting, the Table-2 method runners
// (FastText, XGBoost, fine-tuned GPT, GPT-4 Prompt, GPT-4 Embed.,
// RCACopilot with GPT-3.5 and GPT-4), the Table-3 prompt-context ablation,
// the Figure-12 K/α sweep, the Table-4 multi-team collection simulation,
// the Figure-2/3 corpus statistics, and the §5.6 stability rounds.
package eval

import (
	"sort"

	"repro/internal/incident"
)

// F1Scores holds the two headline metrics of Table 2.
type F1Scores struct {
	Micro float64
	Macro float64
}

// Score computes micro and macro F1 over parallel prediction/gold slices.
// For single-label multiclass classification micro-F1 equals accuracy;
// macro-F1 averages per-class F1 over the classes present in the gold
// labels, which is what punishes long-tail failure (the paper's macro 0.533
// vs micro 0.766 gap).
func Score(pred, gold []incident.Category) F1Scores {
	if len(pred) != len(gold) || len(gold) == 0 {
		return F1Scores{}
	}
	tp := make(map[incident.Category]float64)
	fp := make(map[incident.Category]float64)
	fn := make(map[incident.Category]float64)
	classes := make(map[incident.Category]bool)
	var correct float64
	for i := range gold {
		classes[gold[i]] = true
		if pred[i] == gold[i] {
			tp[gold[i]]++
			correct++
		} else {
			fp[pred[i]]++
			fn[gold[i]]++
		}
	}
	// Sum per-class F1 in sorted class order: float addition does not
	// commute at the last ULP, so averaging in (randomized) map order would
	// make macro-F1 differ between two otherwise identical runs, breaking
	// the byte-identical determinism contract.
	ordered := make([]incident.Category, 0, len(classes))
	for c := range classes {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	var macro float64
	for _, c := range ordered {
		p := safeDiv(tp[c], tp[c]+fp[c])
		r := safeDiv(tp[c], tp[c]+fn[c])
		macro += safeDiv(2*p*r, p+r)
	}
	return F1Scores{
		Micro: correct / float64(len(gold)),
		Macro: macro / float64(len(classes)),
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// PerClassF1 returns the F1 of every gold class, sorted by class name.
type ClassF1 struct {
	Class incident.Category
	F1    float64
	N     int
}

// PerClass computes per-class F1 scores.
func PerClass(pred, gold []incident.Category) []ClassF1 {
	tp := make(map[incident.Category]float64)
	fp := make(map[incident.Category]float64)
	fn := make(map[incident.Category]float64)
	n := make(map[incident.Category]int)
	for i := range gold {
		n[gold[i]]++
		if pred[i] == gold[i] {
			tp[gold[i]]++
		} else {
			fp[pred[i]]++
			fn[gold[i]]++
		}
	}
	out := make([]ClassF1, 0, len(n))
	for c, count := range n {
		p := safeDiv(tp[c], tp[c]+fp[c])
		r := safeDiv(tp[c], tp[c]+fn[c])
		out = append(out, ClassF1{Class: c, F1: safeDiv(2*p*r, p+r), N: count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}
