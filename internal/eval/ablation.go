package eval

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/incident"
	"repro/internal/llm/simgpt"
	"repro/internal/parallel"
	"repro/internal/prompt"
	"repro/internal/vectordb"
)

// Design-choice ablations beyond the paper's tables, covering the decisions
// DESIGN.md calls out: the category-diversity constraint on retrieval
// (§4.2.2 "we select the top K incidents from different categories"), and
// the embedding distance scale that balances semantic distance against
// temporal decay.

// AblationRow is one design-variant result.
type AblationRow struct {
	Variant string
	Scores  F1Scores
}

// RunDesignAblation evaluates the pipeline with individual design choices
// toggled, on the standard configuration (K=5, α=0.3, GPT-4).
func RunDesignAblation(e *Env) ([]AblationRow, error) {
	rows := []AblationRow{}

	baseline, err := RunPipeline(e, PipelineOptions{})
	if err != nil {
		return nil, fmt.Errorf("ablation baseline: %w", err)
	}
	rows = append(rows, AblationRow{Variant: "full system (diverse top-K, scale 24)", Scores: baseline.Result.Scores})

	noDiverse, err := runNoDiversity(e)
	if err != nil {
		return nil, fmt.Errorf("ablation no-diversity: %w", err)
	}
	rows = append(rows, AblationRow{Variant: "no category-diversity constraint", Scores: noDiverse})

	for _, scale := range []float64{6, 48} {
		s, err := runWithScale(e, scale)
		if err != nil {
			return nil, fmt.Errorf("ablation scale %.0f: %w", scale, err)
		}
		rows = append(rows, AblationRow{
			Variant: fmt.Sprintf("embedding scale %.0f", scale), Scores: s,
		})
	}
	return rows, nil
}

// runWithScale re-runs the pipeline with a different embedding scale.
func runWithScale(e *Env, scale float64) (F1Scores, error) {
	chat := simgpt.MustNew(simgpt.GPT4, simgpt.Options{Seed: e.Seed})
	cop, err := core.New(e.Corpus.Fleet, chat, core.Config{Shards: e.Shards, Partitioner: e.Partitioner, Probes: e.Probes,
		RecallTarget: e.RecallTarget, ShadowRate: e.ShadowRate, RetrainSkew: e.RetrainSkew,
		Quantized: e.Quantized, Overfetch: e.Overfetch,
		BatchMax: e.BatchMax, BatchWait: e.BatchWait})
	if err != nil {
		return F1Scores{}, err
	}
	defer cop.Close()
	ft, _, err := e.FastText()
	if err != nil {
		return F1Scores{}, err
	}
	cop.SetEmbedder(core.FastTextEmbedder{Model: ft, Scale: scale})
	return scoreCopilot(e, cop)
}

// runNoDiversity replicates the retrieval without the one-per-category
// constraint by querying TopK directly and deduplicating nothing: the
// demonstrations can all come from one dominant category, which is what the
// constraint exists to prevent.
func runNoDiversity(e *Env) (F1Scores, error) {
	chat := simgpt.MustNew(simgpt.GPT4, simgpt.Options{Seed: e.Seed})
	cop, err := core.New(e.Corpus.Fleet, chat, core.Config{Shards: e.Shards, Partitioner: e.Partitioner, Probes: e.Probes,
		RecallTarget: e.RecallTarget, ShadowRate: e.ShadowRate, RetrainSkew: e.RetrainSkew,
		Quantized: e.Quantized, Overfetch: e.Overfetch,
		BatchMax: e.BatchMax, BatchWait: e.BatchWait})
	if err != nil {
		return F1Scores{}, err
	}
	defer cop.Close()
	ft, _, err := e.FastText()
	if err != nil {
		return F1Scores{}, err
	}
	emb := core.FastTextEmbedder{Model: ft}
	cop.SetEmbedder(emb)
	if err := learnHistory(e, cop); err != nil {
		return F1Scores{}, err
	}
	// Drive prediction manually with non-diverse retrieval.
	preds := make([]string, len(e.Test))
	err = parallel.ForEach(len(e.Test), e.Workers, func(i int) error {
		probe := e.Test[i].Clone()
		probe.Summary = ""
		if err := cop.Summarize(probe); err != nil {
			return err
		}
		query, err := emb.Embed(probe.DiagnosticText())
		if err != nil {
			return err
		}
		hits, err := cop.Index().TopK(query, probe.CreatedAt, cop.Config().K, cop.Config().Alpha)
		if err != nil {
			return err
		}
		pred, err := predictWithDemos(cop, probe.Summary, hits)
		if err != nil {
			return err
		}
		preds[i] = pred
		return nil
	})
	if err != nil {
		return F1Scores{}, err
	}
	return scoreStrings(preds, e), nil
}

// learnHistory ingests the training split on the shared worker pool.
func learnHistory(e *Env, cop *core.Copilot) error {
	clones := make([]*incident.Incident, len(e.Train))
	for i, in := range e.Train {
		clones[i] = in.Clone()
	}
	return cop.LearnBatch(clones, e.Workers)
}

// scoreCopilot learns the training history and scores the test set via the
// standard Predict path, fanning out on the shared worker pool.
func scoreCopilot(e *Env, cop *core.Copilot) (F1Scores, error) {
	if err := learnHistory(e, cop); err != nil {
		return F1Scores{}, err
	}
	preds := make([]string, len(e.Test))
	err := parallel.ForEach(len(e.Test), e.Workers, func(i int) error {
		probe := e.Test[i].Clone()
		probe.Summary = ""
		res, err := cop.Predict(probe)
		if err != nil {
			return err
		}
		preds[i] = string(res.Category)
		return nil
	})
	if err != nil {
		return F1Scores{}, err
	}
	return scoreStrings(preds, e), nil
}

func scoreStrings(preds []string, e *Env) F1Scores {
	cats := make([]incident.Category, len(preds))
	for i, p := range preds {
		cats[i] = incident.Category(p)
	}
	return Score(NormalizeAll(cats), e.TestGold())
}

// FormatAblation renders the design-ablation table.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %8s %8s\n", "Variant", "Micro", "Macro")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-42s %8.3f %8.3f\n", r.Variant, r.Scores.Micro, r.Scores.Macro)
	}
	return b.String()
}

// predictWithDemos builds and parses a prediction with explicit
// demonstrations (used by the non-diverse variant).
func predictWithDemos(cop *core.Copilot, input string, hits []vectordb.Scored) (string, error) {
	demos := make([]prompt.Demo, 0, len(hits))
	for _, h := range hits {
		demos = append(demos, prompt.Demo{Summary: h.Entry.Summary, Category: h.Entry.Category})
	}
	resp, err := cop.Chat().Complete(prompt.Prediction(input, demos))
	if err != nil {
		return "", err
	}
	res, err := prompt.ParsePrediction(resp.Content)
	if err != nil {
		return "", err
	}
	return string(res.Category), nil
}
