package eval

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/llm/simgpt"
)

// TestRunPipelineSharesChatCache pins the (model, seed)-keyed response
// cache: a second pipeline run over the same environment must serve its
// completions from the shared cache (the training incidents are not
// re-summarized) and still produce bit-identical results.
func TestRunPipelineSharesChatCache(t *testing.T) {
	spec := dataset.DefaultSpec(97)
	spec.Days = 30
	e, err := NewEnvFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}

	first, err := RunPipeline(e, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := sharedChat(simgpt.GPT4, e.Seed)
	if err != nil {
		t.Fatal(err)
	}
	_, missesAfterFirst := cached.Stats()
	if missesAfterFirst == 0 {
		t.Fatal("first run recorded no cache misses; pipeline is not using the shared client")
	}

	second, err := RunPipeline(e, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := cached.Stats()
	if misses != missesAfterFirst {
		t.Errorf("second run re-invoked the model: misses %d -> %d", missesAfterFirst, misses)
	}
	if hits == 0 {
		t.Error("second run recorded no cache hits")
	}

	if first.Result.Scores != second.Result.Scores {
		t.Errorf("scores diverged across cached runs: %+v vs %+v", first.Result.Scores, second.Result.Scores)
	}
	if first.Result.Infer != second.Result.Infer {
		t.Errorf("modelled infer diverged: %v vs %v (cached responses must preserve ModelLatency)", first.Result.Infer, second.Result.Infer)
	}
	for i := range first.Preds {
		if first.Preds[i] != second.Preds[i] {
			t.Fatalf("prediction %d diverged: %q vs %q", i, first.Preds[i], second.Preds[i])
		}
	}

	// A different LLM seed must not share the cache (stability rounds need
	// fresh model variance).
	other, err := sharedChat(simgpt.GPT4, e.Seed+1)
	if err != nil {
		t.Fatal(err)
	}
	if other == cached {
		t.Fatal("distinct seeds share one cache entry")
	}
}
