//go:build !race

package eval

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
