// Package prompt constructs the two prompts of RCACopilot's prediction
// stage — the diagnostic-information summarization prompt (Figure 7) and
// the chain-of-thought category prediction prompt (Figure 9) — and parses
// the model's replies. The exact wording follows the paper's figures.
package prompt

import (
	"fmt"
	"strings"

	"repro/internal/incident"
	"repro/internal/llm"
)

// SummaryInstruction is the Figure 7 prompt text.
const SummaryInstruction = "Please summarize the above input. Please note that the above input is incident diagnostic information. The summary results should be about 120 words, no more than 140 words, and should cover important information as much as possible. Just return the summary without any additional output."

// PredictionContext is the Figure 9 context preamble.
const PredictionContext = `Context: The following description shows the error log information of an incident. Please select the incident information that is most likely to have the same root cause and give your explanation (just give one answer). If not, please select the first item "Unseen incident".`

// ClassifyInstruction heads the direct-classification prompt used by the
// fine-tuned GPT baseline, which "directly predicts the category with the
// original diagnosis information" (§5.2).
const ClassifyInstruction = "Classify the root cause category of the following incident:"

// Summary builds the Figure 7 summarization request for diagnostic text.
func Summary(diagnosticText string) llm.Request {
	return llm.Request{
		Messages: []llm.Message{
			{Role: llm.RoleUser, Content: diagnosticText},
			{Role: llm.RoleUser, Content: SummaryInstruction},
		},
	}
}

// Demo is one retrieved historical incident shown as a lettered option.
type Demo struct {
	Summary  string
	Category incident.Category
}

// Prediction builds the Figure 9 request: the current incident's context
// text as Input, option A fixed to "Unseen incident", and one lettered
// option per demonstration carrying its summary and category.
func Prediction(input string, demos []Demo) llm.Request {
	var b strings.Builder
	b.WriteString(PredictionContext)
	b.WriteString("\n")
	fmt.Fprintf(&b, "Input: %s\n", strings.ReplaceAll(strings.TrimSpace(input), "\n", " "))
	b.WriteString("Options:\n")
	b.WriteString("A: Unseen incident.\n")
	for i, d := range demos {
		letter := rune('B' + i)
		body := strings.ReplaceAll(strings.TrimSpace(d.Summary), "\n", " ")
		fmt.Fprintf(&b, "%c: %s category: %s.\n", letter, ensureTrailingDot(body), d.Category)
	}
	return llm.Request{Messages: []llm.Message{{Role: llm.RoleUser, Content: b.String()}}}
}

func ensureTrailingDot(s string) string {
	if s == "" || strings.HasSuffix(s, ".") {
		return s
	}
	return s + "."
}

// Classify builds the direct-classification request for the fine-tune and
// zero-shot baselines.
func Classify(text string) llm.Request {
	return llm.Request{Messages: []llm.Message{{
		Role:    llm.RoleUser,
		Content: ClassifyInstruction + "\n" + text,
	}}}
}

// Result is a parsed prediction reply.
type Result struct {
	// Option is the chosen letter ("A".."Z").
	Option string
	// Unseen reports whether option A ("Unseen incident") was chosen.
	Unseen bool
	// Category is the predicted root-cause category: the chosen
	// demonstration's label, or the model's coined keyword when Unseen.
	Category incident.Category
	// Explanation is the model's reasoning narrative.
	Explanation string
}

// ParsePrediction parses the model's Answer/Category/Explanation reply.
func ParsePrediction(content string) (Result, error) {
	var r Result
	for _, line := range strings.Split(content, "\n") {
		switch {
		case strings.HasPrefix(line, "Answer: "):
			r.Option = strings.TrimSpace(strings.TrimPrefix(line, "Answer: "))
		case strings.HasPrefix(line, "Category: "):
			r.Category = incident.Category(strings.TrimSpace(strings.TrimPrefix(line, "Category: ")))
		case strings.HasPrefix(line, "Explanation: "):
			r.Explanation = strings.TrimSpace(strings.TrimPrefix(line, "Explanation: "))
		}
	}
	if r.Option == "" {
		return Result{}, fmt.Errorf("prompt: reply has no Answer line: %q", content)
	}
	if r.Category == "" {
		return Result{}, fmt.Errorf("prompt: reply has no Category line: %q", content)
	}
	r.Unseen = r.Option == "A"
	return r, nil
}

// ParseClassification parses a "Category: X" classification reply.
func ParseClassification(content string) (incident.Category, error) {
	for _, line := range strings.Split(content, "\n") {
		if strings.HasPrefix(line, "Category: ") {
			return incident.Category(strings.TrimSpace(strings.TrimPrefix(line, "Category: "))), nil
		}
	}
	return "", fmt.Errorf("prompt: reply has no Category line: %q", content)
}

// TrimToTokens truncates text so count(text) <= budget, cutting at word
// boundaries from the end. It keeps the head: diagnostic documents lead
// with the probe/error content and trail with bulk tables.
func TrimToTokens(text string, budget int, count func(string) int) string {
	if count(text) <= budget {
		return text
	}
	words := strings.Fields(text)
	lo, hi := 0, len(words)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if count(strings.Join(words[:mid], " ")) <= budget {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return strings.Join(words[:lo], " ")
}
