package prompt

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tokenize"
)

func TestSummaryPromptShape(t *testing.T) {
	req := Summary("diagnostic body text")
	if len(req.Messages) != 2 {
		t.Fatalf("messages = %d, want 2", len(req.Messages))
	}
	if req.Messages[0].Content != "diagnostic body text" {
		t.Fatal("first message must carry the diagnostic text")
	}
	if !strings.Contains(req.Messages[1].Content, "120 words, no more than 140 words") {
		t.Fatal("instruction must carry the Figure 7 word budget")
	}
}

func TestPredictionPromptShape(t *testing.T) {
	req := Prediction("current incident summary", []Demo{
		{Summary: "probe failures with winsock 11001", Category: "HubPortExhaustion"},
		{Summary: "delivery queue blocked threads", Category: "DeliveryHang"},
	})
	content := req.Messages[0].Content
	for _, want := range []string{
		`select the first item "Unseen incident"`,
		"Input: current incident summary",
		"A: Unseen incident.",
		"B: probe failures with winsock 11001. category: HubPortExhaustion.",
		"C: delivery queue blocked threads. category: DeliveryHang.",
	} {
		if !strings.Contains(content, want) {
			t.Errorf("prompt missing %q:\n%s", want, content)
		}
	}
}

func TestPredictionPromptFlattensNewlines(t *testing.T) {
	req := Prediction("line1\nline2", []Demo{{Summary: "a\nb", Category: "X"}})
	content := req.Messages[0].Content
	if !strings.Contains(content, "Input: line1 line2") {
		t.Fatalf("input newlines should flatten:\n%s", content)
	}
	if !strings.Contains(content, "B: a b.") {
		t.Fatalf("demo newlines should flatten:\n%s", content)
	}
}

func TestClassifyPromptShape(t *testing.T) {
	req := Classify("incident text")
	if !strings.Contains(req.Messages[0].Content, ClassifyInstruction) ||
		!strings.Contains(req.Messages[0].Content, "incident text") {
		t.Fatal("classify prompt malformed")
	}
}

func TestParsePrediction(t *testing.T) {
	r, err := ParsePrediction("Answer: B\nCategory: HubPortExhaustion\nExplanation: shared winsock signature.")
	if err != nil {
		t.Fatal(err)
	}
	if r.Option != "B" || r.Unseen || r.Category != "HubPortExhaustion" ||
		!strings.Contains(r.Explanation, "winsock") {
		t.Fatalf("parsed = %+v", r)
	}
}

func TestParsePredictionUnseen(t *testing.T) {
	r, err := ParsePrediction("Answer: A\nCategory: I/O Bottleneck\nExplanation: novel IO pattern.")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Unseen || r.Category != "I/O Bottleneck" {
		t.Fatalf("parsed = %+v", r)
	}
}

func TestParsePredictionErrors(t *testing.T) {
	if _, err := ParsePrediction("Category: X"); err == nil {
		t.Fatal("missing Answer should fail")
	}
	if _, err := ParsePrediction("Answer: B"); err == nil {
		t.Fatal("missing Category should fail")
	}
}

func TestParseClassification(t *testing.T) {
	cat, err := ParseClassification("Category: FullDisk")
	if err != nil || cat != "FullDisk" {
		t.Fatalf("got %q, %v", cat, err)
	}
	if _, err := ParseClassification("no category here"); err == nil {
		t.Fatal("missing Category line should fail")
	}
}

func TestTrimToTokensKeepsHead(t *testing.T) {
	count := func(s string) int { return tokenize.WordCount(s) }
	text := "one two three four five six seven eight"
	got := TrimToTokens(text, 3, count)
	if got != "one two three" {
		t.Fatalf("TrimToTokens = %q", got)
	}
	if TrimToTokens(text, 100, count) != text {
		t.Fatal("under-budget text must pass through unchanged")
	}
}

// Property: TrimToTokens always respects the budget and returns a prefix.
func TestQuickTrimToTokens(t *testing.T) {
	count := func(s string) int { return tokenize.WordCount(s) }
	f := func(raw string, budget uint8) bool {
		b := int(budget%50) + 1
		out := TrimToTokens(raw, b, count)
		if count(out) > b {
			return false
		}
		return strings.HasPrefix(strings.Join(strings.Fields(raw), " "),
			strings.Join(strings.Fields(out), " "))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
