package simgpt

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/tokenize"
)

func mustClient(t *testing.T, model string, seed int64) *Client {
	t.Helper()
	c, err := New(model, Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidatesModel(t *testing.T) {
	if _, err := New("gpt-5-ultra", Options{}); err == nil {
		t.Fatal("unknown model should fail")
	}
	c := mustClient(t, GPT4, 1)
	if c.Name() != GPT4 {
		t.Fatalf("Name = %s", c.Name())
	}
	if c.ContextWindow() != 8192 {
		t.Fatalf("GPT-4 context window = %d, want 8192", c.ContextWindow())
	}
	if mustClient(t, GPT35, 1).ContextWindow() != 4096 {
		t.Fatal("GPT-3.5 context window should be 4096")
	}
}

const diagText = `DatacenterHubOutboundProxyProbe probe log result from NAMPR01A-FD01.
Total Probes: 2, Failed Probes: 2
Id Level Created Description
-- ----- ------- -----------
2 Error 11/21/2022 2:04:20 AM Probe result
Failed probe error: Name: No such host is known.
A WinSock error: 11001 encountered when connecting to host: smtp-relay.
Exceptions:
InformativeSocketException: No such host is known.
at TcpClientFactory.Create(...)
Total UDP socket count: 15276
Total UDP socket count by process and processId (top 5 only):
14923: Transport.exe, 203736
15: w3wp.exe, 102296
`

func summaryPrompt(body string) llm.Request {
	return llm.Request{Messages: []llm.Message{
		{Role: llm.RoleUser, Content: body},
		{Role: llm.RoleUser, Content: "Please summarize the above input. Please note that the above input is incident diagnostic information. The summary results should be about 120 words, no more than 140 words, and should cover important information as much as possible. Just return the summary without any additional output."},
	}}
}

func TestSummarizeBudgetAndSignals(t *testing.T) {
	c := mustClient(t, GPT4, 3)
	resp, err := c.Complete(summaryPrompt(diagText))
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	words := tokenize.WordCount(resp.Content)
	if words == 0 || words > 140 {
		t.Fatalf("summary word count = %d, want (0,140]", words)
	}
	if !strings.Contains(resp.Content, "15276") && !strings.Contains(resp.Content, "WinSock") &&
		!strings.Contains(resp.Content, "11001") {
		t.Errorf("summary lost all key signals:\n%s", resp.Content)
	}
	if strings.Contains(resp.Content, "-- -----") {
		t.Error("summary kept table separator junk")
	}
	if resp.PromptTokens <= 0 || resp.CompletionTokens <= 0 || resp.ModelLatency <= 0 {
		t.Error("token/latency accounting missing")
	}
}

func TestSummarizeDeterministic(t *testing.T) {
	a := mustClient(t, GPT4, 9)
	b := mustClient(t, GPT4, 9)
	ra, err := a.Complete(summaryPrompt(diagText))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Complete(summaryPrompt(diagText))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Content != rb.Content {
		t.Fatal("same seed must summarize identically")
	}
}

func TestContextWindowEnforced(t *testing.T) {
	c := mustClient(t, GPT35, 1)
	huge := strings.Repeat("overflow the window with many tokens ", 3000)
	if _, err := c.Complete(summaryPrompt(huge)); err == nil {
		t.Fatal("over-window prompt should fail")
	}
}

func TestEmptyRequestFails(t *testing.T) {
	c := mustClient(t, GPT4, 1)
	if _, err := c.Complete(llm.Request{}); err == nil {
		t.Fatal("empty request should fail")
	}
}

func TestMaxTokensTruncates(t *testing.T) {
	c := mustClient(t, GPT4, 1)
	req := summaryPrompt(diagText)
	req.MaxTokens = 10
	resp, err := c.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CompletionTokens > 10 {
		t.Fatalf("completion tokens = %d, want <= 10", resp.CompletionTokens)
	}
}

func predictionPrompt(input string, options []string) llm.Request {
	var b strings.Builder
	b.WriteString("Context: The following description shows the error log information of an incident. Please select the incident information that is most likely to have the same root cause and give your explanation (just give one answer). If not, please select the first item \"Unseen incident\".\n")
	fmt.Fprintf(&b, "Input: %s\n", input)
	b.WriteString("Options:\n")
	b.WriteString("A: Unseen incident.\n")
	for i, o := range options {
		fmt.Fprintf(&b, "%c: %s\n", 'B'+i, o)
	}
	return llm.Request{Messages: []llm.Message{{Role: llm.RoleUser, Content: b.String()}}}
}

func TestSelectsMatchingOption(t *testing.T) {
	c := mustClient(t, GPT4, 5)
	// Same-category incidents share their telemetry signature: the same
	// probe, the same exception class, the same failure phrasing — only
	// machines and counters differ (as the pipeline's summaries do).
	input := "The DatacenterHubOutboundProxyProbe failed twice on NAMPR01A-FD02 with WinSock error 11001 host unknown. InformativeSocketException: No such host is known. Total UDP socket count 15276 dominated by Transport.exe. DNS resolution FAILED."
	optB := "DatacenterHubOutboundProxyProbe failures on NAMPR03A-FD01 with WinSock error 11001, InformativeSocketException host unknown, UDP socket count 14820 dominated by Transport.exe, DNS resolution FAILED. category: HubPortExhaustion."
	optC := "Mailbox delivery queue on NAMPR02A-MB08 exceeded limit with blocked delivery threads in MailboxDeliverAgent.Deliver, delivery service hanging. category: DeliveryHang."
	resp, err := c.Complete(predictionPrompt(input, []string{optB, optC}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Content, "Answer: B") {
		t.Fatalf("expected Answer: B, got:\n%s", resp.Content)
	}
	if !strings.Contains(resp.Content, "Category: HubPortExhaustion") {
		t.Fatalf("expected category line, got:\n%s", resp.Content)
	}
	if !strings.Contains(resp.Content, "Explanation:") {
		t.Fatalf("expected explanation, got:\n%s", resp.Content)
	}
}

func TestSelectsUnseenWhenNothingMatches(t *testing.T) {
	c := mustClient(t, GPT4, 5)
	input := "Many processes crashed throwing System.IO.IOException in DiagnosticsLog module. Volume D: is 100% full on the mailbox server."
	optB := "Probe failures with WinSock error 11001 and UDP socket exhaustion. category: HubPortExhaustion."
	optC := "Bogus tenants with suspicious connectors exceeded concurrent server connections. category: CertForBogusTenants."
	resp, err := c.Complete(predictionPrompt(input, []string{optB, optC}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Content, "Answer: A") {
		t.Fatalf("expected unseen answer, got:\n%s", resp.Content)
	}
	if !strings.Contains(resp.Content, "Category: I/O Bottleneck") {
		t.Fatalf("expected coined I/O Bottleneck keyword (Figure 11), got:\n%s", resp.Content)
	}
}

func TestGPT4MoreReliableThanGPT35(t *testing.T) {
	// A borderline case: both options share the submission-backlog
	// phrasing with the input; option B additionally shares the exception
	// and component, so it should win — but only by a margin that scoring
	// noise occasionally flips for the weaker model.
	input := "Normal priority messages queued in submission queues beyond limit on NAMPR01A-HB05, depth 9516. Crash events show TaskCanceledException in DispatcherAgent. Component availability: authentication service unreachable, dispatcher tasks cancelled."
	optB := "Submission queues beyond limit on NAMPR04A-HB06 depth 9102, crash events show TaskCanceledException in DispatcherAgent, authentication service unreachable, dispatcher tasks cancelled. category: DispatcherTaskCancelled."
	optC := "Submission queues beyond limit on NAMPR02A-HB04 depth 10240, crash events show TenantSettingsNotFoundException in JournalingAgent, invalid value for the Transport config. category: InvalidJournaling."
	count := func(model string) int {
		correct := 0
		for seed := int64(1); seed <= 40; seed++ {
			c := mustClient(t, model, seed)
			req := predictionPrompt(input, []string{optB, optC})
			req.Temperature = 1.0
			resp, err := c.Complete(req)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(resp.Content, "Answer: B") {
				correct++
			}
		}
		return correct
	}
	g4, g35 := count(GPT4), count(GPT35)
	if g4 < g35 {
		t.Errorf("gpt-4 correct %d/40 < gpt-3.5 correct %d/40", g4, g35)
	}
	if g4 <= 20 {
		t.Errorf("gpt-4 should pick the right option more often than not: %d/40", g4)
	}
}

func TestSynthesizeCategory(t *testing.T) {
	cases := []struct {
		text string
		want string
	}{
		{"System.IO.IOException in DiagnosticsLog, disk D: full, processes crashed", "I/O Bottleneck"},
		{"WinSock error 11001, Total UDP socket count 15276", "UDP Port Exhaustion"},
		{"StoreWorkerHeapCorruptionException raised repeatedly in module StoreWorker", "StoreWorkerHeapCorruption"},
		{"spammers created bogus tenants with many connectors", "Tenant Abuse"},
		{"malicious binary blob serialized in remote PowerShell exploit", "Security Exploit"},
	}
	for _, tc := range cases {
		if got := SynthesizeCategory(tc.text); got != tc.want {
			t.Errorf("SynthesizeCategory(%.30q...) = %q, want %q", tc.text, got, tc.want)
		}
	}
	if got := SynthesizeCategory(""); got == "" {
		t.Error("empty text should still yield a fallback keyword")
	}
}

func TestRawTokensPreservesCase(t *testing.T) {
	toks := RawTokens("System.IO.IOException at TcpClientFactory.Create")
	joined := strings.Join(toks, " ")
	if !strings.Contains(joined, "IOException") || !strings.Contains(joined, "TcpClientFactory") {
		t.Fatalf("RawTokens lost case: %v", toks)
	}
}

func TestEmbedNormalizedAndDeterministic(t *testing.T) {
	c := mustClient(t, GPT4, 1)
	a, err := c.Embed("udp socket exhausted transport")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Embed("udp socket exhausted transport")
	if err != nil {
		t.Fatal(err)
	}
	var norm float64
	same := true
	for i := range a {
		norm += a[i] * a[i]
		if a[i] != b[i] {
			same = false
		}
	}
	if !same {
		t.Fatal("embedding must be deterministic")
	}
	if norm < 0.999 || norm > 1.001 {
		t.Fatalf("embedding norm² = %f, want 1", norm)
	}
	other, err := c.Embed("disk volume full io exception")
	if err != nil {
		t.Fatal(err)
	}
	if cosine(a, other) > 0.99 {
		t.Fatal("different texts should not embed identically")
	}
}

func TestFineTuneOnlyGPT35(t *testing.T) {
	g4 := mustClient(t, GPT4, 1)
	if _, _, err := g4.FineTune([]llm.Example{{Input: "x", Label: "y"}}); err == nil {
		t.Fatal("GPT-4 fine-tuning should be unavailable")
	}
	g35 := mustClient(t, GPT35, 1)
	if _, _, err := g35.FineTune(nil); err == nil {
		t.Fatal("empty example set should fail")
	}
}

func TestFineTuneClassifies(t *testing.T) {
	g35 := mustClient(t, GPT35, 1)
	var examples []llm.Example
	for i := 0; i < 10; i++ {
		examples = append(examples,
			llm.Example{Input: "udp socket exhausted winsock transport hub port", Label: "HubPortExhaustion"},
			llm.Example{Input: "disk volume full io exception crashed storage", Label: "FullDisk"},
		)
	}
	tuned, cost, err := g35.FineTune(examples)
	if err != nil {
		t.Fatal(err)
	}
	if cost < 2500*time.Second {
		t.Fatalf("fine-tune cost = %v, want >= 2500s (Table 2 shape)", cost)
	}
	if tuned.Name() != "gpt-3.5-turbo-ft" {
		t.Fatalf("tuned name = %s", tuned.Name())
	}
	resp, err := tuned.Complete(llm.Request{Messages: []llm.Message{{
		Role:    llm.RoleUser,
		Content: "Classify the root cause category of the following incident:\nwinsock errors with udp socket counts exhausted on hub transport",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Content, "Category: HubPortExhaustion") {
		t.Fatalf("tuned classification = %q", resp.Content)
	}
	// Non-classification prompts defer to the base model.
	sum, err := tuned.Complete(summaryPrompt(diagText))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Content == "" {
		t.Fatal("tuned client should delegate summarization")
	}
}

func TestZeroShotClassifyReturnsKeyword(t *testing.T) {
	c := mustClient(t, GPT4, 2)
	resp, err := c.Complete(llm.Request{Messages: []llm.Message{{
		Role:    llm.RoleUser,
		Content: "Classify the root cause category of the following incident:\nmany crashes with System.IO.IOException, disk full",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.Content, "Category: ") {
		t.Fatalf("zero-shot classify = %q", resp.Content)
	}
}

func TestLatencyGrowsWithTokens(t *testing.T) {
	c := mustClient(t, GPT4, 1)
	small, err := c.Complete(summaryPrompt("short text. failure here."))
	if err != nil {
		t.Fatal(err)
	}
	large, err := c.Complete(summaryPrompt(strings.Repeat(diagText, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if large.ModelLatency <= small.ModelLatency {
		t.Fatalf("latency should grow with tokens: %v vs %v", small.ModelLatency, large.ModelLatency)
	}
}

func TestGenericPromptFallback(t *testing.T) {
	c := mustClient(t, GPT4, 1)
	resp, err := c.Complete(llm.Request{Messages: []llm.Message{{
		Role: llm.RoleUser, Content: "What is the weather like on the moon today?",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Content == "" {
		t.Fatal("generic prompts should still produce output")
	}
}
