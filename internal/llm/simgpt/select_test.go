package simgpt

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/llm"
)

func TestParsePredictionPromptMultilineOptions(t *testing.T) {
	prompt := `Context: select the incident information that is most likely.
Input: first input line
second input line
Options:
A: Unseen incident.
B: body line one
   continuation of option B. category: CatB.
C: option c body. category: CatC.
`
	input, opts := parsePredictionPrompt(prompt)
	if !strings.Contains(input, "first input line") || !strings.Contains(input, "second input line") {
		t.Fatalf("input = %q", input)
	}
	if len(opts) != 3 {
		t.Fatalf("options = %d, want 3", len(opts))
	}
	if !strings.Contains(opts[1].body, "continuation of option B") {
		t.Fatalf("option B lost continuation: %q", opts[1].body)
	}
	if opts[1].category != "CatB" || opts[2].category != "CatC" {
		t.Fatalf("categories = %q/%q", opts[1].category, opts[2].category)
	}
}

func TestSelectWithOnlyUnseenOption(t *testing.T) {
	c := mustClient(t, GPT4, 1)
	prompt := `Context: Please select the incident information that is most likely to have the same root cause.
Input: StoreWorkerWidgetFailureException crashed many processes.
Options:
A: Unseen incident.
`
	resp, err := c.Complete(llm.Request{Messages: []llm.Message{{Role: llm.RoleUser, Content: prompt}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Content, "Answer: A") {
		t.Fatalf("with no demonstrations the model must answer A:\n%s", resp.Content)
	}
	// The coined keyword comes from the novel exception.
	if !strings.Contains(resp.Content, "StoreWorkerWidgetFailure") {
		t.Fatalf("keyword should derive from the exception:\n%s", resp.Content)
	}
}

func TestSelectNoOptionsAtAll(t *testing.T) {
	c := mustClient(t, GPT4, 1)
	prompt := "Please select the incident information that is most likely to have the same root cause.\nInput: something\n"
	resp, err := c.Complete(llm.Request{Messages: []llm.Message{{Role: llm.RoleUser, Content: prompt}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Content, "Answer: A") {
		t.Fatalf("degenerate prompt should still answer:\n%s", resp.Content)
	}
}

// Property: option scores are bounded cosines in [0, 1] for arbitrary texts.
func TestQuickScoreOptionsBounded(t *testing.T) {
	f := func(input, a, b string) bool {
		opts := []option{
			{letter: "A", body: "Unseen incident."},
			{letter: "B", body: a},
			{letter: "C", body: b},
		}
		for _, s := range scoreOptions(input, opts) {
			if s < 0 || s > 1.0000001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreOptionsPrefersSharedRareTokens(t *testing.T) {
	input := "crash events show TenantQuotaOverflowException in QuotaService, submission queues beyond limit"
	opts := []option{
		{letter: "A", body: "Unseen incident."},
		{letter: "B", body: "crash events show TenantQuotaOverflowException in QuotaService, submission queues beyond limit"},
		{letter: "C", body: "crash events show RoutingLoopException in RoutingTable, submission queues beyond limit"},
	}
	scores := scoreOptions(input, opts)
	if scores[1] <= scores[2] {
		t.Fatalf("exact match should outscore sibling: B=%.3f C=%.3f", scores[1], scores[2])
	}
	if scores[0] != 0 {
		t.Fatalf("unseen option must not be scored: %f", scores[0])
	}
}

func TestJoinNaturally(t *testing.T) {
	cases := map[string][]string{
		"":            nil,
		"a":           {"a"},
		"a and b":     {"a", "b"},
		"a, b, and c": {"a", "b", "c"},
	}
	for want, in := range cases {
		if got := joinNaturally(in); got != want {
			t.Errorf("joinNaturally(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSummaryOfEmptyInput(t *testing.T) {
	c := mustClient(t, GPT4, 1)
	resp, err := c.Complete(llm.Request{Messages: []llm.Message{
		{Role: llm.RoleUser, Content: ""},
		{Role: llm.RoleUser, Content: "Please summarize the above input."},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Content == "" {
		t.Fatal("empty diagnostic input should still produce a statement")
	}
}
