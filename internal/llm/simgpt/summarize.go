package simgpt

import (
	"sort"
	"strings"

	"repro/internal/tokenize"
)

// Summary word budget from the Figure 7 prompt: "should be about 120 words,
// no more than 140 words".
const (
	summaryTargetWords = 120
	summaryMaxWords    = 140
)

// signalWords are the markers that make a diagnostic sentence salient.
var signalWords = map[string]bool{
	"error": true, "errors": true, "failed": true, "failure": true,
	"failures": true, "fail": true, "warning": true, "alert": true,
	"invalid": true, "suspicious": true, "crash": true, "crashed": true,
	"crashes": true, "full": true, "exceeded": true, "unreachable": true,
	"unable": true, "blocked": true, "hang": true, "hanging": true,
	"exhausted": true, "dropped": true, "stuck": true, "bogus": true,
	"malicious": true, "poisoned": true, "exploit": true,
}

// summarize implements the Figure 7 behaviour: compress the diagnostic text
// above the instruction into 120-140 words, keeping the most informative
// sentences, "without outputting any unrelated information".
func (c *Client) summarize(prompt string, temperature float64) string {
	body, _, found := strings.Cut(prompt, "Please summarize the above input")
	if !found {
		body = prompt
	}
	type scored struct {
		idx   int
		text  string
		words int
		score float64
	}
	var sentences []scored
	seen := make(map[string]bool)
	shapeCount := make(map[string]int)
	for i, s := range tokenize.Sentences(body) {
		ws := tokenize.Words(s)
		if len(ws) == 0 {
			continue
		}
		// Deduplicate repeated table rows / probe lines by token signature.
		sig := strings.Join(ws, " ")
		if seen[sig] {
			continue
		}
		seen[sig] = true
		// Near-duplicate rows (same shape, different numbers/machines) add
		// nothing after the second instance: a human summarizer writes
		// "crashes across many machines", not thirteen crash rows.
		shape := sentenceShape(ws)
		shapeCount[shape]++
		if shapeCount[shape] > 2 {
			continue
		}
		var sc float64
		for _, w := range ws {
			switch {
			case signalWords[w]:
				sc += 3
			case hasDigit(w):
				sc += 1.5
			case len(w) >= 10: // exception names, component identifiers
				sc += 2
			case len(w) >= 6:
				sc += 0.5
			}
		}
		// Table separators, evidence headers, and healthy-probe chatter
		// carry nothing a root-cause summary needs.
		if strings.Contains(s, "---") || strings.HasPrefix(s, "Id Level") ||
			strings.HasPrefix(s, "[") {
			sc = 0
		}
		if strings.Contains(s, "success") && sc < 12 {
			sc *= 0.1
		}
		// Per-machine stat rows are inventory, not diagnosis; the WARNING
		// lines the telemetry emits alongside them carry the signal.
		if (strings.Contains(s, "Submission=") || strings.Contains(s, "Delivery=")) &&
			!strings.Contains(s, "WARNING") {
			sc *= 0.05
		}
		sentences = append(sentences, scored{idx: i, text: s, words: len(ws), score: sc / float64(len(ws))})
	}
	if len(sentences) == 0 {
		return "No diagnostic information was provided."
	}
	// Rank by salience density, then restore document order among picks.
	sort.SliceStable(sentences, func(i, j int) bool { return sentences[i].score > sentences[j].score })

	rng := c.rngFor(prompt)
	dropP := (1 - c.cap.summaryFidelity) * (1 + temperature)
	var picks []scored
	words := 0
	for _, s := range sentences {
		if words >= summaryTargetWords {
			break
		}
		if words+s.words > summaryMaxWords {
			continue
		}
		// An imperfect model occasionally skips a salient sentence.
		if rng.Float64() < dropP {
			continue
		}
		picks = append(picks, s)
		words += s.words
	}
	if len(picks) == 0 {
		picks = sentences[:1]
	}
	sort.Slice(picks, func(i, j int) bool { return picks[i].idx < picks[j].idx })

	var b strings.Builder
	for i, s := range picks {
		if i > 0 {
			b.WriteString(" ")
		}
		t := strings.TrimSpace(s.text)
		b.WriteString(t)
		if !strings.HasSuffix(t, ".") && !strings.HasSuffix(t, "!") && !strings.HasSuffix(t, "?") {
			b.WriteString(".")
		}
	}
	return b.String()
}

func hasDigit(w string) bool {
	for _, r := range w {
		if r >= '0' && r <= '9' {
			return true
		}
	}
	return false
}

// sentenceShape is a sentence's token signature with numeric tokens
// wildcarded, so "08:10 MB09 crashed" and "09:12 HB04 crashed" collide.
func sentenceShape(ws []string) string {
	parts := make([]string, len(ws))
	for i, w := range ws {
		if hasDigit(w) {
			parts[i] = "#"
		} else {
			parts[i] = w
		}
	}
	return strings.Join(parts, " ")
}
