// Package simgpt is a deterministic-with-seed simulacrum of the OpenAI
// GPT-3.5-turbo and GPT-4 endpoints the paper uses. The real models are a
// closed dependency; the simulacrum honours the same interface contract —
// prompt in, text out, token budgets, temperature-scaled nondeterminism,
// modelled API latency — so the RCACopilot pipeline, its ablations and its
// stability experiments run against it unchanged.
//
// What is simulated, and how:
//
//   - Summarization (Figure 7 prompts): salience-ranked extractive
//     compression into the requested 120-140-word budget. Sentence salience
//     rewards distinctive technical tokens (exception names, counters,
//     error markers); model fidelity and temperature inject seeded noise.
//   - Chain-of-thought option selection (Figure 9 prompts): each lettered
//     demonstration is scored against the input with the model's own
//     lexical-semantic text representation plus capability-scaled noise;
//     low-confidence maxima fall back to option A ("Unseen incident"),
//     with a synthesized category keyword and an explanation naming the
//     signals that drove the choice (Figure 11's behaviour).
//   - Embeddings: a fixed random-projection hashed bag-of-words space.
//     Unlike the domain-trained FastText model, it has no notion of which
//     tokens matter for incidents — the mechanism behind the GPT-4 Embed
//     baseline's gap in Table 2.
//   - Fine-tuning: nearest-centroid classification over the embedding
//     space, with a large modelled training cost (Table 2's 3192 s).
//
// GPT-4 differs from GPT-3.5 by a lower noise floor, a larger context
// window and higher summary fidelity, reproducing the paper's small
// GPT-4-over-GPT-3.5 edge.
package simgpt

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/llm"
	"repro/internal/tokenize"
)

// Model names accepted by New.
const (
	GPT35 = "gpt-3.5-turbo"
	GPT4  = "gpt-4"
)

// capability bundles the per-model behaviour knobs.
type capability struct {
	contextWindow   int
	noise           float64 // stddev of option-scoring noise at temperature 1
	summaryFidelity float64 // probability a salient sentence is kept
	embedDim        int
}

var capabilities = map[string]capability{
	GPT35: {contextWindow: 4096, noise: 0.17, summaryFidelity: 0.88, embedDim: 64},
	GPT4:  {contextWindow: 8192, noise: 0.12, summaryFidelity: 0.96, embedDim: 64},
}

// Options tunes a simulated endpoint.
type Options struct {
	// Seed drives all stochastic behaviour; two clients with the same seed
	// and inputs produce identical outputs (the paper's three evaluation
	// rounds use three seeds).
	Seed int64
	// UnseenThreshold is the minimum best-option score below which the
	// model answers "Unseen incident" (option A). Default 0.28.
	UnseenThreshold float64
	// LatencyBase and LatencyPerToken shape the modelled API latency.
	// Defaults calibrate a ~2k-token exchange to the paper's ≈4s.
	LatencyBase     time.Duration
	LatencyPerToken time.Duration
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.UnseenThreshold == 0 {
		o.UnseenThreshold = 0.28
	}
	if o.LatencyBase == 0 {
		o.LatencyBase = 600 * time.Millisecond
	}
	if o.LatencyPerToken == 0 {
		o.LatencyPerToken = 1500 * time.Microsecond
	}
	return o
}

// Client is a simulated GPT endpoint. It is immutable after New and safe
// for concurrent use: every completion derives its random state per request
// (an RNG seeded with seed ^ hash(prompt), see rngFor), so outputs depend
// only on the client seed and the prompt text, never on call order or
// goroutine interleaving. This order-independence is the determinism
// contract the batch pipeline API and the parallel evaluation harness rely
// on to reproduce sequential results bit for bit.
type Client struct {
	model string
	cap   capability
	opts  Options
}

var _ llm.Client = (*Client)(nil)
var _ llm.FineTuner = (*Client)(nil)

// New returns a simulated endpoint for the named model.
func New(model string, opts Options) (*Client, error) {
	c, ok := capabilities[model]
	if !ok {
		return nil, fmt.Errorf("simgpt: unknown model %q (have %s, %s)", model, GPT35, GPT4)
	}
	return &Client{model: model, cap: c, opts: opts.withDefaults()}, nil
}

// MustNew is New for static model names.
func MustNew(model string, opts Options) *Client {
	c, err := New(model, opts)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements llm.Client.
func (c *Client) Name() string { return c.model }

// ContextWindow implements llm.Client.
func (c *Client) ContextWindow() int { return c.cap.contextWindow }

// CountTokens implements llm.Client using the subword estimate (the
// simulacrum's stand-in for tiktoken).
func (c *Client) CountTokens(text string) int { return tokenize.EstimateTokens(text) }

// latency models the API round trip for a given token volume.
func (c *Client) latency(tokens int) time.Duration {
	return c.opts.LatencyBase + time.Duration(tokens)*c.opts.LatencyPerToken
}

// rngFor derives a deterministic RNG from the client seed and the prompt,
// so identical calls repeat and different prompts decorrelate.
func (c *Client) rngFor(prompt string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(prompt))
	return rand.New(rand.NewSource(c.opts.Seed ^ int64(h.Sum64())))
}

// Complete implements llm.Client. It dispatches on the prompt protocol the
// pipeline uses: summarization prompts (Figure 7), prediction prompts
// (Figure 9) and fine-tuned classification prompts; anything else gets a
// generic truncating echo, which is what a chat model devolves to without a
// recognizable instruction.
func (c *Client) Complete(req llm.Request) (llm.Response, error) {
	if len(req.Messages) == 0 {
		return llm.Response{}, fmt.Errorf("simgpt: empty request")
	}
	prompt := joinMessages(req.Messages)
	promptTokens := c.CountTokens(prompt)
	if promptTokens > c.cap.contextWindow {
		return llm.Response{}, fmt.Errorf("simgpt: prompt of %d tokens exceeds %s context window %d",
			promptTokens, c.model, c.cap.contextWindow)
	}
	var out string
	switch {
	case strings.Contains(prompt, "Please summarize the above input"):
		out = c.summarize(prompt, req.Temperature)
	case strings.Contains(prompt, "select the incident information that is most likely"):
		out = c.selectOption(prompt, req.Temperature)
	case strings.Contains(prompt, "Classify the root cause category"):
		out = c.classifyZeroShot(prompt, req.Temperature)
	default:
		out = c.genericAnswer(prompt)
	}
	completionTokens := c.CountTokens(out)
	if req.MaxTokens > 0 && completionTokens > req.MaxTokens {
		out = truncateToTokens(out, req.MaxTokens)
		completionTokens = c.CountTokens(out)
	}
	return llm.Response{
		Content:          out,
		PromptTokens:     promptTokens,
		CompletionTokens: completionTokens,
		ModelLatency:     c.latency(promptTokens + completionTokens),
	}, nil
}

func joinMessages(msgs []llm.Message) string {
	var b strings.Builder
	for _, m := range msgs {
		b.WriteString(m.Content)
		b.WriteString("\n")
	}
	return b.String()
}

func truncateToTokens(text string, budget int) string {
	words := strings.Fields(text)
	// EstimateTokens ≈ 1+len/6 per word; walk until the budget is spent.
	used := 0
	for i, w := range words {
		used += 1 + len(w)/6
		if used > budget {
			return strings.Join(words[:i], " ")
		}
	}
	return text
}

// genericAnswer is the fallback behaviour for unrecognized prompts: a
// compressed restatement of the tail of the prompt.
func (c *Client) genericAnswer(prompt string) string {
	sents := tokenize.Sentences(prompt)
	if len(sents) == 0 {
		return "I have no content to respond to."
	}
	n := 3
	if len(sents) < n {
		n = len(sents)
	}
	return strings.Join(sents[len(sents)-n:], " ")
}

// classifyZeroShot handles the direct-classification prompt for the *base*
// (untuned) model. Without the team's label taxonomy — which only the
// chain-of-thought options or fine-tuning supply — an unanchored model
// answers with a free-form descriptive phrase rather than a canonical
// category label, which is precisely why the paper's "GPT-4 Prompt"
// baseline collapses to 0.026 micro-F1 in Table 2: its phrasings almost
// never string-match the OCE-assigned labels.
func (c *Client) classifyZeroShot(prompt string, temperature float64) string {
	body := extractAfter(prompt, "Classify the root cause category")
	signals := topSignals(body, 2+c.rngFor(prompt).Intn(2))
	if len(signals) == 0 {
		return "Category: an unclassified service anomaly"
	}
	_ = temperature
	return "Category: an anomaly involving " + joinNaturally(signals)
}

// embedLexical is the model's internal text representation used for option
// scoring: a hashed bag-of-words with sub-linear term weighting. It is
// intentionally lexical — the simulacrum "understands" two incident
// summaries to match when they share distinctive technical vocabulary.
func (c *Client) embedLexical(text string) []float64 {
	const dim = 256
	v := make([]float64, dim)
	for _, w := range tokenize.Words(text) {
		if len(w) < 3 {
			continue
		}
		h := fnv.New32a()
		h.Write([]byte(w))
		idx := int(h.Sum32()) % dim
		if idx < 0 {
			idx += dim
		}
		// Longer tokens (exception names, counters) are more distinctive.
		v[idx] += math.Sqrt(float64(len(w)))
	}
	return v
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
