package simgpt

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/llm"
)

// FineTune implements llm.FineTuner by fitting per-label centroids in the
// embedding space — the closed-form analogue of supervised tuning on a
// frozen representation. Only GPT-3.5 supports tuning, matching the paper
// ("GPT-4 is currently not available for fine-tuning").
//
// The returned cost models the paper's Table-2 training time (3192 s): a
// large fixed job cost plus a per-example term.
func (c *Client) FineTune(examples []llm.Example) (llm.Client, time.Duration, error) {
	if c.model != GPT35 {
		return nil, 0, fmt.Errorf("simgpt: %s is not available for fine-tuning", c.model)
	}
	if len(examples) == 0 {
		return nil, 0, fmt.Errorf("simgpt: no fine-tuning examples")
	}
	dim := c.cap.embedDim
	centroids := make(map[string][]float64)
	counts := make(map[string]int)
	for _, ex := range examples {
		v, err := c.Embed(ex.Input)
		if err != nil {
			return nil, 0, err
		}
		cv, ok := centroids[ex.Label]
		if !ok {
			cv = make([]float64, dim)
			centroids[ex.Label] = cv
		}
		for i := range cv {
			cv[i] += v[i]
		}
		counts[ex.Label]++
	}
	for label, cv := range centroids {
		n := float64(counts[label])
		for i := range cv {
			cv[i] /= n
		}
	}
	cost := 2500*time.Second + time.Duration(len(examples))*time.Second
	return &tunedClient{base: c, centroids: centroids}, cost, nil
}

// tunedClient is the fine-tuned endpoint: classification prompts answer
// with the nearest-centroid label; everything else defers to the base
// model.
type tunedClient struct {
	base      *Client
	centroids map[string][]float64
}

var _ llm.Client = (*tunedClient)(nil)

func (t *tunedClient) Name() string                      { return t.base.Name() + "-ft" }
func (t *tunedClient) ContextWindow() int                { return t.base.ContextWindow() }
func (t *tunedClient) CountTokens(s string) int          { return t.base.CountTokens(s) }
func (t *tunedClient) Embed(s string) ([]float64, error) { return t.base.Embed(s) }

func (t *tunedClient) Complete(req llm.Request) (llm.Response, error) {
	prompt := joinMessages(req.Messages)
	if !strings.Contains(prompt, "Classify the root cause category") {
		return t.base.Complete(req)
	}
	promptTokens := t.base.CountTokens(prompt)
	if promptTokens > t.base.cap.contextWindow {
		return llm.Response{}, fmt.Errorf("simgpt: prompt of %d tokens exceeds context window", promptTokens)
	}
	body := extractAfter(prompt, "Classify the root cause category")
	v, err := t.base.Embed(body)
	if err != nil {
		return llm.Response{}, err
	}
	// A generatively fine-tuned model does not argmax over a clean head: it
	// emits label strings with instability that grows with the label space
	// ("such models are prone to generate more hallucinated results", §1).
	// Seeded noise on the match scores models that.
	rng := t.base.rngFor(prompt)
	noise := t.base.cap.noise * (0.6 + req.Temperature)
	bestLabel, bestSim := "", -1e9
	labels := make([]string, 0, len(t.centroids))
	for label := range t.centroids {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		sim := cosine(v, t.centroids[label]) + rng.NormFloat64()*noise
		if sim > bestSim {
			bestLabel, bestSim = label, sim
		}
	}
	out := "Category: " + bestLabel
	completionTokens := t.base.CountTokens(out)
	return llm.Response{
		Content:          out,
		PromptTokens:     promptTokens,
		CompletionTokens: completionTokens,
		ModelLatency:     t.base.latency(promptTokens + completionTokens),
	}, nil
}

// extractAfter returns the text following the first line that contains
// marker (the classification prompt places the incident text there).
func extractAfter(prompt, marker string) string {
	idx := strings.Index(prompt, marker)
	if idx < 0 {
		return prompt
	}
	rest := prompt[idx+len(marker):]
	if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
		rest = rest[nl+1:]
	}
	return strings.TrimSpace(rest)
}
