package simgpt

import (
	"hash/fnv"
	"math"

	"repro/internal/tokenize"
)

// Embed implements llm.Client: a signed hashed bag-of-words projection into
// the model's embedding dimensionality.
//
// This deliberately models why the paper's GPT-4 Embed. baseline trails the
// domain-trained FastText retriever (Table 2: 0.257 vs 0.766 micro-F1): a
// generic embedding weighs every token equally, so machine names, GUIDs and
// timestamps — which dominate incident text by volume — drown the few
// root-cause-bearing signals, whereas FastText trained on the incident
// corpus has learned which vocabulary co-occurs with which context.
func (c *Client) Embed(text string) ([]float64, error) {
	dim := c.cap.embedDim
	v := make([]float64, dim)
	for _, w := range tokenize.Words(text) {
		h := fnv.New32a()
		h.Write([]byte(w))
		sum := h.Sum32()
		idx := int(sum) % dim
		if idx < 0 {
			idx += dim
		}
		sign := 1.0
		if sum&0x80000000 != 0 {
			sign = -1.0
		}
		v[idx] += sign
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range v {
			v[i] /= norm
		}
	}
	return v, nil
}
