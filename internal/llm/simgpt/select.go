package simgpt

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"

	"repro/internal/tokenize"
)

// option is one parsed lettered demonstration from a Figure 9 prompt.
type option struct {
	letter   string
	body     string
	category string
}

var optionLineRe = regexp.MustCompile(`^([A-Z]): (.*)$`)

// parsePredictionPrompt extracts the Input section and the lettered options
// from a Figure 9 prompt.
func parsePredictionPrompt(prompt string) (input string, opts []option) {
	lines := strings.Split(prompt, "\n")
	var inOptions bool
	var cur *option
	var inputLines []string
	var inInput bool
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "Input:"):
			inInput = true
			inOptions = false
			inputLines = append(inputLines, strings.TrimPrefix(line, "Input:"))
			continue
		case strings.HasPrefix(line, "Options:"):
			inOptions = true
			inInput = false
			continue
		case strings.HasPrefix(line, "Context:"):
			inInput = false
			inOptions = false
			continue
		}
		if inOptions {
			if m := optionLineRe.FindStringSubmatch(line); m != nil {
				opts = append(opts, option{letter: m[1], body: m[2]})
				cur = &opts[len(opts)-1]
			} else if cur != nil {
				cur.body += " " + strings.TrimSpace(line)
			}
		} else if inInput {
			inputLines = append(inputLines, line)
		}
	}
	for i := range opts {
		if _, tail, ok := strings.Cut(opts[i].body, "category: "); ok {
			opts[i].category = strings.TrimSuffix(strings.TrimSpace(tail), ".")
		}
	}
	return strings.TrimSpace(strings.Join(inputLines, "\n")), opts
}

// selectOption implements the Figure 9 chain-of-thought behaviour: score
// every demonstration against the input with the model's internal text
// representation, pick the most likely same-root-cause incident, and
// explain; when no demonstration is convincing, answer option A ("Unseen
// incident") and coin a new category keyword, as the paper's Figure 11
// shows for the FullDisk incident.
func (c *Client) selectOption(prompt string, temperature float64) string {
	input, opts := parsePredictionPrompt(prompt)
	if len(opts) == 0 {
		return "Answer: A\nCategory: Unknown\nExplanation: no options were provided."
	}
	rng := c.rngFor(prompt)
	// Longer option lists dilute attention: scoring noise grows with the
	// number of demonstrations, which is why "more samples in the CoT
	// reasoning do not always incur an improvement" (§5.4 / Figure 12).
	noise := c.cap.noise * (0.4 + temperature) * (0.6 + 0.12*float64(len(opts)))

	scores := scoreOptions(input, opts)
	best, bestScore := -1, -1.0
	var unseenIdx int
	for i, o := range opts {
		if strings.HasPrefix(o.body, "Unseen incident") {
			unseenIdx = i
			continue
		}
		score := scores[i] + rng.NormFloat64()*noise
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 || bestScore < c.opts.UnseenThreshold {
		// Unseen: coin a category keyword from the input's own signals.
		keyword := SynthesizeCategory(input)
		return fmt.Sprintf("Answer: %s\nCategory: %s\nExplanation: %s",
			opts[unseenIdx].letter, keyword, c.explainUnseen(input, keyword))
	}
	chosen := opts[best]
	return fmt.Sprintf("Answer: %s\nCategory: %s\nExplanation: %s",
		chosen.letter, chosen.category, c.explainMatch(input, chosen))
}

// scoreOptions is the model's discriminative reading of a Figure 9 prompt:
// a weighted-cosine match between the input and every option where a
// token's weight combines its length (exception names and component
// identifiers are long) with its prompt-local rarity — vocabulary shared by
// every option (telemetry boilerplate) cannot discriminate between them and
// so carries almost no weight, mirroring how attention contrasts options.
func scoreOptions(input string, opts []option) []float64 {
	docs := make([]map[string]bool, 0, len(opts)+1)
	inputSet := tokenSet(input)
	docs = append(docs, inputSet)
	optSets := make([]map[string]bool, len(opts))
	for i, o := range opts {
		if strings.HasPrefix(o.body, "Unseen incident") {
			continue
		}
		optSets[i] = tokenSet(o.body)
		docs = append(docs, optSets[i])
	}
	df := make(map[string]int)
	for _, d := range docs {
		for tok := range d {
			df[tok]++
		}
	}
	n := float64(len(docs))
	weight := func(tok string) float64 {
		idf := math.Log(1 + n/float64(df[tok]))
		w := math.Sqrt(float64(len(tok))) * idf * idf
		// Instance details — counters, PIDs, machine names — are unique to
		// every incident but carry no root-cause signal; a competent reader
		// discounts them rather than treating them as rare evidence.
		if hasDigit(tok) {
			w *= 0.15
		}
		return w
	}
	norm := func(set map[string]bool) float64 {
		var s float64
		for tok := range set {
			w := weight(tok)
			s += w * w
		}
		return math.Sqrt(s)
	}
	inNorm := norm(inputSet)
	scores := make([]float64, len(opts))
	for i, set := range optSets {
		if set == nil {
			continue
		}
		var dot float64
		for tok := range set {
			if inputSet[tok] {
				w := weight(tok)
				dot += w * w
			}
		}
		d := inNorm * norm(set)
		if d > 0 {
			scores[i] = dot / d
		}
	}
	return scores
}

func tokenSet(text string) map[string]bool {
	set := make(map[string]bool)
	for _, w := range tokenize.Words(text) {
		if len(w) >= 3 {
			set[w] = true
		}
	}
	return set
}

// explainMatch names the shared distinctive vocabulary that drove the
// selection — the reasoning chain the CoT prompt elicits.
func (c *Client) explainMatch(input string, chosen option) string {
	shared := sharedSignals(input, chosen.body, 4)
	if len(shared) == 0 {
		return fmt.Sprintf("the overall diagnostic pattern most closely matches the historical incident labelled %s.", chosen.category)
	}
	return fmt.Sprintf("both incidents exhibit %s, which points to the same underlying root cause category %s.",
		joinNaturally(shared), chosen.category)
}

// explainUnseen produces Figure-11-style reasoning for a coined category.
func (c *Client) explainUnseen(input, keyword string) string {
	signals := topSignals(input, 3)
	if len(signals) == 0 {
		return fmt.Sprintf("none of the historical incidents share this diagnostic pattern, suggesting a new category %q.", keyword)
	}
	return fmt.Sprintf("the prediction of %q was made based on the occurrence of %s, which no historical incident in the options exhibits; these signals point to a previously unseen root cause.",
		keyword, joinNaturally(signals))
}

// sharedSignals returns up to n distinctive tokens appearing in both texts.
func sharedSignals(a, b string, n int) []string {
	inB := make(map[string]bool)
	for _, w := range tokenize.Words(b) {
		inB[w] = true
	}
	seen := make(map[string]bool)
	var out []string
	for _, w := range tokenize.Words(a) {
		if seen[w] || !inB[w] {
			continue
		}
		if len(w) >= 8 || signalWords[w] || hasDigit(w) && len(w) >= 4 {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i] < out[j]
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// topSignals returns the n most distinctive tokens of a text.
func topSignals(text string, n int) []string {
	seen := make(map[string]bool)
	var out []string
	for _, w := range tokenize.Words(text) {
		if seen[w] {
			continue
		}
		if len(w) >= 10 || signalWords[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i] < out[j]
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func joinNaturally(words []string) string {
	switch len(words) {
	case 0:
		return ""
	case 1:
		return words[0]
	case 2:
		return words[0] + " and " + words[1]
	default:
		return strings.Join(words[:len(words)-1], ", ") + ", and " + words[len(words)-1]
	}
}
