package simgpt

import (
	"sort"
	"strings"
	"unicode"
)

// RawTokens splits text into tokens preserving case, so CamelCase exception
// names survive for keyword synthesis.
func RawTokens(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

// curatedKeyword encodes the world knowledge a real LLM brings to naming a
// never-before-seen incident: characteristic signal combinations map to
// natural category phrasings (the paper's example: IO exceptions + crashes
// on a full disk yield "I/O Bottleneck" even though OCEs later label it
// "DiskFull").
func curatedKeyword(lower string) string {
	has := func(subs ...string) bool {
		for _, s := range subs {
			if !strings.Contains(lower, s) {
				return false
			}
		}
		return true
	}
	switch {
	case has("ioexception") || has("io exception") || (has("disk") && has("full")):
		return "I/O Bottleneck"
	case has("winsock") || (has("udp") && has("socket")):
		return "UDP Port Exhaustion"
	case has("certificate", "invalid") || has("tokens", "created"):
		return "Certificate Misconfiguration"
	case has("bogus") || has("suspicious", "tenant"):
		return "Tenant Abuse"
	case has("malicious") || has("exploit"):
		return "Security Exploit"
	case has("tenantsettingsnotfoundexception"):
		return "Invalid Tenant Config"
	case has("poisonmessage") || has("poisoned"):
		return "Poison Message Flood"
	case has("taskcanceledexception") || has("authentication service", "unreachable"):
		return "Dependency Unreachable"
	case has("delivery") && (has("blocked") || has("hang")):
		return "Delivery Pipeline Stall"
	case has("availability dropped") && has("nullreference"):
		return "Code Regression"
	}
	return ""
}

// wellKnownExceptions are the exception families a seasoned model (or
// engineer) recognizes and maps to a *conceptual* cause phrase instead of
// echoing the class name — the curatedKeyword table holds those phrasings.
// Exceptions outside this set are novel component failures, and the most
// informative keyword is the exception's own name (a new category keyword
// "to depict the new incident case", §5.3).
var wellKnownExceptions = map[string]bool{
	"IO": true, "TaskCanceled": true, "NullReference": true,
	"PoisonMessage": true, "TenantSettingsNotFound": true,
	"InformativeSocket": true, "MaliciousBlobSerialization": true,
}

// SynthesizeCategory coins a root-cause category keyword for a text whose
// category the model believes is unseen. Priority: a novel CamelCase
// exception name (suffix stripped); otherwise curated world-knowledge
// phrasings for well-known failure signatures; otherwise the most
// distinctive tokens.
func SynthesizeCategory(text string) string {
	// Exception-derived: count CamelCase *Exception tokens, ignoring
	// well-known families (those go through the curated phrasings).
	counts := make(map[string]int)
	for _, tok := range RawTokens(text) {
		if len(tok) > len("Exception") && strings.HasSuffix(tok, "Exception") {
			base := strings.TrimSuffix(tok, "Exception")
			if len(base) >= 8 && !wellKnownExceptions[base] {
				counts[base]++
			}
		}
	}
	lower := strings.ToLower(text)
	if len(counts) == 0 {
		if kw := curatedKeyword(lower); kw != "" {
			return kw
		}
	}
	if len(counts) > 0 {
		type kv struct {
			k string
			n int
		}
		var all []kv
		for k, n := range counts {
			all = append(all, kv{k, n})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].n != all[j].n {
				return all[i].n > all[j].n
			}
			return all[i].k < all[j].k
		})
		return all[0].k
	}
	// Fallback: title-case the two most distinctive tokens.
	signals := topSignals(text, 2)
	if len(signals) == 0 {
		return "UncategorizedAnomaly"
	}
	var b strings.Builder
	for _, s := range signals {
		b.WriteString(strings.ToUpper(s[:1]))
		b.WriteString(s[1:])
	}
	b.WriteString("Issue")
	return b.String()
}
