// Package llm defines the provider-agnostic large-language-model interface
// RCACopilot's prediction stage is written against.
//
// The paper drives OpenAI's GPT-3.5-turbo and GPT-4 through three
// operations: chat completion (summarization and chain-of-thought category
// selection), text embedding (the GPT-4 Embed. baseline), and fine-tuning
// (the Ahmed et al. baseline). The pipeline treats all three as black boxes
// — prompt in, text out — so any implementation of these interfaces plugs
// in; internal/llm/simgpt provides the offline simulacrum used here.
package llm

import (
	"time"
)

// Role values for chat messages.
const (
	RoleSystem    = "system"
	RoleUser      = "user"
	RoleAssistant = "assistant"
)

// Message is one chat turn.
type Message struct {
	Role    string
	Content string
}

// Request is a chat-completion request.
type Request struct {
	Messages    []Message
	Temperature float64 // 0 = deterministic
	MaxTokens   int     // completion budget; 0 = model default
}

// Response is a chat-completion result.
type Response struct {
	Content          string
	PromptTokens     int
	CompletionTokens int
	// ModelLatency is the modelled API round-trip this call would have
	// cost against the real service (tokens × per-token latency + base).
	// Callers charge it to a virtual clock; no real sleeping happens.
	ModelLatency time.Duration
}

// Client is a chat+embedding model endpoint.
type Client interface {
	// Name returns the model identifier (e.g. "gpt-4").
	Name() string
	// ContextWindow returns the maximum prompt+completion tokens.
	ContextWindow() int
	// CountTokens counts text against this model's tokenizer.
	CountTokens(text string) int
	// Complete runs a chat completion.
	Complete(req Request) (Response, error)
	// Embed maps text into the model's embedding space.
	Embed(text string) ([]float64, error)
}

// Example is one supervised fine-tuning pair.
type Example struct {
	Input string
	Label string
}

// FineTuner is implemented by models that support supervised fine-tuning
// (GPT-3.5 in the paper; "GPT-4 is currently not available for fine-tuning").
type FineTuner interface {
	// FineTune trains on the examples and returns the tuned client plus the
	// modelled training cost.
	FineTune(examples []Example) (Client, time.Duration, error)
}
