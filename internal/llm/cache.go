package llm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// Cached wraps a Client with a deterministic prompt cache: identical
// requests (same messages, temperature and token budget) return the stored
// response without re-invoking the model. The prediction stage re-summarizes
// historical incidents whenever ablations rebuild the store, so caching cuts
// repeated-experiment cost the same way response caching does against the
// real API. Cached is safe for concurrent use if the underlying client is.
type Cached struct {
	inner Client

	mu     sync.Mutex
	byKey  map[string]Response
	hits   int
	misses int
}

var _ Client = (*Cached)(nil)

// NewCached wraps client with an empty cache.
func NewCached(client Client) *Cached {
	return &Cached{inner: client, byKey: make(map[string]Response)}
}

// Name implements Client.
func (c *Cached) Name() string { return c.inner.Name() }

// ContextWindow implements Client.
func (c *Cached) ContextWindow() int { return c.inner.ContextWindow() }

// CountTokens implements Client.
func (c *Cached) CountTokens(text string) int { return c.inner.CountTokens(text) }

// Embed implements Client (embeddings are deterministic and cheap; they
// pass through uncached).
func (c *Cached) Embed(text string) ([]float64, error) { return c.inner.Embed(text) }

// Complete implements Client with request-keyed memoization. Only
// deterministic requests (temperature 0) are cached; sampled requests pass
// through so stability experiments still observe model variance.
func (c *Cached) Complete(req Request) (Response, error) {
	if req.Temperature != 0 {
		return c.inner.Complete(req)
	}
	key := requestKey(req)
	c.mu.Lock()
	if resp, ok := c.byKey[key]; ok {
		c.hits++
		c.mu.Unlock()
		return resp, nil
	}
	c.misses++
	c.mu.Unlock()

	resp, err := c.inner.Complete(req)
	if err != nil {
		return Response{}, err
	}
	c.mu.Lock()
	c.byKey[key] = resp
	c.mu.Unlock()
	return resp, nil
}

// Stats returns cache hit/miss counts.
func (c *Cached) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached responses.
func (c *Cached) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

func requestKey(req Request) string {
	h := sha256.New()
	fmt.Fprintf(h, "%f|%d|", req.Temperature, req.MaxTokens)
	for _, m := range req.Messages {
		fmt.Fprintf(h, "%s\x00%s\x00", m.Role, m.Content)
	}
	return hex.EncodeToString(h.Sum(nil))
}
