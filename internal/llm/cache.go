package llm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"repro/internal/parallel"
)

// Cached wraps a Client with a deterministic prompt cache: identical
// requests (same messages, temperature and token budget) return the stored
// response without re-invoking the model. The prediction stage re-summarizes
// historical incidents whenever ablations rebuild the store, so caching cuts
// repeated-experiment cost the same way response caching does against the
// real API. Cached is safe for concurrent use if the underlying client is.
//
// Because every real model call already funnels through it, Cached is also
// where per-call wall latency is measured (an exponentially weighted moving
// average over inner Complete/Embed calls — cache hits cost no I/O and are
// excluded). EnableAutoTune feeds that average into parallel.AutoTune so a
// deployment against a network-bound endpoint automatically raises the
// worker budget above the CPU-bound default; the simulated substrates
// answer in microseconds and leave the budget untouched.
type Cached struct {
	inner Client

	mu     sync.Mutex
	byKey  map[string]Response
	hits   int
	misses int

	latMu    sync.Mutex
	ewmaWall time.Duration
	observed int
	// autoTuneEvery > 0 re-tunes the shared worker budget after every
	// that-many observed inner calls.
	autoTuneEvery int
}

var _ Client = (*Cached)(nil)

// NewCached wraps client with an empty cache.
func NewCached(client Client) *Cached {
	return &Cached{inner: client, byKey: make(map[string]Response)}
}

// Name implements Client.
func (c *Cached) Name() string { return c.inner.Name() }

// ContextWindow implements Client.
func (c *Cached) ContextWindow() int { return c.inner.ContextWindow() }

// CountTokens implements Client.
func (c *Cached) CountTokens(text string) int { return c.inner.CountTokens(text) }

// Embed implements Client (embeddings are deterministic and cheap; they
// pass through uncached, but still contribute latency observations).
func (c *Cached) Embed(text string) ([]float64, error) {
	start := time.Now()
	v, err := c.inner.Embed(text)
	if err == nil {
		c.observe(time.Since(start))
	}
	return v, err
}

// Complete implements Client with request-keyed memoization. Only
// deterministic requests (temperature 0) are cached; sampled requests pass
// through so stability experiments still observe model variance.
func (c *Cached) Complete(req Request) (Response, error) {
	if req.Temperature != 0 {
		start := time.Now()
		resp, err := c.inner.Complete(req)
		if err == nil {
			c.observe(time.Since(start))
		}
		return resp, err
	}
	key := requestKey(req)
	c.mu.Lock()
	if resp, ok := c.byKey[key]; ok {
		c.hits++
		c.mu.Unlock()
		return resp, nil
	}
	c.misses++
	c.mu.Unlock()

	start := time.Now()
	resp, err := c.inner.Complete(req)
	if err != nil {
		return Response{}, err
	}
	c.observe(time.Since(start))
	c.mu.Lock()
	c.byKey[key] = resp
	c.mu.Unlock()
	return resp, nil
}

// observe folds one inner-call wall latency into the moving average and
// periodically re-tunes the shared worker budget when auto-tuning is on.
func (c *Cached) observe(d time.Duration) {
	c.latMu.Lock()
	if c.observed == 0 {
		c.ewmaWall = d
	} else {
		// EWMA with α = 1/8: stable against outliers, adapts within a few
		// dozen calls when the backend's character changes.
		c.ewmaWall += (d - c.ewmaWall) / 8
	}
	c.observed++
	tune := c.autoTuneEvery > 0 && c.observed%c.autoTuneEvery == 0
	mean := c.ewmaWall
	c.latMu.Unlock()
	if tune {
		parallel.AutoTune(mean)
	}
}

// ObservedLatency returns the moving-average wall latency of inner model
// calls and how many were observed (cache hits excluded).
func (c *Cached) ObservedLatency() (mean time.Duration, calls int) {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	return c.ewmaWall, c.observed
}

// EnableAutoTune re-tunes the shared internal/parallel worker budget from
// the observed call latency after every `every` inner calls (default 32
// when <= 0) — the auto-sizing hook for I/O-bound backends. Idempotent;
// parallel.BudgetEnv pins the budget and turns the re-tune into a no-op.
// DisableAutoTune reverses it.
func (c *Cached) EnableAutoTune(every int) {
	if every <= 0 {
		every = 32
	}
	c.latMu.Lock()
	c.autoTuneEvery = every
	c.latMu.Unlock()
}

// DisableAutoTune stops this client from re-tuning the worker budget.
// Latency observation continues; the budget keeps its current value.
func (c *Cached) DisableAutoTune() {
	c.latMu.Lock()
	c.autoTuneEvery = 0
	c.latMu.Unlock()
}

// Stats returns cache hit/miss counts.
func (c *Cached) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached responses.
func (c *Cached) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

func requestKey(req Request) string {
	h := sha256.New()
	fmt.Fprintf(h, "%f|%d|", req.Temperature, req.MaxTokens)
	for _, m := range req.Messages {
		fmt.Fprintf(h, "%s\x00%s\x00", m.Role, m.Content)
	}
	return hex.EncodeToString(h.Sum(nil))
}
