package llm

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/parallel"
)

// countingClient is a minimal Client that counts Complete invocations.
type countingClient struct {
	mu    sync.Mutex
	calls int
}

func (c *countingClient) Name() string             { return "counting" }
func (c *countingClient) ContextWindow() int       { return 1024 }
func (c *countingClient) CountTokens(s string) int { return len(s) / 4 }
func (c *countingClient) Embed(string) ([]float64, error) {
	return []float64{1}, nil
}
func (c *countingClient) Complete(req Request) (Response, error) {
	c.mu.Lock()
	c.calls++
	n := c.calls
	c.mu.Unlock()
	return Response{
		Content:      fmt.Sprintf("reply-%d to %s", n, req.Messages[0].Content),
		ModelLatency: time.Second,
	}, nil
}

func req(content string, temp float64) Request {
	return Request{Messages: []Message{{Role: RoleUser, Content: content}}, Temperature: temp}
}

func TestCachedMemoizesDeterministicRequests(t *testing.T) {
	inner := &countingClient{}
	c := NewCached(inner)
	r1, err := c.Complete(req("hello", 0))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Complete(req("hello", 0))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Content != r2.Content {
		t.Fatal("cached response must be identical")
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d, want 1", inner.calls)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 || c.Len() != 1 {
		t.Fatalf("stats = %d/%d len=%d", hits, misses, c.Len())
	}
}

func TestCachedDistinguishesRequests(t *testing.T) {
	inner := &countingClient{}
	c := NewCached(inner)
	if _, err := c.Complete(req("a", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Complete(req("b", 0)); err != nil {
		t.Fatal(err)
	}
	withBudget := req("a", 0)
	withBudget.MaxTokens = 5
	if _, err := c.Complete(withBudget); err != nil {
		t.Fatal(err)
	}
	if inner.calls != 3 {
		t.Fatalf("inner calls = %d, want 3 (distinct requests)", inner.calls)
	}
}

func TestCachedBypassesSampledRequests(t *testing.T) {
	inner := &countingClient{}
	c := NewCached(inner)
	if _, err := c.Complete(req("x", 0.7)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Complete(req("x", 0.7)); err != nil {
		t.Fatal(err)
	}
	if inner.calls != 2 {
		t.Fatalf("sampled requests must not be cached: calls = %d", inner.calls)
	}
	if c.Len() != 0 {
		t.Fatal("sampled requests must not populate the cache")
	}
}

func TestCachedDelegatesMetadata(t *testing.T) {
	c := NewCached(&countingClient{})
	if c.Name() != "counting" || c.ContextWindow() != 1024 || c.CountTokens("12345678") != 2 {
		t.Fatal("metadata delegation broken")
	}
	v, err := c.Embed("text")
	if err != nil || len(v) != 1 {
		t.Fatal("embed delegation broken")
	}
}

func TestCachedConcurrentAccess(t *testing.T) {
	c := NewCached(&countingClient{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := c.Complete(req(fmt.Sprintf("p-%d", j%5), 0)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Len() != 5 {
		t.Fatalf("cache len = %d, want 5", c.Len())
	}
}

// slowClient injects a fixed wall latency per inner call so latency
// observation is testable.
type slowClient struct {
	countingClient
	delay time.Duration
}

func (s *slowClient) Complete(req Request) (Response, error) {
	time.Sleep(s.delay)
	return s.countingClient.Complete(req)
}

func (s *slowClient) Embed(text string) ([]float64, error) {
	time.Sleep(s.delay)
	return s.countingClient.Embed(text)
}

func TestObservedLatencyCountsInnerCallsOnly(t *testing.T) {
	c := NewCached(&slowClient{delay: 2 * time.Millisecond})
	if _, err := c.Complete(req("hello", 0)); err != nil {
		t.Fatal(err)
	}
	mean, calls := c.ObservedLatency()
	if calls != 1 || mean < time.Millisecond {
		t.Fatalf("after miss: mean=%v calls=%d", mean, calls)
	}
	// A cache hit costs no I/O and must not contribute an observation.
	if _, err := c.Complete(req("hello", 0)); err != nil {
		t.Fatal(err)
	}
	if _, calls = c.ObservedLatency(); calls != 1 {
		t.Fatalf("cache hit was observed: calls=%d", calls)
	}
	// Embeds and sampled completions pass through and are observed.
	if _, err := c.Embed("text"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Complete(req("sampled", 0.7)); err != nil {
		t.Fatal(err)
	}
	if _, calls = c.ObservedLatency(); calls != 3 {
		t.Fatalf("embed/sampled not observed: calls=%d", calls)
	}
}

func TestEnableAutoTuneRaisesBudgetForSlowBackend(t *testing.T) {
	prev := parallel.Limit()
	t.Cleanup(func() { parallel.SetLimit(prev) })
	parallel.SetLimit(parallel.DefaultLimit())

	c := NewCached(&slowClient{delay: 12 * time.Millisecond})
	c.EnableAutoTune(2)
	for i := 0; i < 2; i++ {
		if _, err := c.Complete(req(fmt.Sprintf("p-%d", i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if got := parallel.Limit(); got <= parallel.DefaultLimit() {
		t.Fatalf("auto-tune left budget at %d for a 12ms backend (default %d)", got, parallel.DefaultLimit())
	}
}

func TestAutoTuneLeavesFastBackendAlone(t *testing.T) {
	prev := parallel.Limit()
	t.Cleanup(func() { parallel.SetLimit(prev) })
	parallel.SetLimit(parallel.DefaultLimit())

	c := NewCached(&countingClient{}) // simulated: microsecond calls
	c.EnableAutoTune(1)
	for i := 0; i < 4; i++ {
		if _, err := c.Complete(req(fmt.Sprintf("q-%d", i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if got := parallel.Limit(); got != parallel.DefaultLimit() {
		t.Fatalf("auto-tune moved budget to %d for a CPU-bound backend", got)
	}
}
