// Package features provides the TF-IDF vectorizer that feeds the XGBoost
// baseline (Table 2). The paper applies XGBoost directly to incident text;
// gradient-boosted trees need a fixed-width numeric representation, and
// TF-IDF over the training vocabulary is the standard choice.
package features

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tokenize"
)

// TFIDF is a fitted vectorizer. Fit selects the vocabulary from training
// documents; Transform maps any document onto that fixed feature space.
type TFIDF struct {
	vocab map[string]int
	terms []string
	idf   []float64
}

// FitTFIDF learns a vocabulary of at most maxFeatures terms (highest
// document frequency first, ties lexicographic) and their smoothed IDF
// weights.
func FitTFIDF(docs []string, maxFeatures int) (*TFIDF, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("features: no documents to fit")
	}
	if maxFeatures <= 0 {
		maxFeatures = 256
	}
	df := make(map[string]int)
	for _, d := range docs {
		seen := make(map[string]bool)
		for _, w := range tokenize.Words(d) {
			if !seen[w] {
				seen[w] = true
				df[w]++
			}
		}
	}
	type tf struct {
		term string
		df   int
	}
	all := make([]tf, 0, len(df))
	for t, c := range df {
		all = append(all, tf{t, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].df != all[j].df {
			return all[i].df > all[j].df
		}
		return all[i].term < all[j].term
	})
	if len(all) > maxFeatures {
		all = all[:maxFeatures]
	}
	v := &TFIDF{vocab: make(map[string]int, len(all))}
	n := float64(len(docs))
	for i, t := range all {
		v.vocab[t.term] = i
		v.terms = append(v.terms, t.term)
		v.idf = append(v.idf, math.Log((1+n)/(1+float64(t.df)))+1)
	}
	return v, nil
}

// NumFeatures returns the fitted vocabulary size.
func (v *TFIDF) NumFeatures() int { return len(v.terms) }

// Terms returns the fitted vocabulary in feature order.
func (v *TFIDF) Terms() []string { return append([]string(nil), v.terms...) }

// Transform maps a document to its L2-normalized TF-IDF vector.
func (v *TFIDF) Transform(doc string) []float64 {
	out := make([]float64, len(v.terms))
	words := tokenize.Words(doc)
	if len(words) == 0 {
		return out
	}
	for _, w := range words {
		if i, ok := v.vocab[w]; ok {
			out[i]++
		}
	}
	var norm float64
	for i := range out {
		if out[i] > 0 {
			out[i] = (1 + math.Log(out[i])) * v.idf[i]
			norm += out[i] * out[i]
		}
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range out {
			out[i] /= norm
		}
	}
	return out
}

// TransformAll maps every document.
func (v *TFIDF) TransformAll(docs []string) [][]float64 {
	out := make([][]float64, len(docs))
	for i, d := range docs {
		out[i] = v.Transform(d)
	}
	return out
}
