package features

import (
	"math"
	"testing"
)

func docs() []string {
	return []string{
		"udp socket exhausted on hub port",
		"udp socket count high on transport",
		"disk volume full io exception",
		"disk usage critical volume full",
		"udp port socket winsock error",
	}
}

func TestFitSelectsByDocumentFrequency(t *testing.T) {
	v, err := FitTFIDF(docs(), 4)
	if err != nil {
		t.Fatalf("FitTFIDF: %v", err)
	}
	if v.NumFeatures() != 4 {
		t.Fatalf("NumFeatures = %d, want 4", v.NumFeatures())
	}
	terms := v.Terms()
	// "udp" and "socket" each appear in 3 docs; they must be selected.
	found := map[string]bool{}
	for _, term := range terms {
		found[term] = true
	}
	if !found["udp"] || !found["socket"] {
		t.Fatalf("highest-DF terms missing from vocabulary: %v", terms)
	}
}

func TestTransformL2Normalized(t *testing.T) {
	v, err := FitTFIDF(docs(), 16)
	if err != nil {
		t.Fatal(err)
	}
	x := v.Transform("udp socket exhausted volume")
	var norm float64
	for _, f := range x {
		norm += f * f
	}
	if math.Abs(math.Sqrt(norm)-1) > 1e-9 {
		t.Fatalf("L2 norm = %f, want 1", math.Sqrt(norm))
	}
}

func TestTransformUnknownWordsZero(t *testing.T) {
	v, err := FitTFIDF(docs(), 16)
	if err != nil {
		t.Fatal(err)
	}
	x := v.Transform("quantum entanglement flux")
	for i, f := range x {
		if f != 0 {
			t.Fatalf("feature %d = %f for fully-OOV doc, want 0", i, f)
		}
	}
	empty := v.Transform("")
	for _, f := range empty {
		if f != 0 {
			t.Fatal("empty doc should map to zero vector")
		}
	}
}

func TestRareTermsGetHigherIDF(t *testing.T) {
	v, err := FitTFIDF(docs(), 32)
	if err != nil {
		t.Fatal(err)
	}
	// "udp" appears in 3 docs, "winsock" in 1: a doc containing only each
	// should weight the rarer term higher after normalization is removed
	// (single-term docs have norm 1 either way, so compare raw idf via
	// two-term doc).
	x := v.Transform("udp winsock")
	var udpW, winsockW float64
	for i, term := range v.Terms() {
		switch term {
		case "udp":
			udpW = x[i]
		case "winsock":
			winsockW = x[i]
		}
	}
	if winsockW <= udpW {
		t.Fatalf("idf ordering wrong: winsock=%f udp=%f", winsockW, udpW)
	}
}

func TestTransformAll(t *testing.T) {
	v, err := FitTFIDF(docs(), 8)
	if err != nil {
		t.Fatal(err)
	}
	xs := v.TransformAll(docs())
	if len(xs) != len(docs()) {
		t.Fatalf("TransformAll returned %d rows", len(xs))
	}
	for _, x := range xs {
		if len(x) != v.NumFeatures() {
			t.Fatal("row width mismatch")
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitTFIDF(nil, 8); err == nil {
		t.Fatal("empty corpus should fail")
	}
}

func TestFitDefaultMaxFeatures(t *testing.T) {
	v, err := FitTFIDF(docs(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumFeatures() == 0 {
		t.Fatal("default maxFeatures should keep terms")
	}
}
