package tokenize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestWordsBasics(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Total UDP socket count: 15276", []string{"total", "udp", "socket", "count", "15276"}},
		{"WinSock error: 11001!", []string{"winsock", "error", "11001"}},
		{"", nil},
		{"   \n\t ", nil},
		{"Transport.exe, 203736", []string{"transport", "exe", "203736"}},
		{"CamelCaseStaysOneWord", []string{"camelcasestaysoneword"}},
	}
	for _, tc := range cases {
		if got := Words(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Words(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestWordCount(t *testing.T) {
	if got := WordCount("a b c"); got != 3 {
		t.Fatalf("WordCount = %d, want 3", got)
	}
}

func TestSentences(t *testing.T) {
	in := "Probe failed. Host unknown!\nTotal count 15276? trailing"
	got := Sentences(in)
	want := []string{"Probe failed.", "Host unknown!", "Total count 15276?", "trailing"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sentences = %v, want %v", got, want)
	}
}

func TestSentencesEmpty(t *testing.T) {
	if got := Sentences("  \n \n"); got != nil {
		t.Fatalf("Sentences on blank = %v, want nil", got)
	}
}

func corpus() []string {
	return []string{
		"the probe result from the backend machine is a failure",
		"the probe has failed twice on the backend machine",
		"total udp socket count by process and process id",
		"error connecting to host winsock error encountered",
		"messages queued for mailbox delivery exceeded the limit",
		"the udp hub ports on the machine had run out",
	}
}

func TestLearnProducesMerges(t *testing.T) {
	b := Learn(corpus(), 100)
	if b.NumMerges() == 0 {
		t.Fatal("expected merges to be learned from a repetitive corpus")
	}
	if b.NumMerges() > 100 {
		t.Fatalf("NumMerges = %d exceeds requested 100", b.NumMerges())
	}
}

func TestLearnDeterministic(t *testing.T) {
	a := Learn(corpus(), 64)
	b := Learn(corpus(), 64)
	text := "the probe result from the backend machine"
	if !reflect.DeepEqual(a.Encode(text), b.Encode(text)) {
		t.Fatal("two Learn runs over the same corpus must encode identically")
	}
}

func TestEncodeCompressesFrequentWords(t *testing.T) {
	b := Learn(corpus(), 200)
	// "the" is the most frequent word; it should encode to few tokens.
	if n := len(b.EncodeWord("the")); n > 2 {
		t.Errorf("EncodeWord(the) produced %d tokens, want <= 2", n)
	}
	// Count must be <= character count for in-vocabulary text.
	text := "the probe failed on the machine"
	if b.Count(text) >= len(text) {
		t.Errorf("Count(%q) = %d, expected compression below char count %d",
			text, b.Count(text), len(text))
	}
}

func TestCountMatchesEncodeLen(t *testing.T) {
	b := Learn(corpus(), 64)
	text := "udp socket count by process"
	if got, want := b.Count(text), len(b.Encode(text)); got != want {
		t.Fatalf("Count = %d, len(Encode) = %d", got, want)
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	b := Learn(corpus(), 64)
	text := "total udp socket count by process"
	if got := b.Decode(b.Encode(text)); got != text {
		t.Fatalf("Decode(Encode(%q)) = %q", text, got)
	}
}

func TestZeroMergeBPEFallsBackToChars(t *testing.T) {
	b := NewBPE()
	toks := b.EncodeWord("abc")
	want := []string{"a", "b", "c</w>"}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("EncodeWord = %v, want %v", toks, want)
	}
	if got := b.Decode(toks); got != "abc" {
		t.Fatalf("Decode = %q, want abc", got)
	}
}

// Property: Decode∘Encode is the identity on normalized text (lowercase
// words joined by single spaces), for both trained and untrained BPE.
func TestQuickRoundTripNormalizedText(t *testing.T) {
	trained := Learn(corpus(), 128)
	empty := NewBPE()
	f := func(raw string) bool {
		normalized := strings.Join(Words(raw), " ")
		return trained.Decode(trained.Encode(normalized)) == normalized &&
			empty.Decode(empty.Encode(normalized)) == normalized
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: token counts are additive over concatenation with a separator.
func TestQuickCountAdditive(t *testing.T) {
	b := Learn(corpus(), 128)
	f := func(x, y string) bool {
		return b.Count(x+" "+y) == b.Count(x)+b.Count(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateTokensMonotoneInLength(t *testing.T) {
	short := EstimateTokens("probe failed")
	long := EstimateTokens("probe failed on the backend machine with winsock error eleven thousand one")
	if short <= 0 || long <= short {
		t.Fatalf("EstimateTokens: short=%d long=%d", short, long)
	}
}

func TestEstimateTokensLongWordsCostMore(t *testing.T) {
	if EstimateTokens("internationalization") <= EstimateTokens("cat") {
		t.Fatal("longer words should estimate to more subword tokens")
	}
}
