// Package tokenize provides the text tokenization used across RCACopilot:
// word-level tokenization for embedding models, and a byte-pair-encoding
// (BPE) subword tokenizer used to count tokens against LLM context budgets.
//
// The paper counts prompt tokens with OpenAI's tiktoken ("we employ the
// tiktoken tokenizer to count text tokens", §4.2.3) and bounds summaries to
// 120-140 words. tiktoken is a closed vocabulary; this package substitutes
// a BPE tokenizer whose merges are learned deterministically from a corpus,
// exposing the same operations the pipeline needs: Encode, Decode and Count.
package tokenize

import (
	"sort"
	"strings"
	"unicode"
)

// Words splits text into lowercase word tokens. Letters and digits are
// kept; every other rune is a separator. Runs of digits are preserved as
// single tokens so identifiers like "11001" survive.
func Words(text string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return out
}

// WordCount returns the number of word tokens in text.
func WordCount(text string) int { return len(Words(text)) }

// Sentences splits text into sentence-ish units on newlines and on terminal
// punctuation followed by whitespace, so dotted identifiers ("Transport.exe",
// "System.IO.IOException") and decimals ("0.85") stay intact. Used by the
// extractive summarizer.
func Sentences(text string) []string {
	rs := []rune(text)
	var out []string
	var cur strings.Builder
	flush := func() {
		s := strings.TrimSpace(cur.String())
		if s != "" {
			out = append(out, s)
		}
		cur.Reset()
	}
	for i, r := range rs {
		switch r {
		case '\n':
			flush()
		case '.', '!', '?':
			cur.WriteRune(r)
			if i+1 == len(rs) || rs[i+1] == ' ' || rs[i+1] == '\t' || rs[i+1] == '\n' {
				flush()
			}
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

// endOfWord marks a word-final subword unit inside the BPE vocabulary.
const endOfWord = "</w>"

// pair is an adjacent symbol pair considered for merging.
type pair struct{ a, b string }

// BPE is a byte-pair-encoding subword tokenizer. Merges are learned with
// Learn; the zero value encodes every word as its characters. BPE values
// are immutable after Learn and safe for concurrent use.
type BPE struct {
	ranks map[pair]int // merge priority; lower rank merges first
}

// NewBPE returns a tokenizer with no merges (pure character fallback).
func NewBPE() *BPE { return &BPE{ranks: map[pair]int{}} }

// Learn builds a merge table from the corpus. numMerges bounds the number
// of merge rules; learning stops early when no pair occurs twice. Learning
// is deterministic: frequency ties break lexicographically.
func Learn(corpus []string, numMerges int) *BPE {
	// Word frequency table.
	wordFreq := make(map[string]int)
	for _, doc := range corpus {
		for _, w := range Words(doc) {
			wordFreq[w]++
		}
	}
	// Represent each distinct word as its current symbol sequence.
	type entry struct {
		syms []string
		freq int
	}
	entries := make([]entry, 0, len(wordFreq))
	words := make([]string, 0, len(wordFreq))
	for w := range wordFreq {
		words = append(words, w)
	}
	sort.Strings(words)
	for _, w := range words {
		syms := splitChars(w)
		entries = append(entries, entry{syms: syms, freq: wordFreq[w]})
	}

	ranks := make(map[pair]int, numMerges)
	for merge := 0; merge < numMerges; merge++ {
		counts := make(map[pair]int)
		for _, e := range entries {
			for i := 0; i+1 < len(e.syms); i++ {
				counts[pair{e.syms[i], e.syms[i+1]}] += e.freq
			}
		}
		best, bestN := pair{}, 1 // require frequency >= 2
		for p, n := range counts {
			if n > bestN || (n == bestN && bestN > 1 && lessPair(p, best)) {
				best, bestN = p, n
			}
		}
		if bestN < 2 {
			break
		}
		ranks[best] = merge
		merged := best.a + best.b
		for i := range entries {
			entries[i].syms = applyMerge(entries[i].syms, best, merged)
		}
	}
	return &BPE{ranks: ranks}
}

func lessPair(p, q pair) bool {
	if p.a != q.a {
		return p.a < q.a
	}
	return p.b < q.b
}

func splitChars(w string) []string {
	rs := []rune(w)
	syms := make([]string, len(rs))
	for i, r := range rs {
		syms[i] = string(r)
	}
	if n := len(syms); n > 0 {
		syms[n-1] += endOfWord
	}
	return syms
}

func applyMerge(syms []string, p pair, merged string) []string {
	out := syms[:0]
	for i := 0; i < len(syms); i++ {
		if i+1 < len(syms) && syms[i] == p.a && syms[i+1] == p.b {
			out = append(out, merged)
			i++
		} else {
			out = append(out, syms[i])
		}
	}
	return out
}

// EncodeWord returns the subword tokens of a single (already normalized)
// word by applying learned merges in rank order.
func (b *BPE) EncodeWord(w string) []string {
	syms := splitChars(w)
	if len(syms) < 2 {
		return syms
	}
	for {
		bestIdx, bestRank := -1, int(^uint(0)>>1)
		for i := 0; i+1 < len(syms); i++ {
			if r, ok := b.ranks[pair{syms[i], syms[i+1]}]; ok && r < bestRank {
				bestIdx, bestRank = i, r
			}
		}
		if bestIdx < 0 {
			return syms
		}
		merged := syms[bestIdx] + syms[bestIdx+1]
		syms = append(syms[:bestIdx], append([]string{merged}, syms[bestIdx+2:]...)...)
		if len(syms) < 2 {
			return syms
		}
	}
}

// Encode tokenizes text into subword tokens.
func (b *BPE) Encode(text string) []string {
	var out []string
	for _, w := range Words(text) {
		out = append(out, b.EncodeWord(w)...)
	}
	return out
}

// Decode reconstructs the normalized text (lowercased words separated by
// single spaces) from subword tokens.
func (b *BPE) Decode(tokens []string) string {
	var sb strings.Builder
	for _, t := range tokens {
		if w, ok := strings.CutSuffix(t, endOfWord); ok {
			sb.WriteString(w)
			sb.WriteByte(' ')
		} else {
			sb.WriteString(t)
		}
	}
	return strings.TrimRight(sb.String(), " ")
}

// Count returns the number of subword tokens in text. This is the unit all
// LLM context budgeting in the pipeline uses.
func (b *BPE) Count(text string) int {
	n := 0
	for _, w := range Words(text) {
		n += len(b.EncodeWord(w))
	}
	return n
}

// NumMerges reports how many merge rules the tokenizer learned.
func (b *BPE) NumMerges() int { return len(b.ranks) }

// EstimateTokens approximates a subword token count without a learned
// vocabulary, using the ~1.3 tokens/word ratio typical of English prose.
// The pipeline uses it only before a corpus-trained BPE is available.
func EstimateTokens(text string) int {
	words := Words(text)
	n := 0
	for _, w := range words {
		n += 1 + len(w)/6
	}
	return n
}
