package core

import (
	"runtime"
	"testing"

	"repro/internal/incident"
	"repro/internal/vectordb"
)

// TestShardedCopilotMatchesFlat wires a sharded index through the full
// Learn/Predict path and requires predictions identical to a flat-store
// copilot over the same history — the core-level slice of the tentpole
// equivalence contract.
func TestShardedCopilotMatchesFlat(t *testing.T) {
	e := getEnv(t)
	flat := newCopilot(t, Config{Shards: 1})
	sharded := newCopilot(t, Config{Shards: 7})
	ivf := newCopilot(t, Config{Shards: 5, Partitioner: PartitionIVF})

	if _, ok := flat.Index().(*vectordb.DB); !ok {
		t.Fatalf("Shards=1 index is %T, want flat", flat.Index())
	}
	if _, ok := sharded.Index().(*vectordb.Sharded); !ok {
		t.Fatalf("Shards=7 index is %T, want sharded", sharded.Index())
	}

	const history = 120
	for i := 0; i < history; i++ {
		inc := e.corpus.Incidents[i]
		for _, c := range []*Copilot{flat, sharded, ivf} {
			if err := c.Learn(inc.Clone()); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The IVF copilot trains its quantizer from the stored vectors (Learn
	// alone never retrains; batch ingest does it automatically).
	if s, ok := ivf.Index().(*vectordb.Sharded); !ok {
		t.Fatalf("ivf index is %T", ivf.Index())
	} else if err := s.TrainIVF(0); err != nil {
		t.Fatal(err)
	}

	for probe := history; probe < history+5; probe++ {
		want := e.corpus.Incidents[probe].Clone()
		want.Summary, want.Predicted = "", ""
		res, err := flat.Predict(want)
		if err != nil {
			t.Fatal(err)
		}
		for name, c := range map[string]*Copilot{"sharded": sharded, "ivf": ivf} {
			got := e.corpus.Incidents[probe].Clone()
			got.Summary, got.Predicted = "", ""
			gres, err := c.Predict(got)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if gres.Category != res.Category || gres.Explanation != res.Explanation || gres.Unseen != res.Unseen {
				t.Fatalf("%s probe %d diverged: %+v vs flat %+v", name, probe, gres, res)
			}
		}
	}
}

// TestLearnBatchTrainsIVFPartitioner pins the auto-training hook: after a
// batch ingest under PartitionIVF the index runs on a trained quantizer.
func TestLearnBatchTrainsIVFPartitioner(t *testing.T) {
	e := getEnv(t)
	c := newCopilot(t, Config{Shards: 4, Partitioner: PartitionIVF})
	incs := e.corpus.Incidents[:40]
	clones := make([]*incident.Incident, len(incs))
	for i, in := range incs {
		clones[i] = in.Clone()
	}
	if err := c.LearnBatch(clones, 2); err != nil {
		t.Fatal(err)
	}
	s, ok := c.Index().(*vectordb.Sharded)
	if !ok {
		t.Fatalf("index is %T", c.Index())
	}
	if _, ok := s.Partitioner().(*vectordb.IVF); !ok {
		t.Fatalf("partitioner is %T after LearnBatch, want *vectordb.IVF", s.Partitioner())
	}
	if s.Len() != len(incs) {
		t.Fatalf("len = %d, want %d", s.Len(), len(incs))
	}
}

// TestNewRejectsUnknownPartitioner covers config validation.
func TestNewRejectsUnknownPartitioner(t *testing.T) {
	e := getEnv(t)
	chat := newCopilot(t, Config{}).Chat()
	if _, err := New(e.corpus.Fleet, chat, Config{Shards: 4, Partitioner: "lsh"}); err == nil {
		t.Fatal("unknown partitioner must fail")
	}
	if _, err := New(e.corpus.Fleet, chat, Config{Shards: 4, Partitioner: PartitionIVF}); err != nil {
		t.Fatal(err)
	}
}

// TestProbeConfigValidation covers the probe knob's config surface:
// negative budgets and probes without a sharded store are rejected; a
// valid probe config reaches the index.
func TestProbeConfigValidation(t *testing.T) {
	e := getEnv(t)
	chat := newCopilot(t, Config{}).Chat()
	if _, err := New(e.corpus.Fleet, chat, Config{Shards: 4, Probes: -1}); err == nil {
		t.Fatal("negative probes must fail")
	}
	if _, err := New(e.corpus.Fleet, chat, Config{Shards: 1, Probes: 2}); err == nil {
		t.Fatal("probes without shards must fail")
	}
	if _, err := New(e.corpus.Fleet, chat, Config{Shards: 4, Probes: 2}); err == nil {
		t.Fatal("probes under category routing must fail (would silently never engage)")
	}
	c := newCopilot(t, Config{Shards: 4, Partitioner: PartitionIVF, Probes: 2})
	s, ok := c.Index().(*vectordb.Sharded)
	if !ok {
		t.Fatalf("index is %T", c.Index())
	}
	if s.Probes() != 2 {
		t.Fatalf("Probes = %d on the index, want 2", s.Probes())
	}
}

// TestAdaptiveConfigValidation covers the adaptive serving knobs' config
// surface: out-of-range targets/rates/skews, adaptive without the IVF
// sharded store, shadow rate without a target, and the Probes/RecallTarget
// exclusivity are all rejected; a valid adaptive config reaches the index
// as an installed controller.
func TestAdaptiveConfigValidation(t *testing.T) {
	e := getEnv(t)
	chat := newCopilot(t, Config{}).Chat()
	bad := []Config{
		{Shards: 4, Partitioner: PartitionIVF, RecallTarget: 1.5},
		{Shards: 4, Partitioner: PartitionIVF, RecallTarget: -0.5},
		{Shards: 4, Partitioner: PartitionIVF, RecallTarget: 0.9, ShadowRate: 2},
		{Shards: 4, Partitioner: PartitionIVF, ShadowRate: 0.5},
		{Shards: 4, Partitioner: PartitionIVF, RetrainSkew: 0.5},
		{Shards: 4, Partitioner: PartitionIVF, RecallTarget: 0.9, Probes: 2},
		{Shards: 1, RecallTarget: 0.9},
		{Shards: 4, RecallTarget: 0.9},
		{Shards: 4, RetrainSkew: 1.5},
	}
	for i, cfg := range bad {
		if _, err := New(e.corpus.Fleet, chat, cfg); err == nil {
			t.Fatalf("case %d: config %+v must be rejected", i, cfg)
		}
	}
	c := newCopilot(t, Config{Shards: 4, Partitioner: PartitionIVF, RecallTarget: 0.95, ShadowRate: 0.5, RetrainSkew: 2})
	s, ok := c.Index().(*vectordb.Sharded)
	if !ok {
		t.Fatalf("index is %T", c.Index())
	}
	if s.AdaptiveTuner() == nil {
		t.Fatal("adaptive config must install a controller on the index")
	}
	if s.Probes() != 1 {
		t.Fatalf("controller-seeded probe budget = %d, want 1", s.Probes())
	}
}

// TestAdaptiveCopilotPredicts runs the full Learn/Predict path with the
// auto-tuner live: the pipeline must work end to end while shadow
// sampling and skew checks run behind retrieval.
func TestAdaptiveCopilotPredicts(t *testing.T) {
	e := getEnv(t)
	c := newCopilot(t, Config{Shards: 4, Partitioner: PartitionIVF, RecallTarget: 0.9, ShadowRate: 1, RetrainSkew: 3})
	incs := e.corpus.Incidents[:40]
	clones := make([]*incident.Incident, len(incs))
	for i, in := range incs {
		clones[i] = in.Clone()
	}
	if err := c.LearnBatch(clones, 2); err != nil {
		t.Fatal(err)
	}
	s := c.Index().(*vectordb.Sharded)
	if _, ok := s.Partitioner().(*vectordb.IVF); !ok {
		t.Fatalf("partitioner is %T, want trained IVF", s.Partitioner())
	}
	probe := e.corpus.Incidents[41].Clone()
	probe.Summary, probe.Predicted = "", ""
	res, err := c.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Category == "" {
		t.Fatal("adaptive Predict returned no category")
	}
	tn := s.AdaptiveTuner()
	tn.Quiesce()
	if p := s.Probes(); p < 1 || p > 4 {
		t.Fatalf("effective probe budget %d outside [1, 4]", p)
	}
}

// TestProbeCopilotPredicts runs the full Learn/Predict path under
// probe-limited serving: the prediction pipeline must work end to end on
// the approximate index (no golden equality — probe mode is approximate
// by contract once the quantizer trains).
func TestProbeCopilotPredicts(t *testing.T) {
	e := getEnv(t)
	c := newCopilot(t, Config{Shards: 4, Partitioner: PartitionIVF, Probes: 1})
	incs := e.corpus.Incidents[:40]
	clones := make([]*incident.Incident, len(incs))
	for i, in := range incs {
		clones[i] = in.Clone()
	}
	if err := c.LearnBatch(clones, 2); err != nil {
		t.Fatal(err)
	}
	s := c.Index().(*vectordb.Sharded)
	if _, ok := s.Partitioner().(*vectordb.IVF); !ok {
		t.Fatalf("partitioner is %T, want trained IVF", s.Partitioner())
	}
	probe := e.corpus.Incidents[41].Clone()
	probe.Summary, probe.Predicted = "", ""
	res, err := c.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Category == "" {
		t.Fatal("probe-limited Predict returned no category")
	}
}

// TestShardsDefaultToNumCPU pins the Shards default: an unset Shards scales
// the store to the machine (runtime.NumCPU()), while an explicit Shards: 1
// still selects the flat exact DB — the opt-out is one knob, not a magic
// zero.
func TestShardsDefaultToNumCPU(t *testing.T) {
	def := newCopilot(t, Config{})
	if got, want := def.Config().Shards, runtime.NumCPU(); got != want {
		t.Fatalf("default Shards = %d, want runtime.NumCPU() = %d", got, want)
	}
	if runtime.NumCPU() > 1 {
		if _, ok := def.Index().(*vectordb.Sharded); !ok {
			t.Fatalf("default index on a %d-CPU machine is %T, want sharded", runtime.NumCPU(), def.Index())
		}
	}
	flat := newCopilot(t, Config{Shards: 1})
	if _, ok := flat.Index().(*vectordb.DB); !ok {
		t.Fatalf("Shards=1 index is %T, want flat *vectordb.DB", flat.Index())
	}
}

// TestQuantizedConfigValidation covers the two-stage quantization knobs'
// config surface: quantization without probe-limited serving (or without
// the IVF sharded store), negative overfetch, and overfetch without
// quantization are rejected; a valid config reaches the index with the
// sidecar enabled and the overfetch factor applied.
func TestQuantizedConfigValidation(t *testing.T) {
	e := getEnv(t)
	chat := newCopilot(t, Config{}).Chat()
	bad := []Config{
		{Shards: 4, Partitioner: PartitionIVF, Quantized: true},
		{Shards: 1, Probes: 0, Quantized: true},
		{Shards: 4, Partitioner: PartitionIVF, Probes: 2, Overfetch: -1},
		{Shards: 4, Partitioner: PartitionIVF, Probes: 2, Overfetch: 8},
		{Shards: 4, Probes: 2, Quantized: true},
	}
	for i, cfg := range bad {
		if _, err := New(e.corpus.Fleet, chat, cfg); err == nil {
			t.Fatalf("case %d: config %+v must be rejected", i, cfg)
		}
	}
	c := newCopilot(t, Config{Shards: 4, Partitioner: PartitionIVF, Probes: 2, Quantized: true, Overfetch: 6})
	s, ok := c.Index().(*vectordb.Sharded)
	if !ok {
		t.Fatalf("index is %T", c.Index())
	}
	if !s.QuantizedEnabled() {
		t.Fatal("quantized config must enable the sidecar on the index")
	}
	if s.Overfetch() != 6 {
		t.Fatalf("Overfetch = %d on the index, want 6", s.Overfetch())
	}
	// SLO-owned probe budget also counts as probe-limited serving.
	if _, err := New(e.corpus.Fleet, chat, Config{Shards: 4, Partitioner: PartitionIVF, RecallTarget: 0.9, Quantized: true}); err != nil {
		t.Fatal(err)
	}
}
