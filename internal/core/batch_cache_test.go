package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/llm/simgpt"
)

// countingEmbedder wraps an embedder and counts Embed calls, so tests can
// observe whether Retrieve hit the memo or re-embedded.
type countingEmbedder struct {
	Embedder
	calls atomic.Int64
}

func (c *countingEmbedder) Embed(text string) ([]float64, error) {
	c.calls.Add(1)
	return c.Embedder.Embed(text)
}

// TestRetrieveEmbedCache: repeated Retrieve calls for the same text embed
// once; distinct texts embed separately; SetEmbedder invalidates the memo
// so the new embedder owns every vector in it.
func TestRetrieveEmbedCache(t *testing.T) {
	e := getEnv(t)
	chat := simgpt.MustNew(simgpt.GPT4, simgpt.Options{Seed: 3})
	c, err := New(e.corpus.Fleet, chat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ce := &countingEmbedder{Embedder: e.embedder}
	c.SetEmbedder(ce)
	seedHistory(t, c, 20) // Learn embeds each incident, so count deltas from here
	base := ce.calls.Load()

	at := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	first, err := c.Retrieve("udp socket exhausted on hub", at, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := ce.calls.Load() - base; got != 1 {
		t.Fatalf("first Retrieve made %d embed calls, want 1", got)
	}
	second, err := c.Retrieve("udp socket exhausted on hub", at, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := ce.calls.Load() - base; got != 1 {
		t.Fatalf("repeated Retrieve re-embedded (%d calls), cache missed", got)
	}
	if len(first) != len(second) {
		t.Fatalf("cached retrieval returned %d hits, uncached %d", len(second), len(first))
	}
	for i := range first {
		if first[i].Entry.ID != second[i].Entry.ID || first[i].Similarity != second[i].Similarity {
			t.Fatalf("cached retrieval diverges at rank %d", i)
		}
	}
	if _, err := c.Retrieve("a different query", at, 3, true); err != nil {
		t.Fatal(err)
	}
	if got := ce.calls.Load() - base; got != 2 {
		t.Fatalf("distinct text made %d retrieval embed calls, want 2", got)
	}
	oldTotal := ce.calls.Load()

	// Swapping the embedder must invalidate the memo: the same text embeds
	// again, through the NEW embedder.
	ce2 := &countingEmbedder{Embedder: e.embedder}
	c.SetEmbedder(ce2)
	seedHistory(t, c, 20)
	base2 := ce2.calls.Load()
	if _, err := c.Retrieve("udp socket exhausted on hub", at, 3, false); err != nil {
		t.Fatal(err)
	}
	if got := ce2.calls.Load() - base2; got != 1 {
		t.Fatalf("post-swap Retrieve made %d embed calls on the new embedder, want 1", got)
	}
	if got := ce.calls.Load(); got != oldTotal {
		t.Fatalf("post-swap Retrieve touched the old embedder (%d calls, had %d)", got, oldTotal)
	}
}

// seedHistory learns a slice of corpus incidents so Retrieve has content.
func seedHistory(t *testing.T, c *Copilot, n int) {
	t.Helper()
	e := getEnv(t)
	for _, inc := range e.corpus.Incidents[:n] {
		in := inc.Clone()
		if in.Summary == "" {
			in.Summary = "summary " + in.ID
		}
		if err := c.Learn(in); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchingConfig: BatchMax wires a Batcher around the store (visible
// through the accessor and exercised by concurrent retrievals), 0 leaves
// it off, and malformed combinations are rejected at New.
func TestBatchingConfig(t *testing.T) {
	e := getEnv(t)
	chat := simgpt.MustNew(simgpt.GPT4, simgpt.Options{Seed: 3})

	if _, err := New(e.corpus.Fleet, chat, Config{BatchMax: -1}); err == nil {
		t.Fatal("negative BatchMax accepted")
	}
	if _, err := New(e.corpus.Fleet, chat, Config{BatchWait: time.Millisecond}); err == nil {
		t.Fatal("BatchWait without BatchMax accepted")
	}
	if _, err := New(e.corpus.Fleet, chat, Config{BatchMax: 4, BatchWait: -time.Millisecond}); err == nil {
		t.Fatal("negative BatchWait accepted")
	}

	plain, err := New(e.corpus.Fleet, chat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	plain.SetEmbedder(e.embedder)
	if plain.Batcher() != nil {
		t.Fatal("Batcher present without BatchMax")
	}

	c, err := New(e.corpus.Fleet, chat, Config{BatchMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().BatchWait != 500*time.Microsecond {
		t.Fatalf("BatchWait default = %v, want 500µs", c.Config().BatchWait)
	}
	c.SetEmbedder(e.embedder)
	b := c.Batcher()
	if b == nil {
		t.Fatal("Batcher missing with BatchMax=4")
	}
	seedHistory(t, c, 30)

	at := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Retrieve("hub port exhaustion", at, 2+i%3, i%2 == 0); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Queries != 16 {
		t.Fatalf("batcher saw %d queries, want 16", st.Queries)
	}
	if st.FlushIdle+st.FlushSize+st.FlushTimer != st.Batches {
		t.Fatalf("flush accounting broken: %+v", st)
	}

	// SetEmbedder swaps the store: the old collector closes, a fresh one
	// attaches.
	c.SetEmbedder(e.embedder)
	if nb := c.Batcher(); nb == nil || nb == b {
		t.Fatal("SetEmbedder did not rebuild the batch collector")
	}
	if _, err := c.Retrieve("hub port exhaustion", at, 3, true); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Retrieve("hub port exhaustion", at, 3, true); err != nil {
		t.Fatal(err)
	}
}
