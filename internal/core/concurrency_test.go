package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/incident"
)

// TestSetEmbedderReportsDroppedEntries pins the re-attachment contract:
// swapping the embedder resets the vector store (vectors from different
// embedders are not comparable) and the call reports how many learned
// entries were discarded, so callers cannot lose history silently.
func TestSetEmbedderReportsDroppedEntries(t *testing.T) {
	e := getEnv(t)
	c := newCopilot(t, Config{})
	const n = 7
	for i := 0; i < n; i++ {
		if err := c.Learn(e.corpus.Incidents[i].Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if c.Index().Len() != n {
		t.Fatalf("db has %d entries, want %d", c.Index().Len(), n)
	}

	dropped, err := c.SetEmbedder(e.embedder)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != n {
		t.Fatalf("SetEmbedder reported %d dropped entries, want %d", dropped, n)
	}
	if c.Index().Len() != 0 {
		t.Fatalf("db still has %d entries after re-attachment", c.Index().Len())
	}
	// First attachment on a fresh copilot drops nothing.
	chat := c.Chat()
	fresh, err := New(e.corpus.Fleet, chat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d, err := fresh.SetEmbedder(e.embedder); err != nil || d != 0 {
		t.Fatalf("first attachment reported %d dropped entries, err %v", d, err)
	}
}

// TestCollectConcurrentRunsAreDeterministic drives Collect from many
// goroutines on identical incidents (pinned CreatedAt) and requires every
// run to report the same virtual cost and collect identical diagnostics —
// the per-run execution contexts make collection a pure function of the
// incident, with no cross-run interleaving.
func TestCollectConcurrentRunsAreDeterministic(t *testing.T) {
	e := getEnv(t)
	c := newCopilot(t, Config{})
	fleet := e.corpus.Fleet
	fault, err := fleet.Inject("HubPortExhaustion", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fault.Repair()
	alert, ok := fleet.FirstAlert()
	if !ok {
		t.Fatal("no alert")
	}
	at := fleet.Clock().Now()
	meterBefore := fleet.Meter().Total()

	const runs = 24
	incs := make([]*incident.Incident, runs)
	reports := make([]string, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inc := &incident.Incident{
				ID: fmt.Sprintf("INC-CC-%03d", i), Title: alert.Message,
				OwningTeam: "Transport", Severity: incident.Sev2, Alert: alert,
				CreatedAt: at,
			}
			rep, err := c.Collect(inc)
			if err != nil {
				t.Error(err)
				return
			}
			incs[i] = inc
			reports[i] = fmt.Sprintf("%v|%d", rep.VirtualCost, len(rep.Steps))
		}(i)
	}
	wg.Wait()

	for i := 1; i < runs; i++ {
		if reports[i] != reports[0] {
			t.Fatalf("run %d report diverged: %s vs %s", i, reports[i], reports[0])
		}
		if incs[i].DiagnosticText() != incs[0].DiagnosticText() {
			t.Fatalf("run %d diagnostics diverged", i)
		}
	}
	// Fleet-level accounting saw every run exactly once.
	if merged := fleet.Meter().Total() - meterBefore; merged <= 0 {
		t.Fatal("collection cost did not merge into the fleet meter")
	}
}
