// Package core wires RCACopilot's two stages together (Figure 4): the
// diagnostic-information collection stage (incident parsing, handler
// matching, multi-source collection) and the root-cause prediction stage
// (LLM summarization, embedding, temporal nearest-neighbour retrieval,
// chain-of-thought category prediction with explanation).
//
// # Concurrency
//
// A Copilot is safe for concurrent use: HandleIncident, Collect, Predict,
// Summarize, Learn and LearnBatch may be called from many goroutines at
// once, each on its own incident. Both pipeline stages run unserialized.
// The prediction stage is embarrassingly parallel — the chat client,
// embedder and vector store are either stateless or internally locked — and
// the collection stage executes each handler run on its own execution
// context (transport.Exec): telemetry cost accumulates in a per-run
// accumulator and virtual time advances on a per-run clock view based at
// the incident's creation time, so nothing interleaves across runs. When a
// run finishes, its accumulator merges into the fleet meter and the shared
// virtual clock advances past the run's total cost; both operations
// commute, so fleet-level accounting is deterministic regardless of how
// concurrent collections interleave. SetEmbedder may race with in-flight
// calls only in the trivial sense that each call atomically sees either the
// old or the new retriever; callers are expected to attach the embedder
// before serving traffic.
package core

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/embed/fasttext"
	"repro/internal/handler"
	"repro/internal/incident"
	"repro/internal/llm"
	"repro/internal/parallel"
	"repro/internal/prompt"
	"repro/internal/timeutil"
	"repro/internal/transport"
	"repro/internal/vectordb"
)

// Embedder maps incident text into the retrieval vector space. The default
// is a FastText model trained on historical incidents (§4.2.1); the GPT-4
// Embed. baseline swaps in the LLM's embedding endpoint. Users may plug in
// their own ("we provide users with the flexibility to customize their
// embedding model").
type Embedder interface {
	Embed(text string) ([]float64, error)
	Dim() int
}

// FastTextEmbedder adapts a trained FastText model. Document vectors are
// unit-normalized and multiplied by Scale: the temporal-decay similarity
// 1/(1+d)·e^(−α·Δt) trades embedding distance against days, so the
// embedding's distance scale decides how many days of recency a semantic
// match is worth. Scale is calibrated so the paper's α = 0.3 sits at the
// retrieval sweet spot (Figure 12).
type FastTextEmbedder struct {
	Model *fasttext.Model
	// Scale defaults to 24 (≈ one unit of cosine distance is worth ~12
	// days of recency at α = 0.3).
	Scale float64
}

// Embed implements Embedder.
func (f FastTextEmbedder) Embed(text string) ([]float64, error) {
	v := f.Model.DocVector(text)
	scale := f.Scale
	if scale == 0 {
		scale = 24
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm > 0 {
		k := scale / math.Sqrt(norm)
		for i := range v {
			v[i] *= k
		}
	}
	return v, nil
}

// Dim implements Embedder.
func (f FastTextEmbedder) Dim() int { return f.Model.Dim() }

// LLMEmbedder adapts an llm.Client's embedding endpoint (GPT-4 Embed.).
type LLMEmbedder struct {
	Client llm.Client
	// EmbedDim must match the client's embedding output width.
	EmbedDim int
}

// Embed implements Embedder.
func (l LLMEmbedder) Embed(text string) ([]float64, error) { return l.Client.Embed(text) }

// Dim implements Embedder.
func (l LLMEmbedder) Dim() int { return l.EmbedDim }

// ContextSources selects which incident information feeds the prediction
// prompt — the paper's Table 3 ablation axes.
type ContextSources struct {
	// AlertInfo includes the alert type and scope block.
	AlertInfo bool
	// DiagnosticInfo includes the collected multi-source diagnostic text.
	DiagnosticInfo bool
	// Summarized replaces raw diagnostic text with its LLM summary
	// (the ✓sum. row of Table 3, RCACopilot's default).
	Summarized bool
	// ActionOutput includes the handler actions' key-value outputs.
	ActionOutput bool
}

// DefaultContext is RCACopilot's shipped configuration: summarized
// diagnostic information only, the best row of Table 3.
func DefaultContext() ContextSources {
	return ContextSources{DiagnosticInfo: true, Summarized: true}
}

// Shard-routing strategies for Config.Partitioner.
const (
	// PartitionCategory routes entries to shards by a hash of their
	// root-cause category (the default).
	PartitionCategory = "category"
	// PartitionIVF routes entries to shards through an IVF-style coarse
	// quantizer trained from the stored vectors after each batch ingest.
	PartitionIVF = "ivf"
)

// Config parameterizes a Copilot.
type Config struct {
	Team string
	// MultiTenant serves each incident's owning team as a tenant over the
	// shared vector store: learned entries are tagged with the incident's
	// OwningTeam as their namespace, Predict retrieves through that team's
	// namespace view (so a team's demonstrations never come from a
	// co-tenant's history), handler matching tries the owning team's
	// handlers before falling back to Team's, and each collection run's
	// telemetry cost is attributed per tenant ("team/site" meter keys).
	// Off (the default), every entry lands in the default namespace and
	// behavior is bit-identical to the single-tenant system.
	MultiTenant bool
	// K is the number of demonstrations retrieved (default 5, §4.2.2).
	K int
	// Alpha is the temporal-decay coefficient per day (default 0.3).
	Alpha float64
	// Context selects the prompt context sources (default: summarized
	// diagnostic info).
	Context ContextSources
	// PromptReserve keeps headroom for instructions and the completion
	// within the model context window (default 768 tokens).
	PromptReserve int
	// Shards partitions the vector store into this many shards with
	// parallel query fan-out. 0 (unset) defaults to runtime.NumCPU(), so a
	// stock deployment scales with the machine; an explicit 1 keeps the
	// flat exact store. Results are bit-identical either way — sharding
	// changes scaling, not retrieval semantics.
	Shards int
	// Partitioner selects shard routing when Shards > 1:
	// PartitionCategory (default) or PartitionIVF.
	Partitioner string
	// Probes opts retrieval into the sharded store's probe-limited
	// approximate serving: queries search only this many IVF partitions
	// nearest the query instead of fanning out to every shard. Requires
	// Shards > 1 with Partitioner PartitionIVF (rejected otherwise — the
	// knob would silently never engage) and takes effect once the
	// quantizer has trained (until then — and whenever probes cover every
	// populated shard — retrieval stays exact and bit-identical to the
	// flat store). 0 keeps exact fan-out; negative values are rejected.
	// Mutually exclusive with RecallTarget, which makes the budget
	// controller-owned.
	Probes int
	// RecallTarget replaces the static Probes knob with the recall-SLO
	// auto-tuner: a ShadowRate fraction of live retrievals is shadowed
	// with an exact fan-out off the hot path, and the effective probe
	// count grows/shrinks to hold this observed recall@k target (e.g.
	// 0.95). Requires Shards > 1 with Partitioner PartitionIVF; must be in
	// (0, 1]. 0 disables. See vectordb.Sharded.EnableAdaptive.
	RecallTarget float64
	// ShadowRate is the fraction of live retrievals the auto-tuner
	// shadows, in (0, 1]; 0 defaults to 0.05. Only meaningful with
	// RecallTarget.
	ShadowRate float64
	// RetrainSkew enables skew-triggered IVF retraining when >= 1: once
	// per-shard imbalance (max/mean of the shard entry counts) or the
	// centroid drift of fresh inserts reaches this ratio, the quantizer
	// retrains automatically (rate-limited, online — ingest and queries
	// keep flowing). Requires Shards > 1 with Partitioner PartitionIVF.
	// 0 disables.
	RetrainSkew float64
	// Quantized enables the two-stage quantized probe scan: probe-limited
	// queries walk a per-shard int8 sidecar to collect K×Overfetch
	// candidates, then re-rank exactly against the full-precision vectors.
	// Requires probe-limited serving to be configured (Probes > 0 or
	// RecallTarget > 0, with Shards > 1 and Partitioner PartitionIVF) —
	// exact fan-out never touches the sidecar, so quantization without a
	// probe budget would silently never engage. See
	// vectordb.Sharded.EnableQuantized.
	Quantized bool
	// Overfetch scales the stage-one candidate pool: each probed shard
	// contributes its K×Overfetch best quantized candidates to the exact
	// re-rank. 0 defaults to vectordb.DefaultOverfetch; negative values
	// are rejected, as is a nonzero Overfetch without Quantized. Only
	// meaningful with Quantized.
	Overfetch int
	// BatchMax enables micro-batched retrieval: concurrent retrieval
	// queries (Retrieve, Predict's neighbour lookup) coalesce through a
	// vectordb.Batcher into TopKBatch executions of at most this size,
	// amortizing the shard scan across the batch. 0 or 1 disables
	// batching; negative values are rejected. Idle traffic keeps the
	// single-query fast path, so enabling batching does not add latency
	// when there is no concurrency to harvest.
	BatchMax int
	// BatchWait bounds how long a partially filled batch holds its window
	// open for companion queries before flushing. 0 with BatchMax > 1
	// selects the 500µs default; setting it without BatchMax > 1 is
	// rejected (there is no collector to configure).
	BatchWait time.Duration
	// WALDir enables the durable vector store: SetEmbedder opens a
	// write-ahead-logged store rooted at this directory instead of a fresh
	// in-memory one, replaying any previous snapshot + log so a crashed
	// process resumes with its learned history and converged serving
	// state. The embedder attached must reproduce the vector space the
	// logged entries were embedded in (the daemon trains its FastText
	// model deterministically from the corpus, so a reboot gets the same
	// space); a dimension mismatch fails SetEmbedder rather than serving
	// mixed-space vectors. Empty (the default) keeps the in-memory store.
	WALDir string
	// WALSyncEvery is the WAL group-commit size boundary: the append that
	// fills the batch to this many records fsyncs it. 0 defaults to 64;
	// 1 makes every learned entry durable before Learn returns. Requires
	// WALDir.
	WALSyncEvery int
	// WALSyncInterval is the WAL group-commit flush cadence for
	// under-filled batches. 0 defaults to 50ms. Requires WALDir.
	WALSyncInterval time.Duration
	// WALCompactBytes is the log size that triggers snapshot compaction
	// and log rotation. 0 defaults to 4 MiB; negative disables automatic
	// compaction. Requires WALDir.
	WALCompactBytes int64
}

func (c Config) withDefaults() Config {
	if c.Team == "" {
		c.Team = "Transport"
	}
	if c.K <= 0 {
		c.K = 5
	}
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.Context == (ContextSources{}) {
		c.Context = DefaultContext()
	}
	if c.PromptReserve <= 0 {
		c.PromptReserve = 768
	}
	if c.Partitioner == "" {
		c.Partitioner = PartitionCategory
	}
	if c.Shards <= 0 {
		c.Shards = runtime.NumCPU()
	}
	if c.BatchMax > 1 && c.BatchWait == 0 {
		c.BatchWait = 500 * time.Microsecond
	}
	return c
}

// Copilot is the assembled RCACopilot system.
type Copilot struct {
	cfg      Config
	fleet    *transport.Fleet
	registry *handler.Registry
	runner   *handler.Runner
	chat     llm.Client
	meter    *timeutil.CostMeter

	// mu guards the retriever state (embedder, db, batcher), which
	// SetEmbedder swaps together; everything else is immutable after New
	// or internally locked.
	mu       sync.RWMutex
	embedder Embedder
	db       vectordb.Index
	// batcher is the micro-batching collector wrapped around db when
	// Config.BatchMax > 1 (then db IS the batcher); nil otherwise.
	batcher *vectordb.Batcher
	// durable is the write-ahead-logged store wrapped by db when
	// Config.WALDir is set (the batcher, if any, wraps the durable store,
	// which wraps the sharded one); nil otherwise.
	durable *vectordb.Durable
	// embedCache memoizes Retrieve's query embeddings (bounded LRU keyed
	// by text); invalidated wholesale on SetEmbedder.
	embedCache *embedCache
}

// New assembles a Copilot over a fleet and a chat model. The embedder (and
// with it the vector store) is attached later via SetEmbedder, once it has
// been trained on historical incidents.
func New(fleet *transport.Fleet, chat llm.Client, cfg Config) (*Copilot, error) {
	if fleet == nil || chat == nil {
		return nil, fmt.Errorf("core: fleet and chat model are required")
	}
	cfg = cfg.withDefaults()
	if cfg.Partitioner != PartitionCategory && cfg.Partitioner != PartitionIVF {
		return nil, fmt.Errorf("core: unknown partitioner %q (want %q or %q)",
			cfg.Partitioner, PartitionCategory, PartitionIVF)
	}
	if cfg.Probes < 0 {
		return nil, fmt.Errorf("core: negative probe count %d (use 0 for exact fan-out)", cfg.Probes)
	}
	if cfg.Probes > 0 && cfg.Shards <= 1 {
		return nil, fmt.Errorf("core: Probes=%d requires a sharded vector store (Shards > 1)", cfg.Probes)
	}
	if cfg.Probes > 0 && cfg.Partitioner != PartitionIVF {
		// Probe selection needs centroid geometry; under category routing
		// the knob would silently never engage, masking a misconfiguration.
		return nil, fmt.Errorf("core: Probes=%d requires Partitioner=%q (got %q, which has no centroids to probe)",
			cfg.Probes, PartitionIVF, cfg.Partitioner)
	}
	if cfg.RecallTarget < 0 || cfg.RecallTarget > 1 {
		return nil, fmt.Errorf("core: RecallTarget %v outside (0, 1]", cfg.RecallTarget)
	}
	if cfg.ShadowRate < 0 || cfg.ShadowRate > 1 {
		return nil, fmt.Errorf("core: ShadowRate %v outside (0, 1]", cfg.ShadowRate)
	}
	if cfg.ShadowRate > 0 && cfg.RecallTarget == 0 {
		return nil, fmt.Errorf("core: ShadowRate=%v without RecallTarget (nothing to tune)", cfg.ShadowRate)
	}
	if cfg.RetrainSkew != 0 && cfg.RetrainSkew < 1 {
		return nil, fmt.Errorf("core: RetrainSkew %v must be 0 (off) or >= 1 (a max/mean ratio)", cfg.RetrainSkew)
	}
	if cfg.RecallTarget > 0 && cfg.Probes > 0 {
		return nil, fmt.Errorf("core: RecallTarget=%v and Probes=%d are mutually exclusive (the auto-tuner owns the probe budget; use vectordb.Sharded.SetProbes for a runtime manual override)",
			cfg.RecallTarget, cfg.Probes)
	}
	if adaptive := cfg.RecallTarget > 0 || cfg.RetrainSkew > 0; adaptive {
		if cfg.Shards <= 1 {
			return nil, fmt.Errorf("core: adaptive serving (RecallTarget/RetrainSkew) requires a sharded vector store (Shards > 1)")
		}
		if cfg.Partitioner != PartitionIVF {
			return nil, fmt.Errorf("core: adaptive serving (RecallTarget/RetrainSkew) requires Partitioner=%q (got %q)",
				PartitionIVF, cfg.Partitioner)
		}
	}
	if cfg.Overfetch < 0 {
		return nil, fmt.Errorf("core: negative Overfetch %d (use 0 for the default)", cfg.Overfetch)
	}
	if cfg.Overfetch > 0 && !cfg.Quantized {
		return nil, fmt.Errorf("core: Overfetch=%d without Quantized (nothing to overfetch)", cfg.Overfetch)
	}
	if cfg.Quantized {
		// The int8 sidecar only serves probe-limited queries: without a
		// probe budget (static or SLO-owned) the flag would silently never
		// engage, masking a misconfiguration.
		if cfg.Probes == 0 && cfg.RecallTarget == 0 {
			return nil, fmt.Errorf("core: Quantized requires probe-limited serving (Probes > 0 or RecallTarget > 0); exact fan-out never uses the sidecar")
		}
		if cfg.Shards <= 1 {
			return nil, fmt.Errorf("core: Quantized requires a sharded vector store (Shards > 1)")
		}
		if cfg.Partitioner != PartitionIVF {
			return nil, fmt.Errorf("core: Quantized requires Partitioner=%q (got %q)", PartitionIVF, cfg.Partitioner)
		}
	}
	if cfg.BatchMax < 0 {
		return nil, fmt.Errorf("core: negative BatchMax %d (use 0 to disable batching)", cfg.BatchMax)
	}
	if cfg.BatchWait < 0 {
		return nil, fmt.Errorf("core: negative BatchWait %v", cfg.BatchWait)
	}
	if cfg.BatchWait > 0 && cfg.BatchMax <= 1 {
		return nil, fmt.Errorf("core: BatchWait=%v without BatchMax > 1 (no batch collector to configure)", cfg.BatchWait)
	}
	if cfg.WALSyncEvery < 0 {
		return nil, fmt.Errorf("core: negative WALSyncEvery %d", cfg.WALSyncEvery)
	}
	if cfg.WALSyncInterval < 0 {
		return nil, fmt.Errorf("core: negative WALSyncInterval %v", cfg.WALSyncInterval)
	}
	if cfg.WALDir == "" && (cfg.WALSyncEvery != 0 || cfg.WALSyncInterval != 0 || cfg.WALCompactBytes != 0) {
		// A durability knob without a WAL directory would silently never
		// engage, masking a misconfiguration.
		return nil, fmt.Errorf("core: WAL tuning (WALSyncEvery/WALSyncInterval/WALCompactBytes) requires WALDir")
	}
	c := &Copilot{
		cfg:        cfg,
		fleet:      fleet,
		registry:   handler.NewRegistry(nil),
		runner:     handler.NewRunner(fleet),
		chat:       chat,
		meter:      timeutil.NewCostMeter(),
		embedCache: newEmbedCache(embedCacheSize),
	}
	if _, err := c.registry.InstallBuiltins(cfg.Team); err != nil {
		return nil, err
	}
	return c, nil
}

// Registry exposes the handler registry (for handler authoring tools).
func (c *Copilot) Registry() *handler.Registry { return c.registry }

// Runner exposes the handler runner (for known-issue administration).
func (c *Copilot) Runner() *handler.Runner { return c.runner }

// Meter returns the accumulated modelled LLM latency (summarization and
// prediction calls). Collection-stage telemetry cost accumulates per run and
// merges into the fleet's meter — see Fleet.Meter.
func (c *Copilot) Meter() *timeutil.CostMeter { return c.meter }

// Chat returns the underlying chat model.
func (c *Copilot) Chat() llm.Client { return c.chat }

// Config returns the effective configuration.
func (c *Copilot) Config() Config { return c.cfg }

// SetEmbedder attaches the retrieval embedder and resets the vector store
// to its dimensionality (flat or sharded per Config.Shards). Resetting is
// deliberate: vectors produced by different embedders are not comparable,
// so every previously learned in-memory entry is DISCARDED and the history
// must be re-learned against the new embedding space. The number of
// dropped entries is returned so callers can detect an accidental
// mid-flight swap (0 on first attachment).
//
// With Config.WALDir set, the fresh store is write-ahead logged: the
// directory's snapshot + log replay into it before it starts serving, so
// a reboot resumes with the learned history and converged serving state —
// the embedder must therefore reproduce the logged vector space (see
// Config.WALDir). A recovery failure is returned and the previous
// retriever stays attached; the previous durable store, if any, is closed
// first either way (two writers on one log would corrupt it).
func (c *Copilot) SetEmbedder(e Embedder) (dropped int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.durable != nil {
		c.durable.Close()
		c.durable = nil
	}
	// PartitionIVF also starts on category-hash routing: the quantizer can
	// only be trained once vectors exist (see trainPartitioner); the probe
	// budget — static or auto-tuned — is likewise dormant until the IVF
	// quantizer routes.
	opts := vectordb.Options{
		Shards:       c.cfg.Shards,
		Probes:       c.cfg.Probes,
		RecallTarget: c.cfg.RecallTarget,
		ShadowRate:   c.cfg.ShadowRate,
		RetrainSkew:  c.cfg.RetrainSkew,
		Quantized:    c.cfg.Quantized,
		Overfetch:    c.cfg.Overfetch,
	}
	dim := e.Dim()
	var db vectordb.Index
	var durable *vectordb.Durable
	if c.cfg.WALDir != "" {
		durable, err = vectordb.OpenDurable(c.cfg.WALDir,
			func() vectordb.Index { return vectordb.NewIndex(dim, opts) },
			vectordb.DurableOptions{
				SyncEvery:    c.cfg.WALSyncEvery,
				SyncInterval: c.cfg.WALSyncInterval,
				CompactBytes: c.cfg.WALCompactBytes,
			})
		if err != nil {
			return 0, err
		}
		db = durable
	} else {
		db = vectordb.NewIndex(dim, opts)
	}
	if c.db != nil {
		dropped = c.db.Len()
	}
	if c.batcher != nil {
		c.batcher.Close()
		c.batcher = nil
	}
	c.embedder = e
	// Cached query embeddings belong to the outgoing embedder's vector
	// space; drop them with the store.
	c.embedCache.clear()
	c.db, c.durable = db, durable
	if c.cfg.BatchMax > 1 {
		// Cannot fail: New validated BatchMax >= 2 and withDefaults set a
		// positive BatchWait.
		b, _ := vectordb.NewBatcher(c.db, c.cfg.BatchMax, c.cfg.BatchWait)
		c.batcher, c.db = b, b
	}
	return dropped, nil
}

// Durable returns the write-ahead-logged store behind the retriever, nil
// when Config.WALDir is unset or no embedder is attached yet. The
// daemon's /metrics durability gauges read its Stats, and the feedback
// wiring rides its retry-schedule sidecar records.
func (c *Copilot) Durable() *vectordb.Durable {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.durable
}

// Batcher returns the micro-batching collector wrapped around the vector
// store, nil when batching is disabled (Config.BatchMax <= 1) or no
// embedder is attached yet. The daemon's /metrics surface reads its
// batch-formation stats.
func (c *Copilot) Batcher() *vectordb.Batcher {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.batcher
}

// Close releases background serving resources: the micro-batching
// collector's dispatcher and the durable store's group-commit and
// compaction loops (flushing the log, so everything learned is on disk).
// The Copilot keeps serving after Close — queries just bypass the
// collector and lose durability — so it is safe to call on shutdown while
// drains finish.
func (c *Copilot) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.batcher != nil {
		c.batcher.Close()
	}
	if c.durable != nil {
		c.durable.Close()
	}
}

// retriever snapshots the (embedder, db) pair so one call works against a
// consistent retriever even if SetEmbedder swaps it mid-flight.
func (c *Copilot) retriever() (Embedder, vectordb.Index) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.embedder, c.db
}

// retrieverCached is retriever plus the embed-cache generation captured
// under the same lock, so a cache fill can be discarded if SetEmbedder
// swapped the embedder (and bumped the generation) after the snapshot.
func (c *Copilot) retrieverCached() (Embedder, vectordb.Index, uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.embedder, c.db, c.embedCache.generation()
}

// Index returns the vector store (nil until SetEmbedder).
func (c *Copilot) Index() vectordb.Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.db
}

// trainPartitioner retrains an IVF-partitioned sharded index from its
// stored vectors. It is a no-op for the flat store and category routing;
// called after batch ingest so the quantizer reflects the loaded history.
// The handoff onto the trained quantizer is incremental — ingest and
// queries keep flowing — and under exact serving (Config.Probes == 0)
// placement never changes retrieval results, so retraining is invisible
// to Predict. With Probes > 0 this training is also the moment
// probe-limited serving engages: the freshly trained centroids are what
// probe selection ranks.
func (c *Copilot) trainPartitioner(db vectordb.Index) error {
	if c.cfg.Partitioner != PartitionIVF {
		return nil
	}
	s, ok := vectordb.AsSharded(db)
	if !ok || s.Len() == 0 {
		return nil
	}
	return s.TrainIVF(0)
}

// Collect runs the collection stage: match the incident's alert type to the
// team's handler and execute it, enriching the incident with multi-source
// evidence and action outputs. Each call executes on its own per-run
// execution context based at the incident's creation time, so concurrent
// collections never interleave their cost attribution or clock views (see
// the package comment); the finished run's cost merges back into the fleet
// meter and advances the shared virtual clock.
func (c *Copilot) Collect(inc *incident.Incident) (*handler.RunReport, error) {
	if err := inc.Validate(); err != nil {
		return nil, err
	}
	h, err := c.matchHandler(inc)
	if err != nil {
		return nil, err
	}
	ec := c.fleet.NewExec(inc.CreatedAt)
	if c.cfg.MultiTenant {
		ec = c.fleet.NewExecTenant(inc.CreatedAt, inc.OwningTeam)
	}
	// Merge on every exit: a failed run's already-charged queries must still
	// reach the fleet meter, as they did on the pre-context ambient path.
	defer ec.Finish()
	return c.runner.RunWith(ec, h, inc)
}

// matchHandler resolves the incident's collection handler. Multi-tenant
// serving tries the owning team's handler set first and falls back to the
// configured Team's (where InstallBuiltins registered the stock
// handlers), so a tenant without bespoke handlers still collects.
func (c *Copilot) matchHandler(inc *incident.Incident) (*handler.Handler, error) {
	if c.cfg.MultiTenant && inc.OwningTeam != "" && inc.OwningTeam != c.cfg.Team {
		if h, err := c.registry.Match(inc.OwningTeam, inc); err == nil {
			return h, nil
		}
	}
	return c.registry.Match(c.cfg.Team, inc)
}

// Summarize compresses the incident's collected diagnostic text through the
// LLM (Figure 7) and stores the result on the incident.
func (c *Copilot) Summarize(inc *incident.Incident) error {
	diag := inc.DiagnosticText()
	if diag == "" {
		return fmt.Errorf("core: incident %s has no diagnostic information to summarize (run Collect first)", inc.ID)
	}
	budget := c.chat.ContextWindow() - c.cfg.PromptReserve
	diag = prompt.TrimToTokens(diag, budget, c.chat.CountTokens)
	resp, err := c.chat.Complete(prompt.Summary(diag))
	if err != nil {
		return fmt.Errorf("core: summarize %s: %w", inc.ID, err)
	}
	c.meter.Charge("llm-summarize", resp.ModelLatency)
	inc.Summary = resp.Content
	return nil
}

// ContextText assembles the prompt context for an incident per the
// configured sources (Table 3 rows).
func (c *Copilot) ContextText(inc *incident.Incident) string {
	var parts []string
	if c.cfg.Context.AlertInfo {
		parts = append(parts, inc.Alert.Info())
	}
	if c.cfg.Context.DiagnosticInfo {
		if c.cfg.Context.Summarized && inc.Summary != "" {
			parts = append(parts, inc.Summary)
		} else {
			parts = append(parts, inc.DiagnosticText())
		}
	}
	if c.cfg.Context.ActionOutput {
		parts = append(parts, inc.ActionOutputText())
	}
	var out string
	for i, p := range parts {
		if i > 0 {
			out += "\n"
		}
		out += p
	}
	return out
}

// embedText is what the retriever embeds: the original (unsummarized)
// incident information — "we use the original incident information to do
// the embedding and nearest neighbor search, and use the corresponding
// summarized information as part of demonstrations" (§4.2.4).
func (c *Copilot) embedText(inc *incident.Incident) string {
	if t := inc.DiagnosticText(); t != "" {
		return t
	}
	return inc.Alert.Info()
}

// Learn inserts a labelled historical incident into the vector store. The
// incident must carry its ground-truth category; a missing summary is
// generated on the fly.
func (c *Copilot) Learn(inc *incident.Incident) error {
	embedder, db := c.retriever()
	if embedder == nil {
		return fmt.Errorf("core: no embedder attached (call SetEmbedder)")
	}
	entry, err := c.prepareEntry(embedder, inc)
	if err != nil {
		return err
	}
	return db.Add(entry)
}

// prepareEntry does the expensive half of Learn — summarization and
// embedding — without touching the store, so a batch ingest can run it on
// many incidents concurrently and commit the entries in order afterwards.
func (c *Copilot) prepareEntry(embedder Embedder, inc *incident.Incident) (vectordb.Entry, error) {
	if inc.Category == "" {
		return vectordb.Entry{}, fmt.Errorf("core: incident %s has no root-cause label", inc.ID)
	}
	if inc.Summary == "" && c.cfg.Context.Summarized {
		if err := c.Summarize(inc); err != nil {
			return vectordb.Entry{}, err
		}
	}
	vec, err := embedder.Embed(c.embedText(inc))
	if err != nil {
		return vectordb.Entry{}, fmt.Errorf("core: embed %s: %w", inc.ID, err)
	}
	demo := inc.Summary
	if demo == "" {
		demo = prompt.TrimToTokens(c.embedText(inc), 200, c.chat.CountTokens)
	}
	entry := vectordb.Entry{
		ID:       inc.ID,
		Vector:   vec,
		Category: inc.Category,
		Time:     inc.CreatedAt,
		Summary:  demo,
	}
	if c.cfg.MultiTenant {
		// The owning team is the tenant: the entry lands in the team's
		// namespace over the shared shard pool, and only that team's
		// retrievals (and unscoped operator queries) will see it.
		entry.Namespace = inc.OwningTeam
	}
	return entry, nil
}

// LearnBatch ingests many labelled incidents at once: summaries and
// embeddings are computed on the shared worker pool (workers <= 0 means
// GOMAXPROCS, 1 is sequential), then the entries are committed to the
// vector store in input order, so the resulting store is identical to a
// sequential Learn loop. Incidents are mutated like Learn mutates them
// (a missing Summary is filled in).
func (c *Copilot) LearnBatch(incs []*incident.Incident, workers int) error {
	embedder, db := c.retriever()
	if embedder == nil {
		return fmt.Errorf("core: no embedder attached (call SetEmbedder)")
	}
	entries, err := parallel.Map(len(incs), workers, func(i int) (vectordb.Entry, error) {
		return c.prepareEntry(embedder, incs[i])
	})
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := db.Add(e); err != nil {
			return err
		}
	}
	// With IVF routing the quantizer trains from whatever is stored after
	// the batch lands, so bulk history loads end with balanced shards.
	return c.trainPartitioner(db)
}

// Retrieve embeds free text and returns the k nearest historical
// incidents under the temporal-decay similarity anchored at the given
// time — the raw vector-DB read an OCE dashboard or the serving daemon's
// /api/retrieve endpoint issues, without running the prediction stage.
// diverse applies the §4.2.2 category-diversity constraint (each category
// at most once). k <= 0 uses the configured K; a zero at uses the current
// wall clock.
func (c *Copilot) Retrieve(text string, at time.Time, k int, diverse bool) ([]vectordb.Scored, error) {
	return c.retrieve(text, at, k, diverse, false, "")
}

// RetrieveIn is Retrieve through one team's namespace view: only entries
// learned under that tenant are searched. An unknown team returns zero
// hits without error (an empty view, not a failure); team = "" addresses
// the default namespace. It is the read behind the daemon's
// /api/retrieve?team= parameter.
func (c *Copilot) RetrieveIn(team, text string, at time.Time, k int, diverse bool) ([]vectordb.Scored, error) {
	return c.retrieve(text, at, k, diverse, true, team)
}

func (c *Copilot) retrieve(text string, at time.Time, k int, diverse, scoped bool, team string) ([]vectordb.Scored, error) {
	embedder, db, gen := c.retrieverCached()
	if embedder == nil {
		return nil, fmt.Errorf("core: no embedder attached (call SetEmbedder)")
	}
	if strings.TrimSpace(text) == "" {
		return nil, fmt.Errorf("core: empty retrieval query")
	}
	if k <= 0 {
		k = c.cfg.K
	}
	if at.IsZero() {
		at = time.Now()
	}
	// Free-text daemon queries repeat (dashboards refresh, OCEs retry the
	// same phrasing), and embedding dominates the cost of a cached-size
	// store lookup — memoize by exact text. The generation tag keeps a
	// concurrent SetEmbedder from poisoning the new cache with an
	// old-space vector.
	query, ok := c.embedCache.get(text)
	if !ok {
		var err error
		query, err = embedder.Embed(text)
		if err != nil {
			return nil, fmt.Errorf("core: embed retrieval query: %w", err)
		}
		c.embedCache.put(text, query, gen)
	}
	if scoped {
		db = db.Namespace(team)
	}
	if db.Len() == 0 {
		return nil, nil
	}
	if diverse {
		return db.TopKDiverse(query, at, k, c.cfg.Alpha)
	}
	return db.TopK(query, at, k, c.cfg.Alpha)
}

// Predict runs the prediction stage for a collected incident: embed the
// original diagnostics, retrieve the top-K category-diverse neighbours
// under temporal-decay similarity, build the Figure 9 chain-of-thought
// prompt, and parse the model's category + explanation onto the incident.
func (c *Copilot) Predict(inc *incident.Incident) (prompt.Result, error) {
	embedder, db := c.retriever()
	if embedder == nil {
		return prompt.Result{}, fmt.Errorf("core: no embedder attached (call SetEmbedder)")
	}
	if c.cfg.Context.Summarized && c.cfg.Context.DiagnosticInfo && inc.Summary == "" {
		if err := c.Summarize(inc); err != nil {
			return prompt.Result{}, err
		}
	}
	query, err := embedder.Embed(c.embedText(inc))
	if err != nil {
		return prompt.Result{}, fmt.Errorf("core: embed query %s: %w", inc.ID, err)
	}
	if c.cfg.MultiTenant {
		// Demonstrations come from the owning team's own history: the
		// namespace view confines the neighbour search (and the Len gate)
		// to entries the team learned.
		db = db.Namespace(inc.OwningTeam)
	}
	var demos []prompt.Demo
	if db.Len() > 0 {
		hits, err := db.TopKDiverse(query, inc.CreatedAt, c.cfg.K, c.cfg.Alpha)
		if err != nil {
			return prompt.Result{}, err
		}
		budget := (c.chat.ContextWindow() - c.cfg.PromptReserve) / max(1, len(hits))
		for _, h := range hits {
			demos = append(demos, prompt.Demo{
				Summary:  prompt.TrimToTokens(h.Entry.Summary, budget, c.chat.CountTokens),
				Category: h.Entry.Category,
			})
		}
	}
	input := c.ContextText(inc)
	inputBudget := (c.chat.ContextWindow() - c.cfg.PromptReserve) / 3
	input = prompt.TrimToTokens(input, inputBudget, c.chat.CountTokens)

	resp, err := c.chat.Complete(prompt.Prediction(input, demos))
	if err != nil {
		return prompt.Result{}, fmt.Errorf("core: predict %s: %w", inc.ID, err)
	}
	c.meter.Charge("llm-predict", resp.ModelLatency)
	res, err := prompt.ParsePrediction(resp.Content)
	if err != nil {
		return prompt.Result{}, fmt.Errorf("core: predict %s: %w", inc.ID, err)
	}
	inc.Predicted = res.Category
	inc.Explanation = res.Explanation
	return res, nil
}

// HandleIncident runs the full pipeline on a fresh incident: collection,
// summarization, prediction. It returns the collection report and the
// parsed prediction. It is safe to call from many goroutines, each on its
// own incident; every stage, collection included, runs concurrently (each
// collection on its own per-run execution context).
func (c *Copilot) HandleIncident(inc *incident.Incident) (*handler.RunReport, prompt.Result, error) {
	report, err := c.Collect(inc)
	if err != nil {
		return nil, prompt.Result{}, err
	}
	if err := c.Summarize(inc); err != nil {
		return report, prompt.Result{}, err
	}
	res, err := c.Predict(inc)
	if err != nil {
		return report, prompt.Result{}, err
	}
	return report, res, nil
}

// IncidentAt stamps an incident from an alert at the given time with a
// deterministic ID suffix (the "Incident Parsing" box of Figure 4).
func IncidentAt(alert incident.Alert, severity incident.Severity, team string, seq int, at time.Time) *incident.Incident {
	return &incident.Incident{
		ID:         fmt.Sprintf("INC-%s-%06d", at.Format("20060102"), seq),
		Title:      alert.Message,
		OwningTeam: team,
		Severity:   severity,
		Alert:      alert,
		CreatedAt:  at,
	}
}
