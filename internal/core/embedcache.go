package core

import (
	"container/list"
	"sync"
)

// embedCacheSize bounds the Retrieve embed memo. Daemon retrieval traffic
// is a small working set of repeated free-text queries (dashboard
// refreshes, OCE re-issues); 256 texts of a few hundred bytes plus one
// embedding vector each is a few hundred KB at most.
const embedCacheSize = 256

// embedCache is a small bounded LRU from query text to its embedding
// vector. Entries are immutable once stored (callers must not mutate the
// returned slice — Retrieve only reads it), and the whole cache
// invalidates on SetEmbedder via clear(): vectors from different
// embedders are not comparable, so a swap bumps the generation and drops
// everything. put carries the generation its caller embedded under and is
// discarded if a clear happened in between — without the tag, a Retrieve
// racing SetEmbedder could install an old-space vector into the new
// cache.
type embedCache struct {
	mu  sync.Mutex
	cap int
	gen uint64
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type embedCacheEntry struct {
	text string
	vec  []float64
}

func newEmbedCache(capacity int) *embedCache {
	return &embedCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element, capacity)}
}

// generation returns the current invalidation epoch; callers capture it
// together with the embedder snapshot (under the Copilot lock) and pass
// it back to put.
func (c *embedCache) generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// get returns the cached embedding for text, refreshing its recency.
func (c *embedCache) get(text string) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[text]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*embedCacheEntry).vec, true
}

// put stores an embedding computed under generation gen, evicting the
// least recently used entry when full. A stale gen means SetEmbedder
// cleared the cache after the caller embedded: the vector belongs to the
// old space and is dropped.
func (c *embedCache) put(text string, vec []float64, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return
	}
	if el, ok := c.m[text]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*embedCacheEntry).vec = vec
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*embedCacheEntry).text)
	}
	c.m[text] = c.ll.PushFront(&embedCacheEntry{text: text, vec: vec})
}

// clear drops every entry and advances the generation, invalidating
// in-flight puts.
func (c *embedCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.ll.Init()
	c.m = make(map[string]*list.Element, c.cap)
}

// len reports the current entry count (tests).
func (c *embedCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
