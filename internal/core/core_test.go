package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/embed/fasttext"
	"repro/internal/incident"
	"repro/internal/llm/simgpt"
	"repro/internal/transport"
)

// testEnv builds a shared corpus + trained embedder once (deterministic).
type testEnv struct {
	corpus   *dataset.Corpus
	embedder FastTextEmbedder
}

var (
	envOnce sync.Once
	env     testEnv
)

func getEnv(t *testing.T) testEnv {
	t.Helper()
	envOnce.Do(func() {
		c, err := dataset.Generate(dataset.DefaultSpec(3))
		if err != nil {
			t.Fatalf("corpus: %v", err)
		}
		texts := make([]string, 0, len(c.Incidents))
		for _, in := range c.Incidents {
			texts = append(texts, in.DiagnosticText())
		}
		m, err := fasttext.TrainSkipgram(texts, fasttext.Config{
			Dim: 48, Epochs: 4, Window: 5, NegSamples: 4, MinCount: 2,
			Buckets: 1 << 14, Seed: 3,
		})
		if err != nil {
			t.Fatalf("fasttext: %v", err)
		}
		env = testEnv{corpus: c, embedder: FastTextEmbedder{Model: m}}
	})
	return env
}

func newCopilot(t *testing.T, cfg Config) *Copilot {
	t.Helper()
	e := getEnv(t)
	chat := simgpt.MustNew(simgpt.GPT4, simgpt.Options{Seed: 3})
	c, err := New(e.corpus.Fleet, chat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.SetEmbedder(e.embedder)
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, Config{}); err == nil {
		t.Fatal("nil fleet/chat should fail")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := newCopilot(t, Config{})
	cfg := c.Config()
	if cfg.K != 5 || cfg.Alpha != 0.3 || cfg.Team != "Transport" {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if !cfg.Context.DiagnosticInfo || !cfg.Context.Summarized {
		t.Fatalf("default context should be summarized diagnostic info: %+v", cfg.Context)
	}
}

func TestSummarizeSetsBudgetedSummary(t *testing.T) {
	e := getEnv(t)
	c := newCopilot(t, Config{})
	inc := e.corpus.Incidents[0].Clone()
	inc.Summary = ""
	if err := c.Summarize(inc); err != nil {
		t.Fatal(err)
	}
	if inc.Summary == "" {
		t.Fatal("summary not set")
	}
	words := len(strings.Fields(inc.Summary))
	if words > 160 {
		t.Fatalf("summary has %d words, exceeds Figure-7 budget", words)
	}
	if c.Meter().Total() <= 0 {
		t.Fatal("LLM latency not metered")
	}
}

func TestSummarizeRequiresEvidence(t *testing.T) {
	c := newCopilot(t, Config{})
	inc := &incident.Incident{ID: "X"}
	if err := c.Summarize(inc); err == nil {
		t.Fatal("summarize without evidence should fail")
	}
}

func TestLearnAndPredictRecurringCategory(t *testing.T) {
	e := getEnv(t)
	c := newCopilot(t, Config{})
	// Probe: the last HubPortExhaustion incident; history: the 200
	// incidents preceding it (the on-call reality — everything before the
	// incoming incident is labelled history).
	probeIdx := -1
	for i, in := range e.corpus.Incidents {
		if in.Category == "HubPortExhaustion" {
			probeIdx = i
		}
	}
	if probeIdx < 200 {
		t.Fatalf("last HubPortExhaustion at %d, too early for this scenario", probeIdx)
	}
	probe := e.corpus.Incidents[probeIdx].Clone()
	learned := 0
	for i := probeIdx - 200; i < probeIdx; i++ {
		if err := c.Learn(e.corpus.Incidents[i].Clone()); err != nil {
			t.Fatalf("Learn: %v", err)
		}
		learned++
	}
	if c.Index().Len() != learned {
		t.Fatalf("db has %d entries, want %d", c.Index().Len(), learned)
	}
	probe.Summary = ""
	probe.Predicted = ""
	res, err := c.Predict(probe)
	if err != nil {
		t.Fatal(err)
	}
	if probe.Predicted == "" || probe.Explanation == "" {
		t.Fatal("prediction must set category and explanation on the incident")
	}
	if !res.Unseen && res.Category != probe.Predicted {
		t.Fatal("result/category mismatch")
	}
	// With a rich history of this frequent category, the match should be
	// found rather than declared unseen.
	if res.Unseen {
		t.Errorf("recurring HubPortExhaustion predicted unseen; explanation: %s", res.Explanation)
	} else if res.Category != "HubPortExhaustion" {
		t.Logf("note: predicted %s (acceptable noise, but usually HubPortExhaustion)", res.Category)
	}
}

func TestPredictRequiresEmbedder(t *testing.T) {
	e := getEnv(t)
	chat := simgpt.MustNew(simgpt.GPT4, simgpt.Options{Seed: 1})
	c, err := New(e.corpus.Fleet, chat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict(e.corpus.Incidents[0].Clone()); err == nil {
		t.Fatal("predict without embedder should fail")
	}
	if err := c.Learn(e.corpus.Incidents[0].Clone()); err == nil {
		t.Fatal("learn without embedder should fail")
	}
}

func TestLearnRequiresLabel(t *testing.T) {
	e := getEnv(t)
	c := newCopilot(t, Config{})
	in := e.corpus.Incidents[0].Clone()
	in.Category = ""
	if err := c.Learn(in); err == nil {
		t.Fatal("learn without ground-truth label should fail")
	}
}

func TestContextTextAblationVariants(t *testing.T) {
	e := getEnv(t)
	inc := e.corpus.Incidents[0].Clone()
	inc.Summary = "summarized text marker"

	cases := []struct {
		name string
		cfg  ContextSources
		want string
	}{
		{"alert only", ContextSources{AlertInfo: true}, "AlertType:"},
		{"raw diag", ContextSources{DiagnosticInfo: true}, "["},
		{"summarized", ContextSources{DiagnosticInfo: true, Summarized: true}, "summarized text marker"},
		{"action output", ContextSources{ActionOutput: true}, "known-issue"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newCopilot(t, Config{Context: tc.cfg})
			got := c.ContextText(inc)
			if !strings.Contains(got, tc.want) {
				t.Errorf("context %+v missing %q:\n%.200s", tc.cfg, tc.want, got)
			}
		})
	}
	// Combined context includes all three blocks.
	c := newCopilot(t, Config{Context: ContextSources{AlertInfo: true, DiagnosticInfo: true, Summarized: true, ActionOutput: true}})
	all := c.ContextText(inc)
	for _, want := range []string{"AlertType:", "summarized text marker", "known-issue"} {
		if !strings.Contains(all, want) {
			t.Errorf("combined context missing %q", want)
		}
	}
}

func TestHandleIncidentEndToEnd(t *testing.T) {
	e := getEnv(t)
	c := newCopilot(t, Config{})
	// Seed history so retrieval has demonstrations.
	for i, in := range e.corpus.Incidents {
		if i >= 40 {
			break
		}
		if err := c.Learn(in.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh incident: inject a fault, take the monitor alert.
	fleet := e.corpus.Fleet
	fault, err := fleet.Inject("DeliveryHang", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer fault.Repair()
	alert, ok := fleet.FirstAlert()
	if !ok {
		t.Fatal("no alert")
	}
	inc := IncidentAt(alert, incident.Sev2, "Transport", 1, fleet.Clock().Now())
	report, res, err := c.HandleIncident(inc)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Steps) == 0 || len(inc.Evidence) == 0 {
		t.Fatal("collection stage did not run")
	}
	if inc.Summary == "" {
		t.Fatal("summarization stage did not run")
	}
	if res.Category == "" || inc.Predicted == "" {
		t.Fatal("prediction stage did not run")
	}
}

func TestIncidentAtShape(t *testing.T) {
	alert := incident.Alert{
		Type: transport.AlertProcessCrashSpike, Scope: incident.ScopeForest,
		Target: "F1", Forest: "F1", Message: "crashes over threshold",
	}
	e := getEnv(t)
	inc := IncidentAt(alert, incident.Sev1, "Transport", 7, e.corpus.Fleet.Clock().Now())
	if err := inc.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(inc.ID, "INC-") || inc.Title != alert.Message {
		t.Fatalf("incident malformed: %+v", inc)
	}
}

func TestLLMEmbedderAdapter(t *testing.T) {
	chat := simgpt.MustNew(simgpt.GPT4, simgpt.Options{Seed: 1})
	e := LLMEmbedder{Client: chat, EmbedDim: 64}
	if e.Dim() != 64 {
		t.Fatal("dim mismatch")
	}
	v, err := e.Embed("udp socket exhausted")
	if err != nil || len(v) != 64 {
		t.Fatalf("embed: %v len=%d", err, len(v))
	}
}
