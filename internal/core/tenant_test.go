package core

import (
	"reflect"
	"strings"
	"testing"
)

// TestCopilotDBRetired is the compile-guard for the retired DB() alias:
// the accessor is Index(); a resurrected DB() method fails this test.
func TestCopilotDBRetired(t *testing.T) {
	typ := reflect.TypeOf(&Copilot{})
	if _, ok := typ.MethodByName("DB"); ok {
		t.Fatal("Copilot.DB() is retired; use Index()")
	}
	if _, ok := typ.MethodByName("Index"); !ok {
		t.Fatal("Copilot.Index() accessor missing")
	}
}

// TestMultiTenantLearnAndRetrieve pins the tenant threading through
// Learn/RetrieveIn: learned entries land in the owning team's namespace,
// scoped retrieval stays inside it, an unknown team reads as empty
// without error, and the unscoped read still spans every tenant.
func TestMultiTenantLearnAndRetrieve(t *testing.T) {
	e := getEnv(t)
	c := newCopilot(t, Config{MultiTenant: true})
	teams := []string{"Alpha", "Beta"}
	perTeam := 25
	for i := 0; i < perTeam*len(teams); i++ {
		inc := e.corpus.Incidents[i].Clone()
		inc.OwningTeam = teams[i%len(teams)]
		if err := c.Learn(inc); err != nil {
			t.Fatalf("Learn: %v", err)
		}
	}
	if got := c.Index().Len(); got != perTeam*len(teams) {
		t.Fatalf("root store has %d entries, want %d", got, perTeam*len(teams))
	}
	for _, team := range teams {
		if got := c.Index().Namespace(team).Len(); got != perTeam {
			t.Fatalf("team %s namespace has %d entries, want %d", team, got, perTeam)
		}
	}

	query := e.corpus.Incidents[0].DiagnosticText()
	at := e.corpus.Incidents[perTeam*len(teams)].CreatedAt
	for _, team := range teams {
		hits, err := c.RetrieveIn(team, query, at, 5, false)
		if err != nil {
			t.Fatalf("RetrieveIn(%s): %v", team, err)
		}
		if len(hits) == 0 {
			t.Fatalf("RetrieveIn(%s) found nothing in a %d-entry namespace", team, perTeam)
		}
		for _, h := range hits {
			if h.Entry.Namespace != team {
				t.Fatalf("RetrieveIn(%s) leaked entry %s from namespace %q", team, h.Entry.ID, h.Entry.Namespace)
			}
		}
	}
	hits, err := c.RetrieveIn("Ghost", query, at, 5, false)
	if err != nil {
		t.Fatalf("RetrieveIn(unknown team): %v", err)
	}
	if len(hits) != 0 {
		t.Fatalf("unknown team retrieved %d hits, want 0", len(hits))
	}
	// The unscoped read is the operator view: it spans tenants.
	all, err := c.Retrieve(query, at, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, h := range all {
		seen[h.Entry.Namespace] = true
	}
	if !seen["Alpha"] || !seen["Beta"] {
		t.Fatalf("unscoped retrieval saw namespaces %v, want both tenants", seen)
	}
}

// TestMultiTenantCollectAttributesCost pins per-tenant cost accounting:
// a Collect for a tenant incident books its telemetry under "team/site"
// keys in the fleet meter (via the tenant-bound run context), while the
// stock handler fallback keeps tenants without bespoke handlers working.
func TestMultiTenantCollectAttributesCost(t *testing.T) {
	e := getEnv(t)
	c := newCopilot(t, Config{MultiTenant: true})
	inc := e.corpus.Incidents[0].Clone()
	inc.OwningTeam = "Alpha" // no bespoke handlers: falls back to the stock set
	if _, err := c.Collect(inc); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	found := false
	for key := range c.fleet.Meter().ByKey() {
		if strings.HasPrefix(key, "Alpha/") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no Alpha/-prefixed telemetry key in fleet meter %v", c.fleet.Meter().ByKey())
	}

	// Single-tenant mode never prefixes: the copilots share the corpus
	// fleet, so compare against a snapshot and check only the keys this
	// Collect charged.
	c2 := newCopilot(t, Config{})
	before := c2.fleet.Meter().ByKey()
	inc2 := e.corpus.Incidents[1].Clone()
	if _, err := c2.Collect(inc2); err != nil {
		t.Fatalf("Collect: %v", err)
	}
	charged := 0
	for key, v := range c2.fleet.Meter().ByKey() {
		if v == before[key] {
			continue
		}
		charged++
		if strings.Contains(key, "/") {
			t.Fatalf("single-tenant Collect charged tenant-prefixed key %q", key)
		}
	}
	if charged == 0 {
		t.Fatal("single-tenant Collect charged no telemetry")
	}
}

// TestMultiTenantPredictScopes pins Predict's namespace scoping: a
// tenant whose namespace is empty predicts Unseen even though another
// tenant has rich history for the category in the shared pool.
func TestMultiTenantPredictScopes(t *testing.T) {
	e := getEnv(t)
	c := newCopilot(t, Config{MultiTenant: true})
	for i := 0; i < 40; i++ {
		inc := e.corpus.Incidents[i].Clone()
		inc.OwningTeam = "Alpha"
		if err := c.Learn(inc); err != nil {
			t.Fatalf("Learn: %v", err)
		}
	}
	probe := e.corpus.Incidents[40].Clone()
	probe.OwningTeam = "Beta"
	probe.Predicted = ""
	res, err := c.Predict(probe)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if !res.Unseen {
		t.Fatalf("empty-namespace tenant predicted %q from another tenant's history", res.Category)
	}
}
