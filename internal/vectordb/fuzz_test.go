package vectordb

import (
	"math"
	"testing"
)

// FuzzProbeEquivalence cross-checks probe-limited serving against two
// oracles on fuzzed (corpus seed, shard count, probe budget, query)
// tuples:
//
//   - when the store reports the exact fallback (probes = 0, budget
//     covering every populated partition, ...), results must be
//     bit-identical to the flat reference;
//   - when probe mode engages, results must be bit-identical to a flat
//     store built from exactly the probed partitions' entries — i.e.
//     probe-limited search is exact search restricted to the selected
//     partitions, never a third behaviour.
//
// The seeds double as regression tests on every plain `go test` run; CI
// additionally runs a short coverage-guided session (-fuzz).
func FuzzProbeEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(1), 1.0, 2.0, 3.0, 4.0)
	f.Add(int64(99), uint8(8), uint8(2), 10.0, 0.0, -3.0, 7.5)
	f.Add(int64(7), uint8(2), uint8(0), 0.0, 0.0, 0.0, 0.0)
	f.Add(int64(123), uint8(6), uint8(5), -2.0, 19.0, 4.0, 11.0)
	f.Fuzz(func(t *testing.T, seed int64, shardsB, probesB uint8, qa, qb, qc, qd float64) {
		const n, dim, clusters, k = 60, 4, 3, 5
		shards := 2 + int(shardsB%7)             // 2..8
		probes := int(probesB % uint8(shards+2)) // 0..shards+1
		query := []float64{qa, qb, qc, qd}
		for _, x := range query {
			if math.IsNaN(x) || math.Abs(x) > 1e6 {
				return // non-finite similarity has no defined ordering
			}
		}

		entries, _ := clusteredCorpus(seed, n, dim, clusters)
		qt := entries[0].Time
		flat := New(dim)
		sh := NewSharded(dim, shards, nil)
		for _, e := range entries {
			must(t, flat.Add(e))
			must(t, sh.Add(e))
		}
		if err := sh.TrainIVF(0); err != nil {
			t.Fatal(err)
		}
		must(t, sh.SetProbes(probes))

		// Recover the partition selection the query will see (in-package
		// white-box access; the store is quiescent, so this is the same
		// selection TopK computes).
		sh.mu.RLock()
		sel := sh.probeShards(sh.gen, query, qt, 0.3)
		sh.mu.RUnlock()

		oracle := flat
		if sel != nil {
			oracle = New(dim)
			for _, probed := range sel {
				for _, e := range probed.snapshot() {
					must(t, oracle.Add(e))
				}
			}
		}

		got, err := sh.TopK(query, qt, k, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		want, err := oracle.TopK(query, qt, k, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		sameScored(t, "TopK", got, want)

		gotD, err := sh.TopKDiverse(query, qt, k, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		wantD, err := oracle.TopKDiverse(query, qt, k, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		sameScored(t, "TopKDiverse", gotD, wantD)
	})
}
