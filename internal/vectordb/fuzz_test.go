package vectordb

import (
	"fmt"
	"math"
	"testing"
)

// FuzzProbeEquivalence cross-checks probe-limited serving — including the
// two-stage quantized scan — against oracles on fuzzed (corpus seed,
// shard count, probe budget, overfetch, query) tuples:
//
//   - when the store reports the exact fallback (probes = 0, budget
//     covering every populated partition, ...), results must be
//     bit-identical to the flat reference — quantization enabled or not,
//     the int8 stage must never leak into exact fan-out;
//   - when probe mode engages and k×overfetch covers every probed
//     partition, the quantized two-stage results must be bit-identical to
//     a flat store built from exactly the probed partitions' entries —
//     candidate collection plus exact re-rank degenerates to exact search
//     restricted to the selection;
//   - when the candidate budget does NOT cover the probed partitions, the
//     result is approximate but must stay sane: correct length, every hit
//     from a probed partition with its exact (distance, similarity)
//     re-ranked scores, in the standard retrieval order — and never a
//     panic at any dim/overfetch/corpus shape;
//   - at every fuzzed shape, TopKBatch over a batch of fuzzed size built
//     around the query (perturbed variants, mixed k/alpha/diverse, some
//     members namespace-scoped) must return, per member, exactly the
//     sequential TopK/TopKDiverse result — the batch bit-identity
//     contract under all of the above modes at once;
//   - the corpus is spread across namespaces, and each non-default
//     namespace view (flat and sharded, fresh tenants serving exact)
//     must be bit-identical to a dedicated flat store holding only that
//     tenant's entries — the namespace-view contract.
//
// The seeds double as regression tests on every plain `go test` run; CI
// additionally runs a short coverage-guided session (-fuzz).
func FuzzProbeEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(1), uint8(200), uint8(3), 1.0, 2.0, 3.0, 4.0)
	f.Add(int64(99), uint8(8), uint8(2), uint8(0), uint8(0), 10.0, 0.0, -3.0, 7.5)
	f.Add(int64(7), uint8(2), uint8(0), uint8(3), uint8(7), 0.0, 0.0, 0.0, 0.0)
	f.Add(int64(123), uint8(6), uint8(5), uint8(1), uint8(12), -2.0, 19.0, 4.0, 11.0)
	f.Fuzz(func(t *testing.T, seed int64, shardsB, probesB, overB, batchB uint8, qa, qb, qc, qd float64) {
		const n, dim, clusters, k = 60, 4, 3, 5
		shards := 2 + int(shardsB%7)             // 2..8
		probes := int(probesB % uint8(shards+2)) // 0..shards+1
		overfetch := 1 + int(overB)              // 1..256: small starves the re-rank, large covers every shard
		batchSize := 1 + int(batchB%8)           // 1..8
		query := []float64{qa, qb, qc, qd}
		for _, x := range query {
			if math.IsNaN(x) || math.Abs(x) > 1e6 {
				return // non-finite similarity has no defined ordering
			}
		}

		entries, _ := clusteredCorpus(seed, n, dim, clusters)
		qt := entries[0].Time
		// Spread the corpus across namespaces: the unscoped root scans must
		// keep serving every entry regardless of tags, and each tenant view
		// must see exactly its own slice.
		tenants := []string{"", "tenant-a", "tenant-b"}
		flat := New(dim)
		sh := NewSharded(dim, shards, nil)
		dedicated := map[string]*DB{"tenant-a": New(dim), "tenant-b": New(dim)}
		for i, e := range entries {
			e.Namespace = tenants[i%len(tenants)]
			must(t, flat.Add(e))
			must(t, sh.Add(e))
			if d := dedicated[e.Namespace]; d != nil {
				must(t, d.Add(e))
			}
		}
		if err := sh.TrainIVF(0); err != nil {
			t.Fatal(err)
		}
		must(t, sh.SetProbes(probes))
		if err := sh.EnableQuantized(overfetch); err != nil {
			t.Fatal(err)
		}

		// Recover the partition selection the query will see (in-package
		// white-box access; the store is quiescent, so this is the same
		// selection TopK computes), and whether the candidate budget covers
		// every probed partition.
		sh.mu.RLock()
		sel := sh.probeShards(sh.gen, query, qt, 0.3, sh.Probes())
		sh.mu.RUnlock()
		covered := true
		for _, probed := range sel {
			if probed.length() > k*overfetch {
				covered = false
			}
		}

		oracle := flat
		probedIDs := make(map[string]bool)
		if sel != nil {
			oracle = New(dim)
			for _, probed := range sel {
				for _, e := range probed.snapshot() {
					must(t, oracle.Add(e))
					probedIDs[e.ID] = true
				}
			}
		}

		got, err := sh.TopK(query, qt, k, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		gotD, err := sh.TopKDiverse(query, qt, k, 0.3)
		if err != nil {
			t.Fatal(err)
		}

		// Namespace-view bit-identity: a fresh tenant's probe budget is 0
		// (exact fan-out), so at every fuzzed shape — quantization and root
		// probe budget included — both the sharded and the flat view must
		// match a dedicated flat store holding only that tenant's entries.
		for ns, d := range dedicated {
			wantNS, err := d.TopK(query, qt, k, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			for _, view := range []Index{sh.Namespace(ns), flat.Namespace(ns)} {
				gotNS, err := view.TopK(query, qt, k, 0.3)
				if err != nil {
					t.Fatal(err)
				}
				sameScored(t, "namespace "+ns+" TopK", gotNS, wantNS)
			}
			wantNSD, err := d.TopKDiverse(query, qt, k, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			for _, view := range []Index{sh.Namespace(ns), flat.Namespace(ns)} {
				gotNSD, err := view.TopKDiverse(query, qt, k, 0.3)
				if err != nil {
					t.Fatal(err)
				}
				sameScored(t, "namespace "+ns+" TopKDiverse", gotNSD, wantNSD)
			}
		}

		// Batch bit-identity at this fuzzed shape: perturbed variants of
		// the query with mixed k/alpha/diverse must each come back exactly
		// as their sequential call would serve them — through whichever of
		// the exact/probe-limited/quantized paths the shape selects.
		batch := make([]BatchQuery, batchSize)
		for i := range batch {
			v := append([]float64(nil), query...)
			v[i%dim] += float64(i) * 0.37
			batch[i] = BatchQuery{
				Vector:  v,
				Time:    qt.AddDate(0, 0, i%2),
				K:       1 + i%7,
				Alpha:   []float64{0, 0.3, 1.1}[i%3],
				Diverse: i%2 == 0,
			}
			if i%3 == 1 {
				// Some members ride a tenant scope: the co-batched scan must
				// keep them confined to their namespace.
				batch[i].Namespace, batch[i].Scoped = tenants[1+i%2], true
			}
		}
		gotB, err := sh.TopKBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, bq := range batch {
			serve := Index(sh)
			if bq.Scoped {
				serve = sh.Namespace(bq.Namespace)
			}
			var wantB []Scored
			if bq.Diverse {
				wantB, err = serve.TopKDiverse(bq.Vector, bq.Time, bq.K, bq.Alpha)
			} else {
				wantB, err = serve.TopK(bq.Vector, bq.Time, bq.K, bq.Alpha)
			}
			if err != nil {
				t.Fatal(err)
			}
			sameScored(t, fmt.Sprintf("batch member %d", i), gotB[i], wantB)
		}

		if sel == nil || covered {
			want, err := oracle.TopK(query, qt, k, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			sameScored(t, "TopK", got, want)
			wantD, err := oracle.TopKDiverse(query, qt, k, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			sameScored(t, "TopKDiverse", gotD, wantD)
			return
		}

		// Undercovered candidate budget: approximate within the selection.
		// Length must match the restricted oracle's, every hit must come
		// from a probed partition carrying its exact re-ranked scores, and
		// the ordering must be the standard retrieval order.
		want, err := oracle.TopK(query, qt, k, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("undercovered TopK returned %d results, oracle has %d", len(got), len(want))
		}
		for i, sc := range got {
			if !probedIDs[sc.Entry.ID] {
				t.Fatalf("rank %d entry %s is outside the probed partitions", i, sc.Entry.ID)
			}
			d, s := Similarity(query, qt, sc.Entry, 0.3)
			if sc.Distance != d || sc.Similarity != s {
				t.Fatalf("rank %d entry %s carries approximate scores (%v, %v), want exact (%v, %v)",
					i, sc.Entry.ID, sc.Distance, sc.Similarity, d, s)
			}
			if i > 0 && ranksAfter(got[i-1], sc) {
				t.Fatalf("results out of retrieval order at rank %d", i)
			}
		}
		for i, sc := range gotD {
			if !probedIDs[sc.Entry.ID] {
				t.Fatalf("diverse rank %d entry %s is outside the probed partitions", i, sc.Entry.ID)
			}
			if i > 0 && ranksAfter(gotD[i-1], sc) {
				t.Fatalf("diverse results out of retrieval order at rank %d", i)
			}
		}
	})
}
