package vectordb

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
)

// AutoConfig parameterizes the adaptive serving controller
// (Sharded.EnableAdaptive). Two independent loops can be enabled:
//
//   - Recall-SLO auto-tuning (RecallTarget > 0): a fraction of live
//     TopK/TopKDiverse queries is shadowed with an exact fan-out off the
//     hot path, observed recall@k feeds a controller, and the effective
//     probe budget grows or shrinks to hold the target.
//   - Skew-triggered retraining (RetrainSkew >= 1): per-shard imbalance
//     (max/mean of ShardLens) and centroid drift (mean assignment distance
//     of recent inserts vs the quantizer's training distortion) are checked
//     as entries stream in, and the online TrainIVF is kicked automatically
//     — rate-limited — once either ratio crosses the threshold.
//
// At least one loop must be enabled.
type AutoConfig struct {
	// RecallTarget is the recall@k SLO the probe controller holds, in
	// (0, 1] — e.g. 0.95. 0 disables the auto-tuner (retrain-only config).
	RecallTarget float64
	// ShadowRate is the fraction of live queries sampled for an exact
	// shadow comparison, in (0, 1]. Default 0.05 (one query in twenty).
	ShadowRate float64
	// Window is how many recall samples the controller aggregates per
	// grow/shrink decision. Default 8.
	Window int
	// RetrainSkew enables skew-triggered retraining when >= 1: TrainIVF is
	// kicked once max/mean of ShardLens — or the drift ratio of recent
	// inserts' centroid distance over the training distortion — reaches
	// this value. Both are dimensionless "how far above balanced" ratios,
	// so one knob governs them. 0 disables auto-retraining.
	RetrainSkew float64
	// MinRetrainInterval rate-limits automatic retrains. Default 1 minute.
	MinRetrainInterval time.Duration
	// RetrainCheckEvery is how many Adds elapse between skew checks (the
	// check itself runs off the insert path). Default 64.
	RetrainCheckEvery int
	// Now overrides the clock the retrain rate limiter reads (tests,
	// simulations). Default time.Now.
	Now func() time.Time
}

func (c AutoConfig) withDefaults() AutoConfig {
	if c.RecallTarget > 0 && c.ShadowRate == 0 {
		c.ShadowRate = 0.05
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.MinRetrainInterval == 0 {
		c.MinRetrainInterval = time.Minute
	}
	if c.RetrainCheckEvery <= 0 {
		c.RetrainCheckEvery = 64
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

func (c AutoConfig) validate() error {
	if c.RecallTarget < 0 || c.RecallTarget > 1 {
		return fmt.Errorf("vectordb: RecallTarget %v outside [0, 1]", c.RecallTarget)
	}
	if c.ShadowRate < 0 || c.ShadowRate > 1 {
		return fmt.Errorf("vectordb: ShadowRate %v outside [0, 1]", c.ShadowRate)
	}
	if c.RetrainSkew != 0 && c.RetrainSkew < 1 {
		return fmt.Errorf("vectordb: RetrainSkew %v must be 0 (off) or >= 1 (a max/mean ratio)", c.RetrainSkew)
	}
	if c.RecallTarget == 0 && c.RetrainSkew == 0 {
		return fmt.Errorf("vectordb: adaptive config enables neither the recall tuner (RecallTarget) nor auto-retrain (RetrainSkew)")
	}
	if c.MinRetrainInterval < 0 {
		return fmt.Errorf("vectordb: negative MinRetrainInterval %v", c.MinRetrainInterval)
	}
	return nil
}

// Tuner is the adaptive serving controller of a Sharded store: it closes
// the loop between observed probe quality and the serving configuration.
// Construct it with Sharded.EnableAdaptive; all methods are safe for
// concurrent use.
type Tuner struct {
	s   *Sharded
	cfg AutoConfig
	// ns binds the controller to one non-default namespace's serving state
	// (its own probe budget, overfetch pool, and shadow window over the
	// shared shard geometry); nil is the root/default-namespace controller
	// — the pre-namespace behavior. Per-namespace controllers are created
	// on first namespace touch while adaptive serving is enabled
	// (Sharded.ensureNSTuner).
	ns *nsState

	// paused is the manual-override latch: Sharded.SetProbes sets it, and
	// while set the controller observes but never adjusts.
	paused atomic.Bool
	// overrideMu makes a manual override (pause + pin, in SetProbes)
	// atomic with respect to a controller adjustment (pause check + budget
	// write, in adjustProbes), so an in-flight decision can never land
	// after — and silently undo — an operator's pin.
	overrideMu sync.Mutex
	// shadowing admits one in-flight shadow query at a time; samples that
	// arrive while one runs are dropped, bounding shadow cost to a single
	// slot regardless of query rate.
	shadowing atomic.Bool
	inflight  sync.WaitGroup
	queries   atomic.Uint64
	adds      atomic.Uint64
	checking  atomic.Bool
	shadows   atomic.Int64
	retrains  atomic.Int64

	mu     sync.Mutex
	window []float64
	// recallSum/recallN accumulate every recall sample ever observed —
	// shadow comparisons plus free exact-fallback samples — for the
	// ObservedRecall metrics export.
	recallSum float64
	recallN   int
	// lastBad is the highest probe count recently observed missing the
	// target — the shrink path never steps back onto it, which is the
	// hysteresis that stops grow/shrink oscillation. Reset when a retrain
	// changes the partition geometry.
	lastBad     int
	lastRetrain time.Time
}

// EnableAdaptive installs an adaptive serving controller on the store and
// returns it, replacing (and un-pausing) any previous one. With
// cfg.RecallTarget > 0 the effective probe budget becomes
// controller-owned: it starts at the currently configured budget (minimum
// 1) and is grown/shrunk within [1, shards] to hold the target;
// SetProbes remains available as the manual override (it pins the budget
// and pauses the controller). With cfg.RetrainSkew >= 1 the store
// additionally retrains its IVF quantizer automatically once shard skew
// or centroid drift crosses the threshold. See AutoConfig for the knobs
// and the package comment for the full adaptive contract.
func (s *Sharded) EnableAdaptive(cfg AutoConfig) (*Tuner, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Tuner{s: s, cfg: cfg}
	if st := s.savedState.Swap(nil); st != nil {
		// A Load restored persisted serving state before any controller
		// existed: resume from the converged budget and clocks instead of
		// re-learning from cold.
		t.restore(*st)
	}
	if cfg.RecallTarget > 0 && s.Probes() == 0 {
		// Seed the controller at the cheapest budget; the SLO loop grows it
		// as shadow evidence arrives. Probe mode still engages only once an
		// IVF quantizer routes, so an untrained store keeps serving exact.
		s.probes.Store(1)
	}
	s.tuner.Store(t)
	// Every namespace gets its own controller over the same config: those
	// that already exist now, later ones on first touch (nsStateFor).
	s.adaptiveCfg.Store(&cfg)
	s.nss.Range(func(_, v any) bool {
		s.ensureNSTuner(v.(*nsState))
		return true
	})
	return t, nil
}

// restore rehydrates controller state from a persisted serving-state
// trailer (Sharded.Load): the hysteresis floor, the retrain clock, and
// the lifetime recall aggregate. The decision window restarts empty — the
// corpus may have changed shape while the store was down, so only
// long-lived state carries over.
func (t *Tuner) restore(st tunerState) {
	t.mu.Lock()
	t.lastBad = st.LastBad
	t.lastRetrain = st.LastRetrain
	t.recallSum, t.recallN = st.RecallSum, st.RecallN
	t.window = t.window[:0]
	t.mu.Unlock()
}

// DisableAdaptive removes the adaptive controller — the root one and
// every namespace's — freezing each probe budget at its current
// effective value. Call Tuner.Quiesce first if in-flight shadow work
// must complete.
func (s *Sharded) DisableAdaptive() {
	s.adaptiveCfg.Store(nil)
	s.tuner.Store(nil)
	s.nss.Range(func(_, v any) bool {
		v.(*nsState).tuner.Store(nil)
		return true
	})
}

// AdaptiveTuner returns the installed adaptive controller, or nil.
func (s *Sharded) AdaptiveTuner() *Tuner { return s.tuner.Load() }

// Quiesce blocks until every in-flight shadow query and retrain check —
// including a retrain it triggered — has completed: the barrier tests and
// benchmarks use to make controller state deterministic.
func (t *Tuner) Quiesce() { t.inflight.Wait() }

// Shadows returns how many shadow comparisons have completed.
func (t *Tuner) Shadows() int { return int(t.shadows.Load()) }

// Retrains returns how many automatic retrains the skew trigger has run.
func (t *Tuner) Retrains() int { return int(t.retrains.Load()) }

// Paused reports whether a manual SetProbes has overridden the
// controller.
func (t *Tuner) Paused() bool { return t.paused.Load() }

// ObservedRecall returns the mean recall@k across every sample the
// controller has observed — shadow comparisons plus the free recall=1
// samples exact-fallback queries feed — and the sample count. (0, 0)
// before any sample arrives. This is the shadow-recall figure a serving
// dashboard puts next to the probe budget.
func (t *Tuner) ObservedRecall() (mean float64, samples int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.recallN == 0 {
		return 0, 0
	}
	return t.recallSum / float64(t.recallN), t.recallN
}

// observeQuery is the per-query hook the serving paths call (never
// mid-rebalance): TopK/TopKDiverse once per call, and TopKBatch once per
// batch member with that member's SERVED result — so under batched
// serving the controller's observed recall measures the batched executor
// end-to-end, per-query probe growth included, not a sequential proxy.
// probed reports whether the result came from probe-limited search; when
// it did not, the serving path was exact and recall is 1 by construction
// — a free sample that lets the controller shrink back down without any
// shadow cost. Probed samples launch an exact shadow query on its own
// goroutine (one slot from the shared parallel budget, at most one in
// flight) and feed observed recall@k into the controller window. The
// shadow runs under the served query's namespace scope, so a tenant's
// observed recall measures its own view, never a co-tenant's entries.
func (t *Tuner) observeQuery(query []float64, qt time.Time, k int, alpha float64, approx []Scored, probed, diverse bool, sc scope) {
	if t.cfg.RecallTarget <= 0 || t.paused.Load() {
		return
	}
	every := uint64(math.Max(1, math.Round(1/t.cfg.ShadowRate)))
	if t.queries.Add(1)%every != 0 {
		return
	}
	if !probed {
		t.observe(1)
		return
	}
	if !t.shadowing.CompareAndSwap(false, true) {
		return
	}
	ids := make(map[string]bool, len(approx))
	for _, sc := range approx {
		ids[sc.Entry.ID] = true
	}
	// The caller owns query; copy it before the goroutine outlives the call.
	q := append([]float64(nil), query...)
	t.inflight.Add(1)
	go func() {
		defer t.inflight.Done()
		defer t.shadowing.Store(false)
		granted := parallel.Reserve(1)
		defer parallel.Release(granted)
		var exact []Scored
		var err error
		if diverse {
			exact, err = t.s.topKDiverse(q, qt, k, alpha, true, sc)
		} else {
			exact, err = t.s.topK(q, qt, k, alpha, true, sc)
		}
		if err != nil || len(exact) == 0 {
			return
		}
		// The store may have grown between the served query and this
		// shadow; entries the probe path could not have seen then count as
		// misses, biasing the controller conservative — acceptable, and it
		// vanishes as ingest quiesces.
		hit := 0
		for _, sc := range exact {
			if ids[sc.Entry.ID] {
				hit++
			}
		}
		t.shadows.Add(1)
		t.observe(float64(hit) / float64(len(exact)))
	}()
}

// observe feeds one recall sample into the controller window and, when
// the window fills, makes a grow/shrink decision: below target → grow one
// probe (and remember the failing budget); at or above the shrink margin
// → shrink one probe, but never back onto a budget recently seen failing.
// With the quantized two-stage scan on, a second knob backs the first:
// when the next grow would push the budget to the shard count — full
// fan-out, which serves exact and abandons probe-limited serving
// entirely — the controller widens the candidate pool instead
// (escalateOverfetch) and forgets probe budgets seen failing under the
// narrower pool; the remaining loss is quantization rank noise inside
// the probed shards, which more probes cannot fix but a wider re-rank
// pool can.
func (t *Tuner) observe(recall float64) {
	t.mu.Lock()
	t.recallSum += recall
	t.recallN++
	t.window = append(t.window, recall)
	if len(t.window) < t.cfg.Window {
		t.mu.Unlock()
		return
	}
	var sum float64
	for _, r := range t.window {
		sum += r
	}
	mean := sum / float64(len(t.window))
	t.window = t.window[:0]

	cur := t.effProbes()
	switch {
	case mean < t.cfg.RecallTarget:
		if cur > t.lastBad {
			t.lastBad = cur
		}
		t.mu.Unlock()
		grown := min(cur+1, t.s.NumShards())
		if grown == t.s.NumShards() && !t.paused.Load() && t.s.escalateOverfetchNS(t.ns) {
			// Growing to full fan-out abandons probe-limited serving (and
			// with it the quantized stage, whose shadow samples would read
			// a flat 1.0 and park the budget there): widen the candidate
			// pool instead, and forget probe budgets seen failing under
			// the narrower pool.
			t.mu.Lock()
			t.lastBad = 0
			t.mu.Unlock()
			return
		}
		t.adjustProbes(cur, grown)
	case mean >= t.shrinkAt() && cur > 1 && cur-1 > t.lastBad:
		t.mu.Unlock()
		t.adjustProbes(cur, cur-1)
	default:
		t.mu.Unlock()
	}
}

// shrinkAt is the hysteresis margin above the target below which the
// controller holds rather than shrinks — halfway between the target and
// perfect recall.
func (t *Tuner) shrinkAt() float64 {
	return t.cfg.RecallTarget + (1-t.cfg.RecallTarget)/2
}

// effProbes reads the probe budget this controller owns: the root
// store's for the default controller, the namespace's own otherwise.
func (t *Tuner) effProbes() int {
	if t.ns != nil {
		return int(t.ns.probes.Load())
	}
	return t.s.Probes()
}

// adjustProbes moves the effective budget from..to, clamped to [1, ∞).
// The pause check and the budget write happen under overrideMu — the
// same lock a manual SetProbes holds across its pause-and-pin — so an
// operator override is never clobbered by an in-flight decision; the
// compare-and-swap additionally drops a decision computed against a
// budget another adjustment already moved.
func (t *Tuner) adjustProbes(from, to int) {
	t.overrideMu.Lock()
	defer t.overrideMu.Unlock()
	if t.paused.Load() || to == from {
		return
	}
	if to < 1 {
		to = 1
	}
	if t.ns != nil {
		t.ns.probes.CompareAndSwap(int64(from), int64(to))
		return
	}
	t.s.probes.CompareAndSwap(int64(from), int64(to))
}

// pinProbes is SetProbes's half of the override handshake: pause the
// controller and pin the budget atomically with respect to adjustProbes.
func (t *Tuner) pinProbes(p int) {
	t.overrideMu.Lock()
	defer t.overrideMu.Unlock()
	t.paused.Store(true)
	if t.ns != nil {
		t.ns.probes.Store(int64(p))
		return
	}
	t.s.probes.Store(int64(p))
}

// noteAdd is the per-insert hook: every RetrainCheckEvery-th Add launches
// an asynchronous skew check (one at a time), so the insert hot path pays
// one atomic increment.
func (t *Tuner) noteAdd() {
	if t.cfg.RetrainSkew <= 0 {
		return
	}
	if t.adds.Add(1)%uint64(t.cfg.RetrainCheckEvery) != 0 {
		return
	}
	if !t.checking.CompareAndSwap(false, true) {
		return
	}
	t.inflight.Add(1)
	go func() {
		defer t.inflight.Done()
		defer t.checking.Store(false)
		t.checkRetrain()
	}()
}

// checkRetrain measures shard skew and centroid drift and kicks the
// online TrainIVF when either crosses the threshold, rate-limited by
// MinRetrainInterval. Runs off the insert path; TrainIVF itself is the
// incremental (non-stop-the-world) handoff.
func (t *Tuner) checkRetrain() {
	if t.s.Rebalancing() {
		return
	}
	now := t.cfg.Now()
	t.mu.Lock()
	if !t.lastRetrain.IsZero() && now.Sub(t.lastRetrain) < t.cfg.MinRetrainInterval {
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()

	if !t.skewed() && !t.drifted() {
		return
	}

	t.mu.Lock()
	t.lastRetrain = now
	// The partition geometry is about to change: forget which budgets were
	// failing under the old centroids.
	t.lastBad = 0
	t.mu.Unlock()
	if err := t.s.TrainIVF(0); err == nil {
		t.retrains.Add(1)
	}
}

// skewed reports whether per-shard load imbalance (max/mean of ShardLens)
// has reached the retrain threshold.
func (t *Tuner) skewed() bool {
	lens := t.s.ShardLens()
	if len(lens) < 2 {
		return false
	}
	total, maxLen := 0, 0
	for _, l := range lens {
		total += l
		if l > maxLen {
			maxLen = l
		}
	}
	if total == 0 {
		return false
	}
	mean := float64(total) / float64(len(lens))
	return float64(maxLen)/mean >= t.cfg.RetrainSkew
}

// drifted reports whether recent inserts sit far from their assigned
// centroids relative to the quantizer's training distortion — the signal
// that the corpus has moved and the trained geometry is stale. It samples
// each shard's newest rows (inserts append, so the tail is what arrived
// since training) and compares their mean centroid distance against the
// training baseline.
func (t *Tuner) drifted() bool {
	const tailPerShard = 8
	s := t.s
	s.mu.RLock()
	ivf, ok := s.gen.parts.(*IVF)
	shards := s.gen.shard
	s.mu.RUnlock()
	if !ok || ivf.distortion <= 0 {
		return false
	}
	var sum float64
	var n int
	for i, sh := range shards {
		sh.mu.RLock()
		for j := len(sh.entries) - 1; j >= 0 && j >= len(sh.entries)-tailPerShard; j-- {
			sum += Distance(sh.row(j), ivf.centroids[i])
			n++
		}
		sh.mu.RUnlock()
	}
	if n == 0 {
		return false
	}
	return (sum / float64(n) / ivf.distortion) >= t.cfg.RetrainSkew
}
