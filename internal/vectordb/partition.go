package vectordb

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Partitioner decides which shard of a Sharded index stores an entry. In
// the default exact serving mode routing only affects data placement —
// every query fans out across all shards and searches exactly, so the
// partitioner changes load balance and parallelism, never results. Under
// probe-limited serving (Sharded.SetProbes) an IVF partitioner's centroid
// geometry additionally decides which partitions a query searches, so
// placement then trades recall for latency. Implementations must be safe
// for concurrent Route calls (both shipped partitioners are immutable
// after construction) and must return indices in [0, Shards()); the store
// validates placements and rejects out-of-range routes with an error
// rather than corrupting itself.
type Partitioner interface {
	// Shards returns the number of partitions routed to.
	Shards() int
	// Route returns the shard index in [0, Shards()) for an entry.
	Route(e Entry) int
}

// CategoryHash routes entries by a hash of their root-cause category, so
// every category lives wholly inside one shard. This is the default: the
// paper's corpus is category-heavy (163 categories over 653 incidents), and
// keeping a category together makes the diverse-retrieval merge trivial.
type CategoryHash struct {
	// N is the shard count.
	N int
}

// Shards implements Partitioner.
func (c CategoryHash) Shards() int { return c.N }

// Route implements Partitioner (FNV-1a over the category label).
func (c CategoryHash) Route(e Entry) int {
	h := fnv.New32a()
	h.Write([]byte(e.Category))
	return int(h.Sum32() % uint32(c.N))
}

// IVF is an inverted-file-style coarse quantizer: entries route to the
// shard whose trained centroid is nearest their embedding vector, so each
// shard holds one region of the vector space. Train it from the vectors
// already stored (Sharded.TrainIVF) once enough history has accumulated.
type IVF struct {
	centroids [][]float64
	// distortion is the mean assignment distance (vector to its nearest
	// centroid) over the training set — the quantization-quality baseline
	// the adaptive controller's drift detector compares fresh inserts
	// against (see Sharded.EnableAdaptive).
	distortion float64
}

// Shards implements Partitioner.
func (p *IVF) Shards() int { return len(p.centroids) }

// Route implements Partitioner: nearest centroid by Euclidean distance,
// ties broken toward the lowest shard index for determinism.
func (p *IVF) Route(e Entry) int {
	best, bestDist := 0, Distance(e.Vector, p.centroids[0])
	for i := 1; i < len(p.centroids); i++ {
		if d := Distance(e.Vector, p.centroids[i]); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// centroidDists returns the Euclidean distance from the query to every
// shard centroid, indexed by shard — the raw geometry both probe rankings
// (distance-only and time-aware) are built from.
func (p *IVF) centroidDists(query []float64) []float64 {
	dists := make([]float64, len(p.centroids))
	for i, c := range p.centroids {
		dists[i] = Distance(query, c)
	}
	return dists
}

// nearestShards returns every shard index ordered by ascending Euclidean
// distance between the query and the shard's centroid, ties toward the
// lower index — the distance-only probe-selection ranking. Centroids carry
// no timestamp, so under this ranking the temporal-decay factor of the
// retrieval similarity cannot participate in partition selection; the
// store's time-aware ranking (the default) folds each partition's
// newest-entry timestamp back in (see Sharded.SetProbeRanking).
func (p *IVF) nearestShards(query []float64) []int {
	dists := p.centroidDists(query)
	order := make([]int, len(dists))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	return order
}

// Distortion returns the mean training-set assignment distance (0 for a
// quantizer not produced by TrainIVF).
func (p *IVF) Distortion() float64 { return p.distortion }

// IVFFromCentroids reconstructs a quantizer from previously trained
// geometry — Centroids() and Distortion() of an earlier TrainIVF — so a
// persisted retrain event (a WAL record, a shipped snapshot) can restore
// routing without access to the original training vectors. The centroids
// are copied and validated: at least one, all the same nonzero width, a
// non-negative distortion.
func IVFFromCentroids(centroids [][]float64, distortion float64) (*IVF, error) {
	if len(centroids) == 0 {
		return nil, fmt.Errorf("vectordb: IVFFromCentroids with no centroids")
	}
	if distortion < 0 {
		return nil, fmt.Errorf("vectordb: IVFFromCentroids with negative distortion %v", distortion)
	}
	dim := len(centroids[0])
	if dim == 0 {
		return nil, fmt.Errorf("vectordb: IVFFromCentroids with zero-width centroid")
	}
	cp := make([][]float64, len(centroids))
	for i, c := range centroids {
		if len(c) != dim {
			return nil, fmt.Errorf("vectordb: IVFFromCentroids centroid %d has dim %d, centroid 0 has %d", i, len(c), dim)
		}
		cp[i] = append([]float64(nil), c...)
	}
	return &IVF{centroids: cp, distortion: distortion}, nil
}

// Centroids returns a copy of the trained shard centroids.
func (p *IVF) Centroids() [][]float64 {
	out := make([][]float64, len(p.centroids))
	for i, c := range p.centroids {
		out[i] = append([]float64(nil), c...)
	}
	return out
}

// TrainIVF runs a deterministic Lloyd k-means over the given vectors and
// returns the resulting coarse quantizer. Centroids initialize from evenly
// strided picks over the input order and every assignment tie breaks toward
// the lowest cluster index, so identical input produces identical
// partitioners — callers wanting interleaving-independent training pass
// vectors in a canonical order (Sharded.TrainIVF sorts by entry ID). iters
// <= 0 selects the default of 8 Lloyd iterations; fewer vectors than shards
// is allowed (the surplus shards stay empty until vectors drift to them).
func TrainIVF(vectors [][]float64, shards, iters int) (*IVF, error) {
	if shards < 2 {
		return nil, fmt.Errorf("vectordb: TrainIVF needs at least 2 shards, got %d", shards)
	}
	if len(vectors) == 0 {
		return nil, fmt.Errorf("vectordb: TrainIVF needs at least one vector")
	}
	dim := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dim {
			return nil, fmt.Errorf("vectordb: TrainIVF vector %d has dim %d, vector 0 has %d", i, len(v), dim)
		}
	}
	if iters <= 0 {
		iters = 8
	}

	centroids := make([][]float64, shards)
	for i := range centroids {
		// Strided deterministic init; with n < shards this duplicates
		// vectors, which is fine — duplicated centroids just leave the
		// higher-indexed shard empty (Route ties go to the lowest index).
		centroids[i] = append([]float64(nil), vectors[(i*len(vectors))/shards]...)
	}

	assign := make([]int, len(vectors))
	var distortion float64
	for it := 0; it < iters; it++ {
		distortion = 0
		for i, v := range vectors {
			best, bestDist := 0, Distance(v, centroids[0])
			for c := 1; c < shards; c++ {
				if d := Distance(v, centroids[c]); d < bestDist {
					best, bestDist = c, d
				}
			}
			assign[i] = best
			distortion += bestDist
		}
		sums := make([][]float64, shards)
		counts := make([]int, shards)
		for i := range sums {
			sums[i] = make([]float64, dim)
		}
		for i, v := range vectors {
			c := assign[i]
			counts[c]++
			for j, x := range v {
				sums[c][j] += x
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // empty cluster keeps its previous centroid
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	// The recorded distortion is the assignment cost against the
	// penultimate centroids (assignments are not recomputed after the last
	// mean update) — the standard Lloyd bookkeeping, and exactly what the
	// drift detector needs: a baseline for "how far is a typical in-corpus
	// vector from its centroid".
	return &IVF{centroids: centroids, distortion: distortion / float64(len(vectors))}, nil
}
