package vectordb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/incident"
	"repro/internal/wal"
)

// WAL record types of the durable layer. The payloads are self-contained
// gob streams except walRecRetry, which is opaque to this package (the
// feedback loop's retry-schedule journal rides the same log).
const (
	// walRecEntry is one entry add, namespace tag included.
	walRecEntry byte = 1
	// walRecRetrain is one IVF retrain event: the trained centroids and
	// their training distortion, enough to reinstall routing on replay
	// without the original training vectors.
	walRecRetrain byte = 2
	// walRecTunerState is a serving-state update — the same versioned
	// payload as the v2 snapshot trailer (tunerState), adopted as a
	// record type so the converged probe budgets survive crashes between
	// compactions.
	walRecTunerState byte = 3
	// walRecRetry is an opaque sidecar record for the feedback loop's
	// retry-schedule transitions; replayed payloads are handed back via
	// RetryRecords.
	walRecRetry byte = 4
)

// ivfEvent is the gob payload of a walRecRetrain record.
type ivfEvent struct {
	Centroids  [][]float64
	Distortion float64
}

// Log file names inside a Durable's directory.
const (
	walLogName  = "wal.log"
	walSnapName = "snapshot.gob"
)

// DurableOptions parameterizes the durable layer's group commit and
// compaction.
type DurableOptions struct {
	// SyncEvery is the group-commit size boundary: the append that fills
	// the batch to this many records flushes and fsyncs it. Default 64;
	// 1 makes every add durable before Add returns.
	SyncEvery int
	// SyncInterval is the group-commit goroutine's flush cadence for
	// under-filled batches, and the housekeeping cadence for tuner-state
	// journaling and the compaction check. Default 50ms.
	SyncInterval time.Duration
	// CompactBytes is the log size that triggers an automatic compaction
	// (snapshot checkpoint + log rotation). 0 defaults to 4 MiB; negative
	// disables automatic compaction (Compact can still be called).
	CompactBytes int64
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 50 * time.Millisecond
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = 4 << 20
	}
	return o
}

// DurableStats is the durable layer's observable state — the daemon's
// /metrics durability gauges.
type DurableStats struct {
	// AppendedRecords counts records accepted into the group-commit
	// batch since open (rotations reset the underlying log, not these).
	AppendedRecords int64
	// SyncedRecords counts records an fsync has made durable since open.
	SyncedRecords int64
	// ReplayedRecords counts records replayed from the log at open.
	ReplayedRecords int64
	// LogBytes is the current log file's durable size.
	LogBytes int64
	// LastCompaction is when the last snapshot checkpoint + rotation
	// completed; zero if none this process.
	LastCompaction time.Time
	// Err is the sticky log write/fsync error, "" while healthy.
	Err string
}

// Durable is the write-ahead-logged Index decorator: every Add is
// journaled to an append-only, group-committed log (internal/wal) before
// the next crash, IVF retrains and serving-state changes are journaled as
// events, and periodic compaction checkpoints the store into the existing
// gob snapshot format (v2 serving-state trailer included) and rotates the
// log via temp-file + rename. OpenDurable replays last-snapshot + WAL
// suffix into a staging store and swaps it in atomically, truncating the
// log at the first torn frame — so a SIGKILL'd process reopens with
// exactly the committed prefix of its history.
//
// The durability boundary is the group commit: an Add is durable once a
// size- or interval-triggered fsync covers its record (SyncEvery = 1
// makes Add itself the barrier; Sync forces one explicitly). Queries are
// served lock-free from the current store and never stall behind a
// compaction; Adds briefly serialize with rotation.
type Durable struct {
	dir      string
	logPath  string
	snapPath string
	factory  func() Index
	opts     DurableOptions
	walOpts  wal.Options

	// cur is the serving store (atomic so queries never block on
	// compaction); mu additionally serializes Add/AppendRetry against
	// Compact/Load, which swap the writer and snapshot the store.
	cur atomic.Value // Index
	mu  sync.RWMutex
	w   *wal.Writer

	replayed    atomic.Int64
	lastCompact atomic.Int64 // unix nanos; 0 = never
	closed      atomic.Bool

	// retryRecs holds walRecRetry payloads replayed at open, for the
	// owner (the feedback wiring) to consume; retrySnap, when installed,
	// re-journals the live retry schedule into a freshly rotated log so
	// compaction never forgets it.
	retryRecs [][]byte
	retrySnap atomic.Pointer[func() [][]byte]

	// lastState is the last journaled serving state, so housekeeping
	// appends a tuner-state record only on change.
	stateMu   sync.Mutex
	lastState tunerState

	stop chan struct{}
	done chan struct{}
}

var _ Index = (*Durable)(nil)

// OpenDurable opens (or creates) the durable store rooted at dir. The
// factory builds a fresh, fully configured inner Index (NewIndex with
// the deployment's options); recovery loads the snapshot — if present —
// into that staging store, replays the WAL suffix on top, truncates the
// log at the first torn or corrupt frame, and only then swaps the
// staging store in as the serving one: a corrupt tail can never leave a
// live store half-replayed. Replayed entry records whose ID the snapshot
// already holds are skipped — the idempotency that makes a crash between
// snapshot rename and log rotation harmless. A semantically invalid
// record (undecodable payload, dimension mismatch, unknown type) fails
// the open with a descriptive error: that is not crash damage (the
// checksum verified) but a wrong or foreign log, and serving from half
// of it would be silent data loss.
func OpenDurable(dir string, factory func() Index, opts DurableOptions) (*Durable, error) {
	if factory == nil {
		return nil, errors.New("vectordb: OpenDurable needs an index factory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vectordb: wal dir: %w", err)
	}
	opts = opts.withDefaults()
	d := &Durable{
		dir:      dir,
		logPath:  filepath.Join(dir, walLogName),
		snapPath: filepath.Join(dir, walSnapName),
		factory:  factory,
		opts:     opts,
		walOpts:  wal.Options{SyncEvery: opts.SyncEvery, SyncInterval: opts.SyncInterval},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}

	staging := factory()
	if staging == nil {
		return nil, errors.New("vectordb: OpenDurable factory returned nil")
	}
	if f, err := os.Open(d.snapPath); err == nil {
		lerr := staging.Load(f)
		f.Close()
		if lerr != nil {
			return nil, fmt.Errorf("vectordb: wal snapshot: %w", lerr)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("vectordb: wal snapshot: %w", err)
	}

	data, err := os.ReadFile(d.logPath)
	switch {
	case errors.Is(err, fs.ErrNotExist), err == nil && len(data) == 0:
		// No log yet — or a crash during creation left an empty file
		// before the header fsync. Either way, start fresh.
		w, cerr := wal.Create(d.logPath, d.walOpts)
		if cerr != nil {
			return nil, cerr
		}
		d.w = w
	case err != nil:
		return nil, fmt.Errorf("vectordb: wal log: %w", err)
	default:
		n, good, rerr := wal.Replay(data, func(r wal.Record) error { return d.applyRecord(staging, r) })
		if rerr != nil && !errors.Is(rerr, wal.ErrTorn) {
			return nil, fmt.Errorf("vectordb: wal replay: %w", rerr)
		}
		d.replayed.Store(int64(n))
		w, oerr := wal.OpenAt(d.logPath, good, d.walOpts)
		if oerr != nil {
			return nil, oerr
		}
		d.w = w
	}

	if s, ok := AsSharded(staging); ok {
		s.OnRetrain(d.logRetrain)
		d.lastState = s.servingState()
	}
	d.cur.Store(&staging)
	go d.housekeep()
	return d, nil
}

// applyRecord replays one committed WAL record into the staging store.
func (d *Durable) applyRecord(staging Index, r wal.Record) error {
	switch r.Type {
	case walRecEntry:
		var e Entry
		if err := gob.NewDecoder(bytes.NewReader(r.Payload)).Decode(&e); err != nil {
			return fmt.Errorf("entry record: %w", err)
		}
		if _, ok := staging.Get(e.ID); ok {
			// Already in the snapshot: a crash landed between the snapshot
			// rename and the log rotation, so the log's prefix re-describes
			// checkpointed state. Skipping keeps replay idempotent.
			return nil
		}
		if err := staging.Add(e); err != nil {
			return fmt.Errorf("entry record %s: %w", e.ID, err)
		}
		return nil
	case walRecRetrain:
		var ev ivfEvent
		if err := gob.NewDecoder(bytes.NewReader(r.Payload)).Decode(&ev); err != nil {
			return fmt.Errorf("retrain record: %w", err)
		}
		s, ok := AsSharded(staging)
		if !ok {
			// A flat store has no routing to restore; placement is
			// irrelevant to its results.
			return nil
		}
		p, err := IVFFromCentroids(ev.Centroids, ev.Distortion)
		if err != nil {
			return fmt.Errorf("retrain record: %w", err)
		}
		if err := s.Rebalance(p); err != nil {
			return fmt.Errorf("retrain record: %w", err)
		}
		return nil
	case walRecTunerState:
		var st tunerState
		if err := gob.NewDecoder(bytes.NewReader(r.Payload)).Decode(&st); err != nil {
			return fmt.Errorf("tuner-state record: %w", err)
		}
		if err := st.validate(); err != nil {
			return fmt.Errorf("tuner-state record: %w", err)
		}
		if s, ok := AsSharded(staging); ok {
			s.applyServingState(&st)
		}
		return nil
	case walRecRetry:
		d.retryRecs = append(d.retryRecs, append([]byte(nil), r.Payload...))
		return nil
	default:
		return fmt.Errorf("unknown WAL record type %d", r.Type)
	}
}

// load returns the serving store.
func (d *Durable) load() Index { return *d.cur.Load().(*Index) }

// Unwrap exposes the serving store to AsSharded and friends.
func (d *Durable) Unwrap() Index { return d.load() }

// appendRecord gob-encodes payload (unless it is already raw bytes) and
// appends one record under the read lock that excludes rotation.
func (d *Durable) appendRecord(typ byte, payload any) error {
	var buf bytes.Buffer
	if raw, ok := payload.([]byte); ok {
		buf.Write(raw)
	} else if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return fmt.Errorf("vectordb: wal encode: %w", err)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.w.Append(wal.Record{Type: typ, Payload: buf.Bytes()})
}

// logRetrain is the Sharded.OnRetrain observer: it journals the trained
// geometry so replay reinstalls routing (and with it probe-limited
// serving) without retraining.
func (d *Durable) logRetrain(p *IVF) {
	if d.closed.Load() {
		return
	}
	// Best effort off the rebalance path: a sticky log error surfaces
	// through Stats/Err and the next Add.
	_ = d.appendRecord(walRecRetrain, &ivfEvent{Centroids: p.Centroids(), Distortion: p.Distortion()})
}

// Add applies the entry to the serving store and journals it. The record
// is durable after the next group commit (immediately when SyncEvery is
// 1); a log append error is returned so callers know durability — not
// serving — is broken: the entry remains queryable in memory.
func (d *Durable) Add(e Entry) error {
	d.mu.RLock()
	if err := d.load().Add(e); err != nil {
		d.mu.RUnlock()
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&e); err != nil {
		d.mu.RUnlock()
		return fmt.Errorf("vectordb: wal encode: %w", err)
	}
	err := d.w.Append(wal.Record{Type: walRecEntry, Payload: buf.Bytes()})
	d.mu.RUnlock()
	return err
}

// Sync forces a group commit: every record appended before the call is
// durable when it returns — the explicit barrier (tests, shutdown).
func (d *Durable) Sync() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.w.Sync()
}

// Compact checkpoints the serving store into the snapshot (gob + v2
// serving-state trailer, temp-file + rename) and rotates the log to a
// fresh one, re-journaling the live retry-schedule sidecar so rotation
// never forgets it. Adds are held for the duration; queries keep
// flowing. Crash-safe at every step: before the snapshot rename the old
// snapshot+log pair is authoritative; between the rename and the
// rotation the log's records re-describe checkpointed state (replay
// skips them); after the rotation the fresh pair is authoritative.
func (d *Durable) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.compactLocked()
}

func (d *Durable) compactLocked() error {
	// Flush the batch first: if any later step fails, the old log must
	// already cover everything the store serves.
	if err := d.w.Sync(); err != nil {
		return err
	}
	idx := d.load()
	tmp := d.snapPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("vectordb: compact: %w", err)
	}
	if err := idx.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("vectordb: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("vectordb: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("vectordb: compact: %w", err)
	}
	if err := os.Rename(tmp, d.snapPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("vectordb: compact: %w", err)
	}
	syncDir(d.dir)
	next, err := wal.Create(d.logPath, d.walOpts)
	if err != nil {
		// The snapshot advanced but the old log is still in place —
		// replay stays correct (records past the snapshot are skipped as
		// duplicates), just uncompacted.
		return fmt.Errorf("vectordb: compact: rotate: %w", err)
	}
	old := d.w
	d.w = next
	old.Close()
	if fn := d.retrySnap.Load(); fn != nil {
		for _, p := range (*fn)() {
			if err := d.w.Append(wal.Record{Type: walRecRetry, Payload: p}); err != nil {
				return err
			}
		}
		if err := d.w.Sync(); err != nil {
			return err
		}
	}
	d.lastCompact.Store(time.Now().UnixNano())
	return nil
}

// housekeep is the durable layer's background loop: on every
// SyncInterval tick it journals serving-state changes (the tuner's
// converged budgets move without touching Add) and triggers compaction
// once the log outgrows CompactBytes.
func (d *Durable) housekeep() {
	defer close(d.done)
	ticker := time.NewTicker(d.opts.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			d.journalTunerState()
			if d.opts.CompactBytes > 0 && d.w.Bytes() > d.opts.CompactBytes {
				_ = d.Compact()
			}
		}
	}
}

// journalTunerState appends a serving-state record when the state moved
// since the last one (or the last compaction's trailer).
func (d *Durable) journalTunerState() {
	s, ok := AsSharded(d.load())
	if !ok {
		return
	}
	st := s.servingState()
	d.stateMu.Lock()
	if reflect.DeepEqual(st, d.lastState) {
		d.stateMu.Unlock()
		return
	}
	d.lastState = st
	d.stateMu.Unlock()
	_ = d.appendRecord(walRecTunerState, &st)
}

// AppendRetry journals one opaque retry-schedule transition (the
// feedback loop's gob-encoded RetryTransition) as a sidecar record.
func (d *Durable) AppendRetry(payload []byte) error {
	return d.appendRecord(walRecRetry, payload)
}

// RetryRecords returns the sidecar payloads replayed at open, in log
// order — the feedback wiring decodes these to restore its retry
// schedule after a crash.
func (d *Durable) RetryRecords() [][]byte {
	out := make([][]byte, len(d.retryRecs))
	for i, p := range d.retryRecs {
		out[i] = append([]byte(nil), p...)
	}
	return out
}

// SetRetrySnapshot installs the sidecar snapshotter compaction calls to
// re-journal the live retry schedule into a freshly rotated log. The
// function runs with the durable layer's rotation lock held and must not
// call back into this store.
func (d *Durable) SetRetrySnapshot(fn func() [][]byte) {
	if fn == nil {
		d.retrySnap.Store(nil)
		return
	}
	d.retrySnap.Store(&fn)
}

// Stats returns the durability gauges.
func (d *Durable) Stats() DurableStats {
	st := DurableStats{ReplayedRecords: d.replayed.Load()}
	d.mu.RLock()
	st.AppendedRecords = d.w.Appended()
	st.SyncedRecords = d.w.Synced()
	st.LogBytes = d.w.Bytes()
	if err := d.w.Err(); err != nil {
		st.Err = err.Error()
	}
	d.mu.RUnlock()
	if ns := d.lastCompact.Load(); ns != 0 {
		st.LastCompaction = time.Unix(0, ns)
	}
	return st
}

// Close journals a final serving-state record, flushes the log and stops
// the background loop. The store keeps serving queries after Close; only
// durability stops.
func (d *Durable) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	close(d.stop)
	<-d.done
	d.journalTunerState()
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.w.Close()
}

// syncDir fsyncs a directory so renames in it are durable; best effort.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		_ = f.Sync()
		f.Close()
	}
}

// Dim implements Index.
func (d *Durable) Dim() int { return d.load().Dim() }

// Len implements Index.
func (d *Durable) Len() int { return d.load().Len() }

// Get implements Index.
func (d *Durable) Get(id string) (Entry, bool) { return d.load().Get(id) }

// Categories implements Index.
func (d *Durable) Categories() []incident.Category { return d.load().Categories() }

// CountByCategory implements Index.
func (d *Durable) CountByCategory() map[incident.Category]int { return d.load().CountByCategory() }

// TopK implements Index, lock-free against compaction.
func (d *Durable) TopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return d.load().TopK(query, qt, k, alpha)
}

// TopKDiverse implements Index.
func (d *Durable) TopKDiverse(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return d.load().TopKDiverse(query, qt, k, alpha)
}

// TopKBatch implements Index.
func (d *Durable) TopKBatch(queries []BatchQuery) ([][]Scored, error) {
	return d.load().TopKBatch(queries)
}

// Namespace returns the durable view of one tenant namespace: Add tags
// and journals (namespace included in the entry record), queries scope
// through the serving store's view.
func (d *Durable) Namespace(ns string) Index { return durableView{d: d, ns: ns} }

// Save implements Index, delegating to the serving store (snapshot +
// serving-state trailer when sharded).
func (d *Durable) Save(w io.Writer) error { return d.load().Save(w) }

// Load replaces the store contents with a snapshot, durably: the
// snapshot loads into a staging store built by the factory — the live
// store is untouched on any validation error, mirroring decodeSnapshot's
// never-clobber contract — then swaps in and is immediately checkpointed
// (Compact), so the WAL directory reflects the loaded contents rather
// than resurrecting the pre-Load history on the next open.
func (d *Durable) Load(r io.Reader) error {
	staging := d.factory()
	if err := staging.Load(r); err != nil {
		return err
	}
	if s, ok := AsSharded(staging); ok {
		s.OnRetrain(d.logRetrain)
		d.stateMu.Lock()
		d.lastState = s.servingState()
		d.stateMu.Unlock()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cur.Store(&staging)
	return d.compactLocked()
}

// durableView is Durable's namespace lens; see Durable.Namespace.
type durableView struct {
	d  *Durable
	ns string
}

var _ Index = durableView{}

func (v durableView) Dim() int { return v.d.load().Dim() }

func (v durableView) Len() int { return v.d.load().Namespace(v.ns).Len() }

// Add tags the entry with the view's namespace and journals it through
// the durable root — the WAL entry record carries the tag, so replay
// restores per-tenant contents and counts.
func (v durableView) Add(e Entry) error {
	e.Namespace = v.ns
	return v.d.Add(e)
}

func (v durableView) Get(id string) (Entry, bool) { return v.d.load().Namespace(v.ns).Get(id) }

func (v durableView) Categories() []incident.Category {
	return v.d.load().Namespace(v.ns).Categories()
}

func (v durableView) CountByCategory() map[incident.Category]int {
	return v.d.load().Namespace(v.ns).CountByCategory()
}

func (v durableView) TopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return v.d.load().Namespace(v.ns).TopK(query, qt, k, alpha)
}

func (v durableView) TopKDiverse(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return v.d.load().Namespace(v.ns).TopKDiverse(query, qt, k, alpha)
}

func (v durableView) TopKBatch(queries []BatchQuery) ([][]Scored, error) {
	return v.d.load().Namespace(v.ns).TopKBatch(queries)
}

func (v durableView) Namespace(ns string) Index { return v.d.Namespace(ns) }

// Save writes the whole store, not just the view's namespace (a view is
// a lens, not a partition); Load likewise replaces the whole store.
func (v durableView) Save(w io.Writer) error { return v.d.Save(w) }

// Load replaces the whole underlying store; see Save.
func (v durableView) Load(r io.Reader) error { return v.d.Load(r) }
