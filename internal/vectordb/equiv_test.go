package vectordb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/incident"
)

// buildDB fills a store with deterministic pseudo-random entries. Vectors
// and times are drawn from small discrete sets so exact similarity ties
// (same vector, same day, different IDs and categories) occur frequently —
// the case where the ID tie-break decides the ranking.
func buildDB(t *testing.T, seed int64, n, dim, numCats int) *DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := New(dim)
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64(rng.Intn(4)) // coarse grid -> many exact ties
		}
		err := db.Add(Entry{
			ID:       fmt.Sprintf("INC-%06d", i),
			Vector:   v,
			Category: incident.Category(fmt.Sprintf("cat-%02d", rng.Intn(numCats))),
			Time:     base.AddDate(0, 0, rng.Intn(10)),
			Summary:  fmt.Sprintf("summary %d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func sameScored(t *testing.T, name string, got, want []Scored) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i].Entry.ID != want[i].Entry.ID {
			t.Fatalf("%s: rank %d: %s != %s (sim %v vs %v)",
				name, i, got[i].Entry.ID, want[i].Entry.ID, got[i].Similarity, want[i].Similarity)
		}
		if got[i].Similarity != want[i].Similarity || got[i].Distance != want[i].Distance {
			t.Fatalf("%s: rank %d: score mismatch %+v vs %+v", name, i, got[i], want[i])
		}
	}
}

// TestHeapMatchesSortReference holds the streaming-heap TopK/TopKDiverse to
// the retained full-sort reference across store sizes, k values (including
// k > categories and k > n), alphas, and tie-heavy vector grids.
func TestHeapMatchesSortReference(t *testing.T) {
	qt := time.Date(2022, 1, 6, 0, 0, 0, 0, time.UTC)
	cases := []struct {
		name            string
		seed            int64
		n, dim, numCats int
	}{
		{"small-many-ties", 1, 40, 3, 4},
		{"medium", 2, 400, 8, 20},
		{"more-cats-than-k", 3, 200, 6, 60},
		{"single-category", 4, 100, 4, 1},
		{"tiny", 5, 3, 2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := buildDB(t, tc.seed, tc.n, tc.dim, tc.numCats)
			rng := rand.New(rand.NewSource(tc.seed * 97))
			for _, k := range []int{1, 2, 5, 15, tc.n + 10} {
				for _, alpha := range []float64{0, 0.001, 0.3, 0.8} {
					q := make([]float64, tc.dim)
					for j := range q {
						q[j] = float64(rng.Intn(4))
					}
					heapK, err := db.TopK(q, qt, k, alpha)
					if err != nil {
						t.Fatal(err)
					}
					sortK, err := db.sortTopK(q, qt, k, alpha)
					if err != nil {
						t.Fatal(err)
					}
					sameScored(t, fmt.Sprintf("TopK k=%d a=%v", k, alpha), heapK, sortK)

					heapD, err := db.TopKDiverse(q, qt, k, alpha)
					if err != nil {
						t.Fatal(err)
					}
					sortD, err := db.sortTopKDiverse(q, qt, k, alpha)
					if err != nil {
						t.Fatal(err)
					}
					sameScored(t, fmt.Sprintf("TopKDiverse k=%d a=%v", k, alpha), heapD, sortD)
				}
			}
		})
	}
}

// TestTieBreakByIDExact pins the tie contract directly: identical vectors
// and timestamps must rank by ascending ID, in both implementations.
func TestTieBreakByIDExact(t *testing.T) {
	db := New(2)
	at := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	// Insert in shuffled ID order so store order != ID order.
	for _, id := range []string{"INC-C", "INC-A", "INC-D", "INC-B"} {
		if err := db.Add(Entry{ID: id, Vector: []float64{1, 1}, Category: incident.Category("cat-" + id), Time: at}); err != nil {
			t.Fatal(err)
		}
	}
	q := []float64{0, 0}
	for _, fn := range []struct {
		name string
		call func() ([]Scored, error)
	}{
		{"TopK", func() ([]Scored, error) { return db.TopK(q, at, 3, 0.3) }},
		{"TopKDiverse", func() ([]Scored, error) { return db.TopKDiverse(q, at, 3, 0.3) }},
		{"sortTopK", func() ([]Scored, error) { return db.sortTopK(q, at, 3, 0.3) }},
		{"sortTopKDiverse", func() ([]Scored, error) { return db.sortTopKDiverse(q, at, 3, 0.3) }},
	} {
		got, err := fn.call()
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"INC-A", "INC-B", "INC-C"}
		if len(got) != 3 {
			t.Fatalf("%s: len = %d", fn.name, len(got))
		}
		for i, id := range want {
			if got[i].Entry.ID != id {
				t.Fatalf("%s: rank %d = %s, want %s", fn.name, i, got[i].Entry.ID, id)
			}
		}
	}
}

// TestDiverseTieAcrossCategories: two categories whose best entries tie
// exactly — the representative picked inside each category and the order
// between categories must both follow the ID tie-break.
func TestDiverseTieAcrossCategories(t *testing.T) {
	db := New(1)
	at := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	add := func(id, cat string) {
		t.Helper()
		if err := db.Add(Entry{ID: id, Vector: []float64{2}, Category: incident.Category(cat), Time: at}); err != nil {
			t.Fatal(err)
		}
	}
	add("INC-9", "alpha") // ties with INC-1 within alpha: INC-1 must represent
	add("INC-1", "alpha")
	add("INC-5", "beta")
	got, err := db.TopKDiverse([]float64{2}, at, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := db.sortTopKDiverse([]float64{2}, at, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sameScored(t, "diverse-tie", got, ref)
	if got[0].Entry.ID != "INC-1" || got[1].Entry.ID != "INC-5" {
		t.Fatalf("got %s,%s want INC-1,INC-5", got[0].Entry.ID, got[1].Entry.ID)
	}
}

// TestConcurrentAddAndQuery hammers the store with mixed writers and
// readers; run under `go test -race` this proves the locking discipline.
func TestConcurrentAddAndQuery(t *testing.T) {
	db := New(4)
	at := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	// Seed a few entries so early queries have work to do.
	for i := 0; i < 8; i++ {
		if err := db.Add(Entry{
			ID:       fmt.Sprintf("SEED-%d", i),
			Vector:   []float64{float64(i), 1, 2, 3},
			Category: incident.Category(fmt.Sprintf("c%d", i%3)),
			Time:     at,
		}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	const writers, readers, perG = 4, 4, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := db.Add(Entry{
					ID:       fmt.Sprintf("W%d-%04d", w, i),
					Vector:   []float64{float64(i % 7), float64(w), 0, 1},
					Category: incident.Category(fmt.Sprintf("c%d", i%5)),
					Time:     at.AddDate(0, 0, i%30),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			q := []float64{float64(r), 1, 1, 1}
			for i := 0; i < perG; i++ {
				if _, err := db.TopKDiverse(q, at.AddDate(0, 0, i%30), 5, 0.3); err != nil {
					t.Error(err)
					return
				}
				if _, err := db.TopK(q, at, 3, 0.3); err != nil {
					t.Error(err)
					return
				}
				db.Len()
				db.Categories()
			}
		}(r)
	}
	wg.Wait()
	if got, want := db.Len(), 8+writers*perG; got != want {
		t.Fatalf("len = %d, want %d", got, want)
	}
}
