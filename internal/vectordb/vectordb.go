// Package vectordb is the embedding vector store of the prediction stage
// (the "Embedding vector DB" of Figure 4). It stores one entry per
// historical incident — embedding vector, root-cause category, occurrence
// time, and the summarized diagnostic text used as a prompt demonstration —
// and answers nearest-neighbour queries under the paper's temporal-decay
// similarity (§4.2.2):
//
//	Distance(a,b)   = ||a − b||₂
//	Similarity(a,b) = 1/(1 + Distance(a,b)) · e^(−α·|T(a) − T(b)|)
//
// where T is the incident date in days. The decay encodes Insight 2:
// recurring incidents cluster within ~20 days, so a recent incident is a
// far better demonstration than an old one at equal embedding distance.
package vectordb

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/incident"
)

// Entry is one stored historical incident.
type Entry struct {
	ID       string
	Vector   []float64
	Category incident.Category
	Time     time.Time
	// Summary is the summarized diagnostic text shown as the demonstration
	// body in the Figure 9 prompt.
	Summary string
}

// Scored is a retrieval result.
type Scored struct {
	Entry      Entry
	Distance   float64
	Similarity float64
}

// DB is a concurrency-safe exact-search vector store.
type DB struct {
	mu      sync.RWMutex
	dim     int
	entries []Entry
	byID    map[string]int
}

// New returns an empty store for vectors of the given dimensionality.
func New(dim int) *DB {
	return &DB{dim: dim, byID: make(map[string]int)}
}

// Dim returns the vector dimensionality.
func (db *DB) Dim() int { return db.dim }

// Len returns the number of stored entries.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// Add stores an entry, rejecting dimension mismatches and duplicate IDs.
func (db *DB) Add(e Entry) error {
	if len(e.Vector) != db.dim {
		return fmt.Errorf("vectordb: entry %s has dim %d, store has %d", e.ID, len(e.Vector), db.dim)
	}
	if e.ID == "" {
		return fmt.Errorf("vectordb: entry has empty ID")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.byID[e.ID]; dup {
		return fmt.Errorf("vectordb: duplicate entry ID %s", e.ID)
	}
	e.Vector = append([]float64(nil), e.Vector...)
	db.byID[e.ID] = len(db.entries)
	db.entries = append(db.entries, e)
	return nil
}

// Get returns the entry with the given ID.
func (db *DB) Get(id string) (Entry, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	i, ok := db.byID[id]
	if !ok {
		return Entry{}, false
	}
	return db.entries[i], true
}

// Categories returns the set of distinct categories stored.
func (db *DB) Categories() []incident.Category {
	db.mu.RLock()
	defer db.mu.RUnlock()
	seen := make(map[incident.Category]bool)
	var out []incident.Category
	for _, e := range db.entries {
		if !seen[e.Category] {
			seen[e.Category] = true
			out = append(out, e.Category)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Distance is the Euclidean distance of the paper's similarity formula.
func Distance(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Similarity evaluates the paper's formula for a query (vector, time)
// against an entry, with temporal-decay coefficient alpha per day.
func Similarity(query []float64, qt time.Time, e Entry, alpha float64) (dist, sim float64) {
	dist = Distance(query, e.Vector)
	days := math.Abs(qt.Sub(e.Time).Hours()) / 24
	sim = 1 / (1 + dist) * math.Exp(-alpha*days)
	return dist, sim
}

// ranksAfter reports whether a ranks strictly after (worse than) b in
// retrieval order: similarity descending, ties broken by older-first ID for
// determinism.
func ranksAfter(a, b Scored) bool {
	if a.Similarity != b.Similarity {
		return a.Similarity < b.Similarity
	}
	return a.Entry.ID > b.Entry.ID
}

// worstFirst is a bounded min-heap over retrieval rank: the root is the
// worst-ranked entry kept so far, so streaming selection evicts it in O(log
// k) when a better candidate arrives.
type worstFirst []Scored

func (h worstFirst) Len() int           { return len(h) }
func (h worstFirst) Less(i, j int) bool { return ranksAfter(h[i], h[j]) }
func (h worstFirst) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *worstFirst) Push(x any)        { *h = append(*h, x.(Scored)) }
func (h *worstFirst) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// offer streams one candidate into the bounded heap of capacity k.
func (h *worstFirst) offer(sc Scored, k int) {
	if len(*h) < k {
		heap.Push(h, sc)
	} else if ranksAfter((*h)[0], sc) {
		(*h)[0] = sc
		heap.Fix(h, 0)
	}
}

// drain empties the heap into a best-first ordered slice.
func (h *worstFirst) drain() []Scored {
	out := make([]Scored, len(*h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Scored)
	}
	return out
}

func (db *DB) checkQuery(query []float64, k int) error {
	if len(query) != db.dim {
		return fmt.Errorf("vectordb: query dim %d, store dim %d", len(query), db.dim)
	}
	if k <= 0 {
		return fmt.Errorf("vectordb: k must be positive, got %d", k)
	}
	return nil
}

// TopKDiverse returns the k most similar entries under the constraint that
// each root-cause category appears at most once — the paper "select[s] the
// top K incidents from different categories as demonstrations ... a diverse
// and representative set" (§4.2.2). Results are ordered by similarity
// descending; ties break by older-first ID for determinism.
//
// Retrieval sits on the per-incident hot path, so instead of sorting all n
// entries (O(n log n)) this streams them once: the diversity constraint
// means only each category's best-ranked entry can ever be selected (a
// descending greedy scan takes the first — i.e. best — occurrence of every
// category), so one O(n) pass finds the per-category representatives and a
// bounded heap selects the top k among them in O(C log k).
func (db *DB) TopKDiverse(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	if err := db.checkQuery(query, k); err != nil {
		return nil, err
	}
	db.mu.RLock()
	best := make(map[incident.Category]Scored)
	for _, e := range db.entries {
		d, s := Similarity(query, qt, e, alpha)
		sc := Scored{Entry: e, Distance: d, Similarity: s}
		if cur, ok := best[e.Category]; !ok || ranksAfter(cur, sc) {
			best[e.Category] = sc
		}
	}
	db.mu.RUnlock()

	h := make(worstFirst, 0, k+1)
	for _, sc := range best {
		h.offer(sc, k)
	}
	return h.drain(), nil
}

// TopK returns the k most similar entries without the category-diversity
// constraint (used by ablations), via a single streaming pass over the
// store with a size-k bounded heap — O(n log k) instead of the full sort's
// O(n log n).
func (db *DB) TopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	if err := db.checkQuery(query, k); err != nil {
		return nil, err
	}
	db.mu.RLock()
	h := make(worstFirst, 0, k+1)
	for _, e := range db.entries {
		d, s := Similarity(query, qt, e, alpha)
		h.offer(Scored{Entry: e, Distance: d, Similarity: s}, k)
	}
	db.mu.RUnlock()
	return h.drain(), nil
}

// sortTopK is the retained full-sort reference implementation of TopK; the
// equivalence tests hold the heap path to it.
func (db *DB) sortTopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	if err := db.checkQuery(query, k); err != nil {
		return nil, err
	}
	scored := db.scoreAllSorted(query, qt, alpha)
	if len(scored) > k {
		scored = scored[:k]
	}
	return scored, nil
}

// sortTopKDiverse is the retained full-sort reference implementation of
// TopKDiverse: sort everything, then greedily take the first occurrence of
// each category.
func (db *DB) sortTopKDiverse(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	if err := db.checkQuery(query, k); err != nil {
		return nil, err
	}
	scored := db.scoreAllSorted(query, qt, alpha)
	seen := make(map[incident.Category]bool)
	out := make([]Scored, 0, k)
	for _, s := range scored {
		if seen[s.Entry.Category] {
			continue
		}
		seen[s.Entry.Category] = true
		out = append(out, s)
		if len(out) == k {
			break
		}
	}
	return out, nil
}

func (db *DB) scoreAllSorted(query []float64, qt time.Time, alpha float64) []Scored {
	db.mu.RLock()
	scored := make([]Scored, 0, len(db.entries))
	for _, e := range db.entries {
		d, s := Similarity(query, qt, e, alpha)
		scored = append(scored, Scored{Entry: e, Distance: d, Similarity: s})
	}
	db.mu.RUnlock()
	sort.Slice(scored, func(i, j int) bool { return ranksAfter(scored[j], scored[i]) })
	return scored
}
