// Package vectordb is the embedding vector store of the prediction stage
// (the "Embedding vector DB" of Figure 4). It stores one entry per
// historical incident — embedding vector, root-cause category, occurrence
// time, and the summarized diagnostic text used as a prompt demonstration —
// and answers nearest-neighbour queries under the paper's temporal-decay
// similarity (§4.2.2):
//
//	Distance(a,b)   = ||a − b||₂
//	Similarity(a,b) = 1/(1 + Distance(a,b)) · e^(−α·|T(a) − T(b)|)
//
// where T is the incident date in days. The decay encodes Insight 2:
// recurring incidents cluster within ~20 days, so a recent incident is a
// far better demonstration than an old one at equal embedding distance.
//
// # Pluggable indexes
//
// The pipeline is written against the Index interface, with two swappable
// implementations sharing one exact retrieval contract (similarity
// descending, ties by ascending entry ID):
//
//   - DB — the flat reference store: one slice under one RWMutex. Simple,
//     and the semantics oracle every other implementation is tested
//     against.
//   - Sharded — entries partitioned across N shards (category-hash routing
//     by default, or an IVF-style coarse quantizer trained from the stored
//     vectors via Sharded.TrainIVF) with per-shard locks; queries fan out
//     across shards on the shared internal/parallel pool and merge
//     deterministically, bit-identical to DB for any shard count.
//
// NewIndex selects an implementation from Options; both persist the same
// flat snapshot format, so stores round-trip between implementations.
//
// # Exact vs probe-limited retrieval
//
// The sharded store serves two contracts, chosen by Sharded.SetProbes
// (or Options.Probes):
//
//   - Exact (probes = 0, the default): every query searches every shard
//     and results are BIT-IDENTICAL to the flat DB — for any shard count,
//     partitioner, insert interleaving, and even while an incremental
//     Rebalance/TrainIVF is draining shards mid-query. All pipeline
//     goldens assume this mode.
//   - Probe-limited (probes = p > 0, IVF routing): TopK and TopKDiverse
//     search only the p partitions ranked nearest the query, skipping
//     empty partitions. This is approximate — a true neighbour stored in
//     an unprobed partition is missed — in exchange for scanning roughly
//     p/shards of the corpus. Whenever probe mode's preconditions fail —
//     category-hash routing, probes covering every non-empty shard, or a
//     rebalance in flight — queries silently fall back to the exact
//     contract, so approximation is strictly opt-in and never degrades
//     below exact.
//
// # Time-aware probe ranking
//
// Each partition maintains a recency summary (its newest-entry
// timestamp). By default (Sharded.SetProbeRanking, ProbeRankTimeAware)
// probe selection ranks partitions by the similarity's own functional
// form — 1/(1+d)·e^(−α·Δt) — with d the query-to-centroid distance and Δt
// the age of the partition's newest entry, so a partition holding recent
// incidents can out-rank a stale partition whose centroid is nearer;
// under the paper's temporal-decay retrieval that is exactly when the
// true neighbours live in the farther partition. ProbeRankDistance
// restores plain centroid-distance ranking (recall then degrades when
// recency dominates, since centroids carry no timestamp). On a corpus
// whose entries share one timestamp the two rankings coincide.
//
// # Two-stage quantized probe scan (Sharded.EnableQuantized)
//
// The probe-limited path can additionally trade float memory bandwidth
// for an int8 candidate scan. EnableQuantized (Options.Quantized) builds
// a per-shard scalar-quantized sidecar of the columnar backing — one int8
// code per float plus per-dimension scale/offset trained from the shard's
// own value range — and probe-limited queries then run in two stages:
//
//  1. Candidate collection: walk the shard's int8 rows (8× less memory
//     traffic than float64, integer inner loop) and keep the k×overfetch
//     rows with the best approximate similarity (Options.Overfetch;
//     default 4×).
//  2. Re-rank: score only those candidates against the full-precision
//     backing under the exact similarity 1/(1+d)·e^(−α·Δt) and return the
//     best k in the standard retrieval order.
//
// The int8 stage engages exactly when probe-limited serving does — a
// trained IVF partitioner routing, 0 < probes < populated shards, no
// rebalance draining — and never elsewhere: exact fan-out (probes = 0,
// forced-exact shadow queries, mid-rebalance queries, the flat DB) always
// reads the float backing, so exact-mode results remain BIT-IDENTICAL to
// the flat store with quantization on. Approximate results may differ
// from the unquantized probe scan only within the candidate cut: whenever
// k×overfetch covers a probed shard, its two-stage result is identical to
// the exact scan of that shard (the fuzz oracle pins this).
//
// Sidecars are derived state: rebuilt from shard contents on
// Rebalance/TrainIVF and on Load (never serialized — the snapshot format
// is unchanged), and maintained incrementally on Add. An insert outside
// the trained per-dimension range clamps into it and schedules an
// asynchronous per-shard rescale (at most one in flight per shard), so
// the sidecar self-heals as the value distribution moves; the recall-SLO
// tuner's shadow queries compare the SERVED two-stage results against
// exact fan-out, so its recall target is end-to-end and the controller
// compensates first with probes and then — when the next grow would mean
// full fan-out and the loss is quantization rank noise more probes cannot
// recover — by doubling the overfetch pool (capped at 64×), keeping
// serving probe-limited instead of collapsing to exact.
//
// # Adaptive serving (Sharded.EnableAdaptive)
//
// The serving controller closes the loop on probe quality, so one config
// serves both head and tail queries instead of shipping a hand-picked
// probe count:
//
//   - Recall-SLO auto-tuning: a Tuner samples a configurable fraction of
//     live TopK/TopKDiverse queries and shadows each sampled probe-limited
//     query with an exact fan-out OFF the hot path — the served result
//     returns immediately; the shadow runs on its own goroutine holding
//     one slot of the shared internal/parallel budget, at most one in
//     flight. Observed recall@k accumulates in a window; each full window
//     moves the effective probe budget one step — below target grows,
//     comfortably above target shrinks, with hysteresis (the controller
//     remembers the last failing budget and will not shrink back onto it
//     until a retrain changes the geometry). Queries that fell back to
//     exact feed free recall=1 samples, which is how the controller
//     discovers it can shrink an over-provisioned budget. Convergence: the
//     budget rises until either the SLO holds or probes cover every
//     populated partition — at which point serving is exact and recall is
//     1 by construction — so the target is always eventually met. With
//     the quantized stage on, the ladder top is handled differently: one
//     step before full fan-out the controller escalates the candidate
//     overfetch instead of growing (see the two-stage section above).
//     SetProbes is the manual override: it pins the budget and pauses the
//     controller until EnableAdaptive is called again.
//   - Skew-triggered retraining: every RetrainCheckEvery-th Add schedules
//     an asynchronous check of shard imbalance (max/mean of ShardLens) and
//     centroid drift (mean centroid distance of each shard's newest rows
//     vs the quantizer's training distortion); when either ratio reaches
//     RetrainSkew, the incremental TrainIVF runs automatically,
//     rate-limited by MinRetrainInterval. Ingest and queries keep flowing
//     throughout — retraining reuses the generation-based online
//     rebalance.
//
// Shadow queries and retrain checks never run while a rebalance drains
// (those queries are exact already), and Tuner.Quiesce is the barrier
// that waits out in-flight shadow/retrain work where determinism matters.
//
// # Namespaces (multi-tenant views)
//
// Index.Namespace(ns) returns a logical view of the store scoped to one
// namespace — the unit of multi-tenant isolation (the serving layer maps
// one incident team to one namespace). Views share everything physical
// with the root store: the same shard pool, the same columnar backings,
// the same worker budget, the same locks. Only the logical contract
// changes:
//
//   - Add through a view tags the entry with the view's namespace; Add
//     through the root store leaves the tag empty (the DEFAULT namespace).
//   - TopK/TopKDiverse/TopKBatch through a view scan the same shards the
//     root store would but filter per row, returning only entries of the
//     view's namespace — bit-identical to a dedicated flat store holding
//     only that namespace's entries (pinned by goldens and a namespace
//     dimension of the probe-equivalence fuzz oracle). Len, Get,
//     Categories and CountByCategory are scoped the same way.
//   - Namespace("") is the default-namespace view: it serves exactly the
//     untagged entries, so on a store that never tagged anything it is
//     indistinguishable from the root store. The ROOT store itself stays
//     unscoped — it serves every entry regardless of tag — which is what
//     keeps every pre-namespace golden bit-identical.
//   - An unknown namespace is not an error: its view is simply empty
//     (zero hits, zero length).
//   - Save/Load operate on the WHOLE store regardless of which view they
//     are called through — a view is a lens, not a partition.
//
// On the sharded store each non-default namespace additionally carries its
// own serving state over the shared shard geometry: a probe budget, a
// quantized overfetch factor, and — when adaptive serving is enabled — its
// own recall-SLO controller with its own shadow window, overfetch
// escalation, and skew/retrain triggers (retrains are global, the geometry
// is shared; the per-namespace controllers just decide independently when
// to ask for one). SetNamespaceProbes is the per-tenant manual override;
// NamespaceStats is the per-tenant metrics surface. The default
// namespace's serving state is the root store's own, so single-tenant
// deployments tune exactly as before.
//
// # Batched execution (TopKBatch and Batcher)
//
// TopKBatch serves B heterogeneous queries (per-query k, anchor time,
// decay, diversity flag) in one pass. The sharded executor inverts the
// loop: probe selection still runs per query against the same partition
// ranking sequential serving uses, shards are visited in the union of the
// per-query selections, and each selected shard's backing — the columnar
// float rows, or the int8 sidecar on the quantized path — streams ONCE
// for every query that selected it, each maintaining its own bounded
// heap. The scan is memory-bandwidth dominated, so the shared row stream
// amortizes across the batch the way a blocked matmul amortizes operand
// loads. The contract is bit-identity: because each query applies exactly
// the sequential per-row arithmetic and consumes rows only from shards
// its own budget selected, out[i] is BIT-IDENTICAL to serving queries[i]
// alone — for exact fan-out, probe-limited, quantized, and mid-rebalance
// serving alike (pinned by goldens and the probe-equivalence fuzz
// oracle).
//
// EnablePerQueryProbes relaxes that contract on request: each probed
// batch query seeds at the tuner's converged global budget and grows its
// own budget one partition at a time while the next-ranked partition's
// optimistic best-similarity estimate exceeds the query's current k-th
// result by more than a configured margin — easy queries stop at the
// seed, hard ones escalate toward full fan-out — and the tuner's shadow
// sampling observes the served batched results, so its recall SLO
// measures the batched path end-to-end.
//
// Batcher is the serving-side micro-batcher that feeds TopKBatch: a
// time/size-bounded collector that flushes when maxBatch queries have
// accumulated or the oldest has waited maxWait, whichever comes first. A
// query that arrives while the collector is empty and no other query
// follows immediately is served on the single-query fast path — directly
// through TopK/TopKDiverse, no timer wait — so idle-traffic p50 latency
// is unchanged and batching engages exactly when concurrency makes it
// profitable.
//
// BenchmarkTopKProbes records the recall-vs-speedup trade-off against the
// flat oracle (see BENCH_retrieval.json), and a pinned recall floor
// (recall@5 >= 0.9 at probes=2 on the seeded clustered corpus) guards the
// approximate mode in CI; BenchmarkTopKProbesTimeSpread does the same for
// time-aware ranking and the auto-tuner on a corpus whose timestamps span
// the decay horizon.
//
// # Durability (OpenDurable)
//
// Both stores are in-memory; Save/Load is an explicit whole-store
// snapshot. OpenDurable wraps any Index in a write-ahead log
// (internal/wal): adds, IVF retrains, serving-state changes, and the
// feedback loop's retry-schedule transitions are journaled as
// group-committed records, recovery replays last-snapshot + log suffix
// into a staging store (truncating at the first torn frame) before
// swapping it in, and periodic compaction checkpoints into the standard
// snapshot format — trailer included — and rotates the log atomically.
// See Durable for the full crash-safety contract; the crash-injection
// matrix (TestDurableCrashMatrix) pins it against the flat oracle at
// every frame boundary.
package vectordb

import (
	"container/heap"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/incident"
)

// Entry is one stored historical incident.
type Entry struct {
	ID       string
	Vector   []float64
	Category incident.Category
	Time     time.Time
	// Namespace is the tenant tag (the owning team in the serving layer).
	// Empty is the default namespace — the pre-namespace semantics. Set by
	// adding through a namespace view; see the package comment's namespace
	// contract. Gob-additive: snapshots written before this field existed
	// load with every entry in the default namespace.
	Namespace string
	// Summary is the summarized diagnostic text shown as the demonstration
	// body in the Figure 9 prompt.
	Summary string
}

// scope is the per-query namespace restriction threaded through every scan
// path. The zero value is unscoped (the root store's view: every entry
// matches), so pre-namespace call sites compile into the exact code they
// ran before — the filter branch is never taken.
type scope struct {
	on bool
	ns string
}

// match reports whether an entry with the given namespace tag is visible
// under the scope.
func (sc scope) match(ns string) bool { return !sc.on || sc.ns == ns }

// Scored is a retrieval result.
type Scored struct {
	Entry      Entry
	Distance   float64
	Similarity float64
}

// Index is the retrieval interface the prediction stage works against.
// Implementations are safe for concurrent use and share the exact
// retrieval contract: results ordered by temporal-decay similarity
// descending, ties broken by ascending entry ID.
type Index interface {
	// Dim returns the vector dimensionality.
	Dim() int
	// Len returns the number of stored entries.
	Len() int
	// Add stores an entry, rejecting dimension mismatches and duplicate
	// IDs.
	Add(e Entry) error
	// Get returns the entry with the given ID.
	Get(id string) (Entry, bool)
	// Categories returns the sorted set of distinct categories stored.
	Categories() []incident.Category
	// CountByCategory returns how many stored incidents each category has.
	CountByCategory() map[incident.Category]int
	// TopK returns the k most similar entries.
	TopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error)
	// TopKDiverse returns the k most similar entries with each category
	// appearing at most once (§4.2.2).
	TopKDiverse(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error)
	// TopKBatch executes a batch of queries — each with its own k, anchor
	// time, decay, and diversity flag — in one pass over the store, with
	// out[i] bit-identical to serving queries[i] alone through
	// TopK/TopKDiverse (see the package comment's batched execution
	// contract).
	TopKBatch(queries []BatchQuery) ([][]Scored, error)
	// Namespace returns a logical view of the store scoped to one tenant
	// namespace: Add tags entries, queries filter to the namespace, and
	// everything physical (shards, backings, worker budget) is shared with
	// the root store. Namespace("") is the default-namespace view; see the
	// package comment's namespace contract.
	Namespace(ns string) Index
	// Save serializes the store in the flat snapshot format.
	Save(w io.Writer) error
	// Load replaces the store contents with a snapshot written by any
	// Index implementation's Save.
	Load(r io.Reader) error
}

// Options selects and parameterizes an Index implementation.
type Options struct {
	// Shards partitions the store into this many shards with parallel
	// query fan-out; 0 or 1 selects the flat exact store.
	Shards int
	// Partitioner overrides shard routing (default: category hash).
	// Ignored when Shards selects the flat store, unless the partitioner
	// itself carries a shard count.
	Partitioner Partitioner
	// Probes opts the sharded store into probe-limited approximate
	// serving: queries search only this many IVF partitions nearest the
	// query (see the package comment's exact-vs-probe contract). 0 keeps
	// exact fan-out; the knob is dormant until an IVF partitioner is
	// routing (Sharded.TrainIVF). Ignored by the flat store, which is
	// always exact; negative values are rejected by Sharded.SetProbes, so
	// validate before constructing Options.
	Probes int
	// RecallTarget enables the recall-SLO auto-tuner on the sharded store:
	// shadow queries measure observed recall@k and the effective probe
	// budget is grown/shrunk to hold this target (see
	// Sharded.EnableAdaptive). 0 disables; ignored by the flat store.
	RecallTarget float64
	// ShadowRate is the fraction of live queries the auto-tuner shadows
	// with an exact fan-out (default 0.05 when RecallTarget is set).
	ShadowRate float64
	// RetrainSkew enables skew-triggered IVF retraining when >= 1: once
	// max/mean of the per-shard entry counts — or the centroid-drift ratio
	// of fresh inserts — reaches this value, TrainIVF is kicked
	// automatically, rate-limited. 0 disables; ignored by the flat store.
	RetrainSkew float64
	// Quantized opts the sharded store into the two-stage int8 probe scan
	// (see the package comment): probe-limited queries collect candidates
	// from a per-shard scalar-quantized sidecar and re-rank them at full
	// precision. Dormant until probe mode engages; exact fan-out is
	// unaffected. Ignored by the flat store.
	Quantized bool
	// Overfetch is the candidate factor of the quantized stage: each
	// probed shard keeps k×Overfetch int8-stage candidates for the exact
	// re-rank. 0 selects DefaultOverfetch (4). Only meaningful with
	// Quantized; negative values are rejected by Sharded.EnableQuantized,
	// so validate before constructing Options.
	Overfetch int
}

// NewIndex builds the Index implementation the options select: a flat DB,
// or a Sharded store when Shards > 1 (or a partitioner is given).
func NewIndex(dim int, opts Options) Index {
	if opts.Shards > 1 || opts.Partitioner != nil {
		s := NewSharded(dim, opts.Shards, opts.Partitioner)
		if opts.Probes > 0 {
			// Cannot fail for positive values; negatives are documented as
			// caller-validated and keep the exact default.
			_ = s.SetProbes(opts.Probes)
		}
		if opts.RecallTarget > 0 || opts.RetrainSkew > 0 {
			// Cannot fail: the only invalid shapes (out-of-range fractions,
			// a sub-1 skew ratio) are documented as caller-validated, and
			// core.Config rejects them before Options is built.
			_, _ = s.EnableAdaptive(AutoConfig{
				RecallTarget: opts.RecallTarget,
				ShadowRate:   opts.ShadowRate,
				RetrainSkew:  opts.RetrainSkew,
			})
		}
		if opts.Quantized {
			// Cannot fail for non-negative Overfetch, which is documented as
			// caller-validated.
			_ = s.EnableQuantized(opts.Overfetch)
		}
		return s
	}
	return New(dim)
}

// DB is a concurrency-safe exact-search vector store. Vectors live in one
// contiguous row-major backing array (the same columnar layout the sharded
// store's per-shard scans use) so the streaming TopK pass walks a dense
// float64 stream instead of pointer-chasing per-entry slices; the Entry
// structs in entries carry nil Vector fields, and winners materialize
// their vectors on the way out.
type DB struct {
	mu      sync.RWMutex
	dim     int
	entries []Entry   // Vector fields nil; see vecs
	vecs    []float64 // row-major vector backing: entry i at [i*dim, (i+1)*dim)
	byID    map[string]int
	// nsCount tallies entries per namespace tag (key "" is the default
	// namespace) so namespace views answer Len without a scan.
	nsCount map[string]int
}

// row returns entry i's vector from the columnar backing. Caller holds
// db.mu.
func (db *DB) row(i int) []float64 {
	return db.vecs[i*db.dim : (i+1)*db.dim]
}

var _ Index = (*DB)(nil)

// New returns an empty store for vectors of the given dimensionality.
func New(dim int) *DB {
	return &DB{dim: dim, byID: make(map[string]int), nsCount: make(map[string]int)}
}

// Dim returns the vector dimensionality.
func (db *DB) Dim() int { return db.dim }

// Len returns the number of stored entries.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// validateEntry checks an entry against the store dimensionality; shared
// by every Index implementation so they reject identically.
func validateEntry(dim int, e Entry) error {
	if len(e.Vector) != dim {
		return fmt.Errorf("vectordb: entry %s has dim %d, store has %d", e.ID, len(e.Vector), dim)
	}
	if e.ID == "" {
		return fmt.Errorf("vectordb: entry has empty ID")
	}
	return nil
}

// Add stores an entry, rejecting dimension mismatches and duplicate IDs.
func (db *DB) Add(e Entry) error {
	if err := validateEntry(db.dim, e); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.byID[e.ID]; dup {
		return fmt.Errorf("vectordb: duplicate entry ID %s", e.ID)
	}
	db.vecs = append(db.vecs, e.Vector...)
	e.Vector = nil
	db.byID[e.ID] = len(db.entries)
	db.entries = append(db.entries, e)
	db.nsCount[e.Namespace]++
	return nil
}

// Get returns the entry with the given ID.
func (db *DB) Get(id string) (Entry, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	i, ok := db.byID[id]
	if !ok {
		return Entry{}, false
	}
	e := db.entries[i]
	e.Vector = append([]float64(nil), db.row(i)...)
	return e, true
}

// countCategoriesInto tallies entries per category into counts — the one
// category pass shared by CountByCategory and Categories across both Index
// implementations. Callers hold the lock guarding entries.
func countCategoriesInto(counts map[incident.Category]int, entries []Entry) {
	for _, e := range entries {
		counts[e.Category]++
	}
}

// sortedCategories returns the keys of a category-count map in sorted
// order.
func sortedCategories(counts map[incident.Category]int) []incident.Category {
	out := make([]incident.Category, 0, len(counts))
	for c := range counts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountByCategory returns how many stored incidents each category has —
// the inventory view an on-call dashboard shows.
func (db *DB) CountByCategory() map[incident.Category]int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	counts := make(map[incident.Category]int)
	countCategoriesInto(counts, db.entries)
	return counts
}

// Categories returns the set of distinct categories stored, derived from
// the same locked pass as CountByCategory.
func (db *DB) Categories() []incident.Category {
	return sortedCategories(db.CountByCategory())
}

// Distance is the Euclidean distance of the paper's similarity formula.
func Distance(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Similarity evaluates the paper's formula for a query (vector, time)
// against an entry, with temporal-decay coefficient alpha per day.
func Similarity(query []float64, qt time.Time, e Entry, alpha float64) (dist, sim float64) {
	return similarityAt(query, qt, e.Vector, e.Time, alpha)
}

// similarityAt is Similarity over a raw (vector, time) pair, so the
// sharded store's columnar scan can score rows without assembling an
// Entry.
func similarityAt(query []float64, qt time.Time, vec []float64, et time.Time, alpha float64) (dist, sim float64) {
	dist = Distance(query, vec)
	days := math.Abs(qt.Sub(et).Hours()) / 24
	sim = 1 / (1 + dist) * math.Exp(-alpha*days)
	return dist, sim
}

// ranksAfter reports whether a ranks strictly after (worse than) b in
// retrieval order: similarity descending, ties broken by older-first ID for
// determinism.
func ranksAfter(a, b Scored) bool {
	if a.Similarity != b.Similarity {
		return a.Similarity < b.Similarity
	}
	return a.Entry.ID > b.Entry.ID
}

// worstFirst is a bounded min-heap over retrieval rank: the root is the
// worst-ranked entry kept so far, so streaming selection evicts it in O(log
// k) when a better candidate arrives.
type worstFirst []Scored

func (h worstFirst) Len() int           { return len(h) }
func (h worstFirst) Less(i, j int) bool { return ranksAfter(h[i], h[j]) }
func (h worstFirst) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *worstFirst) Push(x any)        { *h = append(*h, x.(Scored)) }
func (h *worstFirst) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// offer streams one candidate into the bounded heap of capacity k.
func (h *worstFirst) offer(sc Scored, k int) {
	if len(*h) < k {
		heap.Push(h, sc)
	} else if ranksAfter((*h)[0], sc) {
		(*h)[0] = sc
		heap.Fix(h, 0)
	}
}

// drain empties the heap into a best-first ordered slice.
func (h *worstFirst) drain() []Scored {
	out := make([]Scored, len(*h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Scored)
	}
	return out
}

// checkQuery validates query shape for any Index implementation.
func checkQuery(dim int, query []float64, k int) error {
	if len(query) != dim {
		return fmt.Errorf("vectordb: query dim %d, store dim %d", len(query), dim)
	}
	if k <= 0 {
		return fmt.Errorf("vectordb: k must be positive, got %d", k)
	}
	return nil
}

func (db *DB) checkQuery(query []float64, k int) error {
	return checkQuery(db.dim, query, k)
}

// TopKDiverse returns the k most similar entries under the constraint that
// each root-cause category appears at most once — the paper "select[s] the
// top K incidents from different categories as demonstrations ... a diverse
// and representative set" (§4.2.2). Results are ordered by similarity
// descending; ties break by older-first ID for determinism.
//
// Retrieval sits on the per-incident hot path, so instead of sorting all n
// entries (O(n log n)) this streams them once: the diversity constraint
// means only each category's best-ranked entry can ever be selected (a
// descending greedy scan takes the first — i.e. best — occurrence of every
// category), so one O(n) pass finds the per-category representatives and a
// bounded heap selects the top k among them in O(C log k).
func (db *DB) TopKDiverse(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return db.topKDiverseScoped(query, qt, k, alpha, scope{})
}

// topKDiverseScoped is TopKDiverse restricted to a namespace scope; the
// zero scope scans every entry (the root store's contract).
func (db *DB) topKDiverseScoped(query []float64, qt time.Time, k int, alpha float64, ns scope) ([]Scored, error) {
	if err := db.checkQuery(query, k); err != nil {
		return nil, err
	}
	db.mu.RLock()
	best := make(map[incident.Category]Scored)
	for i := range db.entries {
		if !ns.match(db.entries[i].Namespace) {
			continue
		}
		d, s := similarityAt(query, qt, db.row(i), db.entries[i].Time, alpha)
		sc := Scored{Entry: db.entries[i], Distance: d, Similarity: s}
		if cur, ok := best[sc.Entry.Category]; !ok || ranksAfter(cur, sc) {
			best[sc.Entry.Category] = sc
		}
	}
	h := make(worstFirst, 0, k+1)
	for _, sc := range best {
		sc.Entry.Vector = append([]float64(nil), db.row(db.byID[sc.Entry.ID])...)
		h.offer(sc, k)
	}
	db.mu.RUnlock()
	return h.drain(), nil
}

// TopK returns the k most similar entries without the category-diversity
// constraint (used by ablations), via a single streaming pass over the
// store with a size-k bounded heap — O(n log k) instead of the full sort's
// O(n log n).
func (db *DB) TopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return db.topKScoped(query, qt, k, alpha, scope{})
}

// topKScoped is TopK restricted to a namespace scope; the zero scope scans
// every entry (the root store's contract).
func (db *DB) topKScoped(query []float64, qt time.Time, k int, alpha float64, ns scope) ([]Scored, error) {
	if err := db.checkQuery(query, k); err != nil {
		return nil, err
	}
	db.mu.RLock()
	h := make(worstFirst, 0, k+1)
	for i := range db.entries {
		if !ns.match(db.entries[i].Namespace) {
			continue
		}
		d, s := similarityAt(query, qt, db.row(i), db.entries[i].Time, alpha)
		if len(h) == k {
			// Same pre-check as the sharded scan: skip the Entry copy for
			// rows that cannot displace the heap root.
			if r := &h[0]; r.Similarity > s || (r.Similarity == s && r.Entry.ID < db.entries[i].ID) {
				continue
			}
		}
		h.offer(Scored{Entry: db.entries[i], Distance: d, Similarity: s}, k)
	}
	for i := range h {
		h[i].Entry.Vector = append([]float64(nil), db.row(db.byID[h[i].Entry.ID])...)
	}
	db.mu.RUnlock()
	return h.drain(), nil
}

// sortTopK is the retained full-sort reference implementation of TopK; the
// equivalence tests hold the heap path to it.
func (db *DB) sortTopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	if err := db.checkQuery(query, k); err != nil {
		return nil, err
	}
	scored := db.scoreAllSorted(query, qt, alpha)
	if len(scored) > k {
		scored = scored[:k]
	}
	return scored, nil
}

// sortTopKDiverse is the retained full-sort reference implementation of
// TopKDiverse: sort everything, then greedily take the first occurrence of
// each category.
func (db *DB) sortTopKDiverse(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	if err := db.checkQuery(query, k); err != nil {
		return nil, err
	}
	scored := db.scoreAllSorted(query, qt, alpha)
	seen := make(map[incident.Category]bool)
	out := make([]Scored, 0, k)
	for _, s := range scored {
		if seen[s.Entry.Category] {
			continue
		}
		seen[s.Entry.Category] = true
		out = append(out, s)
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// countByCategoryScoped is CountByCategory restricted to a namespace scope.
func (db *DB) countByCategoryScoped(ns scope) map[incident.Category]int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	counts := make(map[incident.Category]int)
	for _, e := range db.entries {
		if ns.match(e.Namespace) {
			counts[e.Category]++
		}
	}
	return counts
}

// Namespace returns a view of the flat store scoped to ns; see the package
// comment's namespace contract.
func (db *DB) Namespace(ns string) Index { return dbView{db: db, ns: ns} }

// dbView is the flat store's namespace view: a lens over the shared DB
// that tags on Add and filters on read. Save/Load pass through to the
// whole store.
type dbView struct {
	db *DB
	ns string
}

var _ Index = dbView{}

func (v dbView) Dim() int { return v.db.Dim() }

func (v dbView) Len() int {
	v.db.mu.RLock()
	defer v.db.mu.RUnlock()
	return v.db.nsCount[v.ns]
}

func (v dbView) Add(e Entry) error {
	e.Namespace = v.ns
	return v.db.Add(e)
}

func (v dbView) Get(id string) (Entry, bool) {
	e, ok := v.db.Get(id)
	if !ok || e.Namespace != v.ns {
		return Entry{}, false
	}
	return e, true
}

func (v dbView) CountByCategory() map[incident.Category]int {
	return v.db.countByCategoryScoped(scope{on: true, ns: v.ns})
}

func (v dbView) Categories() []incident.Category {
	return sortedCategories(v.CountByCategory())
}

func (v dbView) TopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return v.db.topKScoped(query, qt, k, alpha, scope{on: true, ns: v.ns})
}

func (v dbView) TopKDiverse(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return v.db.topKDiverseScoped(query, qt, k, alpha, scope{on: true, ns: v.ns})
}

func (v dbView) TopKBatch(queries []BatchQuery) ([][]Scored, error) {
	return v.db.TopKBatch(scopedQueries(queries, v.ns))
}

// Save writes the WHOLE store, not just the view's namespace — a view is a
// lens, not a partition. Load likewise replaces the whole store.
func (v dbView) Save(w io.Writer) error { return v.db.Save(w) }

// Load replaces the whole underlying store; see Save.
func (v dbView) Load(r io.Reader) error { return v.db.Load(r) }

func (v dbView) Namespace(ns string) Index { return v.db.Namespace(ns) }

func (db *DB) scoreAllSorted(query []float64, qt time.Time, alpha float64) []Scored {
	db.mu.RLock()
	scored := make([]Scored, 0, len(db.entries))
	for i := range db.entries {
		d, s := similarityAt(query, qt, db.row(i), db.entries[i].Time, alpha)
		e := db.entries[i]
		e.Vector = append([]float64(nil), db.row(i)...)
		scored = append(scored, Scored{Entry: e, Distance: d, Similarity: s})
	}
	db.mu.RUnlock()
	sort.Slice(scored, func(i, j int) bool { return ranksAfter(scored[j], scored[i]) })
	return scored
}
