package vectordb

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"repro/internal/incident"
)

// DefaultOverfetch is the candidate over-fetch factor the quantized stage
// uses when EnableQuantized is called with 0: each probed shard's int8
// scan keeps k×4 candidates for the full-precision re-rank.
const DefaultOverfetch = 4

// quantSidecar is a shard's int8 scalar-quantized copy of its columnar
// vector backing: one code per float, row-major in the same order as
// shard.vecs, plus the per-dimension affine parameters that map codes
// back to values (code = round((v − offset[d]) / scale[d]) − 128,
// trained from the shard's own per-dimension value range). The scan walks
// codes instead of floats — 8× less memory traffic per lane and a pure
// widening-multiply inner loop — and days carries each row's timestamp so
// the temporal-decay term needs no Entry access per row.
//
// Candidate ranking accumulates Σ w[d]·(Δcode)² in integers, where the
// per-dimension weight w[d] ≈ weightResolution·(scale[d]/s₀)² folds each
// dimension's code step back into the shared metric (s₀ is the smallest
// nonzero step) — so the approximate distance tracks the true Euclidean
// distance up to quantization noise and ~1% weight rounding, while the
// inner loop stays pure widening-multiply integer arithmetic. The
// overfetched candidate set plus the exact re-rank absorb what little
// rank distortion remains, and the recall-floor benchmarks pin it.
//
// The sidecar is derived state: never serialized (Load rebuilds it),
// rebuilt wholesale on Rebalance/TrainIVF, and maintained incrementally
// on Add — an out-of-range insert clamps into the trained range and flags
// an asynchronous rescale (Sharded.scheduleRescale).
type quantSidecar struct {
	scale  []float64 // per-dim code step ((max−min)/255); 0 for constant dims
	offset []float64 // per-dim range minimum
	inv    []float64 // per-dim 1/scale; 0 for constant dims
	w      []int64   // per-dim integer metric weight; 0 for constant dims
	unit   float64   // distance per unit of sqrt(acc): s₀/sqrt(weightResolution)
	codes  []int8    // row-major codes, parallel to shard.vecs
	days   []float64 // per-row entry time in days since the Unix epoch
	s2     []int64   // per-row Σ w[d]·code², the row's half of the expanded metric
}

// weightResolution is the integer resolution of the per-dimension metric
// weights: w[d] = round(weightResolution·(scale[d]/s₀)²), bounding the
// weight rounding error at 1/(2·weightResolution).
const weightResolution = 64

// maxWeight caps a single dimension's weight so pathological scale ratios
// cannot overflow the int64 accumulator (dim·255²·maxWeight stays far
// below 2⁶³ for any realistic dimensionality); ranking quality for such a
// shard degrades toward the re-rank, never correctness.
const maxWeight = 1 << 32

// daysOf is an entry (or query) timestamp on the sidecar's day axis.
func daysOf(t time.Time) float64 { return float64(t.Unix()) / 86400 }

// buildSidecar trains a fresh sidecar from a shard's current contents:
// per-dimension range from the data, then every row encoded. Caller holds
// the shard lock (or owns the shard exclusively).
func buildSidecar(dim int, entries []Entry, vecs []float64) *quantSidecar {
	q := &quantSidecar{
		scale:  make([]float64, dim),
		offset: make([]float64, dim),
		inv:    make([]float64, dim),
	}
	n := len(entries)
	if n > 0 {
		lo := append([]float64(nil), vecs[:dim]...)
		hi := append([]float64(nil), vecs[:dim]...)
		for i := 1; i < n; i++ {
			row := vecs[i*dim : (i+1)*dim]
			for d, v := range row {
				if v < lo[d] {
					lo[d] = v
				}
				if v > hi[d] {
					hi[d] = v
				}
			}
		}
		for d := range q.scale {
			q.offset[d] = lo[d]
			if s := (hi[d] - lo[d]) / 255; s > 0 {
				q.scale[d] = s
				q.inv[d] = 1 / s
			}
		}
	}
	var s0 float64 // smallest nonzero per-dim step: the metric reference
	for _, s := range q.scale {
		if s > 0 && (s0 == 0 || s < s0) {
			s0 = s
		}
	}
	if s0 == 0 {
		// Empty shard or every dimension constant: any positive unit keeps
		// the (all-zero) code distance well-defined.
		s0 = 1
	}
	q.unit = s0 / math.Sqrt(weightResolution)
	q.w = make([]int64, dim)
	for d, s := range q.scale {
		if s <= 0 {
			continue
		}
		r := s / s0
		w := int64(math.Round(weightResolution * r * r))
		if w > maxWeight {
			w = maxWeight
		}
		q.w[d] = w
	}
	q.codes = make([]int8, 0, n*dim)
	q.days = make([]float64, 0, n)
	q.s2 = make([]int64, 0, n)
	for i := 0; i < n; i++ {
		q.encode(vecs[i*dim:(i+1)*dim], entries[i].Time)
	}
	return q
}

// encode appends one row's codes (and its day stamp), reporting whether
// any value fell outside the trained range and had to clamp — the signal
// that the sidecar's parameters no longer cover the shard and a rescale
// should be scheduled. Caller holds the shard lock.
func (q *quantSidecar) encode(vec []float64, t time.Time) (clamped bool) {
	var s2 int64
	for d, v := range vec {
		var c float64
		if q.inv[d] != 0 {
			c = math.Round((v - q.offset[d]) * q.inv[d])
		} else if v != q.offset[d] {
			// A dimension trained constant just saw a second value: the zero
			// scale cannot represent it.
			clamped = true
		}
		if c < 0 {
			c, clamped = 0, true
		} else if c > 255 {
			c, clamped = 255, true
		}
		code := int64(int(c) - 128)
		s2 += q.w[d] * code * code
		q.codes = append(q.codes, int8(code))
	}
	q.days = append(q.days, daysOf(t))
	q.s2 = append(q.s2, s2)
	return clamped
}

// encodeQuery maps a query vector into the sidecar's code space, clamped
// into the trained range (a query is never a reason to rescale).
func (q *quantSidecar) encodeQuery(query []float64) []int64 {
	out := make([]int64, len(query))
	for d, v := range query {
		var c float64
		if q.inv[d] != 0 {
			c = math.Round((v - q.offset[d]) * q.inv[d])
		}
		if c < 0 {
			c = 0
		} else if c > 255 {
			c = 255
		}
		out[d] = int64(c) - 128
	}
	return out
}

// qCand is one first-stage candidate: a row index and its approximate
// similarity. Ties rank the lower row index higher, which is a
// deterministic order for any fixed insert sequence.
type qCand struct {
	idx int
	sim float64
}

// qHeap is the bounded worst-first min-heap of the candidate stage —
// same streaming-selection shape as worstFirst, over row indices instead
// of materialized entries.
type qHeap []qCand

func (h qHeap) Len() int { return len(h) }
func (h qHeap) Less(i, j int) bool {
	if h[i].sim != h[j].sim {
		return h[i].sim < h[j].sim
	}
	return h[i].idx > h[j].idx
}
func (h qHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *qHeap) Push(x any)   { *h = append(*h, x.(qCand)) }
func (h *qHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// offer streams one candidate into the bounded heap of capacity cap.
func (h *qHeap) offer(c qCand, cap int) {
	if len(*h) < cap {
		heap.Push(h, c)
	} else if r := (*h)[0]; r.sim < c.sim || (r.sim == c.sim && r.idx > c.idx) {
		(*h)[0] = c
		heap.Fix(h, 0)
	}
}

// fastExp is Schraudolph's IEEE-754 exponential approximation: a linear
// map into the float64 bit pattern, ~2% maximum relative error and
// monotone over the decay range. The candidate stage uses it in place of
// math.Exp — stage-one scores only pick which rows reach the exact
// re-rank, which recomputes the true similarity, so approximation error
// here costs (bounded, benchmarked) recall, never ranking correctness of
// the final results.
func fastExp(x float64) float64 {
	if x < -500 {
		return 0 // exp(-500) ~ 7e-218: below any similarity that could rank
	}
	return math.Float64frombits(uint64(int64(1512775.3951951856*x) + 4607182418800017408))
}

// scanQuantized is the first stage: walk the shard's int8 rows and keep
// the `want` rows with the best approximate similarity. The weighted code
// distance Σ w[d]·(Δcode)² is expanded as s2[row] + q2 − 2·Σ wq[d]·code —
// the per-row half (s2) is precomputed at encode time and the per-query
// half (wq, q2) is hoisted out of the loop, so the inner loop is a single
// widening multiply-accumulate per dimension, all exact integer
// arithmetic. The per-row epilogue is one sqrt + fast-exp; the
// approximate similarity reuses the exact form 1/(1+d̂)·e^(−α·Δt) so the
// distance-vs-recency blend matches the re-rank's, and the division is
// deferred behind a cross-multiplied threshold check
// (decay > thr·(1+d̂) ⇔ sim > thr), so rows that cannot displace the kept
// candidates cost no divide. Caller holds sh.mu and has checked the
// sidecar is in sync with the entries.
func (sh *shard) scanQuantized(q *quantSidecar, query []float64, qt time.Time, want int, alpha float64, ns scope) qHeap {
	qq := q.encodeQuery(query)
	qdays := daysOf(qt)
	dim := sh.dim
	wq := make([]int64, dim)
	var q2 int64
	for d, c := range qq[:dim] {
		wq[d] = q.w[d] * c
		q2 += wq[d] * c
	}
	cands := make(qHeap, 0, min(want, len(sh.entries))+1)
	thr := math.Inf(-1)
	for i := range sh.entries {
		if !ns.match(sh.entries[i].Namespace) {
			continue
		}
		row := q.codes[i*dim : i*dim+dim]
		var dot int64
		for d, c := range row {
			dot += wq[d] * int64(c)
		}
		acc := q.s2[i] + q2 - 2*dot
		dist := q.unit * math.Sqrt(float64(acc))
		dt := qdays - q.days[i]
		if dt < 0 {
			dt = -dt
		}
		decay := fastExp(-alpha * dt)
		if decay <= thr*(1+dist) {
			continue // cannot displace the worst kept candidate (ties lose to the earlier row)
		}
		cands.offer(qCand{idx: i, sim: decay / (1 + dist)}, want)
		if len(cands) == want {
			thr = cands[0].sim
		}
	}
	return cands
}

// topKQuantized is the shard's two-stage probe scan: the int8 stage
// collects k×overfetch candidates, then each candidate is re-scored
// against the full-precision backing under the exact similarity and the
// best k win. When the candidate budget covers the whole shard the result
// is identical to the exact scan — every row is a candidate and the
// re-rank IS the exact scan — which is the property the fuzz oracle
// pins. A shard whose sidecar is missing or momentarily out of sync
// (EnableQuantized racing an Add) serves full precision instead.
func (sh *shard) topKQuantized(query []float64, qt time.Time, k, overfetch int, alpha float64, ns scope) []Scored {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	q := sh.quant
	if q == nil || len(q.codes) != len(sh.entries)*sh.dim {
		return sh.topKLocked(query, qt, k, alpha, ns)
	}
	cands := sh.scanQuantized(q, query, qt, k*overfetch, alpha, ns)
	h := make(worstFirst, 0, k+1)
	for _, c := range cands {
		d, s := similarityAt(query, qt, sh.row(c.idx), sh.entries[c.idx].Time, alpha)
		h.offer(Scored{Entry: sh.entries[c.idx], Distance: d, Similarity: s}, k)
	}
	for i := range h {
		h[i].Entry.Vector = append([]float64(nil), sh.row(sh.byID[h[i].Entry.ID])...)
	}
	return h.drain()
}

// categoryBestQuantized is the two-stage form of categoryBest: per-category
// bests are taken over the re-ranked candidate set rather than the whole
// shard. Identical to the exact pass whenever the candidate budget covers
// the shard.
func (sh *shard) categoryBestQuantized(query []float64, qt time.Time, k, overfetch int, alpha float64, ns scope) map[incident.Category]Scored {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	q := sh.quant
	if q == nil || len(q.codes) != len(sh.entries)*sh.dim {
		return sh.categoryBestLocked(query, qt, alpha, ns)
	}
	cands := sh.scanQuantized(q, query, qt, k*overfetch, alpha, ns)
	best := make(map[incident.Category]Scored)
	for _, c := range cands {
		d, s := similarityAt(query, qt, sh.row(c.idx), sh.entries[c.idx].Time, alpha)
		sc := Scored{Entry: sh.entries[c.idx], Distance: d, Similarity: s}
		if cur, ok := best[sc.Entry.Category]; !ok || ranksAfter(cur, sc) {
			best[sc.Entry.Category] = sc
		}
	}
	for cat, sc := range best {
		sc.Entry.Vector = append([]float64(nil), sh.row(sh.byID[sc.Entry.ID])...)
		best[cat] = sc
	}
	return best
}

// rebuildQuant retrains the shard's sidecar from its current contents
// under the shard lock.
func (sh *shard) rebuildQuant() {
	sh.mu.Lock()
	sh.quant = buildSidecar(sh.dim, sh.entries, sh.vecs)
	sh.mu.Unlock()
}

// EnableQuantized builds the int8 scalar-quantized sidecar on every shard
// and turns on the two-stage probe scan: probe-limited queries walk int8
// rows, keep k×overfetch candidates per shard, and re-rank them at full
// precision (overfetch 0 selects DefaultOverfetch; negative values are
// rejected). Exact fan-out — probes off, rebalance draining, forced-exact
// shadow queries — always reads the float backing, so exact results stay
// bit-identical to the flat store whether or not quantization is on.
// Sidecars track Adds incrementally, retrain on Rebalance/TrainIVF/Load,
// and an out-of-range insert clamps and schedules an asynchronous
// per-shard rescale. Idempotent; safe to call on a serving store.
func (s *Sharded) EnableQuantized(overfetch int) error {
	if overfetch < 0 {
		return fmt.Errorf("vectordb: negative overfetch %d (use 0 for the default %d×)", overfetch, DefaultOverfetch)
	}
	if overfetch == 0 {
		overfetch = DefaultOverfetch
	}
	s.overfetch.Store(int64(overfetch))
	s.mu.RLock()
	defer s.mu.RUnlock()
	draining, current := s.liveShards()
	for _, sh := range append(append([]*shard(nil), draining...), current...) {
		sh.rebuildQuant()
	}
	s.quantized.Store(true)
	return nil
}

// DisableQuantized turns the two-stage scan off and frees the sidecars.
func (s *Sharded) DisableQuantized() {
	s.quantized.Store(false)
	s.mu.RLock()
	defer s.mu.RUnlock()
	draining, current := s.liveShards()
	for _, sh := range append(append([]*shard(nil), draining...), current...) {
		sh.mu.Lock()
		sh.quant = nil
		sh.mu.Unlock()
	}
}

// QuantizedEnabled reports whether the two-stage quantized probe scan is
// on.
func (s *Sharded) QuantizedEnabled() bool { return s.quantized.Load() }

// maxEscalatedOverfetch caps tuner-driven overfetch escalation: past this
// the candidate stage re-ranks so much of each shard that the two-stage
// scan has no advantage over the exact one.
const maxEscalatedOverfetch = 64

// escalateOverfetch doubles the quantized candidate pool, capped at
// maxEscalatedOverfetch — the recall-SLO tuner's second knob, pulled when
// the next probe grow would mean full fan-out and shadow recall still
// misses the target (at that point the loss is quantization rank noise
// inside the probed shards, which more probes cannot fix but a wider
// re-rank pool can). Reports whether the pool actually widened.
func (s *Sharded) escalateOverfetch() bool {
	if !s.quantized.Load() {
		return false
	}
	for {
		cur := s.overfetch.Load()
		if cur <= 0 {
			cur = DefaultOverfetch
		}
		if cur >= maxEscalatedOverfetch {
			return false
		}
		next := min(cur*2, maxEscalatedOverfetch)
		if s.overfetch.CompareAndSwap(cur, next) {
			return true
		}
	}
}

// escalateOverfetchNS is escalateOverfetch against one namespace's own
// candidate pool (its recall-SLO controller's second knob): the
// namespace's factor starts at the root's effective value and doubles
// independently, capped at maxEscalatedOverfetch, without touching any
// co-tenant's pool. nil st escalates the root pool.
func (s *Sharded) escalateOverfetchNS(st *nsState) bool {
	if st == nil {
		return s.escalateOverfetch()
	}
	if !s.quantized.Load() {
		return false
	}
	for {
		raw := st.overfetch.Load()
		eff := raw
		if eff <= 0 {
			eff = int64(s.Overfetch())
		}
		if eff >= maxEscalatedOverfetch {
			return false
		}
		next := min(eff*2, maxEscalatedOverfetch)
		if st.overfetch.CompareAndSwap(raw, next) {
			return true
		}
	}
}

// Overfetch returns the candidate over-fetch factor of the quantized
// stage (DefaultOverfetch until EnableQuantized sets one).
func (s *Sharded) Overfetch() int {
	if v := int(s.overfetch.Load()); v > 0 {
		return v
	}
	return DefaultOverfetch
}

// QuantizedScans returns how many queries the quantized two-stage path
// has served.
func (s *Sharded) QuantizedScans() int { return int(s.qScans.Load()) }

// Rescales returns how many asynchronous sidecar rescales clamped inserts
// have triggered.
func (s *Sharded) Rescales() int { return int(s.rescales.Load()) }

// scheduleRescale retrains one shard's sidecar off the insert path after
// a clamped encode. At most one rescale per shard is scheduled at a time;
// the flag re-arms before the rebuild runs, so a clamp landing mid-rebuild
// schedules a fresh pass instead of being absorbed into a stale one.
func (s *Sharded) scheduleRescale(sh *shard) {
	if !sh.rescale.CompareAndSwap(false, true) {
		return
	}
	s.quantWG.Add(1)
	go func() {
		defer s.quantWG.Done()
		sh.rescale.Store(false)
		sh.mu.Lock()
		if sh.quant != nil {
			sh.quant = buildSidecar(sh.dim, sh.entries, sh.vecs)
			s.rescales.Add(1)
		}
		sh.mu.Unlock()
	}()
}

// rebuildQuantSidecars retrains every current-generation sidecar — the
// post-Rebalance/TrainIVF hook that re-derives quantization ranges from
// the new shard contents.
func (s *Sharded) rebuildQuantSidecars() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sh := range s.gen.shard {
		sh.rebuildQuant()
	}
}

// quiesceRescales blocks until every scheduled sidecar rescale has
// completed — the barrier tests use before asserting on sidecar state.
func (s *Sharded) quiesceRescales() { s.quantWG.Wait() }
