package vectordb

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/incident"
)

// nsTestCorpus fills flat, sharded and per-tenant dedicated stores with
// one deterministic corpus spread over the default namespace and two
// tenants.
func nsTestCorpus(t *testing.T, shards int) (*DB, *Sharded, map[string]*DB, []Entry) {
	t.Helper()
	const n, dim, clusters = 90, 4, 3
	entries, _ := clusteredCorpus(17, n, dim, clusters)
	tenants := []string{"", "tenant-a", "tenant-b"}
	flat := New(dim)
	sh := NewSharded(dim, shards, nil)
	dedicated := map[string]*DB{"": New(dim), "tenant-a": New(dim), "tenant-b": New(dim)}
	for i, e := range entries {
		e.Namespace = tenants[i%len(tenants)]
		entries[i] = e
		must(t, flat.Add(e))
		must(t, sh.Add(e))
		must(t, dedicated[e.Namespace].Add(e))
	}
	return flat, sh, dedicated, entries
}

// TestNamespaceDefaultView pins the default-view contract: the empty
// namespace is the view of untagged entries, and on a store that only
// holds untagged entries it is indistinguishable from the root store.
func TestNamespaceDefaultView(t *testing.T) {
	const dim = 4
	entries, queries := clusteredCorpus(3, 60, dim, 3)
	qt := entries[0].Time
	flat := New(dim)
	sh := NewSharded(dim, 5, nil)
	for _, e := range entries {
		must(t, flat.Add(e))
		must(t, sh.Add(e))
	}
	for name, root := range map[string]Index{"flat": flat, "sharded": sh} {
		view := root.Namespace("")
		if view.Len() != root.Len() {
			t.Fatalf("%s: default view Len %d != root %d", name, view.Len(), root.Len())
		}
		for i, q := range queries[:10] {
			want, err := root.TopK(q, qt, 5, 0.3)
			must(t, err)
			got, err := view.TopK(q, qt, 5, 0.3)
			must(t, err)
			sameScored(t, fmt.Sprintf("%s default view query %d", name, i), got, want)
		}
	}

	// On a mixed store the default view sees exactly the untagged slice.
	flat2, sh2, dedicated, _ := nsTestCorpus(t, 5)
	want := dedicated[""].Len()
	for name, root := range map[string]Index{"flat": flat2, "sharded": sh2} {
		if got := root.Namespace("").Len(); got != want {
			t.Fatalf("%s: mixed-store default view Len %d, want %d untagged entries", name, got, want)
		}
	}
}

// TestNamespaceUnknown pins the unknown-tenant contract: a namespace no
// entry carries serves zero hits without error.
func TestNamespaceUnknown(t *testing.T) {
	flat, sh, _, entries := nsTestCorpus(t, 5)
	qt := entries[0].Time
	q := entries[0].Vector
	for name, root := range map[string]Index{"flat": flat, "sharded": sh} {
		view := root.Namespace("nobody")
		if view.Len() != 0 {
			t.Fatalf("%s: unknown namespace Len = %d, want 0", name, view.Len())
		}
		hits, err := view.TopK(q, qt, 5, 0.3)
		if err != nil {
			t.Fatalf("%s: unknown namespace TopK: %v", name, err)
		}
		if len(hits) != 0 {
			t.Fatalf("%s: unknown namespace served %d hits, want 0", name, len(hits))
		}
		hits, err = view.TopKDiverse(q, qt, 5, 0.3)
		if err != nil {
			t.Fatalf("%s: unknown namespace TopKDiverse: %v", name, err)
		}
		if len(hits) != 0 {
			t.Fatalf("%s: unknown namespace served %d diverse hits, want 0", name, len(hits))
		}
		if _, ok := view.Get(entries[0].ID); ok {
			t.Fatalf("%s: unknown namespace Get leaked a default-namespace entry", name)
		}
		if cats := view.Categories(); len(cats) != 0 {
			t.Fatalf("%s: unknown namespace Categories = %v, want none", name, cats)
		}
	}
}

// TestNamespaceViewEquivalence holds each tenant view — flat and sharded —
// bit-identical to a dedicated flat store of just that tenant's entries.
func TestNamespaceViewEquivalence(t *testing.T) {
	for _, shards := range []int{1, 2, 7} {
		flat, sh, dedicated, entries := nsTestCorpus(t, shards)
		qt := entries[0].Time
		for ns, d := range dedicated {
			for i := 0; i < 8; i++ {
				q := entries[i*7].Vector
				want, err := d.TopK(q, qt, 5, 0.3)
				must(t, err)
				for name, view := range map[string]Index{"flat": flat.Namespace(ns), "sharded": sh.Namespace(ns)} {
					got, err := view.TopK(q, qt, 5, 0.3)
					must(t, err)
					sameScored(t, fmt.Sprintf("shards=%d %s ns=%q query %d", shards, name, ns, i), got, want)
				}
			}
			if got := sh.Namespace(ns).Len(); got != d.Len() {
				t.Fatalf("shards=%d ns=%q Len %d != dedicated %d", shards, ns, got, d.Len())
			}
		}
	}
}

// TestNamespaceConcurrentHammer races cross-namespace writers against
// scoped and unscoped readers on one sharded pool; under `go test -race`
// this proves the namespace bookkeeping (per-tenant counts, serving state
// creation, scoped scans) shares the store's locking discipline. Final
// per-namespace counts must reconcile.
func TestNamespaceConcurrentHammer(t *testing.T) {
	const writers, readers, perG = 4, 4, 120
	sh := NewSharded(4, 7, nil)
	at := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	tenants := []string{"", "tenant-a", "tenant-b", "tenant-c"}
	for i := 0; i < 8; i++ {
		must(t, sh.Add(Entry{
			ID:       fmt.Sprintf("SEED-%d", i),
			Vector:   []float64{float64(i), 1, 2, 3},
			Category: incident.Category(fmt.Sprintf("c%d", i%3)),
			Time:     at,
		}))
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			view := sh.Namespace(tenants[w%len(tenants)])
			for i := 0; i < perG; i++ {
				err := view.Add(Entry{
					ID:       fmt.Sprintf("W%d-%04d", w, i),
					Vector:   []float64{float64(i % 7), float64(w), 0, 1},
					Category: incident.Category(fmt.Sprintf("c%d", i%5)),
					Time:     at.AddDate(0, 0, i%30),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			q := []float64{float64(r), 1, 1, 1}
			view := sh.Namespace(tenants[(r+1)%len(tenants)])
			for i := 0; i < perG; i++ {
				if _, err := view.TopK(q, at.AddDate(0, 0, i%30), 5, 0.3); err != nil {
					t.Error(err)
					return
				}
				if _, err := sh.TopK(q, at, 3, 0.3); err != nil {
					t.Error(err)
					return
				}
				if i%20 == 0 {
					sh.NamespaceStats()
				}
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Reconcile: every writer's namespace holds seed + its writes.
	counts := map[string]int{"": 8}
	for w := 0; w < writers; w++ {
		counts[tenants[w%len(tenants)]] += perG
	}
	total := 0
	for ns, want := range counts {
		total += want
		if got := sh.Namespace(ns).Len(); got != want {
			t.Fatalf("namespace %q Len = %d, want %d", ns, got, want)
		}
	}
	if sh.Len() != total {
		t.Fatalf("root Len = %d, want %d", sh.Len(), total)
	}
}

// TestNamespacePersistence round-trips a multi-tenant sharded store
// through Save/Load: per-namespace entry counts, probe budgets, escalated
// overfetch and controller aggregates must all survive, and a loaded
// store must serve every view bit-identically to the original.
func TestNamespacePersistence(t *testing.T) {
	_, sh, dedicated, entries := nsTestCorpus(t, 5)
	qt := entries[0].Time
	must(t, sh.TrainIVF(0))
	must(t, sh.SetProbes(2))
	must(t, sh.SetNamespaceProbes("tenant-a", 3))

	var buf bytes.Buffer
	must(t, sh.Save(&buf))

	// Load into a store with stale namespace state: counts must be rebuilt
	// from the snapshot, not accumulated on top of the old population.
	loaded := NewSharded(4, 5, nil)
	stale := entries[0]
	stale.ID, stale.Namespace = "STALE-0", "tenant-stale"
	must(t, loaded.Namespace("tenant-stale").Add(stale))
	must(t, loaded.Load(bytes.NewReader(buf.Bytes())))

	if got, want := loaded.Len(), sh.Len(); got != want {
		t.Fatalf("loaded Len = %d, want %d", got, want)
	}
	if got := loaded.Namespace("tenant-stale").Len(); got != 0 {
		t.Fatalf("stale namespace survived Load with Len %d, want 0", got)
	}
	for ns, d := range dedicated {
		if got := loaded.Namespace(ns).Len(); got != d.Len() {
			t.Fatalf("loaded namespace %q Len = %d, want %d", ns, got, d.Len())
		}
	}
	if got := loaded.Probes(); got != 2 {
		t.Fatalf("loaded root probe budget = %d, want 2", got)
	}
	if got := loaded.NamespaceProbes("tenant-a"); got != 3 {
		t.Fatalf("loaded tenant-a probe budget = %d, want 3", got)
	}
	if got := loaded.NamespaceProbes("tenant-b"); got != 0 {
		t.Fatalf("loaded tenant-b probe budget = %d, want 0 (exact)", got)
	}
	// Every view serves bit-identically to the original store's view.
	for _, ns := range []string{"", "tenant-a", "tenant-b"} {
		for i := 0; i < 6; i++ {
			q := entries[i*11].Vector
			want, err := sh.Namespace(ns).TopK(q, qt, 5, 0.3)
			must(t, err)
			got, err := loaded.Namespace(ns).TopK(q, qt, 5, 0.3)
			must(t, err)
			sameScored(t, fmt.Sprintf("loaded ns=%q query %d", ns, i), got, want)
		}
	}
}
