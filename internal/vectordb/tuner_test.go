package vectordb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/incident"
)

// TestAutoConfigValidation: malformed adaptive configs must be rejected
// before a controller installs.
func TestAutoConfigValidation(t *testing.T) {
	sh := NewSharded(4, 4, nil)
	bad := []AutoConfig{
		{},                                 // enables nothing
		{RecallTarget: 1.5},                // target out of range
		{RecallTarget: -0.1},               // target out of range
		{RecallTarget: 0.9, ShadowRate: 2}, // rate out of range
		{RetrainSkew: 0.5},                 // a sub-1 max/mean ratio
		{RecallTarget: 0.9, MinRetrainInterval: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := sh.EnableAdaptive(cfg); err == nil {
			t.Fatalf("case %d: EnableAdaptive(%+v) must fail", i, cfg)
		}
	}
	if sh.AdaptiveTuner() != nil {
		t.Fatal("rejected configs must not install a tuner")
	}
	tn, err := sh.EnableAdaptive(AutoConfig{RecallTarget: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if sh.AdaptiveTuner() != tn {
		t.Fatal("AdaptiveTuner must return the installed controller")
	}
	if sh.Probes() != 1 {
		t.Fatalf("enabling the recall tuner must seed probes=1, got %d", sh.Probes())
	}
	sh.DisableAdaptive()
	if sh.AdaptiveTuner() != nil {
		t.Fatal("DisableAdaptive must remove the controller")
	}
}

// twoBlobStore builds a 4-shard IVF store over two point-blobs (each
// blob's entries share one vector, so k-means cannot split a blob and
// exactly 2 partitions populate) plus its flat oracle. Queries
// midway-but-nearer-to-A have their true top-8 spanning both blobs:
// probes=1 yields recall 0.5, probes=2 covers every populated partition
// and falls back to exact.
func twoBlobStore(t *testing.T) (*DB, *Sharded, []float64) {
	t.Helper()
	const dim = 2
	flat := New(dim)
	sh := NewSharded(dim, 4, nil)
	for i := 0; i < 4; i++ {
		a := entry(fmt.Sprintf("A-%d", i), "cat-a", []float64{0, 0}, 0)
		b := entry(fmt.Sprintf("B-%d", i), "cat-b", []float64{10, 0}, 0)
		must(t, flat.Add(a))
		must(t, flat.Add(b))
		must(t, sh.Add(a))
		must(t, sh.Add(b))
	}
	if err := sh.TrainIVF(0); err != nil {
		t.Fatal(err)
	}
	populated := 0
	for _, l := range sh.ShardLens() {
		if l > 0 {
			populated++
		}
	}
	if populated != 2 {
		t.Fatalf("fixture expects 2 populated partitions, got lens %v", sh.ShardLens())
	}
	return flat, sh, []float64{4, 0}
}

// TestTunerGrowsToHoldSLO: at probes=1 only one blob is searched and
// observed recall@8 is ~0.5, far below the 0.9 target; the controller
// must grow the budget until the SLO holds (here probes=2 covers every
// populated partition, i.e. exact serving).
func TestTunerGrowsToHoldSLO(t *testing.T) {
	flat, sh, q := twoBlobStore(t)
	tn, err := sh.EnableAdaptive(AutoConfig{RecallTarget: 0.9, ShadowRate: 1, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Probes() != 1 {
		t.Fatalf("controller must seed probes=1, got %d", sh.Probes())
	}
	for i := 0; i < 30 && sh.Probes() < 2; i++ {
		if _, err := sh.TopK(q, t0, 8, 0.3); err != nil {
			t.Fatal(err)
		}
		tn.Quiesce() // land each shadow sample deterministically
	}
	if got := sh.Probes(); got != 2 {
		t.Fatalf("controller converged to probes=%d, want 2", got)
	}
	if tn.Shadows() == 0 {
		t.Fatal("no shadow queries ran")
	}
	// At probes=2 every populated partition is covered: serving is exact
	// and must stay bit-identical to the flat oracle.
	got, err := sh.TopK(q, t0, 8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := flat.TopK(q, t0, 8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sameScored(t, "post-convergence exact", got, want)
}

// TestTunerShrinksOverProvisioned: a budget far above what the SLO needs
// must shrink back down on the free recall=1 samples exact fallback
// serving produces (probes >= populated partitions never degrades, so
// every sample is perfect until the budget drops into probe range).
func TestTunerShrinksOverProvisioned(t *testing.T) {
	_, sh, q := twoBlobStore(t)
	must(t, sh.SetProbes(3)) // over-provisioned: >= the 2 populated partitions
	tn, err := sh.EnableAdaptive(AutoConfig{RecallTarget: 0.4, ShadowRate: 1, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40 && sh.Probes() > 1; i++ {
		if _, err := sh.TopK(q, t0, 8, 0.3); err != nil {
			t.Fatal(err)
		}
		tn.Quiesce()
	}
	// Target 0.4: probes=1 serves recall ~0.5 >= target, so the controller
	// should settle at the cheapest budget.
	if got := sh.Probes(); got != 1 {
		t.Fatalf("controller stuck at probes=%d, want shrink to 1", got)
	}
}

// TestTunerHysteresis: once a budget has been observed missing the
// target, the shrink path must not step back onto it — the controller
// oscillating between a failing and a passing budget would periodically
// serve below-SLO results by design.
func TestTunerHysteresis(t *testing.T) {
	_, sh, q := twoBlobStore(t)
	tn, err := sh.EnableAdaptive(AutoConfig{RecallTarget: 0.9, ShadowRate: 1, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Converge up to 2, then keep serving perfect recall for many windows:
	// the budget must hold at 2, never dipping back to the failing 1.
	for i := 0; i < 60; i++ {
		if _, err := sh.TopK(q, t0, 8, 0.3); err != nil {
			t.Fatal(err)
		}
		tn.Quiesce()
		if p := sh.Probes(); i > 30 && p != 2 {
			t.Fatalf("iteration %d: probes=%d after convergence, want steady 2", i, p)
		}
	}
}

// TestSetProbesOverridesTuner: SetProbes is the manual override — it pins
// the budget and pauses the controller until EnableAdaptive reinstalls
// one.
func TestSetProbesOverridesTuner(t *testing.T) {
	_, sh, q := twoBlobStore(t)
	tn, err := sh.EnableAdaptive(AutoConfig{RecallTarget: 0.9, ShadowRate: 1, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	must(t, sh.SetProbes(1))
	if !tn.Paused() {
		t.Fatal("SetProbes must pause the controller")
	}
	for i := 0; i < 20; i++ {
		if _, err := sh.TopK(q, t0, 8, 0.3); err != nil {
			t.Fatal(err)
		}
	}
	tn.Quiesce()
	if got := sh.Probes(); got != 1 {
		t.Fatalf("paused controller changed the pinned budget to %d", got)
	}
	// Re-enabling hands the budget back to a fresh controller.
	tn2, err := sh.EnableAdaptive(AutoConfig{RecallTarget: 0.9, ShadowRate: 1, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tn2.Paused() {
		t.Fatal("EnableAdaptive must install an un-paused controller")
	}
	for i := 0; i < 20 && sh.Probes() < 2; i++ {
		if _, err := sh.TopK(q, t0, 8, 0.3); err != nil {
			t.Fatal(err)
		}
		tn2.Quiesce()
	}
	if got := sh.Probes(); got != 2 {
		t.Fatalf("re-enabled controller converged to probes=%d, want 2", got)
	}
}

// TestSkewTriggeredRetrain: a stream of inserts that lands wholly in one
// partition must trip the imbalance trigger and retrain the quantizer
// automatically; a second burst inside the rate-limit window must NOT
// retrain again until the (injected) clock advances.
func TestSkewTriggeredRetrain(t *testing.T) {
	const dim = 2
	sh := NewSharded(dim, 4, nil)
	now := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	// Seed two blobs and train, so the store routes by IVF before the
	// skewed stream arrives.
	for i := 0; i < 8; i++ {
		v := []float64{0, float64(i)}
		if i%2 == 0 {
			v = []float64{40, float64(i)}
		}
		must(t, sh.Add(entry(fmt.Sprintf("seed-%d", i), "cat", v, 0)))
	}
	if err := sh.TrainIVF(0); err != nil {
		t.Fatal(err)
	}
	tn, err := sh.EnableAdaptive(AutoConfig{
		RetrainSkew:        1.8,
		RetrainCheckEvery:  4,
		MinRetrainInterval: time.Minute,
		Now:                clock,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Burst 1: 40 entries in one far-off region — they all route to one
	// partition, so max/mean skew blows past 1.8.
	for i := 0; i < 40; i++ {
		must(t, sh.Add(entry(fmt.Sprintf("b1-%d", i), "cat", []float64{40, float64(i)}, 0)))
	}
	tn.Quiesce()
	if got := tn.Retrains(); got != 1 {
		t.Fatalf("Retrains = %d after skewed burst, want 1", got)
	}

	// Burst 2 within the rate-limit window: skew again, but no retrain.
	for i := 0; i < 40; i++ {
		must(t, sh.Add(entry(fmt.Sprintf("b2-%d", i), "cat", []float64{-40, float64(i)}, 0)))
	}
	tn.Quiesce()
	if got := tn.Retrains(); got != 1 {
		t.Fatalf("Retrains = %d inside the rate-limit window, want still 1", got)
	}

	// Clock past the interval: the next checked Add may retrain again.
	clockMu.Lock()
	now = now.Add(2 * time.Minute)
	clockMu.Unlock()
	for i := 0; i < 40; i++ {
		must(t, sh.Add(entry(fmt.Sprintf("b3-%d", i), "cat", []float64{-40, 100 + float64(i)}, 0)))
	}
	tn.Quiesce()
	if got := tn.Retrains(); got != 2 {
		t.Fatalf("Retrains = %d after the rate limit elapsed, want 2", got)
	}
	// The retrained quantizer must leave the store exact-correct: full
	// fan-out against a rebuilt flat reference.
	flat := New(dim)
	for _, e := range sh.snapshotSortedByID() {
		must(t, flat.Add(e))
	}
	must(t, sh.SetProbes(0))
	queryGrid(t, "post-auto-retrain", flat, sh, 5, sh.Len(), dim)
}

// TestAdaptiveTunerHammer is the race hammer from the satellite
// checklist: concurrent Add (tripping skew checks and auto-retrains) +
// TopK/TopKDiverse (tripping shadow sampling and budget adjustments) +
// explicit TrainIVF, all with the adaptive controller live. Run under
// -race it proves the locking; after quiesce, Len and the ID set must
// show no dropped or duplicated entries and the effective probe count
// must sit within [1, shards].
func TestAdaptiveTunerHammer(t *testing.T) {
	const dim, shards, writers, readers, perG = 4, 6, 4, 4, 150
	sh := NewSharded(dim, shards, nil)
	at := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		must(t, sh.Add(Entry{
			ID:       fmt.Sprintf("SEED-%04d", i),
			Vector:   []float64{float64(i % 9), float64(i % 4), 1, 2},
			Category: "cat-seed",
			Time:     at,
		}))
	}
	if err := sh.TrainIVF(0); err != nil {
		t.Fatal(err)
	}
	tn, err := sh.EnableAdaptive(AutoConfig{
		RecallTarget:      0.95,
		ShadowRate:        1,
		Window:            4,
		RetrainSkew:       1.2,
		RetrainCheckEvery: 16,
		// Zero-interval rate limiting: every skew check may retrain, the
		// most hostile schedule for the generation handoff.
		MinRetrainInterval: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := sh.Add(Entry{
					ID: fmt.Sprintf("W%d-%04d", w, i),
					// Drifting positions, so skew checks see both imbalance
					// and centroid drift as the hammer runs.
					Vector:   []float64{float64(i%7) * 3, float64(w * i % 11), float64(i % 3), 0},
					Category: incident.Category(fmt.Sprintf("cat-%d", i%5)),
					Time:     at.AddDate(0, 0, i%40),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			q := []float64{float64(r), 1, 1, 1}
			for i := 0; i < perG; i++ {
				if _, err := sh.TopK(q, at.AddDate(0, 0, i%40), 5, 0.3); err != nil {
					t.Error(err)
					return
				}
				if _, err := sh.TopKDiverse(q, at, 5, 0.3); err != nil {
					t.Error(err)
					return
				}
				sh.Probes()
				sh.ShardLens()
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := sh.TrainIVF(2); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	tn.Quiesce()

	wantLen := 20 + writers*perG
	if got := sh.Len(); got != wantLen {
		t.Fatalf("Len = %d after hammer, want %d", got, wantLen)
	}
	for i := 0; i < 20; i++ {
		if _, ok := sh.Get(fmt.Sprintf("SEED-%04d", i)); !ok {
			t.Fatalf("seed entry %d lost", i)
		}
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perG; i++ {
			if _, ok := sh.Get(fmt.Sprintf("W%d-%04d", w, i)); !ok {
				t.Fatalf("entry W%d-%04d lost", w, i)
			}
		}
	}
	if p := sh.Probes(); p < 1 || p > shards {
		t.Fatalf("effective probe count %d outside [1, %d]", p, shards)
	}
	// The store must still agree exactly with a flat rebuild once probing
	// is manually overridden off.
	flat := New(dim)
	for _, e := range sh.snapshotSortedByID() {
		must(t, flat.Add(e))
	}
	must(t, sh.SetProbes(0))
	queryGrid(t, "post-hammer", flat, sh, 9, sh.Len(), dim)
}

// TestProbeAutoTuneProperty is the seeded property test: across
// randomized corpora, shard counts, and probe budgets, (1) exact mode
// stays bit-identical to the flat oracle, (2) static probe-limited
// serving keeps recall above a lenient floor on clustered data, and
// (3) the auto-tuner converges to hold its SLO, after which a manual
// SetProbes(0) restores bit-identity (override semantics).
func TestProbeAutoTuneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for round := 0; round < 6; round++ {
		seed := rng.Int63n(1 << 30)
		n := 200 + rng.Intn(400)
		dim := []int{4, 8, 16}[rng.Intn(3)]
		clusters := 2 + rng.Intn(5)
		shards := 2 + rng.Intn(9)
		probes := 1 + rng.Intn(shards)
		name := fmt.Sprintf("round=%d seed=%d n=%d dim=%d clusters=%d shards=%d probes=%d",
			round, seed, n, dim, clusters, shards, probes)

		entries, queries := clusteredCorpus(seed, n, dim, clusters)
		qt := entries[0].Time
		flat := New(dim)
		sh := NewSharded(dim, shards, nil)
		for _, e := range entries {
			must(t, flat.Add(e))
			must(t, sh.Add(e))
		}
		if err := sh.TrainIVF(0); err != nil {
			t.Fatal(err)
		}

		// (1) Exact mode: bit-identical at any shard count.
		queryGrid(t, name+" exact", flat, sh, seed, n, dim)

		// (2) Static probe budget: approximate but never catastrophic on
		// clustered data (cluster-drawn queries, probes >= 1).
		must(t, sh.SetProbes(probes))
		if r := recallAtK(t, flat, sh, queries, qt, 5, 0.3); r < 0.5 {
			t.Fatalf("%s: static recall@5 = %.4f, below the 0.5 property floor", name, r)
		}

		// (3) Auto-tune: the controller must end up holding its target —
		// it grows until the SLO is met or probes cover every populated
		// partition (exact serving, recall 1 by construction). The budget
		// legitimately explores downward once per hysteresis level, so a
		// pass may catch it mid-exploration; require one clean pass at or
		// above target within a bounded number of rounds.
		const target = 0.9
		tn, err := sh.EnableAdaptive(AutoConfig{RecallTarget: target, ShadowRate: 1, Window: 4})
		if err != nil {
			t.Fatal(err)
		}
		converged := false
		var lastRecall float64
		for pass := 0; pass < 3*shards+4 && !converged; pass++ {
			lastRecall = recallAtK(t, flat, sh, queries, qt, 5, 0.3)
			tn.Quiesce()
			converged = lastRecall >= target
			if p := sh.Probes(); p < 1 || p > shards {
				t.Fatalf("%s: probe count %d outside [1, %d]", name, p, shards)
			}
		}
		if !converged {
			t.Fatalf("%s: auto-tuned recall@5 never reached the %.2f SLO (last %.4f at probes=%d)",
				name, target, lastRecall, sh.Probes())
		}

		// Manual override back to exact: bit-identity must return.
		must(t, sh.SetProbes(0))
		queryGrid(t, name+" override-exact", flat, sh, seed, n, dim)
	}
}

// TestObservedRecall: the tuner must report the running mean of every
// shadow-measured recall sample — the /metrics recall gauge — across
// window resets, and (0, 0) before any shadow lands.
func TestObservedRecall(t *testing.T) {
	sh := NewSharded(2, 4, nil)
	tn, err := sh.EnableAdaptive(AutoConfig{RecallTarget: 0.9, ShadowRate: 1, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mean, n := tn.ObservedRecall(); mean != 0 || n != 0 {
		t.Fatalf("ObservedRecall before samples = %v, %d", mean, n)
	}
	// Feed samples straight into the controller; the mean must span
	// window boundaries (Window=2), not reset with them.
	for _, r := range []float64{1, 0.5, 0.5, 1} {
		tn.observe(r)
	}
	mean, n := tn.ObservedRecall()
	if n != 4 {
		t.Fatalf("samples = %d, want 4", n)
	}
	if mean != 0.75 {
		t.Fatalf("mean = %v, want 0.75", mean)
	}
}

// TestObservedRecallFromLiveShadows: end to end through TopK — with
// ShadowRate 1 every probed query is shadowed, so samples accumulate and
// the mean lands in [0, 1].
func TestObservedRecallFromLiveShadows(t *testing.T) {
	_, sh, q := twoBlobStore(t)
	tn, err := sh.EnableAdaptive(AutoConfig{RecallTarget: 0.5, ShadowRate: 1, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := sh.TopK(q, time.Time{}, 8, 0); err != nil {
			t.Fatal(err)
		}
	}
	tn.Quiesce()
	mean, n := tn.ObservedRecall()
	if n == 0 {
		t.Fatal("no recall samples after shadowed queries")
	}
	if mean < 0 || mean > 1 {
		t.Fatalf("mean recall = %v", mean)
	}
	if tn.Shadows() != n {
		t.Fatalf("Shadows() = %d, samples = %d", tn.Shadows(), n)
	}
}
