package vectordb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// quantFixture builds a trained, probe-serving sharded store (plus its
// flat twin) on the seeded clustered corpus — the minimal setup on which
// the quantized two-stage scan actually engages.
func quantFixture(t *testing.T, n, dim, shards, probes int) (*DB, *Sharded, [][]float64, time.Time) {
	t.Helper()
	entries, queries := clusteredCorpus(99, n, dim, 6)
	flat := New(dim)
	sh := NewSharded(dim, shards, nil)
	for _, e := range entries {
		must(t, flat.Add(e))
		must(t, sh.Add(e))
	}
	if err := sh.TrainIVF(0); err != nil {
		t.Fatal(err)
	}
	must(t, sh.SetProbes(probes))
	return flat, sh, queries, entries[0].Time
}

// TestQuantizedCoveringMatchesUnquantized: when k×overfetch covers every
// probed shard, the two-stage result must be bit-identical to the
// unquantized probe scan (both are exact search restricted to the probed
// partitions) — for TopK and TopKDiverse.
func TestQuantizedCoveringMatchesUnquantized(t *testing.T) {
	const n, dim, shards, probes, k = 400, 8, 6, 2, 5
	_, sh, queries, qt := quantFixture(t, n, dim, shards, probes)

	// overfetch×k far above any shard's entry count -> full coverage.
	if err := sh.EnableQuantized(n); err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries[:20] {
		gotK, err := sh.TopK(q, qt, k, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		gotD, err := sh.TopKDiverse(q, qt, k, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		sh.DisableQuantized()
		wantK, err := sh.TopK(q, qt, k, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		wantD, err := sh.TopKDiverse(q, qt, k, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if err := sh.EnableQuantized(n); err != nil {
			t.Fatal(err)
		}
		sameScored(t, fmt.Sprintf("covering TopK q%d", qi), gotK, wantK)
		sameScored(t, fmt.Sprintf("covering TopKDiverse q%d", qi), gotD, wantD)
	}
	if sh.QuantizedScans() == 0 {
		t.Fatal("quantized path never engaged on a probe-serving store")
	}
}

// TestQuantizedExactModeBitIdentical: with quantization enabled but probe
// mode off, every query takes exact fan-out over the float backing —
// bit-identical to flat, with zero quantized scans.
func TestQuantizedExactModeBitIdentical(t *testing.T) {
	const seed, n, dim, numCats = 21, 300, 6, 12
	flat := New(dim)
	fillIndex(t, flat, seed, n, dim, numCats)
	sh := NewSharded(dim, 7, nil)
	fillIndex(t, sh, seed, n, dim, numCats)
	if err := sh.TrainIVF(0); err != nil {
		t.Fatal(err)
	}
	if err := sh.EnableQuantized(0); err != nil {
		t.Fatal(err)
	}
	queryGrid(t, "quantized-exact", flat, sh, seed, n, dim)
	if sh.QuantizedScans() != 0 {
		t.Fatalf("exact fan-out took the quantized path %d times", sh.QuantizedScans())
	}
}

// TestQuantizedRecallFloor holds the default-overfetch two-stage scan to
// the same recall floor as the unquantized probe benchmarks: recall@5 >=
// 0.9 at probes=2 on the seeded 10k clustered corpus.
func TestQuantizedRecallFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-corpus recall floor: skipped in -short")
	}
	const n, dim, shards, probes, k = 10_000, 32, 8, 2, 5
	flat, sh, queries, qt := quantFixture(t, n, dim, shards, probes)
	if err := sh.EnableQuantized(0); err != nil {
		t.Fatal(err)
	}
	recall := recallAtK(t, flat, sh, queries, qt, k, 0.3)
	t.Logf("quantized recall@%d at probes=%d/%d shards (overfetch %d): %.4f",
		k, probes, shards, sh.Overfetch(), recall)
	if recall < 0.9 {
		t.Fatalf("quantized recall@%d = %.4f, below the pinned 0.9 floor", k, recall)
	}
	if sh.QuantizedScans() == 0 {
		t.Fatal("quantized path never engaged")
	}
}

// TestEnableQuantizedValidation pins the knob semantics: negative
// overfetch is rejected without enabling, 0 selects the default, and
// DisableQuantized turns the stage off.
func TestEnableQuantizedValidation(t *testing.T) {
	sh := NewSharded(2, 4, nil)
	if err := sh.EnableQuantized(-1); err == nil {
		t.Fatal("EnableQuantized(-1) must fail")
	}
	if sh.QuantizedEnabled() {
		t.Fatal("rejected EnableQuantized left the stage on")
	}
	if err := sh.EnableQuantized(0); err != nil {
		t.Fatal(err)
	}
	if !sh.QuantizedEnabled() || sh.Overfetch() != DefaultOverfetch {
		t.Fatalf("enabled=%v overfetch=%d, want enabled with default %d",
			sh.QuantizedEnabled(), sh.Overfetch(), DefaultOverfetch)
	}
	if err := sh.EnableQuantized(7); err != nil {
		t.Fatal(err)
	}
	if sh.Overfetch() != 7 {
		t.Fatalf("Overfetch = %d, want 7", sh.Overfetch())
	}
	sh.DisableQuantized()
	if sh.QuantizedEnabled() {
		t.Fatal("DisableQuantized left the stage on")
	}
}

// TestOverfetchEscalation: the tuner's second knob doubles the candidate
// pool, caps at maxEscalatedOverfetch, and refuses to act with the
// quantized stage off.
func TestOverfetchEscalation(t *testing.T) {
	sh := NewSharded(2, 4, nil)
	if sh.escalateOverfetch() {
		t.Fatal("escalateOverfetch acted with quantization off")
	}
	if err := sh.EnableQuantized(0); err != nil {
		t.Fatal(err)
	}
	for want := 2 * DefaultOverfetch; want <= maxEscalatedOverfetch; want *= 2 {
		if !sh.escalateOverfetch() {
			t.Fatalf("escalateOverfetch stalled below the cap at %d", sh.Overfetch())
		}
		if sh.Overfetch() != want {
			t.Fatalf("Overfetch = %d after escalation, want %d", sh.Overfetch(), want)
		}
	}
	if sh.escalateOverfetch() {
		t.Fatalf("escalateOverfetch exceeded the cap: %d", sh.Overfetch())
	}
	if sh.Overfetch() != maxEscalatedOverfetch {
		t.Fatalf("Overfetch = %d, want the cap %d", sh.Overfetch(), maxEscalatedOverfetch)
	}
}

// quantInSync verifies every current-generation sidecar agrees with its
// shard's contents (codes row-parallel to vecs, one day stamp per entry).
func quantInSync(t *testing.T, s *Sharded, wantSidecars bool) {
	t.Helper()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, sh := range s.gen.shard {
		sh.mu.RLock()
		q, n := sh.quant, len(sh.entries)
		if q == nil {
			sh.mu.RUnlock()
			if wantSidecars {
				t.Fatalf("shard %d has no sidecar", i)
			}
			continue
		}
		if len(q.codes) != n*sh.dim || len(q.days) != n {
			sh.mu.RUnlock()
			t.Fatalf("shard %d sidecar out of sync: %d codes, %d days for %d entries (dim %d)",
				i, len(q.codes), len(q.days), n, sh.dim)
		}
		sh.mu.RUnlock()
	}
}

// TestQuantizedRescaleOnClamp: an insert outside the trained range must
// clamp, schedule an asynchronous rescale, and — once the rescale lands —
// be found by the quantized scan as the top hit.
func TestQuantizedRescaleOnClamp(t *testing.T) {
	const dim = 4
	sh := NewSharded(dim, 4, nil)
	for i := 0; i < 40; i++ {
		base, id := 0.0, fmt.Sprintf("A-%d", i)
		if i%2 == 0 {
			base, id = 10.0, fmt.Sprintf("B-%d", i)
		}
		v := make([]float64, dim)
		for j := range v {
			v[j] = base + float64(i%5)*0.1
		}
		must(t, sh.Add(entry(id, "cat-0", v, 0)))
	}
	if err := sh.TrainIVF(0); err != nil {
		t.Fatal(err)
	}
	must(t, sh.SetProbes(1))
	if err := sh.EnableQuantized(50); err != nil {
		t.Fatal(err)
	}

	// Far outside every trained per-dimension range: the encode must clamp
	// and flag a rescale.
	out := entry("OUT-1", "cat-0", []float64{100, 100, 100, 100}, 0)
	must(t, sh.Add(out))
	sh.quiesceRescales()
	if sh.Rescales() < 1 {
		t.Fatalf("Rescales = %d after an out-of-range insert, want >= 1", sh.Rescales())
	}
	quantInSync(t, sh, true)

	got, err := sh.TopK([]float64{100, 100, 100, 100}, t0, 1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Entry.ID != "OUT-1" {
		t.Fatalf("post-rescale quantized TopK = %+v, want OUT-1", got)
	}
	if sh.QuantizedScans() == 0 {
		t.Fatal("query did not take the quantized path")
	}
}

// TestQuantizedSurvivesTrainIVF: a retrain rebuilds every sidecar from
// the rerouted shard contents, and the covering-equivalence property
// still holds afterwards.
func TestQuantizedSurvivesTrainIVF(t *testing.T) {
	const n, dim, shards, probes, k = 400, 8, 6, 2, 5
	_, sh, queries, qt := quantFixture(t, n, dim, shards, probes)
	if err := sh.EnableQuantized(n); err != nil {
		t.Fatal(err)
	}
	if err := sh.TrainIVF(2); err != nil {
		t.Fatal(err)
	}
	if !sh.QuantizedEnabled() {
		t.Fatal("TrainIVF disabled quantization")
	}
	quantInSync(t, sh, true)
	got, err := sh.TopK(queries[0], qt, k, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sh.DisableQuantized()
	want, err := sh.TopK(queries[0], qt, k, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sameScored(t, "post-retrain covering", got, want)
}

// TestQuantizedLoadRebuildsSidecars: Load never reads sidecars from the
// file — it rebuilds them from the loaded contents when quantization is
// on, and the loaded store serves quantized queries immediately.
func TestQuantizedLoadRebuildsSidecars(t *testing.T) {
	const n, dim, shards, probes, k = 400, 8, 6, 2, 5
	_, sh, queries, qt := quantFixture(t, n, dim, shards, probes)

	var buf bytes.Buffer
	if err := sh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewSharded(dim, shards, sh.Partitioner())
	if err := dst.EnableQuantized(n); err != nil {
		t.Fatal(err)
	}
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	must(t, dst.SetProbes(probes))
	quantInSync(t, dst, true)
	got, err := dst.TopK(queries[0], qt, k, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sh.TopK(queries[0], qt, k, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sameScored(t, "loaded quantized", got, want)
	if dst.QuantizedScans() == 0 {
		t.Fatal("loaded store did not serve the quantized path")
	}
}

// TestQuantizedConcurrentHammer drives concurrent Adds with escalating
// out-of-range values (forcing clamps and rescales), quantized TopK /
// TopKDiverse queries, retrains, and enable/disable toggles — the
// race-detector workout for the sidecar's locking. Invariants checked at
// the end: entry count, sidecar/backing sync, and exact-mode equivalence
// to a flat rebuild.
func TestQuantizedConcurrentHammer(t *testing.T) {
	const dim, shards, initial, adders, addsPer = 8, 6, 600, 4, 150
	entries, queries := clusteredCorpus(41, initial, dim, 5)
	sh := NewSharded(dim, shards, nil)
	for _, e := range entries {
		must(t, sh.Add(e))
	}
	if err := sh.TrainIVF(0); err != nil {
		t.Fatal(err)
	}
	must(t, sh.SetProbes(2))
	if err := sh.EnableQuantized(0); err != nil {
		t.Fatal(err)
	}

	var addWG sync.WaitGroup
	for a := 0; a < adders; a++ {
		addWG.Add(1)
		go func(a int) {
			defer addWG.Done()
			rng := rand.New(rand.NewSource(int64(1000 + a)))
			for i := 0; i < addsPer; i++ {
				v := make([]float64, dim)
				// Escalating magnitude: later inserts land outside any
				// previously trained range, forcing clamp-and-rescale.
				mag := 1.0 + float64(i)
				for j := range v {
					v[j] = (rng.Float64()*2 - 1) * mag * 30
				}
				e := entry(fmt.Sprintf("H-%d-%d", a, i), "cat-0", v, rng.Intn(40))
				if err := sh.Add(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(a)
	}
	stop := make(chan struct{})
	var auxWG sync.WaitGroup
	auxWG.Add(1)
	go func() { // querier: runs until the adders finish
		defer auxWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q := queries[i%len(queries)]
			if _, err := sh.TopK(q, t0, 5, 0.3); err != nil {
				t.Error(err)
				return
			}
			if _, err := sh.TopKDiverse(q, t0, 3, 0.3); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	auxWG.Add(1)
	go func() { // retrainer
		defer auxWG.Done()
		for i := 0; i < 3; i++ {
			if err := sh.TrainIVF(0); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	auxWG.Add(1)
	go func() { // toggler
		defer auxWG.Done()
		for i := 0; i < 10; i++ {
			sh.DisableQuantized()
			if err := sh.EnableQuantized(0); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	addWG.Wait()
	close(stop)
	auxWG.Wait()
	sh.quiesceRescales()

	want := initial + adders*addsPer
	if sh.Len() != want {
		t.Fatalf("Len = %d after hammer, want %d", sh.Len(), want)
	}
	quantInSync(t, sh, false)

	// Exact fan-out must still match a flat rebuild exactly.
	flat := New(dim)
	for _, e := range sh.snapshotSortedByID() {
		must(t, flat.Add(e))
	}
	must(t, sh.SetProbes(0))
	queryGrid(t, "post-hammer", flat, sh, 41, want, dim)
}
