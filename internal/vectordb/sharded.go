package vectordb

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/incident"
	"repro/internal/parallel"
)

// Sharded is a vector store partitioned across N shards, the
// scale-oriented Index implementation. Entries route to a shard through a
// Partitioner (category-hash by default, or a trained IVF coarse
// quantizer), each shard guards its slice with its own lock, and queries
// fan out across shards on the shared internal/parallel pool — so
// concurrent inserts contend per shard instead of on one store-wide write
// lock, and a TopK over millions of entries splits into N streaming
// heap scans that run on every available core.
//
// # Exact vs probe-limited serving
//
// By default every query searches every shard exactly and per-shard
// candidates merge under the same total retrieval order as the flat store
// — similarity descending, ties by ascending entry ID — so results are
// bit-identical to DB's for any shard count, partitioner, and insert
// interleaving. TopK merges the per-shard bounded heaps through one final
// size-k heap; TopKDiverse merges the per-shard per-category bests by
// keeping each category's best-ranked representative (a commutative,
// associative reduction under the total order) before the final heap.
//
// SetProbes(p) with p > 0 opts into approximate serving: when the store is
// routed by a trained IVF quantizer, TopK and TopKDiverse search only the
// p partitions whose centroids are nearest the query (skipping empty
// partitions so no probe is wasted), trading recall for a ~shards/p scan
// reduction. Probe mode silently falls back to exact fan-out whenever its
// preconditions do not hold: probes <= 0, probes >= the number of
// (non-empty) shards, a category-hash partitioner (its placement carries
// no geometry to probe), or a rebalance in flight. Probe selection ranks
// centroids by plain vector distance — the temporal-decay factor of the
// similarity is per-entry, not per-centroid — so recall degrades when
// recency dominates ranking; see the package comment for the full
// contract.
//
// EnableQuantized layers a two-stage scan onto probe-limited serving:
// each probed shard walks an int8 scalar-quantized sidecar of its
// columnar backing to collect k×overfetch candidates, then re-ranks the
// candidates against the full-precision floats under the exact
// similarity. Exact fan-out never touches the sidecar, so the
// bit-identity contract is untouched; see the package comment's
// two-stage section for when the int8 stage engages and how sidecars
// retrain.
//
// # Locking and rebalance generations
//
// A store-wide RWMutex is held shared by every normal operation — Add
// included, so inserts never serialize against each other on it — and
// exclusively only by Load and the two brief generation swaps that bracket
// an incremental rebalance. Rebalance and TrainIVF no longer stop the
// world: they install a new routing generation (fresh shards under the new
// partitioner), migrate the old generation shard-at-a-time under per-shard
// locks, and retire it, while ingest and queries keep flowing throughout.
// The routing epoch increments at each generation swap; an Add holds the
// store lock shared across route-and-insert, so a swap (exclusive) can
// never interleave with it — every in-flight Add lands in the generation
// its route was computed against. Duplicate-ID rejection is a lock-free
// LoadOrStore against an ID→shard map that migration keeps current.
//
// While a rebalance drains, a migrating entry is briefly visible in both
// its old and new shard (copy first, clear after — never in neither), and
// queries scan the old generation to completion before the new one, then
// deduplicate by ID, so exact results stay bit-identical to the flat
// reference even mid-rebalance.
//
// # Memory layout
//
// Each shard packs its vectors into one contiguous row-major backing array
// rather than one heap allocation per entry. The distance scan — the hot
// loop of every query — walks that backing sequentially, so it prefetches
// instead of pointer-chasing, and a million vectors cost one long-lived
// allocation instead of a million GC-visible slices. This is why the
// sharded store holds its own on a single core (where fan-out cannot help)
// and pulls ahead of the flat store even before parallelism.
type Sharded struct {
	dim int
	// mu is shared by all normal ops and exclusive only for Load and the
	// two brief generation swaps of a rebalance.
	mu sync.RWMutex
	// rebMu serializes whole rebalances (and Load against them) so at most
	// one migration drains at a time.
	rebMu sync.Mutex
	// epoch is the routing-generation stamp: it increments when a rebalance
	// installs its target generation and again when the old generation
	// retires. Odd = rebalance in flight.
	epoch  atomic.Uint64
	probes atomic.Int64
	// probeRank selects how probe-limited queries rank partitions:
	// ProbeRankTimeAware (default) or ProbeRankDistance.
	probeRank atomic.Int64
	// tuner is the adaptive serving controller, nil until EnableAdaptive.
	tuner atomic.Pointer[Tuner]
	// quantized gates the two-stage int8 probe scan (EnableQuantized);
	// overfetch is its per-shard candidate factor, and qScans/rescales are
	// the serving counters the daemon exports.
	quantized atomic.Bool
	overfetch atomic.Int64
	qScans    atomic.Int64
	rescales  atomic.Int64
	// quantWG tracks in-flight asynchronous sidecar rescales.
	quantWG sync.WaitGroup
	// perQuery gates the batch executor's per-query probe budget growth
	// (EnablePerQueryProbes); perQueryGain holds the marginal-gain
	// threshold as Float64bits, and batchEscalations counts shards scanned
	// beyond the seeded budget.
	perQuery         atomic.Bool
	perQueryGain     atomic.Uint64
	batchEscalations atomic.Int64
	// batchQueries counts queries served through TopKBatch.
	batchQueries atomic.Int64
	// savedState carries a loaded serving-state trailer until a tuner
	// exists to absorb it (Load before EnableAdaptive).
	savedState atomic.Pointer[tunerState]
	// retrainNotify, when set (OnRetrain), observes every rebalance onto a
	// trained IVF quantizer — the durable layer's hook for journaling
	// retrain events to the WAL.
	retrainNotify atomic.Pointer[func(*IVF)]
	// nss maps non-default namespace -> *nsState (per-tenant serving state
	// over the shared shard geometry); defCount counts default-namespace
	// (untagged) entries, and adaptiveCfg is the EnableAdaptive config that
	// seeds a controller for each namespace on first touch.
	nss         sync.Map
	defCount    atomic.Int64
	adaptiveCfg atomic.Pointer[AutoConfig]
	gen         *generation // current target: Adds route here
	old         *generation // non-nil mid-rebalance: shards draining into gen
	byID        *sync.Map   // entry ID -> *shard (kept current by migration)
	count       atomic.Int64
}

// Probe-ranking modes for SetProbeRanking.
const (
	// ProbeRankTimeAware ranks partitions by centroid distance blended
	// with the temporal-decay term of the retrieval similarity, evaluated
	// at each partition's newest-entry timestamp — the default, so a
	// recent-but-farther partition can out-rank a stale-but-near one.
	ProbeRankTimeAware = iota
	// ProbeRankDistance ranks partitions by plain centroid distance,
	// ignoring recency (the pre-adaptive behaviour; kept for comparison
	// benchmarks).
	ProbeRankDistance
)

var _ Index = (*Sharded)(nil)

// generation is one routing regime: a partitioner and the shards it routes
// into. A rebalance replaces the store's generation wholesale instead of
// mutating it, so queries snapshot a consistent (partitioner, shards) pair
// under the shared lock.
type generation struct {
	parts Partitioner
	shard []*shard
}

// shard is one partition under its own lock. Entry metadata lives in
// entries with the Vector field nilled out; the vectors themselves pack
// into vecs, dim floats per row, in the same order — the columnar layout
// the query scan walks. Vectors are materialized (copied out of the
// backing) whenever an Entry leaves the shard.
type shard struct {
	mu      sync.RWMutex
	dim     int
	entries []Entry
	vecs    []float64
	byID    map[string]int
	// newest is the latest entry timestamp in the shard — the per-partition
	// recency summary time-aware probe ranking folds into partition
	// selection. Zero when the shard is empty.
	newest time.Time
	// quant is the int8 scalar-quantized sidecar of vecs, nil unless
	// EnableQuantized built it; rescale latches one pending asynchronous
	// sidecar retrain after a clamped insert.
	quant   *quantSidecar
	rescale atomic.Bool
}

// NewSharded returns an empty sharded store for vectors of the given
// dimensionality. A nil partitioner — or one reporting no shards —
// selects CategoryHash over shards (minimum 1; a single-shard store is
// the degenerate case the equivalence tests anchor on); a valid non-nil
// partitioner's Shards() takes precedence over the shards argument.
func NewSharded(dim, shards int, p Partitioner) *Sharded {
	if p == nil || p.Shards() < 1 {
		if shards < 1 {
			shards = 2
		}
		p = CategoryHash{N: shards}
	}
	s := &Sharded{dim: dim, byID: &sync.Map{}}
	s.gen = &generation{parts: p, shard: newShards(p.Shards(), dim)}
	return s
}

func newShards(n, dim int) []*shard {
	out := make([]*shard, n)
	for i := range out {
		out[i] = &shard{dim: dim, byID: make(map[string]int)}
	}
	return out
}

// Dim returns the vector dimensionality.
func (s *Sharded) Dim() int { return s.dim }

// Len returns the number of stored entries.
func (s *Sharded) Len() int { return int(s.count.Load()) }

// NumShards returns the shard count of the current routing generation.
func (s *Sharded) NumShards() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.gen.shard)
}

// Partitioner returns the current routing partitioner.
func (s *Sharded) Partitioner() Partitioner {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen.parts
}

// Epoch returns the routing-generation stamp: it increments when a
// rebalance installs its target generation and again when the old
// generation retires, so an odd value means a rebalance is in flight.
func (s *Sharded) Epoch() uint64 { return s.epoch.Load() }

// Rebalancing reports whether an incremental rebalance is draining.
func (s *Sharded) Rebalancing() bool { return s.Epoch()%2 == 1 }

// SetProbes sets the probe budget for approximate serving: TopK and
// TopKDiverse search only the p IVF partitions ranked nearest the query.
// p = 0 restores exact fan-out; negative values are rejected (a caller
// that computed a negative budget has a bug that silently going exact
// would mask). Probe mode only engages under a trained IVF partitioner
// with more (non-empty) shards than probes — in every other configuration
// queries stay exact.
//
// With the adaptive controller running (EnableAdaptive), SetProbes is the
// manual override: it pins the budget and pauses the auto-tuner's
// adjustments until EnableAdaptive is called again.
func (s *Sharded) SetProbes(p int) error {
	if p < 0 {
		return fmt.Errorf("vectordb: negative probe count %d (use 0 for exact fan-out)", p)
	}
	if t := s.tuner.Load(); t != nil {
		// Pause-and-pin atomically with any in-flight controller decision,
		// so the manual value can never be overwritten after the fact.
		t.pinProbes(p)
		return nil
	}
	s.probes.Store(int64(p))
	return nil
}

// Probes returns the effective probe budget (0 = exact fan-out). Under
// the adaptive controller this is the budget the SLO loop currently
// holds, so it moves as the controller adjusts.
func (s *Sharded) Probes() int { return int(s.probes.Load()) }

// SetProbeRanking selects how probe-limited queries rank candidate
// partitions: ProbeRankTimeAware (the default — centroid distance blended
// with each partition's newest-entry recency under the query's
// temporal-decay coefficient) or ProbeRankDistance (plain centroid
// distance). Exact fan-out is unaffected.
func (s *Sharded) SetProbeRanking(mode int) error {
	if mode != ProbeRankTimeAware && mode != ProbeRankDistance {
		return fmt.Errorf("vectordb: unknown probe ranking mode %d", mode)
	}
	s.probeRank.Store(int64(mode))
	return nil
}

// ProbeRanking returns the active probe-ranking mode.
func (s *Sharded) ProbeRanking() int { return int(s.probeRank.Load()) }

// ShardLens returns the per-shard entry counts of the current routing
// generation (the load-balance view). Mid-rebalance the counts exclude
// entries still draining from the old generation, so they may sum below
// Len until the handoff completes.
func (s *Sharded) ShardLens() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, len(s.gen.shard))
	for i, sh := range s.gen.shard {
		out[i] = sh.length()
	}
	return out
}

// routeTo validates a partitioner's placement of an entry, so a buggy or
// hostile Partitioner returning an index outside [0, shards) surfaces as a
// descriptive error instead of corrupting the store.
func routeTo(p Partitioner, e Entry) (int, error) {
	dst := p.Route(e)
	if dst < 0 || dst >= p.Shards() {
		return 0, fmt.Errorf("vectordb: partitioner %T routed entry %s to shard %d, want [0, %d)",
			p, e.ID, dst, p.Shards())
	}
	return dst, nil
}

// Add stores an entry, rejecting dimension mismatches, duplicate IDs, and
// out-of-range partitioner placements. Concurrent Adds contend only on the
// destination shard's lock; during a rebalance they route through the new
// generation's partitioner, so nothing lands in a draining shard.
func (s *Sharded) Add(e Entry) error {
	if err := validateEntry(s.dim, e); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	dst, err := routeTo(s.gen.parts, e)
	if err != nil {
		return err
	}
	sh := s.gen.shard[dst]
	if _, dup := s.byID.LoadOrStore(e.ID, sh); dup {
		return fmt.Errorf("vectordb: duplicate entry ID %s", e.ID)
	}
	if sh.add(e) {
		s.scheduleRescale(sh)
	}
	s.count.Add(1)
	if t := s.tuner.Load(); t != nil {
		t.noteAdd()
	}
	if e.Namespace == "" {
		s.defCount.Add(1)
	} else {
		st := s.nsStateFor(e.Namespace)
		st.count.Add(1)
		if t := st.tuner.Load(); t != nil {
			t.noteAdd()
		}
	}
	return nil
}

// add copies the entry's vector into the shard's columnar backing (and,
// when a quantized sidecar exists, encodes it there too — reporting
// whether the encode clamped, i.e. the sidecar's trained range no longer
// covers the shard and a rescale should be scheduled). The caller has
// validated the entry and claimed its ID.
func (sh *shard) add(e Entry) (clamped bool) {
	vec := e.Vector
	e.Vector = nil
	sh.mu.Lock()
	sh.byID[e.ID] = len(sh.entries)
	sh.entries = append(sh.entries, e)
	sh.vecs = append(sh.vecs, vec...)
	if e.Time.After(sh.newest) {
		sh.newest = e.Time
	}
	if sh.quant != nil {
		clamped = sh.quant.encode(vec, e.Time)
	}
	sh.mu.Unlock()
	return clamped
}

// length returns the shard's entry count under its own lock.
func (sh *shard) length() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.entries)
}

// stats returns the shard's entry count and newest-entry timestamp in one
// locked read — what probe ranking consumes per candidate partition.
func (sh *shard) stats() (n int, newest time.Time) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.entries), sh.newest
}

// row returns entry i's vector view into the backing; valid only under
// sh.mu.
func (sh *shard) row(i int) []float64 {
	return sh.vecs[i*sh.dim : (i+1)*sh.dim]
}

// materialize returns entry i with its vector copied out of the backing;
// valid only under sh.mu.
func (sh *shard) materialize(i int) Entry {
	e := sh.entries[i]
	e.Vector = append([]float64(nil), sh.row(i)...)
	return e
}

// snapshot returns every entry in the shard, vectors materialized.
func (sh *shard) snapshot() []Entry {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	out := make([]Entry, 0, len(sh.entries))
	for i := range sh.entries {
		out = append(out, sh.materialize(i))
	}
	return out
}

// clear empties the shard; migration calls it after every entry has been
// copied into the new generation (and byID repointed), so a query never
// finds an entry in neither generation.
func (sh *shard) clear() {
	sh.mu.Lock()
	sh.entries, sh.vecs, sh.byID = nil, nil, make(map[string]int)
	sh.newest = time.Time{}
	sh.quant = nil
	sh.mu.Unlock()
}

// Get returns the entry with the given ID. If the lookup races a
// migration (the mapped shard was just drained), it retries against the
// updated ID→shard mapping; migration repoints the mapping before
// clearing the source shard, so at most one retry per rebalance is ever
// needed.
func (s *Sharded) Get(id string) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.byID.Load(id)
	for ok {
		sh := v.(*shard)
		sh.mu.RLock()
		i, found := sh.byID[id]
		if found {
			e := sh.materialize(i)
			sh.mu.RUnlock()
			return e, true
		}
		sh.mu.RUnlock()
		v2, ok2 := s.byID.Load(id)
		if !ok2 || v2 == v {
			return Entry{}, false
		}
		v, ok = v2, ok2
	}
	return Entry{}, false
}

// liveShards returns the shard lists a query must scan, old generation
// (if draining) separate from the current one; caller holds s.mu.
func (s *Sharded) liveShards() (draining, current []*shard) {
	if s.old != nil {
		draining = s.old.shard
	}
	return draining, s.gen.shard
}

// CountByCategory returns how many stored incidents each category has.
// The steady-state path is one locked pass per shard; mid-rebalance a
// migrating entry may sit in two shards at once, so the draining path
// carries an ID filter through the same pass — no vector materialization
// or sorting, the tally stays O(n).
func (s *Sharded) CountByCategory() map[incident.Category]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[incident.Category]int)
	draining, current := s.liveShards()
	if draining == nil {
		for _, sh := range current {
			sh.mu.RLock()
			countCategoriesInto(out, sh.entries)
			sh.mu.RUnlock()
		}
		return out
	}
	seen := make(map[string]bool, s.count.Load())
	for _, sh := range append(append([]*shard(nil), draining...), current...) {
		sh.mu.RLock()
		for i := range sh.entries {
			if id := sh.entries[i].ID; !seen[id] {
				seen[id] = true
				out[sh.entries[i].Category]++
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Categories returns the set of distinct categories stored, derived from
// the same per-shard pass as CountByCategory.
func (s *Sharded) Categories() []incident.Category {
	return sortedCategories(s.CountByCategory())
}

// countByCategoryScoped is CountByCategory restricted to a namespace
// scope — the namespace views' inventory pass. Same draining-aware ID
// dedup as the unscoped tally.
func (s *Sharded) countByCategoryScoped(sc scope) map[incident.Category]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[incident.Category]int)
	draining, current := s.liveShards()
	var seen map[string]bool
	if draining != nil {
		seen = make(map[string]bool, s.count.Load())
	}
	for _, sh := range append(append([]*shard(nil), draining...), current...) {
		sh.mu.RLock()
		for i := range sh.entries {
			if !sc.match(sh.entries[i].Namespace) {
				continue
			}
			if seen != nil {
				if id := sh.entries[i].ID; seen[id] {
					continue
				} else {
					seen[id] = true
				}
			}
			out[sh.entries[i].Category]++
		}
		sh.mu.RUnlock()
	}
	return out
}

// probeShards returns the shards a probe-limited query searches, or nil
// when the query must fan out exactly: no probe budget, a partitioner
// without centroid geometry (category hash), a rebalance in flight
// (caller passes draining != nil), or a budget that already covers every
// non-empty shard. Empty partitions are skipped so no probe is wasted on
// a centroid with nothing behind it (TrainIVF with more shards than
// distinct vectors leaves such shards).
//
// Under ProbeRankTimeAware (the default) populated partitions rank by the
// same functional form the retrieval similarity uses — 1/(1+d)·e^(−α·Δt)
// — with d the query-to-centroid distance and Δt the age of the
// partition's NEWEST entry relative to the query time, so a partition
// holding recent incidents can out-rank a stale partition whose centroid
// is nearer. Under ProbeRankDistance the ranking is plain centroid
// distance. Both break ties toward the lower shard index.
// The probe budget p is the caller's: sequential serving passes the
// scope's effective budget (root or per-namespace), so co-tenants probe
// independently over the same ranked partitions.
func (s *Sharded) probeShards(g *generation, query []float64, qt time.Time, alpha float64, p int) []*shard {
	cands := s.rankedProbeCands(g, query, qt, alpha, p)
	if cands == nil || len(cands) <= p {
		// No probe geometry, or the budget covers every populated
		// partition: identical to exact fan-out, so take the exact path and
		// keep the bit-identity guarantee trivially.
		return nil
	}
	sel := make([]*shard, p)
	for i := range sel {
		sel[i] = cands[i].sh
	}
	return sel
}

// probeCand is one populated partition in probe-rank order: the ranking
// score (rank-mode dependent) plus an optimistic best-similarity estimate
// on the similarity scale — 1/(1+d)·e^(−α·Δt) at the partition's
// newest-entry timestamp — which is what the batch executor's per-query
// budget growth compares against a query's current k-th result.
type probeCand struct {
	sh    *shard
	score float64
	est   float64
}

// rankedProbeCands ranks every populated partition for a probe-limited
// query under the caller's probe budget p, or nil when probe mode cannot
// engage at all (no budget, no IVF geometry). The caller decides how many
// ranked partitions to consume: probeShards takes the first p when they
// don't already cover every populated partition; the batch executor's
// per-query growth walks further down the ranking. Ties keep ascending
// shard index (stable sort over the ascending-index pass).
func (s *Sharded) rankedProbeCands(g *generation, query []float64, qt time.Time, alpha float64, p int) []probeCand {
	if p <= 0 || p >= len(g.shard) {
		return nil
	}
	ivf, ok := g.parts.(*IVF)
	if !ok {
		return nil
	}
	dists := ivf.centroidDists(query)
	timeAware := s.probeRank.Load() == ProbeRankTimeAware && alpha != 0
	cands := make([]probeCand, 0, len(g.shard))
	for i, sh := range g.shard {
		n, newest := sh.stats()
		if n == 0 {
			continue
		}
		days := math.Abs(qt.Sub(newest).Hours()) / 24
		est := 1 / (1 + dists[i]) * math.Exp(-alpha*days)
		score := -dists[i] // distance-only: nearer ranks higher
		if timeAware {
			score = est
		}
		cands = append(cands, probeCand{sh: sh, score: score, est: est})
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].score > cands[b].score })
	return cands
}

// fanTopK runs the per-shard bounded-heap scan over the given shards on
// the shared worker pool.
func fanTopK(shards []*shard, query []float64, qt time.Time, k int, alpha float64, sc scope) ([][]Scored, error) {
	return parallel.Map(len(shards), 0, func(i int) ([]Scored, error) {
		return shards[i].topK(query, qt, k, alpha, sc), nil
	})
}

// TopK returns the k most similar entries under the paper's temporal-decay
// similarity, fanning the scan out across shards (each shard streams its
// entries through a size-k bounded heap) and merging the per-shard heaps
// through one final size-k heap. In exact mode (the default) results are
// bit-identical to DB.TopK, including mid-rebalance: the draining
// generation is scanned to completion before the target one and the merge
// deduplicates by ID, so a migrating entry — briefly present in both —
// counts once and never zero times. With SetProbes under IVF routing only
// the nearest partitions are scanned (approximate; see the type comment).
func (s *Sharded) TopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return s.topK(query, qt, k, alpha, false, scope{})
}

// exactTopK is TopK with probe selection forced off — the oracle path the
// adaptive controller's shadow queries measure observed recall against.
func (s *Sharded) exactTopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return s.topK(query, qt, k, alpha, true, scope{})
}

func (s *Sharded) topK(query []float64, qt time.Time, k int, alpha float64, forceExact bool, sc scope) ([]Scored, error) {
	if err := checkQuery(s.dim, query, k); err != nil {
		return nil, err
	}
	nsSt := s.scopeNS(sc)
	s.mu.RLock()
	defer s.mu.RUnlock()
	draining, current := s.liveShards()

	h := make(worstFirst, 0, k+1)
	if draining == nil {
		shards := current
		probed := false
		if !forceExact {
			if sel := s.probeShards(s.gen, query, qt, alpha, s.probesFor(nsSt)); sel != nil {
				shards, probed = sel, true
			}
		}
		var perShard [][]Scored
		var err error
		if probed && s.quantized.Load() {
			// Two-stage quantized scan: int8 candidate collection per probed
			// shard, exact re-rank. Engages only on the probe-limited path —
			// exact fan-out always reads the float backing.
			of := s.overfetchFor(nsSt)
			s.noteQuantScan(nsSt)
			perShard, err = parallel.Map(len(shards), 0, func(i int) ([]Scored, error) {
				return shards[i].topKQuantized(query, qt, k, of, alpha, sc), nil
			})
		} else {
			perShard, err = fanTopK(shards, query, qt, k, alpha, sc)
		}
		if err != nil {
			return nil, err
		}
		for _, scs := range perShard {
			for _, sc := range scs {
				h.offer(sc, k)
			}
		}
		out := h.drain()
		if !forceExact {
			if t := s.tunerFor(nsSt); t != nil {
				t.observeQuery(query, qt, k, alpha, out, probed, false, sc)
			}
		}
		return out, nil
	}

	// Rebalance in flight: exact over both generations, the draining one
	// first. Copy-before-clear migration plus this scan order guarantees
	// every entry is seen at least once; the ID filter collapses the
	// at-most-twice case.
	oldRes, err := fanTopK(draining, query, qt, k, alpha, sc)
	if err != nil {
		return nil, err
	}
	newRes, err := fanTopK(current, query, qt, k, alpha, sc)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, 2*k)
	for _, scs := range append(oldRes, newRes...) {
		for _, sc := range scs {
			if seen[sc.Entry.ID] {
				continue
			}
			seen[sc.Entry.ID] = true
			h.offer(sc, k)
		}
	}
	return h.drain(), nil
}

// fanCategoryBest runs the per-shard per-category scan over the given
// shards on the shared worker pool.
func fanCategoryBest(shards []*shard, query []float64, qt time.Time, alpha float64, sc scope) ([]map[incident.Category]Scored, error) {
	return parallel.Map(len(shards), 0, func(i int) (map[incident.Category]Scored, error) {
		return shards[i].categoryBest(query, qt, alpha, sc), nil
	})
}

// TopKDiverse returns the k most similar entries with each root-cause
// category appearing at most once (§4.2.2), fanning out across shards.
// Each shard finds its per-category best; the merge keeps each category's
// best across shards — keep-best is commutative, associative, and
// idempotent under the total retrieval order, so exact-mode results are
// identical to the flat store's regardless of shard count, routing, or an
// in-flight rebalance (a migrating entry seen twice merges with itself).
// With SetProbes under IVF routing only the nearest partitions are
// scanned (approximate; see the type comment).
func (s *Sharded) TopKDiverse(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return s.topKDiverse(query, qt, k, alpha, false, scope{})
}

// exactTopKDiverse is TopKDiverse with probe selection forced off (the
// shadow-query oracle path).
func (s *Sharded) exactTopKDiverse(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return s.topKDiverse(query, qt, k, alpha, true, scope{})
}

func (s *Sharded) topKDiverse(query []float64, qt time.Time, k int, alpha float64, forceExact bool, sc scope) ([]Scored, error) {
	if err := checkQuery(s.dim, query, k); err != nil {
		return nil, err
	}
	nsSt := s.scopeNS(sc)
	s.mu.RLock()
	defer s.mu.RUnlock()
	draining, current := s.liveShards()

	best := make(map[incident.Category]Scored)
	mergeBest := func(perShard []map[incident.Category]Scored) {
		for _, m := range perShard {
			for cat, sc := range m {
				if cur, ok := best[cat]; !ok || ranksAfter(cur, sc) {
					best[cat] = sc
				}
			}
		}
	}
	if draining != nil {
		// Rebalance in flight: exact over both generations, the draining
		// one scanned to completion first (same no-miss argument as TopK;
		// a migrating entry seen twice merges with itself).
		oldRes, err := fanCategoryBest(draining, query, qt, alpha, sc)
		if err != nil {
			return nil, err
		}
		mergeBest(oldRes)
	}
	shards := current
	probed := false
	if draining == nil && !forceExact {
		if sel := s.probeShards(s.gen, query, qt, alpha, s.probesFor(nsSt)); sel != nil {
			shards, probed = sel, true
		}
	}
	if draining == nil && !probed && s.count.Load() <= diverseInlineMax {
		// Small store: one preallocated category-best map filled across all
		// shards in sequence beats the fan-out's per-shard map build, merge,
		// and per-shard winner materialization — the regime where the
		// sharded TopKDiverse used to lose to the flat store.
		s.categoryBestInline(shards, query, qt, alpha, best, sc)
		h := make(worstFirst, 0, k+1)
		for _, sc := range best {
			h.offer(sc, k)
		}
		out := h.drain()
		if !forceExact {
			if t := s.tunerFor(nsSt); t != nil {
				t.observeQuery(query, qt, k, alpha, out, false, true, sc)
			}
		}
		return out, nil
	}
	var perShard []map[incident.Category]Scored
	var err error
	if probed && s.quantized.Load() {
		of := s.overfetchFor(nsSt)
		s.noteQuantScan(nsSt)
		perShard, err = parallel.Map(len(shards), 0, func(i int) (map[incident.Category]Scored, error) {
			return shards[i].categoryBestQuantized(query, qt, k, of, alpha, sc), nil
		})
	} else {
		perShard, err = fanCategoryBest(shards, query, qt, alpha, sc)
	}
	if err != nil {
		return nil, err
	}
	mergeBest(perShard)
	h := make(worstFirst, 0, k+1)
	for _, sc := range best {
		h.offer(sc, k)
	}
	out := h.drain()
	if draining == nil && !forceExact {
		if t := s.tunerFor(nsSt); t != nil {
			t.observeQuery(query, qt, k, alpha, out, probed, true, sc)
		}
	}
	return out, nil
}

// diverseInlineMax is the store size at or below which TopKDiverse takes
// the inline single-map path instead of per-shard fan-out: small enough
// that scan time cannot amortize per-shard map builds and merge overhead.
const diverseInlineMax = 4096

// categoryBestInline fills one shared category-best map across the given
// shards in sequence — same comparisons (and therefore bit-identical
// results) as the per-shard maps merged by mergeBest, without building and
// merging a map per shard. Winners reference (shard, row) during the scan
// and materialize once at the end: under the caller-held store read lock
// no generation swap can start, so shards only append and row indexes stay
// stable across the brief per-shard lock releases.
func (s *Sharded) categoryBestInline(shards []*shard, query []float64, qt time.Time, alpha float64, best map[incident.Category]Scored, ns scope) {
	type ref struct {
		sh  *shard
		idx int
	}
	refs := make(map[incident.Category]ref, 64)
	for _, sh := range shards {
		sh.mu.RLock()
		for i := range sh.entries {
			if !ns.match(sh.entries[i].Namespace) {
				continue
			}
			d, sim := similarityAt(query, qt, sh.row(i), sh.entries[i].Time, alpha)
			sc := Scored{Entry: sh.entries[i], Distance: d, Similarity: sim}
			cat := sc.Entry.Category
			if cur, ok := best[cat]; !ok || ranksAfter(cur, sc) {
				best[cat] = sc
				refs[cat] = ref{sh: sh, idx: i}
			}
		}
		sh.mu.RUnlock()
	}
	for cat, r := range refs {
		sc := best[cat]
		r.sh.mu.RLock()
		sc.Entry.Vector = append([]float64(nil), r.sh.row(r.idx)...)
		r.sh.mu.RUnlock()
		best[cat] = sc
	}
}

// topK streams one shard's columnar rows through a bounded heap and
// returns its local best-first top k, vectors materialized. The threshold
// pre-check skips the Entry copy for the overwhelming majority of rows
// that can't displace the heap root.
func (sh *shard) topK(query []float64, qt time.Time, k int, alpha float64, ns scope) []Scored {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.topKLocked(query, qt, k, alpha, ns)
}

// topKLocked is topK's body under a caller-held shard lock — shared with
// the quantized path's full-precision fallback.
func (sh *shard) topKLocked(query []float64, qt time.Time, k int, alpha float64, ns scope) []Scored {
	h := make(worstFirst, 0, k+1)
	for i := range sh.entries {
		if !ns.match(sh.entries[i].Namespace) {
			continue
		}
		d, s := similarityAt(query, qt, sh.row(i), sh.entries[i].Time, alpha)
		if len(h) == k {
			if r := &h[0]; r.Similarity > s || (r.Similarity == s && r.Entry.ID < sh.entries[i].ID) {
				continue
			}
		}
		h.offer(Scored{Entry: sh.entries[i], Distance: d, Similarity: s}, k)
	}
	for i := range h {
		h[i].Entry.Vector = append([]float64(nil), sh.row(sh.byID[h[i].Entry.ID])...)
	}
	return h.drain()
}

// categoryBest returns the shard's best-ranked entry per category,
// vectors materialized.
func (sh *shard) categoryBest(query []float64, qt time.Time, alpha float64, ns scope) map[incident.Category]Scored {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.categoryBestLocked(query, qt, alpha, ns)
}

// categoryBestLocked is categoryBest's body under a caller-held shard
// lock — shared with the quantized path's full-precision fallback.
func (sh *shard) categoryBestLocked(query []float64, qt time.Time, alpha float64, ns scope) map[incident.Category]Scored {
	best := make(map[incident.Category]Scored)
	for i := range sh.entries {
		if !ns.match(sh.entries[i].Namespace) {
			continue
		}
		d, s := similarityAt(query, qt, sh.row(i), sh.entries[i].Time, alpha)
		sc := Scored{Entry: sh.entries[i], Distance: d, Similarity: s}
		if cur, ok := best[sc.Entry.Category]; !ok || ranksAfter(cur, sc) {
			best[sc.Entry.Category] = sc
		}
	}
	for cat, sc := range best {
		sc.Entry.Vector = append([]float64(nil), sh.row(sh.byID[sc.Entry.ID])...)
		best[cat] = sc
	}
	return best
}

// entriesSortedByIDLocked snapshots every entry across both generations,
// vectors materialized, deduplicated by ID and ordered by ID — the
// canonical order for persistence and partitioner training, independent
// of how concurrent inserts interleaved. Caller holds s.mu (shared or
// exclusive); mid-rebalance duplicates (copied but not yet cleared)
// collapse to one identical copy.
func (s *Sharded) entriesSortedByIDLocked() []Entry {
	out := make([]Entry, 0, s.count.Load())
	draining, current := s.liveShards()
	for _, sh := range append(append([]*shard(nil), draining...), current...) {
		out = append(out, sh.snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	dedup := out[:0]
	for i, e := range out {
		if i > 0 && e.ID == dedup[len(dedup)-1].ID {
			continue
		}
		dedup = append(dedup, e)
	}
	return dedup
}

// snapshotSortedByID is entriesSortedByIDLocked under the shared lock.
func (s *Sharded) snapshotSortedByID() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.entriesSortedByIDLocked()
}

// Rebalance re-routes every stored entry under a new partitioner without
// stopping the world: it pre-validates the partitioner's routing over a
// snapshot (a hostile Partitioner returning out-of-range shard indices is
// rejected before any state changes), installs the new generation under a
// brief exclusive swap — from which instant new Adds route through the new
// partitioner — and then drains the old shards one at a time under
// per-shard locks while ingest and queries keep flowing. Queries before,
// during and after return identical results — placement is invisible to
// exact fan-out search. Concurrent Rebalance/TrainIVF/Load calls
// serialize; probe-limited serving suspends (exact fan-out) for the
// duration of the drain.
func (s *Sharded) Rebalance(p Partitioner) error {
	if p == nil || p.Shards() < 1 {
		return fmt.Errorf("vectordb: Rebalance needs a partitioner with at least 1 shard")
	}
	s.rebMu.Lock()
	defer s.rebMu.Unlock()

	// Pre-validate: every stored entry must route in range before the
	// store commits to the new partitioner. Entries added after this pass
	// are validated individually on their Add.
	if err := s.validateRouting(p); err != nil {
		return fmt.Errorf("vectordb: Rebalance rejected: %w", err)
	}

	next := &generation{parts: p, shard: newShards(p.Shards(), s.dim)}
	s.mu.Lock()
	s.old = s.gen
	s.gen = next
	s.epoch.Add(1)
	s.mu.Unlock()

	s.drainInto(next)

	s.mu.Lock()
	s.old = nil
	s.epoch.Add(1)
	s.mu.Unlock()
	if s.quantized.Load() {
		// The new generation's shards hold freshly routed contents: retrain
		// each sidecar from its shard's own value range. Probe serving (and
		// with it the quantized scan) was suspended during the drain, and a
		// shard whose sidecar has not been rebuilt yet serves full precision,
		// so queries stay correct throughout.
		s.rebuildQuantSidecars()
	}
	if ivf, ok := p.(*IVF); ok {
		if fn := s.retrainNotify.Load(); fn != nil {
			(*fn)(ivf)
		}
	}
	return nil
}

// OnRetrain installs an observer invoked after every rebalance onto a
// trained IVF quantizer (explicit TrainIVF/Rebalance or the adaptive
// controller's skew-triggered retrain), with the installed quantizer.
// The durable layer uses it to journal retrain events; nil uninstalls.
// The observer runs on the rebalancing goroutine after the handoff
// completes and must not call back into Rebalance/TrainIVF/Load.
func (s *Sharded) OnRetrain(fn func(*IVF)) {
	if fn == nil {
		s.retrainNotify.Store(nil)
		return
	}
	s.retrainNotify.Store(&fn)
}

// validateRouting checks a candidate partitioner's placement of every
// stored entry, shard by shard under read locks. Unlike the training
// snapshot this needs no sorting, deduplication (rebMu is held, so no
// drain is in flight and no entry is doubled), or vector copies — Route
// only reads the vector, so each entry is scored through a view into the
// columnar backing while the shard lock is held.
func (s *Sharded) validateRouting(p Partitioner) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sh := range s.gen.shard {
		sh.mu.RLock()
		for i := range sh.entries {
			e := sh.entries[i]
			e.Vector = sh.row(i)
			if _, err := routeTo(p, e); err != nil {
				sh.mu.RUnlock()
				return err
			}
		}
		sh.mu.RUnlock()
	}
	return nil
}

// drainInto migrates every old-generation shard into the target
// generation, one shard at a time: snapshot the source under its read
// lock, copy each entry into its new shard (repointing the ID map as it
// goes), then clear the source under a brief exclusive lock. Routing runs
// lock-free, so a slow — or deliberately blocking — partitioner stalls
// only the rebalance, never ingest or queries. The old generation is
// append-frozen (Adds route to the new one), so the snapshot is complete.
func (s *Sharded) drainInto(next *generation) {
	for _, src := range s.old.shard {
		for _, e := range src.snapshot() {
			dst, err := routeTo(next.parts, e)
			if err != nil {
				// The partitioner passed pre-validation but misroutes now
				// (nondeterministic or adversarial). Placement never
				// affects exact correctness, so park the entry in shard 0
				// rather than losing it or corrupting the store.
				dst = 0
			}
			nsh := next.shard[dst]
			nsh.add(e)
			s.byID.Store(e.ID, nsh)
		}
		src.clear()
	}
}

// TrainIVF trains an IVF coarse quantizer from the stored vectors (in
// canonical ID order, so training from a quiesced store is deterministic
// regardless of insert interleaving) and rebalances the store onto it,
// keeping the current shard count. Training and the subsequent handoff
// run incrementally — no store-wide exclusive lock beyond the two brief
// generation swaps — so ingest and queries keep flowing; entries added
// mid-training are not in the training set but route through the trained
// centroids once the new generation installs. Call it once enough history
// has accumulated.
func (s *Sharded) TrainIVF(iters int) error {
	entries := s.snapshotSortedByID()
	if len(entries) == 0 {
		return fmt.Errorf("vectordb: TrainIVF on an empty store")
	}
	vecs := make([][]float64, len(entries))
	for i := range entries {
		vecs[i] = entries[i].Vector
	}
	p, err := TrainIVF(vecs, s.NumShards(), iters)
	if err != nil {
		return err
	}
	return s.Rebalance(p)
}
