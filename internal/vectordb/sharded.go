package vectordb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/incident"
	"repro/internal/parallel"
)

// Sharded is an exact-search vector store partitioned across N shards, the
// scale-oriented Index implementation. Entries route to a shard through a
// Partitioner (category-hash by default, or a trained IVF coarse
// quantizer), each shard guards its slice with its own lock, and queries
// fan out across shards on the shared internal/parallel pool — so
// concurrent inserts contend per shard instead of on one store-wide write
// lock, and a TopK over millions of entries splits into N streaming
// heap scans that run on every available core.
//
// # Merge determinism
//
// Every query searches every shard exactly (the partitioner never prunes),
// and per-shard candidates merge under the same total retrieval order as
// the flat store — similarity descending, ties by ascending entry ID — so
// results are bit-identical to DB's for any shard count, partitioner, and
// insert interleaving. TopK merges the per-shard bounded heaps through one
// final size-k heap; TopKDiverse merges the per-shard per-category bests by
// keeping each category's best-ranked representative (a commutative,
// associative reduction under the total order) before the final heap.
//
// # Locking
//
// A store-wide RWMutex is held shared by every normal operation — Add
// included, so inserts never serialize against each other on it — and
// exclusively only by Load and Rebalance/TrainIVF, which re-route entries
// across shards wholesale. Duplicate-ID rejection is a lock-free
// LoadOrStore against an ID→shard map.
//
// # Memory layout
//
// Each shard packs its vectors into one contiguous row-major backing array
// rather than one heap allocation per entry. The distance scan — the hot
// loop of every query — walks that backing sequentially, so it prefetches
// instead of pointer-chasing, and a million vectors cost one long-lived
// allocation instead of a million GC-visible slices. This is why the
// sharded store holds its own on a single core (where fan-out cannot help)
// and pulls ahead of the flat store even before parallelism.
type Sharded struct {
	dim   int
	mu    sync.RWMutex // shared: all ops; exclusive: Load, Rebalance
	parts Partitioner
	shard []*shard
	byID  *sync.Map // entry ID -> shard index
	count atomic.Int64
}

var _ Index = (*Sharded)(nil)

// shard is one partition under its own lock. Entry metadata lives in
// entries with the Vector field nilled out; the vectors themselves pack
// into vecs, dim floats per row, in the same order — the columnar layout
// the query scan walks. Vectors are materialized (copied out of the
// backing) whenever an Entry leaves the shard.
type shard struct {
	mu      sync.RWMutex
	dim     int
	entries []Entry
	vecs    []float64
	byID    map[string]int
}

// NewSharded returns an empty sharded store for vectors of the given
// dimensionality. A nil partitioner — or one reporting no shards —
// selects CategoryHash over shards (minimum 1; a single-shard store is
// the degenerate case the equivalence tests anchor on); a valid non-nil
// partitioner's Shards() takes precedence over the shards argument.
func NewSharded(dim, shards int, p Partitioner) *Sharded {
	if p == nil || p.Shards() < 1 {
		if shards < 1 {
			shards = 2
		}
		p = CategoryHash{N: shards}
	}
	s := &Sharded{dim: dim, parts: p, byID: &sync.Map{}}
	s.shard = newShards(p.Shards(), dim)
	return s
}

func newShards(n, dim int) []*shard {
	out := make([]*shard, n)
	for i := range out {
		out[i] = &shard{dim: dim, byID: make(map[string]int)}
	}
	return out
}

// Dim returns the vector dimensionality.
func (s *Sharded) Dim() int { return s.dim }

// Len returns the number of stored entries.
func (s *Sharded) Len() int { return int(s.count.Load()) }

// NumShards returns the shard count.
func (s *Sharded) NumShards() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.shard)
}

// Partitioner returns the current routing partitioner.
func (s *Sharded) Partitioner() Partitioner {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.parts
}

// ShardLens returns the per-shard entry counts (the load-balance view).
func (s *Sharded) ShardLens() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, len(s.shard))
	for i, sh := range s.shard {
		sh.mu.RLock()
		out[i] = len(sh.entries)
		sh.mu.RUnlock()
	}
	return out
}

// Add stores an entry, rejecting dimension mismatches and duplicate IDs.
// Concurrent Adds contend only on the destination shard's lock.
func (s *Sharded) Add(e Entry) error {
	if err := validateEntry(s.dim, e); err != nil {
		return err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	dst := s.parts.Route(e)
	if _, dup := s.byID.LoadOrStore(e.ID, dst); dup {
		return fmt.Errorf("vectordb: duplicate entry ID %s", e.ID)
	}
	s.shard[dst].add(e)
	s.count.Add(1)
	return nil
}

// add copies the entry's vector into the shard's columnar backing. The
// caller has validated the entry and claimed its ID.
func (sh *shard) add(e Entry) {
	vec := e.Vector
	e.Vector = nil
	sh.mu.Lock()
	sh.byID[e.ID] = len(sh.entries)
	sh.entries = append(sh.entries, e)
	sh.vecs = append(sh.vecs, vec...)
	sh.mu.Unlock()
}

// row returns entry i's vector view into the backing; valid only under
// sh.mu.
func (sh *shard) row(i int) []float64 {
	return sh.vecs[i*sh.dim : (i+1)*sh.dim]
}

// materialize returns entry i with its vector copied out of the backing;
// valid only under sh.mu.
func (sh *shard) materialize(i int) Entry {
	e := sh.entries[i]
	e.Vector = append([]float64(nil), sh.row(i)...)
	return e
}

// Get returns the entry with the given ID.
func (s *Sharded) Get(id string) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.byID.Load(id)
	if !ok {
		return Entry{}, false
	}
	sh := s.shard[v.(int)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	i, ok := sh.byID[id]
	if !ok {
		return Entry{}, false
	}
	return sh.materialize(i), true
}

// CountByCategory returns how many stored incidents each category has, one
// locked pass per shard.
func (s *Sharded) CountByCategory() map[incident.Category]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[incident.Category]int)
	for _, sh := range s.shard {
		sh.mu.RLock()
		countCategoriesInto(out, sh.entries)
		sh.mu.RUnlock()
	}
	return out
}

// Categories returns the set of distinct categories stored, derived from
// the same per-shard pass as CountByCategory.
func (s *Sharded) Categories() []incident.Category {
	return sortedCategories(s.CountByCategory())
}

// TopK returns the k most similar entries under the paper's temporal-decay
// similarity, fanning the scan out across shards (each shard streams its
// entries through a size-k bounded heap) and merging the per-shard heaps
// through one final size-k heap. Results are bit-identical to DB.TopK.
func (s *Sharded) TopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	if err := checkQuery(s.dim, query, k); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	perShard, err := parallel.Map(len(s.shard), 0, func(i int) ([]Scored, error) {
		return s.shard[i].topK(query, qt, k, alpha), nil
	})
	if err != nil {
		return nil, err
	}
	h := make(worstFirst, 0, k+1)
	for _, scs := range perShard {
		for _, sc := range scs {
			h.offer(sc, k)
		}
	}
	return h.drain(), nil
}

// TopKDiverse returns the k most similar entries with each root-cause
// category appearing at most once (§4.2.2), fanning out across shards.
// Each shard finds its per-category best; the merge keeps each category's
// best across shards — keep-best is commutative and associative under the
// total retrieval order, so the merged representatives (and therefore the
// final heap selection) are identical to the flat store's regardless of
// shard count or routing.
func (s *Sharded) TopKDiverse(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	if err := checkQuery(s.dim, query, k); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	perShard, err := parallel.Map(len(s.shard), 0, func(i int) (map[incident.Category]Scored, error) {
		return s.shard[i].categoryBest(query, qt, alpha), nil
	})
	if err != nil {
		return nil, err
	}
	best := perShard[0]
	for _, m := range perShard[1:] {
		for cat, sc := range m {
			if cur, ok := best[cat]; !ok || ranksAfter(cur, sc) {
				best[cat] = sc
			}
		}
	}
	h := make(worstFirst, 0, k+1)
	for _, sc := range best {
		h.offer(sc, k)
	}
	return h.drain(), nil
}

// topK streams one shard's columnar rows through a bounded heap and
// returns its local best-first top k, vectors materialized. The threshold
// pre-check skips the Entry copy for the overwhelming majority of rows
// that can't displace the heap root.
func (sh *shard) topK(query []float64, qt time.Time, k int, alpha float64) []Scored {
	sh.mu.RLock()
	h := make(worstFirst, 0, k+1)
	for i := range sh.entries {
		d, s := similarityAt(query, qt, sh.row(i), sh.entries[i].Time, alpha)
		if len(h) == k {
			if r := &h[0]; r.Similarity > s || (r.Similarity == s && r.Entry.ID < sh.entries[i].ID) {
				continue
			}
		}
		h.offer(Scored{Entry: sh.entries[i], Distance: d, Similarity: s}, k)
	}
	for i := range h {
		h[i].Entry.Vector = append([]float64(nil), sh.row(sh.byID[h[i].Entry.ID])...)
	}
	sh.mu.RUnlock()
	return h.drain()
}

// categoryBest returns the shard's best-ranked entry per category,
// vectors materialized.
func (sh *shard) categoryBest(query []float64, qt time.Time, alpha float64) map[incident.Category]Scored {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	best := make(map[incident.Category]Scored)
	for i := range sh.entries {
		d, s := similarityAt(query, qt, sh.row(i), sh.entries[i].Time, alpha)
		sc := Scored{Entry: sh.entries[i], Distance: d, Similarity: s}
		if cur, ok := best[sc.Entry.Category]; !ok || ranksAfter(cur, sc) {
			best[sc.Entry.Category] = sc
		}
	}
	for cat, sc := range best {
		sc.Entry.Vector = append([]float64(nil), sh.row(sh.byID[sc.Entry.ID])...)
		best[cat] = sc
	}
	return best
}

// allEntriesSortedByID snapshots every entry, vectors materialized,
// ordered by ID — the canonical order for persistence and partitioner
// training, independent of how concurrent inserts interleaved. Callers
// hold s.mu (shared or exclusive).
func (s *Sharded) allEntriesSortedByID() []Entry {
	out := make([]Entry, 0, s.count.Load())
	for _, sh := range s.shard {
		sh.mu.RLock()
		for i := range sh.entries {
			out = append(out, sh.materialize(i))
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Rebalance re-routes every stored entry under a new partitioner,
// stopping the world for the duration. Queries before and after return
// identical results — placement is invisible to exact fan-out search.
func (s *Sharded) Rebalance(p Partitioner) error {
	if p == nil || p.Shards() < 1 {
		return fmt.Errorf("vectordb: Rebalance needs a partitioner with at least 1 shard")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.allEntriesSortedByID()
	s.resetLocked(p, entries)
	return nil
}

// resetLocked replaces partitioner and contents; caller holds s.mu
// exclusively. Entries are assumed validated and carry materialized
// vectors.
func (s *Sharded) resetLocked(p Partitioner, entries []Entry) {
	s.parts = p
	s.shard = newShards(p.Shards(), s.dim)
	s.byID = &sync.Map{}
	for _, e := range entries {
		dst := p.Route(e)
		s.byID.Store(e.ID, dst)
		s.shard[dst].add(e)
	}
	s.count.Store(int64(len(entries)))
}

// TrainIVF trains an IVF coarse quantizer from the stored vectors (in
// canonical ID order, so training is deterministic regardless of insert
// interleaving) and rebalances the store onto it, keeping the current
// shard count. Call it once enough history has accumulated; entries added
// afterwards route through the trained centroids.
func (s *Sharded) TrainIVF(iters int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.allEntriesSortedByID()
	if len(entries) == 0 {
		return fmt.Errorf("vectordb: TrainIVF on an empty store")
	}
	vecs := make([][]float64, len(entries))
	for i := range entries {
		vecs[i] = entries[i].Vector
	}
	p, err := TrainIVF(vecs, len(s.shard), iters)
	if err != nil {
		return err
	}
	s.resetLocked(p, entries)
	return nil
}
