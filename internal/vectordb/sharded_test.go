package vectordb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/incident"
)

// shardCounts is the equivalence grid from the acceptance criteria.
var shardCounts = []int{1, 2, 7, 16}

// fillIndex inserts the same deterministic pseudo-random entries buildDB
// generates into any Index implementation.
func fillIndex(t *testing.T, idx Index, seed int64, n, dim, numCats int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64(rng.Intn(4))
		}
		err := idx.Add(Entry{
			ID:       fmt.Sprintf("INC-%06d", i),
			Vector:   v,
			Category: incident.Category(fmt.Sprintf("cat-%02d", rng.Intn(numCats))),
			Time:     base.AddDate(0, 0, rng.Intn(10)),
			Summary:  fmt.Sprintf("summary %d", i),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// queryGrid compares TopK and TopKDiverse between a reference and a
// candidate index over a grid of queries, ks and alphas.
func queryGrid(t *testing.T, name string, ref, got Index, seed int64, n, dim int) {
	t.Helper()
	qt := time.Date(2022, 1, 6, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(seed * 131))
	for _, k := range []int{1, 2, 5, 15, n + 10} {
		for _, alpha := range []float64{0, 0.3, 0.8} {
			q := make([]float64, dim)
			for j := range q {
				q[j] = float64(rng.Intn(4))
			}
			wantK, err := ref.TopK(q, qt, k, alpha)
			if err != nil {
				t.Fatal(err)
			}
			gotK, err := got.TopK(q, qt, k, alpha)
			if err != nil {
				t.Fatal(err)
			}
			sameScored(t, fmt.Sprintf("%s TopK k=%d a=%v", name, k, alpha), gotK, wantK)

			wantD, err := ref.TopKDiverse(q, qt, k, alpha)
			if err != nil {
				t.Fatal(err)
			}
			gotD, err := got.TopKDiverse(q, qt, k, alpha)
			if err != nil {
				t.Fatal(err)
			}
			sameScored(t, fmt.Sprintf("%s TopKDiverse k=%d a=%v", name, k, alpha), gotD, wantD)
		}
	}
}

// TestShardedMatchesFlat is the tentpole golden: for every tested shard
// count — including counts far above the entry count, so most shards are
// empty — the sharded store's TopK/TopKDiverse are bit-identical to the
// flat reference on tie-heavy data.
func TestShardedMatchesFlat(t *testing.T) {
	cases := []struct {
		name            string
		seed            int64
		n, dim, numCats int
	}{
		{"small-many-ties", 1, 40, 3, 4},
		{"medium", 2, 400, 8, 20},
		{"more-cats-than-k", 3, 200, 6, 60},
		{"single-category", 4, 100, 4, 1},
		{"shorter-than-shards", 5, 5, 2, 3},
		{"tiny", 6, 3, 2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			flat := New(tc.dim)
			fillIndex(t, flat, tc.seed, tc.n, tc.dim, tc.numCats)
			for _, shards := range shardCounts {
				sh := NewSharded(tc.dim, shards, nil)
				fillIndex(t, sh, tc.seed, tc.n, tc.dim, tc.numCats)
				if sh.Len() != flat.Len() {
					t.Fatalf("shards=%d: len %d != %d", shards, sh.Len(), flat.Len())
				}
				queryGrid(t, fmt.Sprintf("shards=%d", shards), flat, sh, tc.seed, tc.n, tc.dim)
			}
		})
	}
}

// TestShardedIVFMatchesFlat trains the IVF coarse quantizer from the
// stored vectors, checks the rebalanced store still matches the flat
// reference exactly, and keeps matching as post-training inserts route
// through the trained centroids.
func TestShardedIVFMatchesFlat(t *testing.T) {
	const seed, n, dim, numCats = 7, 300, 6, 12
	for _, shards := range []int{2, 7, 16} {
		flat := New(dim)
		fillIndex(t, flat, seed, n, dim, numCats)
		sh := NewSharded(dim, shards, nil)
		fillIndex(t, sh, seed, n, dim, numCats)
		if err := sh.TrainIVF(0); err != nil {
			t.Fatal(err)
		}
		if _, ok := sh.Partitioner().(*IVF); !ok {
			t.Fatalf("shards=%d: partitioner is %T after TrainIVF", shards, sh.Partitioner())
		}
		if sh.Len() != n {
			t.Fatalf("shards=%d: rebalance lost entries: %d != %d", shards, sh.Len(), n)
		}
		queryGrid(t, fmt.Sprintf("ivf-shards=%d", shards), flat, sh, seed, n, dim)

		// Inserts after training route through the centroids and stay
		// visible to queries.
		post := Entry{ID: "INC-POST", Vector: make([]float64, dim), Category: "cat-post",
			Time: time.Date(2022, 1, 5, 0, 0, 0, 0, time.UTC)}
		if err := sh.Add(post); err != nil {
			t.Fatal(err)
		}
		if err := flat.Add(post); err != nil {
			t.Fatal(err)
		}
		queryGrid(t, fmt.Sprintf("ivf-post-add-shards=%d", shards), flat, sh, seed+1, n, dim)
	}
}

// TestTrainIVFDeterministic pins quantizer determinism: identical vectors
// in identical order train identical centroids.
func TestTrainIVFDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vecs := make([][]float64, 64)
	for i := range vecs {
		vecs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	a, err := TrainIVF(vecs, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainIVF(vecs, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Centroids(), b.Centroids()) {
		t.Fatal("TrainIVF is not deterministic for identical input")
	}
}

// TestTrainIVFValidation covers the error paths.
func TestTrainIVFValidation(t *testing.T) {
	if _, err := TrainIVF(nil, 4, 0); err == nil {
		t.Fatal("no vectors should fail")
	}
	if _, err := TrainIVF([][]float64{{1}}, 1, 0); err == nil {
		t.Fatal("shards < 2 should fail")
	}
	if _, err := TrainIVF([][]float64{{1, 2}, {1}}, 2, 0); err == nil {
		t.Fatal("ragged vectors should fail")
	}
	// Fewer vectors than shards is allowed.
	if _, err := TrainIVF([][]float64{{1, 2}}, 4, 0); err != nil {
		t.Fatal(err)
	}
	s := NewSharded(2, 4, nil)
	if err := s.TrainIVF(0); err == nil {
		t.Fatal("TrainIVF on an empty store should fail")
	}
}

// TestNewShardedRejectsShardlessPartitioner: a partitioner reporting no
// shards must not produce a store that panics on first Add.
func TestNewShardedRejectsShardlessPartitioner(t *testing.T) {
	for _, p := range []Partitioner{CategoryHash{N: 0}, &IVF{}} {
		sh := NewSharded(2, 5, p)
		if sh.NumShards() < 1 {
			t.Fatalf("%T: store built with %d shards", p, sh.NumShards())
		}
		if err := sh.Add(entry("a", "X", []float64{1, 2}, 0)); err != nil {
			t.Fatalf("%T: %v", p, err)
		}
	}
	if got := NewIndex(2, Options{Partitioner: CategoryHash{N: 0}}); got.Dim() != 2 {
		t.Fatal("NewIndex with shardless partitioner broken")
	}
}

// TestCategoryHashRoutesInRange sanity-checks the default partitioner.
func TestCategoryHashRoutesInRange(t *testing.T) {
	p := CategoryHash{N: 7}
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		e := Entry{Category: incident.Category(fmt.Sprintf("cat-%d", i))}
		dst := p.Route(e)
		if dst < 0 || dst >= 7 {
			t.Fatalf("route %d out of range", dst)
		}
		seen[dst] = true
	}
	if len(seen) < 2 {
		t.Fatal("category hash routed every category to one shard")
	}
}

// TestShardedTieBreakByIDExact mirrors the flat-store tie contract on the
// sharded implementation: identical vectors and timestamps rank by
// ascending ID even when the tied entries live in different shards.
func TestShardedTieBreakByIDExact(t *testing.T) {
	at := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	for _, shards := range shardCounts {
		sh := NewSharded(2, shards, nil)
		// Distinct categories spread the tied entries across shards.
		for _, id := range []string{"INC-C", "INC-A", "INC-D", "INC-B"} {
			if err := sh.Add(Entry{ID: id, Vector: []float64{1, 1}, Category: incident.Category("cat-" + id), Time: at}); err != nil {
				t.Fatal(err)
			}
		}
		q := []float64{0, 0}
		for _, fn := range []struct {
			name string
			call func() ([]Scored, error)
		}{
			{"TopK", func() ([]Scored, error) { return sh.TopK(q, at, 3, 0.3) }},
			{"TopKDiverse", func() ([]Scored, error) { return sh.TopKDiverse(q, at, 3, 0.3) }},
		} {
			got, err := fn.call()
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"INC-A", "INC-B", "INC-C"}
			if len(got) != 3 {
				t.Fatalf("shards=%d %s: len = %d", shards, fn.name, len(got))
			}
			for i, id := range want {
				if got[i].Entry.ID != id {
					t.Fatalf("shards=%d %s: rank %d = %s, want %s", shards, fn.name, i, got[i].Entry.ID, id)
				}
			}
		}
	}
}

// TestShardedValidation mirrors the flat store's rejection behaviour,
// including duplicates whose copies would route to different shards.
func TestShardedValidation(t *testing.T) {
	sh := NewSharded(2, 4, nil)
	if err := sh.Add(Entry{ID: "a", Vector: []float64{1}, Category: "X"}); err == nil {
		t.Fatal("dim mismatch should fail")
	}
	if err := sh.Add(Entry{ID: "", Vector: []float64{1, 2}, Category: "X"}); err == nil {
		t.Fatal("empty ID should fail")
	}
	if err := sh.Add(Entry{ID: "a", Vector: []float64{1, 2}, Category: "X", Time: t0}); err != nil {
		t.Fatal(err)
	}
	// Same ID, different category: routes to a different shard, must still
	// be rejected as a duplicate.
	if err := sh.Add(Entry{ID: "a", Vector: []float64{1, 2}, Category: "Y", Time: t0}); err == nil {
		t.Fatal("duplicate ID across shards should fail")
	}
	if sh.Len() != 1 {
		t.Fatalf("len = %d after rejected adds", sh.Len())
	}
	if _, err := sh.TopK([]float64{1}, t0, 1, 0.3); err == nil {
		t.Fatal("query dim mismatch should fail")
	}
	if _, err := sh.TopKDiverse([]float64{1, 2}, t0, 0, 0.3); err == nil {
		t.Fatal("k=0 should fail")
	}
}

// TestShardedGetCategoriesCounts covers the lookup and inventory views.
func TestShardedGetCategoriesCounts(t *testing.T) {
	sh := NewSharded(1, 4, nil)
	must(t, sh.Add(entry("a", "B", []float64{1}, 0)))
	must(t, sh.Add(entry("b", "A", []float64{2}, 0)))
	must(t, sh.Add(entry("c", "B", []float64{3}, 0)))
	got, ok := sh.Get("b")
	if !ok || got.Category != "A" {
		t.Fatalf("Get = %+v/%v", got, ok)
	}
	if _, ok := sh.Get("missing"); ok {
		t.Fatal("Get on missing ID should miss")
	}
	cats := sh.Categories()
	if len(cats) != 2 || cats[0] != "A" || cats[1] != "B" {
		t.Fatalf("Categories = %v", cats)
	}
	counts := sh.CountByCategory()
	if counts["B"] != 2 || counts["A"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	// The vector is copied on Add.
	v := []float64{9}
	must(t, sh.Add(Entry{ID: "iso", Category: "C", Vector: v, Time: t0}))
	v[0] = 0
	if e, _ := sh.Get("iso"); e.Vector[0] != 9 {
		t.Fatal("Add must copy the vector")
	}
}

// TestShardedRebalancePreservesResults rebalances between partitioners and
// requires identical query results before and after — placement is
// invisible to exact fan-out search.
func TestShardedRebalancePreservesResults(t *testing.T) {
	const seed, n, dim, numCats = 9, 120, 4, 8
	sh := NewSharded(dim, 7, nil)
	fillIndex(t, sh, seed, n, dim, numCats)
	qt := time.Date(2022, 1, 6, 0, 0, 0, 0, time.UTC)
	q := []float64{1, 2, 0, 3}
	before, err := sh.TopK(q, qt, 10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Rebalance(CategoryHash{N: 3}); err != nil {
		t.Fatal(err)
	}
	if sh.NumShards() != 3 {
		t.Fatalf("NumShards = %d after rebalance", sh.NumShards())
	}
	after, err := sh.TopK(q, qt, 10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sameScored(t, "rebalance", after, before)
	total := 0
	for _, l := range sh.ShardLens() {
		total += l
	}
	if total != n {
		t.Fatalf("shard lens sum to %d, want %d", total, n)
	}
	if err := sh.Rebalance(nil); err == nil {
		t.Fatal("nil partitioner should fail")
	}
}

// TestShardedConcurrentAddQuery hammers the sharded store with concurrent
// writers, readers, and a mid-flight IVF retrain; run under `go test
// -race` this proves the per-shard locking discipline and the
// stop-the-world rebalance. The final store must match a flat reference
// filled with the same entries.
func TestShardedConcurrentAddQuery(t *testing.T) {
	const writers, readers, perG = 4, 4, 150
	sh := NewSharded(4, 7, nil)
	at := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 8; i++ {
		must(t, sh.Add(Entry{
			ID:       fmt.Sprintf("SEED-%d", i),
			Vector:   []float64{float64(i), 1, 2, 3},
			Category: incident.Category(fmt.Sprintf("c%d", i%3)),
			Time:     at,
		}))
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := sh.Add(Entry{
					ID:       fmt.Sprintf("W%d-%04d", w, i),
					Vector:   []float64{float64(i % 7), float64(w), 0, 1},
					Category: incident.Category(fmt.Sprintf("c%d", i%5)),
					Time:     at.AddDate(0, 0, i%30),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			q := []float64{float64(r), 1, 1, 1}
			for i := 0; i < perG; i++ {
				if _, err := sh.TopKDiverse(q, at.AddDate(0, 0, i%30), 5, 0.3); err != nil {
					t.Error(err)
					return
				}
				if _, err := sh.TopK(q, at, 3, 0.3); err != nil {
					t.Error(err)
					return
				}
				sh.Len()
				sh.Categories()
				sh.Get(fmt.Sprintf("W%d-%04d", r, i))
				if i%50 == 25 {
					if err := sh.TrainIVF(2); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if got, want := sh.Len(), 8+writers*perG; got != want {
		t.Fatalf("len = %d, want %d", got, want)
	}

	// After the storm: still bit-identical to a flat store with the same
	// contents.
	flat := New(4)
	for _, e := range sh.snapshotSortedByID() {
		must(t, flat.Add(e))
	}
	queryGrid(t, "post-hammer", flat, sh, 17, sh.Len(), 4)
}
