package vectordb

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// slowIndex delays every retrieval so concurrent callers pile up behind
// the batcher's dispatcher and coalescing is guaranteed to engage.
type slowIndex struct {
	Index
	delay time.Duration
}

func (s *slowIndex) TopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	time.Sleep(s.delay)
	return s.Index.TopK(query, qt, k, alpha)
}

func (s *slowIndex) TopKDiverse(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	time.Sleep(s.delay)
	return s.Index.TopKDiverse(query, qt, k, alpha)
}

func (s *slowIndex) TopKBatch(queries []BatchQuery) ([][]Scored, error) {
	time.Sleep(s.delay)
	return s.Index.TopKBatch(queries)
}

func buildBatcherFixture(t *testing.T) (*DB, [][]float64, time.Time) {
	t.Helper()
	entries, queries := clusteredCorpus(42, 200, 6, 4)
	diversify(entries, 5)
	db := New(6)
	for _, e := range entries {
		must(t, db.Add(e))
	}
	return db, queries, entries[0].Time
}

// TestBatcherIdleFastPath: a lone query on an idle batcher serves
// immediately (no maxWait stall), bit-identical to the direct call, and
// accounts as one idle-flushed batch of occupancy 1.
func TestBatcherIdleFastPath(t *testing.T) {
	db, queries, qt := buildBatcherFixture(t)
	b, err := NewBatcher(db, 8, time.Hour) // a timer flush would hang the test; idle path must not arm it
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	start := time.Now()
	got, err := b.TopK(queries[0], qt, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("idle single query took %v — fast path is waiting on the window timer", elapsed)
	}
	want, err := db.TopK(queries[0], qt, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sameScored(t, "idle TopK", got, want)

	gotD, err := b.TopKDiverse(queries[1], qt, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	wantD, err := db.TopKDiverse(queries[1], qt, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sameScored(t, "idle TopKDiverse", gotD, wantD)

	st := b.Stats()
	if st.Batches != 2 || st.Queries != 2 || st.FlushIdle != 2 || st.FlushSize != 0 || st.FlushTimer != 0 {
		t.Fatalf("stats after two idle queries: %+v", st)
	}
	if st.MeanOccupancy != 1 {
		t.Fatalf("MeanOccupancy = %v, want 1", st.MeanOccupancy)
	}
}

// TestBatcherCoalesces: under heavy concurrency against a slow store the
// collector must form real batches (fewer flushes than queries), every
// result must stay bit-identical to direct serving, and the flush-reason
// counters must account for every batch.
func TestBatcherCoalesces(t *testing.T) {
	db, queries, qt := buildBatcherFixture(t)
	slow := &slowIndex{Index: db, delay: 2 * time.Millisecond}
	const maxBatch, n = 8, 64
	b, err := NewBatcher(slow, maxBatch, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := queries[i%len(queries)]
			k := 2 + i%5
			alpha := []float64{0, 0.3}[i%2]
			var got, want []Scored
			var gerr, werr error
			if i%3 == 0 {
				got, gerr = b.TopKDiverse(q, qt, k, alpha)
				want, werr = db.TopKDiverse(q, qt, k, alpha)
			} else {
				got, gerr = b.TopK(q, qt, k, alpha)
				want, werr = db.TopK(q, qt, k, alpha)
			}
			if gerr != nil || werr != nil {
				errs <- fmt.Errorf("query %d: got err %v, want err %v", i, gerr, werr)
				return
			}
			if len(got) != len(want) {
				errs <- fmt.Errorf("query %d: %d results, want %d", i, len(got), len(want))
				return
			}
			for r := range got {
				if got[r].Entry.ID != want[r].Entry.ID ||
					got[r].Similarity != want[r].Similarity ||
					got[r].Distance != want[r].Distance {
					errs <- fmt.Errorf("query %d rank %d: batched result diverges from direct", i, r)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := b.Stats()
	if st.Queries != n {
		t.Fatalf("Queries = %d, want %d", st.Queries, n)
	}
	if st.Batches >= n {
		t.Fatalf("Batches = %d with %d concurrent queries against a slow store — no coalescing happened", st.Batches, n)
	}
	if st.FlushIdle+st.FlushSize+st.FlushTimer != st.Batches {
		t.Fatalf("flush reasons (%d+%d+%d) do not account for %d batches",
			st.FlushIdle, st.FlushSize, st.FlushTimer, st.Batches)
	}
	if st.MeanOccupancy <= 1 || st.MeanOccupancy > maxBatch {
		t.Fatalf("MeanOccupancy = %v, want in (1, %d]", st.MeanOccupancy, maxBatch)
	}
}

// TestBatcherClose: Close is idempotent, and queries after Close serve
// directly through the wrapped store without touching the collector
// counters.
func TestBatcherClose(t *testing.T) {
	db, queries, qt := buildBatcherFixture(t)
	b, err := NewBatcher(db, 4, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.TopK(queries[0], qt, 3, 0.3); err != nil {
		t.Fatal(err)
	}
	before := b.Stats()
	b.Close()
	b.Close() // idempotent
	got, err := b.TopK(queries[2], qt, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.TopK(queries[2], qt, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sameScored(t, "post-close TopK", got, want)
	if after := b.Stats(); after != before {
		t.Fatalf("post-close serving touched collector stats: %+v -> %+v", before, after)
	}
}

// TestNewBatcherValidates rejects degenerate windows.
func TestNewBatcherValidates(t *testing.T) {
	db := New(2)
	for _, maxBatch := range []int{-1, 0, 1} {
		if _, err := NewBatcher(db, maxBatch, time.Millisecond); err == nil {
			t.Fatalf("NewBatcher accepted maxBatch %d", maxBatch)
		}
	}
	if _, err := NewBatcher(db, 2, 0); err == nil {
		t.Fatal("NewBatcher accepted zero maxWait")
	}
}

// TestAsSharded unwraps decorator layers down to the sharded store.
func TestAsSharded(t *testing.T) {
	sh := NewSharded(2, 4, nil)
	if got, ok := AsSharded(sh); !ok || got != sh {
		t.Fatal("AsSharded failed on a bare *Sharded")
	}
	b, err := NewBatcher(sh, 4, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got, ok := AsSharded(b); !ok || got != sh {
		t.Fatal("AsSharded failed through a Batcher layer")
	}
	if _, ok := AsSharded(New(2)); ok {
		t.Fatal("AsSharded claimed a flat DB is sharded")
	}
	if _, ok := AsSharded(nil); ok {
		t.Fatal("AsSharded claimed nil is sharded")
	}
}
