package vectordb

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/incident"
)

// snapshot is the gob wire format.
type snapshot struct {
	Dim     int
	Entries []Entry
}

// Save serializes the store to w, so a trained incident history survives
// restarts of the on-call service.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	snap := snapshot{Dim: db.dim, Entries: make([]Entry, len(db.entries))}
	copy(snap.Entries, db.entries)
	db.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("vectordb: save: %w", err)
	}
	return nil
}

// Load replaces the store contents with a snapshot written by Save. The
// snapshot's dimensionality must match the store's.
func (db *DB) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("vectordb: load: %w", err)
	}
	if snap.Dim != db.dim {
		return fmt.Errorf("vectordb: snapshot dim %d != store dim %d", snap.Dim, db.dim)
	}
	byID := make(map[string]int, len(snap.Entries))
	for i, e := range snap.Entries {
		if len(e.Vector) != snap.Dim {
			return fmt.Errorf("vectordb: snapshot entry %s has dim %d", e.ID, len(e.Vector))
		}
		if _, dup := byID[e.ID]; dup {
			return fmt.Errorf("vectordb: snapshot has duplicate ID %s", e.ID)
		}
		byID[e.ID] = i
	}
	db.mu.Lock()
	db.entries = snap.Entries
	db.byID = byID
	db.mu.Unlock()
	return nil
}

// CountByCategory returns how many stored incidents each category has —
// the inventory view an on-call dashboard shows.
func (db *DB) CountByCategory() map[incident.Category]int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[incident.Category]int)
	for _, e := range db.entries {
		out[e.Category]++
	}
	return out
}
