package vectordb

import (
	"encoding/gob"
	"fmt"
	"io"
	"sync"
)

// snapshot is the gob wire format, shared by every Index implementation:
// a flat entry list plus its dimensionality. The flat DB saves entries in
// insertion order; the Sharded store saves them sorted by ID (its
// insertion order is not deterministic under concurrent ingest). Either
// implementation loads either ordering, so stores round-trip freely
// between flat and sharded deployments.
type snapshot struct {
	Dim     int
	Entries []Entry
}

// decodeSnapshot reads and fully validates a snapshot against the
// receiving store's dimensionality BEFORE any store state changes, so a
// mismatched or corrupt file is rejected with a descriptive error instead
// of corrupting the store: the store keeps its previous contents on every
// error path.
func decodeSnapshot(r io.Reader, dim int) (snapshot, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return snapshot{}, fmt.Errorf("vectordb: load: %w", err)
	}
	if snap.Dim != dim {
		return snapshot{}, fmt.Errorf("vectordb: load: snapshot dim %d does not match store dim %d", snap.Dim, dim)
	}
	seen := make(map[string]bool, len(snap.Entries))
	for i, e := range snap.Entries {
		if e.ID == "" {
			return snapshot{}, fmt.Errorf("vectordb: load: snapshot entry %d has empty ID", i)
		}
		if len(e.Vector) != snap.Dim {
			return snapshot{}, fmt.Errorf("vectordb: load: snapshot entry %d (%s) has dim %d, snapshot declares %d",
				i, e.ID, len(e.Vector), snap.Dim)
		}
		if seen[e.ID] {
			return snapshot{}, fmt.Errorf("vectordb: load: snapshot has duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	return snap, nil
}

// Save serializes the store to w, so a trained incident history survives
// restarts of the on-call service.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	snap := snapshot{Dim: db.dim, Entries: make([]Entry, len(db.entries))}
	copy(snap.Entries, db.entries)
	db.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("vectordb: save: %w", err)
	}
	return nil
}

// Load replaces the store contents with a snapshot written by any Index
// implementation's Save. The snapshot's dimensionality must match the
// store's; on any validation error the store is left unchanged.
func (db *DB) Load(r io.Reader) error {
	snap, err := decodeSnapshot(r, db.dim)
	if err != nil {
		return err
	}
	byID := make(map[string]int, len(snap.Entries))
	for i, e := range snap.Entries {
		byID[e.ID] = i
	}
	db.mu.Lock()
	db.entries = snap.Entries
	db.byID = byID
	db.mu.Unlock()
	return nil
}

// Save serializes the sharded store in the same flat snapshot format the
// flat DB writes, entries sorted by ID for determinism, so a sharded
// deployment's history loads into a flat store and vice versa. Safe to
// call mid-rebalance: the snapshot deduplicates entries that are briefly
// visible in both generations.
func (s *Sharded) Save(w io.Writer) error {
	snap := snapshot{Dim: s.dim, Entries: s.snapshotSortedByID()}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("vectordb: save: %w", err)
	}
	return nil
}

// Load replaces the sharded store contents with a snapshot written by any
// Index implementation's Save, routing every entry through the current
// partitioner. On any validation error the store is left unchanged. Load
// serializes against rebalances and is the one remaining operation that
// holds the store-wide lock exclusively for its full duration (a wholesale
// content replacement has no incremental form worth having).
func (s *Sharded) Load(r io.Reader) error {
	snap, err := decodeSnapshot(r, s.dim)
	if err != nil {
		return err
	}
	s.rebMu.Lock()
	defer s.rebMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.gen.parts
	next := &generation{parts: p, shard: newShards(p.Shards(), s.dim)}
	byID := &sync.Map{}
	for _, e := range snap.Entries {
		dst, err := routeTo(p, e)
		if err != nil {
			return fmt.Errorf("vectordb: load: %w", err)
		}
		sh := next.shard[dst]
		sh.add(e)
		byID.Store(e.ID, sh)
	}
	s.gen, s.old, s.byID = next, nil, byID
	s.count.Store(int64(len(snap.Entries)))
	s.epoch.Add(2)
	return nil
}
