package vectordb

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// snapshot is the gob wire format, shared by every Index implementation:
// a flat entry list plus its dimensionality. The flat DB saves entries in
// insertion order; the Sharded store saves them sorted by ID (its
// insertion order is not deterministic under concurrent ingest). Either
// implementation loads either ordering, so stores round-trip freely
// between flat and sharded deployments.
type snapshot struct {
	Dim     int
	Entries []Entry
}

// tunerState is the versioned serving-state trailer Sharded.Save appends
// after the snapshot on the same gob stream: the converged probe budget,
// the controller's hysteresis floor and retrain clock, and the lifetime
// recall aggregate — so a redeploy resumes at the converged SLO instead
// of re-learning it from cold. The trailer is strictly additive to the
// PR-0 wire format: a flat DB.Save file simply ends after the snapshot
// (Load treats the clean EOF as "no trailer"), and DB.Load never reads
// past the snapshot, so files round-trip freely across implementations
// and versions.
type tunerState struct {
	Version     int
	Probes      int
	LastBad     int
	LastRetrain time.Time
	RecallSum   float64
	RecallN     int
	// Namespaces carries each non-default namespace's serving state
	// (trailer v2). v1 files simply have no map — they load as a store
	// whose namespaces start from serving defaults — and gob drops the
	// field when an old reader loads a v2 file, so the trailer stays
	// compatible in both directions.
	Namespaces map[string]nsTunerState
}

// nsTunerState is one namespace's slice of the serving-state trailer:
// its converged probe budget and overfetch factor plus its controller's
// long-lived state.
type nsTunerState struct {
	Probes      int
	Overfetch   int
	LastBad     int
	LastRetrain time.Time
	RecallSum   float64
	RecallN     int
}

// tunerStateVersion is the current trailer version; Load accepts any
// version >= 1 (gob ignores unknown future fields, and fields absent
// from old files decode to zero values).
const tunerStateVersion = 2

// decodeSnapshot reads and fully validates a snapshot against the
// receiving store's dimensionality BEFORE any store state changes, so a
// mismatched or corrupt file is rejected with a descriptive error instead
// of corrupting the store: the store keeps its previous contents on every
// error path.
func decodeSnapshot(r io.Reader, dim int) (snapshot, error) {
	return decodeSnapshotFrom(gob.NewDecoder(r), dim)
}

// decodeSnapshotFrom is decodeSnapshot over a caller-owned decoder, so
// Sharded.Load can keep reading the optional serving-state trailer from
// the same gob stream.
func decodeSnapshotFrom(dec *gob.Decoder, dim int) (snapshot, error) {
	var snap snapshot
	if err := dec.Decode(&snap); err != nil {
		return snapshot{}, fmt.Errorf("vectordb: load: %w", err)
	}
	if snap.Dim != dim {
		return snapshot{}, fmt.Errorf("vectordb: load: snapshot dim %d does not match store dim %d", snap.Dim, dim)
	}
	seen := make(map[string]bool, len(snap.Entries))
	for i, e := range snap.Entries {
		if e.ID == "" {
			return snapshot{}, fmt.Errorf("vectordb: load: snapshot entry %d has empty ID", i)
		}
		if len(e.Vector) != snap.Dim {
			return snapshot{}, fmt.Errorf("vectordb: load: snapshot entry %d (%s) has dim %d, snapshot declares %d",
				i, e.ID, len(e.Vector), snap.Dim)
		}
		if seen[e.ID] {
			return snapshot{}, fmt.Errorf("vectordb: load: snapshot has duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	return snap, nil
}

// Save serializes the store to w, so a trained incident history survives
// restarts of the on-call service.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	snap := snapshot{Dim: db.dim, Entries: make([]Entry, len(db.entries))}
	copy(snap.Entries, db.entries)
	// The columnar store keeps vectors out of the entries; the wire format
	// carries them inline, so materialize each row into the copies.
	for i := range snap.Entries {
		snap.Entries[i].Vector = append([]float64(nil), db.row(i)...)
	}
	db.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("vectordb: save: %w", err)
	}
	return nil
}

// Load replaces the store contents with a snapshot written by any Index
// implementation's Save. The snapshot's dimensionality must match the
// store's; on any validation error the store is left unchanged.
func (db *DB) Load(r io.Reader) error {
	snap, err := decodeSnapshot(r, db.dim)
	if err != nil {
		return err
	}
	byID := make(map[string]int, len(snap.Entries))
	vecs := make([]float64, 0, len(snap.Entries)*db.dim)
	for i := range snap.Entries {
		byID[snap.Entries[i].ID] = i
		vecs = append(vecs, snap.Entries[i].Vector...)
		snap.Entries[i].Vector = nil
	}
	nsCount := make(map[string]int)
	for i := range snap.Entries {
		nsCount[snap.Entries[i].Namespace]++
	}
	db.mu.Lock()
	db.entries = snap.Entries
	db.vecs = vecs
	db.byID = byID
	db.nsCount = nsCount
	db.mu.Unlock()
	return nil
}

// Save serializes the sharded store in the same flat snapshot format the
// flat DB writes, entries sorted by ID for determinism, so a sharded
// deployment's history loads into a flat store and vice versa. Safe to
// call mid-rebalance: the snapshot deduplicates entries that are briefly
// visible in both generations. After the snapshot, Save appends the
// versioned serving-state trailer (probe budget, tuner hysteresis and
// retrain clock, lifetime recall aggregate); flat loaders never read that
// far, so the wire format stays PR-0 compatible in both directions.
func (s *Sharded) Save(w io.Writer) error {
	snap := snapshot{Dim: s.dim, Entries: s.snapshotSortedByID()}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("vectordb: save: %w", err)
	}
	if err := enc.Encode(s.servingState()); err != nil {
		return fmt.Errorf("vectordb: save: serving-state trailer: %w", err)
	}
	return nil
}

// servingState snapshots the persistable serving state: the effective
// probe budget plus — when a tuner is installed — its hysteresis floor,
// retrain clock, and lifetime recall aggregate; trailer v2 additionally
// carries every non-default namespace's serving state.
func (s *Sharded) servingState() tunerState {
	st := tunerState{Version: tunerStateVersion, Probes: s.Probes()}
	if t := s.tuner.Load(); t != nil {
		t.mu.Lock()
		st.LastBad = t.lastBad
		st.LastRetrain = t.lastRetrain
		st.RecallSum, st.RecallN = t.recallSum, t.recallN
		t.mu.Unlock()
	}
	s.nss.Range(func(_, v any) bool {
		n := v.(*nsState)
		row := nsTunerState{
			Probes:    int(n.probes.Load()),
			Overfetch: int(n.overfetch.Load()),
		}
		if t := n.tuner.Load(); t != nil {
			t.mu.Lock()
			row.LastBad = t.lastBad
			row.LastRetrain = t.lastRetrain
			row.RecallSum, row.RecallN = t.recallSum, t.recallN
			t.mu.Unlock()
		}
		if st.Namespaces == nil {
			st.Namespaces = make(map[string]nsTunerState)
		}
		st.Namespaces[n.ns] = row
		return true
	})
	return st
}

// decodeTunerState reads the optional serving-state trailer following a
// snapshot on the same gob stream. A clean EOF means a PR-0 file with no
// trailer (nil, nil); a malformed trailer is an error so Load can reject
// the file before touching store state.
func decodeTunerState(dec *gob.Decoder) (*tunerState, error) {
	var st tunerState
	switch err := dec.Decode(&st); {
	case errors.Is(err, io.EOF):
		return nil, nil
	case err != nil:
		return nil, fmt.Errorf("vectordb: load: serving-state trailer: %w", err)
	}
	if err := st.validate(); err != nil {
		return nil, fmt.Errorf("vectordb: load: %w", err)
	}
	return &st, nil
}

// validate checks a decoded serving state — shared by the snapshot
// trailer (decodeTunerState) and the WAL's tuner-state record, which
// adopts the same payload.
func (st *tunerState) validate() error {
	if st.Version < 1 {
		return fmt.Errorf("serving-state trailer version %d, want >= 1", st.Version)
	}
	if st.Probes < 0 {
		return fmt.Errorf("serving-state trailer has negative probe budget %d", st.Probes)
	}
	for ns, row := range st.Namespaces {
		if ns == "" {
			return errors.New("serving-state trailer names the default namespace (its state is the root fields)")
		}
		if row.Probes < 0 || row.Overfetch < 0 {
			return fmt.Errorf("serving-state trailer has negative budget for namespace %q", ns)
		}
	}
	return nil
}

// Load replaces the sharded store contents with a snapshot written by any
// Index implementation's Save, routing every entry through the current
// partitioner. On any validation error the store is left unchanged. Load
// serializes against rebalances and is the one remaining operation that
// holds the store-wide lock exclusively for its full duration (a wholesale
// content replacement has no incremental form worth having).
//
// A serving-state trailer (written by Sharded.Save) restores the saved
// probe budget and rehydrates the tuner's hysteresis floor, retrain
// clock, and recall aggregate — into the installed tuner if one exists,
// or stashed for the next EnableAdaptive. Quantized sidecars are derived
// state and are rebuilt from the loaded contents, never read from the
// file.
func (s *Sharded) Load(r io.Reader) error {
	dec := gob.NewDecoder(r)
	snap, err := decodeSnapshotFrom(dec, s.dim)
	if err != nil {
		return err
	}
	st, err := decodeTunerState(dec)
	if err != nil {
		return err
	}
	s.rebMu.Lock()
	defer s.rebMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.gen.parts
	next := &generation{parts: p, shard: newShards(p.Shards(), s.dim)}
	byID := &sync.Map{}
	for _, e := range snap.Entries {
		dst, err := routeTo(p, e)
		if err != nil {
			return fmt.Errorf("vectordb: load: %w", err)
		}
		sh := next.shard[dst]
		sh.add(e)
		byID.Store(e.ID, sh)
	}
	if s.quantized.Load() {
		for _, sh := range next.shard {
			sh.quant = buildSidecar(sh.dim, sh.entries, sh.vecs)
		}
	}
	s.gen, s.old, s.byID = next, nil, byID
	s.count.Store(int64(len(snap.Entries)))
	// Namespace tallies are derived from the loaded contents: zero any
	// pre-existing per-namespace counts (a namespace absent from the file
	// now holds nothing), then recount.
	var defCount int64
	nsCounts := make(map[string]int64)
	for i := range snap.Entries {
		if ns := snap.Entries[i].Namespace; ns == "" {
			defCount++
		} else {
			nsCounts[ns]++
		}
	}
	s.defCount.Store(defCount)
	s.nss.Range(func(_, v any) bool {
		n := v.(*nsState)
		n.count.Store(nsCounts[n.ns])
		return true
	})
	for ns, c := range nsCounts {
		s.nsStateFor(ns).count.Store(c)
	}
	s.epoch.Add(2)
	if st != nil {
		s.applyServingState(st)
	}
	return nil
}

// applyServingState installs a validated serving state: the probe budget,
// the root tuner's long-lived state (or a stash for the next
// EnableAdaptive), and every named namespace's budget and controller
// state. Shared by Load's trailer path and the durable layer's replay of
// WAL tuner-state records, which adopt the same payload.
func (s *Sharded) applyServingState(st *tunerState) {
	s.probes.Store(int64(st.Probes))
	if t := s.tuner.Load(); t != nil {
		t.restore(*st)
	} else {
		// No controller yet: stash for the next EnableAdaptive, which
		// consumes it exactly once.
		s.savedState.Store(st)
	}
	for ns, row := range st.Namespaces {
		n := s.nsStateFor(ns)
		n.probes.Store(int64(row.Probes))
		n.overfetch.Store(int64(row.Overfetch))
		sub := tunerState{
			Probes:      row.Probes,
			LastBad:     row.LastBad,
			LastRetrain: row.LastRetrain,
			RecallSum:   row.RecallSum,
			RecallN:     row.RecallN,
		}
		if t := n.tuner.Load(); t != nil {
			t.restore(sub)
		} else {
			n.saved.Store(&sub)
		}
	}
}
