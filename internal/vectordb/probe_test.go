package vectordb

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// clusteredCorpus builds a deterministic corpus with genuine neighbourhood
// structure — numClusters Gaussian-ish blobs on a seeded layout — so an
// IVF quantizer can learn partitions that capture neighbourhoods and
// probe-limited search has meaningful recall. All entries share one
// timestamp: the temporal-decay factor then cancels across entries and
// the ranking is purely geometric, which is what the probe recall floor
// pins (probe selection cannot see time; see the package comment).
func clusteredCorpus(seed int64, n, dim, numClusters int) ([]Entry, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, numClusters)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = rng.Float64() * 20
		}
	}
	at := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	entries := make([]Entry, n)
	for i := range entries {
		c := centers[rng.Intn(numClusters)]
		v := make([]float64, dim)
		for j := range v {
			v[j] = c[j] + rng.NormFloat64()*0.8
		}
		entries[i] = Entry{
			ID:       fmt.Sprintf("INC-%06d", i),
			Vector:   v,
			Category: "cat-0",
			Time:     at,
		}
	}
	queries := make([][]float64, 100)
	for q := range queries {
		c := centers[rng.Intn(numClusters)]
		v := make([]float64, dim)
		for j := range v {
			v[j] = c[j] + rng.NormFloat64()*0.8
		}
		queries[q] = v
	}
	return entries, queries
}

// timeSpreadCorpus builds a corpus whose timestamps span the temporal-decay
// horizon with recency anti-correlated with proximity — the workload where
// distance-only probe ranking fails and time-aware ranking recovers. It
// lays out `pairs` spatial cluster pairs: each pair has an "old" blob
// (timestamps ~60 days before the query time, decayed to irrelevance at
// alpha 0.3) and a "recent" blob (within the last two days) offset a fixed
// distance away. Queries land between the two blobs but nearer the OLD
// one, so the true temporal-decay top-k comes from the recent blob while
// the nearest centroid is the old blob's: a probe ranking that only sees
// centroid distance probes the wrong partition.
func timeSpreadCorpus(seed int64, n, dim, pairs int) (entries []Entry, queries [][]float64, qt time.Time) {
	rng := rand.New(rand.NewSource(seed))
	qt = time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	const sep = 8.0   // old->recent center offset; >> noise norm so IVF separates the blobs
	const sigma = 0.3 // per-coordinate blob noise
	type pair struct{ oldC, newC, dir []float64 }
	ps := make([]pair, pairs)
	for i := range ps {
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.Float64() * 20
		}
		dir := make([]float64, dim)
		var norm float64
		for j := range dir {
			dir[j] = rng.NormFloat64()
			norm += dir[j] * dir[j]
		}
		norm = math.Sqrt(norm)
		newC := make([]float64, dim)
		for j := range dir {
			dir[j] /= norm
			newC[j] = c[j] + sep*dir[j]
		}
		ps[i] = pair{oldC: c, newC: newC, dir: dir}
	}
	entries = make([]Entry, n)
	for i := range entries {
		p := ps[rng.Intn(pairs)]
		center, age := p.oldC, 58+rng.Intn(4) // old blob: ~60 days stale
		if rng.Intn(2) == 0 {
			center, age = p.newC, rng.Intn(2) // recent blob: fresh
		}
		v := make([]float64, dim)
		for j := range v {
			v[j] = center[j] + rng.NormFloat64()*sigma
		}
		entries[i] = Entry{
			ID:       fmt.Sprintf("INC-%06d", i),
			Vector:   v,
			Category: "cat-0",
			Time:     qt.AddDate(0, 0, -age),
		}
	}
	queries = make([][]float64, 100)
	for q := range queries {
		p := ps[rng.Intn(pairs)]
		v := make([]float64, dim)
		for j := range v {
			// 35% of the way from the old blob toward the recent one:
			// nearer the old centroid, but the decayed old entries lose to
			// the recent ones under the similarity.
			v[j] = p.oldC[j] + 0.35*sep*p.dir[j] + rng.NormFloat64()*sigma
		}
		queries[q] = v
	}
	return entries, queries, qt
}

// recallAtK measures |approx ∩ exact| / |exact| averaged over queries.
func recallAtK(t testing.TB, exact, approx Index, queries [][]float64, qt time.Time, k int, alpha float64) float64 {
	t.Helper()
	var hit, total int
	for _, q := range queries {
		want, err := exact.TopK(q, qt, k, alpha)
		if err != nil {
			t.Fatal(err)
		}
		got, err := approx.TopK(q, qt, k, alpha)
		if err != nil {
			t.Fatal(err)
		}
		ids := make(map[string]bool, len(got))
		for _, sc := range got {
			ids[sc.Entry.ID] = true
		}
		for _, sc := range want {
			total++
			if ids[sc.Entry.ID] {
				hit++
			}
		}
	}
	if total == 0 {
		t.Fatal("recall over empty result sets")
	}
	return float64(hit) / float64(total)
}

// TestProbeRecallFloor is the probe-mode golden from the acceptance
// criteria: on the deterministic seeded 10k-entry clustered corpus, an
// 8-shard IVF store probing only 2 partitions must keep recall@5 >= 0.9
// against the flat exact reference. The same floor is enforced on every
// CI bench run by BenchmarkTopKProbes.
func TestProbeRecallFloor(t *testing.T) {
	const n, dim, shards, probes, k = 10_000, 32, 8, 2, 5
	entries, queries := clusteredCorpus(99, n, dim, 12)
	qt := entries[0].Time

	flat := New(dim)
	sh := NewSharded(dim, shards, nil)
	for _, e := range entries {
		must(t, flat.Add(e))
		must(t, sh.Add(e))
	}
	if err := sh.TrainIVF(0); err != nil {
		t.Fatal(err)
	}
	must(t, sh.SetProbes(probes))

	recall := recallAtK(t, flat, sh, queries, qt, k, 0.3)
	t.Logf("recall@%d at probes=%d/%d shards: %.4f", k, probes, shards, recall)
	if recall < 0.9 {
		t.Fatalf("recall@%d = %.4f, below the pinned 0.9 floor", k, recall)
	}
}

// TestProbeFallsBackExact pins every documented exact-fallback condition:
// probes <= 0, probes >= shards, probes covering all non-empty shards,
// and a category-hash partitioner. In each, probe-configured results must
// be bit-identical to the flat reference.
func TestProbeFallsBackExact(t *testing.T) {
	const seed, n, dim, numCats = 21, 300, 6, 12
	flat := New(dim)
	fillIndex(t, flat, seed, n, dim, numCats)

	cases := []struct {
		name   string
		probes int
		ivf    bool
	}{
		{"zero-probes-ivf", 0, true},
		{"probes-equal-shards-ivf", 7, true},
		{"probes-above-shards-ivf", 99, true},
		{"category-hash-ignores-probes", 2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sh := NewSharded(dim, 7, nil)
			fillIndex(t, sh, seed, n, dim, numCats)
			if tc.ivf {
				if err := sh.TrainIVF(0); err != nil {
					t.Fatal(err)
				}
			}
			must(t, sh.SetProbes(tc.probes))
			queryGrid(t, tc.name, flat, sh, seed, n, dim)
		})
	}
}

// TestSetProbesValidation: negative budgets are a caller bug and must be
// rejected loudly, never silently degraded to exact.
func TestSetProbesValidation(t *testing.T) {
	sh := NewSharded(2, 4, nil)
	if err := sh.SetProbes(-1); err == nil {
		t.Fatal("SetProbes(-1) must fail")
	}
	if sh.Probes() != 0 {
		t.Fatalf("rejected SetProbes changed the budget to %d", sh.Probes())
	}
	must(t, sh.SetProbes(3))
	if sh.Probes() != 3 {
		t.Fatalf("Probes = %d, want 3", sh.Probes())
	}
	must(t, sh.SetProbes(0))
	if sh.Probes() != 0 {
		t.Fatal("SetProbes(0) must restore exact fan-out")
	}
}

// TestProbeSkipsEmptyPartitions: with more shards than distinct vectors,
// TrainIVF leaves duplicate centroids whose higher-indexed shards stay
// empty. Probe routing must spend its budget on populated partitions
// only — here every entry sits in one cluster, so probes=1 must still
// find the true neighbours instead of scanning an empty partition whose
// (duplicated) centroid ranks first by tie-break.
func TestProbeSkipsEmptyPartitions(t *testing.T) {
	const dim = 3
	sh := NewSharded(dim, 6, nil)
	flat := New(dim)
	// Two distinct vector values across 8 entries -> at most 2 populated
	// IVF partitions, 4+ empty ones.
	for i := 0; i < 8; i++ {
		v := []float64{1, 1, 1}
		if i%2 == 0 {
			v = []float64{9, 9, 9}
		}
		e := entry(fmt.Sprintf("INC-%d", i), "cat-0", v, 0)
		must(t, sh.Add(e))
		must(t, flat.Add(e))
	}
	if err := sh.TrainIVF(0); err != nil {
		t.Fatal(err)
	}
	populated := 0
	for _, l := range sh.ShardLens() {
		if l > 0 {
			populated++
		}
	}
	if populated > 2 {
		t.Fatalf("expected <= 2 populated partitions, got lens %v", sh.ShardLens())
	}
	must(t, sh.SetProbes(1))
	got, err := sh.TopK([]float64{9, 9, 9}, t0, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := flat.TopK([]float64{9, 9, 9}, t0, 4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// probes=1 against 2 populated partitions: the probed partition is the
	// {9,9,9} cluster, which contains the entire true top-4.
	sameScored(t, "probe-skips-empty", got, want)
}

// TestTimeAwareProbeRanking is the time-aware golden: on the seeded
// time-spread corpus (timestamps spanning the decay horizon, recency
// anti-correlated with proximity), distance-only probe ranking at
// probes=1 probes the stale-but-near partition and misses the true
// neighbours, while the default time-aware ranking recovers them. The
// same floor is enforced on every CI bench run by
// BenchmarkTopKProbesTimeSpread.
func TestTimeAwareProbeRanking(t *testing.T) {
	const n, dim, pairs, shards, k = 2000, 16, 3, 10, 5
	entries, queries, qt := timeSpreadCorpus(8, n, dim, pairs)

	flat := New(dim)
	sh := NewSharded(dim, shards, nil)
	for _, e := range entries {
		must(t, flat.Add(e))
		must(t, sh.Add(e))
	}
	if err := sh.TrainIVF(0); err != nil {
		t.Fatal(err)
	}
	must(t, sh.SetProbes(1))

	must(t, sh.SetProbeRanking(ProbeRankDistance))
	distOnly := recallAtK(t, flat, sh, queries, qt, k, 0.3)
	must(t, sh.SetProbeRanking(ProbeRankTimeAware))
	timeAware := recallAtK(t, flat, sh, queries, qt, k, 0.3)

	t.Logf("recall@%d at probes=1: distance-only %.4f, time-aware %.4f", k, distOnly, timeAware)
	if timeAware < 0.9 {
		t.Fatalf("time-aware recall@%d = %.4f, below the pinned 0.9 floor", k, timeAware)
	}
	if timeAware <= distOnly {
		t.Fatalf("time-aware ranking (%.4f) must beat distance-only (%.4f) on the time-spread corpus", timeAware, distOnly)
	}
	if distOnly > 0.5 {
		t.Fatalf("distance-only recall@%d = %.4f; the corpus no longer separates the rankings (want <= 0.5)", k, distOnly)
	}
}

// TestProbeModePrunes proves probe mode actually restricts the search
// (it is approximate, not exact-in-disguise): two well-separated clusters
// under IVF, probes=1, querying midway-but-nearer-to-A must return only
// cluster-A entries even though cluster B holds entries within k.
func TestProbeModePrunes(t *testing.T) {
	const dim = 2
	sh := NewSharded(dim, 2, nil)
	for i := 0; i < 4; i++ {
		must(t, sh.Add(entry(fmt.Sprintf("A-%d", i), "cat-a", []float64{0, float64(i) * 0.1}, 0)))
		must(t, sh.Add(entry(fmt.Sprintf("B-%d", i), "cat-b", []float64{10, float64(i) * 0.1}, 0)))
	}
	if err := sh.TrainIVF(0); err != nil {
		t.Fatal(err)
	}
	must(t, sh.SetProbes(1))
	got, err := sh.TopK([]float64{1, 0}, t0, 8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("probes=1 returned %d entries, want only the 4 in the probed partition", len(got))
	}
	for _, sc := range got {
		if sc.Entry.Category != "cat-a" {
			t.Fatalf("probed partition leaked entry %s", sc.Entry.ID)
		}
	}
	diverse, err := sh.TopKDiverse([]float64{1, 0}, t0, 8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(diverse) != 1 || diverse[0].Entry.Category != "cat-a" {
		t.Fatalf("TopKDiverse under probes=1 = %v, want the single cat-a representative", diverse)
	}
}
