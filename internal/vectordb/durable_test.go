package vectordb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/incident"
	"repro/internal/wal"
)

// durTestOpts keeps every durable test on the same deterministic footing:
// each append fsyncs (every frame is a crash boundary) and automatic
// compaction is off so the log alone carries the history.
func durTestOpts() DurableOptions {
	return DurableOptions{SyncEvery: 1, SyncInterval: time.Hour, CompactBytes: -1}
}

func durEntry(i int, ns string) Entry {
	rng := rand.New(rand.NewSource(int64(i) + 7919))
	v := make([]float64, 8)
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	return Entry{
		ID:        fmt.Sprintf("inc-%03d", i),
		Vector:    v,
		Category:  incident.Category(fmt.Sprintf("cat-%d", i%7)),
		Time:      time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Hour),
		Namespace: ns,
		Summary:   fmt.Sprintf("incident %d", i),
	}
}

func durQueries() [][]float64 {
	qs := make([][]float64, 3)
	for qi := range qs {
		rng := rand.New(rand.NewSource(int64(qi) + 104729))
		q := make([]float64, 8)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		qs[qi] = q
	}
	return qs
}

// requireMatchesOracle checks the recovered store against the flat oracle
// on every observable the issue's crash matrix names: Len, the exact ID
// set, per-namespace counts, and bit-identical TopK.
func requireMatchesOracle(t *testing.T, got Index, oracle *DB, ids []string, nsCounts map[string]int) {
	t.Helper()
	if got.Len() != oracle.Len() {
		t.Fatalf("Len = %d, oracle has %d", got.Len(), oracle.Len())
	}
	for _, id := range ids {
		ge, gok := got.Get(id)
		oe, ook := oracle.Get(id)
		if gok != ook {
			t.Fatalf("Get(%s) = %v, oracle %v", id, gok, ook)
		}
		if !gok {
			continue
		}
		if ge.Namespace != oe.Namespace || ge.Category != oe.Category || !ge.Time.Equal(oe.Time) {
			t.Fatalf("entry %s differs from oracle: %+v vs %+v", id, ge, oe)
		}
	}
	for ns, want := range nsCounts {
		view := got
		if ns != "" {
			view = got.Namespace(ns)
		}
		ovw := Index(oracle)
		if ns != "" {
			ovw = oracle.Namespace(ns)
		}
		if ovw.Len() != view.Len() {
			t.Fatalf("namespace %q Len = %d, oracle %d", ns, view.Len(), ovw.Len())
		}
		_ = want
	}
	qt := time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)
	for qi, q := range durQueries() {
		gr, gerr := got.TopK(q, qt, 5, 0.1)
		or, oerr := oracle.TopK(q, qt, 5, 0.1)
		if (gerr == nil) != (oerr == nil) {
			t.Fatalf("query %d: err %v vs oracle %v", qi, gerr, oerr)
		}
		if !reflect.DeepEqual(gr, or) {
			t.Fatalf("query %d: TopK diverges from oracle:\n got %v\nwant %v", qi, gr, or)
		}
	}
}

// TestDurableCrashMatrix is the issue's crash-injection matrix: a scripted
// 200-op sequence is journaled with per-record fsync, then for every frame
// boundary in the resulting log (and a torn-tail variant of each) a fresh
// store is opened from that prefix and must equal the flat oracle holding
// exactly the entries whose records the prefix contains — Len, ID set,
// per-namespace counts, bit-identical TopK. No crash point may lose a
// committed record or resurrect an uncommitted one.
func TestDurableCrashMatrix(t *testing.T) {
	dir := t.TempDir()
	factory := func() Index { return NewIndex(8, Options{Shards: 4}) }
	d, err := OpenDurable(dir, factory, durTestOpts())
	if err != nil {
		t.Fatal(err)
	}

	// 200 scripted ops: adds across three namespaces, one IVF retrain in
	// the middle so a walRecRetrain frame sits inside the matrix. Exact
	// serving throughout, so placement never affects results.
	namespaces := []string{"", "payments", "storage"}
	var seq []Entry
	for i := 0; i < 200; i++ {
		e := durEntry(i, namespaces[i%len(namespaces)])
		target := Index(d)
		if e.Namespace != "" {
			target = d.Namespace(e.Namespace)
			e.Namespace = "" // the view tags it; mirrors production call sites
		}
		if err := target.Add(e); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		seq = append(seq, durEntry(i, namespaces[i%len(namespaces)]))
		if i == 100 {
			s, ok := AsSharded(d)
			if !ok {
				t.Fatal("durable store did not unwrap to Sharded")
			}
			if err := s.TrainIVF(0); err != nil {
				t.Fatalf("op %d retrain: %v", i, err)
			}
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	logBytes, err := os.ReadFile(filepath.Join(dir, walLogName))
	if err != nil {
		t.Fatal(err)
	}
	ends := wal.FrameEnds(logBytes)
	if len(ends) < 201 { // 200 entries + at least the retrain record
		t.Fatalf("log has %d frames, want at least 201", len(ends))
	}

	allIDs := make([]string, len(seq))
	for i, e := range seq {
		allIDs[i] = e.ID
	}

	checkPrefix := func(t *testing.T, prefix []byte) {
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, walLogName), prefix, 0o644); err != nil {
			t.Fatal(err)
		}
		// The oracle is a flat store fed the entry records the prefix
		// actually commits, in log order.
		oracle := New(8)
		nsCounts := map[string]int{"": 0, "payments": 0, "storage": 0}
		_, _, rerr := wal.Replay(prefix, func(r wal.Record) error {
			if r.Type != walRecEntry {
				return nil
			}
			var e Entry
			if err := gobDecode(r.Payload, &e); err != nil {
				return err
			}
			nsCounts[e.Namespace]++
			return oracle.Add(e)
		})
		if rerr != nil && !errors.Is(rerr, wal.ErrTorn) {
			t.Fatalf("oracle replay: %v", rerr)
		}
		rec, err := OpenDurable(cdir, factory, durTestOpts())
		if err != nil {
			t.Fatalf("reopen after crash: %v", err)
		}
		defer rec.Close()
		requireMatchesOracle(t, rec, oracle, allIDs, nsCounts)
	}

	for i, end := range ends {
		prefix := logBytes[:end]
		t.Run(fmt.Sprintf("frame-%03d", i), func(t *testing.T) { checkPrefix(t, prefix) })
		// Torn variant: a few bytes of the next frame made it to disk.
		// Recovery must truncate back to this boundary.
		if int(end)+3 <= len(logBytes) {
			t.Run(fmt.Sprintf("frame-%03d-torn", i), func(t *testing.T) {
				checkPrefix(t, logBytes[:end+3])
			})
		}
	}
	// The boundary before any frame: header only.
	t.Run("header-only", func(t *testing.T) { checkPrefix(t, logBytes[:wal.HeaderLen]) })
}

func gobDecode(p []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(p)).Decode(v)
}

// TestDurableReopenFullState is the end-to-end recovery check: entries,
// a trained quantizer, and a moved probe budget all survive Close+reopen
// through the log alone (no compaction).
func TestDurableReopenFullState(t *testing.T) {
	dir := t.TempDir()
	factory := func() Index { return NewIndex(8, Options{Shards: 4}) }
	d, err := OpenDurable(dir, factory, durTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := d.Add(durEntry(i, "")); err != nil {
			t.Fatal(err)
		}
	}
	s, _ := AsSharded(d)
	if err := s.TrainIVF(0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetProbes(2); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil { // journals the final serving state
		t.Fatal(err)
	}

	rec, err := OpenDurable(dir, factory, durTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 60 {
		t.Fatalf("Len after reopen = %d, want 60", rec.Len())
	}
	rs, ok := AsSharded(rec)
	if !ok {
		t.Fatal("reopened store did not unwrap to Sharded")
	}
	if _, ok := rs.Partitioner().(*IVF); !ok {
		t.Fatalf("reopened partitioner is %T, want *IVF (retrain record not replayed)", rs.Partitioner())
	}
	if rs.Probes() != 2 {
		t.Fatalf("reopened probe budget = %d, want 2 (tuner-state record not replayed)", rs.Probes())
	}
	if got := rec.Stats().ReplayedRecords; got < 62 {
		t.Fatalf("ReplayedRecords = %d, want at least 62 (60 entries + retrain + tuner state)", got)
	}
}

// TestDurableCompactionRotates checks the checkpoint path: Compact writes
// the snapshot, rotates to a near-empty log, and a reopen restores the
// full contents from snapshot + fresh suffix without replaying the old
// history.
func TestDurableCompactionRotates(t *testing.T) {
	dir := t.TempDir()
	factory := func() Index { return NewIndex(8, Options{Shards: 4}) }
	d, err := OpenDurable(dir, factory, durTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := d.Add(durEntry(i, "payments")); err != nil {
			t.Fatal(err)
		}
	}
	before := d.Stats().LogBytes
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.LastCompaction.IsZero() {
		t.Fatal("LastCompaction still zero after Compact")
	}
	if st.LogBytes >= before {
		t.Fatalf("log not rotated: %d bytes before, %d after", before, st.LogBytes)
	}
	if _, err := os.Stat(filepath.Join(dir, walSnapName)); err != nil {
		t.Fatalf("snapshot missing after Compact: %v", err)
	}
	// Post-compaction adds land in the fresh log.
	for i := 50; i < 60; i++ {
		if err := d.Add(durEntry(i, "payments")); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenDurable(dir, factory, durTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 60 {
		t.Fatalf("Len after compacted reopen = %d, want 60", rec.Len())
	}
	if got := rec.Namespace("payments").Len(); got != 60 {
		t.Fatalf("namespace count after compacted reopen = %d, want 60", got)
	}
	if got := rec.Stats().ReplayedRecords; got < 10 || got >= 50 {
		t.Fatalf("ReplayedRecords = %d, want the post-compaction suffix only (10..49)", got)
	}
}

// TestDurableCrashBetweenSnapshotAndRotation covers the compaction crash
// window the design leans on idempotent replay for: the new snapshot is
// in place but the old log was never rotated, so every entry record in
// the log re-describes checkpointed state. Replay must skip them as
// duplicates, not double-add or fail.
func TestDurableCrashBetweenSnapshotAndRotation(t *testing.T) {
	dir := t.TempDir()
	factory := func() Index { return NewIndex(8, Options{Shards: 4}) }
	d, err := OpenDurable(dir, factory, durTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := d.Add(durEntry(i, "")); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the window by writing the snapshot by hand while leaving
	// the log untouched — exactly the on-disk state if the process died
	// after the rename and before wal.Create.
	var snap bytes.Buffer
	if err := d.Save(&snap); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walSnapName), snap.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenDurable(dir, factory, durTestOpts())
	if err != nil {
		t.Fatalf("reopen across the snapshot/rotation window: %v", err)
	}
	defer rec.Close()
	if rec.Len() != 30 {
		t.Fatalf("Len = %d, want 30 (duplicate replay must be skipped)", rec.Len())
	}
}

// TestDurableLoadNeverClobbers pins the staging-swap contract on the
// durable layer itself: a Load that fails validation leaves the serving
// store untouched and still durable, mirroring decodeSnapshot's
// never-clobber guarantee one layer up.
func TestDurableLoadNeverClobbers(t *testing.T) {
	dir := t.TempDir()
	factory := func() Index { return NewIndex(8, Options{Shards: 4}) }
	d, err := OpenDurable(dir, factory, durTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 20; i++ {
		if err := d.Add(durEntry(i, "storage")); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Load(bytes.NewReader([]byte("definitely not a snapshot"))); err == nil {
		t.Fatal("Load of garbage succeeded")
	}
	if d.Len() != 20 {
		t.Fatalf("Len after failed Load = %d, want 20 (store clobbered)", d.Len())
	}
	if _, ok := d.Get("inc-007"); !ok {
		t.Fatal("entry lost after failed Load")
	}

	// A good Load replaces the contents and immediately re-checkpoints,
	// so a reopen serves the loaded corpus, not the pre-Load history.
	other := NewIndex(8, Options{Shards: 4})
	for i := 100; i < 110; i++ {
		if err := other.Add(durEntry(i, "")); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := other.Save(&snap); err != nil {
		t.Fatal(err)
	}
	if err := d.Load(&snap); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 10 {
		t.Fatalf("Len after Load = %d, want 10", d.Len())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenDurable(dir, factory, durTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != 10 {
		t.Fatalf("Len after reopen = %d, want 10 (Load not checkpointed)", rec.Len())
	}
	if _, ok := rec.Get("inc-100"); !ok {
		t.Fatal("loaded entry missing after reopen")
	}
	if _, ok := rec.Get("inc-007"); ok {
		t.Fatal("pre-Load entry resurrected after reopen")
	}
}

// TestDurableRetrySidecar checks the opaque sidecar records the feedback
// loop rides on: appended payloads come back in order after a reopen, and
// compaction re-journals the installed snapshot into the rotated log.
func TestDurableRetrySidecar(t *testing.T) {
	dir := t.TempDir()
	factory := func() Index { return NewIndex(8, Options{Shards: 2}) }
	d, err := OpenDurable(dir, factory, durTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("t1"), []byte("t2"), []byte("t3")}
	for _, p := range payloads {
		if err := d.AppendRetry(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenDurable(dir, factory, durTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	got := rec.RetryRecords()
	if len(got) != 3 {
		t.Fatalf("replayed %d retry records, want 3", len(got))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("retry record %d = %q, want %q", i, got[i], payloads[i])
		}
	}
	// Compaction rotates the log; only the snapshotter's view survives.
	rec.SetRetrySnapshot(func() [][]byte { return [][]byte{[]byte("live-schedule")} })
	if err := rec.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := OpenDurable(dir, factory, durTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	got = again.RetryRecords()
	if len(got) != 1 || !bytes.Equal(got[0], []byte("live-schedule")) {
		t.Fatalf("retry records after compaction = %q, want the re-journaled schedule", got)
	}
}

// TestDurableFailsOpenOnForeignLog distinguishes crash damage (recovered
// from, by truncation) from a wrong or foreign log (refused): a record
// with an unknown type must fail the open, not be skipped.
func TestDurableFailsOpenOnForeignLog(t *testing.T) {
	dir := t.TempDir()
	factory := func() Index { return NewIndex(8, Options{Shards: 2}) }
	d, err := OpenDurable(dir, factory, durTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Add(durEntry(0, "")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Append an intact, checksummed frame of an unknown record type.
	f, err := os.OpenFile(filepath.Join(dir, walLogName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	w := wal.NewWriter(nopSync{f}, 0, wal.Options{SyncEvery: 1, SyncInterval: time.Hour})
	if err := w.Append(wal.Record{Type: 0xEE, Payload: []byte("mystery")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(dir, factory, durTestOpts()); err == nil {
		t.Fatal("open succeeded over a log with an unknown record type")
	}
}

// nopSync adapts an *os.File whose offset bookkeeping the test manages
// itself into a wal.File (Sync is still real).
type nopSync struct{ f *os.File }

func (n nopSync) Write(p []byte) (int, error) { return n.f.Write(p) }
func (n nopSync) Sync() error                 { return n.f.Sync() }
func (n nopSync) Close() error                { return n.f.Close() }

// TestWALConcurrentAppendHammer races concurrent adds (root and
// namespace views), lock-free queries, explicit compactions, and the
// group-commit goroutine against each other, then reopens once and
// checks nothing committed was lost. Runs under -race in CI's fast-fail
// list.
func TestWALConcurrentAppendHammer(t *testing.T) {
	dir := t.TempDir()
	factory := func() Index { return NewIndex(8, Options{Shards: 4}) }
	d, err := OpenDurable(dir, factory, DurableOptions{
		SyncEvery:    8,
		SyncInterval: time.Millisecond,
		CompactBytes: -1, // compaction is driven explicitly below
	})
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const perWriter = 50
	var wg sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e := durEntry(wtr*perWriter+i, "")
				var err error
				if wtr%2 == 0 {
					err = d.Namespace("hammer").Add(e)
				} else {
					err = d.Add(e)
				}
				if err != nil {
					t.Errorf("writer %d add %d: %v", wtr, i, err)
					return
				}
			}
		}(wtr)
	}
	wg.Add(1)
	go func() { // queries race the adds and compactions, lock-free
		defer wg.Done()
		q := durQueries()[0]
		qt := time.Date(2024, 4, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; i < 200; i++ {
			if _, err := d.TopK(q, qt, 3, 0.1); err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // compactions race the appends
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := d.Compact(); err != nil {
				t.Errorf("compact %d: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenDurable(dir, factory, durTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Len() != writers*perWriter {
		t.Fatalf("Len after hammer reopen = %d, want %d", rec.Len(), writers*perWriter)
	}
	if got := rec.Namespace("hammer").Len(); got != 2*perWriter {
		t.Fatalf("hammer namespace Len = %d, want %d", got, 2*perWriter)
	}
}
