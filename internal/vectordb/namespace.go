package vectordb

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/incident"
)

// nsState is one non-default namespace's serving state over the shared
// shard geometry: its entry count, its own probe budget and quantized
// overfetch factor, and — when adaptive serving is enabled — its own
// recall-SLO controller. The default namespace ("") never gets an
// nsState: its serving state IS the root store's own fields, which is
// what keeps single-tenant behavior bit-identical to the pre-namespace
// store.
type nsState struct {
	ns    string
	count atomic.Int64
	// probes is the namespace's own probe budget (0 = exact fan-out —
	// namespaces do NOT inherit the root budget, so a fresh tenant serves
	// exact until tuned, the conservative default).
	probes atomic.Int64
	// overfetch is the namespace's quantized candidate factor; 0 inherits
	// the root store's.
	overfetch atomic.Int64
	qScans    atomic.Int64
	// tuner is the namespace's adaptive controller, nil until adaptive
	// serving is enabled on the store.
	tuner atomic.Pointer[Tuner]
	// saved carries this namespace's restored serving-state trailer until
	// a controller exists to absorb it (Load before EnableAdaptive).
	saved atomic.Pointer[tunerState]
}

// nsStateFor returns the namespace's serving state, creating it (and,
// when adaptive serving is on, its controller) on first touch. The
// default namespace has no nsState — callers receive nil and use the
// root store's fields.
func (s *Sharded) nsStateFor(ns string) *nsState {
	if ns == "" {
		return nil
	}
	if v, ok := s.nss.Load(ns); ok {
		return v.(*nsState)
	}
	st := &nsState{ns: ns}
	v, loaded := s.nss.LoadOrStore(ns, st)
	st = v.(*nsState)
	if !loaded {
		s.ensureNSTuner(st)
	}
	return st
}

// scopeNS resolves a query scope to the namespace state governing its
// serving knobs: nil for unscoped queries and the default namespace
// (both use the root store's probes/overfetch/tuner).
func (s *Sharded) scopeNS(sc scope) *nsState {
	if !sc.on || sc.ns == "" {
		return nil
	}
	return s.nsStateFor(sc.ns)
}

// probesFor returns the effective probe budget for a resolved scope.
func (s *Sharded) probesFor(st *nsState) int {
	if st == nil {
		return int(s.probes.Load())
	}
	return int(st.probes.Load())
}

// overfetchFor returns the effective quantized overfetch factor for a
// resolved scope; a namespace that never escalated inherits the root's.
func (s *Sharded) overfetchFor(st *nsState) int {
	if st != nil {
		if v := int(st.overfetch.Load()); v > 0 {
			return v
		}
	}
	return s.Overfetch()
}

// tunerFor returns the adaptive controller observing a resolved scope's
// queries, or nil.
func (s *Sharded) tunerFor(st *nsState) *Tuner {
	if st == nil {
		return s.tuner.Load()
	}
	return st.tuner.Load()
}

// noteQuantScan accounts one quantized two-stage serve against the store
// total and, for namespace-scoped queries, the namespace's own counter.
func (s *Sharded) noteQuantScan(st *nsState) {
	s.qScans.Add(1)
	if st != nil {
		st.qScans.Add(1)
	}
}

// ensureNSTuner installs the namespace's adaptive controller if adaptive
// serving is enabled on the store, consuming any serving state a Load
// stashed for the namespace. Idempotent per nsState creation; called on
// first namespace touch and again from EnableAdaptive for namespaces
// that already exist.
func (s *Sharded) ensureNSTuner(st *nsState) {
	cfgp := s.adaptiveCfg.Load()
	if cfgp == nil {
		return
	}
	cfg := *cfgp
	t := &Tuner{s: s, cfg: cfg, ns: st}
	if saved := st.saved.Swap(nil); saved != nil {
		t.restore(*saved)
	}
	if cfg.RecallTarget > 0 && st.probes.Load() == 0 {
		// Same cold-start seed as the root controller: cheapest budget,
		// grown by shadow evidence. Probe mode still requires IVF routing.
		st.probes.Store(1)
	}
	st.tuner.Store(t)
}

// SetNamespaceProbes pins one namespace's probe budget — the per-tenant
// form of SetProbes, with the same contract: 0 restores exact fan-out,
// negatives are rejected, and when the namespace has an adaptive
// controller the pin pauses it. ns = "" addresses the default namespace,
// i.e. the root store's budget.
func (s *Sharded) SetNamespaceProbes(ns string, p int) error {
	if ns == "" {
		return s.SetProbes(p)
	}
	if p < 0 {
		return fmt.Errorf("vectordb: negative probe count %d for namespace %q (use 0 for exact fan-out)", p, ns)
	}
	st := s.nsStateFor(ns)
	if t := st.tuner.Load(); t != nil {
		t.pinProbes(p)
		return nil
	}
	st.probes.Store(int64(p))
	return nil
}

// NamespaceProbes returns one namespace's effective probe budget (the
// root store's for ns = "").
func (s *Sharded) NamespaceProbes(ns string) int {
	if ns == "" {
		return s.Probes()
	}
	if v, ok := s.nss.Load(ns); ok {
		return int(v.(*nsState).probes.Load())
	}
	return 0
}

// NamespaceStats is one namespace's serving snapshot — the per-tenant
// metrics row the daemon exports.
type NamespaceStats struct {
	// Namespace is the tenant tag; "" is the default namespace (whose
	// serving state is the root store's own).
	Namespace string
	// Entries is how many stored entries carry the tag.
	Entries int
	// Probes and Overfetch are the namespace's effective serving budget.
	Probes    int
	Overfetch int
	// ObservedRecall / RecallSamples / Shadows / Retrains mirror the
	// namespace controller's aggregates; zero without adaptive serving.
	ObservedRecall float64
	RecallSamples  int
	Shadows        int
	Retrains       int
	// QuantScans counts quantized two-stage serves of the namespace's
	// queries (for the default row: the store-wide total).
	QuantScans int
}

// NamespaceStats returns every namespace's serving snapshot, default
// namespace first, the rest sorted by name.
func (s *Sharded) NamespaceStats() []NamespaceStats {
	def := NamespaceStats{
		Entries:    int(s.defCount.Load()),
		Probes:     s.Probes(),
		Overfetch:  s.Overfetch(),
		QuantScans: s.QuantizedScans(),
	}
	if t := s.tuner.Load(); t != nil {
		def.ObservedRecall, def.RecallSamples = t.ObservedRecall()
		def.Shadows, def.Retrains = t.Shadows(), t.Retrains()
	}
	out := []NamespaceStats{def}
	s.nss.Range(func(_, v any) bool {
		st := v.(*nsState)
		row := NamespaceStats{
			Namespace:  st.ns,
			Entries:    int(st.count.Load()),
			Probes:     int(st.probes.Load()),
			Overfetch:  s.overfetchFor(st),
			QuantScans: int(st.qScans.Load()),
		}
		if t := st.tuner.Load(); t != nil {
			row.ObservedRecall, row.RecallSamples = t.ObservedRecall()
			row.Shadows, row.Retrains = t.Shadows(), t.Retrains()
		}
		out = append(out, row)
		return true
	})
	sort.Slice(out[1:], func(i, j int) bool { return out[1+i].Namespace < out[1+j].Namespace })
	return out
}

// Namespace returns a view of the sharded store scoped to ns; see the
// package comment's namespace contract. The view shares the shard pool,
// worker budget, and locks with the root store; ns != "" additionally
// gets its own serving state (probe budget, overfetch, controller) on
// first touch.
func (s *Sharded) Namespace(ns string) Index {
	if ns != "" {
		s.nsStateFor(ns)
	}
	return shardedView{s: s, ns: ns}
}

// shardedView is the sharded store's namespace view: a lens that tags on
// Add and scopes every scan. Save/Load pass through to the whole store.
type shardedView struct {
	s  *Sharded
	ns string
}

var _ Index = shardedView{}

func (v shardedView) scope() scope { return scope{on: true, ns: v.ns} }

func (v shardedView) Dim() int { return v.s.dim }

func (v shardedView) Len() int {
	if v.ns == "" {
		return int(v.s.defCount.Load())
	}
	if st, ok := v.s.nss.Load(v.ns); ok {
		return int(st.(*nsState).count.Load())
	}
	return 0
}

func (v shardedView) Add(e Entry) error {
	e.Namespace = v.ns
	return v.s.Add(e)
}

func (v shardedView) Get(id string) (Entry, bool) {
	e, ok := v.s.Get(id)
	if !ok || e.Namespace != v.ns {
		return Entry{}, false
	}
	return e, true
}

func (v shardedView) Categories() []incident.Category {
	return sortedCategories(v.CountByCategory())
}

func (v shardedView) CountByCategory() map[incident.Category]int {
	return v.s.countByCategoryScoped(v.scope())
}

func (v shardedView) TopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return v.s.topK(query, qt, k, alpha, false, v.scope())
}

func (v shardedView) TopKDiverse(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return v.s.topKDiverse(query, qt, k, alpha, false, v.scope())
}

func (v shardedView) TopKBatch(queries []BatchQuery) ([][]Scored, error) {
	return v.s.TopKBatch(scopedQueries(queries, v.ns))
}

// Save writes the WHOLE store, not just the view's namespace — a view is
// a lens, not a partition. Load likewise replaces the whole store.
func (v shardedView) Save(w io.Writer) error { return v.s.Save(w) }

// Load replaces the whole underlying store; see Save.
func (v shardedView) Load(r io.Reader) error { return v.s.Load(r) }

func (v shardedView) Namespace(ns string) Index { return v.s.Namespace(ns) }
