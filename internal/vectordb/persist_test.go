package vectordb

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New(3)
	must(t, db.Add(entry("a", "X", []float64{1, 0, 0}, 1)))
	must(t, db.Add(entry("b", "Y", []float64{0, 1, 0}, 5)))
	must(t, db.Add(entry("c", "X", []float64{0, 0, 1}, 9)))

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := New(3)
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 3 {
		t.Fatalf("loaded len = %d", db2.Len())
	}
	got, ok := db2.Get("b")
	if !ok || got.Category != "Y" || got.Vector[1] != 1 {
		t.Fatalf("loaded entry = %+v/%v", got, ok)
	}
	// Queries work identically after reload.
	hits, err := db2.TopKDiverse([]float64{1, 0, 0}, t0, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if hits[0].Entry.ID != "a" {
		t.Fatalf("post-load retrieval broken: %+v", hits)
	}
	// Loaded store still rejects duplicates against loaded IDs.
	if err := db2.Add(entry("a", "Z", []float64{1, 1, 1}, 0)); err == nil {
		t.Fatal("duplicate ID after load should fail")
	}
}

func TestLoadRejectsDimMismatch(t *testing.T) {
	db := New(2)
	must(t, db.Add(entry("a", "X", []float64{1, 0}, 1)))
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := New(5)
	if err := other.Load(&buf); err == nil {
		t.Fatal("dim mismatch should fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	db := New(2)
	if err := db.Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestCountByCategory(t *testing.T) {
	db := New(1)
	must(t, db.Add(entry("a", "X", []float64{1}, 0)))
	must(t, db.Add(entry("b", "X", []float64{2}, 0)))
	must(t, db.Add(entry("c", "Y", []float64{3}, 0)))
	counts := db.CountByCategory()
	if counts["X"] != 2 || counts["Y"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}
