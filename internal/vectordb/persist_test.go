package vectordb

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New(3)
	must(t, db.Add(entry("a", "X", []float64{1, 0, 0}, 1)))
	must(t, db.Add(entry("b", "Y", []float64{0, 1, 0}, 5)))
	must(t, db.Add(entry("c", "X", []float64{0, 0, 1}, 9)))

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := New(3)
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 3 {
		t.Fatalf("loaded len = %d", db2.Len())
	}
	got, ok := db2.Get("b")
	if !ok || got.Category != "Y" || got.Vector[1] != 1 {
		t.Fatalf("loaded entry = %+v/%v", got, ok)
	}
	// Queries work identically after reload.
	hits, err := db2.TopKDiverse([]float64{1, 0, 0}, t0, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if hits[0].Entry.ID != "a" {
		t.Fatalf("post-load retrieval broken: %+v", hits)
	}
	// Loaded store still rejects duplicates against loaded IDs.
	if err := db2.Add(entry("a", "Z", []float64{1, 1, 1}, 0)); err == nil {
		t.Fatal("duplicate ID after load should fail")
	}
}

func TestLoadRejectsDimMismatch(t *testing.T) {
	db := New(2)
	must(t, db.Add(entry("a", "X", []float64{1, 0}, 1)))
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	for _, idx := range []Index{New(5), NewSharded(5, 4, nil)} {
		err := idx.Load(bytes.NewReader(snap))
		if err == nil {
			t.Fatal("dim mismatch should fail")
		}
		// The error must name both dimensionalities, not just reject.
		if !strings.Contains(err.Error(), "2") || !strings.Contains(err.Error(), "5") {
			t.Fatalf("undiagnostic dim-mismatch error: %v", err)
		}
	}
}

// TestLoadRejectsCorruptEntriesWithoutClobbering covers snapshots whose
// declared dim matches the store but whose entries are malformed: the load
// must fail descriptively and leave the previous store contents intact
// rather than silently corrupting them.
func TestLoadRejectsCorruptEntriesWithoutClobbering(t *testing.T) {
	corrupt := []struct {
		name string
		snap snapshot
		want string
	}{
		{"entry-dim", snapshot{Dim: 2, Entries: []Entry{
			{ID: "bad", Vector: []float64{1, 2, 3}, Category: "X", Time: t0},
		}}, "dim 3"},
		{"empty-id", snapshot{Dim: 2, Entries: []Entry{
			{ID: "", Vector: []float64{1, 2}, Category: "X", Time: t0},
		}}, "empty ID"},
		{"duplicate-id", snapshot{Dim: 2, Entries: []Entry{
			{ID: "dup", Vector: []float64{1, 2}, Category: "X", Time: t0},
			{ID: "dup", Vector: []float64{3, 4}, Category: "Y", Time: t0},
		}}, "duplicate"},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(tc.snap); err != nil {
				t.Fatal(err)
			}
			snap := buf.Bytes()
			for _, idx := range []Index{New(2), NewSharded(2, 3, nil)} {
				must(t, idx.Add(entry("keep", "K", []float64{7, 7}, 2)))
				err := idx.Load(bytes.NewReader(snap))
				if err == nil {
					t.Fatalf("%T: corrupt snapshot should fail", idx)
				}
				if !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("%T: error %q does not mention %q", idx, err, tc.want)
				}
				if idx.Len() != 1 {
					t.Fatalf("%T: failed load clobbered the store (len %d)", idx, idx.Len())
				}
				if _, ok := idx.Get("keep"); !ok {
					t.Fatalf("%T: failed load dropped existing entry", idx)
				}
			}
		})
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	db := New(2)
	if err := db.Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage should fail")
	}
	sh := NewSharded(2, 3, nil)
	if err := sh.Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage should fail")
	}
}

// TestFlatShardedRoundTrip drives a snapshot flat → sharded → flat and
// requires the final store to behave identically to the original: the two
// implementations share one wire format.
func TestFlatShardedRoundTrip(t *testing.T) {
	const seed, n, dim, numCats = 21, 150, 5, 9
	orig := New(dim)
	fillIndex(t, orig, seed, n, dim, numCats)

	var flatSnap bytes.Buffer
	if err := orig.Save(&flatSnap); err != nil {
		t.Fatal(err)
	}
	sh := NewSharded(dim, 7, nil)
	if err := sh.Load(&flatSnap); err != nil {
		t.Fatal(err)
	}
	if sh.Len() != n {
		t.Fatalf("sharded loaded %d entries, want %d", sh.Len(), n)
	}
	queryGrid(t, "flat->sharded", orig, sh, seed, n, dim)

	var shardSnap bytes.Buffer
	if err := sh.Save(&shardSnap); err != nil {
		t.Fatal(err)
	}
	back := New(dim)
	if err := back.Load(&shardSnap); err != nil {
		t.Fatal(err)
	}
	if back.Len() != n {
		t.Fatalf("flat reloaded %d entries, want %d", back.Len(), n)
	}
	for _, e := range orig.scoreAllSorted(make([]float64, dim), t0, 0) {
		got, ok := back.Get(e.Entry.ID)
		if !ok {
			t.Fatalf("entry %s lost in round trip", e.Entry.ID)
		}
		if got.Category != e.Entry.Category || !got.Time.Equal(e.Entry.Time) || got.Summary != e.Entry.Summary {
			t.Fatalf("entry %s mutated in round trip: %+v vs %+v", e.Entry.ID, got, e.Entry)
		}
	}
	queryGrid(t, "sharded->flat", orig, back, seed+1, n, dim)
	// Loaded stores still reject duplicates against loaded IDs.
	if err := back.Add(entry("INC-000000", "Z", make([]float64, dim), 0)); err == nil {
		t.Fatal("duplicate ID after round trip should fail")
	}
	if err := sh.Add(entry("INC-000000", "Z", make([]float64, dim), 0)); err == nil {
		t.Fatal("duplicate ID after sharded load should fail")
	}
}

func TestCountByCategory(t *testing.T) {
	db := New(1)
	must(t, db.Add(entry("a", "X", []float64{1}, 0)))
	must(t, db.Add(entry("b", "X", []float64{2}, 0)))
	must(t, db.Add(entry("c", "Y", []float64{3}, 0)))
	counts := db.CountByCategory()
	if counts["X"] != 2 || counts["Y"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}
