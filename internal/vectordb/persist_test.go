package vectordb

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
	"time"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New(3)
	must(t, db.Add(entry("a", "X", []float64{1, 0, 0}, 1)))
	must(t, db.Add(entry("b", "Y", []float64{0, 1, 0}, 5)))
	must(t, db.Add(entry("c", "X", []float64{0, 0, 1}, 9)))

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := New(3)
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 3 {
		t.Fatalf("loaded len = %d", db2.Len())
	}
	got, ok := db2.Get("b")
	if !ok || got.Category != "Y" || got.Vector[1] != 1 {
		t.Fatalf("loaded entry = %+v/%v", got, ok)
	}
	// Queries work identically after reload.
	hits, err := db2.TopKDiverse([]float64{1, 0, 0}, t0, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if hits[0].Entry.ID != "a" {
		t.Fatalf("post-load retrieval broken: %+v", hits)
	}
	// Loaded store still rejects duplicates against loaded IDs.
	if err := db2.Add(entry("a", "Z", []float64{1, 1, 1}, 0)); err == nil {
		t.Fatal("duplicate ID after load should fail")
	}
}

func TestLoadRejectsDimMismatch(t *testing.T) {
	db := New(2)
	must(t, db.Add(entry("a", "X", []float64{1, 0}, 1)))
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	for _, idx := range []Index{New(5), NewSharded(5, 4, nil)} {
		err := idx.Load(bytes.NewReader(snap))
		if err == nil {
			t.Fatal("dim mismatch should fail")
		}
		// The error must name both dimensionalities, not just reject.
		if !strings.Contains(err.Error(), "2") || !strings.Contains(err.Error(), "5") {
			t.Fatalf("undiagnostic dim-mismatch error: %v", err)
		}
	}
}

// TestLoadRejectsCorruptEntriesWithoutClobbering covers snapshots whose
// declared dim matches the store but whose entries are malformed: the load
// must fail descriptively and leave the previous store contents intact
// rather than silently corrupting them.
func TestLoadRejectsCorruptEntriesWithoutClobbering(t *testing.T) {
	corrupt := []struct {
		name string
		snap snapshot
		want string
	}{
		{"entry-dim", snapshot{Dim: 2, Entries: []Entry{
			{ID: "bad", Vector: []float64{1, 2, 3}, Category: "X", Time: t0},
		}}, "dim 3"},
		{"empty-id", snapshot{Dim: 2, Entries: []Entry{
			{ID: "", Vector: []float64{1, 2}, Category: "X", Time: t0},
		}}, "empty ID"},
		{"duplicate-id", snapshot{Dim: 2, Entries: []Entry{
			{ID: "dup", Vector: []float64{1, 2}, Category: "X", Time: t0},
			{ID: "dup", Vector: []float64{3, 4}, Category: "Y", Time: t0},
		}}, "duplicate"},
	}
	for _, tc := range corrupt {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(tc.snap); err != nil {
				t.Fatal(err)
			}
			snap := buf.Bytes()
			for _, idx := range []Index{New(2), NewSharded(2, 3, nil)} {
				must(t, idx.Add(entry("keep", "K", []float64{7, 7}, 2)))
				err := idx.Load(bytes.NewReader(snap))
				if err == nil {
					t.Fatalf("%T: corrupt snapshot should fail", idx)
				}
				if !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("%T: error %q does not mention %q", idx, err, tc.want)
				}
				if idx.Len() != 1 {
					t.Fatalf("%T: failed load clobbered the store (len %d)", idx, idx.Len())
				}
				if _, ok := idx.Get("keep"); !ok {
					t.Fatalf("%T: failed load dropped existing entry", idx)
				}
			}
		})
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	db := New(2)
	if err := db.Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage should fail")
	}
	sh := NewSharded(2, 3, nil)
	if err := sh.Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage should fail")
	}
}

// TestFlatShardedRoundTrip drives a snapshot flat → sharded → flat and
// requires the final store to behave identically to the original: the two
// implementations share one wire format.
func TestFlatShardedRoundTrip(t *testing.T) {
	const seed, n, dim, numCats = 21, 150, 5, 9
	orig := New(dim)
	fillIndex(t, orig, seed, n, dim, numCats)

	var flatSnap bytes.Buffer
	if err := orig.Save(&flatSnap); err != nil {
		t.Fatal(err)
	}
	sh := NewSharded(dim, 7, nil)
	if err := sh.Load(&flatSnap); err != nil {
		t.Fatal(err)
	}
	if sh.Len() != n {
		t.Fatalf("sharded loaded %d entries, want %d", sh.Len(), n)
	}
	queryGrid(t, "flat->sharded", orig, sh, seed, n, dim)

	var shardSnap bytes.Buffer
	if err := sh.Save(&shardSnap); err != nil {
		t.Fatal(err)
	}
	back := New(dim)
	if err := back.Load(&shardSnap); err != nil {
		t.Fatal(err)
	}
	if back.Len() != n {
		t.Fatalf("flat reloaded %d entries, want %d", back.Len(), n)
	}
	for _, e := range orig.scoreAllSorted(make([]float64, dim), t0, 0) {
		got, ok := back.Get(e.Entry.ID)
		if !ok {
			t.Fatalf("entry %s lost in round trip", e.Entry.ID)
		}
		if got.Category != e.Entry.Category || !got.Time.Equal(e.Entry.Time) || got.Summary != e.Entry.Summary {
			t.Fatalf("entry %s mutated in round trip: %+v vs %+v", e.Entry.ID, got, e.Entry)
		}
	}
	queryGrid(t, "sharded->flat", orig, back, seed+1, n, dim)
	// Loaded stores still reject duplicates against loaded IDs.
	if err := back.Add(entry("INC-000000", "Z", make([]float64, dim), 0)); err == nil {
		t.Fatal("duplicate ID after round trip should fail")
	}
	if err := sh.Add(entry("INC-000000", "Z", make([]float64, dim), 0)); err == nil {
		t.Fatal("duplicate ID after sharded load should fail")
	}
}

func TestCountByCategory(t *testing.T) {
	db := New(1)
	must(t, db.Add(entry("a", "X", []float64{1}, 0)))
	must(t, db.Add(entry("b", "X", []float64{2}, 0)))
	must(t, db.Add(entry("c", "Y", []float64{3}, 0)))
	counts := db.CountByCategory()
	if counts["X"] != 2 || counts["Y"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

// TestServingStateRoundTrip covers the serving-state trailer Sharded.Save
// appends: the converged probe budget and the tuner's hysteresis floor,
// retrain clock, and lifetime recall aggregate must survive a redeploy —
// whether the controller is installed before or after the Load.
func TestServingStateRoundTrip(t *testing.T) {
	const dim, shards = 4, 5

	build := func() *Sharded {
		sh := NewSharded(dim, shards, nil)
		fillIndex(t, sh, 31, 80, dim, 4)
		must(t, sh.TrainIVF(0))
		return sh
	}

	t.Run("probes-only", func(t *testing.T) {
		src := build()
		must(t, src.SetProbes(3))
		var buf bytes.Buffer
		if err := src.Save(&buf); err != nil {
			t.Fatal(err)
		}
		dst := NewSharded(dim, shards, nil)
		if err := dst.Load(&buf); err != nil {
			t.Fatal(err)
		}
		if dst.Probes() != 3 {
			t.Fatalf("probe budget after load = %d, want 3", dst.Probes())
		}
	})

	retrainAt := time.Date(2022, 5, 20, 10, 0, 0, 0, time.UTC)
	saveConverged := func(t *testing.T) []byte {
		src := build()
		tn, err := src.EnableAdaptive(AutoConfig{RecallTarget: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		// Stand in for a converged controller: budget 4, budget 2 recently
		// observed missing the SLO, a retrain on the clock, 7 recall samples.
		tn.mu.Lock()
		tn.lastBad = 2
		tn.lastRetrain = retrainAt
		tn.recallSum, tn.recallN = 6.3, 7
		tn.mu.Unlock()
		tn.pinProbes(4)
		var buf bytes.Buffer
		if err := src.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	checkRestored := func(t *testing.T, dst *Sharded, tn *Tuner) {
		t.Helper()
		if dst.Probes() != 4 {
			t.Fatalf("probe budget after load = %d, want 4", dst.Probes())
		}
		tn.mu.Lock()
		lastBad, lastRetrain := tn.lastBad, tn.lastRetrain
		tn.mu.Unlock()
		if lastBad != 2 {
			t.Fatalf("hysteresis floor after load = %d, want 2", lastBad)
		}
		if !lastRetrain.Equal(retrainAt) {
			t.Fatalf("retrain clock after load = %v, want %v", lastRetrain, retrainAt)
		}
		mean, samples := tn.ObservedRecall()
		if samples != 7 || mean != 6.3/7 {
			t.Fatalf("recall aggregate after load = (%v, %d), want (%v, 7)", mean, samples, 6.3/7)
		}
	}

	t.Run("into-installed-tuner", func(t *testing.T) {
		snap := saveConverged(t)
		dst := NewSharded(dim, shards, nil)
		tn, err := dst.EnableAdaptive(AutoConfig{RecallTarget: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Load(bytes.NewReader(snap)); err != nil {
			t.Fatal(err)
		}
		checkRestored(t, dst, tn)
	})

	t.Run("load-then-enable", func(t *testing.T) {
		snap := saveConverged(t)
		dst := NewSharded(dim, shards, nil)
		if err := dst.Load(bytes.NewReader(snap)); err != nil {
			t.Fatal(err)
		}
		if dst.Probes() != 4 {
			t.Fatalf("probe budget after load = %d, want 4", dst.Probes())
		}
		// EnableAdaptive must consume the stashed state — and must NOT
		// re-seed the budget to 1 just because a recall target is set: the
		// loaded budget is the converged one.
		tn, err := dst.EnableAdaptive(AutoConfig{RecallTarget: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		checkRestored(t, dst, tn)
		// The stash is consumed exactly once: a replacement controller
		// starts fresh rather than resurrecting stale state.
		dst.DisableAdaptive()
		must(t, dst.SetProbes(0))
		tn2, err := dst.EnableAdaptive(AutoConfig{RecallTarget: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		if _, samples := tn2.ObservedRecall(); samples != 0 {
			t.Fatalf("replacement controller inherited %d stale recall samples", samples)
		}
	})
}

// TestLoadRejectsCorruptTrailerWithoutClobbering appends malformed
// serving-state trailers to a valid snapshot: Sharded.Load must reject the
// file before touching store state, and a flat DB — which never reads past
// the snapshot — must keep loading it.
func TestLoadRejectsCorruptTrailerWithoutClobbering(t *testing.T) {
	encode := func(st *tunerState) []byte {
		// One encoder for snapshot plus trailer, exactly as Sharded.Save
		// writes the stream (gob type definitions are sent once per stream).
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		if err := enc.Encode(snapshot{Dim: 2, Entries: []Entry{
			{ID: "a", Vector: []float64{1, 2}, Category: "X", Time: t0},
		}}); err != nil {
			t.Fatal(err)
		}
		if st != nil {
			if err := enc.Encode(*st); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	snap := encode(nil)
	trailer := func(st tunerState) []byte { return encode(&st) }
	cases := []struct {
		name string
		file []byte
		want string
	}{
		{"garbage-trailer", append(append([]byte(nil), snap...), "not a gob trailer"...), "trailer"},
		{"version-zero", trailer(tunerState{Version: 0, Probes: 1}), "version"},
		{"negative-probes", trailer(tunerState{Version: 1, Probes: -3}), "negative probe budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sh := NewSharded(2, 3, nil)
			must(t, sh.Add(entry("keep", "K", []float64{7, 7}, 2)))
			err := sh.Load(bytes.NewReader(tc.file))
			if err == nil {
				t.Fatal("corrupt trailer should fail")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if sh.Len() != 1 {
				t.Fatalf("failed load clobbered the store (len %d)", sh.Len())
			}
			if _, ok := sh.Get("keep"); !ok {
				t.Fatal("failed load dropped existing entry")
			}
			// The flat DB stops reading at the snapshot, so the same bytes
			// stay loadable there: trailer corruption cannot strand a file.
			db := New(2)
			if err := db.Load(bytes.NewReader(tc.file)); err != nil {
				t.Fatalf("flat load of trailing-garbage file: %v", err)
			}
			if db.Len() != 1 {
				t.Fatalf("flat load got %d entries", db.Len())
			}
		})
	}
}
