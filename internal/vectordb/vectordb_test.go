package vectordb

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/incident"
)

var t0 = time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)

func entry(id string, cat incident.Category, v []float64, daysAgo int) Entry {
	return Entry{ID: id, Category: cat, Vector: v, Time: t0.AddDate(0, 0, -daysAgo), Summary: "s-" + id}
}

func TestAddAndGet(t *testing.T) {
	db := New(3)
	if err := db.Add(entry("a", "X", []float64{1, 0, 0}, 1)); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 || db.Dim() != 3 {
		t.Fatalf("Len=%d Dim=%d", db.Len(), db.Dim())
	}
	got, ok := db.Get("a")
	if !ok || got.Category != "X" {
		t.Fatalf("Get = %+v/%v", got, ok)
	}
	if _, ok := db.Get("missing"); ok {
		t.Fatal("Get on missing ID should miss")
	}
}

func TestAddValidation(t *testing.T) {
	db := New(3)
	if err := db.Add(entry("a", "X", []float64{1, 0}, 1)); err == nil {
		t.Fatal("dim mismatch should fail")
	}
	if err := db.Add(Entry{ID: "", Vector: []float64{1, 0, 0}}); err == nil {
		t.Fatal("empty ID should fail")
	}
	if err := db.Add(entry("a", "X", []float64{1, 0, 0}, 1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(entry("a", "Y", []float64{0, 1, 0}, 1)); err == nil {
		t.Fatal("duplicate ID should fail")
	}
}

func TestVectorIsolation(t *testing.T) {
	db := New(2)
	v := []float64{1, 2}
	if err := db.Add(Entry{ID: "a", Category: "X", Vector: v, Time: t0}); err != nil {
		t.Fatal(err)
	}
	v[0] = 99
	got, _ := db.Get("a")
	if got.Vector[0] != 1 {
		t.Fatal("Add must copy the vector")
	}
}

func TestSimilarityFormula(t *testing.T) {
	e := entry("a", "X", []float64{0, 0}, 0)
	e.Time = t0
	// Same vector, same day: sim = 1/(1+0) * e^0 = 1.
	if _, sim := Similarity([]float64{0, 0}, t0, e, 0.3); math.Abs(sim-1) > 1e-12 {
		t.Fatalf("identical same-day similarity = %f, want 1", sim)
	}
	// Distance 1, 2 days apart, alpha 0.3: 1/2 * e^-0.6.
	e2 := Entry{ID: "b", Vector: []float64{1, 0}, Time: t0.AddDate(0, 0, -2)}
	dist, sim := Similarity([]float64{0, 0}, t0, e2, 0.3)
	if math.Abs(dist-1) > 1e-12 {
		t.Fatalf("distance = %f, want 1", dist)
	}
	want := 0.5 * math.Exp(-0.6)
	if math.Abs(sim-want) > 1e-12 {
		t.Fatalf("similarity = %f, want %f", sim, want)
	}
}

func TestTopKDiverseOneEntryPerCategory(t *testing.T) {
	db := New(2)
	// Three entries of category X at increasing distance, one Y far away.
	must(t, db.Add(entry("x1", "X", []float64{0.1, 0}, 0)))
	must(t, db.Add(entry("x2", "X", []float64{0.2, 0}, 0)))
	must(t, db.Add(entry("x3", "X", []float64{0.3, 0}, 0)))
	must(t, db.Add(entry("y1", "Y", []float64{5, 5}, 0)))

	hits, err := db.TopKDiverse([]float64{0, 0}, t0, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want 2 (only 2 categories exist)", len(hits))
	}
	if hits[0].Entry.ID != "x1" {
		t.Fatalf("best hit = %s, want x1", hits[0].Entry.ID)
	}
	if hits[1].Entry.Category != "Y" {
		t.Fatalf("second hit category = %s, want Y", hits[1].Entry.Category)
	}
}

func TestTopKWithoutDiversityReturnsDuplicateCategories(t *testing.T) {
	db := New(2)
	must(t, db.Add(entry("x1", "X", []float64{0.1, 0}, 0)))
	must(t, db.Add(entry("x2", "X", []float64{0.2, 0}, 0)))
	must(t, db.Add(entry("y1", "Y", []float64{5, 5}, 0)))
	hits, err := db.TopK([]float64{0, 0}, t0, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0].Entry.Category != "X" || hits[1].Entry.Category != "X" {
		t.Fatalf("TopK should allow same-category hits, got %+v", hits)
	}
}

func TestTemporalDecayPrefersRecent(t *testing.T) {
	db := New(2)
	// Identical vectors; one 2 days old, one 60 days old.
	must(t, db.Add(entry("recent", "X", []float64{1, 1}, 2)))
	must(t, db.Add(entry("ancient", "Y", []float64{1, 1}, 60)))
	hits, err := db.TopKDiverse([]float64{1, 1}, t0, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if hits[0].Entry.ID != "recent" {
		t.Fatalf("temporal decay should rank the recent incident first, got %s", hits[0].Entry.ID)
	}
	if hits[0].Similarity <= hits[1].Similarity {
		t.Fatal("recent incident must score strictly higher")
	}
}

func TestAlphaZeroIgnoresTime(t *testing.T) {
	db := New(2)
	must(t, db.Add(entry("near-old", "X", []float64{1, 0}, 100)))
	must(t, db.Add(entry("far-new", "Y", []float64{3, 0}, 0)))
	hits, err := db.TopKDiverse([]float64{1, 0}, t0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hits[0].Entry.ID != "near-old" {
		t.Fatal("alpha=0 must rank purely by embedding distance")
	}
}

func TestQueryValidation(t *testing.T) {
	db := New(2)
	must(t, db.Add(entry("a", "X", []float64{1, 0}, 0)))
	if _, err := db.TopKDiverse([]float64{1}, t0, 1, 0.3); err == nil {
		t.Fatal("query dim mismatch should fail")
	}
	if _, err := db.TopKDiverse([]float64{1, 0}, t0, 0, 0.3); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := db.TopK([]float64{1}, t0, 1, 0.3); err == nil {
		t.Fatal("TopK dim mismatch should fail")
	}
}

func TestCategories(t *testing.T) {
	db := New(1)
	must(t, db.Add(entry("a", "B", []float64{1}, 0)))
	must(t, db.Add(entry("b", "A", []float64{2}, 0)))
	must(t, db.Add(entry("c", "B", []float64{3}, 0)))
	cats := db.Categories()
	if len(cats) != 2 || cats[0] != "A" || cats[1] != "B" {
		t.Fatalf("Categories = %v", cats)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// Property: similarity is in (0, 1] and monotonically decreasing in both
// embedding distance and time gap.
func TestQuickSimilarityProperties(t *testing.T) {
	inRange := func(x, y [4]float64, days uint8) bool {
		a, b := clampVec(x), clampVec(y)
		e := Entry{ID: "e", Vector: b, Time: t0.AddDate(0, 0, -int(days%120))}
		_, sim := Similarity(a, t0, e, 0.3)
		return sim > 0 && sim <= 1
	}
	if err := quick.Check(inRange, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	monotoneTime := func(x [4]float64, d1, d2 uint8) bool {
		v := clampVec(x)
		g1, g2 := int(d1%120), int(d2%120)
		if g1 > g2 {
			g1, g2 = g2, g1
		}
		e1 := Entry{Vector: v, Time: t0.AddDate(0, 0, -g1)}
		e2 := Entry{Vector: v, Time: t0.AddDate(0, 0, -g2)}
		_, s1 := Similarity(v, t0, e1, 0.3)
		_, s2 := Similarity(v, t0, e2, 0.3)
		return s1 >= s2
	}
	if err := quick.Check(monotoneTime, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func clampVec(a [4]float64) []float64 {
	out := make([]float64, len(a))
	for i, x := range a {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		out[i] = math.Mod(x, 100)
	}
	return out
}

// Property: TopKDiverse never repeats a category and returns results in
// non-increasing similarity order.
func TestQuickTopKDiverseInvariants(t *testing.T) {
	f := func(seeds [12]float64, k uint8) bool {
		db := New(2)
		for i, s := range seeds {
			x := math.Mod(math.Abs(s), 10)
			if math.IsNaN(x) {
				x = 0
			}
			cat := incident.Category(fmt.Sprintf("C%d", i%4))
			if err := db.Add(Entry{
				ID:       fmt.Sprintf("e%d", i),
				Vector:   []float64{x, float64(i % 3)},
				Time:     t0.AddDate(0, 0, -(i % 30)),
				Category: cat,
			}); err != nil {
				return false
			}
		}
		kk := int(k%6) + 1
		hits, err := db.TopKDiverse([]float64{1, 1}, t0, kk, 0.3)
		if err != nil {
			return false
		}
		seen := make(map[incident.Category]bool)
		for i, h := range hits {
			if seen[h.Entry.Category] {
				return false
			}
			seen[h.Entry.Category] = true
			if i > 0 && hits[i-1].Similarity < h.Similarity {
				return false
			}
		}
		return len(hits) <= kk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
