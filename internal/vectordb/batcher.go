package vectordb

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/incident"
)

// Batcher is the serving-side micro-batcher: an Index decorator that
// coalesces concurrent TopK/TopKDiverse calls into TopKBatch executions.
// A dispatcher goroutine collects queries into a time/size-bounded window
// — flushing when maxBatch queries have accumulated or the oldest has
// waited maxWait, whichever comes first — and a query that finds the
// collector empty with no follower queued is served on the single-query
// fast path (straight through the underlying TopK/TopKDiverse, no timer
// wait), so idle-traffic p50 latency is unchanged and batching engages
// exactly when concurrency makes it profitable. All other Index methods
// delegate to the wrapped store.
//
// The request channel is unbuffered on purpose: a send succeeds only when
// the dispatcher is receiving, so callers that arrive while a batch
// executes block in a select that also watches the shutdown signal —
// after Close no query can strand in a queue nobody drains; it just
// serves directly.
type Batcher struct {
	idx      Index
	maxBatch int
	maxWait  time.Duration

	reqs chan *batchReq
	stop chan struct{} // closed by Close to stop the dispatcher
	done chan struct{} // closed by the dispatcher on exit

	batches    atomic.Int64
	queries    atomic.Int64
	flushIdle  atomic.Int64
	flushSize  atomic.Int64
	flushTimer atomic.Int64
}

var _ Index = (*Batcher)(nil)

type batchReq struct {
	q   BatchQuery
	out chan batchResp
}

type batchResp struct {
	scs []Scored
	err error
}

// BatcherStats is a point-in-time snapshot of batch formation, exported
// on the daemon's /metrics surface.
type BatcherStats struct {
	// Batches is the number of flushes executed (including single-query
	// fast-path serves, which are batches of occupancy 1).
	Batches int64
	// Queries is the number of queries served through the collector.
	Queries int64
	// FlushIdle counts single-query fast-path flushes (collector empty, no
	// follower queued).
	FlushIdle int64
	// FlushSize counts flushes triggered by reaching maxBatch.
	FlushSize int64
	// FlushTimer counts flushes triggered by the maxWait deadline.
	FlushTimer int64
	// MeanOccupancy is Queries/Batches — 1.0 under idle traffic, rising
	// toward maxBatch as concurrency saturates the collector.
	MeanOccupancy float64
}

// NewBatcher wraps idx with a micro-batching collector: at most maxBatch
// queries per flush (must be >= 2 — a 1-query batcher is the identity and
// should just not be constructed), each waiting at most maxWait for
// companions. The dispatcher goroutine runs until Close.
func NewBatcher(idx Index, maxBatch int, maxWait time.Duration) (*Batcher, error) {
	if maxBatch < 2 {
		return nil, fmt.Errorf("vectordb: batcher max batch %d must be >= 2", maxBatch)
	}
	if maxWait <= 0 {
		return nil, fmt.Errorf("vectordb: batcher max wait %v must be positive", maxWait)
	}
	b := &Batcher{
		idx:      idx,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		reqs:     make(chan *batchReq),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.dispatch()
	return b, nil
}

// Close stops the dispatcher. Queries in flight complete; later
// TopK/TopKDiverse calls serve directly through the wrapped store.
// Idempotent.
func (b *Batcher) Close() {
	select {
	case <-b.stop:
	default:
		close(b.stop)
	}
	<-b.done
}

// Unwrap returns the wrapped Index (used by AsSharded to reach the
// sharded store through decorator layers).
func (b *Batcher) Unwrap() Index { return b.idx }

// Stats returns a snapshot of batch-formation counters.
func (b *Batcher) Stats() BatcherStats {
	st := BatcherStats{
		Batches:    b.batches.Load(),
		Queries:    b.queries.Load(),
		FlushIdle:  b.flushIdle.Load(),
		FlushSize:  b.flushSize.Load(),
		FlushTimer: b.flushTimer.Load(),
	}
	if st.Batches > 0 {
		st.MeanOccupancy = float64(st.Queries) / float64(st.Batches)
	}
	return st
}

// AsSharded unwraps decorator layers (Batcher, and any future wrapper
// exposing Unwrap() Index) down to the sharded store, if one is at the
// bottom. The daemon's tuning/metrics surfaces use it to reach
// Sharded-only knobs through a batched index.
func AsSharded(idx Index) (*Sharded, bool) {
	for idx != nil {
		switch v := idx.(type) {
		case *Sharded:
			return v, true
		case interface{ Unwrap() Index }:
			idx = v.Unwrap()
		default:
			return nil, false
		}
	}
	return nil, false
}

// dispatch is the collector loop: receive one query, drain any
// already-blocked companions, then either serve immediately (idle fast
// path, occupancy 1), flush at maxBatch, or hold the window open up to
// maxWait.
func (b *Batcher) dispatch() {
	defer close(b.done)
	for {
		select {
		case <-b.stop:
			return
		case r := <-b.reqs:
			batch := b.collect(r)
			b.execute(batch)
		}
	}
}

// collect assembles one flush window starting from the first received
// query and accounts the flush reason.
func (b *Batcher) collect(first *batchReq) []*batchReq {
	batch := append(make([]*batchReq, 0, b.maxBatch), first)
	// Drain companions already blocked on send — callers that arrived
	// while the previous batch executed.
drain:
	for len(batch) < b.maxBatch {
		select {
		case r := <-b.reqs:
			batch = append(batch, r)
		default:
			break drain
		}
	}
	switch {
	case len(batch) == b.maxBatch:
		b.flushSize.Add(1)
	case len(batch) == 1:
		// Idle: nobody else is waiting — serve now rather than holding a
		// lone query hostage to the window timer.
		b.flushIdle.Add(1)
	default:
		// Partial window: hold it open for up to maxWait from now.
		timer := time.NewTimer(b.maxWait)
	fill:
		for len(batch) < b.maxBatch {
			select {
			case r := <-b.reqs:
				batch = append(batch, r)
			case <-timer.C:
				break fill
			}
		}
		if len(batch) == b.maxBatch {
			timer.Stop()
			b.flushSize.Add(1)
		} else {
			b.flushTimer.Add(1)
		}
	}
	b.batches.Add(1)
	b.queries.Add(int64(len(batch)))
	return batch
}

// execute serves one flush: a single query goes straight through the
// wrapped TopK/TopKDiverse (identical code path to unbatched serving), a
// real batch through TopKBatch with per-query results fanned back out.
func (b *Batcher) execute(batch []*batchReq) {
	if len(batch) == 1 {
		r := batch[0]
		r.out <- b.serveDirect(r.q)
		return
	}
	queries := make([]BatchQuery, len(batch))
	for i, r := range batch {
		queries[i] = r.q
	}
	out, err := b.idx.TopKBatch(queries)
	for i, r := range batch {
		if err != nil {
			r.out <- batchResp{err: err}
		} else {
			r.out <- batchResp{scs: out[i]}
		}
	}
}

func (b *Batcher) serveDirect(q BatchQuery) batchResp {
	idx := b.idx
	if q.Scoped {
		idx = idx.Namespace(q.Namespace)
	}
	var (
		scs []Scored
		err error
	)
	if q.Diverse {
		scs, err = idx.TopKDiverse(q.Vector, q.Time, q.K, q.Alpha)
	} else {
		scs, err = idx.TopK(q.Vector, q.Time, q.K, q.Alpha)
	}
	return batchResp{scs: scs, err: err}
}

// submit routes one query through the collector, falling back to direct
// serving once the batcher is closed.
func (b *Batcher) submit(q BatchQuery) ([]Scored, error) {
	r := &batchReq{q: q, out: make(chan batchResp, 1)}
	select {
	case b.reqs <- r:
		resp := <-r.out
		return resp.scs, resp.err
	case <-b.done:
		resp := b.serveDirect(q)
		return resp.scs, resp.err
	}
}

// TopK serves through the micro-batching collector; results are
// bit-identical to the wrapped store's TopK (see the TopKBatch contract).
func (b *Batcher) TopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return b.submit(BatchQuery{Vector: query, Time: qt, K: k, Alpha: alpha})
}

// TopKDiverse serves through the micro-batching collector; results are
// bit-identical to the wrapped store's TopKDiverse.
func (b *Batcher) TopKDiverse(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return b.submit(BatchQuery{Vector: query, Time: qt, K: k, Alpha: alpha, Diverse: true})
}

// TopKBatch passes an already-formed batch straight through to the
// wrapped store — callers that batch at the source skip the collector.
func (b *Batcher) TopKBatch(queries []BatchQuery) ([][]Scored, error) {
	return b.idx.TopKBatch(queries)
}

// Dim returns the wrapped store's vector dimensionality.
func (b *Batcher) Dim() int { return b.idx.Dim() }

// Len returns the wrapped store's entry count.
func (b *Batcher) Len() int { return b.idx.Len() }

// Add stores an entry in the wrapped store.
func (b *Batcher) Add(e Entry) error { return b.idx.Add(e) }

// Get returns the entry with the given ID from the wrapped store.
func (b *Batcher) Get(id string) (Entry, bool) { return b.idx.Get(id) }

// Categories returns the wrapped store's sorted distinct categories.
func (b *Batcher) Categories() []incident.Category { return b.idx.Categories() }

// CountByCategory returns the wrapped store's per-category counts.
func (b *Batcher) CountByCategory() map[incident.Category]int { return b.idx.CountByCategory() }

// Save serializes the wrapped store.
func (b *Batcher) Save(w io.Writer) error { return b.idx.Save(w) }

// Load replaces the wrapped store's contents.
func (b *Batcher) Load(r io.Reader) error { return b.idx.Load(r) }

// Namespace returns a view of the batched store scoped to ns: TopK and
// TopKDiverse still coalesce through the shared collector (the scope
// rides on each BatchQuery), so co-tenant queries amortize the same row
// streams; everything else delegates to the wrapped store's view.
func (b *Batcher) Namespace(ns string) Index { return batcherView{b: b, ns: ns} }

// batcherView is the Batcher's namespace view; see Batcher.Namespace.
type batcherView struct {
	b  *Batcher
	ns string
}

var _ Index = batcherView{}

func (v batcherView) TopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return v.b.submit(BatchQuery{Vector: query, Time: qt, K: k, Alpha: alpha, Namespace: v.ns, Scoped: true})
}

func (v batcherView) TopKDiverse(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return v.b.submit(BatchQuery{Vector: query, Time: qt, K: k, Alpha: alpha, Diverse: true, Namespace: v.ns, Scoped: true})
}

func (v batcherView) TopKBatch(queries []BatchQuery) ([][]Scored, error) {
	return v.b.idx.TopKBatch(scopedQueries(queries, v.ns))
}

func (v batcherView) Dim() int                                 { return v.b.idx.Dim() }
func (v batcherView) Len() int                                 { return v.b.idx.Namespace(v.ns).Len() }
func (v batcherView) Add(e Entry) error                        { return v.b.idx.Namespace(v.ns).Add(e) }
func (v batcherView) Get(id string) (Entry, bool)              { return v.b.idx.Namespace(v.ns).Get(id) }
func (v batcherView) Categories() []incident.Category          { return v.b.idx.Namespace(v.ns).Categories() }
func (v batcherView) CountByCategory() map[incident.Category]int {
	return v.b.idx.Namespace(v.ns).CountByCategory()
}

// Save writes the WHOLE wrapped store (a view is a lens, not a
// partition); Load likewise replaces it.
func (v batcherView) Save(w io.Writer) error { return v.b.idx.Save(w) }
func (v batcherView) Load(r io.Reader) error { return v.b.idx.Load(r) }

func (v batcherView) Namespace(ns string) Index { return v.b.Namespace(ns) }
