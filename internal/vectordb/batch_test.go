package vectordb

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/incident"
)

// diversify spreads a corpus across numCats categories so the diverse
// retrieval paths have real work (clusteredCorpus emits one category).
func diversify(entries []Entry, numCats int) {
	for i := range entries {
		entries[i].Category = incident.Category(fmt.Sprintf("cat-%d", i%numCats))
	}
}

// mixedBatch builds a heterogeneous batch from the fixture queries:
// varying k, alpha, diversity flag, and anchor time across members.
func mixedBatch(queries [][]float64, qt time.Time, size int) []BatchQuery {
	batch := make([]BatchQuery, size)
	for i := range batch {
		batch[i] = BatchQuery{
			Vector:  queries[i%len(queries)],
			Time:    qt.AddDate(0, 0, i%3),
			K:       2 + i%7,
			Alpha:   []float64{0, 0.3, 0.8}[i%3],
			Diverse: i%2 == 1,
		}
	}
	return batch
}

// sequentialBatch serves a batch one query at a time through the
// sequential entry points — the oracle the bit-identity contract is
// pinned against.
func sequentialBatch(t *testing.T, idx Index, batch []BatchQuery) [][]Scored {
	t.Helper()
	out := make([][]Scored, len(batch))
	for i, bq := range batch {
		var err error
		if bq.Diverse {
			out[i], err = idx.TopKDiverse(bq.Vector, bq.Time, bq.K, bq.Alpha)
		} else {
			out[i], err = idx.TopK(bq.Vector, bq.Time, bq.K, bq.Alpha)
		}
		if err != nil {
			t.Fatalf("sequential query %d: %v", i, err)
		}
	}
	return out
}

// TestTopKBatchMatchesSequential is the batch bit-identity golden: for
// every shard count and serving mode, TopKBatch over a heterogeneous
// batch must return, per query, exactly what the sequential call returns
// — same entries, same bitwise (distance, similarity) scores, same order.
func TestTopKBatchMatchesSequential(t *testing.T) {
	for _, shards := range []int{1, 2, 7, 16} {
		for _, mode := range []string{"exact", "probe", "quantized"} {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, mode), func(t *testing.T) {
				entries, queries := clusteredCorpus(77, 400, 8, 5)
				diversify(entries, 6)
				sh := NewSharded(8, shards, nil)
				for _, e := range entries {
					must(t, sh.Add(e))
				}
				if mode != "exact" && shards > 1 {
					// A single shard cannot train an IVF; its "probe" cell
					// pins the exact fallback instead.
					if err := sh.TrainIVF(0); err != nil {
						t.Fatal(err)
					}
					must(t, sh.SetProbes(2))
				}
				if mode == "quantized" {
					// Overfetch 2 keeps the candidate cut genuinely
					// approximate, the regime where per-query threshold state
					// could drift between batched and sequential scans.
					if err := sh.EnableQuantized(2); err != nil {
						t.Fatal(err)
					}
				}
				batch := mixedBatch(queries, entries[0].Time, 23)
				got, err := sh.TopKBatch(batch)
				if err != nil {
					t.Fatal(err)
				}
				want := sequentialBatch(t, sh, batch)
				for i := range batch {
					sameScored(t, fmt.Sprintf("query %d", i), got[i], want[i])
				}
			})
		}
	}
}

// TestTopKBatchFlatMatchesSequential pins the flat store's batched pass
// to its sequential scans (and, transitively, to the sharded store via
// the existing flat-vs-sharded equivalence suite).
func TestTopKBatchFlatMatchesSequential(t *testing.T) {
	entries, queries := clusteredCorpus(31, 300, 6, 4)
	diversify(entries, 5)
	db := New(6)
	for _, e := range entries {
		must(t, db.Add(e))
	}
	batch := mixedBatch(queries, entries[0].Time, 17)
	got, err := db.TopKBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	want := sequentialBatch(t, db, batch)
	for i := range batch {
		sameScored(t, fmt.Sprintf("query %d", i), got[i], want[i])
	}
}

// TestTopKBatchMidRebalance wedges a rebalance mid-drain (partitioner
// blocked on a gate) and holds the batched path to the sequential one
// while both generations are live — the draining-first, dedup-by-ID merge
// must survive loop inversion.
func TestTopKBatchMidRebalance(t *testing.T) {
	const dim = 2
	for _, shards := range []int{1, 2, 7, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sh := NewSharded(dim, shards, nil)
			rng := rand.New(rand.NewSource(int64(shards)))
			for i := 0; i < 40; i++ {
				must(t, sh.Add(entry(fmt.Sprintf("SEED-%02d", i),
					incident.Category(fmt.Sprintf("c%d", i%5)),
					[]float64{rng.Float64() * 10, rng.Float64() * 10}, i%9)))
			}
			gp := &gatedPartitioner{n: 3, sentinel: "SEED-00", gate: make(chan struct{}), entered: make(chan struct{})}
			rebDone := make(chan error, 1)
			go func() { rebDone <- sh.Rebalance(gp) }()
			select {
			case <-gp.entered:
			case <-time.After(5 * time.Second):
				t.Fatal("rebalance never reached the drain")
			}

			queries := make([][]float64, 8)
			for i := range queries {
				queries[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
			}
			batch := mixedBatch(queries, t0, 11)
			got, err := sh.TopKBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			want := sequentialBatch(t, sh, batch)
			for i := range batch {
				sameScored(t, fmt.Sprintf("query %d", i), got[i], want[i])
			}

			close(gp.gate)
			if err := <-rebDone; err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTopKBatchValidates: a malformed member poisons the whole batch with
// an error naming the offending index, and an empty batch is a cheap
// no-op.
func TestTopKBatchValidates(t *testing.T) {
	for name, idx := range map[string]Index{"flat": New(3), "sharded": NewSharded(3, 4, nil)} {
		must(t, idx.Add(entry("a", "X", []float64{1, 2, 3}, 0)))
		out, err := idx.TopKBatch(nil)
		if err != nil || len(out) != 0 {
			t.Fatalf("%s: empty batch: out=%v err=%v", name, out, err)
		}
		good := BatchQuery{Vector: []float64{1, 2, 3}, Time: t0, K: 2}
		_, err = idx.TopKBatch([]BatchQuery{good, {Vector: []float64{1}, Time: t0, K: 2}})
		if err == nil || !strings.Contains(err.Error(), "batch query 1") {
			t.Fatalf("%s: dim mismatch error %v does not name the query index", name, err)
		}
		_, err = idx.TopKBatch([]BatchQuery{good, {Vector: []float64{1, 2, 3}, Time: t0, K: 0}})
		if err == nil || !strings.Contains(err.Error(), "batch query 1") {
			t.Fatalf("%s: bad-k error %v does not name the query index", name, err)
		}
	}
}

// TestPerQueryProbesEscalation exercises the opt-in per-query budget
// growth: with a prohibitive margin no query escalates and results equal
// the fixed-budget batch; with margin 0 a query whose seeded selection
// misses good partitions escalates (the counter moves) and every query's
// per-rank similarity dominates its fixed-budget result — scanning a
// superset of partitions can only improve the top k.
func TestPerQueryProbesEscalation(t *testing.T) {
	entries, queries := clusteredCorpus(13, 600, 8, 6)
	sh := NewSharded(8, 6, nil)
	for _, e := range entries {
		must(t, sh.Add(e))
	}
	if err := sh.TrainIVF(0); err != nil {
		t.Fatal(err)
	}
	must(t, sh.SetProbes(1))
	qt := entries[0].Time
	batch := make([]BatchQuery, 12)
	for i := range batch {
		batch[i] = BatchQuery{Vector: queries[i], Time: qt, K: 5, Alpha: 0.3}
	}
	fixed, err := sh.TopKBatch(batch)
	if err != nil {
		t.Fatal(err)
	}

	if err := sh.EnablePerQueryProbes(2); err != nil { // est ∈ (0,1]: margin 2 is unreachable
		t.Fatal(err)
	}
	if !sh.PerQueryProbes() {
		t.Fatal("PerQueryProbes not reported enabled")
	}
	unescalated, err := sh.TopKBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.BatchEscalations(); got != 0 {
		t.Fatalf("BatchEscalations = %d with an unreachable margin, want 0", got)
	}
	for i := range batch {
		sameScored(t, fmt.Sprintf("unescalated query %d", i), unescalated[i], fixed[i])
	}

	if err := sh.EnablePerQueryProbes(0); err != nil {
		t.Fatal(err)
	}
	// Hard queries: k far beyond any single partition's population, so the
	// seeded budget cannot fill the heap and growth must engage; the easy
	// k=5 queries ride in the same batch and stay at their seed.
	hard := append(append([]BatchQuery(nil), batch...), BatchQuery{
		Vector: queries[0], Time: qt, K: 150, Alpha: 0.3,
	}, BatchQuery{
		Vector: queries[1], Time: qt, K: 150, Alpha: 0.3, Diverse: true,
	})
	grown, err := sh.TopKBatch(hard)
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.BatchEscalations(); got == 0 {
		t.Fatal("BatchEscalations = 0 at margin 0 with underfilled k=150 queries; expected growth")
	}
	wantHard, err := sh.exactTopK(queries[0], qt, 150, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// The underfilled query grows until every ranked partition is consumed,
	// i.e. full fan-out: its result must match the exact oracle.
	sameScored(t, "underfilled k=150", grown[len(batch)], wantHard)
	for i := range batch {
		if len(grown[i]) < len(fixed[i]) {
			t.Fatalf("query %d: escalated result has %d entries, fixed has %d", i, len(grown[i]), len(fixed[i]))
		}
		for r := range fixed[i] {
			if grown[i][r].Similarity < fixed[i][r].Similarity {
				t.Fatalf("query %d rank %d: escalated similarity %v below fixed %v",
					i, r, grown[i][r].Similarity, fixed[i][r].Similarity)
			}
		}
	}

	sh.DisablePerQueryProbes()
	if sh.PerQueryProbes() {
		t.Fatal("PerQueryProbes still reported enabled after disable")
	}
	again, err := sh.TopKBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		sameScored(t, fmt.Sprintf("re-fixed query %d", i), again[i], fixed[i])
	}

	for _, bad := range []float64{-0.1, nan()} {
		if err := sh.EnablePerQueryProbes(bad); err == nil {
			t.Fatalf("EnablePerQueryProbes(%v) accepted", bad)
		}
	}
}

func nan() float64 { var z float64; return z / z }

// TestTopKBatchConcurrentHammer races TopKBatch against concurrent
// ingest and an IVF retrain (which drives a full generation swap under
// the batch's feet). Run under -race in CI; correctness here is "no
// panic, valid shape, retrieval order" — bit-identity under a quiescent
// store is the goldens' job.
func TestTopKBatchConcurrentHammer(t *testing.T) {
	entries, queries := clusteredCorpus(5, 400, 8, 4)
	diversify(entries, 5)
	sh := NewSharded(8, 4, nil)
	for _, e := range entries[:200] {
		must(t, sh.Add(e))
	}
	if err := sh.TrainIVF(0); err != nil {
		t.Fatal(err)
	}
	must(t, sh.SetProbes(1))
	if err := sh.EnableQuantized(0); err != nil {
		t.Fatal(err)
	}
	if err := sh.EnablePerQueryProbes(0.01); err != nil {
		t.Fatal(err)
	}
	qt := entries[0].Time

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 3)
	wg.Add(3)
	go func() { // ingest
		defer wg.Done()
		for _, e := range entries[200:] {
			if err := sh.Add(e); err != nil {
				errc <- err
				return
			}
		}
	}()
	go func() { // retrain / rebalance churn
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := sh.TrainIVF(1); err != nil {
				errc <- err
				return
			}
		}
	}()
	go func() { // batched queries
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := mixedBatch(queries[(i*3)%50:], qt, 9)
			out, err := sh.TopKBatch(batch)
			if err != nil {
				errc <- err
				return
			}
			for qi, scs := range out {
				if len(scs) > batch[qi].K {
					errc <- fmt.Errorf("query %d returned %d > k=%d", qi, len(scs), batch[qi].K)
					return
				}
				for r := 1; r < len(scs); r++ {
					if ranksAfter(scs[r-1], scs[r]) {
						errc <- fmt.Errorf("query %d out of retrieval order at rank %d", qi, r)
						return
					}
				}
			}
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	timer := time.NewTimer(2 * time.Second)
	select {
	case err := <-errc:
		close(stop)
		t.Fatal(err)
	case <-timer.C:
	}
	close(stop)
	select {
	case <-done:
	case err := <-errc:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("hammer goroutines did not drain")
	}
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
