package vectordb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/incident"
)

// Retrieval benchmarks: flat vs sharded TopK/TopKDiverse across store
// sizes — the perf trajectory for the sharded retrieval layer, recorded in
// BENCH_retrieval.json. On a single-CPU runner the fan-out degrades to a
// sequential per-shard scan and the two implementations land within noise
// of each other; the speedup target (≥1.5× at 100k entries) applies to
// multi-core hardware where the per-shard scans actually run concurrently.

const benchDim = 32

var (
	benchStoresMu sync.Mutex
	benchStores   = map[string]Index{}
)

// benchIndex builds (and caches across benchmarks) an index of n entries.
func benchIndex(b *testing.B, kind string, n, shards int) Index {
	b.Helper()
	key := fmt.Sprintf("%s/%d/%d", kind, n, shards)
	benchStoresMu.Lock()
	defer benchStoresMu.Unlock()
	if idx, ok := benchStores[key]; ok {
		return idx
	}
	var idx Index
	if kind == "flat" {
		idx = New(benchDim)
	} else {
		idx = NewSharded(benchDim, shards, nil)
	}
	rng := rand.New(rand.NewSource(42))
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		v := make([]float64, benchDim)
		for j := range v {
			v[j] = rng.Float64() * 4
		}
		if err := idx.Add(Entry{
			ID:       fmt.Sprintf("INC-%07d", i),
			Vector:   v,
			Category: incident.Category(fmt.Sprintf("cat-%03d", rng.Intn(163))),
			Time:     base.AddDate(0, 0, rng.Intn(365)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	benchStores[key] = idx
	return idx
}

func benchQuery() ([]float64, time.Time) {
	q := make([]float64, benchDim)
	for j := range q {
		q[j] = 2
	}
	return q, time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
}

// BenchmarkTopK is the flat-vs-sharded headline comparison at 1k/10k/100k
// entries (8 shards, the k and alpha of the shipped configuration).
func BenchmarkTopK(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, impl := range []struct {
			name   string
			shards int
		}{{"flat", 0}, {"sharded8", 8}} {
			b.Run(fmt.Sprintf("%s/n=%d", impl.name, n), func(b *testing.B) {
				kind := "flat"
				if impl.shards > 0 {
					kind = "sharded"
				}
				idx := benchIndex(b, kind, n, impl.shards)
				q, qt := benchQuery()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := idx.TopK(q, qt, 5, 0.3); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTopKDiverse mirrors BenchmarkTopK for the diversity-constrained
// retrieval the shipped pipeline uses.
func BenchmarkTopKDiverse(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, impl := range []struct {
			name   string
			shards int
		}{{"flat", 0}, {"sharded8", 8}} {
			b.Run(fmt.Sprintf("%s/n=%d", impl.name, n), func(b *testing.B) {
				kind := "flat"
				if impl.shards > 0 {
					kind = "sharded"
				}
				idx := benchIndex(b, kind, n, impl.shards)
				q, qt := benchQuery()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := idx.TopKDiverse(q, qt, 5, 0.3); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// probe benchmark fixtures: an 8-shard IVF-trained store over the seeded
// clustered corpus, its flat exact twin, and the query set — cached
// across sub-benchmarks, keyed by corpus size.
var (
	probeBenchMu sync.Mutex
	probeBench   = map[int]*probeFixture{}
)

type probeFixture struct {
	flat    *DB
	sharded *Sharded
	queries [][]float64
	qt      time.Time
}

func probeFixtureFor(b *testing.B, n int) *probeFixture {
	b.Helper()
	probeBenchMu.Lock()
	defer probeBenchMu.Unlock()
	if f, ok := probeBench[n]; ok {
		return f
	}
	entries, queries := clusteredCorpus(99, n, benchDim, 12)
	f := &probeFixture{flat: New(benchDim), sharded: NewSharded(benchDim, 8, nil), queries: queries, qt: entries[0].Time}
	for _, e := range entries {
		if err := f.flat.Add(e); err != nil {
			b.Fatal(err)
		}
		if err := f.sharded.Add(e); err != nil {
			b.Fatal(err)
		}
	}
	if err := f.sharded.TrainIVF(0); err != nil {
		b.Fatal(err)
	}
	probeBench[n] = f
	return f
}

// BenchmarkTopKProbes is the recall-vs-speedup benchmark for probe-limited
// serving: 1k/10k/100k-entry IVF stores at probes 1, 2, 4 and all (exact
// fan-out), measured against the flat oracle. Each run reports recall@5
// as a benchmark metric and — so the CI bench smoke doubles as the
// recall gate — FAILS if probes=2 on the seeded 10k corpus ever drops
// below the pinned 0.9 floor from the acceptance criteria. Results are
// recorded in BENCH_retrieval.json.
func BenchmarkTopKProbes(b *testing.B) {
	const floorN, floorProbes, recallFloor = 10_000, 2, 0.9
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, probes := range []int{1, 2, 4, 0} {
			name := fmt.Sprintf("probes=%d/n=%d", probes, n)
			if probes == 0 {
				name = fmt.Sprintf("probes=all/n=%d", n)
			}
			b.Run(name, func(b *testing.B) {
				f := probeFixtureFor(b, n)
				if err := f.sharded.SetProbes(probes); err != nil {
					b.Fatal(err)
				}
				defer f.sharded.SetProbes(0)
				recall := recallAtK(b, f.flat, f.sharded, f.queries, f.qt, 5, 0.3)
				if n == floorN && probes == floorProbes && recall < recallFloor {
					b.Fatalf("recall@5 = %.4f at probes=%d on the seeded %d-entry corpus, below the pinned %.2f floor",
						recall, probes, n, recallFloor)
				}
				q := f.queries[0]
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := f.sharded.TopK(q, f.qt, 5, 0.3); err != nil {
						b.Fatal(err)
					}
				}
				// After ResetTimer: it clears custom metrics too.
				b.ReportMetric(recall, "recall@5")
			})
		}
	}
}

// BenchmarkShardedAdd measures insert throughput with per-shard locking
// (the path Learn takes under concurrent ingest).
func BenchmarkShardedAdd(b *testing.B) {
	for _, impl := range []struct {
		name   string
		shards int
	}{{"flat", 0}, {"sharded8", 8}} {
		b.Run(impl.name, func(b *testing.B) {
			var idx Index
			if impl.shards > 0 {
				idx = NewSharded(benchDim, impl.shards, nil)
			} else {
				idx = New(benchDim)
			}
			v := make([]float64, benchDim)
			at := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := idx.Add(Entry{
					ID:       fmt.Sprintf("INC-%09d", i),
					Vector:   v,
					Category: incident.Category(fmt.Sprintf("cat-%03d", i%163)),
					Time:     at,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
