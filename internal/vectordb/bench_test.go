package vectordb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/incident"
)

// Retrieval benchmarks: flat vs sharded TopK/TopKDiverse across store
// sizes — the perf trajectory for the sharded retrieval layer, recorded in
// BENCH_retrieval.json. On a single-CPU runner the fan-out degrades to a
// sequential per-shard scan and the two implementations land within noise
// of each other; the speedup target (≥1.5× at 100k entries) applies to
// multi-core hardware where the per-shard scans actually run concurrently.

const benchDim = 32

var (
	benchStoresMu sync.Mutex
	benchStores   = map[string]Index{}
)

// benchIndex builds (and caches across benchmarks) an index of n entries.
func benchIndex(b *testing.B, kind string, n, shards int) Index {
	b.Helper()
	key := fmt.Sprintf("%s/%d/%d", kind, n, shards)
	benchStoresMu.Lock()
	defer benchStoresMu.Unlock()
	if idx, ok := benchStores[key]; ok {
		return idx
	}
	var idx Index
	if kind == "flat" {
		idx = New(benchDim)
	} else {
		idx = NewSharded(benchDim, shards, nil)
	}
	rng := rand.New(rand.NewSource(42))
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		v := make([]float64, benchDim)
		for j := range v {
			v[j] = rng.Float64() * 4
		}
		if err := idx.Add(Entry{
			ID:       fmt.Sprintf("INC-%07d", i),
			Vector:   v,
			Category: incident.Category(fmt.Sprintf("cat-%03d", rng.Intn(163))),
			Time:     base.AddDate(0, 0, rng.Intn(365)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	benchStores[key] = idx
	return idx
}

func benchQuery() ([]float64, time.Time) {
	q := make([]float64, benchDim)
	for j := range q {
		q[j] = 2
	}
	return q, time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
}

// BenchmarkTopK is the flat-vs-sharded headline comparison at 1k/10k/100k
// entries (8 shards, the k and alpha of the shipped configuration).
func BenchmarkTopK(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, impl := range []struct {
			name   string
			shards int
		}{{"flat", 0}, {"sharded8", 8}} {
			b.Run(fmt.Sprintf("%s/n=%d", impl.name, n), func(b *testing.B) {
				kind := "flat"
				if impl.shards > 0 {
					kind = "sharded"
				}
				idx := benchIndex(b, kind, n, impl.shards)
				q, qt := benchQuery()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := idx.TopK(q, qt, 5, 0.3); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTopKDiverse mirrors BenchmarkTopK for the diversity-constrained
// retrieval the shipped pipeline uses.
func BenchmarkTopKDiverse(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, impl := range []struct {
			name   string
			shards int
		}{{"flat", 0}, {"sharded8", 8}} {
			b.Run(fmt.Sprintf("%s/n=%d", impl.name, n), func(b *testing.B) {
				kind := "flat"
				if impl.shards > 0 {
					kind = "sharded"
				}
				idx := benchIndex(b, kind, n, impl.shards)
				q, qt := benchQuery()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := idx.TopKDiverse(q, qt, 5, 0.3); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkShardedAdd measures insert throughput with per-shard locking
// (the path Learn takes under concurrent ingest).
func BenchmarkShardedAdd(b *testing.B) {
	for _, impl := range []struct {
		name   string
		shards int
	}{{"flat", 0}, {"sharded8", 8}} {
		b.Run(impl.name, func(b *testing.B) {
			var idx Index
			if impl.shards > 0 {
				idx = NewSharded(benchDim, impl.shards, nil)
			} else {
				idx = New(benchDim)
			}
			v := make([]float64, benchDim)
			at := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := idx.Add(Entry{
					ID:       fmt.Sprintf("INC-%09d", i),
					Vector:   v,
					Category: incident.Category(fmt.Sprintf("cat-%03d", i%163)),
					Time:     at,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
