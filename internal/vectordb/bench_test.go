package vectordb

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/incident"
)

// Retrieval benchmarks: flat vs sharded TopK/TopKDiverse across store
// sizes — the perf trajectory for the sharded retrieval layer, recorded in
// BENCH_retrieval.json. On a single-CPU runner the fan-out degrades to a
// sequential per-shard scan and the two implementations land within noise
// of each other; the speedup target (≥1.5× at 100k entries) applies to
// multi-core hardware where the per-shard scans actually run concurrently.

const benchDim = 32

var (
	benchStoresMu sync.Mutex
	benchStores   = map[string]Index{}
)

// benchIndex builds (and caches across benchmarks) an index of n entries.
func benchIndex(b *testing.B, kind string, n, shards int) Index {
	b.Helper()
	key := fmt.Sprintf("%s/%d/%d", kind, n, shards)
	benchStoresMu.Lock()
	defer benchStoresMu.Unlock()
	if idx, ok := benchStores[key]; ok {
		return idx
	}
	var idx Index
	if kind == "flat" {
		idx = New(benchDim)
	} else {
		idx = NewSharded(benchDim, shards, nil)
	}
	rng := rand.New(rand.NewSource(42))
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		v := make([]float64, benchDim)
		for j := range v {
			v[j] = rng.Float64() * 4
		}
		if err := idx.Add(Entry{
			ID:       fmt.Sprintf("INC-%07d", i),
			Vector:   v,
			Category: incident.Category(fmt.Sprintf("cat-%03d", rng.Intn(163))),
			Time:     base.AddDate(0, 0, rng.Intn(365)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	benchStores[key] = idx
	return idx
}

func benchQuery() ([]float64, time.Time) {
	q := make([]float64, benchDim)
	for j := range q {
		q[j] = 2
	}
	return q, time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
}

// BenchmarkTopK is the flat-vs-sharded headline comparison at 1k/10k/100k
// entries (8 shards, the k and alpha of the shipped configuration).
func BenchmarkTopK(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, impl := range []struct {
			name   string
			shards int
		}{{"flat", 0}, {"sharded8", 8}} {
			b.Run(fmt.Sprintf("%s/n=%d", impl.name, n), func(b *testing.B) {
				kind := "flat"
				if impl.shards > 0 {
					kind = "sharded"
				}
				idx := benchIndex(b, kind, n, impl.shards)
				q, qt := benchQuery()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := idx.TopK(q, qt, 5, 0.3); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTopKDiverse mirrors BenchmarkTopK for the diversity-constrained
// retrieval the shipped pipeline uses.
func BenchmarkTopKDiverse(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, impl := range []struct {
			name   string
			shards int
		}{{"flat", 0}, {"sharded8", 8}} {
			b.Run(fmt.Sprintf("%s/n=%d", impl.name, n), func(b *testing.B) {
				kind := "flat"
				if impl.shards > 0 {
					kind = "sharded"
				}
				idx := benchIndex(b, kind, n, impl.shards)
				q, qt := benchQuery()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := idx.TopKDiverse(q, qt, 5, 0.3); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// probe benchmark fixtures: an 8-shard IVF-trained store over the seeded
// clustered corpus, its flat exact twin, and the query set — cached
// across sub-benchmarks, keyed by corpus size.
var (
	probeBenchMu sync.Mutex
	probeBench   = map[int]*probeFixture{}
)

type probeFixture struct {
	flat    *DB
	sharded *Sharded
	queries [][]float64
	qt      time.Time
}

func probeFixtureFor(b *testing.B, n int) *probeFixture {
	b.Helper()
	probeBenchMu.Lock()
	defer probeBenchMu.Unlock()
	if f, ok := probeBench[n]; ok {
		return f
	}
	entries, queries := clusteredCorpus(99, n, benchDim, 12)
	f := &probeFixture{flat: New(benchDim), sharded: NewSharded(benchDim, 8, nil), queries: queries, qt: entries[0].Time}
	for _, e := range entries {
		if err := f.flat.Add(e); err != nil {
			b.Fatal(err)
		}
		if err := f.sharded.Add(e); err != nil {
			b.Fatal(err)
		}
	}
	if err := f.sharded.TrainIVF(0); err != nil {
		b.Fatal(err)
	}
	probeBench[n] = f
	return f
}

// BenchmarkTopKProbes is the recall-vs-speedup benchmark for probe-limited
// serving: 1k/10k/100k-entry IVF stores at probes 1, 2, 4 and all (exact
// fan-out), measured against the flat oracle. Each run reports recall@5
// as a benchmark metric and — so the CI bench smoke doubles as the
// recall gate — FAILS if probes=2 on the seeded 10k corpus ever drops
// below the pinned 0.9 floor from the acceptance criteria. Results are
// recorded in BENCH_retrieval.json.
func BenchmarkTopKProbes(b *testing.B) {
	const floorN, floorProbes, recallFloor = 10_000, 2, 0.9
	for _, n := range []int{1_000, 10_000, 100_000} {
		for _, probes := range []int{1, 2, 4, 0} {
			name := fmt.Sprintf("probes=%d/n=%d", probes, n)
			if probes == 0 {
				name = fmt.Sprintf("probes=all/n=%d", n)
			}
			b.Run(name, func(b *testing.B) {
				f := probeFixtureFor(b, n)
				if err := f.sharded.SetProbes(probes); err != nil {
					b.Fatal(err)
				}
				defer f.sharded.SetProbes(0)
				recall := recallAtK(b, f.flat, f.sharded, f.queries, f.qt, 5, 0.3)
				if n == floorN && probes == floorProbes && recall < recallFloor {
					b.Fatalf("recall@5 = %.4f at probes=%d on the seeded %d-entry corpus, below the pinned %.2f floor",
						recall, probes, n, recallFloor)
				}
				q := f.queries[0]
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := f.sharded.TopK(q, f.qt, 5, 0.3); err != nil {
						b.Fatal(err)
					}
				}
				// After ResetTimer: it clears custom metrics too.
				b.ReportMetric(recall, "recall@5")
			})
		}
	}
}

// exactOracle serves exact fan-out off a Sharded store regardless of its
// probe configuration, so recall can be measured against the very store
// being benchmarked when keeping a flat twin would double the fixture
// (the 1M-entry corpus).
type exactOracle struct{ *Sharded }

func (o exactOracle) TopK(query []float64, qt time.Time, k int, alpha float64) ([]Scored, error) {
	return o.exactTopK(query, qt, k, alpha)
}

// millionFixture builds the 1M-entry quantization fixture without a flat
// twin: the IVF quantizer trains on a 50k sample first, and the remaining
// entries stream through the pre-trained partitioner — no full-corpus
// k-means, no rebalance drain.
var (
	millionMu  sync.Mutex
	millionFix *probeFixture
)

func millionFixture(b *testing.B) *probeFixture {
	b.Helper()
	millionMu.Lock()
	defer millionMu.Unlock()
	if millionFix != nil {
		return millionFix
	}
	const n, sample, shards, clusters = 1_000_000, 50_000, 8, 12
	entries, queries := clusteredCorpus(99, n, benchDim, clusters)
	vecs := make([][]float64, sample)
	for i := range vecs {
		vecs[i] = entries[i].Vector
	}
	ivf, err := TrainIVF(vecs, shards, 0)
	if err != nil {
		b.Fatal(err)
	}
	f := &probeFixture{sharded: NewSharded(benchDim, shards, ivf), queries: queries[:25], qt: entries[0].Time}
	for _, e := range entries {
		if err := f.sharded.Add(e); err != nil {
			b.Fatal(err)
		}
	}
	millionFix = f
	return f
}

// quantFixtureFor returns the store under test plus the exact oracle recall
// is measured against: the shared flat twin up to 100k entries, the store's
// own exact fan-out at 1M.
func quantFixtureFor(b *testing.B, n int) (*probeFixture, Index) {
	if n <= 100_000 {
		f := probeFixtureFor(b, n)
		return f, f.flat
	}
	f := millionFixture(b)
	return f, exactOracle{f.sharded}
}

// BenchmarkTopKQuantized is the bandwidth-vs-compute benchmark for the
// two-stage quantized probe scan: at each corpus size the same IVF store
// serves probes=2 queries with the full-precision float scan and with the
// int8 candidate scan + exact re-rank, so the ns/op ratio is the honest
// speedup of trading 8× scan bandwidth for a widening-multiply inner loop
// plus a k×overfetch re-rank. Each cell reports recall@5 against an exact
// oracle, and — so the CI bench smoke doubles as the quantization recall
// gate — the run FAILS if the quantized scan at default overfetch ever
// drops below the pinned 0.9 floor on the seeded 10k corpus. The 1M cell
// streams its corpus through a sample-trained quantizer and measures
// recall against the store's own exact fan-out (a flat twin would double
// the fixture). Results are recorded in BENCH_retrieval.json.
func BenchmarkTopKQuantized(b *testing.B) {
	const k, alpha, probes = 5, 0.3, 2
	const floorN, recallFloor = 10_000, 0.9
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		for _, mode := range []string{"float", "quantized"} {
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				f, oracle := quantFixtureFor(b, n)
				if err := f.sharded.SetProbes(probes); err != nil {
					b.Fatal(err)
				}
				defer f.sharded.SetProbes(0)
				if mode == "quantized" {
					if err := f.sharded.EnableQuantized(0); err != nil {
						b.Fatal(err)
					}
					defer f.sharded.DisableQuantized()
				}
				recall := recallAtK(b, oracle, f.sharded, f.queries, f.qt, k, alpha)
				if mode == "quantized" && n == floorN && recall < recallFloor {
					b.Fatalf("quantized recall@5 = %.4f at probes=%d on the seeded %d-entry corpus, below the pinned %.2f floor",
						recall, probes, n, recallFloor)
				}
				q := f.queries[0]
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := f.sharded.TopK(q, f.qt, k, alpha); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(recall, "recall@5")
			})
		}
	}
}

// time-spread benchmark fixture: a 10-shard IVF store over the seeded
// time-spread corpus (timestamps spanning the decay horizon, recency
// anti-correlated with proximity) and its flat exact twin.
var (
	tsBenchMu sync.Mutex
	tsBench   *probeFixture
)

func timeSpreadFixture(b *testing.B) *probeFixture {
	b.Helper()
	tsBenchMu.Lock()
	defer tsBenchMu.Unlock()
	if tsBench != nil {
		return tsBench
	}
	const n, dim, pairs, shards = 10_000, 16, 3, 10
	entries, queries, qt := timeSpreadCorpus(8, n, dim, pairs)
	f := &probeFixture{flat: New(dim), sharded: NewSharded(dim, shards, nil), queries: queries, qt: qt}
	for _, e := range entries {
		if err := f.flat.Add(e); err != nil {
			b.Fatal(err)
		}
		if err := f.sharded.Add(e); err != nil {
			b.Fatal(err)
		}
	}
	if err := f.sharded.TrainIVF(0); err != nil {
		b.Fatal(err)
	}
	tsBench = f
	return f
}

// BenchmarkTopKProbesTimeSpread extends the probe recall gate to the
// time-spread corpus, where distance-only probe ranking probes
// stale-but-near partitions and the true temporal-decay neighbours live
// in recent-but-farther ones. Each ranking × probe-budget cell reports
// recall@5 against the flat oracle; the time-aware cells FAIL the run if
// (a) time-aware recall ever drops below the pinned 0.9 floor at
// probes=2, or (b) time-aware ranking stops beating distance-only at the
// same budget — the CI bench job runs this alongside the original
// BenchmarkTopKProbes gate. The adaptive cell additionally runs the
// recall-SLO auto-tuner from cold (no manual Probes config) and FAILS if
// the converged controller does not hold recall@5 >= 0.95; its timed
// loop includes live shadow sampling, so the ns/op is the honest cost of
// adaptive serving. Results are recorded in BENCH_retrieval.json.
func BenchmarkTopKProbesTimeSpread(b *testing.B) {
	const k, alpha, floor, slo = 5, 0.3, 0.9, 0.95
	for _, probes := range []int{1, 2} {
		for _, mode := range []struct {
			name string
			rank int
		}{{"distance", ProbeRankDistance}, {"timeaware", ProbeRankTimeAware}} {
			b.Run(fmt.Sprintf("rank=%s/probes=%d", mode.name, probes), func(b *testing.B) {
				f := timeSpreadFixture(b)
				if err := f.sharded.SetProbes(probes); err != nil {
					b.Fatal(err)
				}
				defer f.sharded.SetProbes(0)
				defer f.sharded.SetProbeRanking(ProbeRankTimeAware)
				if err := f.sharded.SetProbeRanking(ProbeRankDistance); err != nil {
					b.Fatal(err)
				}
				distRecall := recallAtK(b, f.flat, f.sharded, f.queries, f.qt, k, alpha)
				if err := f.sharded.SetProbeRanking(mode.rank); err != nil {
					b.Fatal(err)
				}
				recall := distRecall
				if mode.rank == ProbeRankTimeAware {
					recall = recallAtK(b, f.flat, f.sharded, f.queries, f.qt, k, alpha)
					if probes == 2 && recall < floor {
						b.Fatalf("time-aware recall@5 = %.4f at probes=%d, below the pinned %.2f floor", recall, probes, floor)
					}
					if recall <= distRecall {
						b.Fatalf("time-aware recall@5 (%.4f) no longer beats distance-only (%.4f) at probes=%d",
							recall, distRecall, probes)
					}
				}
				q := f.queries[0]
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := f.sharded.TopK(q, f.qt, k, alpha); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(recall, "recall@5")
			})
		}
	}
	// The adaptive cells run the recall-SLO auto-tuner from cold (no manual
	// Probes config); the quantized variant layers the two-stage int8 scan
	// under the controller, whose shadows measure end-to-end two-stage
	// recall — so the cell FAILS unless the SLO converges with quantization
	// on, pinning that the tuner can hold its target over the approximate
	// candidate stage, not just the float probe scan. The quantized walk is
	// the long one — the controller climbs the whole probe ladder, finds
	// more probes cannot recover quantization rank noise, then escalates
	// the overfetch pool — and each convergence pass yields only a handful
	// of shadow samples (one exact shadow in flight at a time), hence the
	// generous pass budget; both cells break out as soon as the SLO holds.
	for _, mode := range []struct {
		name      string
		quantized bool
	}{{"adaptive", false}, {"adaptive-quantized", true}} {
		b.Run(mode.name, func(b *testing.B) {
			f := timeSpreadFixture(b)
			if mode.quantized {
				if err := f.sharded.EnableQuantized(0); err != nil {
					b.Fatal(err)
				}
				defer f.sharded.DisableQuantized()
			}
			tn, err := f.sharded.EnableAdaptive(AutoConfig{RecallTarget: slo, ShadowRate: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				tn.Quiesce()
				f.sharded.DisableAdaptive()
				f.sharded.SetProbes(0)
			}()
			// Converged means settled, not merely touched: the SLO must hold
			// with the probe budget unchanged across consecutive passes, so
			// the timed loop measures the configuration the controller
			// actually lands on (post-escalation hysteresis walks probes back
			// down from the ladder top), not a transient.
			var recall float64
			stable, prev := 0, 0
			for pass := 0; pass < 60; pass++ {
				recall = recallAtK(b, f.flat, f.sharded, f.queries, f.qt, k, alpha)
				tn.Quiesce()
				if p := f.sharded.Probes(); recall >= slo && p == prev {
					stable++
				} else {
					stable, prev = 0, p
				}
				if stable >= 3 {
					break
				}
			}
			if recall < slo {
				b.Fatalf("%s recall@5 = %.4f at probes=%d, never reached the %.2f SLO", mode.name, recall, f.sharded.Probes(), slo)
			}
			q := f.queries[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.sharded.TopK(q, f.qt, k, alpha); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			tn.Quiesce()
			b.ReportMetric(recall, "recall@5")
			b.ReportMetric(float64(f.sharded.Probes()), "probes")
		})
	}
	b.Run("exact", func(b *testing.B) {
		f := timeSpreadFixture(b)
		q := f.queries[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.sharded.TopK(q, f.qt, k, alpha); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(1.0, "recall@5")
	})
}

// BenchmarkShardedAdd measures insert throughput with per-shard locking
// (the path Learn takes under concurrent ingest).
func BenchmarkShardedAdd(b *testing.B) {
	for _, impl := range []struct {
		name   string
		shards int
	}{{"flat", 0}, {"sharded8", 8}} {
		b.Run(impl.name, func(b *testing.B) {
			var idx Index
			if impl.shards > 0 {
				idx = NewSharded(benchDim, impl.shards, nil)
			} else {
				idx = New(benchDim)
			}
			v := make([]float64, benchDim)
			at := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := idx.Add(Entry{
					ID:       fmt.Sprintf("INC-%09d", i),
					Vector:   v,
					Category: incident.Category(fmt.Sprintf("cat-%03d", i%163)),
					Time:     at,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// batchRecallAtK measures recall@k of batched serving end to end: queries
// are driven through TopKBatch in batch-sized groups and compared against
// the exact oracle, so the number gauges the whole batched executor, not
// the sequential path it is provably identical to.
func batchRecallAtK(b *testing.B, exact Index, approx Index, queries [][]float64, qt time.Time, batch, k int, alpha float64) float64 {
	b.Helper()
	var hit, total int
	for start := 0; start < len(queries); start += batch {
		end := start + batch
		if end > len(queries) {
			end = len(queries)
		}
		bq := make([]BatchQuery, end-start)
		for i := range bq {
			bq[i] = BatchQuery{Vector: queries[start+i], Time: qt, K: k, Alpha: alpha}
		}
		res, err := approx.TopKBatch(bq)
		if err != nil {
			b.Fatal(err)
		}
		for i, got := range res {
			want, err := exact.TopK(queries[start+i], qt, k, alpha)
			if err != nil {
				b.Fatal(err)
			}
			ids := make(map[string]bool, len(got))
			for _, sc := range got {
				ids[sc.Entry.ID] = true
			}
			for _, sc := range want {
				total++
				if ids[sc.Entry.ID] {
					hit++
				}
			}
		}
	}
	if total == 0 {
		b.Fatal("recall over empty result sets")
	}
	return float64(hit) / float64(total)
}

// measureBatchSpeedup times the same query set served as one TopKBatch
// versus B sequential TopK calls and returns the aggregate-throughput
// ratio. Both sides run long enough (>= ~0.3 s) to drown scheduler noise,
// which matters because this number gates CI.
func measureBatchSpeedup(b *testing.B, idx Index, queries []BatchQuery) float64 {
	b.Helper()
	batched := func() {
		if _, err := idx.TopKBatch(queries); err != nil {
			b.Fatal(err)
		}
	}
	sequential := func() {
		for _, q := range queries {
			if _, err := idx.TopK(q.Vector, q.Time, q.K, q.Alpha); err != nil {
				b.Fatal(err)
			}
		}
	}
	const target = 300 * time.Millisecond
	timeReps := func(fn func()) time.Duration {
		fn() // warm caches and sidecars before timing
		reps := 1
		for {
			start := time.Now()
			for i := 0; i < reps; i++ {
				fn()
			}
			if elapsed := time.Since(start); elapsed >= target {
				return elapsed / time.Duration(reps)
			}
			reps *= 4
		}
	}
	seq := timeReps(sequential)
	bat := timeReps(batched)
	return float64(seq) / float64(bat)
}

// BenchmarkTopKBatch measures scan-once-per-shard batched retrieval at
// probes=2 over the seeded clustered corpora: batch sizes 1/4/16/64 in
// float and int8-quantized mode, at 10k and 100k entries. ns/op is the
// cost of the WHOLE batch (divide by queries/op for per-query cost). Two
// acceptance gates run inside the benchmark so the CI bench smoke
// enforces them: batched recall@5 (measured end to end through
// TopKBatch) must hold the pinned 0.9 floor on the 10k corpus, and the
// float batch=16/n=100k cell must beat sequential serving by >= 1.8×
// aggregate throughput. The gate pins the float scan because that is
// where batching pays: interleaved four-query distance chains and shared
// per-row decay recover the ILP and redundant-epilogue cost a sequential
// full-precision scan pays per query, while the int8 scan's integer MACs
// already pipeline well alone (its cells are measured, not gated).
// Results are recorded in BENCH_retrieval.json.
func BenchmarkTopKBatch(b *testing.B) {
	const k, alpha, probes = 5, 0.3, 2
	const floorN, floorBatch, speedupFloor, recallFloor = 100_000, 16, 1.8, 0.9
	for _, n := range []int{10_000, 100_000} {
		for _, mode := range []string{"float", "quantized"} {
			for _, batch := range []int{1, 4, 16, 64} {
				b.Run(fmt.Sprintf("%s/batch=%d/n=%d", mode, batch, n), func(b *testing.B) {
					f := probeFixtureFor(b, n)
					if err := f.sharded.SetProbes(probes); err != nil {
						b.Fatal(err)
					}
					defer f.sharded.SetProbes(0)
					if mode == "quantized" {
						if err := f.sharded.EnableQuantized(0); err != nil {
							b.Fatal(err)
						}
						defer f.sharded.DisableQuantized()
					}
					recall := batchRecallAtK(b, f.flat, f.sharded, f.queries, f.qt, batch, k, alpha)
					if n == 10_000 && recall < recallFloor {
						b.Fatalf("batched recall@5 = %.4f (%s, batch=%d) on the seeded %d-entry corpus, below the pinned %.2f floor",
							recall, mode, batch, n, recallFloor)
					}
					queries := make([]BatchQuery, batch)
					for i := range queries {
						queries[i] = BatchQuery{Vector: f.queries[i%len(f.queries)], Time: f.qt, K: k, Alpha: alpha}
					}
					if mode == "float" && batch == floorBatch && n == floorN {
						speedup := measureBatchSpeedup(b, f.sharded, queries)
						if speedup < speedupFloor {
							b.Fatalf("batch=%d aggregate throughput = %.2fx sequential (%s, n=%d), below the %.1fx floor",
								batch, speedup, mode, n, speedupFloor)
						}
						defer b.ReportMetric(speedup, "speedup-vs-seq")
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := f.sharded.TopKBatch(queries); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(batch), "queries/op")
					b.ReportMetric(recall, "recall@5")
				})
			}
		}
	}
}

// BenchmarkTenantIsolation pins the multi-tenant serving contract on the
// shared shard pool: a quiet tenant keeps its probe-limited recall while a
// loud co-tenant ingests a 10× corpus skewed into two dense clusters —
// the workload that would drag a shared probe budget (and shared IVF
// geometry) toward the loud tenant's distribution. The quiet tenant's
// namespace carries its own probe budget, so its recall@5 against a
// dedicated flat store must stay >= 0.9; the gate fails the benchmark
// before the timed loop.
func BenchmarkTenantIsolation(b *testing.B) {
	const dim, k, shards = 32, 5, 8
	const quietN = 10_000
	const alpha = 0.3
	quietEntries, queries := clusteredCorpus(99, quietN, dim, 12)
	loudEntries, _ := clusteredCorpus(7, 10*quietN, dim, 2)

	sh := NewSharded(dim, shards, nil)
	quiet := sh.Namespace("quiet")
	dedicated := New(dim)
	for _, e := range quietEntries {
		if err := quiet.Add(e); err != nil {
			b.Fatal(err)
		}
		if err := dedicated.Add(e); err != nil {
			b.Fatal(err)
		}
	}
	loud := sh.Namespace("loud")
	for i, e := range loudEntries {
		e.ID = fmt.Sprintf("LOUD-%07d", i)
		if err := loud.Add(e); err != nil {
			b.Fatal(err)
		}
	}
	// IVF geometry trained on the COMBINED pool: the loud tenant's two
	// blobs dominate the centroid layout, the isolation stress.
	if err := sh.TrainIVF(0); err != nil {
		b.Fatal(err)
	}
	if err := sh.SetNamespaceProbes("quiet", 2); err != nil {
		b.Fatal(err)
	}

	qt := quietEntries[0].Time
	recall := recallAtK(b, dedicated, quiet, queries, qt, k, alpha)
	if recall < 0.9 {
		b.Fatalf("quiet-tenant recall@%d = %.4f under a 10x skewed co-tenant corpus, below the 0.9 isolation floor", k, recall)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quiet.TopK(queries[i%len(queries)], qt, k, alpha); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(recall, "recall@5")
}
