package vectordb

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/incident"
)

// hostilePartitioner routes every route'th entry out of range — the
// misbehaving Partitioner implementation the validation satellite guards
// against.
type hostilePartitioner struct {
	n   int
	dst func(e Entry) int
}

func (h hostilePartitioner) Shards() int       { return h.n }
func (h hostilePartitioner) Route(e Entry) int { return h.dst(e) }

// TestRebalanceRejectsHostilePartitioner: a partitioner returning a shard
// index outside [0, shards) must produce a descriptive error and leave the
// store untouched — contents, shard count, routing, and query results.
func TestRebalanceRejectsHostilePartitioner(t *testing.T) {
	cases := []struct {
		name string
		dst  func(e Entry) int
	}{
		{"negative", func(Entry) int { return -1 }},
		{"equal-to-shards", func(Entry) int { return 3 }},
		{"far-out-of-range", func(Entry) int { return 1 << 20 }},
		{"one-bad-entry", func(e Entry) int {
			if e.ID == "INC-000007" {
				return -5
			}
			return 0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const seed, n, dim, numCats = 31, 60, 4, 6
			sh := NewSharded(dim, 5, nil)
			fillIndex(t, sh, seed, n, dim, numCats)
			qt := time.Date(2022, 1, 6, 0, 0, 0, 0, time.UTC)
			q := []float64{1, 2, 0, 3}
			before, err := sh.TopK(q, qt, 10, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			prevShards, prevParts, prevEpoch := sh.NumShards(), sh.Partitioner(), sh.Epoch()

			err = sh.Rebalance(hostilePartitioner{n: 3, dst: tc.dst})
			if err == nil {
				t.Fatal("hostile partitioner must be rejected")
			}
			if got := err.Error(); !strings.Contains(got, "routed entry") {
				t.Fatalf("error %q is not descriptive about the bad route", got)
			}
			if sh.Len() != n {
				t.Fatalf("Len = %d after rejected rebalance, want %d", sh.Len(), n)
			}
			if sh.NumShards() != prevShards || sh.Partitioner() != prevParts || sh.Epoch() != prevEpoch {
				t.Fatal("rejected rebalance changed routing state")
			}
			after, err := sh.TopK(q, qt, 10, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			sameScored(t, "hostile-"+tc.name, after, before)
		})
	}
}

// TestAddRejectsHostileRoute: Add itself validates the partitioner's
// placement, so a store constructed over a hostile partitioner errors
// instead of panicking or corrupting.
func TestAddRejectsHostileRoute(t *testing.T) {
	sh := NewSharded(2, 0, hostilePartitioner{n: 3, dst: func(Entry) int { return 7 }})
	err := sh.Add(entry("a", "X", []float64{1, 2}, 0))
	if err == nil {
		t.Fatal("Add through a hostile partitioner must fail")
	}
	if sh.Len() != 0 {
		t.Fatalf("Len = %d after rejected Add", sh.Len())
	}
	// The rejected ID is not leaked into the duplicate filter: a later
	// valid store (same partitioner type, in-range) accepts it.
	if _, ok := sh.Get("a"); ok {
		t.Fatal("rejected entry is visible")
	}
}

// gatedPartitioner blocks inside Route for one sentinel entry until the
// gate closes — it simulates a slow migration step so tests can prove
// ingest and queries flow while a rebalance is mid-drain. The sentinel's
// first routing is Rebalance's pre-validation pass; the block engages on
// the second, which is the drain itself.
type gatedPartitioner struct {
	n        int
	sentinel string
	gate     chan struct{}
	entered  chan struct{}
	seen     atomic.Int32
	once     sync.Once
}

func (g *gatedPartitioner) Shards() int { return g.n }
func (g *gatedPartitioner) Route(e Entry) int {
	if e.ID == g.sentinel && g.seen.Add(1) == 2 {
		g.once.Do(func() { close(g.entered) })
		<-g.gate
	}
	return 0
}

// TestRebalanceDoesNotStopTheWorld is the online-rebalance acceptance
// test: with a Rebalance wedged mid-drain (its partitioner blocked on a
// gate), Add, TopK, TopKDiverse, Get and Len must all complete — the old
// stop-the-world implementation held the store-wide lock exclusively for
// the whole rebalance and would deadlock this test.
func TestRebalanceDoesNotStopTheWorld(t *testing.T) {
	const dim = 2
	sh := NewSharded(dim, 4, nil)
	for i := 0; i < 12; i++ {
		must(t, sh.Add(entry(fmt.Sprintf("SEED-%02d", i), incident.Category(fmt.Sprintf("c%d", i%3)), []float64{float64(i), 1}, 0)))
	}

	gp := &gatedPartitioner{n: 3, sentinel: "SEED-00", gate: make(chan struct{}), entered: make(chan struct{})}
	rebDone := make(chan error, 1)
	go func() { rebDone <- sh.Rebalance(gp) }()

	select {
	case <-gp.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("rebalance never reached the drain")
	}
	if !sh.Rebalancing() {
		t.Fatal("store does not report an in-flight rebalance")
	}

	// The rebalance is now wedged mid-drain. Everything else must flow.
	ops := make(chan error, 1)
	go func() {
		if err := sh.Add(entry("NEW-1", "c9", []float64{5, 5}, 0)); err != nil {
			ops <- err
			return
		}
		if _, err := sh.TopK([]float64{5, 5}, t0, 5, 0.3); err != nil {
			ops <- err
			return
		}
		if _, err := sh.TopKDiverse([]float64{5, 5}, t0, 5, 0.3); err != nil {
			ops <- err
			return
		}
		if _, ok := sh.Get("NEW-1"); !ok {
			ops <- fmt.Errorf("Get(NEW-1) missed mid-rebalance")
			return
		}
		if got := sh.Len(); got != 13 {
			ops <- fmt.Errorf("Len = %d mid-rebalance, want 13", got)
			return
		}
		ops <- nil
	}()
	select {
	case err := <-ops:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Add/TopK blocked behind an in-flight rebalance (store-wide exclusive lock?)")
	}

	// Mid-rebalance queries stay exact: identical to a flat store over the
	// deduplicated snapshot.
	flat := New(dim)
	for _, e := range sh.snapshotSortedByID() {
		must(t, flat.Add(e))
	}
	queryGrid(t, "mid-rebalance", flat, sh, 41, sh.Len(), dim)

	close(gp.gate)
	if err := <-rebDone; err != nil {
		t.Fatal(err)
	}
	if sh.Rebalancing() {
		t.Fatal("rebalance still reported in flight after completion")
	}
	if sh.NumShards() != 3 {
		t.Fatalf("NumShards = %d after rebalance, want 3", sh.NumShards())
	}
	if got := sh.Len(); got != 13 {
		t.Fatalf("Len = %d after rebalance, want 13 (drain dropped or duplicated entries)", got)
	}
	if _, ok := sh.Get("NEW-1"); !ok {
		t.Fatal("entry added mid-rebalance lost after the drain")
	}
	queryGrid(t, "post-gated-rebalance", flat, sh, 43, sh.Len(), dim)
}

// idSet collects every entry ID via the deduplicated snapshot.
func idSet(s *Sharded) map[string]bool {
	out := make(map[string]bool)
	for _, e := range s.snapshotSortedByID() {
		out[e.ID] = true
	}
	return out
}

// TestIncrementalRebalanceHammer is the race hammer from the satellite
// checklist: concurrent Add + TopK/TopKDiverse/Get with TrainIVF and
// Rebalance repeatedly mid-flight. Run under -race it proves the locking;
// after quiesce, Len and the ID set must show no dropped or duplicated
// entries and results must match a flat reference exactly.
func TestIncrementalRebalanceHammer(t *testing.T) {
	const writers, readers, rebalancers, perG = 4, 3, 2, 120
	sh := NewSharded(4, 6, nil)
	at := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		must(t, sh.Add(Entry{
			ID:       fmt.Sprintf("SEED-%d", i),
			Vector:   []float64{float64(i), 1, 2, 3},
			Category: incident.Category(fmt.Sprintf("c%d", i%3)),
			Time:     at,
		}))
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := sh.Add(Entry{
					ID:       fmt.Sprintf("W%d-%04d", w, i),
					Vector:   []float64{float64(i % 7), float64(w), 0, 1},
					Category: incident.Category(fmt.Sprintf("c%d", i%5)),
					Time:     at.AddDate(0, 0, i%30),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			q := []float64{float64(r), 1, 1, 1}
			for i := 0; i < perG; i++ {
				if _, err := sh.TopK(q, at, 5, 0.3); err != nil {
					t.Error(err)
					return
				}
				if _, err := sh.TopKDiverse(q, at.AddDate(0, 0, i%30), 5, 0.3); err != nil {
					t.Error(err)
					return
				}
				sh.Get(fmt.Sprintf("W%d-%04d", r, i))
				sh.Len()
				sh.ShardLens()
			}
		}(r)
	}
	for b := 0; b < rebalancers; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if b == 0 {
					if err := sh.TrainIVF(2); err != nil {
						t.Error(err)
						return
					}
				} else {
					if err := sh.Rebalance(CategoryHash{N: 3 + i%4}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(b)
	}
	wg.Wait()

	// Quiesced invariants: exact count, exact ID set, no dups, no losses.
	wantLen := 10 + writers*perG
	if got := sh.Len(); got != wantLen {
		t.Fatalf("Len = %d, want %d", got, wantLen)
	}
	ids := idSet(sh)
	if len(ids) != wantLen {
		t.Fatalf("ID set has %d entries, want %d (drops or duplicates)", len(ids), wantLen)
	}
	for i := 0; i < 10; i++ {
		if !ids[fmt.Sprintf("SEED-%d", i)] {
			t.Fatalf("SEED-%d lost", i)
		}
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perG; i++ {
			if !ids[fmt.Sprintf("W%d-%04d", w, i)] {
				t.Fatalf("W%d-%04d lost", w, i)
			}
		}
	}
	flat := New(4)
	for _, e := range sh.snapshotSortedByID() {
		must(t, flat.Add(e))
	}
	queryGrid(t, "post-rebalance-hammer", flat, sh, 53, sh.Len(), 4)
}

// TestRebalanceConcurrentWithSaveLoad exercises persistence against an
// in-flight drain: Save mid-rebalance must produce a deduplicated
// snapshot a fresh store loads cleanly.
func TestRebalanceConcurrentWithSaveLoad(t *testing.T) {
	const dim = 2
	sh := NewSharded(dim, 4, nil)
	for i := 0; i < 30; i++ {
		must(t, sh.Add(entry(fmt.Sprintf("INC-%03d", i), incident.Category(fmt.Sprintf("c%d", i%4)), []float64{float64(i), 2}, 0)))
	}
	gp := &gatedPartitioner{n: 2, sentinel: "INC-000", gate: make(chan struct{}), entered: make(chan struct{})}
	rebDone := make(chan error, 1)
	go func() { rebDone <- sh.Rebalance(gp) }()
	<-gp.entered

	var buf bytes.Buffer
	if err := sh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	close(gp.gate)
	if err := <-rebDone; err != nil {
		t.Fatal(err)
	}

	fresh := NewSharded(dim, 3, nil)
	if err := fresh.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 30 {
		t.Fatalf("mid-rebalance snapshot loaded %d entries, want 30", fresh.Len())
	}
	ids := idSet(fresh)
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	if len(sorted) != 30 || sorted[0] != "INC-000" || sorted[29] != "INC-029" {
		t.Fatalf("snapshot ID set wrong: %d ids, first %s last %s", len(sorted), sorted[0], sorted[len(sorted)-1])
	}
}
