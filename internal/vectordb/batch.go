package vectordb

import (
	"fmt"
	"math"
	"time"

	"repro/internal/incident"
	"repro/internal/parallel"
)

// BatchQuery is one query of a TopKBatch call. Each query carries its own
// anchor time, k, decay coefficient, and diversity flag, so one batch can
// mix heterogeneous retrievals (the daemon's micro-batcher coalesces
// whatever arrives).
type BatchQuery struct {
	Vector []float64
	Time   time.Time
	K      int
	Alpha  float64
	// Diverse applies the §4.2.2 category-diversity constraint (each
	// category at most once), i.e. the query behaves like TopKDiverse
	// instead of TopK.
	Diverse bool
	// Namespace + Scoped pin the query to one namespace view: when Scoped
	// is set the query sees only entries tagged Namespace (Namespace = ""
	// meaning the default namespace), exactly like TopK through
	// Index.Namespace. Scoped=false (the zero value) is the unscoped root
	// query over every entry — the pre-namespace behavior.
	Namespace string
	Scoped    bool
}

// bqScope is the query's namespace filter in scan-scope form.
func bqScope(bq *BatchQuery) scope { return scope{on: bq.Scoped, ns: bq.Namespace} }

// scopedQueries clones a batch with every member pinned to one namespace
// view's scope — how the view and batcher adapters scope a whole batch.
func scopedQueries(queries []BatchQuery, ns string) []BatchQuery {
	out := make([]BatchQuery, len(queries))
	copy(out, queries)
	for i := range out {
		out[i].Namespace = ns
		out[i].Scoped = true
	}
	return out
}

// TopKBatch on the flat store: one streaming pass over the columnar
// backing serving every query — rows load once and each query consumes
// them from its own bounded accumulator — with results bit-identical to
// issuing the queries sequentially.
func (db *DB) TopKBatch(queries []BatchQuery) ([][]Scored, error) {
	for i := range queries {
		if err := db.checkQuery(queries[i].Vector, queries[i].K); err != nil {
			return nil, fmt.Errorf("vectordb: batch query %d: %w", i, err)
		}
	}
	out := make([][]Scored, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	heaps := make([]worstFirst, len(queries))
	bests := make([]map[incident.Category]Scored, len(queries))
	for i := range queries {
		if queries[i].Diverse {
			bests[i] = make(map[incident.Category]Scored)
		} else {
			heaps[i] = make(worstFirst, 0, queries[i].K+1)
		}
	}
	db.mu.RLock()
	for i := range db.entries {
		row := db.row(i)
		et := db.entries[i].Time
		for qi := range queries {
			bq := &queries[qi]
			if !bqScope(bq).match(db.entries[i].Namespace) {
				continue
			}
			d, sim := similarityAt(bq.Vector, bq.Time, row, et, bq.Alpha)
			sc := Scored{Entry: db.entries[i], Distance: d, Similarity: sim}
			if bq.Diverse {
				if cur, ok := bests[qi][sc.Entry.Category]; !ok || ranksAfter(cur, sc) {
					bests[qi][sc.Entry.Category] = sc
				}
			} else {
				h := &heaps[qi]
				if len(*h) == bq.K {
					if r := &(*h)[0]; r.Similarity > sim || (r.Similarity == sim && r.Entry.ID < sc.Entry.ID) {
						continue
					}
				}
				h.offer(sc, bq.K)
			}
		}
	}
	// Materialize winners while still under the store lock.
	for qi := range queries {
		if queries[qi].Diverse {
			h := make(worstFirst, 0, queries[qi].K+1)
			for _, sc := range bests[qi] {
				sc.Entry.Vector = append([]float64(nil), db.row(db.byID[sc.Entry.ID])...)
				h.offer(sc, queries[qi].K)
			}
			out[qi] = h.drain()
		} else {
			h := &heaps[qi]
			for i := range *h {
				(*h)[i].Entry.Vector = append([]float64(nil), db.row(db.byID[(*h)[i].Entry.ID])...)
			}
			out[qi] = h.drain()
		}
	}
	db.mu.RUnlock()
	return out, nil
}

// shardScanResult carries one shard's per-query local results back to the
// batch merge, keyed by batch index: bounded top-k lists for plain
// queries, category-best maps for diverse ones.
type shardScanResult struct {
	topk map[int][]Scored
	best map[int]map[incident.Category]Scored
}

// scanBatch walks the shard's backing once for a set of queries: floatQ
// are scanned at full precision (one pass over the columnar float rows,
// every member query scoring each row), quantQ through the int8 sidecar
// (one pass over the codes collecting k×overfetch candidates per query,
// then the exact re-rank). ofs carries each query's effective overfetch
// factor indexed by batch position (nil when no query is quantized).
// Namespace-scoped queries skip rows outside their namespace, exactly
// like the sequential scoped scans. Per-query decisions — threshold
// pre-checks, candidate heaps, tie-breaks — replicate the sequential
// single-query scans exactly, so each query's local result is
// bit-identical to what topK/categoryBest/topKQuantized would have
// returned for it.
func (sh *shard) scanBatch(queries []BatchQuery, floatQ, quantQ []int, ofs []int) shardScanResult {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	res := shardScanResult{topk: make(map[int][]Scored), best: make(map[int]map[incident.Category]Scored)}
	if len(quantQ) > 0 {
		q := sh.quant
		if q == nil || len(q.codes) != len(sh.entries)*sh.dim {
			// Sidecar missing or momentarily out of sync: serve these
			// queries at full precision, exactly like the sequential
			// fallback in topKQuantized.
			floatQ = append(append([]int(nil), floatQ...), quantQ...)
			quantQ = nil
		}
	}
	if len(floatQ) > 0 {
		sh.scanBatchFloat(queries, floatQ, &res)
	}
	if len(quantQ) > 0 {
		sh.scanBatchQuantized(queries, quantQ, ofs, &res)
	}
	return res
}

// scanBatchFloat is the full-precision half of scanBatch: one walk of the
// columnar rows, every member query maintaining its own bounded heap (or
// category-best map) with the same pre-checks as the sequential scan.
// Caller holds sh.mu.
func (sh *shard) scanBatchFloat(queries []BatchQuery, floatQ []int, res *shardScanResult) {
	heaps := make([]worstFirst, len(floatQ))
	bests := make([]map[incident.Category]Scored, len(floatQ))
	// Queries with an identical (Time, Alpha) pair — a flush anchored at
	// one clock reading — share every row's decay factor, so group them
	// and compute exp(-α·Δt) once per row per group instead of once per
	// row per query. similarityAt's 1/(1+dist)·exp(−α·days) is the same
	// two-operand product either way (struct-equal Times subtract
	// identically), so grouping cannot change a bit of any result.
	type groupKey struct {
		t     time.Time
		alpha float64
	}
	type decayGroup struct {
		qt      time.Time
		alpha   float64
		members []int // indices into floatQ
	}
	var groups []*decayGroup
	byKey := make(map[groupKey]*decayGroup, len(floatQ))
	for j, qi := range floatQ {
		if queries[qi].Diverse {
			bests[j] = make(map[incident.Category]Scored)
		} else {
			heaps[j] = make(worstFirst, 0, queries[qi].K+1)
		}
		gk := groupKey{queries[qi].Time, queries[qi].Alpha}
		g := byKey[gk]
		if g == nil {
			g = &decayGroup{qt: queries[qi].Time, alpha: queries[qi].Alpha}
			byKey[gk] = g
			groups = append(groups, g)
		}
		g.members = append(g.members, j)
	}
	// commit applies one scored row to member j with the exact sequential
	// pre-check and tie-break.
	commit := func(i, j int, dist, decay float64) {
		sim := 1 / (1 + dist) * decay
		bq := &queries[floatQ[j]]
		if bq.Diverse {
			sc := Scored{Entry: sh.entries[i], Distance: dist, Similarity: sim}
			if cur, ok := bests[j][sc.Entry.Category]; !ok || ranksAfter(cur, sc) {
				bests[j][sc.Entry.Category] = sc
			}
			return
		}
		h := &heaps[j]
		if len(*h) == bq.K {
			if r := &(*h)[0]; r.Similarity > sim || (r.Similarity == sim && r.Entry.ID < sh.entries[i].ID) {
				return
			}
		}
		h.offer(Scored{Entry: sh.entries[i], Distance: dist, Similarity: sim}, bq.K)
	}
	pend := make([]int, 0, len(floatQ))
	for i := range sh.entries {
		row := sh.row(i)
		et := sh.entries[i].Time
		for _, g := range groups {
			days := math.Abs(g.qt.Sub(et).Hours()) / 24
			decay := math.Exp(-g.alpha * days)
			pend = pend[:0]
			for _, j := range g.members {
				bq := &queries[floatQ[j]]
				if bq.Scoped && bq.Namespace != sh.entries[i].Namespace {
					continue
				}
				if !bq.Diverse {
					if h := &heaps[j]; len(*h) == bq.K && decay < (*h)[0].Similarity {
						// sim = decay/(1+dist) <= decay: this row cannot
						// displace the worst kept one, skip the dot.
						continue
					}
				}
				pend = append(pend, j)
			}
			// Distances for the row's contenders, four queries per pass:
			// the four accumulator chains are independent, so the CPU
			// overlaps the additions a lone Distance call serializes.
			// Each chain keeps Distance's dimension order, so every
			// query's value is bit-identical to its scalar scan.
			base := 0
			for ; base+4 <= len(pend); base += 4 {
				j0, j1, j2, j3 := pend[base], pend[base+1], pend[base+2], pend[base+3]
				d0, d1, d2, d3 := distance4(
					queries[floatQ[j0]].Vector, queries[floatQ[j1]].Vector,
					queries[floatQ[j2]].Vector, queries[floatQ[j3]].Vector, row)
				commit(i, j0, d0, decay)
				commit(i, j1, d1, decay)
				commit(i, j2, d2, decay)
				commit(i, j3, d3, decay)
			}
			for _, j := range pend[base:] {
				commit(i, j, Distance(queries[floatQ[j]].Vector, row), decay)
			}
		}
	}
	for j, qi := range floatQ {
		if queries[qi].Diverse {
			best := bests[j]
			for cat, sc := range best {
				sc.Entry.Vector = append([]float64(nil), sh.row(sh.byID[sc.Entry.ID])...)
				best[cat] = sc
			}
			res.best[qi] = best
		} else {
			h := &heaps[j]
			for i := range *h {
				(*h)[i].Entry.Vector = append([]float64(nil), sh.row(sh.byID[(*h)[i].Entry.ID])...)
			}
			res.topk[qi] = h.drain()
		}
	}
}

// distance4 computes four queries' Euclidean distances to one row in a
// single pass over the dimensions. Each accumulator sums in exactly
// Distance's order — the four chains are merely independent, letting the
// CPU pipeline additions that a scalar call serializes — so every result
// is bit-identical to Distance on the same pair.
func distance4(a0, a1, a2, a3, row []float64) (d0, d1, d2, d3 float64) {
	var s0, s1, s2, s3 float64
	for i := range row {
		r := row[i]
		t0 := a0[i] - r
		s0 += t0 * t0
		t1 := a1[i] - r
		s1 += t1 * t1
		t2 := a2[i] - r
		s2 += t2 * t2
		t3 := a3[i] - r
		s3 += t3 * t3
	}
	return math.Sqrt(s0), math.Sqrt(s1), math.Sqrt(s2), math.Sqrt(s3)
}

// scanBatchQuantized is the int8 half of scanBatch: one walk of the
// sidecar codes maintaining every member query's candidate heap — the
// hoisted per-query state (wq, q², threshold) and per-row arithmetic are
// identical to scanQuantized's — followed by the per-query exact re-rank.
// Each query's candidate pool is k times ITS overfetch factor (per-
// namespace escalation means co-batched tenants can carry different
// factors). Caller holds sh.mu and has verified the sidecar is in sync.
func (sh *shard) scanBatchQuantized(queries []BatchQuery, quantQ []int, ofs []int, res *shardScanResult) {
	q := sh.quant
	dim := sh.dim
	type qstate struct {
		wq     []int64
		q2     int64
		qdays  float64
		alpha  float64
		want   int
		thr    float64
		scoped bool
		ns     string
		cands  qHeap
	}
	states := make([]qstate, len(quantQ))
	for j, qi := range quantQ {
		bq := &queries[qi]
		qq := q.encodeQuery(bq.Vector)
		st := qstate{
			wq:     make([]int64, dim),
			qdays:  daysOf(bq.Time),
			alpha:  bq.Alpha,
			want:   bq.K * ofs[qi],
			thr:    math.Inf(-1),
			scoped: bq.Scoped,
			ns:     bq.Namespace,
		}
		for d, c := range qq[:dim] {
			st.wq[d] = q.w[d] * c
			st.q2 += st.wq[d] * c
		}
		st.cands = make(qHeap, 0, min(st.want, len(sh.entries))+1)
		states[j] = st
	}
	for i := range sh.entries {
		row := q.codes[i*dim : i*dim+dim]
		for j := range states {
			st := &states[j]
			if st.scoped && st.ns != sh.entries[i].Namespace {
				continue
			}
			var dot int64
			for d, c := range row {
				dot += st.wq[d] * int64(c)
			}
			acc := q.s2[i] + st.q2 - 2*dot
			dist := q.unit * math.Sqrt(float64(acc))
			dt := st.qdays - q.days[i]
			if dt < 0 {
				dt = -dt
			}
			decay := fastExp(-st.alpha * dt)
			if decay <= st.thr*(1+dist) {
				continue
			}
			st.cands.offer(qCand{idx: i, sim: decay / (1 + dist)}, st.want)
			if len(st.cands) == st.want {
				st.thr = st.cands[0].sim
			}
		}
	}
	for j, qi := range quantQ {
		bq := &queries[qi]
		if bq.Diverse {
			best := make(map[incident.Category]Scored)
			for _, c := range states[j].cands {
				d, sim := similarityAt(bq.Vector, bq.Time, sh.row(c.idx), sh.entries[c.idx].Time, bq.Alpha)
				sc := Scored{Entry: sh.entries[c.idx], Distance: d, Similarity: sim}
				if cur, ok := best[sc.Entry.Category]; !ok || ranksAfter(cur, sc) {
					best[sc.Entry.Category] = sc
				}
			}
			for cat, sc := range best {
				sc.Entry.Vector = append([]float64(nil), sh.row(sh.byID[sc.Entry.ID])...)
				best[cat] = sc
			}
			res.best[qi] = best
		} else {
			h := make(worstFirst, 0, bq.K+1)
			for _, c := range states[j].cands {
				d, sim := similarityAt(bq.Vector, bq.Time, sh.row(c.idx), sh.entries[c.idx].Time, bq.Alpha)
				h.offer(Scored{Entry: sh.entries[c.idx], Distance: d, Similarity: sim}, bq.K)
			}
			for i := range h {
				h[i].Entry.Vector = append([]float64(nil), sh.row(sh.byID[h[i].Entry.ID])...)
			}
			res.topk[qi] = h.drain()
		}
	}
}

// shardScan is one shard's work item in a batch round: the queries that
// consume it, split by scan mode.
type shardScan struct {
	sh     *shard
	floatQ []int
	quantQ []int
}

// batchPlan tracks one query's probe state across batch rounds.
type batchPlan struct {
	probed bool
	quant  bool
	// ranked/consumed drive per-query budget growth (EnablePerQueryProbes):
	// the full probe ranking and how many of its partitions the query has
	// scanned so far. done latches once growth stops.
	ranked   []probeCand
	consumed int
	done     bool
}

// TopKBatch executes a batch of queries with results bit-identical to
// issuing each query sequentially through TopK/TopKDiverse: probe
// selection runs per query against the same ranking, shards are visited
// in the union of the per-query selections, and each probed shard's
// backing (columnar floats, or the int8 sidecar on the quantized path) is
// scanned ONCE for all the queries that selected it — the
// memory-bandwidth-dominated row stream amortizes across the batch the
// way a blocked matmul amortizes operand loads. Each query consumes rows
// only from shards its own budget selected.
//
// With EnablePerQueryProbes, probed queries instead seed at the effective
// (tuner-converged) probe budget and then grow their own budget shard by
// shard while the next-ranked partition's optimistic best-similarity
// estimate still exceeds the query's current k-th result by more than the
// configured margin — easy queries stop at the seed, hard ones escalate —
// trading strict sequential bit-identity for per-query recall targeting;
// the tuner's shadow sampling observes the batched results end-to-end.
func (s *Sharded) TopKBatch(queries []BatchQuery) ([][]Scored, error) {
	for i := range queries {
		if err := checkQuery(s.dim, queries[i].Vector, queries[i].K); err != nil {
			return nil, fmt.Errorf("vectordb: batch query %d: %w", i, err)
		}
	}
	out := make([][]Scored, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	s.batchQueries.Add(int64(len(queries)))

	s.mu.RLock()
	defer s.mu.RUnlock()
	draining, current := s.liveShards()
	if draining != nil {
		return s.topKBatchDraining(queries, draining, current)
	}

	quantOn := s.quantized.Load()
	perQuery := s.perQuery.Load()
	minGain := math.Float64frombits(s.perQueryGain.Load())

	// Per-query serving knobs: each query resolves its namespace's probe
	// budget, overfetch factor, and controller — unscoped and default-
	// namespace queries resolve to the root store's, the pre-namespace
	// behavior.
	nsSts := make([]*nsState, len(queries))
	ofs := make([]int, len(queries))
	for qi := range queries {
		nsSts[qi] = s.scopeNS(bqScope(&queries[qi]))
		ofs[qi] = s.overfetchFor(nsSts[qi])
	}

	// Plan round 0: per-query probe selection (the same ranking sequential
	// probeShards uses), grouped into one scan per selected shard.
	plans := make([]batchPlan, len(queries))
	var round []*shardScan
	scanFor := make(map[*shard]*shardScan)
	nominate := func(sh *shard, qi int, quant bool) {
		sc := scanFor[sh]
		if sc == nil {
			sc = &shardScan{sh: sh}
			scanFor[sh] = sc
			round = append(round, sc)
		}
		if quant {
			sc.quantQ = append(sc.quantQ, qi)
		} else {
			sc.floatQ = append(sc.floatQ, qi)
		}
	}
	for qi := range queries {
		bq := &queries[qi]
		pl := &plans[qi]
		p := s.probesFor(nsSts[qi])
		var sel []*shard
		if perQuery {
			ranked := s.rankedProbeCands(s.gen, bq.Vector, bq.Time, bq.Alpha, p)
			if ranked != nil && len(ranked) > p {
				pl.ranked = ranked
				pl.consumed = p
				sel = make([]*shard, p)
				for i := range sel {
					sel[i] = ranked[i].sh
				}
			}
		} else if sel = s.probeShards(s.gen, bq.Vector, bq.Time, bq.Alpha, p); sel != nil {
			pl.done = true // fixed budget: no growth rounds
		}
		if sel == nil {
			sel = current
			pl.done = true
		} else {
			pl.probed = true
			pl.quant = quantOn
			if quantOn {
				s.noteQuantScan(nsSts[qi])
			}
		}
		for _, sh := range sel {
			nominate(sh, qi, pl.quant)
		}
	}

	// Per-query merge accumulators, fed round by round.
	heaps := make([]worstFirst, len(queries))
	bests := make([]map[incident.Category]Scored, len(queries))
	for qi := range queries {
		if queries[qi].Diverse {
			bests[qi] = make(map[incident.Category]Scored)
		} else {
			heaps[qi] = make(worstFirst, 0, queries[qi].K+1)
		}
	}
	runRound := func(scans []*shardScan) error {
		results, err := parallel.Map(len(scans), 0, func(i int) (shardScanResult, error) {
			return scans[i].sh.scanBatch(queries, scans[i].floatQ, scans[i].quantQ, ofs), nil
		})
		if err != nil {
			return err
		}
		for _, r := range results {
			for qi, scs := range r.topk {
				for _, sc := range scs {
					heaps[qi].offer(sc, queries[qi].K)
				}
			}
			for qi, m := range r.best {
				for cat, sc := range m {
					if cur, ok := bests[qi][cat]; !ok || ranksAfter(cur, sc) {
						bests[qi][cat] = sc
					}
				}
			}
		}
		return nil
	}
	if err := runRound(round); err != nil {
		return nil, err
	}

	// Growth rounds: each still-growing query nominates its next-ranked
	// partition while the optimistic marginal gain clears the threshold;
	// nominated shards are again scanned once each for every nominating
	// query.
	for perQuery {
		round = round[:0]
		scanFor = make(map[*shard]*shardScan)
		for qi := range queries {
			pl := &plans[qi]
			if pl.done || pl.consumed >= len(pl.ranked) {
				pl.done = true
				continue
			}
			kth, full := s.batchKth(&queries[qi], heaps[qi], bests[qi])
			next := pl.ranked[pl.consumed]
			if full && next.est-kth <= minGain {
				pl.done = true
				continue
			}
			nominate(next.sh, qi, pl.quant)
			pl.consumed++
			s.batchEscalations.Add(1)
		}
		if len(round) == 0 {
			break
		}
		if err := runRound(round); err != nil {
			return nil, err
		}
	}

	for qi := range queries {
		if queries[qi].Diverse {
			h := make(worstFirst, 0, queries[qi].K+1)
			for _, sc := range bests[qi] {
				h.offer(sc, queries[qi].K)
			}
			out[qi] = h.drain()
		} else {
			out[qi] = heaps[qi].drain()
		}
	}
	// Feed every batched query through the same shadow-sampling hook as
	// sequential serving — each into ITS namespace's controller — so every
	// tenant's observed recall measures the batched path end-to-end.
	for qi := range queries {
		if t := s.tunerFor(nsSts[qi]); t != nil {
			t.observeQuery(queries[qi].Vector, queries[qi].Time, queries[qi].K, queries[qi].Alpha,
				out[qi], plans[qi].probed, queries[qi].Diverse, bqScope(&queries[qi]))
		}
	}
	return out, nil
}

// batchKth returns a query's current k-th-best similarity from its merge
// accumulator, and whether it already holds k results (a query below k
// always keeps growing).
func (s *Sharded) batchKth(bq *BatchQuery, h worstFirst, best map[incident.Category]Scored) (float64, bool) {
	if bq.Diverse {
		if len(best) < bq.K {
			return 0, false
		}
		kh := make(worstFirst, 0, bq.K+1)
		for _, sc := range best {
			kh.offer(sc, bq.K)
		}
		return kh[0].Similarity, true
	}
	if len(h) < bq.K {
		return 0, false
	}
	return h[0].Similarity, true
}

// topKBatchDraining is TopKBatch with a rebalance in flight: every query
// fans out exactly over both generations — the draining shards scanned
// (and merged) before the current ones, duplicates collapsed by ID, the
// same no-miss/no-double-count argument as the sequential mid-rebalance
// path. Caller holds s.mu shared.
func (s *Sharded) topKBatchDraining(queries []BatchQuery, draining, current []*shard) ([][]Scored, error) {
	shards := append(append([]*shard(nil), draining...), current...)
	all := make([]int, len(queries))
	for i := range all {
		all[i] = i
	}
	results, err := parallel.Map(len(shards), 0, func(i int) (shardScanResult, error) {
		return shards[i].scanBatch(queries, all, nil, nil), nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]Scored, len(queries))
	for qi := range queries {
		bq := &queries[qi]
		if bq.Diverse {
			best := make(map[incident.Category]Scored)
			for _, r := range results {
				for cat, sc := range r.best[qi] {
					if cur, ok := best[cat]; !ok || ranksAfter(cur, sc) {
						best[cat] = sc
					}
				}
			}
			h := make(worstFirst, 0, bq.K+1)
			for _, sc := range best {
				h.offer(sc, bq.K)
			}
			out[qi] = h.drain()
		} else {
			seen := make(map[string]bool, 2*bq.K)
			h := make(worstFirst, 0, bq.K+1)
			for _, r := range results { // draining shards first, then current
				for _, sc := range r.topk[qi] {
					if seen[sc.Entry.ID] {
						continue
					}
					seen[sc.Entry.ID] = true
					h.offer(sc, bq.K)
				}
			}
			out[qi] = h.drain()
		}
	}
	return out, nil
}

// EnablePerQueryProbes opts the batch executor into per-query probe
// budgets: each probed batch query seeds at the effective (tuner-owned or
// manual) probe budget, then grows its own budget one partition at a time
// while the next-ranked partition's optimistic best-similarity estimate
// exceeds the query's current k-th result by more than minGain — so easy
// queries stop at the seed while hard ones escalate toward full fan-out.
// Results may then differ from sequential single-query serving (which is
// why the mode is opt-in and the bit-identity goldens run without it);
// the adaptive tuner's shadow sampling still measures the served batched
// results end-to-end. minGain must be non-negative and finite; 0 grows
// whenever any improvement looks possible.
func (s *Sharded) EnablePerQueryProbes(minGain float64) error {
	if math.IsNaN(minGain) || minGain < 0 {
		return fmt.Errorf("vectordb: per-query probe gain threshold %v must be a non-negative number", minGain)
	}
	s.perQueryGain.Store(math.Float64bits(minGain))
	s.perQuery.Store(true)
	return nil
}

// DisablePerQueryProbes restores fixed-budget batch probing (the
// bit-identical default).
func (s *Sharded) DisablePerQueryProbes() { s.perQuery.Store(false) }

// PerQueryProbes reports whether batch queries grow per-query probe
// budgets.
func (s *Sharded) PerQueryProbes() bool { return s.perQuery.Load() }

// BatchEscalations returns how many partitions batch queries have scanned
// beyond their seeded probe budget (EnablePerQueryProbes).
func (s *Sharded) BatchEscalations() int { return int(s.batchEscalations.Load()) }

// BatchQueries returns how many queries have been served through
// TopKBatch.
func (s *Sharded) BatchQueries() int { return int(s.batchQueries.Load()) }
