package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 100
		counts := make([]atomic.Int32, n)
		if err := ForEach(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := ForEach(1, 4, func(i int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("single item did not run")
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	// Make high indices fail fast and low indices fail slow: the returned
	// error must still be the lowest failing index.
	err := ForEach(64, 8, func(i int) error {
		if i == 3 {
			time.Sleep(10 * time.Millisecond)
			return fmt.Errorf("err-%d", i)
		}
		if i >= 32 {
			return fmt.Errorf("err-%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "err-3" {
		t.Fatalf("err = %v, want err-3", err)
	}
}

func TestForEachSequentialStopsAtFirstError(t *testing.T) {
	var ran []int
	err := ForEach(10, 1, func(i int) error {
		ran = append(ran, i)
		if i == 4 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 5 {
		t.Fatalf("sequential path ran %v, want exactly 0..4", ran)
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if s, ok := r.(string); !ok || s != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	_ = ForEach(32, 4, func(i int) error {
		if i == 7 {
			panic("kaboom")
		}
		return nil
	})
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	out, err := Map(50, 0, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if _, err := Map(10, 4, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("mapfail")
		}
		return i, nil
	}); err == nil || err.Error() != "mapfail" {
		t.Fatalf("err = %v", err)
	}
}

func TestBudgetIsSharedAndRestored(t *testing.T) {
	old := SetLimit(3)
	defer SetLimit(old)

	// A nested ForEach must draw from the same budget: the outer call takes
	// extras, leaving fewer for inner calls, and everything still completes.
	var maxInFlight, inFlight atomic.Int64
	track := func() func() {
		cur := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if cur <= m || maxInFlight.CompareAndSwap(m, cur) {
				break
			}
		}
		return func() { inFlight.Add(-1) }
	}
	err := ForEach(8, 8, func(i int) error {
		done := track()
		defer done()
		return ForEach(8, 8, func(j int) error {
			done := track()
			defer done()
			time.Sleep(time.Millisecond)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Budget 3 extras + 1 caller = 4 goroutines; nesting counts the outer
	// frame and its inline inner frame on the same goroutine, so in-flight
	// frames can reach 2 per goroutine.
	if got := maxInFlight.Load(); got > 8 {
		t.Fatalf("max in-flight frames = %d, want <= 8 under budget 3", got)
	}
	if Limit() != 3 {
		t.Fatalf("budget not restored: %d", Limit())
	}
}

func TestZeroBudgetStillCompletes(t *testing.T) {
	old := SetLimit(0)
	defer SetLimit(old)
	var n atomic.Int64
	if err := ForEach(20, 8, func(i int) error { n.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 20 {
		t.Fatalf("ran %d of 20", n.Load())
	}
}

func TestForEachConcurrentCallers(t *testing.T) {
	// Many goroutines using the pool at once must all complete and leave the
	// budget intact.
	before := Limit()
	var wg sync.WaitGroup
	for g := 0; g < 2*runtime.GOMAXPROCS(0); g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum atomic.Int64
			if err := ForEach(100, 0, func(i int) error {
				sum.Add(int64(i))
				return nil
			}); err != nil {
				t.Error(err)
			}
			if sum.Load() != 4950 {
				t.Errorf("sum = %d", sum.Load())
			}
		}()
	}
	wg.Wait()
	if Limit() != before {
		t.Fatalf("budget leaked: %d != %d", Limit(), before)
	}
}

func TestReserveReleaseRoundTrip(t *testing.T) {
	defer SetLimit(SetLimit(4))

	if got := Reserve(2); got != 2 {
		t.Fatalf("Reserve(2) = %d with budget 4", got)
	}
	if got := Limit(); got != 2 {
		t.Fatalf("Limit after reserve = %d, want 2", got)
	}
	// Over-asking grants only what's left; an exhausted budget grants zero.
	if got := Reserve(10); got != 2 {
		t.Fatalf("Reserve(10) = %d, want remaining 2", got)
	}
	if got := Reserve(1); got != 0 {
		t.Fatalf("Reserve on empty budget = %d, want 0", got)
	}
	Release(2)
	Release(2)
	Release(0) // no-op
	if got := Limit(); got != 4 {
		t.Fatalf("Limit after releases = %d, want 4", got)
	}
	if got := Reserve(0); got != 0 {
		t.Fatalf("Reserve(0) = %d", got)
	}
	if got := Reserve(-3); got != 0 {
		t.Fatalf("Reserve(-3) = %d", got)
	}
}

// ---- auto-sizing ----

// restoreLimit resets the configured budget after a test that resizes it.
func restoreLimit(t *testing.T) {
	t.Helper()
	prev := Limit()
	t.Cleanup(func() { SetLimit(prev) })
}

func TestAutoSizeCPUBoundKeepsDefault(t *testing.T) {
	for _, mean := range []time.Duration{0, 50 * time.Microsecond, ioBoundThreshold - 1} {
		if got := AutoSize(mean); got != DefaultLimit() {
			t.Fatalf("AutoSize(%v) = %d, want default %d", mean, got, DefaultLimit())
		}
	}
}

func TestAutoSizeScalesWithLatency(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	if got, want := AutoSize(10*ioBoundThreshold), gmp*10-1; got != want {
		t.Fatalf("AutoSize(10x threshold) = %d, want %d", got, want)
	}
	// A slower backend deserves at least as many workers.
	if AutoSize(40*ioBoundThreshold) < AutoSize(10*ioBoundThreshold) {
		t.Fatal("AutoSize not monotone in latency")
	}
	// Pathological latency hits the cap.
	if got := AutoSize(time.Hour); got != maxAutoBudget-1 {
		t.Fatalf("AutoSize(1h) = %d, want cap %d", got, maxAutoBudget-1)
	}
}

func TestAutoTuneAppliesAndEnvPins(t *testing.T) {
	restoreLimit(t)
	got := AutoTune(20 * ioBoundThreshold)
	if want := AutoSize(20 * ioBoundThreshold); got != want || Limit() != want {
		t.Fatalf("AutoTune = %d (limit %d), want %d", got, Limit(), want)
	}

	// With the env override set, AutoTune must not move the budget.
	SetLimit(3)
	t.Setenv(BudgetEnv, "3")
	if got := AutoTune(time.Hour); got != 3 || Limit() != 3 {
		t.Fatalf("pinned AutoTune moved the budget: got %d, limit %d", got, Limit())
	}
}

func TestEnvBudgetParsing(t *testing.T) {
	t.Setenv(BudgetEnv, "17")
	if v, ok := envBudget(); !ok || v != 17 {
		t.Fatalf("envBudget = %d/%v", v, ok)
	}
	t.Setenv(BudgetEnv, "not-a-number")
	if _, ok := envBudget(); ok {
		t.Fatal("unparsable env value must be ignored")
	}
	t.Setenv(BudgetEnv, "-4")
	if _, ok := envBudget(); ok {
		t.Fatal("negative env value must be ignored")
	}
}

// TestSetLimitMidFlightPreservesAccounting reserves slots, resizes, then
// releases: the available budget must land exactly on the new limit — the
// delta-based resize keeps outstanding grants coherent.
func TestSetLimitMidFlightPreservesAccounting(t *testing.T) {
	restoreLimit(t)
	SetLimit(4)
	got := Reserve(3)
	if got != 3 {
		Release(got)
		t.Fatalf("Reserve(3) = %d with limit 4", got)
	}
	SetLimit(10) // raise while 3 slots are out
	Release(got)
	if Limit() != 10 {
		t.Fatalf("limit = %d after raise+release, want 10", Limit())
	}
	got = Reserve(2)
	SetLimit(1) // shrink below the outstanding reservation
	Release(got)
	if Limit() != 1 {
		t.Fatalf("limit = %d after shrink+release, want 1", Limit())
	}
}
