// Package parallel is the bounded worker pool shared by the batch pipeline
// API and the evaluation harness. It exists to make fan-out cheap without
// making it explosive: every ForEach/Map call draws its extra worker
// goroutines from one process-wide budget (default GOMAXPROCS−1), so nested
// parallelism — Table 2 running seven methods concurrently, each of which
// fans out over its per-incident prediction loop — cannot multiply
// goroutines beyond the hardware.
//
// Two properties make the pool safe for the reproduction's determinism
// contract:
//
//   - Results are index-addressed: item i's result lands in slot i no matter
//     which worker ran it or when, so a parallel run is bit-identical to the
//     sequential run whenever fn(i) itself is order-independent (which the
//     simgpt client guarantees by deriving its RNG per-prompt).
//   - Errors are index-deterministic: the error returned is the one from the
//     lowest failing index, matching what a sequential loop would have
//     surfaced, regardless of completion order.
//
// The caller's goroutine always participates in the work, so a call makes
// progress even when the budget is exhausted (a nested call simply runs
// inline), and no call can deadlock waiting for workers.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// budget is the number of extra worker goroutines the whole process may
// still spawn; configured is the limit it refills to as grants return. The
// caller-runs design means total concurrency is bounded by budget+1 ≈
// GOMAXPROCS. Keeping the pair means resizing is a delta on budget rather
// than a swap, so SetLimit/AutoTune stay correct while reservations are
// outstanding (budget may then dip negative until grants drain back).
var (
	budget     atomic.Int64
	configured atomic.Int64
)

// BudgetEnv is the environment variable that pins the extra-worker budget:
// when set to a non-negative integer it overrides the GOMAXPROCS−1 default
// at startup and makes AutoTune a no-op, so operators keep the last word
// over the auto-sizing heuristic.
const BudgetEnv = "RCACOPILOT_PARALLEL_BUDGET"

func init() {
	n := int64(DefaultLimit())
	if v, ok := envBudget(); ok {
		n = int64(v)
	}
	budget.Store(n)
	configured.Store(n)
}

// envBudget reads the BudgetEnv override, ignoring unparsable values.
func envBudget() (int, bool) {
	s := os.Getenv(BudgetEnv)
	if s == "" {
		return 0, false
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// DefaultLimit is the CPU-bound extra-worker budget: GOMAXPROCS−1, the
// right bound when every worker keeps a core busy (the simulated
// substrates).
func DefaultLimit() int { return runtime.GOMAXPROCS(0) - 1 }

// Limit returns the number of extra worker goroutines currently available
// process-wide.
func Limit() int { return int(budget.Load()) }

// Configured returns the process-wide extra-worker limit the pool refills
// to as grants return — SetLimit's last value (or the startup default) —
// independent of outstanding reservations. Admission controllers size
// against this rather than Limit, whose value dips as work is in flight.
func Configured() int { return int(configured.Load()) }

// SetLimit resets the process-wide extra-worker budget and returns the
// previous configured value. The default (GOMAXPROCS−1) is right for the
// CPU-bound simulated substrates; deployments whose LLM and telemetry
// backends block on real I/O should raise it — AutoSize computes how far —
// since workers waiting on the network don't occupy a CPU. Tests also use
// it to force true goroutine interleaving on small machines. Resizing is
// safe while work is in flight: outstanding grants are unaffected and the
// available budget shifts by the difference.
func SetLimit(n int) int {
	if n < 0 {
		n = 0
	}
	for {
		cur := configured.Load()
		if configured.CompareAndSwap(cur, int64(n)) {
			budget.Add(int64(n) - cur)
			return int(cur)
		}
	}
}

// ioBoundThreshold is the mean per-call wall latency above which a backend
// counts as network-bound. The simulated chat/embed substrates answer in
// well under a millisecond of real time; any real HTTP LLM endpoint takes
// tens to hundreds of milliseconds, nearly all of it waiting.
const ioBoundThreshold = 5 * time.Millisecond

// maxAutoBudget caps AutoSize so a pathological latency sample cannot
// request an unbounded goroutine fleet.
const maxAutoBudget = 128

// AutoSize suggests an extra-worker budget for a backend whose calls take
// meanCall of wall time. Below ioBoundThreshold the backend is CPU-bound
// and the GOMAXPROCS−1 default stands. Above it, workers spend most of a
// call parked on the network without occupying a CPU, so the budget scales
// with the wait-to-compute ratio — roughly GOMAXPROCS·(meanCall/threshold)
// concurrent calls keep the cores busy — capped at maxAutoBudget.
func AutoSize(meanCall time.Duration) int {
	if meanCall < ioBoundThreshold {
		return DefaultLimit()
	}
	n := runtime.GOMAXPROCS(0) * int(meanCall/ioBoundThreshold)
	if n > maxAutoBudget {
		n = maxAutoBudget
	}
	return n - 1
}

// AutoTune resizes the process-wide budget from a measured mean call
// latency (see AutoSize) and returns the resulting configured limit. The
// BudgetEnv environment override wins: when set, AutoTune changes nothing.
// Safe to call while work is in flight — llm.Cached invokes it between
// completed calls from inside pooled workers.
func AutoTune(meanCall time.Duration) int {
	if v, pinned := envBudget(); pinned {
		return v
	}
	n := AutoSize(meanCall)
	SetLimit(n)
	return n
}

// Reserve takes up to want extra-worker slots from the process-wide budget
// and returns how many were granted (possibly zero). It is how long-lived
// consumers — a streaming pipeline holding workers for the life of a
// channel — share the same budget as transient ForEach/Map calls, so a
// stream exerts backpressure on batch work and vice versa. Every grant must
// be returned with Release; the caller's own goroutine never needs a slot,
// so progress is guaranteed even on a zero grant.
func Reserve(want int) int { return reserve(want) }

// Release returns n slots taken by Reserve to the process-wide budget.
func Release(n int) { release(n) }

// reserve takes up to want extra workers from the global budget.
func reserve(want int) int {
	if want <= 0 {
		return 0
	}
	for {
		cur := budget.Load()
		if cur <= 0 {
			return 0
		}
		take := int64(want)
		if take > cur {
			take = cur
		}
		if budget.CompareAndSwap(cur, cur-take) {
			return int(take)
		}
	}
}

func release(n int) {
	if n > 0 {
		budget.Add(int64(n))
	}
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (the caller's plus extras drawn from the shared budget). workers <= 0
// means GOMAXPROCS; workers == 1 runs the plain sequential loop. The return
// value is the error from the lowest failing index; once any fn fails,
// remaining unstarted items are skipped (best effort). A panic in fn is
// re-raised on the caller's goroutine.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	extras := reserve(workers - 1)
	defer release(extras)

	errs := make([]error, n)
	var next atomic.Int64
	var stop atomic.Bool
	var panicked atomic.Value // holds capturedPanic; one type, so CAS never mistypes
	work := func() {
		for !stop.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						stop.Store(true)
						panicked.CompareAndSwap(nil, capturedPanic{r})
					}
				}()
				if err := fn(i); err != nil {
					errs[i] = err
					stop.Store(true)
				}
			}()
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < extras; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()

	if r := panicked.Load(); r != nil {
		panic(r.(capturedPanic).value)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// capturedPanic wraps a worker's recovered panic value so the atomic.Value
// always stores one concrete type regardless of what was panicked.
type capturedPanic struct{ value any }

// Map runs fn(i) for every i in [0, n) under ForEach's pool and returns the
// results in index order. On error the partial results are discarded and
// the lowest-index error is returned.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
