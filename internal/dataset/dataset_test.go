package dataset

import (
	"math"
	"testing"
	"time"

	"repro/internal/incident"
)

// sharedCorpus is generated once; the generator is deterministic so tests
// can share it.
var sharedCorpus *Corpus

func corpus(t *testing.T) *Corpus {
	t.Helper()
	if sharedCorpus == nil {
		c, err := Generate(DefaultSpec(1))
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		sharedCorpus = c
	}
	return sharedCorpus
}

func TestCorpusMatchesPublishedShape(t *testing.T) {
	c := corpus(t)
	s := c.ComputeStats()
	if s.NumIncidents != 653 {
		t.Fatalf("incidents = %d, want 653", s.NumIncidents)
	}
	if s.NumCategories != 163 {
		t.Fatalf("categories = %d, want 163", s.NumCategories)
	}
	if math.Abs(s.NewFraction-0.2496) > 0.001 {
		t.Fatalf("new-category fraction = %.4f, want 0.2496", s.NewFraction)
	}
	if s.RecurrenceWithin20 < 0.85 || s.RecurrenceWithin20 > 1.0 {
		t.Fatalf("recurrence within 20 days = %.3f, want ≈ 0.938", s.RecurrenceWithin20)
	}
}

func TestTable1OccurrenceCounts(t *testing.T) {
	counts := corpus(t).CategoryCounts()
	want := map[incident.Category]int{
		"AuthCertIssue": 3, "HubPortExhaustion": 27, "DeliveryHang": 6,
		"CodeRegression": 15, "CertForBogusTenants": 11, "MaliciousAttack": 2,
		"UseRouteResolution": 9, "FullDisk": 2, "InvalidJournaling": 11,
		"DispatcherTaskCancelled": 22,
	}
	for cat, n := range want {
		if counts[cat] != n {
			t.Errorf("%s occurrences = %d, want %d", cat, counts[cat], n)
		}
	}
}

func TestIncidentsSortedAndWithinYear(t *testing.T) {
	c := corpus(t)
	spec := DefaultSpec(1)
	end := spec.Start.AddDate(0, 0, spec.Days)
	for i, inc := range c.Incidents {
		if i > 0 && inc.CreatedAt.Before(c.Incidents[i-1].CreatedAt) {
			t.Fatal("incidents must be sorted by creation time")
		}
		if inc.CreatedAt.Before(spec.Start) || inc.CreatedAt.After(end) {
			t.Fatalf("incident %s at %v outside the year", inc.ID, inc.CreatedAt)
		}
	}
}

func TestEveryIncidentIsCollectedAndValid(t *testing.T) {
	c := corpus(t)
	for _, inc := range c.Incidents {
		if err := inc.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", inc.ID, err)
		}
		if len(inc.Evidence) < 2 {
			t.Fatalf("%s has only %d evidence items — collection did not run", inc.ID, len(inc.Evidence))
		}
		if inc.Category == "" {
			t.Fatalf("%s missing ground-truth label", inc.ID)
		}
		if len(inc.ActionOutput) == 0 {
			t.Fatalf("%s has no action outputs", inc.ID)
		}
	}
}

func TestDiagnosticTextDistinguishesCategories(t *testing.T) {
	c := corpus(t)
	// HubPortExhaustion incidents must carry the WinSock/UDP signature.
	found := false
	for _, inc := range c.Incidents {
		if inc.Category == "HubPortExhaustion" {
			found = true
			text := inc.DiagnosticText()
			if !contains(text, "WinSock") && !contains(text, "UDP") {
				t.Fatalf("%s (HubPortExhaustion) lacks its telemetry signature:\n%.400s", inc.ID, text)
			}
		}
	}
	if !found {
		t.Fatal("no HubPortExhaustion incidents generated")
	}
}

func TestGenericCategoriesCarryExceptionToken(t *testing.T) {
	c := corpus(t)
	checked := 0
	for _, inc := range c.Incidents {
		if _, ok := c.Generics[inc.Category]; !ok {
			continue
		}
		checked++
		exc := c.Generics[inc.Category].Exception
		if !contains(inc.DiagnosticText(), exc) {
			t.Fatalf("%s (%s) lacks its exception token %s", inc.ID, inc.Category, exc)
		}
		// The OCE label must NOT be string-recoverable from the telemetry.
		if contains(inc.DiagnosticText(), string(inc.Category)) {
			t.Fatalf("%s: category label %s leaked into diagnostic text", inc.ID, inc.Category)
		}
		if checked >= 25 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no generic incidents checked")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := Generate(DefaultSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Incidents) != len(b.Incidents) {
		t.Fatal("lengths differ")
	}
	for i := range a.Incidents {
		if a.Incidents[i].Category != b.Incidents[i].Category ||
			!a.Incidents[i].CreatedAt.Equal(b.Incidents[i].CreatedAt) ||
			a.Incidents[i].DiagnosticText() != b.Incidents[i].DiagnosticText() {
			t.Fatalf("incident %d differs between same-seed runs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, err := Generate(DefaultSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Incidents {
		if a.Incidents[i].Category == b.Incidents[i].Category {
			same++
		}
	}
	if same == len(a.Incidents) {
		t.Fatal("different seeds should reorder the corpus")
	}
}

func TestSplitPartitions(t *testing.T) {
	c := corpus(t)
	train, test := c.Split(0.75, 42)
	if len(train)+len(test) != len(c.Incidents) {
		t.Fatalf("split loses incidents: %d + %d != %d", len(train), len(test), len(c.Incidents))
	}
	if len(train) != 489 {
		t.Fatalf("train = %d, want 489 (75%% of 653)", len(train))
	}
	ids := make(map[string]bool)
	for _, in := range train {
		ids[in.ID] = true
	}
	for _, in := range test {
		if ids[in.ID] {
			t.Fatalf("incident %s in both splits", in.ID)
		}
	}
	// Long tail: the test set must contain categories absent from train.
	trainCats := make(map[incident.Category]bool)
	for _, in := range train {
		trainCats[in.Category] = true
	}
	unseen := 0
	for _, in := range test {
		if !trainCats[in.Category] {
			unseen++
		}
	}
	if unseen == 0 {
		t.Fatal("test set should contain never-trained categories (the paper's unseen-incident challenge)")
	}
}

func TestRecurrenceIntervals(t *testing.T) {
	c := corpus(t)
	ivs := c.RecurrenceIntervals()
	if len(ivs) != 653-163 {
		t.Fatalf("intervals = %d, want %d (incidents - categories)", len(ivs), 653-163)
	}
	fast := 0
	for _, d := range ivs {
		if d < 0 {
			t.Fatal("negative recurrence interval")
		}
		if d <= 20 {
			fast++
		}
	}
	if frac := float64(fast) / float64(len(ivs)); frac < 0.85 {
		t.Fatalf("fast-recurrence fraction = %.3f, want >= 0.85", frac)
	}
}

func TestGenerateValidatesSpec(t *testing.T) {
	if _, err := Generate(Spec{}); err == nil {
		t.Fatal("zero spec should fail")
	}
}

func TestTimestampsSpreadAcrossYear(t *testing.T) {
	c := corpus(t)
	first := c.Incidents[0].CreatedAt
	last := c.Incidents[len(c.Incidents)-1].CreatedAt
	if last.Sub(first) < 200*24*time.Hour {
		t.Fatalf("corpus spans only %v, want most of a year", last.Sub(first))
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
