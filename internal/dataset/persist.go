package dataset

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/incident"
	"repro/internal/transport"
)

// corpusDoc is the JSON wire format: the incidents plus the generic fault
// parameters needed to re-inject long-tail categories.
type corpusDoc struct {
	Incidents []*incident.Incident                         `json:"incidents"`
	Generics  map[incident.Category]transport.GenericFault `json:"generics,omitempty"`
}

// Save writes the corpus (incidents and generic-fault parameters) as JSON.
// The fleet itself is not serialized — it is reconstructed from the same
// seed — so a saved corpus is a portable labelled dataset, usable to feed a
// deployment's real incident history into the pipeline.
func (c *Corpus) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(corpusDoc{Incidents: c.Incidents, Generics: c.Generics}); err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	return nil
}

// Load reads a corpus previously written by Save. The returned corpus has
// no fleet attached; attach one with AttachFleet if live injection is
// needed.
func Load(r io.Reader) (*Corpus, error) {
	var doc corpusDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	if len(doc.Incidents) == 0 {
		return nil, fmt.Errorf("dataset: load: empty corpus")
	}
	for i, in := range doc.Incidents {
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("dataset: load: incident %d: %w", i, err)
		}
		if in.Category == "" {
			return nil, fmt.Errorf("dataset: load: incident %s has no label", in.ID)
		}
	}
	return &Corpus{Incidents: doc.Incidents, Generics: doc.Generics}, nil
}

// AttachFleet sets the fleet live experiments run against.
func (c *Corpus) AttachFleet(f *transport.Fleet) { c.Fleet = f }
