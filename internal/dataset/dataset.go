// Package dataset generates the synthetic one-year incident corpus that
// stands in for the paper's closed Microsoft Transport dataset (§5.1: 653
// incidents over one year, manually labelled with root-cause categories).
//
// The generator reproduces every published distributional property the
// method depends on:
//
//   - 653 incidents across 163 distinct categories, so incidents whose
//     category was never seen before account for exactly 163/653 = 24.96%
//     (Insight 3 / Figure 3's long tail);
//   - the ten Table-1 categories appear with their published occurrence
//     counts (HubPortExhaustion 27, DispatcherTaskCancelled 22, ...);
//   - recurrences of the same category cluster within 20 days with
//     probability ≈ 0.938 (Insight 2 / Figure 2).
//
// Every incident is produced end to end: a fault is injected into the
// simulated fleet at the incident's timestamp, monitors raise the alert,
// the matched incident handler collects the multi-source diagnostics, and
// the fault is repaired — so diagnostic text is always derived from
// simulated system state, never pasted from the label.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/handler"
	"repro/internal/incident"
	"repro/internal/transport"
)

// table1 lists the paper's Table 1 categories with their occurrence counts
// and severities.
var table1 = []struct {
	cat incident.Category
	occ int
	sev incident.Severity
}{
	{"AuthCertIssue", 3, incident.Sev1},
	{"HubPortExhaustion", 27, incident.Sev2},
	{"DeliveryHang", 6, incident.Sev2},
	{"CodeRegression", 15, incident.Sev2},
	{"CertForBogusTenants", 11, incident.Sev2},
	{"MaliciousAttack", 2, incident.Sev1},
	{"UseRouteResolution", 9, incident.Sev2},
	{"FullDisk", 2, incident.Sev2},
	{"InvalidJournaling", 11, incident.Sev2},
	{"DispatcherTaskCancelled", 22, incident.Sev3},
}

// Components and fault modes composing the long-tail generic categories.
var (
	components = []string{
		"StoreWorker", "SmtpProxy", "DnsCache", "RoutingTable", "QuotaService",
		"MailboxAssistant", "ThrottlingPolicy", "AddressBook", "SpamFilter",
		"ArchivePipeline", "CalendarSync", "AuditLogger", "TenantDirectory",
	}
	faultWords = []string{
		"MemoryLeak", "Deadlock", "HeapCorruption", "ConfigDrift",
		"TimeoutStorm", "CacheStampede", "HandleLeak", "RetryFlood",
		"SchemaMismatch", "VersionSkew", "ClockSkew", "Backpressure",
	}
	// exceptionPhrases maps each fault word to the engineering phrasing its
	// exception class uses in telemetry. OCE category labels are team
	// jargon: the label "StoreWorkerMemoryLeak" is assigned by a human, and
	// the telemetry shows "StoreWorkerWorkingSetGrowthException" — the
	// label is NOT string-recoverable from the diagnostic text, exactly as
	// in production incident data. (Methods must therefore learn the
	// label taxonomy from history; coining a keyword from the text alone
	// cannot score, which keeps the paper's baseline ordering honest.)
	exceptionPhrases = map[string]string{
		"MemoryLeak":     "WorkingSetGrowth",
		"Deadlock":       "LockConvoy",
		"HeapCorruption": "AccessViolation",
		"ConfigDrift":    "SettingsOutOfSync",
		"TimeoutStorm":   "OperationTimeout",
		"CacheStampede":  "CacheMissSurge",
		"HandleLeak":     "HandleCountGrowth",
		"RetryFlood":     "RetrySaturation",
		"SchemaMismatch": "SchemaValidationFault",
		"VersionSkew":    "BuildMismatch",
		"ClockSkew":      "TimeDriftFault",
		"Backpressure":   "QueuePressureFault",
	}
	genericModes = []transport.Mode{
		transport.ModeCrash, transport.ModeSubmissionBacklog,
		transport.ModeDeliveryBacklog, transport.ModeProbeFailure,
		transport.ModeDiskPressure, transport.ModeAvailabilityDrop,
		transport.ModeConnectionFlood, transport.ModeTokenFailure,
	}
)

// Spec parameterizes corpus generation. DefaultSpec reproduces the paper.
type Spec struct {
	Seed int64
	// Start is the beginning of the simulated year.
	Start time.Time
	// Days is the corpus time span.
	Days int
	// RecurrenceWithin20 is the probability a recurrence falls within 20
	// days of the previous occurrence (Figure 2: 93.8%).
	RecurrenceWithin20 float64
	// Team owns the generated incidents and their handlers.
	Team string
	// Fleet overrides the default fleet configuration (Seed is forced to
	// Spec.Seed).
	Fleet *transport.Config
}

// DefaultSpec is the paper-faithful specification.
func DefaultSpec(seed int64) Spec {
	return Spec{
		Seed:               seed,
		Start:              time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
		Days:               365,
		RecurrenceWithin20: 0.938,
		Team:               "Transport",
	}
}

// Corpus is a generated dataset.
type Corpus struct {
	Incidents []*incident.Incident // sorted by CreatedAt
	Fleet     *transport.Fleet
	// Generics maps each long-tail category to its fault parameters, so
	// experiments can re-inject the same fault.
	Generics map[incident.Category]transport.GenericFault
}

// plannedIncident is an incident scheduled before materialization.
type plannedIncident struct {
	cat incident.Category
	sev incident.Severity
	at  time.Time
}

// Generate builds the corpus for the spec.
func Generate(spec Spec) (*Corpus, error) {
	if spec.Days <= 0 || spec.Start.IsZero() {
		return nil, fmt.Errorf("dataset: spec needs Start and positive Days")
	}
	if spec.Team == "" {
		spec.Team = "Transport"
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// ---- 1. Category plan: 163 categories, 653 incidents. ----
	type catPlan struct {
		cat incident.Category
		occ int
		sev incident.Severity
	}
	var plan []catPlan
	total := 0
	for _, t := range table1 {
		plan = append(plan, catPlan{t.cat, t.occ, t.sev})
		total += t.occ
	}
	// Long-tail generic categories: 33 recurring (15×20 + 8×8 + 9×6 + 1×7
	// = 425) and 120 singletons, for 545 more incidents and 153 more
	// categories: 653 incidents, 163 categories in total.
	genericOcc := make([]int, 0, 153)
	for i := 0; i < 15; i++ {
		genericOcc = append(genericOcc, 20)
	}
	for i := 0; i < 8; i++ {
		genericOcc = append(genericOcc, 8)
	}
	for i := 0; i < 9; i++ {
		genericOcc = append(genericOcc, 6)
	}
	genericOcc = append(genericOcc, 7)
	for i := 0; i < 120; i++ {
		genericOcc = append(genericOcc, 1)
	}

	generics := make(map[incident.Category]transport.GenericFault, len(genericOcc))
	names := genericNames()
	if len(names) < len(genericOcc) {
		return nil, fmt.Errorf("dataset: need %d generic names, have %d", len(genericOcc), len(names))
	}
	for i, occ := range genericOcc {
		cat := names[i]
		sev := incident.Sev2
		if i%3 == 0 {
			sev = incident.Sev3
		}
		component := componentOf(string(cat))
		fault := strings.TrimPrefix(string(cat), component)
		phrase, ok := exceptionPhrases[fault]
		if !ok {
			phrase = fault
		}
		gf := transport.GenericFault{
			Category:  cat,
			Component: component,
			Exception: component + phrase + "Exception",
			Mode:      genericModes[i%len(genericModes)],
			Severity:  sev,
		}
		generics[cat] = gf
		plan = append(plan, catPlan{cat, occ, sev})
		total += occ
	}
	if total != 653 || len(plan) != 163 {
		return nil, fmt.Errorf("dataset: plan has %d incidents over %d categories, want 653/163", total, len(plan))
	}

	// ---- 2. Temporal placement (Insight 2 / Figure 2). ----
	var planned []plannedIncident
	horizon := float64(spec.Days - 1)
	for _, p := range plan {
		// First occurrence: uniform, leaving room for the recurrence run.
		first := rng.Float64() * horizon * 0.8
		at := first
		for i := 0; i < p.occ; i++ {
			if i > 0 {
				var gap float64
				if rng.Float64() < spec.RecurrenceWithin20 {
					// Short recurrence: exponential, mean 5 days, <= 20.
					gap = rng.ExpFloat64() * 5
					if gap > 20 {
						gap = 20 * rng.Float64()
					}
					if gap < 0.2 {
						gap = 0.2
					}
				} else {
					gap = 20 + rng.Float64()*100
				}
				at += gap
				if at > horizon {
					// Wrap into the remaining space before the first
					// occurrence to stay inside the year.
					at = rng.Float64() * first
				}
			}
			planned = append(planned, plannedIncident{
				cat: p.cat,
				sev: p.sev,
				at:  spec.Start.Add(time.Duration(at*24) * time.Hour).Add(time.Duration(rng.Intn(3600)) * time.Second),
			})
		}
	}
	sort.Slice(planned, func(i, j int) bool {
		if !planned[i].at.Equal(planned[j].at) {
			return planned[i].at.Before(planned[j].at)
		}
		return planned[i].cat < planned[j].cat
	})

	// ---- 3. Materialize: inject, alert, collect, repair. ----
	fleetCfg := transport.DefaultConfig(spec.Seed)
	if spec.Fleet != nil {
		fleetCfg = *spec.Fleet
		fleetCfg.Seed = spec.Seed
	}
	fleet := transport.NewFleet(fleetCfg)
	runner := handler.NewRunner(fleet)
	registry := handler.NewRegistry(nil)
	if _, err := registry.InstallBuiltins(spec.Team); err != nil {
		return nil, err
	}

	corpus := &Corpus{Fleet: fleet, Generics: generics}
	for seq, p := range planned {
		fleet.Clock().Set(p.at)
		var (
			fault *transport.ActiveFault
			err   error
		)
		forest := rng.Intn(len(fleet.Forests))
		if gf, ok := generics[p.cat]; ok {
			fault, err = fleet.InjectGeneric(gf, forest)
		} else {
			fault, err = fleet.Inject(p.cat, forest)
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: inject %s: %w", p.cat, err)
		}
		alert, ok := fleet.FirstAlert()
		if !ok {
			return nil, fmt.Errorf("dataset: no alert after injecting %s", p.cat)
		}
		inc := &incident.Incident{
			ID:           fmt.Sprintf("INC-%04d", seq+1),
			Title:        alert.Message,
			OwningTeam:   spec.Team,
			OwningTenant: fmt.Sprintf("tenant-%03d", rng.Intn(500)),
			Severity:     p.sev,
			Alert:        alert,
			CreatedAt:    p.at,
			Category:     p.cat,
		}
		h, err := registry.Match(spec.Team, inc)
		if err != nil {
			return nil, fmt.Errorf("dataset: match %s: %w", inc.ID, err)
		}
		if _, err := runner.Run(h, inc); err != nil {
			return nil, fmt.Errorf("dataset: collect %s (%s): %w", inc.ID, p.cat, err)
		}
		fault.Repair()
		if leftover := fleet.RunMonitors(); len(leftover) != 0 {
			return nil, fmt.Errorf("dataset: %d alerts leaked after repairing %s", len(leftover), p.cat)
		}
		corpus.Incidents = append(corpus.Incidents, inc)
	}
	return corpus, nil
}

// genericNames composes the 153 long-tail category names deterministically.
func genericNames() []incident.Category {
	var out []incident.Category
	for i, c := range components {
		for j, f := range faultWords {
			// Offset pairing avoids every component starting with the same
			// fault word, without repeating combinations.
			out = append(out, incident.Category(c+faultWords[(j+i)%len(faultWords)]))
			_ = f
		}
	}
	return out
}

// componentOf recovers the component prefix of a generic category name.
func componentOf(cat string) string {
	for _, c := range components {
		if len(cat) > len(c) && cat[:len(c)] == c {
			return c
		}
	}
	return "GenericComponent"
}

// Stats summarizes the distributional properties the paper publishes.
type Stats struct {
	NumIncidents  int
	NumCategories int
	// NewFraction is the share of incidents whose category had never
	// occurred before them (Insight 3: 24.96%).
	NewFraction float64
	// RecurrenceWithin20 is the share of recurrences that follow the
	// previous same-category incident by <= 20 days (Insight 2: 93.8%).
	RecurrenceWithin20 float64
}

// ComputeStats derives the published statistics from a corpus.
func (c *Corpus) ComputeStats() Stats {
	var s Stats
	s.NumIncidents = len(c.Incidents)
	seen := make(map[incident.Category]bool)
	last := make(map[incident.Category]time.Time)
	newCount, recur, recurFast := 0, 0, 0
	for _, inc := range c.Incidents {
		if !seen[inc.Category] {
			seen[inc.Category] = true
			newCount++
		} else {
			recur++
			if inc.CreatedAt.Sub(last[inc.Category]) <= 20*24*time.Hour {
				recurFast++
			}
		}
		last[inc.Category] = inc.CreatedAt
	}
	s.NumCategories = len(seen)
	if s.NumIncidents > 0 {
		s.NewFraction = float64(newCount) / float64(s.NumIncidents)
	}
	if recur > 0 {
		s.RecurrenceWithin20 = float64(recurFast) / float64(recur)
	}
	return s
}

// CategoryCounts returns occurrence counts per category.
func (c *Corpus) CategoryCounts() map[incident.Category]int {
	out := make(map[incident.Category]int)
	for _, inc := range c.Incidents {
		out[inc.Category]++
	}
	return out
}

// RecurrenceIntervals returns the day gaps between consecutive occurrences
// of the same category (Figure 2's underlying data).
func (c *Corpus) RecurrenceIntervals() []float64 {
	last := make(map[incident.Category]time.Time)
	var out []float64
	for _, inc := range c.Incidents {
		if prev, ok := last[inc.Category]; ok {
			out = append(out, inc.CreatedAt.Sub(prev).Hours()/24)
		}
		last[inc.Category] = inc.CreatedAt
	}
	return out
}

// Split partitions the corpus into train/test sets by seeded shuffle (the
// paper divides 75%/25%).
func (c *Corpus) Split(trainFrac float64, seed int64) (train, test []*incident.Incident) {
	if trainFrac <= 0 || trainFrac >= 1 {
		trainFrac = 0.75
	}
	idx := rand.New(rand.NewSource(seed)).Perm(len(c.Incidents))
	cut := int(float64(len(c.Incidents)) * trainFrac)
	for i, j := range idx {
		if i < cut {
			train = append(train, c.Incidents[j])
		} else {
			test = append(test, c.Incidents[j])
		}
	}
	return train, test
}
