package dataset

import (
	"bytes"
	"testing"
)

func TestCorpusSaveLoadRoundTrip(t *testing.T) {
	c := corpus(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Incidents) != len(c.Incidents) {
		t.Fatalf("loaded %d incidents, want %d", len(loaded.Incidents), len(c.Incidents))
	}
	for i := range c.Incidents {
		a, b := c.Incidents[i], loaded.Incidents[i]
		if a.ID != b.ID || a.Category != b.Category || !a.CreatedAt.Equal(b.CreatedAt) {
			t.Fatalf("incident %d mismatch after round trip", i)
		}
		if a.DiagnosticText() != b.DiagnosticText() {
			t.Fatalf("incident %s diagnostic text mismatch", a.ID)
		}
	}
	if len(loaded.Generics) != len(c.Generics) {
		t.Fatalf("generics = %d, want %d", len(loaded.Generics), len(c.Generics))
	}
	// Stats computed from the loaded corpus must match.
	if got, want := loaded.ComputeStats(), c.ComputeStats(); got != want {
		t.Fatalf("stats after load %+v != %+v", got, want)
	}
	if loaded.Fleet != nil {
		t.Fatal("loaded corpus must not carry a fleet")
	}
	loaded.AttachFleet(c.Fleet)
	if loaded.Fleet != c.Fleet {
		t.Fatal("AttachFleet failed")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage should fail")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"incidents":[]}`))); err == nil {
		t.Fatal("empty corpus should fail")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"incidents":[{"id":"x"}]}`))); err == nil {
		t.Fatal("invalid incident should fail")
	}
}
