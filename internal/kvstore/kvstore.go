// Package kvstore implements the embedded versioned store RCACopilot uses
// for incident handlers and incident records.
//
// The paper keeps handler definitions in a database and "maintain[s] the
// versions of the handlers in the database, which can be used to track their
// historical changes" (§4.1.1). This store provides exactly that: every Put
// appends a new immutable version; reads default to the latest version but
// any historical version remains addressable. The store also supports
// prefix scans (for listing handlers per team) and gob snapshots for
// persistence, all with stdlib only.
package kvstore

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Version is one immutable revision of a key's value.
type Version struct {
	Seq   int       // 1-based, monotonically increasing per key
	Value []byte    // stored payload
	At    time.Time // write timestamp
}

// Store is a concurrency-safe, versioned key-value store. The zero value is
// not ready; use New.
type Store struct {
	mu    sync.RWMutex
	data  map[string][]Version
	clock func() time.Time
}

// New returns an empty store stamping versions with time.Now.
func New() *Store { return NewWithClock(time.Now) }

// NewWithClock returns an empty store using the given time source, which
// lets simulations produce deterministic version timestamps.
func NewWithClock(now func() time.Time) *Store {
	return &Store{data: make(map[string][]Version), clock: now}
}

// Put appends a new version of key holding a copy of value, and returns the
// new version's sequence number.
func (s *Store) Put(key string, value []byte) int {
	cp := append([]byte(nil), value...)
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.data[key]
	seq := len(vs) + 1
	s.data[key] = append(vs, Version{Seq: seq, Value: cp, At: s.clock()})
	return seq
}

// Get returns a copy of the latest version of key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.data[key]
	if len(vs) == 0 {
		return nil, false
	}
	return append([]byte(nil), vs[len(vs)-1].Value...), true
}

// GetVersion returns a copy of version seq of key.
func (s *Store) GetVersion(key string, seq int) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.data[key]
	if seq < 1 || seq > len(vs) {
		return nil, false
	}
	return append([]byte(nil), vs[seq-1].Value...), true
}

// History returns copies of every version of key, oldest first.
func (s *Store) History(key string) []Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.data[key]
	out := make([]Version, len(vs))
	for i, v := range vs {
		out[i] = Version{Seq: v.Seq, Value: append([]byte(nil), v.Value...), At: v.At}
	}
	return out
}

// Versions returns the number of stored versions of key (0 if absent).
func (s *Store) Versions(key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data[key])
}

// Delete removes key and its entire history. It reports whether the key
// existed.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.data[key]
	delete(s.data, key)
	return ok
}

// Keys returns all keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// snapshot is the gob wire format.
type snapshot struct {
	Data map[string][]Version
}

// Save serializes the full store (all versions) to w.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	snap := snapshot{Data: make(map[string][]Version, len(s.data))}
	for k, vs := range s.data {
		cp := make([]Version, len(vs))
		for i, v := range vs {
			cp[i] = Version{Seq: v.Seq, Value: append([]byte(nil), v.Value...), At: v.At}
		}
		snap.Data[k] = cp
	}
	s.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("kvstore: save: %w", err)
	}
	return nil
}

// Load replaces the store contents with a snapshot previously written by
// Save.
func (s *Store) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("kvstore: load: %w", err)
	}
	s.mu.Lock()
	s.data = snap.Data
	if s.data == nil {
		s.data = make(map[string][]Version)
	}
	s.mu.Unlock()
	return nil
}

// Clone returns a deep copy of the store sharing no state with s.
func (s *Store) Clone() *Store {
	var buf bytes.Buffer
	// Save/Load already deep-copy; reuse them to avoid a third copy path.
	if err := s.Save(&buf); err != nil {
		// Save into a bytes.Buffer cannot fail for gob-encodable data.
		panic(fmt.Sprintf("kvstore: clone: %v", err))
	}
	out := NewWithClock(s.clock)
	if err := out.Load(&buf); err != nil {
		panic(fmt.Sprintf("kvstore: clone: %v", err))
	}
	return out
}
