package kvstore

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2022, 6, 1, 0, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Minute)
	}
}

func TestPutGetLatest(t *testing.T) {
	s := New()
	if _, ok := s.Get("k"); ok {
		t.Fatal("Get on empty store should miss")
	}
	if seq := s.Put("k", []byte("v1")); seq != 1 {
		t.Fatalf("first Put seq = %d, want 1", seq)
	}
	if seq := s.Put("k", []byte("v2")); seq != 2 {
		t.Fatalf("second Put seq = %d, want 2", seq)
	}
	got, ok := s.Get("k")
	if !ok || string(got) != "v2" {
		t.Fatalf("Get = %q/%v, want v2/true", got, ok)
	}
}

func TestVersioningHistory(t *testing.T) {
	s := NewWithClock(fixedClock())
	s.Put("h", []byte("a"))
	s.Put("h", []byte("b"))
	s.Put("h", []byte("c"))

	if n := s.Versions("h"); n != 3 {
		t.Fatalf("Versions = %d, want 3", n)
	}
	for seq, want := range map[int]string{1: "a", 2: "b", 3: "c"} {
		got, ok := s.GetVersion("h", seq)
		if !ok || string(got) != want {
			t.Fatalf("GetVersion(%d) = %q/%v, want %q", seq, got, ok, want)
		}
	}
	if _, ok := s.GetVersion("h", 0); ok {
		t.Fatal("version 0 should not exist")
	}
	if _, ok := s.GetVersion("h", 4); ok {
		t.Fatal("version 4 should not exist")
	}
	hist := s.History("h")
	if len(hist) != 3 {
		t.Fatalf("History len = %d, want 3", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if !hist[i].At.After(hist[i-1].At) {
			t.Fatal("history timestamps must be increasing with the injected clock")
		}
		if hist[i].Seq != hist[i-1].Seq+1 {
			t.Fatal("history sequence numbers must be consecutive")
		}
	}
}

func TestValueIsolation(t *testing.T) {
	s := New()
	buf := []byte("original")
	s.Put("k", buf)
	buf[0] = 'X' // caller mutates after Put
	got, _ := s.Get("k")
	if string(got) != "original" {
		t.Fatal("Put must copy the value")
	}
	got[0] = 'Y' // caller mutates result of Get
	again, _ := s.Get("k")
	if string(again) != "original" {
		t.Fatal("Get must return a copy")
	}
}

func TestDeleteRemovesAllHistory(t *testing.T) {
	s := New()
	s.Put("k", []byte("a"))
	s.Put("k", []byte("b"))
	if !s.Delete("k") {
		t.Fatal("Delete existing key should report true")
	}
	if s.Delete("k") {
		t.Fatal("Delete absent key should report false")
	}
	if s.Versions("k") != 0 {
		t.Fatal("history should be gone after Delete")
	}
}

func TestKeysPrefixSorted(t *testing.T) {
	s := New()
	for _, k := range []string{"handler/teamB/x", "handler/teamA/y", "incident/1", "handler/teamA/a"} {
		s.Put(k, []byte("v"))
	}
	got := s.Keys("handler/")
	want := []string{"handler/teamA/a", "handler/teamA/y", "handler/teamB/x"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	if n := s.Len(); n != 4 {
		t.Fatalf("Len = %d, want 4", n)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewWithClock(fixedClock())
	s.Put("a", []byte("1"))
	s.Put("a", []byte("2"))
	s.Put("b", []byte("3"))

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	s2 := New()
	if err := s2.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if v, _ := s2.Get("a"); string(v) != "2" {
		t.Fatalf("loaded latest a = %q, want 2", v)
	}
	if v, _ := s2.GetVersion("a", 1); string(v) != "1" {
		t.Fatalf("loaded a@1 = %q, want 1", v)
	}
	if v, _ := s2.Get("b"); string(v) != "3" {
		t.Fatalf("loaded b = %q, want 3", v)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	s := New()
	if err := s.Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("Load should fail on malformed input")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New()
	s.Put("k", []byte("v"))
	c := s.Clone()
	c.Put("k", []byte("v2"))
	c.Put("new", []byte("x"))

	if v, _ := s.Get("k"); string(v) != "v" {
		t.Fatal("clone writes leaked into original")
	}
	if _, ok := s.Get("new"); ok {
		t.Fatal("clone keys leaked into original")
	}
	if v, _ := c.Get("k"); string(v) != "v2" {
		t.Fatal("clone lost its own write")
	}
}

func TestConcurrentWriters(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	const writers, per = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Put(fmt.Sprintf("key-%d", w), []byte{byte(i)})
				s.Get(fmt.Sprintf("key-%d", (w+1)%writers))
				s.Keys("key-")
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		if n := s.Versions(fmt.Sprintf("key-%d", w)); n != per {
			t.Fatalf("key-%d versions = %d, want %d", w, n, per)
		}
	}
}

// Property: for any write sequence, Get returns the last Put value and
// Versions equals the number of Puts.
func TestQuickLastWriteWins(t *testing.T) {
	f := func(values [][]byte) bool {
		s := New()
		for _, v := range values {
			s.Put("k", v)
		}
		if len(values) == 0 {
			_, ok := s.Get("k")
			return !ok
		}
		got, ok := s.Get("k")
		return ok && bytes.Equal(got, values[len(values)-1]) && s.Versions("k") == len(values)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Save/Load preserves every version of every key.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(keys []string, payload []byte) bool {
		s := New()
		for i, k := range keys {
			end := i % (len(payload) + 1)
			s.Put("k/"+k, payload[:end])
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			return false
		}
		s2 := New()
		if err := s2.Load(&buf); err != nil {
			return false
		}
		if s2.Len() != s.Len() {
			return false
		}
		for _, k := range s.Keys("") {
			a, _ := s.Get(k)
			b, ok := s2.Get(k)
			if !ok || !bytes.Equal(a, b) || s.Versions(k) != s2.Versions(k) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
