package feedback

import (
	"sync"
	"testing"
	"time"

	"repro/internal/incident"
)

// flakyLearner fails until healed — the transient-embedder-outage shape
// the retry queue exists for. Concurrency-safe.
type flakyLearner struct {
	mu      sync.Mutex
	healthy bool
	learned []*incident.Incident
	calls   int
}

func (f *flakyLearner) Learn(inc *incident.Incident) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if !f.healthy {
		return errFail
	}
	f.learned = append(f.learned, inc)
	return nil
}

func (f *flakyLearner) heal() {
	f.mu.Lock()
	f.healthy = true
	f.mu.Unlock()
}

func (f *flakyLearner) learnedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.learned)
}

// fakeClock is a SetClock-driven manual clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// retryLoop builds a loop over a flaky learner with a manual clock and
// retrying on (base 1 min, cap 8 min, no background worker cadence
// relied upon — tests pump RedriveDue directly).
func retryLoop(t *testing.T, learner *flakyLearner, maxAttempts int) (*Loop, *fakeClock) {
	t.Helper()
	lp := New(nil, learner)
	clock := &fakeClock{now: time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)}
	lp.SetClock(clock.Now)
	err := lp.StartRetry(RetryConfig{
		Base:        time.Minute,
		Cap:         8 * time.Minute,
		MaxAttempts: maxAttempts,
		Poll:        time.Hour, // the worker's own cadence is irrelevant here
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lp.Close() })
	return lp, clock
}

func TestStartRetryValidation(t *testing.T) {
	if err := New(nil, nil).StartRetry(RetryConfig{}); err == nil {
		t.Fatal("StartRetry on a record-only loop must fail")
	}
	lp := New(nil, &flakyLearner{})
	if err := lp.StartRetry(RetryConfig{}); err != nil {
		t.Fatal(err)
	}
	defer lp.Close()
	if err := lp.StartRetry(RetryConfig{}); err == nil {
		t.Fatal("double StartRetry must fail")
	}
}

// TestRetryHealsTransientOutage: a failed learn redrives on the backoff
// schedule and succeeds once the embedder recovers — without the OCE
// resubmitting. Success clears the Failure record exactly like a
// resubmitted learn.
func TestRetryHealsTransientOutage(t *testing.T) {
	learner := &flakyLearner{}
	lp, clock := retryLoop(t, learner, 8)

	if _, err := lp.Submit(predicted("INC-1", "DiskFull"), VerdictConfirm, "", "oce", ""); err == nil {
		t.Fatal("Submit during the outage must surface the inline learn error")
	}
	if _, ok := lp.FailureFor("INC-1"); !ok {
		t.Fatal("failed learn must be recorded")
	}
	if got := lp.RetryBacklog(); got != 1 {
		t.Fatalf("RetryBacklog = %d, want 1", got)
	}

	// Before the backoff elapses nothing redrives.
	if n := lp.RedriveDue(); n != 0 {
		t.Fatalf("RedriveDue before backoff = %d, want 0", n)
	}

	// First redrive: embedder still down — attempts climb, failure stays.
	clock.advance(2 * time.Minute) // past base + max 25% jitter
	if n := lp.RedriveDue(); n != 1 {
		t.Fatalf("RedriveDue after backoff = %d, want 1", n)
	}
	if _, ok := lp.FailureFor("INC-1"); !ok {
		t.Fatal("failure must persist while the outage lasts")
	}

	// Outage ends; the next due redrive self-heals.
	learner.heal()
	clock.advance(3 * time.Minute) // past the doubled backoff + jitter
	if n := lp.RedriveDue(); n != 1 {
		t.Fatalf("RedriveDue after heal = %d, want 1", n)
	}
	if _, ok := lp.FailureFor("INC-1"); ok {
		t.Fatal("successful redrive must clear the failure")
	}
	if got := lp.RetryBacklog(); got != 0 {
		t.Fatalf("RetryBacklog after heal = %d, want 0", got)
	}
	if got := learner.learnedCount(); got != 1 {
		t.Fatalf("learned %d incidents, want 1", got)
	}
	// Nothing left to redrive.
	clock.advance(time.Hour)
	if n := lp.RedriveDue(); n != 0 {
		t.Fatalf("RedriveDue on empty backlog = %d, want 0", n)
	}
}

// TestRetryBackoffDoublesAndCaps: the gap between consecutive redrives
// doubles from Base and never exceeds Cap (+25% jitter), driven entirely
// by the injected clock.
func TestRetryBackoffDoublesAndCaps(t *testing.T) {
	learner := &flakyLearner{}
	lp, clock := retryLoop(t, learner, -1) // unlimited attempts

	if _, err := lp.Submit(predicted("INC-1", "DiskFull"), VerdictConfirm, "", "oce", ""); err == nil {
		t.Fatal("want inline learn error")
	}
	// Attempt n has backoff min(Base·2^(n-1), Cap) plus < 25% jitter.
	// Advancing by exactly the un-jittered delay must NOT trigger;
	// advancing by 1.25x must.
	base, cap := time.Minute, 8*time.Minute
	delay := base
	for attempt := 1; attempt <= 6; attempt++ {
		clock.advance(delay)
		if n := lp.RedriveDue(); n != 0 {
			t.Fatalf("attempt %d: redrove before jitter elapsed", attempt)
		}
		clock.advance(delay / 4)
		if n := lp.RedriveDue(); n != 1 {
			t.Fatalf("attempt %d: RedriveDue = %d after full backoff window, want 1", attempt, n)
		}
		delay *= 2
		if delay > cap {
			delay = cap
		}
	}
}

// TestRetryExhaustsAttempts: after MaxAttempts total learn attempts the
// queue stops redriving but the Failure record stands for the OCE.
func TestRetryExhaustsAttempts(t *testing.T) {
	learner := &flakyLearner{}
	lp, clock := retryLoop(t, learner, 3)

	if _, err := lp.Submit(predicted("INC-1", "DiskFull"), VerdictConfirm, "", "oce", ""); err == nil {
		t.Fatal("want inline learn error")
	}
	// Attempt 1 was the inline learn; redrives 2 and 3 exhaust the budget.
	for i := 0; i < 2; i++ {
		clock.advance(time.Hour)
		if n := lp.RedriveDue(); n != 1 {
			t.Fatalf("redrive %d: RedriveDue = %d, want 1", i+1, n)
		}
	}
	if got := lp.RetryBacklog(); got != 0 {
		t.Fatalf("RetryBacklog after exhaustion = %d, want 0", got)
	}
	clock.advance(time.Hour)
	if n := lp.RedriveDue(); n != 0 {
		t.Fatalf("exhausted failure redrove anyway (%d)", n)
	}
	if _, ok := lp.FailureFor("INC-1"); !ok {
		t.Fatal("exhausted failure record must stand until resubmitted")
	}
	// A resubmitted verdict still heals it the manual way.
	learner.heal()
	if _, err := lp.Submit(predicted("INC-1", "DiskFull"), VerdictConfirm, "", "oce", ""); err != nil {
		t.Fatal(err)
	}
	if _, ok := lp.FailureFor("INC-1"); ok {
		t.Fatal("resubmitted learn must clear the failure")
	}
}

// TestRetryCoversPreexistingFailures: failures recorded before StartRetry
// get scheduled when the queue starts (the deployment-restart shape).
func TestRetryCoversPreexistingFailures(t *testing.T) {
	learner := &flakyLearner{}
	lp := New(nil, learner)
	clock := &fakeClock{now: time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)}
	lp.SetClock(clock.Now)

	if _, err := lp.Submit(predicted("INC-1", "DiskFull"), VerdictConfirm, "", "oce", ""); err == nil {
		t.Fatal("want inline learn error")
	}
	if err := lp.StartRetry(RetryConfig{Base: time.Minute, Poll: time.Hour}); err != nil {
		t.Fatal(err)
	}
	defer lp.Close()
	if got := lp.RetryBacklog(); got != 1 {
		t.Fatalf("RetryBacklog = %d after StartRetry, want the pre-existing failure scheduled", got)
	}
	learner.heal()
	clock.advance(2 * time.Minute)
	if n := lp.RedriveDue(); n != 1 {
		t.Fatalf("RedriveDue = %d, want 1", n)
	}
	if _, ok := lp.FailureFor("INC-1"); ok {
		t.Fatal("pre-existing failure must heal via the retry queue")
	}
}

// scriptedLearner drives a precise interleaving: call 1 (the original
// submit) fails; call 2 (the redrive) signals started, parks on the gate,
// then succeeds; later calls fail.
type scriptedLearner struct {
	mu      sync.Mutex
	calls   int
	started chan struct{}
	gate    chan struct{}
}

func (s *scriptedLearner) Learn(inc *incident.Incident) error {
	s.mu.Lock()
	s.calls++
	n := s.calls
	s.mu.Unlock()
	switch n {
	case 1:
		return errFail
	case 2:
		s.started <- struct{}{}
		<-s.gate
		return nil
	default:
		return errFail
	}
}

// TestRedriveDoesNotClobberNewerVerdict: a verdict resubmitted while a
// redrive for the incident's OLD verdict is in flight owns the failure
// record — the stale redrive's success must not erase the new verdict's
// Failure or its retry schedule.
func TestRedriveDoesNotClobberNewerVerdict(t *testing.T) {
	learner := &scriptedLearner{started: make(chan struct{}), gate: make(chan struct{})}
	lp := New(nil, learner)
	clock := &fakeClock{now: time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)}
	lp.SetClock(clock.Now)
	if err := lp.StartRetry(RetryConfig{Base: time.Minute, Poll: time.Hour}); err != nil {
		t.Fatal(err)
	}
	defer func() { lp.Close() }()

	// Original verdict fails inline (learner call 1) and schedules.
	if _, err := lp.Submit(predicted("INC-1", "DiskFull"), VerdictConfirm, "", "oce-1", ""); err == nil {
		t.Fatal("want inline learn error")
	}
	clock.advance(2 * time.Minute)

	// The redrive (learner call 2) parks mid-Learn...
	done := make(chan int)
	go func() { done <- lp.RedriveDue() }()
	<-learner.started

	// ...while the OCE resubmits an updated verdict, which fails too
	// (learner call 3) and replaces the incident's failure + schedule.
	if _, err := lp.Submit(predicted("INC-1", "NetworkDropIssue"), VerdictConfirm, "", "oce-2", ""); err == nil {
		t.Fatal("want inline learn error on the resubmit")
	}

	// The stale redrive now completes successfully: it must NOT clear the
	// newer verdict's record.
	close(learner.gate)
	if n := <-done; n != 1 {
		t.Fatalf("RedriveDue = %d, want 1", n)
	}
	f, ok := lp.FailureFor("INC-1")
	if !ok {
		t.Fatal("stale redrive success erased the newer verdict's failure record")
	}
	if f.Reviewer != "oce-2" {
		t.Fatalf("surviving failure belongs to %q, want the resubmitting oce-2", f.Reviewer)
	}
	if got := lp.RetryBacklog(); got != 1 {
		t.Fatalf("RetryBacklog = %d, want the newer verdict still scheduled", got)
	}
}

// TestRetryWithAsyncIngest: the retry queue composes with the background
// ingest worker — deferred failures join the schedule and heal without
// any Flush or resubmit.
func TestRetryWithAsyncIngest(t *testing.T) {
	learner := &flakyLearner{}
	lp := New(nil, learner)
	clock := &fakeClock{now: time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)}
	lp.SetClock(clock.Now)
	if err := lp.StartIngest(4); err != nil {
		t.Fatal(err)
	}
	if err := lp.StartRetry(RetryConfig{Base: time.Minute, Poll: time.Hour}); err != nil {
		t.Fatal(err)
	}
	defer lp.Close()

	if _, err := lp.Submit(predicted("INC-1", "DiskFull"), VerdictConfirm, "", "oce", ""); err != nil {
		t.Fatal(err) // deferred: Submit itself succeeds
	}
	// Drain the deferred learn (it fails and records).
	if err := lp.Flush(); err == nil {
		t.Fatal("Flush must surface the deferred learn error")
	}
	if got := lp.RetryBacklog(); got != 1 {
		t.Fatalf("RetryBacklog = %d, want 1", got)
	}
	learner.heal()
	clock.advance(2 * time.Minute)
	if n := lp.RedriveDue(); n != 1 {
		t.Fatalf("RedriveDue = %d, want 1", n)
	}
	if _, ok := lp.FailureFor("INC-1"); ok {
		t.Fatal("deferred failure must heal via the retry queue")
	}
	if got := learner.learnedCount(); got != 1 {
		t.Fatalf("learned %d, want 1", got)
	}
}

// TestRetryScheduleObservability: RetrySchedule must expose each
// unresolved failure's attempt count, next-due time and exhaustion — the
// state the serving daemon's /metrics and report.RenderRetryQueue render.
func TestRetryScheduleObservability(t *testing.T) {
	learner := &flakyLearner{}
	lp, clock := retryLoop(t, learner, 2)

	if _, err := lp.Submit(predicted("INC-1", "DiskFull"), VerdictConfirm, "", "oce-a", ""); err == nil {
		t.Fatal("Submit during the outage must surface the inline learn error")
	}
	items := lp.RetrySchedule()
	if len(items) != 1 {
		t.Fatalf("schedule = %+v, want 1 item", items)
	}
	it := items[0]
	if it.IncidentID != "INC-1" || it.Reviewer != "oce-a" {
		t.Fatalf("item = %+v", it)
	}
	if it.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (the failed inline learn)", it.Attempts)
	}
	if it.NextDue.IsZero() || !it.NextDue.After(clock.Now()) {
		t.Fatalf("NextDue = %v, want a future redrive", it.NextDue)
	}
	if it.Exhausted || it.Err == nil {
		t.Fatalf("item = %+v, want live failure with its error", it)
	}

	// Exhaust the budget (MaxAttempts=2: one redrive left). The record
	// must survive as exhausted with no schedule, not disappear.
	clock.advance(2 * time.Minute)
	if n := lp.RedriveDue(); n != 1 {
		t.Fatalf("RedriveDue = %d, want 1", n)
	}
	items = lp.RetrySchedule()
	if len(items) != 1 {
		t.Fatalf("schedule after exhaustion = %+v, want the exhausted record", items)
	}
	it = items[0]
	if !it.Exhausted || it.Attempts != 2 || !it.NextDue.IsZero() {
		t.Fatalf("exhausted item = %+v", it)
	}
	if got := lp.RetryBacklog(); got != 0 {
		t.Fatalf("RetryBacklog counts exhausted items: %d", got)
	}
	// No further redrives are spent on it.
	clock.advance(time.Hour)
	if n := lp.RedriveDue(); n != 0 {
		t.Fatalf("RedriveDue on exhausted backlog = %d, want 0", n)
	}

	// A resubmitted verdict requeues it; success clears the schedule.
	learner.heal()
	if _, err := lp.Submit(predicted("INC-1", "DiskFull"), VerdictConfirm, "", "oce-a", ""); err != nil {
		t.Fatalf("resubmit after heal: %v", err)
	}
	if items := lp.RetrySchedule(); len(items) != 0 {
		t.Fatalf("schedule after successful resubmit = %+v, want empty", items)
	}
}
