package feedback

import (
	"testing"
	"time"

	"repro/internal/incident"
)

// fakeLearner records what flows back into the history.
type fakeLearner struct {
	learned []*incident.Incident
	fail    bool
}

func (f *fakeLearner) Learn(inc *incident.Incident) error {
	if f.fail {
		return errFail
	}
	f.learned = append(f.learned, inc)
	return nil
}

var errFail = &learnErr{}

type learnErr struct{}

func (*learnErr) Error() string { return "learn failed" }

func predicted(id string, cat incident.Category) *incident.Incident {
	return &incident.Incident{
		ID: id, Title: "t", Severity: incident.Sev2,
		Alert:     incident.Alert{Type: "A", Scope: incident.ScopeForest},
		CreatedAt: time.Unix(1000, 0),
		Predicted: cat,
	}
}

func fixedLoop(l *fakeLearner) *Loop {
	lp := New(nil, l)
	t0 := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	n := 0
	lp.SetClock(func() time.Time { n++; return t0.Add(time.Duration(n) * time.Minute) })
	return lp
}

func TestConfirmLearnsPredictedLabel(t *testing.T) {
	learner := &fakeLearner{}
	lp := fixedLoop(learner)
	inc := predicted("INC-1", "HubPortExhaustion")
	e, err := lp.Submit(inc, VerdictConfirm, "", "oce-alice", "looks right")
	if err != nil {
		t.Fatal(err)
	}
	if e.Verdict != VerdictConfirm || e.Reviewer != "oce-alice" {
		t.Fatalf("entry = %+v", e)
	}
	if len(learner.learned) != 1 || learner.learned[0].Category != "HubPortExhaustion" {
		t.Fatalf("learned = %+v", learner.learned)
	}
	if inc.Category != "" {
		t.Fatal("Submit must not mutate the caller's incident")
	}
}

func TestCorrectLearnsCanonicalLabel(t *testing.T) {
	learner := &fakeLearner{}
	lp := fixedLoop(learner)
	inc := predicted("INC-2", "I/O Bottleneck")
	if _, err := lp.Submit(inc, VerdictCorrect, "DiskFull", "oce-bob", "post-investigation"); err != nil {
		t.Fatal(err)
	}
	if len(learner.learned) != 1 || learner.learned[0].Category != "DiskFull" {
		t.Fatalf("learned = %+v", learner.learned)
	}
}

func TestRejectLearnsNothing(t *testing.T) {
	learner := &fakeLearner{}
	lp := fixedLoop(learner)
	if _, err := lp.Submit(predicted("INC-3", "X"), VerdictReject, "", "oce", ""); err != nil {
		t.Fatal(err)
	}
	if len(learner.learned) != 0 {
		t.Fatal("reject must not learn")
	}
}

func TestSubmitValidation(t *testing.T) {
	lp := fixedLoop(&fakeLearner{})
	if _, err := lp.Submit(nil, VerdictConfirm, "", "r", ""); err == nil {
		t.Fatal("nil incident should fail")
	}
	unpredicted := predicted("INC-4", "")
	if _, err := lp.Submit(unpredicted, VerdictConfirm, "", "r", ""); err == nil {
		t.Fatal("incident without prediction should fail")
	}
	if _, err := lp.Submit(predicted("INC-5", "X"), VerdictCorrect, "", "r", ""); err == nil {
		t.Fatal("correct without category should fail")
	}
	if _, err := lp.Submit(predicted("INC-6", "X"), VerdictReject, "Y", "r", ""); err == nil {
		t.Fatal("reject with category should fail")
	}
	if _, err := lp.Submit(predicted("INC-7", "X"), "maybe", "", "r", ""); err == nil {
		t.Fatal("unknown verdict should fail")
	}
}

func TestLearnerErrorPropagates(t *testing.T) {
	lp := fixedLoop(&fakeLearner{fail: true})
	if _, err := lp.Submit(predicted("INC-8", "X"), VerdictConfirm, "", "r", ""); err == nil {
		t.Fatal("learner failure must surface")
	}
}

func TestGetAndHistory(t *testing.T) {
	lp := fixedLoop(&fakeLearner{})
	inc := predicted("INC-9", "X")
	if _, err := lp.Submit(inc, VerdictReject, "", "oce-1", "investigating"); err != nil {
		t.Fatal(err)
	}
	// Re-reviewed after post-mortem.
	if _, err := lp.Submit(inc, VerdictCorrect, "DiskFull", "oce-2", "post-mortem"); err != nil {
		t.Fatal(err)
	}
	latest, ok := lp.Get("INC-9")
	if !ok || latest.Verdict != VerdictCorrect || latest.Corrected != "DiskFull" {
		t.Fatalf("latest = %+v", latest)
	}
	hist := lp.History("INC-9")
	if len(hist) != 2 || hist[0].Verdict != VerdictReject {
		t.Fatalf("history = %+v", hist)
	}
	if _, ok := lp.Get("nope"); ok {
		t.Fatal("missing feedback should miss")
	}
}

func TestStatsAndAccuracy(t *testing.T) {
	lp := fixedLoop(&fakeLearner{})
	mustSubmit := func(id string, cat incident.Category, v Verdict, corrected incident.Category) {
		t.Helper()
		if _, err := lp.Submit(predicted(id, cat), v, corrected, "r", ""); err != nil {
			t.Fatal(err)
		}
	}
	mustSubmit("I1", "A", VerdictConfirm, "")
	mustSubmit("I2", "A", VerdictConfirm, "")
	mustSubmit("I3", "A", VerdictCorrect, "B")
	mustSubmit("I4", "B", VerdictReject, "")

	s := lp.ComputeStats()
	if s.Total != 4 || s.Confirmed != 2 || s.Corrected != 1 || s.Rejected != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Accuracy() != 0.5 {
		t.Fatalf("accuracy = %f, want 0.5", s.Accuracy())
	}
	if cs := s.ByPredicted["A"]; cs.Confirmed != 2 || cs.Corrected != 1 {
		t.Fatalf("per-category A = %+v", cs)
	}
	if (Stats{}).Accuracy() != 0 {
		t.Fatal("empty stats accuracy should be 0")
	}
}

func TestCorrectionTableOrdering(t *testing.T) {
	lp := fixedLoop(&fakeLearner{})
	for i, pair := range []struct{ from, to incident.Category }{
		{"I/O Bottleneck", "DiskFull"},
		{"I/O Bottleneck", "DiskFull"},
		{"UDP Port Exhaustion", "HubPortExhaustion"},
	} {
		id := string(rune('a' + i))
		if _, err := lp.Submit(predicted("INC-C"+id, pair.from), VerdictCorrect, pair.to, "r", ""); err != nil {
			t.Fatal(err)
		}
	}
	table := lp.CorrectionTable()
	if len(table) != 2 {
		t.Fatalf("table = %+v", table)
	}
	if table[0].From != "I/O Bottleneck" || table[0].Count != 2 || table[0].To != "DiskFull" {
		t.Fatalf("top correction = %+v", table[0])
	}
}
