package feedback

import (
	"testing"
	"time"
)

// journalRecorder collects transitions like the durable store's sidecar
// would, encode/decode round-tripping each one to pin gob-safety.
type journalRecorder struct {
	t  *testing.T
	ts []RetryTransition
}

func (r *journalRecorder) record(tr RetryTransition) {
	p, err := tr.Encode()
	if err != nil {
		r.t.Errorf("encode transition: %v", err)
		return
	}
	back, err := DecodeRetryTransition(p)
	if err != nil {
		r.t.Errorf("decode transition: %v", err)
		return
	}
	r.ts = append(r.ts, back)
}

// TestRetryJournalSurvivesRestart is the feedback half of the durability
// story: every schedule transition reaches the journal, and a fresh loop
// restored from the journaled transitions owes exactly the redrives the
// crashed one owed — same attempts, same due time — then heals normally.
func TestRetryJournalSurvivesRestart(t *testing.T) {
	learner := &flakyLearner{}
	lp, clock := retryLoop(t, learner, 8)
	rec := &journalRecorder{t: t}
	lp.SetRetryJournal(rec.record)

	if _, err := lp.Submit(predicted("INC-J1", "DiskFull"), VerdictConfirm, "", "oce-a", ""); err == nil {
		t.Fatal("Submit during the outage must surface the inline learn error")
	}
	if len(rec.ts) != 1 || rec.ts[0].Cleared {
		t.Fatalf("failure must journal one non-cleared transition, got %+v", rec.ts)
	}
	// One redrive fails too: attempts advance in the journal.
	clock.advance(2 * time.Minute)
	if lp.RedriveDue() != 1 {
		t.Fatal("redrive due")
	}
	if len(rec.ts) != 2 || rec.ts[1].Attempts != 2 {
		t.Fatalf("failed redrive must journal attempts=2, got %+v", rec.ts)
	}
	want := lp.RetrySchedule()

	// "Crash": a brand-new loop restored from the journal, retry started
	// after the restore (matching the serving layer's open order).
	learner2 := &flakyLearner{}
	lp2 := New(nil, learner2)
	clock2 := &fakeClock{now: clock.Now()}
	lp2.SetClock(clock2.Now)
	lp2.RestoreRetrySchedule(rec.ts)
	got := lp2.RetrySchedule()
	if len(got) != 1 || got[0].IncidentID != "INC-J1" || got[0].Attempts != want[0].Attempts ||
		!got[0].NextDue.Equal(want[0].NextDue) || got[0].Reviewer != "oce-a" {
		t.Fatalf("restored schedule %+v, want %+v", got, want)
	}
	if _, ok := lp2.FailureFor("INC-J1"); !ok {
		t.Fatal("restored loop must expose the Failure record")
	}
	if err := lp2.StartRetry(RetryConfig{Base: time.Minute, Cap: 8 * time.Minute, MaxAttempts: 8, Poll: time.Hour}); err != nil {
		t.Fatal(err)
	}
	defer lp2.Close()
	learner2.heal()
	clock2.advance(5 * time.Minute)
	if lp2.RedriveDue() != 1 {
		t.Fatal("restored failure must redrive when due")
	}
	if learner2.learnedCount() != 1 {
		t.Fatal("restored redrive must learn the carried incident")
	}
	if _, ok := lp2.FailureFor("INC-J1"); ok {
		t.Fatal("healed failure must clear")
	}
}

// TestRetryJournalClearedWins pins last-write-wins restore: a journal
// ending in a Cleared transition restores to an empty schedule, so a
// crash after the heal doesn't resurrect the failure.
func TestRetryJournalClearedWins(t *testing.T) {
	learner := &flakyLearner{}
	lp, clock := retryLoop(t, learner, 8)
	rec := &journalRecorder{t: t}
	lp.SetRetryJournal(rec.record)

	if _, err := lp.Submit(predicted("INC-J2", "DiskFull"), VerdictConfirm, "", "oce-b", ""); err == nil {
		t.Fatal("Submit during the outage must surface the inline learn error")
	}
	learner.heal()
	clock.advance(2 * time.Minute)
	if lp.RedriveDue() != 1 {
		t.Fatal("redrive due")
	}
	last := rec.ts[len(rec.ts)-1]
	if !last.Cleared {
		t.Fatalf("heal must journal a Cleared transition, got %+v", last)
	}

	lp2 := New(nil, &flakyLearner{})
	lp2.RestoreRetrySchedule(rec.ts)
	if got := lp2.RetrySchedule(); len(got) != 0 {
		t.Fatalf("cleared journal restored a schedule: %+v", got)
	}
}

// TestRetryTransitionsSnapshot pins the compaction hook: the live
// schedule round-trips through RetryTransitions + RestoreRetrySchedule.
func TestRetryTransitionsSnapshot(t *testing.T) {
	learner := &flakyLearner{}
	lp, _ := retryLoop(t, learner, 8)
	for _, id := range []string{"INC-S1", "INC-S2"} {
		if _, err := lp.Submit(predicted(id, "DiskFull"), VerdictConfirm, "", "oce", ""); err == nil {
			t.Fatal("Submit during the outage must surface the inline learn error")
		}
	}
	snap := lp.RetryTransitions()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d transitions, want 2", len(snap))
	}
	lp2 := New(nil, &flakyLearner{})
	lp2.RestoreRetrySchedule(snap)
	want, got := lp.RetrySchedule(), lp2.RetrySchedule()
	for i := range want {
		if got[i].IncidentID != want[i].IncidentID || got[i].Attempts != want[i].Attempts ||
			!got[i].NextDue.Equal(want[i].NextDue) {
			t.Fatalf("snapshot round-trip item %d: %+v want %+v", i, got[i], want[i])
		}
	}
}
