// Package feedback implements the OCE feedback loop the paper deploys with
// RCACopilot (§5.5): every prediction is presented to on-call engineers for
// review, incident notification emails carry a feedback mechanism, and
// confirmed labels flow back into the incident history so the system
// "adapt[s] to new and evolving types of incidents, learning from previous
// data to improve future predictions" (§1).
//
// The loop closes three ways:
//
//   - Confirm: the OCE agrees with the predicted category; the incident is
//     learned into the vector store under that label.
//   - Correct: the OCE assigns a different (possibly brand-new) category;
//     the incident is learned under the corrected label — this is how a
//     coined keyword like "I/O Bottleneck" becomes the canonical "DiskFull"
//     after post-investigation (§5.3).
//   - Reject: the prediction is recorded as wrong without a replacement
//     label (e.g. investigation still open); nothing is learned yet.
//
// The store keeps per-category accuracy so teams can watch prediction
// quality per root cause, mirroring the satisfaction tracking the paper
// reports from its deployment.
//
// # Asynchronous learning
//
// Learning an incident re-summarizes and embeds it — LLM work that by
// default runs inline in Submit, on the OCE's hot path. StartIngest moves
// it onto a background worker behind a bounded queue: Submit records the
// verdict and returns immediately, the worker drains the queue, and a full
// queue degrades gracefully by learning inline (backpressure, never
// unbounded memory). The worker draws its slot from the shared
// internal/parallel budget so feedback ingest and batch evaluation share
// one process-wide concurrency bound. Flush is the read-your-writes
// barrier: it blocks until everything submitted so far is learned (and
// surfaces any async learn errors), so a submitting OCE who wants their
// confirmation reflected in the next retrieval calls Flush first.
package feedback

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/incident"
	"repro/internal/kvstore"
	"repro/internal/parallel"
)

// Verdict is the OCE's judgement on one prediction.
type Verdict string

// Verdicts.
const (
	VerdictConfirm Verdict = "confirm"
	VerdictCorrect Verdict = "correct"
	VerdictReject  Verdict = "reject"
)

// Entry is one recorded piece of feedback.
type Entry struct {
	IncidentID string            `json:"incidentId"`
	Predicted  incident.Category `json:"predicted"`
	Verdict    Verdict           `json:"verdict"`
	// Corrected is the OCE-assigned label for VerdictCorrect.
	Corrected incident.Category `json:"corrected,omitempty"`
	Reviewer  string            `json:"reviewer"`
	At        time.Time         `json:"at"`
	Note      string            `json:"note,omitempty"`
}

// Learner is the slice of the pipeline the loop feeds back into —
// *core.Copilot satisfies it.
type Learner interface {
	Learn(inc *incident.Incident) error
}

// Loop records feedback and feeds confirmed/corrected incidents back into
// the learner. Safe for concurrent use.
type Loop struct {
	mu      sync.Mutex
	store   *kvstore.Store
	learner Learner
	clock   func() time.Time

	// ingest guards the async-learning state; nil queue = synchronous.
	ingest struct {
		mu      sync.Mutex
		cond    *sync.Cond
		queue   chan *incident.Incident
		done    chan struct{}
		closed  bool
		pending int
		errs    []error
		granted int
	}
}

// New returns a Loop persisting entries to the given store (a fresh
// in-memory store when nil) and feeding the learner (which may be nil for
// record-only use).
func New(store *kvstore.Store, learner Learner) *Loop {
	if store == nil {
		store = kvstore.New()
	}
	return &Loop{store: store, learner: learner, clock: time.Now}
}

// SetClock overrides the timestamp source (tests, simulations).
func (l *Loop) SetClock(now func() time.Time) { l.clock = now }

func entryKey(incidentID string) string { return "feedback/" + incidentID }

// Submit records a verdict for a predicted incident and, for confirm and
// correct verdicts, learns the incident under its final label. The
// incident must carry a prediction.
func (l *Loop) Submit(inc *incident.Incident, verdict Verdict, corrected incident.Category, reviewer, note string) (*Entry, error) {
	if inc == nil || inc.ID == "" {
		return nil, fmt.Errorf("feedback: incident required")
	}
	if inc.Predicted == "" {
		return nil, fmt.Errorf("feedback: incident %s has no prediction to review", inc.ID)
	}
	var final incident.Category
	switch verdict {
	case VerdictConfirm:
		final = inc.Predicted
	case VerdictCorrect:
		if corrected == "" {
			return nil, fmt.Errorf("feedback: correct verdict for %s needs a corrected category", inc.ID)
		}
		final = corrected
	case VerdictReject:
		if corrected != "" {
			return nil, fmt.Errorf("feedback: reject verdict for %s must not carry a corrected category", inc.ID)
		}
	default:
		return nil, fmt.Errorf("feedback: unknown verdict %q", verdict)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	e := &Entry{
		IncidentID: inc.ID,
		Predicted:  inc.Predicted,
		Verdict:    verdict,
		Corrected:  corrected,
		Reviewer:   reviewer,
		At:         l.clock(),
		Note:       note,
	}
	data, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("feedback: encode: %w", err)
	}
	l.store.Put(entryKey(inc.ID), data)

	if final != "" && l.learner != nil {
		learned := inc.Clone()
		learned.Category = final
		if err := l.learnOrEnqueue(learned); err != nil {
			return nil, fmt.Errorf("feedback: learn %s: %w", inc.ID, err)
		}
	}
	return e, nil
}

// learnOrEnqueue hands a labelled incident to the background ingest worker
// when one is running, falling back to an inline learn when the queue is
// full (backpressure) or ingest is off/closed (the synchronous default).
func (l *Loop) learnOrEnqueue(learned *incident.Incident) error {
	ig := &l.ingest
	ig.mu.Lock()
	if ig.queue == nil || ig.closed {
		ig.mu.Unlock()
		return l.learner.Learn(learned)
	}
	ig.pending++
	select {
	case ig.queue <- learned:
		ig.mu.Unlock()
		return nil
	default:
		// Queue full: the submitter pays for this one inline, which is
		// exactly the pre-async behaviour — bounded memory, no lost learns.
		ig.pending--
		ig.mu.Unlock()
		return l.learner.Learn(learned)
	}
}

// StartIngest starts the background learn worker with the given queue
// capacity (default 64 when <= 0). It fails if the loop has no learner or
// ingest is already running; after a Close it starts a fresh worker. The
// worker holds at most one slot of the shared internal/parallel budget,
// released on Close.
func (l *Loop) StartIngest(queueSize int) error {
	if l.learner == nil {
		return fmt.Errorf("feedback: StartIngest on a record-only loop (no learner)")
	}
	if queueSize <= 0 {
		queueSize = 64
	}
	ig := &l.ingest
	ig.mu.Lock()
	defer ig.mu.Unlock()
	if ig.queue != nil && !ig.closed {
		return fmt.Errorf("feedback: ingest already started")
	}
	ig.cond = sync.NewCond(&ig.mu)
	ig.queue = make(chan *incident.Incident, queueSize)
	ig.done = make(chan struct{})
	ig.closed = false
	ig.granted = parallel.Reserve(1)
	go l.ingestWorker(ig.queue, ig.done)
	return nil
}

// ingestWorker drains queued learns until the queue closes.
func (l *Loop) ingestWorker(queue <-chan *incident.Incident, done chan<- struct{}) {
	defer close(done)
	ig := &l.ingest
	for inc := range queue {
		err := l.learner.Learn(inc)
		ig.mu.Lock()
		ig.pending--
		if err != nil {
			ig.errs = append(ig.errs, fmt.Errorf("feedback: learn %s: %w", inc.ID, err))
		}
		ig.cond.Broadcast()
		ig.mu.Unlock()
	}
}

// Flush blocks until every learn submitted before the call has been
// applied — the read-your-writes barrier for a submitting OCE — and
// returns (and clears) any errors the background learns accumulated. With
// ingest off it returns nil immediately: the synchronous path has no
// deferred work.
func (l *Loop) Flush() error {
	ig := &l.ingest
	ig.mu.Lock()
	defer ig.mu.Unlock()
	for ig.pending > 0 {
		ig.cond.Wait()
	}
	err := errors.Join(ig.errs...)
	ig.errs = nil
	return err
}

// Close stops the ingest worker after draining the queue, returns its slot
// to the shared budget, and reports any remaining async learn errors.
// Submissions after Close learn synchronously again; Close on a loop that
// never started ingest is a no-op.
func (l *Loop) Close() error {
	ig := &l.ingest
	ig.mu.Lock()
	if ig.queue == nil || ig.closed {
		ig.mu.Unlock()
		return nil
	}
	ig.closed = true
	close(ig.queue)
	done, granted := ig.done, ig.granted
	ig.granted = 0
	ig.mu.Unlock()

	<-done
	parallel.Release(granted)
	return l.Flush()
}

// Get returns the latest feedback for an incident.
func (l *Loop) Get(incidentID string) (*Entry, bool) {
	data, ok := l.store.Get(entryKey(incidentID))
	if !ok {
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	return &e, true
}

// History returns every feedback revision for an incident, oldest first
// (an incident may be re-reviewed after post-mortem).
func (l *Loop) History(incidentID string) []Entry {
	var out []Entry
	for _, v := range l.store.History(entryKey(incidentID)) {
		var e Entry
		if err := json.Unmarshal(v.Value, &e); err == nil {
			out = append(out, e)
		}
	}
	return out
}

// Stats aggregates prediction quality from the recorded feedback.
type Stats struct {
	Total     int
	Confirmed int
	Corrected int
	Rejected  int
	// ByPredicted counts verdicts per predicted category.
	ByPredicted map[incident.Category]CategoryStats
}

// CategoryStats is the per-category breakdown.
type CategoryStats struct {
	Confirmed int
	Corrected int
	Rejected  int
}

// Accuracy is the confirmed share of reviewed predictions.
func (s Stats) Accuracy() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Confirmed) / float64(s.Total)
}

// ComputeStats scans all feedback (latest verdict per incident).
func (l *Loop) ComputeStats() Stats {
	s := Stats{ByPredicted: make(map[incident.Category]CategoryStats)}
	for _, key := range l.store.Keys("feedback/") {
		data, ok := l.store.Get(key)
		if !ok {
			continue
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			continue
		}
		s.Total++
		cs := s.ByPredicted[e.Predicted]
		switch e.Verdict {
		case VerdictConfirm:
			s.Confirmed++
			cs.Confirmed++
		case VerdictCorrect:
			s.Corrected++
			cs.Corrected++
		case VerdictReject:
			s.Rejected++
			cs.Rejected++
		}
		s.ByPredicted[e.Predicted] = cs
	}
	return s
}

// CorrectionTable returns the observed coined-keyword → canonical-label
// corrections, most frequent first — the data from which a synonym table
// like EXPERIMENTS.md's scoring protocol is curated.
func (l *Loop) CorrectionTable() []Correction {
	counts := make(map[Correction]int)
	for _, key := range l.store.Keys("feedback/") {
		data, ok := l.store.Get(key)
		if !ok {
			continue
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil || e.Verdict != VerdictCorrect {
			continue
		}
		counts[Correction{From: e.Predicted, To: e.Corrected}]++
	}
	out := make([]Correction, 0, len(counts))
	for c := range counts {
		c.Count = counts[c]
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].From < out[j].From
	})
	return out
}

// Correction is one observed predicted→canonical mapping.
type Correction struct {
	From  incident.Category
	To    incident.Category
	Count int
}
