// Package feedback implements the OCE feedback loop the paper deploys with
// RCACopilot (§5.5): every prediction is presented to on-call engineers for
// review, incident notification emails carry a feedback mechanism, and
// confirmed labels flow back into the incident history so the system
// "adapt[s] to new and evolving types of incidents, learning from previous
// data to improve future predictions" (§1).
//
// The loop closes three ways:
//
//   - Confirm: the OCE agrees with the predicted category; the incident is
//     learned into the vector store under that label.
//   - Correct: the OCE assigns a different (possibly brand-new) category;
//     the incident is learned under the corrected label — this is how a
//     coined keyword like "I/O Bottleneck" becomes the canonical "DiskFull"
//     after post-investigation (§5.3).
//   - Reject: the prediction is recorded as wrong without a replacement
//     label (e.g. investigation still open); nothing is learned yet.
//
// The store keeps per-category accuracy so teams can watch prediction
// quality per root cause, mirroring the satisfaction tracking the paper
// reports from its deployment.
//
// # Asynchronous learning
//
// Learning an incident re-summarizes and embeds it — LLM work that by
// default runs inline in Submit, on the OCE's hot path. StartIngest moves
// it onto a background worker behind a bounded queue: Submit records the
// verdict and returns immediately, the worker drains the queue, and a full
// queue degrades gracefully by learning inline (backpressure, never
// unbounded memory). The worker draws its slot from the shared
// internal/parallel budget so feedback ingest and batch evaluation share
// one process-wide concurrency bound. Flush is the read-your-writes
// barrier: it blocks until everything submitted so far is learned (and
// surfaces any async learn errors), so a submitting OCE who wants their
// confirmation reflected in the next retrieval calls Flush first.
//
// # Async error surfacing
//
// A background learn that fails must reach the OCE who submitted the
// verdict — not just whoever happens to Flush next. Every failed async
// learn is therefore recorded on the loop as a Failure (incident,
// reviewer, error, time), queryable via Failures/FailureFor without any
// Flush, and pushed through the optional SetNotifier hook the moment it
// happens — the notification path a deployment wires to the same email
// mechanism the incident reports use (report.RenderLearnFailure renders
// the message body). Flush still aggregates and clears the pending error
// list for read-your-writes callers; the Failure record persists until
// the same incident later learns successfully.
package feedback

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/incident"
	"repro/internal/kvstore"
	"repro/internal/parallel"
)

// Verdict is the OCE's judgement on one prediction.
type Verdict string

// Verdicts.
const (
	VerdictConfirm Verdict = "confirm"
	VerdictCorrect Verdict = "correct"
	VerdictReject  Verdict = "reject"
)

// Entry is one recorded piece of feedback.
type Entry struct {
	IncidentID string            `json:"incidentId"`
	Predicted  incident.Category `json:"predicted"`
	Verdict    Verdict           `json:"verdict"`
	// Corrected is the OCE-assigned label for VerdictCorrect.
	Corrected incident.Category `json:"corrected,omitempty"`
	Reviewer  string            `json:"reviewer"`
	At        time.Time         `json:"at"`
	Note      string            `json:"note,omitempty"`
}

// Learner is the slice of the pipeline the loop feeds back into —
// *core.Copilot satisfies it.
type Learner interface {
	Learn(inc *incident.Incident) error
}

// Failure records one failed background learn: enough for a notification
// to reach the OCE who submitted the verdict without anyone calling
// Flush.
type Failure struct {
	// IncidentID identifies the incident whose learn failed.
	IncidentID string
	// Reviewer is the OCE who submitted the verdict that queued the learn.
	Reviewer string
	// Err is the learn error.
	Err error
	// At is when the failure was recorded.
	At time.Time
}

// learnTask is one queued background learn, carrying the submitting
// reviewer so a failure can be attributed back to them.
type learnTask struct {
	inc      *incident.Incident
	reviewer string
}

// Loop records feedback and feeds confirmed/corrected incidents back into
// the learner. Safe for concurrent use.
type Loop struct {
	mu      sync.Mutex
	store   *kvstore.Store
	learner Learner

	// clockMu guards clock: the ingest worker timestamps failures off the
	// Submit goroutine, so SetClock must not race a background read.
	clockMu sync.Mutex
	clock   func() time.Time

	// ingest guards the async-learning state; nil queue = synchronous.
	ingest struct {
		mu      sync.Mutex
		cond    *sync.Cond
		queue   chan learnTask
		done    chan struct{}
		closed  bool
		pending int
		errs    []error
		granted int
		// failures holds the latest unresolved Failure per incident; a
		// later successful learn for the incident clears it.
		failures map[string]Failure
		notify   func(Failure)
	}
}

// New returns a Loop persisting entries to the given store (a fresh
// in-memory store when nil) and feeding the learner (which may be nil for
// record-only use).
func New(store *kvstore.Store, learner Learner) *Loop {
	if store == nil {
		store = kvstore.New()
	}
	return &Loop{store: store, learner: learner, clock: time.Now}
}

// SetClock overrides the timestamp source (tests, simulations). The
// clock function itself must be safe for concurrent calls when ingest is
// running.
func (l *Loop) SetClock(now func() time.Time) {
	l.clockMu.Lock()
	l.clock = now
	l.clockMu.Unlock()
}

// now reads the clock under its own lock, callable from any goroutine.
func (l *Loop) now() time.Time {
	l.clockMu.Lock()
	clock := l.clock
	l.clockMu.Unlock()
	return clock()
}

func entryKey(incidentID string) string { return "feedback/" + incidentID }

// Submit records a verdict for a predicted incident and, for confirm and
// correct verdicts, learns the incident under its final label. The
// incident must carry a prediction.
func (l *Loop) Submit(inc *incident.Incident, verdict Verdict, corrected incident.Category, reviewer, note string) (*Entry, error) {
	if inc == nil || inc.ID == "" {
		return nil, fmt.Errorf("feedback: incident required")
	}
	if inc.Predicted == "" {
		return nil, fmt.Errorf("feedback: incident %s has no prediction to review", inc.ID)
	}
	var final incident.Category
	switch verdict {
	case VerdictConfirm:
		final = inc.Predicted
	case VerdictCorrect:
		if corrected == "" {
			return nil, fmt.Errorf("feedback: correct verdict for %s needs a corrected category", inc.ID)
		}
		final = corrected
	case VerdictReject:
		if corrected != "" {
			return nil, fmt.Errorf("feedback: reject verdict for %s must not carry a corrected category", inc.ID)
		}
	default:
		return nil, fmt.Errorf("feedback: unknown verdict %q", verdict)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	e := &Entry{
		IncidentID: inc.ID,
		Predicted:  inc.Predicted,
		Verdict:    verdict,
		Corrected:  corrected,
		Reviewer:   reviewer,
		At:         l.now(),
		Note:       note,
	}
	data, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("feedback: encode: %w", err)
	}
	l.store.Put(entryKey(inc.ID), data)

	if final != "" && l.learner != nil {
		learned := inc.Clone()
		learned.Category = final
		if err := l.learnOrEnqueue(learnTask{inc: learned, reviewer: reviewer}); err != nil {
			return nil, fmt.Errorf("feedback: learn %s: %w", inc.ID, err)
		}
	}
	return e, nil
}

// learnOrEnqueue hands a labelled incident to the background ingest worker
// when one is running, falling back to an inline learn when the queue is
// full (backpressure) or ingest is off/closed (the synchronous default).
// Inline learns report their error straight back to the submitter; only
// deferred ones need the Failure record.
func (l *Loop) learnOrEnqueue(task learnTask) error {
	ig := &l.ingest
	ig.mu.Lock()
	if ig.queue == nil || ig.closed {
		ig.mu.Unlock()
		return l.learnAndRecord(task, false)
	}
	ig.pending++
	select {
	case ig.queue <- task:
		ig.mu.Unlock()
		return nil
	default:
		// Queue full: the submitter pays for this one inline, which is
		// exactly the pre-async behaviour — bounded memory, no lost learns.
		ig.pending--
		ig.mu.Unlock()
		return l.learnAndRecord(task, false)
	}
}

// learnAndRecord runs one learn and maintains the per-incident Failure
// record: an error is stored (and, for deferred learns, pushed through
// the notifier — inline failures already reach the submitter as a return
// value); success clears any stale failure for the incident.
func (l *Loop) learnAndRecord(task learnTask, deferred bool) error {
	err := l.learner.Learn(task.inc)
	ig := &l.ingest
	ig.mu.Lock()
	if err != nil {
		f := Failure{IncidentID: task.inc.ID, Reviewer: task.reviewer, Err: err, At: l.now()}
		if ig.failures == nil {
			ig.failures = make(map[string]Failure)
		}
		ig.failures[task.inc.ID] = f
		notify := ig.notify
		ig.mu.Unlock()
		if deferred && notify != nil {
			notify(f)
		}
		return err
	}
	delete(ig.failures, task.inc.ID)
	ig.mu.Unlock()
	return nil
}

// StartIngest starts the background learn worker with the given queue
// capacity (default 64 when <= 0). It fails if the loop has no learner or
// ingest is already running; after a Close it starts a fresh worker. The
// worker holds at most one slot of the shared internal/parallel budget,
// released on Close.
func (l *Loop) StartIngest(queueSize int) error {
	if l.learner == nil {
		return fmt.Errorf("feedback: StartIngest on a record-only loop (no learner)")
	}
	if queueSize <= 0 {
		queueSize = 64
	}
	ig := &l.ingest
	ig.mu.Lock()
	defer ig.mu.Unlock()
	if ig.queue != nil && !ig.closed {
		return fmt.Errorf("feedback: ingest already started")
	}
	ig.cond = sync.NewCond(&ig.mu)
	ig.queue = make(chan learnTask, queueSize)
	ig.done = make(chan struct{})
	ig.closed = false
	ig.granted = parallel.Reserve(1)
	go l.ingestWorker(ig.queue, ig.done)
	return nil
}

// ingestWorker drains queued learns until the queue closes. Failures are
// recorded per incident and pushed through the notifier immediately (see
// learnAndRecord) in addition to feeding the Flush error aggregate.
func (l *Loop) ingestWorker(queue <-chan learnTask, done chan<- struct{}) {
	defer close(done)
	ig := &l.ingest
	for task := range queue {
		err := l.learnAndRecord(task, true)
		ig.mu.Lock()
		ig.pending--
		if err != nil {
			ig.errs = append(ig.errs, fmt.Errorf("feedback: learn %s: %w", task.inc.ID, err))
		}
		ig.cond.Broadcast()
		ig.mu.Unlock()
	}
}

// SetNotifier installs the delivery hook for failed background learns:
// it is invoked once per deferred failure, as the failure happens, from
// the ingest worker (keep it fast or hand off). This is how a deployment
// routes the failure back to the submitting OCE — typically by sending
// report.RenderLearnFailure's text through the same channel that carries
// incident notifications. A nil notifier (the default) leaves failures
// queryable via Failures/FailureFor only.
func (l *Loop) SetNotifier(fn func(Failure)) {
	ig := &l.ingest
	ig.mu.Lock()
	ig.notify = fn
	ig.mu.Unlock()
}

// Failures returns every unresolved learn failure, ordered by incident
// ID. Unlike Flush's error aggregate this does not clear: a failure
// stands until the same incident learns successfully (e.g. after the OCE
// resubmits the verdict).
func (l *Loop) Failures() []Failure {
	ig := &l.ingest
	ig.mu.Lock()
	out := make([]Failure, 0, len(ig.failures))
	for _, f := range ig.failures {
		out = append(out, f)
	}
	ig.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].IncidentID < out[j].IncidentID })
	return out
}

// FailureFor returns the unresolved learn failure for an incident, if
// any — the per-incident view an incident report embeds.
func (l *Loop) FailureFor(incidentID string) (Failure, bool) {
	ig := &l.ingest
	ig.mu.Lock()
	defer ig.mu.Unlock()
	f, ok := ig.failures[incidentID]
	return f, ok
}

// Flush blocks until every learn submitted before the call has been
// applied — the read-your-writes barrier for a submitting OCE — and
// returns (and clears) any errors the background learns accumulated. With
// ingest off it returns nil immediately: the synchronous path has no
// deferred work. The per-incident Failure records survive a Flush; only
// the aggregate clears.
func (l *Loop) Flush() error {
	ig := &l.ingest
	ig.mu.Lock()
	defer ig.mu.Unlock()
	for ig.pending > 0 {
		ig.cond.Wait()
	}
	err := errors.Join(ig.errs...)
	ig.errs = nil
	return err
}

// Close stops the ingest worker after draining the queue, returns its slot
// to the shared budget, and reports any remaining async learn errors.
// Submissions after Close learn synchronously again; Close on a loop that
// never started ingest is a no-op.
func (l *Loop) Close() error {
	ig := &l.ingest
	ig.mu.Lock()
	if ig.queue == nil || ig.closed {
		ig.mu.Unlock()
		return nil
	}
	ig.closed = true
	close(ig.queue)
	done, granted := ig.done, ig.granted
	ig.granted = 0
	ig.mu.Unlock()

	<-done
	parallel.Release(granted)
	return l.Flush()
}

// Get returns the latest feedback for an incident.
func (l *Loop) Get(incidentID string) (*Entry, bool) {
	data, ok := l.store.Get(entryKey(incidentID))
	if !ok {
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	return &e, true
}

// History returns every feedback revision for an incident, oldest first
// (an incident may be re-reviewed after post-mortem).
func (l *Loop) History(incidentID string) []Entry {
	var out []Entry
	for _, v := range l.store.History(entryKey(incidentID)) {
		var e Entry
		if err := json.Unmarshal(v.Value, &e); err == nil {
			out = append(out, e)
		}
	}
	return out
}

// Stats aggregates prediction quality from the recorded feedback.
type Stats struct {
	Total     int
	Confirmed int
	Corrected int
	Rejected  int
	// ByPredicted counts verdicts per predicted category.
	ByPredicted map[incident.Category]CategoryStats
}

// CategoryStats is the per-category breakdown.
type CategoryStats struct {
	Confirmed int
	Corrected int
	Rejected  int
}

// Accuracy is the confirmed share of reviewed predictions.
func (s Stats) Accuracy() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Confirmed) / float64(s.Total)
}

// ComputeStats scans all feedback (latest verdict per incident).
func (l *Loop) ComputeStats() Stats {
	s := Stats{ByPredicted: make(map[incident.Category]CategoryStats)}
	for _, key := range l.store.Keys("feedback/") {
		data, ok := l.store.Get(key)
		if !ok {
			continue
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			continue
		}
		s.Total++
		cs := s.ByPredicted[e.Predicted]
		switch e.Verdict {
		case VerdictConfirm:
			s.Confirmed++
			cs.Confirmed++
		case VerdictCorrect:
			s.Corrected++
			cs.Corrected++
		case VerdictReject:
			s.Rejected++
			cs.Rejected++
		}
		s.ByPredicted[e.Predicted] = cs
	}
	return s
}

// CorrectionTable returns the observed coined-keyword → canonical-label
// corrections, most frequent first — the data from which a synonym table
// like EXPERIMENTS.md's scoring protocol is curated.
func (l *Loop) CorrectionTable() []Correction {
	counts := make(map[Correction]int)
	for _, key := range l.store.Keys("feedback/") {
		data, ok := l.store.Get(key)
		if !ok {
			continue
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil || e.Verdict != VerdictCorrect {
			continue
		}
		counts[Correction{From: e.Predicted, To: e.Corrected}]++
	}
	out := make([]Correction, 0, len(counts))
	for c := range counts {
		c.Count = counts[c]
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].From < out[j].From
	})
	return out
}

// Correction is one observed predicted→canonical mapping.
type Correction struct {
	From  incident.Category
	To    incident.Category
	Count int
}
